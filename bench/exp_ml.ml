(* E13: the Bigarray tensor core — batched/striped training throughput
   and steady-state allocation, against the boxed float-array reference
   core (Sp_ml.Reference, the pre-optimization implementation kept as a
   differential oracle).

   The controlled comparison is a 2-layer MLP trained with MSE + Adam on
   synthetic data, identical math on both sides:
   - reference: per-sample loops, every operation allocating
     (Reference.Mlp — how the core executed before this optimization);
   - dense: whole-batch matrix ops into preallocated buffers
     (Dense.train_step, ~0 minor words per steady-state step);
   - striped: the same batch sharded into contiguous row stripes on
     Sp_util.Pool domains (Dense.train_step_striped).

   Two modes, like E11:
   - full (default): long loops, the >=3x training-throughput bar of the
     acceptance criterion, plus informational numbers from the real PMM
     path (striped Trainer samples/s, inference batch latency).
   - quick (SNOWPLOW_QUICK, from @ci): short loops, a wide 1.1x sanity
     bar so a loaded CI box cannot flake it; equivalence and the
     words/step assertion are deterministic and hold in both modes. *)

module Rng = Sp_util.Rng
module Pool = Sp_util.Pool
module Table = Sp_util.Table
module Tensor = Sp_ml.Tensor
module Reference = Sp_ml.Reference
module Dense = Sp_ml.Dense

let quick = Sys.getenv_opt "SNOWPLOW_QUICK" <> None

let failures = ref 0

let bar name ok detail =
  Exp_common.log "%s: %s — %s" name detail (if ok then "PASSES" else "FAILS");
  if not ok then incr failures

type measurement = { samples_per_s : float; words_per_step : float }

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Throughput loop (no per-step clock), then an allocation loop. [rows]
   samples are consumed per step. *)
let measure ~iters ~rows step =
  for _ = 1 to iters / 10 do
    step ()
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    step ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let w0 = Gc.minor_words () in
  let alloc_iters = min iters 2000 in
  for _ = 1 to alloc_iters do
    step ()
  done;
  let w1 = Gc.minor_words () in
  {
    samples_per_s = float_of_int (iters * rows) /. wall;
    words_per_step = (w1 -. w0) /. float_of_int alloc_iters;
  }

(* Informational: the real PMM path — striped Trainer throughput and the
   tape-free inference latency — on a reduced end-to-end pipeline. Quick
   mode shrinks it further but emits the same key set, so bench-diff can
   compare a fresh quick run against the committed full trajectory. *)
let pmm_numbers () =
  let kernel = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let enc =
    Snowplow.Encoder.pretrain
      ~config:
        { Snowplow.Encoder.default_config with
          steps = (if quick then 150 else 400) }
      kernel
  in
  let embs = Snowplow.Encoder.embed_kernel enc kernel in
  let bases =
    Sp_syzlang.Gen.corpus (Rng.create 3) (Sp_kernel.Kernel.spec_db kernel)
      ~size:(if quick then 12 else 30)
  in
  let split = Snowplow.Dataset.collect kernel ~bases in
  let eligible =
    Array.of_list
      (List.filter
         (fun (ex : Snowplow.Dataset.example) -> Array.length ex.labels > 0)
         (Array.to_list split.Snowplow.Dataset.train))
  in
  let n_train = Array.length eligible in
  let train_rate jobs =
    let model =
      Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc)
        ~num_syscalls:(Sp_syzlang.Spec.count (Sp_kernel.Kernel.spec_db kernel))
        ()
    in
    let epochs = if quick then 2 else 3 in
    let cfg =
      { Snowplow.Trainer.default_config with epochs; log_every = 0; jobs }
    in
    let t0 = Unix.gettimeofday () in
    ignore
      (Snowplow.Trainer.train ~config:cfg model ~block_embs:embs
         ~train:split.Snowplow.Dataset.train ~valid:[||]);
    let wall = Unix.gettimeofday () -. t0 in
    (model, float_of_int (epochs * n_train) /. wall)
  in
  let model, rate_j1 = train_rate 1 in
  let _, rate_j2 = train_rate 2 in
  (* Inference batch latency: predict_scores (prepare + tape-free
     forward in one workspace generation) per eval example. *)
  let evals =
    if Array.length split.Snowplow.Dataset.eval > 0 then
      split.Snowplow.Dataset.eval
    else split.Snowplow.Dataset.train
  in
  let samples = if quick then 100 else 400 in
  let lat = Array.make samples 0.0 in
  for i = 0 to samples - 1 do
    let ex = evals.(i mod Array.length evals) in
    let s0 = Unix.gettimeofday () in
    ignore
      (Snowplow.Pmm.predict_scores model ~block_embs:embs
         ex.Snowplow.Dataset.graph);
    lat.(i) <- (Unix.gettimeofday () -. s0) *. 1e6
  done;
  Array.sort compare lat;
  (rate_j1, rate_j2, percentile lat 0.50, percentile lat 0.99)

let run () =
  Exp_common.section
    (if quick then "E13 — ML tensor core (quick smoke)"
     else "E13 — ML tensor core: batch striping vs reference");
  let d_in = 32 and hidden = 64 and d_out = 16 in
  let rows = if quick then 32 else 64 in
  let jobs = if quick then 2 else 4 in
  let lr = 1e-3 in
  (* Identical synthetic data on both cores. *)
  let rng = Rng.create 99 in
  let xs = Array.init (rows * d_in) (fun _ -> Rng.gaussian rng) in
  let ts = Array.init (rows * d_out) (fun _ -> Rng.gaussian rng) in
  let x_ref = Reference.of_array ~rows ~cols:d_in (Array.copy xs)
  and t_ref = Reference.of_array ~rows ~cols:d_out (Array.copy ts)
  and x = Tensor.of_array ~rows ~cols:d_in xs
  and target = Tensor.of_array ~rows ~cols:d_out ts in
  (* Equivalence first: same seed, same draws, K steps each — the
     batched kernels must reproduce the per-sample math. *)
  let mlp_ref = Reference.Mlp.create (Rng.create 7) ~d_in ~hidden ~d_out ~lr in
  let dense = Dense.create (Rng.create 7) ~d_in ~hidden ~d_out ~lr in
  let p = Dense.plan dense ~rows in
  let max_diff = ref 0.0 in
  for _ = 1 to 50 do
    let l_ref = Reference.Mlp.train_step mlp_ref ~x:x_ref ~target:t_ref in
    let l_dense = Dense.train_step dense p ~x ~target in
    max_diff := Float.max !max_diff (Float.abs (l_ref -. l_dense))
  done;
  List.iter2
    (fun (rp : Reference.t) dp ->
      let da = Tensor.to_array dp in
      Array.iteri
        (fun i v -> max_diff := Float.max !max_diff (Float.abs (v -. rp.Reference.data.(i))))
        da)
    (Reference.Mlp.params mlp_ref)
    (Dense.params dense);
  bar "equivalence (dense == reference after 50 steps)" (!max_diff <= 1e-9)
    (Printf.sprintf "max |diff| = %.3g over losses and all parameters" !max_diff);
  (* Throughput + allocation. Fresh models so Adam state starts equal. *)
  let iters = if quick then 400 else 4_000 in
  let mlp_ref = Reference.Mlp.create (Rng.create 7) ~d_in ~hidden ~d_out ~lr in
  let m_ref =
    measure ~iters:(max 1 (iters / 8)) ~rows (fun () ->
        ignore (Reference.Mlp.train_step mlp_ref ~x:x_ref ~target:t_ref))
  in
  let dense = Dense.create (Rng.create 7) ~d_in ~hidden ~d_out ~lr in
  let p = Dense.plan dense ~rows in
  let m_dense =
    measure ~iters ~rows (fun () -> ignore (Dense.train_step dense p ~x ~target))
  in
  let striped = Dense.create (Rng.create 7) ~d_in ~hidden ~d_out ~lr in
  let plans = Dense.stripe_plans striped ~rows ~jobs in
  let m_striped =
    Pool.with_pool ~workers:jobs (fun pool ->
        measure ~iters ~rows (fun () ->
            ignore (Dense.train_step_striped striped pool plans ~x ~target)))
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "MLP training (%dx%dx%d, batch %d)" d_in hidden d_out
           rows)
      ~header:[ "core"; "samples/s"; "minor words/step"; "speedup" ]
      ()
  in
  let row name (m : measurement) =
    Table.add_row t
      [ name;
        Printf.sprintf "%.0f" m.samples_per_s;
        Printf.sprintf "%.1f" m.words_per_step;
        Printf.sprintf "%.2fx" (m.samples_per_s /. m_ref.samples_per_s) ]
  in
  row "reference (per-sample, boxed)" m_ref;
  row "dense (batched, preallocated)" m_dense;
  row (Printf.sprintf "striped (%d domains)" jobs) m_striped;
  Table.print t;
  (let ts = Sp_obs.Timeseries.create () in
   List.iteri
     (fun i (m : measurement) ->
       Sp_obs.Timeseries.sample ts ~time:(float_of_int i)
         [
           ("samples_per_s", m.samples_per_s);
           ("words_per_step", m.words_per_step);
         ])
     [ m_ref; m_dense; m_striped ];
   Exp_common.emit_timeseries "e13-ml" (Some ts));
  (* The real PMM path, informational — a reduced retrained pipeline
     (further reduced in quick mode; the emitted key set is identical
     either way, which the bench-diff gate depends on). *)
  let pmm_fields =
    Exp_common.log "measuring the real PMM train/inference path...";
    let rate_j1, rate_j2, p50, p99 = pmm_numbers () in
    Exp_common.log
      "PMM trainer: %.1f samples/s (jobs=1), %.1f samples/s (jobs=2) — %d \
       core(s) available; with one core, striping only adds overhead and \
       determinism is what the gate checks"
      rate_j1 rate_j2
      (Domain.recommended_domain_count ());
    Exp_common.log "PMM inference (predict_scores): p50 %.0f us, p99 %.0f us"
      p50 p99;
    [ ("pmm_train_samples_per_s_j1", rate_j1);
      ("pmm_train_samples_per_s_j2", rate_j2);
      ("pmm_infer_p50_us", p50);
      ("pmm_infer_p99_us", p99) ]
  in
  Exp_common.emit_bench "E13"
    ([ ("ref_samples_per_s", m_ref.samples_per_s);
       ("dense_samples_per_s", m_dense.samples_per_s);
       ("striped_samples_per_s", m_striped.samples_per_s);
       ("striped_jobs", float_of_int jobs);
       ("dense_words_per_step", m_dense.words_per_step);
       ("speedup_vs_reference", m_dense.samples_per_s /. m_ref.samples_per_s)
     ]
    @ pmm_fields);
  let speedup = m_dense.samples_per_s /. m_ref.samples_per_s in
  bar "steady-state allocation"
    (m_dense.words_per_step <= 64.0)
    (Printf.sprintf "%.1f minor words/step on the dense path (bound 64)"
       m_dense.words_per_step);
  if quick then
    (* Sanity bar only: quick-mode loops are short enough that scheduler
       noise on a loaded 1-core CI host skews the ratio (observed 1.48x
       under a full concurrent @ci build vs 3.5x uncontended). The real
       perf-rot gate is the 3x floor on the committed full-scale
       baseline, enforced by bench-diff. *)
    bar "training throughput (quick)" (speedup >= 1.1)
      (Printf.sprintf "dense %.2fx reference (quick sanity bar 1.1x)" speedup)
  else
    bar "training throughput" (speedup >= 3.0)
      (Printf.sprintf "dense %.2fx reference (bar 3x)" speedup);
  if !failures > 0 then begin
    Exp_common.log "e13: %d bar(s) FAILED" !failures;
    exit 1
  end
