(* Shared state and helpers for the experiment harness.

   The trained pipeline (kernel generation, dataset collection, encoder
   pretraining, PMM training) is expensive, so it is trained once and
   shared by every experiment that needs it. *)

module Campaign = Sp_fuzz.Campaign

let t0 = Unix.gettimeofday ()

let log fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "[%7.1fs] %s\n%!" (Unix.gettimeofday () -. t0) s)
    fmt

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let shared : Snowplow.Pipeline.t option ref = ref None

(* Quick mode (SNOWPLOW_QUICK, used by @ci) shrinks PMM training to the
   integration-test scale — same shrink the CLI's serve command applies.
   The model is bad; the plumbing and the emitted key sets are the
   same. *)
let quick_pipeline_config =
  {
    Snowplow.Pipeline.default_config with
    kernel_seed = 19;
    gen_bases = 40;
    corpus_bases = 40;
    warmup_duration = 900.0;
    dataset =
      { Snowplow.Dataset.default_config with mutations_per_base = 200 };
    encoder = { Snowplow.Encoder.default_config with steps = 600 };
    trainer =
      { Snowplow.Trainer.default_config with epochs = 4; log_every = 0 };
  }

let pipeline () =
  match !shared with
  | Some p -> p
  | None ->
    log "training PMM (dataset collection + encoder pretraining + GNN)...";
    let config =
      if Sys.getenv_opt "SNOWPLOW_QUICK" = None then None
      else Some quick_pipeline_config
    in
    let p = Snowplow.Pipeline.train ?config () in
    log "PMM trained: %d train / %d valid / %d eval examples, %d parameters"
      (Array.length p.Snowplow.Pipeline.split.Snowplow.Dataset.train)
      (Array.length p.Snowplow.Pipeline.split.Snowplow.Dataset.valid)
      (Array.length p.Snowplow.Pipeline.split.Snowplow.Dataset.eval)
      (Snowplow.Pmm.num_parameters p.Snowplow.Pipeline.model);
    shared := Some p;
    p

(* Telemetry artifacts: when SNOWPLOW_ARTIFACTS names a directory, the
   campaign experiments sample an [Sp_obs.Timeseries] per run and export
   it there as <name>.jsonl (readable with `snowplow stats --timeseries`)
   — the source of truth for coverage/throughput trajectories. Unset (the
   default, including CI), nothing is allocated and nothing is written. *)
let artifacts_dir = Sys.getenv_opt "SNOWPLOW_ARTIFACTS"

let campaign_timeseries () =
  Option.map (fun _ -> Sp_obs.Timeseries.create ()) artifacts_dir

let emit_timeseries name ts =
  match (artifacts_dir, ts) with
  | Some dir, Some ts when Sp_obs.Timeseries.length ts > 0 ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".jsonl") in
    Sp_obs.Io.write_atomic path (Sp_obs.Timeseries.to_jsonl ts);
    log "timeseries artifact: %s" path
  | _ -> ()

(* Perf-trajectory files: each perf-sensitive experiment persists its
   headline numbers as BENCH_<NAME>.json at the repo root, so regressions
   show up as diffs in review. The bench binary runs from _build/default;
   walking up past the [_build] component finds the source root. Quick
   mode (SNOWPLOW_QUICK, used by @ci) runs reduced workloads whose
   numbers are junk — it must never overwrite the committed trajectory. *)
let repo_root () =
  let cwd = Sys.getcwd () in
  let rec strip dir =
    let base = Filename.basename dir in
    let parent = Filename.dirname dir in
    if base = "_build" then Some parent
    else if parent = dir then None
    else strip parent
  in
  (* No [_build] component: the binary was invoked from the source tree
     itself (e.g. a copied executable), so the cwd is the root. *)
  Option.value (strip cwd) ~default:cwd

let quick_mode () = Sys.getenv_opt "SNOWPLOW_QUICK" <> None

(* SNOWPLOW_BENCH_OUT redirects the trajectory files to another
   directory — how CI captures a fresh quick-mode run for
   [snowplow bench-diff] without ever overwriting the committed
   full-workload baselines. Without it, quick mode writes nothing. *)
let emit_bench name fields =
  let write path =
    let json =
      Sp_obs.Json.Obj
        (("experiment", Sp_obs.Json.Str name)
        :: List.map (fun (k, v) -> (k, Sp_obs.Json.Num v)) fields)
    in
    Sp_obs.Io.write_atomic path (Sp_obs.Json.to_string json ^ "\n");
    log "bench trajectory: %s" path
  in
  match Sys.getenv_opt "SNOWPLOW_BENCH_OUT" with
  | Some dir ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    write (Filename.concat dir (Printf.sprintf "BENCH_%s.json" name))
  | None ->
    if quick_mode () then
      log "quick mode: not writing BENCH_%s.json (reduced workload)" name
    else
      write
        (Filename.concat (repo_root ()) (Printf.sprintf "BENCH_%s.json" name))

let seed_corpus db ~seed ~size =
  Sp_syzlang.Gen.corpus (Sp_util.Rng.create seed) db ~size

let hours s = s /. 3600.0

let pct a b = 100.0 *. ((float_of_int a /. float_of_int (max 1 b)) -. 1.0)

let fmt_time s =
  if s < 60.0 then Printf.sprintf "%.0f" s
  else if s < 7200.0 then Printf.sprintf "%.0f" s
  else Printf.sprintf "%.0f" s

(* Mean coverage series across repeated runs, resampled on the snapshot
   grid, with min/max band. *)
let mean_series (reports : Campaign.report list) =
  match reports with
  | [] -> ([], [])
  | first :: _ ->
    let times = List.map (fun (s : Campaign.snapshot) -> s.Campaign.s_time) first.Campaign.series in
    let at t (r : Campaign.report) = float_of_int (Campaign.coverage_at r t) in
    let mean =
      List.map
        (fun t -> (hours t, Sp_util.Stats.mean (List.map (at t) reports)))
        times
    in
    let band =
      List.map
        (fun t ->
          let vs = List.map (at t) reports in
          let lo, hi = Sp_util.Stats.min_max vs in
          (hours t, lo, hi))
        times
    in
    (mean, band)
