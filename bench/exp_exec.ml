(* E11: the compiled executor — raw execs/sec, per-exec latency and
   allocation, bytecode vs the reference tree-walking interpreter.

   Two modes:
   - full (default): the default kernel, long measurement loops, the >=3x
     throughput bar of the acceptance criterion.
   - quick (SNOWPLOW_QUICK set): a smaller kernel and short loops, run
     from the @ci alias as a smoke test. Correctness (differential
     equality vs the reference oracle) and steady-state allocation are
     asserted in both modes — those are deterministic; the quick timing
     assertion keeps a wide margin (1.1x sanity bar) so a loaded CI box cannot flake
     it while a real executor regression still fails. *)

module Kernel = Sp_kernel.Kernel
module Reference = Sp_kernel.Reference
module Build = Sp_kernel.Build
module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Table = Sp_util.Table

let quick = Sys.getenv_opt "SNOWPLOW_QUICK" <> None

let failures = ref 0

let bar name ok detail =
  Exp_common.log "%s: %s — %s" name detail (if ok then "PASSES" else "FAILS");
  if not ok then incr failures

let equal_result (a : Kernel.result) (b : Kernel.result) =
  a.Kernel.traces = b.Kernel.traces
  && a.Kernel.crash = b.Kernel.crash
  && Bitset.equal a.Kernel.covered b.Kernel.covered
  && Bitset.equal a.Kernel.covered_edges b.Kernel.covered_edges
  && a.Kernel.objects = b.Kernel.objects

(* One measured executor mode: throughput loop (no per-exec clock), then a
   latency-sampling loop, then an allocation loop. *)
type measurement = {
  execs_per_s : float;
  p50_us : float;
  p99_us : float;
  words_per_exec : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let measure ~iters ~progs f =
  let np = Array.length progs in
  for i = 0 to (iters / 10) - 1 do
    f progs.(i mod np)
  done;
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    f progs.(i mod np)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let samples = min iters 2000 in
  let lat = Array.make samples 0.0 in
  for i = 0 to samples - 1 do
    let s0 = Unix.gettimeofday () in
    f progs.(i mod np);
    lat.(i) <- (Unix.gettimeofday () -. s0) *. 1e6
  done;
  Array.sort compare lat;
  let w0 = Gc.minor_words () in
  let alloc_iters = min iters 5000 in
  for i = 0 to alloc_iters - 1 do
    f progs.(i mod np)
  done;
  let w1 = Gc.minor_words () in
  {
    execs_per_s = float_of_int iters /. wall;
    p50_us = percentile lat 0.50;
    p99_us = percentile lat 0.99;
    words_per_exec = (w1 -. w0) /. float_of_int alloc_iters;
  }

let run () =
  Exp_common.section
    (if quick then "E11 — compiled executor (quick smoke)"
     else "E11 — compiled executor vs reference interpreter");
  (* Quick mode keeps the default kernel: the speedup is a function of
     handler size, and a toy kernel under-reports it enough to make the
     timing bar meaningless. Short loops keep the smoke test cheap. *)
  let config = Build.default_config in
  let kernel = Kernel.generate config in
  let oracle = Reference.of_built (Kernel.built kernel) in
  let db = Kernel.spec_db kernel in
  let rng = Rng.create 2025 in
  let progs =
    Array.init (if quick then 32 else 64) (fun _ ->
        Sp_syzlang.Gen.program rng db ())
  in
  let scratch = Kernel.create_scratch kernel in
  (* Correctness first: the bench must not time a wrong executor. Noise
     streams are duplicated so both interpreters consume identical draws. *)
  let diff_bad = ref 0 in
  Array.iteri
    (fun i prog ->
      let noise_level = if i mod 3 = 0 then 0.8 else 0.0 in
      let r_ref, r_byte =
        if noise_level > 0.0 then
          ( Reference.execute oracle ~noise:(Rng.create (900 + i), noise_level)
              prog,
            Kernel.execute kernel ~scratch
              ~noise:(Rng.create (900 + i), noise_level)
              prog )
        else (Reference.execute oracle prog, Kernel.execute kernel ~scratch prog)
      in
      if not (equal_result r_ref r_byte) then incr diff_bad)
    progs;
  bar "differential (bytecode == reference)" (!diff_bad = 0)
    (Printf.sprintf "%d/%d programs identical"
       (Array.length progs - !diff_bad)
       (Array.length progs));
  (* Measurements. *)
  let iters = if quick then 4_000 else 40_000 in
  let m_ref =
    measure ~iters:(iters / 4) ~progs (fun p ->
        ignore (Reference.execute oracle p))
  in
  let m_mat =
    measure ~iters ~progs (fun p -> ignore (Kernel.execute kernel p))
  in
  let m_scr =
    measure ~iters:(iters * 4) ~progs (fun p ->
        Kernel.execute_into kernel scratch p)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Executor performance (%d syscalls, %d blocks)"
           config.Build.num_syscalls (Kernel.num_blocks kernel))
      ~header:
        [ "executor"; "execs/s"; "p50"; "p99"; "minor words/exec"; "speedup" ]
      ()
  in
  let row name (m : measurement) =
    Table.add_row t
      [ name;
        Printf.sprintf "%.0f" m.execs_per_s;
        Printf.sprintf "%.1f us" m.p50_us;
        Printf.sprintf "%.1f us" m.p99_us;
        Printf.sprintf "%.1f" m.words_per_exec;
        Printf.sprintf "%.2fx" (m.execs_per_s /. m_ref.execs_per_s) ]
  in
  row "reference (tree walk)" m_ref;
  row "bytecode + result" m_mat;
  row "bytecode + scratch" m_scr;
  Table.print t;
  (* Artifact: one row per executor mode (t = mode index), so executor
     trajectories across commits have a machine-readable source. *)
  (let ts = Sp_obs.Timeseries.create () in
   List.iteri
     (fun i (m : measurement) ->
       Sp_obs.Timeseries.sample ts ~time:(float_of_int i)
         [
           ("execs_per_s", m.execs_per_s);
           ("p50_us", m.p50_us);
           ("p99_us", m.p99_us);
           ("words_per_exec", m.words_per_exec);
         ])
     [ m_ref; m_mat; m_scr ];
   Exp_common.emit_timeseries "e11-executor" (Some ts));
  Exp_common.emit_bench "E11"
    [ ("ref_execs_per_s", m_ref.execs_per_s);
      ("bytecode_execs_per_s", m_mat.execs_per_s);
      ("scratch_execs_per_s", m_scr.execs_per_s);
      ("scratch_p50_us", m_scr.p50_us);
      ("scratch_p99_us", m_scr.p99_us);
      ("scratch_words_per_exec", m_scr.words_per_exec);
      ("speedup_vs_reference", m_scr.execs_per_s /. m_ref.execs_per_s)
    ];
  let speedup = m_scr.execs_per_s /. m_ref.execs_per_s in
  bar "steady-state allocation"
    (m_scr.words_per_exec <= 8.0)
    (Printf.sprintf "%.2f minor words/exec with scratch reuse (bound 8)"
       m_scr.words_per_exec);
  if quick then
    (* Sanity bar only: short quick loops on a loaded 1-core CI host can
       skew the ratio badly (the dense/reference pair in e13 was observed
       at 1.48x under a full concurrent @ci build vs 3.5x uncontended).
       The real perf-rot gate is the 3x floor on the committed full-scale
       baseline, enforced by bench-diff. *)
    bar "throughput (quick)" (speedup >= 1.1)
      (Printf.sprintf "scratch path %.2fx reference (quick sanity bar 1.1x)"
         speedup)
  else
    bar "throughput" (speedup >= 3.0)
      (Printf.sprintf "scratch path %.2fx reference (bar 3x)" speedup);
  if !failures > 0 then begin
    Exp_common.log "e11: %d bar(s) FAILED" !failures;
    exit 1
  end
