(* E10: the parallel campaign executor — wall-clock speedup over the
   sequential loop on the same workload, and reproducibility.

   "Same workload" means the same total virtual VM-time (and therefore
   ~the same number of test executions): the sequential baseline fuzzes
   one VM for W virtual seconds; the parallel run fuzzes N VMs for W/N
   virtual seconds each. On a host with >= N cores the parallel run
   finishes the workload N-ish times faster; the speedup measured here is
   honest wall clock, so it degrades with the cores actually available
   (on a 1-core container the domains time-slice and the speedup is ~1x
   — the reproducibility half of the experiment still holds there, and
   the pass/fail verdict on the 2x bar is only asserted when the host
   has the cores to make it physically possible). *)

module Campaign = Sp_fuzz.Campaign
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Strategy = Sp_fuzz.Strategy
module Vm = Sp_fuzz.Vm
module Metrics = Sp_util.Metrics
module Table = Sp_util.Table

(* Quick mode shrinks the workload ~12x; the emitted key set (and the
   reproducibility check) stay identical, so bench-diff can compare a
   fresh quick run against the committed full-workload trajectory. *)
let workload =
  if Exp_common.quick_mode () then 1_200.0 else 14_400.0
(* virtual seconds of single-VM fuzzing *)

let kernel =
  Kernel.generate { Build.default_config with num_syscalls = 24 }

let db = Kernel.spec_db kernel

let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 2024) db ~size:80

let config ~duration =
  { Campaign.default_config with
    seed_corpus = seeds;
    seed = 17;
    duration;
    snapshot_every = 600.0 }

let vm_for s = Vm.create ~seed:(500 + (7919 * s)) kernel

let strategy_for _ = Strategy.syzkaller db

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_jobs jobs =
  let ts = Exp_common.campaign_timeseries () in
  let r =
    timed (fun () ->
        Campaign.run_parallel ?timeseries:ts ~jobs ~vm_for ~strategy_for
          (config ~duration:(workload /. float_of_int jobs)))
  in
  (* The repeated -jobs 4 run overwrites its artifact with identical
     bytes — the timeseries shares the report's determinism contract. *)
  Exp_common.emit_timeseries (Printf.sprintf "e10-jobs%d" jobs) ts;
  r

let fingerprint (r : Campaign.report) =
  ( r.Campaign.final_blocks,
    r.Campaign.final_edges,
    r.Campaign.executions,
    r.Campaign.corpus_size,
    List.map
      (fun (s : Campaign.snapshot) -> (s.Campaign.s_edges, s.Campaign.s_execs))
      r.Campaign.series,
    r.Campaign.origin_stats )

let run () =
  Exp_common.section "E10: parallel executor speedup and reproducibility";
  let cores = Domain.recommended_domain_count () in
  Exp_common.log "host reports %d usable core(s)" cores;
  let seq, seq_wall = run_jobs 1 in
  let results =
    List.map
      (fun jobs ->
        let r, wall = run_jobs jobs in
        (jobs, r, wall))
      [ 2; 4 ]
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Same workload (%.0f virtual VM-seconds), sequential vs sharded"
           workload)
      ~header:[ "executor"; "execs"; "edges"; "wall"; "speedup" ]
      ()
  in
  Table.add_row t
    [ "sequential";
      string_of_int seq.Campaign.executions;
      string_of_int seq.Campaign.final_edges;
      Printf.sprintf "%.2fs" seq_wall;
      "1.00x" ];
  List.iter
    (fun (jobs, r, wall) ->
      Table.add_row t
        [ Printf.sprintf "-jobs %d" jobs;
          string_of_int r.Campaign.executions;
          string_of_int r.Campaign.final_edges;
          Printf.sprintf "%.2fs" wall;
          Printf.sprintf "%.2fx" (seq_wall /. wall) ])
    results;
  Table.print t;
  Exp_common.emit_bench "E10"
    (("seq_wall_s", seq_wall)
    :: ("seq_execs", float_of_int seq.Campaign.executions)
    :: List.concat_map
         (fun (jobs, r, wall) ->
           [ (Printf.sprintf "jobs%d_wall_s" jobs, wall);
             (Printf.sprintf "jobs%d_speedup" jobs, seq_wall /. wall);
             (Printf.sprintf "jobs%d_execs" jobs, float_of_int r.Campaign.executions)
           ])
         results);
  (match List.find_opt (fun (jobs, _, _) -> jobs = 4) results with
  | Some (_, _, wall4) ->
    let speedup = seq_wall /. wall4 in
    if cores >= 4 then
      Exp_common.log "speedup at -jobs 4: %.2fx — %s the 2x bar" speedup
        (if speedup >= 2.0 then "PASSES" else "FAILS")
    else
      Exp_common.log
        "speedup at -jobs 4: %.2fx (2x bar not applicable: %d core(s) \
         available; domains time-slice one core)"
        speedup cores
  | None -> ());
  (* Reproducibility: the second half of the acceptance criterion. *)
  let again, _ = run_jobs 4 in
  let first =
    match List.find_opt (fun (jobs, _, _) -> jobs = 4) results with
    | Some (_, r, _) -> r
    | None -> assert false
  in
  Exp_common.log "two -jobs 4 runs with identical (seed, jobs): %s"
    (if fingerprint again = fingerprint first then
       "bit-for-bit identical reports"
     else "DIVERGED (nondeterminism bug!)");
  (* Pool observability from the last run's merged registry. *)
  let m = again.Campaign.metrics in
  Exp_common.log "pool: %d tasks, %d steals" (Metrics.counter m "pool.tasks")
    (Metrics.counter m "pool.steals");
  (match Metrics.summary m "pool.barrier_wait_s" with
  | Some s ->
    Exp_common.log "pool: barrier wait mean %.1f ms over %d barriers"
      (s.Metrics.mean *. 1e3) s.Metrics.count
  | None -> ());
  (match Metrics.summary m "pool.idle_ns" with
  | Some s -> Exp_common.log "pool: worker idle mean %.1f ms" (s.Metrics.mean /. 1e6)
  | None -> ())
