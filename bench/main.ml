(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

   Usage:
     bench/main.exe            run everything (E1-E8 + ablations)
     bench/main.exe e1 e2 ...  run a subset (e1 e2 e3 e5 e7 e8 abl)

   e11 (executor microbenchmark) also has a quick mode: set SNOWPLOW_QUICK
   to run it as the CI smoke test (small kernel, hard-failing bars).
*)

let experiments =
  [ ("e1", fun () -> Exp_pmm.e1 ());
    ("e2", fun () -> Exp_pmm.e2 ());
    ("e3", Exp_coverage.run);
    ("e5", Exp_crashes.run);
    ("e7", Exp_directed.run);
    ("e8", Exp_perf.run);
    ("e9", Exp_extension.run);
    ("e10", Exp_parallel.run);
    ("e11", Exp_exec.run);
    ("e12", Exp_sched.run);
    ("e13", Exp_ml.run);
    ("abl", Exp_ablation.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  print_endline "Snowplow (ASPLOS'25) reproduction - experiment harness";
  print_endline "======================================================";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown experiment %S (known: %s)\n" name
          (String.concat ", " (List.map fst experiments)))
    requested;
  Exp_common.log "all requested experiments finished"
