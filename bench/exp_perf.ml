(* E8: performance characteristics (§5.5) — inference service throughput
   and latency, fuzzing throughput, and Bechamel micro-benchmarks of the
   pipeline's hot operations. *)

module Campaign = Sp_fuzz.Campaign
module Kernel = Sp_kernel.Kernel
module Table = Sp_util.Table

let service_numbers p =
  (* Drive the service far beyond capacity and observe saturation. *)
  let kernel = p.Snowplow.Pipeline.kernel in
  let inference =
    Snowplow.Pipeline.inference_for p kernel
  in
  let db = Kernel.spec_db kernel in
  let progs = Exp_common.seed_corpus db ~seed:4242 ~size:64 in
  let with_targets =
    List.filter_map
      (fun prog ->
        let r = Kernel.execute kernel prog in
        if r.Kernel.crash <> None then None
        else
          match Snowplow.Query_graph.frontier_blocks kernel r with
          | [] -> None
          | frontier ->
            Some (prog, List.filteri (fun i _ -> i < 20) (List.map fst frontier)))
      progs
  in
  (* Unique (prog, targets) pairs keep the memo out of the way; requests at
     200 qps against a 57 qps service. *)
  let sent = ref 0 in
  List.iteri
    (fun i (prog, targets) ->
      let now = float_of_int i /. 200.0 in
      if Snowplow.Inference.request inference ~now prog ~targets then incr sent)
    with_targets;
  let horizon = 120.0 in
  let completed = Snowplow.Inference.poll inference ~now:horizon () in
  ( Snowplow.Inference.saturation_qps inference,
    Snowplow.Inference.mean_latency inference,
    !sent,
    List.length completed )

(* Quick mode shrinks the campaigns ~12x (and skips the 24-virtual-hour
   cache-bound run plus the microbenchmarks below); the emitted key set
   is unchanged, so bench-diff can compare a fresh quick run against the
   committed full-workload trajectory. *)
let campaign_duration () =
  if Exp_common.quick_mode () then 600.0 else 7200.0

let fuzz_throughput p =
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  let seeds = Exp_common.seed_corpus db ~seed:123 ~size:60 in
  let cfg =
    { Campaign.default_config with
      seed_corpus = seeds;
      seed = 3;
      duration = campaign_duration () }
  in
  let run name strategy =
    let ts = Exp_common.campaign_timeseries () in
    let vm = Sp_fuzz.Vm.create ~seed:5 kernel in
    let r = Campaign.run ?timeseries:ts vm strategy cfg in
    Exp_common.emit_timeseries name ts;
    (* tests per second of the modelled full-size fleet *)
    (float_of_int r.Campaign.executions /. cfg.Campaign.duration *. 96.0, r)
  in
  let syz, _ = run "e8-syzkaller" (Sp_fuzz.Strategy.syzkaller db) in
  let inference = Snowplow.Pipeline.inference_for p kernel in
  let snow, snow_report =
    run "e8-snowplow" (Snowplow.Hybrid.strategy ~inference kernel)
  in
  (syz, snow, snow_report, inference)

(* A long campaign against deliberately tiny prediction caches: over >= 24
   virtual hours of frontier churn the caches must stay at or under their
   configured bound — the eviction path, not luck, is what bounds memory.
   A large fleet_scale (slow virtual executor) keeps the real-time cost of
   simulating a full virtual day small. *)
let cache_bound_run p =
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  let cache_capacity = 64 in
  let inference =
    Snowplow.Pipeline.inference_for ~cache_capacity p kernel
  in
  let seeds = Exp_common.seed_corpus db ~seed:321 ~size:40 in
  let cfg =
    { Campaign.default_config with
      seed_corpus = seeds; seed = 11; duration = 86_400.0 }
  in
  let vm = Sp_fuzz.Vm.create ~seed:13 ~fleet_scale:(96.0 *. 24.0) kernel in
  let ts = Exp_common.campaign_timeseries () in
  let r =
    Campaign.run ?timeseries:ts vm (Snowplow.Hybrid.strategy ~inference kernel)
      cfg
  in
  Exp_common.emit_timeseries "e8-cache-bound" ts;
  (r, inference)

let print_campaign_metrics (r : Campaign.report) inference =
  let m = Sp_util.Metrics.create () in
  Sp_util.Metrics.merge_into ~dst:m r.Campaign.metrics;
  Sp_util.Metrics.merge_into ~dst:m (Snowplow.Inference.metrics inference);
  print_string (Sp_util.Metrics.render m)

let microbench p =
  let open Bechamel in
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  let rng = Sp_util.Rng.create 9 in
  let prog = Sp_syzlang.Gen.program rng db () in
  let result = Kernel.execute kernel prog in
  let engine = Sp_mutation.Engine.create db in
  let targets =
    Snowplow.Query_graph.frontier_blocks kernel result
    |> List.map fst
    |> List.filteri (fun i _ -> i < 20)
  in
  let graph = Snowplow.Query_graph.build kernel prog ~result ~targets in
  let prepared = Snowplow.Pmm.prepare graph in
  let block_embs = p.Snowplow.Pipeline.block_embs in
  let model = p.Snowplow.Pipeline.model in
  let tests =
    [ Test.make ~name:"kernel execute" (Staged.stage (fun () -> Kernel.execute kernel prog));
      Test.make ~name:"mutate (engine)"
        (Staged.stage (fun () -> Sp_mutation.Engine.mutate engine rng prog));
      Test.make ~name:"query-graph build"
        (Staged.stage (fun () -> Snowplow.Query_graph.build kernel prog ~result ~targets));
      Test.make ~name:"pmm inference (fast)"
        (Staged.stage (fun () -> Snowplow.Pmm.infer_logits model ~block_embs prepared));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw
    in
    results
  in
  let t = Table.create ~title:"Micro-benchmarks (Bechamel)" ~header:[ "operation"; "time/op" ] () in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            let ns = est in
            let pretty =
              if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            Table.add_row t [ name; pretty ]
          | _ -> Table.add_row t [ name; "?" ])
        results)
    tests;
  Table.print t

let run_slow_half p =
  let bound_report, bound_inference = cache_bound_run p in
  let cache_size = Snowplow.Inference.cache_size bound_inference in
  let cache_cap = Snowplow.Inference.cache_capacity bound_inference in
  let t = Table.create ~title:"Prediction-cache boundedness (24 virtual hours)"
      ~header:[ "metric"; "value" ] () in
  Table.add_row t
    [ "campaign duration"; Printf.sprintf "%.0f virtual s" 86_400.0 ];
  Table.add_row t
    [ "campaign executions"; string_of_int bound_report.Campaign.executions ];
  Table.add_row t
    [ "inference requests";
      string_of_int
        (Sp_util.Metrics.counter
           (Snowplow.Inference.metrics bound_inference)
           "inference.requests") ];
  Table.add_row t
    [ "cache entries at end / capacity"; Printf.sprintf "%d/%d" cache_size cache_cap ];
  Table.add_row t
    [ "cache bounded";
      (if cache_size <= cache_cap then "yes (entries <= capacity)" else "NO — BUG") ];
  Table.print t;
  print_newline ();
  print_endline "Campaign + inference loop metrics (24 h bounded-cache run):";
  print_campaign_metrics bound_report bound_inference;
  print_newline ();
  microbench p;
  print_newline ()

let run () =
  Exp_common.section "E8 — Performance characteristics (§5.5)";
  let p = Exp_common.pipeline () in
  let qps, latency, sent, completed = service_numbers p in
  let syz_tps, snow_tps, snow_report, snow_inference = fuzz_throughput p in
  let t = Table.create ~title:"Service and fuzzing performance" ~header:[ "metric"; "value"; "paper" ] () in
  Table.add_row t [ "inference capacity (saturation)"; Printf.sprintf "%.0f qps" qps; "57 qps" ];
  Table.add_row t
    [ "inference latency (under load)"; Printf.sprintf "%.2f s" latency; "0.69 s" ];
  Table.add_row t
    [ "queries completed under overload"; Printf.sprintf "%d/%d" completed sent; "-" ];
  Table.add_row t
    [ "Syzkaller throughput (modelled fleet)"; Printf.sprintf "%.0f tests/s" syz_tps; "390" ];
  Table.add_row t
    [ "Snowplow throughput (modelled fleet)"; Printf.sprintf "%.0f tests/s" snow_tps; "383" ];
  Table.add_row t
    [ "Snowplow campaign executions/s (virtual)";
      Printf.sprintf "%.1f execs/s"
        (float_of_int snow_report.Campaign.executions /. campaign_duration ());
      "-" ];
  Table.print t;
  Exp_common.emit_bench "E8"
    [ ("inference_saturation_qps", qps);
      ("inference_latency_s", latency);
      ("syzkaller_fleet_tests_per_s", syz_tps);
      ("snowplow_fleet_tests_per_s", snow_tps)
    ];
  print_newline ();
  print_endline "Campaign + inference loop metrics (Snowplow run):";
  print_campaign_metrics snow_report snow_inference;
  print_newline ();
  if Exp_common.quick_mode () then
    Exp_common.log
      "quick mode: skipping the 24-virtual-hour cache-bound run and the \
       microbenchmarks"
  else run_slow_half p
