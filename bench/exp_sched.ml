(* E12: the multi-tenant campaign scheduler — aggregate throughput of K
   small snowplow campaigns multiplexed over one shared pool and one
   shared inference service, against the same K campaigns run back-to-
   back the way the solo CLI runs them (each bringing up its own
   service).

   The shared-pool win on a small host is amortization: service bring-up
   (encoder pretraining, kernel embedding, service construction) is paid
   once for the whole roster instead of once per campaign, and the pool
   overlaps tenant slices when it has workers to spare. Wall clock is
   honest, so the parallel-overlap half degrades with the cores actually
   available — the amortization half does not, which is what the >= 1.5x
   acceptance bar is sized against.

   Two modes:
   - full (default): K = 6 tenants, 900 virtual seconds each, the 1.5x
     bar, and the committed BENCH_E12.json trajectory.
   - quick (SNOWPLOW_QUICK set, used by @ci): 3 shorter tenants; the
     determinism assertions are identical (they are exact) and the
     throughput bar keeps a wide margin (1.2x) so a loaded CI box cannot
     flake it while a real scheduler regression still fails. *)

module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Rng = Sp_util.Rng
module Json = Sp_obs.Json
module Campaign = Sp_fuzz.Campaign
module Scheduler = Sp_fuzz.Scheduler
module Vm = Sp_fuzz.Vm
module Table = Sp_util.Table

let quick = Exp_common.quick_mode ()

let failures = ref 0

let bar name ok detail =
  Exp_common.log "%s: %s — %s" name detail (if ok then "PASSES" else "FAILS");
  if not ok then incr failures

let tenants = if quick then 3 else 6

let duration = if quick then 600.0 else 900.0

let kernel =
  Kernel.generate
    { Build.default_config with
      num_syscalls = (if quick then 12 else 20);
      handler_budget = 150 }

let db = Kernel.spec_db kernel

let seed_of k = 1000 + (37 * k)

let cfg_for k =
  { Campaign.default_config with
    seed_corpus = Exp_common.seed_corpus db ~seed:(seed_of k lxor 0x5eed) ~size:40;
    seed = seed_of k;
    duration;
    snapshot_every = 300.0 }

let vm_for k s = Vm.create ~seed:(seed_of k + (7919 * s)) kernel

(* One service bring-up: the cold-start cost the roster either shares
   (scheduled) or pays per campaign (back-to-back). The encoder trains at
   its stock budget — no thumb on the scale — and the cost is still a
   conservative stand-in for the CLI's real per-campaign bring-up, which
   additionally trains the PMM. The same builder runs in both arms, so
   the comparison only measures how often it runs. *)
let build_service () =
  let encoder = Snowplow.Encoder.pretrain kernel in
  let model =
    Snowplow.Pmm.create
      ~encoder_dim:(Snowplow.Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  Snowplow.Inference.create ~kernel
    ~block_embs:(Snowplow.Encoder.embed_kernel encoder kernel)
    model

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Back-to-back baseline: each campaign exactly as the solo CLI runs it —
   its own freshly built service, its own funnel lane, one job. *)
let run_back_to_back () =
  timed (fun () ->
      List.init tenants (fun k ->
          let service = build_service () in
          let funnel = Snowplow.Funnel.create ~shards:1 service in
          let strategy_for _ =
            Snowplow.Hybrid.strategy_with
              ~endpoint:(Snowplow.Funnel.endpoint funnel ~shard:0)
              kernel
          in
          Campaign.run_parallel ~jobs:1
            ~on_barrier:(fun ~now -> ignore (Snowplow.Funnel.flush funnel ~now))
            ~vm_for:(vm_for k) ~strategy_for (cfg_for k)))

(* Scheduled arm: one service and one funnel with a lane per tenant,
   every campaign a tenant of one Scheduler.run over one shared pool. *)
let run_scheduled () =
  timed (fun () ->
      let service = build_service () in
      let funnel =
        Snowplow.Funnel.create_multi ~tenant_shards:(Array.make tenants 1)
          service
      in
      let roster =
        List.init tenants (fun k ->
            Scheduler.tenant
              ~name:(Printf.sprintf "t%d" k)
              ~jobs:1
              ~on_barrier:(fun ~now ->
                ignore (Snowplow.Funnel.flush_tenant funnel ~tenant:k ~now))
              ~vm_for:(vm_for k)
              ~strategy_for:(fun _ ->
                Snowplow.Hybrid.strategy_with
                  ~endpoint:
                    (Snowplow.Funnel.endpoint_for funnel ~tenant:k ~shard:0)
                  kernel)
              (cfg_for k))
      in
      match Scheduler.run ~workers:1 roster with
      | Ok r -> r
      | Error e -> failwith ("scheduler: " ^ e))

let report_bytes r = Json.to_string (Campaign.report_json r)

let run () =
  Exp_common.section "E12: multi-tenant scheduler, shared pool vs back-to-back";
  Exp_common.log "host reports %d usable core(s)"
    (Domain.recommended_domain_count ());
  let solo_reports, solo_wall = run_back_to_back () in
  let sched, sched_wall = run_scheduled () in
  let solo_execs =
    List.fold_left (fun a (r : Campaign.report) -> a + r.Campaign.executions)
      0 solo_reports
  in
  let sched_execs =
    List.fold_left
      (fun a tr -> a + tr.Scheduler.tr_executions)
      0 sched.Scheduler.sr_tenants
  in
  let tput execs wall = float_of_int execs /. wall in
  let solo_tput = tput solo_execs solo_wall in
  let sched_tput = tput sched_execs sched_wall in
  let ratio = sched_tput /. solo_tput in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%d campaigns x %.0f virtual seconds, 1 job each"
           tenants duration)
      ~header:[ "arm"; "execs"; "wall"; "execs/s" ]
      ()
  in
  Table.add_row t
    [ "back-to-back solo";
      string_of_int solo_execs;
      Printf.sprintf "%.2fs" solo_wall;
      Printf.sprintf "%.0f" solo_tput ];
  Table.add_row t
    [ "scheduler, shared pool";
      string_of_int sched_execs;
      Printf.sprintf "%.2fs" sched_wall;
      Printf.sprintf "%.0f" sched_tput ];
  Table.print t;
  Exp_common.log "aggregate throughput ratio: %.2fx over %d slices (%s)"
    ratio sched.Scheduler.sr_slices
    (String.concat " " sched.Scheduler.sr_schedule);
  (* Determinism: a second scheduled run (fresh service, same roster)
     replays the exact schedule and byte-identical per-tenant reports. *)
  let sched', _ = run_scheduled () in
  bar "e12 schedule deterministic"
    (sched'.Scheduler.sr_schedule = sched.Scheduler.sr_schedule)
    "replayed admission sequence";
  bar "e12 reports deterministic"
    (List.for_all2
       (fun a b ->
         report_bytes a.Scheduler.tr_report = report_bytes b.Scheduler.tr_report)
       sched.Scheduler.sr_tenants sched'.Scheduler.sr_tenants)
    "per-tenant reports byte-identical across runs";
  bar "e12 all tenants completed"
    (List.for_all (fun tr -> tr.Scheduler.tr_completed)
       sched.Scheduler.sr_tenants)
    (Printf.sprintf "%d tenants" tenants);
  let bar_ratio = if quick then 1.2 else 1.5 in
  bar "e12 throughput"
    (ratio >= bar_ratio)
    (Printf.sprintf "%.2fx against the %.1fx bar" ratio bar_ratio);
  Exp_common.emit_bench "E12"
    [ ("tenants", float_of_int tenants);
      ("duration_vs", duration);
      ("solo_wall_s", solo_wall);
      ("sched_wall_s", sched_wall);
      ("solo_execs", float_of_int solo_execs);
      ("sched_execs", float_of_int sched_execs);
      ("solo_execs_per_s", solo_tput);
      ("sched_execs_per_s", sched_tput);
      ("throughput_ratio", ratio) ];
  if !failures > 0 then begin
    Exp_common.log "e12: %d bar(s) FAILED" !failures;
    exit 1
  end
