(* Tests for the multi-tenant campaign scheduler: the golden property —
   every tenant's report under a scheduled run is byte-identical to the
   same campaign run solo with the same (seed, jobs), including across a
   kill + resume mid-schedule — plus a hand-computed stride-schedule
   golden and a qcheck model test of the accounting invariants (exact
   budgets, work conservation, per-tenant sums matching pool totals). *)

module Rng = Sp_util.Rng
module Metrics = Sp_util.Metrics
module Json = Sp_obs.Json
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Gen = Sp_syzlang.Gen
module Vm = Sp_fuzz.Vm
module Strategy = Sp_fuzz.Strategy
module Campaign = Sp_fuzz.Campaign
module Scheduler = Sp_fuzz.Scheduler
module Snapshot = Sp_fuzz.Snapshot

let check = Alcotest.check

let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

(* A tenant is identified by its campaign seed: config, VM seeds and the
   seed corpus all derive from it, exactly as the CLI's serve command
   derives them, so solo and scheduled runs are comparable by
   construction. Syzkaller-only: a shared warm inference service would
   couple snowplow tenants through its queue and caches, so the
   solo-equality contract is a syzkaller-tenant property. *)
let cfg_for ?(duration = 900.0) seed =
  { Campaign.default_config with
    seed_corpus = Gen.corpus (Rng.create (seed lxor 0x5eed)) db ~size:30;
    seed;
    duration;
    snapshot_every = 300.0 }

let vm_for_seed seed s = Vm.create ~seed:(seed + (7919 * s)) kernel

let strategy_for _ = Strategy.syzkaller db

let report_bytes r = Json.to_string (Campaign.report_json r)

(* The solo oracle runs under a snapshot dir so that [run_parallel] takes
   the barrier-sliced instance path even at jobs = 1 (without one it
   delegates to the sequential executor, a different instruction stream).
   The scheduler always runs the instance path, so that is the contract:
   scheduled == solo-with-snapshots, for every (seed, jobs). *)
let with_tmp_dir f =
  let dir = Filename.temp_file "sched-solo" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let solo ?duration ~seed ~jobs () =
  with_tmp_dir (fun dir ->
      report_bytes
        (Campaign.run_parallel ~snapshot_dir:dir ~jobs
           ~vm_for:(vm_for_seed seed) ~strategy_for (cfg_for ?duration seed)))

let tenant ?duration ?weight ?exec_budget ?snapshot_dir ?restore ~name ~seed
    ~jobs () =
  Scheduler.tenant ?weight ?exec_budget ?snapshot_dir ?restore ~name ~jobs
    ~vm_for:(vm_for_seed seed) ~strategy_for (cfg_for ?duration seed)

let run_ok ?workers ?max_slices tenants =
  match Scheduler.run ?workers ?max_slices tenants with
  | Ok r -> r
  | Error e -> Alcotest.failf "Scheduler.run failed: %s" e

let by_name (r : Scheduler.report) name =
  List.find (fun tr -> tr.Scheduler.tr_name = name) r.Scheduler.sr_tenants

(* ------------------------------------------------------------------ *)
(* Golden determinism: scheduled == solo                                *)
(* ------------------------------------------------------------------ *)

(* The three-tenant roster used across the golden tests: mixed widths,
   mixed durations, mixed weights, over a pool narrower than the summed
   jobs — tenants genuinely contend for workers. *)
let roster ?snapshot_root () =
  let dir name =
    Option.map (fun root -> Filename.concat root name) snapshot_root
  in
  [ tenant ?snapshot_dir:(dir "alpha") ~name:"alpha" ~seed:7 ~jobs:2 ();
    tenant ?snapshot_dir:(dir "beta") ~name:"beta" ~seed:23 ~jobs:1
      ~weight:2.0 ~duration:600.0 ();
    tenant ?snapshot_dir:(dir "gamma") ~name:"gamma" ~seed:5 ~jobs:2 () ]

let solo_oracle = function
  | "alpha" -> solo ~seed:7 ~jobs:2 ()
  | "beta" -> solo ~seed:23 ~jobs:1 ~duration:600.0 ()
  | "gamma" -> solo ~seed:5 ~jobs:2 ()
  | name -> Alcotest.failf "unknown tenant %s" name

let test_scheduled_equals_solo () =
  let r = run_ok ~workers:2 (roster ()) in
  check Alcotest.int "three tenants reported" 3
    (List.length r.Scheduler.sr_tenants);
  List.iter
    (fun (tr : Scheduler.tenant_report) ->
      Alcotest.(check bool)
        (tr.Scheduler.tr_name ^ " completed")
        true tr.Scheduler.tr_completed;
      check Alcotest.string
        (tr.Scheduler.tr_name ^ " report byte-identical to its solo run")
        (solo_oracle tr.Scheduler.tr_name)
        (report_bytes tr.Scheduler.tr_report))
    r.Scheduler.sr_tenants;
  (* The schedule itself is deterministic: a second run reproduces both
     the admission sequence and every report. *)
  let r' = run_ok ~workers:2 (roster ()) in
  check (Alcotest.list Alcotest.string) "schedule reproducible"
    r.Scheduler.sr_schedule r'.Scheduler.sr_schedule

let with_dir name f =
  if not (Sys.file_exists name) then Sys.mkdir name 0o755;
  f name

let test_kill_and_resume_mid_schedule () =
  let root = "sched-resume" in
  with_dir root (fun root ->
      (* Phase 1: kill the service after 4 admitted slices. Every tenant
         has reached at least one barrier by then, so every tenant has a
         snapshot to resume from. *)
      let killed = run_ok ~workers:2 ~max_slices:4 (roster ~snapshot_root:root ()) in
      check Alcotest.int "phase 1 cut at 4 slices" 4 killed.Scheduler.sr_slices;
      Alcotest.(check bool) "someone was left unfinished" true
        (List.exists
           (fun tr -> not tr.Scheduler.tr_completed)
           killed.Scheduler.sr_tenants);
      (* Phase 2: a fresh scheduler (fresh process, in effect) resumes
         each tenant from its latest snapshot and runs to completion. *)
      let restore name =
        match Snapshot.latest ~dir:(Filename.concat root name) with
        | None -> Alcotest.failf "tenant %s left no snapshot" name
        | Some (_, file) -> (
          match Snapshot.read file with
          | Ok snap -> snap
          | Error e -> Alcotest.failf "tenant %s snapshot unreadable: %s" name e)
      in
      let resumed =
        run_ok ~workers:2
          [ tenant ~restore:(restore "alpha") ~name:"alpha" ~seed:7 ~jobs:2 ();
            tenant ~restore:(restore "beta") ~name:"beta" ~seed:23 ~jobs:1
              ~weight:2.0 ~duration:600.0 ();
            tenant ~restore:(restore "gamma") ~name:"gamma" ~seed:5 ~jobs:2 () ]
      in
      List.iter
        (fun (tr : Scheduler.tenant_report) ->
          Alcotest.(check bool)
            (tr.Scheduler.tr_name ^ " completed after resume")
            true tr.Scheduler.tr_completed;
          check Alcotest.string
            (tr.Scheduler.tr_name
            ^ " resumed report still byte-identical to its solo run")
            (solo_oracle tr.Scheduler.tr_name)
            (report_bytes tr.Scheduler.tr_report))
        resumed.Scheduler.sr_tenants)

(* ------------------------------------------------------------------ *)
(* Stride schedule golden                                               *)
(* ------------------------------------------------------------------ *)

let test_stride_schedule_golden () =
  (* One worker, jobs=1 each, so exactly one slice is admitted per round
     and the schedule is the raw stride order. Tenant A (weight 2)
     advances its virtual clock at half pass-cost: passes 150/300/450
     against B's 300/600/900, ties to the lower index. *)
  let r =
    run_ok ~workers:1
      [ tenant ~name:"A" ~seed:7 ~jobs:1 ~weight:2.0 ();
        tenant ~name:"B" ~seed:23 ~jobs:1 () ]
  in
  check (Alcotest.list Alcotest.string) "hand-computed stride order"
    [ "A"; "A"; "B"; "A"; "B"; "B" ]
    r.Scheduler.sr_schedule;
  (* Same roster at weight 1:1 alternates (ties to the lower index). *)
  let eq =
    run_ok ~workers:1
      [ tenant ~name:"A" ~seed:7 ~jobs:1 ();
        tenant ~name:"B" ~seed:23 ~jobs:1 () ]
  in
  check (Alcotest.list Alcotest.string) "equal weights alternate"
    [ "A"; "B"; "A"; "B"; "A"; "B" ]
    eq.Scheduler.sr_schedule

let test_validation () =
  Alcotest.check_raises "duplicate names rejected"
    (Invalid_argument "Scheduler.run: duplicate tenant name \"A\"") (fun () ->
      ignore
        (Scheduler.run
           [ tenant ~name:"A" ~seed:1 ~jobs:1 ();
             tenant ~name:"A" ~seed:2 ~jobs:1 () ]));
  Alcotest.check_raises "empty roster rejected"
    (Invalid_argument "Scheduler.run: at least one tenant required") (fun () ->
      ignore (Scheduler.run []));
  Alcotest.check_raises "bad weight rejected"
    (Invalid_argument "Scheduler.tenant: weight must be finite and positive")
    (fun () -> ignore (tenant ~name:"A" ~seed:1 ~jobs:1 ~weight:0.0 ()));
  match
    Scheduler.run
      [ tenant ~restore:Json.Null ~name:"A" ~seed:1 ~jobs:1 () ]
  with
  | Ok _ -> Alcotest.fail "garbage restore snapshot accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Telemetry plane                                                      *)
(* ------------------------------------------------------------------ *)

(* The per-tenant object served by the exporter's /tenants endpoint is
   part of the scrape contract: pin its exact bytes. *)
let test_tenant_status_golden () =
  check Alcotest.string "/tenants object, exact bytes"
    ("{\"name\":\"alpha\",\"weight\":2,\"state\":\"healthy\",\"pass\":450.5,"
    ^ "\"barrier\":3,\"slices\":7,\"executions\":420,"
    ^ "\"budget_remaining\":80,\"retries\":1}")
    (Json.to_string
       (Scheduler.tenant_status_json
          { Scheduler.ts_name = "alpha";
            ts_weight = 2.0;
            ts_state = "healthy";
            ts_pass = 450.5;
            ts_barrier = 3;
            ts_slices = 7;
            ts_executions = 420;
            ts_budget_remaining = Some 80;
            ts_retries = 1 }));
  check Alcotest.string "unbudgeted tenant serialises null"
    ("{\"name\":\"beta\",\"weight\":1,\"state\":\"quarantined\",\"pass\":900,"
    ^ "\"barrier\":0,\"slices\":0,\"executions\":0,"
    ^ "\"budget_remaining\":null,\"retries\":3}")
    (Json.to_string
       (Scheduler.tenant_status_json
          { Scheduler.ts_name = "beta";
            ts_weight = 1.0;
            ts_state = "quarantined";
            ts_pass = 900.0;
            ts_barrier = 0;
            ts_slices = 0;
            ts_executions = 0;
            ts_budget_remaining = None;
            ts_retries = 3 }))

let snapshot_dir_bytes root =
  Sys.readdir root |> Array.to_list |> List.sort compare
  |> List.map (fun name ->
         let ic = open_in_bin (Filename.concat root name) in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         (name, s))

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The load-bearing property of the telemetry plane: arming the exporter
   and the event log must not change one byte of any report or any
   snapshot — scrapes read only barrier-published immutable payloads. *)
let test_armed_vs_unarmed_identity () =
  let baseline =
    with_dir "sched-unarmed" (fun root ->
        run_ok ~workers:2 (roster ~snapshot_root:root ()))
  in
  let events = Sp_obs.Events.create () in
  let exporter = Sp_obs.Exporter.create ~events () in
  let port =
    match Sp_obs.Exporter.start exporter ~port:0 with
    | Ok p -> p
    | Error e -> Alcotest.failf "exporter failed to start: %s" e
  in
  let armed =
    Fun.protect
      ~finally:(fun () -> Sp_obs.Exporter.stop exporter)
      (fun () ->
        with_dir "sched-armed" (fun root ->
            let r =
              match
                Scheduler.run ~workers:2 ~events
                  ~telemetry:(Scheduler.telemetry exporter)
                  (roster ~snapshot_root:root ())
              with
              | Ok r -> r
              | Error e -> Alcotest.failf "armed run failed: %s" e
            in
            (* The plane was really live: the final publication is
               scrapeable and names every tenant. *)
            (match Sp_obs.Http.get ~host:"127.0.0.1" ~port "/tenants" with
            | Ok (200, _, body) ->
              List.iter
                (fun name ->
                  Alcotest.(check bool)
                    (name ^ " appears in /tenants") true
                    (contains_sub body ("\"name\":\"" ^ name ^ "\"")))
                [ "alpha"; "beta"; "gamma" ]
            | Ok (code, _, _) -> Alcotest.failf "/tenants -> HTTP %d" code
            | Error e -> Alcotest.failf "/tenants scrape failed: %s" e);
            r))
  in
  check
    (Alcotest.list Alcotest.string)
    "identical schedule" baseline.Scheduler.sr_schedule
    armed.Scheduler.sr_schedule;
  List.iter2
    (fun a b ->
      check Alcotest.string
        (a.Scheduler.tr_name ^ " report bytes unchanged by telemetry")
        (report_bytes a.Scheduler.tr_report)
        (report_bytes b.Scheduler.tr_report))
    baseline.Scheduler.sr_tenants armed.Scheduler.sr_tenants;
  List.iter
    (fun name ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        (name ^ " snapshots byte-identical")
        (snapshot_dir_bytes (Filename.concat "sched-unarmed" name))
        (snapshot_dir_bytes (Filename.concat "sched-armed" name)))
    [ "alpha"; "beta"; "gamma" ];
  (* The event stream saw the run: scheduler.start first, and a
     scheduler.finish among the retained tail. *)
  Alcotest.(check bool) "events recorded" true (Sp_obs.Events.seq events > 0);
  let kinds =
    Sp_obs.Events.since ~min_level:Sp_obs.Events.Debug events 0
    |> List.filter_map (fun e ->
           match Json.member "kind" (Sp_obs.Events.event_json e) with
           | Some (Json.Str k) -> Some k
           | _ -> None)
  in
  Alcotest.(check bool) "scheduler.finish event present" true
    (List.mem "scheduler.finish" kinds)

(* ------------------------------------------------------------------ *)
(* Model test: accounting invariants                                    *)
(* ------------------------------------------------------------------ *)

(* A random scenario: 2-3 tenants with arbitrary seeds, widths, weights
   and (sometimes) exec budgets, over a 1-3 worker pool. Every scenario
   must satisfy the scheduler's bookkeeping contract exactly. *)
let scenario_gen =
  QCheck.Gen.(
    let tenant_gen =
      quad (int_range 1 1000) (int_range 1 2)
        (oneofl [ 0.5; 1.0; 2.0 ])
        (opt (int_range 200 3000))
    in
    pair (list_size (int_range 2 3) tenant_gen) (int_range 1 3))

let scenario_print (tenants, workers) =
  Printf.sprintf "workers=%d tenants=[%s]" workers
    (String.concat "; "
       (List.map
          (fun (seed, jobs, w, budget) ->
            Printf.sprintf "(seed %d, jobs %d, w %.1f, budget %s)" seed jobs w
              (match budget with None -> "-" | Some b -> string_of_int b))
          tenants))

let qcheck_scheduler_model =
  QCheck.Test.make ~count:5 ~name:"scheduler accounting model"
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun (tenant_specs, workers) ->
      let mk () =
        List.mapi
          (fun i (seed, jobs, weight, exec_budget) ->
            tenant ~duration:600.0 ~weight ?exec_budget
              ~name:(Printf.sprintf "t%d" i) ~seed ~jobs ())
          tenant_specs
      in
      let r = run_ok ~workers (mk ()) in
      let m = r.Scheduler.sr_metrics in
      List.iteri
        (fun i (_, jobs, _, exec_budget) ->
          let tr = by_name r (Printf.sprintf "t%d" i) in
          (* Exact quota accounting: a budget can never be overrun, and
             an unfinished tenant must be exactly the budget-exhausted
             one (no max_slices here, so nothing else can cut it). *)
          (match exec_budget with
          | Some b ->
            if tr.Scheduler.tr_executions > b then
              QCheck.Test.fail_reportf "t%d ran %d execs over budget %d" i
                tr.Scheduler.tr_executions b
          | None -> ());
          if not (tr.Scheduler.tr_completed || tr.Scheduler.tr_budget_exhausted)
          then QCheck.Test.fail_reportf "t%d neither completed nor exhausted" i;
          (* Work conservation: a tenant that completed was given every
             barrier its campaign needed — the scheduler never stalled
             it short of its duration. *)
          if
            tr.Scheduler.tr_completed
            && (not tr.Scheduler.tr_budget_exhausted)
            && tr.Scheduler.tr_slices < 2
          then
            QCheck.Test.fail_reportf "t%d completed 600 s in %d slices" i
              tr.Scheduler.tr_slices;
          (* Per-tenant metrics agree with the report rows. *)
          let slices_m =
            Metrics.counter m (Printf.sprintf "scheduler.tenant.t%d.slices" i)
          in
          let execs_m =
            Metrics.counter m (Printf.sprintf "scheduler.tenant.t%d.execs" i)
          in
          if slices_m <> tr.Scheduler.tr_slices then
            QCheck.Test.fail_reportf "t%d slices metric %d <> report %d" i
              slices_m tr.Scheduler.tr_slices;
          if execs_m <> tr.Scheduler.tr_executions then
            QCheck.Test.fail_reportf "t%d execs metric %d <> report %d" i
              execs_m tr.Scheduler.tr_executions;
          ignore jobs)
        tenant_specs;
      (* Per-tenant totals sum to the pool-wide totals. *)
      let sum f = List.fold_left (fun acc tr -> acc + f tr) 0 r.Scheduler.sr_tenants in
      if sum (fun tr -> tr.Scheduler.tr_executions)
         <> Metrics.counter m "scheduler.execs_total"
      then QCheck.Test.fail_reportf "tenant executions do not sum to the total";
      if sum (fun tr -> tr.Scheduler.tr_slices) <> r.Scheduler.sr_slices then
        QCheck.Test.fail_reportf "tenant slices do not sum to sr_slices";
      if List.length r.Scheduler.sr_schedule <> r.Scheduler.sr_slices then
        QCheck.Test.fail_reportf "schedule length <> slice count";
      (* Every admitted slice submitted exactly [jobs] pool tasks. *)
      let expected_tasks =
        List.fold_left
          (fun acc name ->
            let i =
              List.find_index (fun tr -> tr.Scheduler.tr_name = name)
                r.Scheduler.sr_tenants
              |> Option.get
            in
            let _, jobs, _, _ = List.nth tenant_specs i in
            acc + jobs)
          0 r.Scheduler.sr_schedule
      in
      if Metrics.counter m "pool.tasks" <> expected_tasks then
        QCheck.Test.fail_reportf "pool.tasks %d <> schedule-implied %d"
          (Metrics.counter m "pool.tasks") expected_tasks;
      (* Schedule determinism: an identical scenario replays the exact
         schedule and byte-identical per-tenant reports. *)
      let r' = run_ok ~workers (mk ()) in
      if r'.Scheduler.sr_schedule <> r.Scheduler.sr_schedule then
        QCheck.Test.fail_reportf "schedule not deterministic";
      List.iter2
        (fun a b ->
          if
            report_bytes a.Scheduler.tr_report
            <> report_bytes b.Scheduler.tr_report
          then QCheck.Test.fail_reportf "%s report not deterministic" a.Scheduler.tr_name)
        r.Scheduler.sr_tenants r'.Scheduler.sr_tenants;
      true)

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sp_sched"
    [ ( "golden",
        [ Alcotest.test_case "scheduled == solo, per tenant" `Quick
            test_scheduled_equals_solo;
          Alcotest.test_case "kill + resume mid-schedule" `Quick
            test_kill_and_resume_mid_schedule;
          Alcotest.test_case "stride schedule, hand-computed" `Quick
            test_stride_schedule_golden;
          Alcotest.test_case "validation" `Quick test_validation ] );
      ( "telemetry",
        [ Alcotest.test_case "/tenants status object golden" `Quick
            test_tenant_status_golden;
          Alcotest.test_case "armed vs unarmed byte identity" `Quick
            test_armed_vs_unarmed_identity ] );
      ("model", [ qtest qcheck_scheduler_model ]) ]
