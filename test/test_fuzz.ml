(* Tests for sp_fuzz: clock, VM cost model, corpus, triage, strategies and
   the campaign loop. *)

module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Bug = Sp_kernel.Bug
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Clock = Sp_fuzz.Clock
module Vm = Sp_fuzz.Vm
module Corpus = Sp_fuzz.Corpus
module Triage = Sp_fuzz.Triage
module Strategy = Sp_fuzz.Strategy
module Campaign = Sp_fuzz.Campaign

let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

(* ------------------------------------------------------------------ *)
(* Clock and Vm                                                         *)
(* ------------------------------------------------------------------ *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.5;
  Alcotest.(check (float 1e-9)) "advances" 2.0 (Clock.now c);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Clock.advance: negative increment") (fun () ->
      Clock.advance c (-1.0))

let test_vm_charges_time () =
  let vm = Vm.create ~seed:1 kernel in
  let clock = Clock.create () in
  let prog = Gen.program (Rng.create 1) db () in
  let _ = Vm.run vm clock prog in
  Alcotest.(check bool) "time charged" true (Clock.now clock > 0.0);
  Alcotest.(check int) "execution counted" 1 (Vm.executions vm)

let test_vm_cost_scales_with_length () =
  let prog_short = Gen.program ~min_calls:2 ~max_calls:2 (Rng.create 1) db () in
  let prog_long = Gen.program ~min_calls:10 ~max_calls:10 (Rng.create 2) db () in
  let cost p =
    let vm = Vm.create ~seed:1 kernel in
    let clock = Clock.create () in
    let r = Vm.run vm clock p in
    if r.Kernel.crash <> None then None else Some (Clock.now clock)
  in
  match (cost prog_short, cost prog_long) with
  | Some a, Some b -> Alcotest.(check bool) "longer costs more" true (b > a)
  | _ -> () (* a crash would add restart cost; skip *)

let test_vm_throughput_factor () =
  let vm = Vm.create ~seed:1 kernel in
  Alcotest.check_raises "factor must be positive"
    (Invalid_argument "Vm.set_throughput_factor: must be positive") (fun () ->
      Vm.set_throughput_factor vm 0.0)

(* ------------------------------------------------------------------ *)
(* Corpus                                                               *)
(* ------------------------------------------------------------------ *)

let entry_of prog =
  let r = Kernel.execute kernel prog in
  { Corpus.prog; blocks = r.Kernel.covered; edges = r.Kernel.covered_edges;
    added_at = 0.0 }

let test_corpus_dedup () =
  let c = Corpus.create () in
  let p = Gen.program (Rng.create 5) db () in
  Alcotest.(check bool) "first add" true (Corpus.add c (entry_of p));
  Alcotest.(check bool) "duplicate rejected" false (Corpus.add c (entry_of p));
  Alcotest.(check int) "size" 1 (Corpus.size c);
  Alcotest.(check bool) "mem_prog" true (Corpus.mem_prog c p)

let test_corpus_hash_collision () =
  (* Forge collisions with a degenerate hash: every program lands on the
     same slot. Distinct programs must still be admitted (structural
     confirmation), true duplicates must still be rejected. *)
  let c = Corpus.create ~hash:(fun _ -> 42) () in
  let progs = Gen.corpus (Rng.create 77) db ~size:6 in
  let distinct = ref 0 in
  List.iter (fun p -> if Corpus.add c (entry_of p) then incr distinct) progs;
  let unique =
    List.length
      (List.sort_uniq
         (fun a b -> if Prog.equal a b then 0 else compare (Prog.to_string a) (Prog.to_string b))
         progs)
  in
  Alcotest.(check int) "collisions do not drop distinct programs" unique !distinct;
  Alcotest.(check int) "all admitted entries kept" unique (Corpus.size c);
  let p = List.hd progs in
  Alcotest.(check bool) "duplicate still rejected" false (Corpus.add c (entry_of p));
  Alcotest.(check bool) "mem_prog sees through collisions" true (Corpus.mem_prog c p)

let test_corpus_choose () =
  let c = Corpus.create () in
  Alcotest.check_raises "empty corpus"
    (Invalid_argument "Corpus.choose: empty corpus") (fun () ->
      ignore (Corpus.choose (Rng.create 1) c));
  List.iter
    (fun p -> ignore (Corpus.add c (entry_of p)))
    (Gen.corpus (Rng.create 9) db ~size:10);
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    ignore (Corpus.choose rng c)
  done

let test_corpus_choose_directed () =
  (* distance = program length; directed choice should mostly pick the
     shortest entries *)
  let distance (e : Corpus.entry) = Array.length e.Corpus.prog in
  let c = Corpus.create ~distance () in
  List.iter
    (fun p -> ignore (Corpus.add c (entry_of p)))
    (Gen.corpus (Rng.create 9) db ~size:10);
  let best =
    List.fold_left min max_int
      (List.map (fun (e : Corpus.entry) -> Array.length e.Corpus.prog) (Corpus.entries c))
  in
  Alcotest.(check (option int)) "min tier indexed" (Some best) (Corpus.min_distance c);
  let rng = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 100 do
    if Array.length (Corpus.choose_directed rng c).Corpus.prog = best then
      incr hits
  done;
  Alcotest.(check bool) "mostly picks closest tier" true (!hits > 70);
  Alcotest.check_raises "undirected corpus rejected"
    (Invalid_argument "Corpus.choose_directed: corpus has no distance function")
    (fun () ->
      let u = Corpus.create () in
      ignore (Corpus.add u (entry_of (Gen.program (Rng.create 10) db ())));
      ignore (Corpus.choose_directed (Rng.create 1) u))

(* ------------------------------------------------------------------ *)
(* Triage                                                               *)
(* ------------------------------------------------------------------ *)

let test_severity_filter () =
  Alcotest.(check bool) "serious crash passes" true
    (Triage.severity_filter "general protection fault in foo");
  Alcotest.(check bool) "INFO filtered" false (Triage.severity_filter "INFO: task hung");
  Alcotest.(check bool) "SYZFAIL filtered" false (Triage.severity_filter "SYZFAIL: no");
  Alcotest.(check bool) "lost connection filtered" false
    (Triage.severity_filter "lost connection to the VM")

let find_crashing_prog () =
  (* random-search for a program that crashes the kernel *)
  let rng = Rng.create 100 in
  let engine = Sp_mutation.Engine.create db in
  let rec hunt tries =
    if tries = 0 then None
    else begin
      let p = Gen.program rng db () in
      let rec mutate_hunt p k =
        if k = 0 then None
        else
          let m, _ = Sp_mutation.Engine.mutate engine rng p in
          let r = Kernel.execute kernel m in
          match r.Kernel.crash with
          | Some c -> Some (m, c)
          | None -> mutate_hunt m (k - 1)
      in
      match mutate_hunt p 60 with Some x -> Some x | None -> hunt (tries - 1)
    end
  in
  hunt 300

let test_triage_dedup_and_repro () =
  match find_crashing_prog () with
  | None -> () (* no crash found quickly; the integration test covers this *)
  | Some (prog, crash) ->
    let t = Triage.create kernel in
    let vm = Vm.create ~seed:2 kernel in
    let rng = Rng.create 3 in
    (match Triage.record t rng ~vm ~now:1.0 crash prog with
    | None -> Alcotest.fail "first report swallowed"
    | Some f ->
      Alcotest.(check bool) "description matches bug" true
        (f.Triage.description = Bug.description crash.Kernel.bug);
      (match f.Triage.reproducer with
      | Some repro ->
        (* the minimized reproducer must still crash with the same bug *)
        let r = Kernel.execute kernel repro in
        (match r.Kernel.crash with
        | Some c ->
          Alcotest.(check int) "same bug" crash.Kernel.bug.Bug.id c.Kernel.bug.Bug.id
        | None -> Alcotest.fail "reproducer does not crash");
        Alcotest.(check bool) "minimized" true (Array.length repro <= Array.length prog)
      | None ->
        Alcotest.(check bool) "only racy bugs fail to reproduce" true
          crash.Kernel.bug.Bug.concurrency));
    Alcotest.(check bool) "duplicate suppressed" true
      (Triage.record t rng ~vm ~now:2.0 crash prog = None)

(* ------------------------------------------------------------------ *)
(* Campaign                                                             *)
(* ------------------------------------------------------------------ *)

let seeds = Gen.corpus (Rng.create 42) db ~size:30

let short_cfg =
  { Campaign.default_config with
    seed_corpus = seeds; seed = 7; duration = 900.0; snapshot_every = 300.0 }

let test_campaign_runs () =
  let vm = Vm.create ~seed:1 kernel in
  let r = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  Alcotest.(check bool) "made progress" true (r.Campaign.final_edges > 0);
  Alcotest.(check bool) "has corpus" true (r.Campaign.corpus_size > 0);
  Alcotest.(check bool) "executions happened" true (r.Campaign.executions > 100)

let test_campaign_series_monotone () =
  let vm = Vm.create ~seed:1 kernel in
  let r = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  let rec check_mono last = function
    | [] -> ()
    | (s : Campaign.snapshot) :: rest ->
      Alcotest.(check bool) "edges monotone" true (s.Campaign.s_edges >= last);
      check_mono s.Campaign.s_edges rest
  in
  check_mono 0 r.Campaign.series;
  (match List.rev r.Campaign.series with
  | last :: _ ->
    Alcotest.(check int) "series ends at final coverage" r.Campaign.final_edges
      last.Campaign.s_edges;
    Alcotest.(check (float 1e-6)) "series ends at duration" short_cfg.Campaign.duration
      last.Campaign.s_time
  | [] -> Alcotest.fail "empty series")

let test_campaign_deterministic () =
  let run () =
    let vm = Vm.create ~seed:1 kernel in
    (Campaign.run vm (Strategy.syzkaller db) short_cfg).Campaign.final_edges
  in
  Alcotest.(check int) "same seed, same result" (run ()) (run ())

(* Golden regression: these exact values pin the sequential executor's
   scheduling. Accidental nondeterminism — e.g. hashtable iteration order
   leaking into base selection or proposal order — shows up here as a
   value change even when coverage "looks fine". An intentional change to
   the loop, the VM cost model, the mutation engine or the kernel
   generator legitimately moves them: re-pin after understanding why. *)
let test_campaign_golden () =
  let vm = Vm.create ~seed:5 kernel in
  let r = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  Alcotest.(check int) "final_blocks" 339 r.Campaign.final_blocks;
  Alcotest.(check int) "final_edges" 392 r.Campaign.final_edges;
  Alcotest.(check int) "executions" 3408 r.Campaign.executions;
  Alcotest.(check int) "corpus_size" 62 r.Campaign.corpus_size;
  Alcotest.(check int) "crashes" 5 (List.length r.Campaign.crashes)

let test_campaign_coverage_helpers () =
  let vm = Vm.create ~seed:1 kernel in
  let r = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  Alcotest.(check int) "coverage_at end = final" r.Campaign.final_edges
    (Campaign.coverage_at r short_cfg.Campaign.duration);
  (match Campaign.time_to_edges r 1 with
  | Some t -> Alcotest.(check bool) "time positive" true (t > 0.0)
  | None -> Alcotest.fail "never reached 1 edge")

let test_campaign_directed_easy_target () =
  (* an easy target: a successor of some handler entry *)
  let entry = Kernel.handler_entry kernel 0 in
  let target = List.hd (Sp_cfg.Cfg.succs (Kernel.cfg kernel) entry) in
  let cfg = { short_cfg with target = Some target; duration = 7200.0 } in
  let vm = Vm.create ~seed:1 kernel in
  let r =
    Campaign.run vm (Strategy.syzdirect ~target_sys:(Some 0) db) cfg
  in
  Alcotest.(check bool) "easy target reached" true (r.Campaign.target_hit_at <> None);
  (match r.Campaign.target_hit_at with
  | Some t -> Alcotest.(check bool) "stopped early" true (t < cfg.Campaign.duration)
  | None -> ())

let test_campaign_metrics_recorded () =
  let vm = Vm.create ~seed:1 kernel in
  let r = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  let m = r.Campaign.metrics in
  let module Metrics = Sp_util.Metrics in
  Alcotest.(check bool) "iterations counted" true
    (Metrics.counter m "campaign.iterations" > 0);
  Alcotest.(check bool) "proposals counted" true
    (Metrics.counter m "campaign.proposals"
    >= Metrics.counter m "campaign.iterations");
  Alcotest.(check bool) "corpus adds counted" true
    (Metrics.counter m "campaign.corpus_adds" > 0);
  Alcotest.(check bool) "vm executions counted" true
    (Metrics.counter m "vm.executions" > 0);
  (match Metrics.summary m "campaign.iter_virtual_s" with
  | Some s ->
    Alcotest.(check int) "one virtual-time observation per iteration"
      (Metrics.counter m "campaign.iterations") s.Metrics.count;
    Alcotest.(check bool) "virtual time positive" true (s.Metrics.sum > 0.0)
  | None -> Alcotest.fail "no per-iteration virtual-time histogram");
  match Metrics.summary m "vm.exec_virtual_s" with
  | Some s ->
    Alcotest.(check bool) "per-exec cost observed" true (s.Metrics.count > 0)
  | None -> Alcotest.fail "no per-execution cost histogram"

let test_origin_stats_accounted () =
  let vm = Vm.create ~seed:1 kernel in
  let r = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  let total = List.fold_left (fun acc (_, (e, _)) -> acc + e) 0 r.Campaign.origin_stats in
  Alcotest.(check int) "origin stats account for every execution"
    r.Campaign.executions total

(* ------------------------------------------------------------------ *)
(* Distillation                                                         *)
(* ------------------------------------------------------------------ *)

let union_coverage progs =
  let acc = Bitset.create (Kernel.num_blocks kernel) in
  List.iter
    (fun p ->
      let r = Kernel.execute kernel p in
      if r.Kernel.crash = None then ignore (Bitset.union_into ~dst:acc r.Kernel.covered))
    progs;
  acc

let test_distill_preserves_coverage () =
  let progs = Gen.corpus (Rng.create 61) db ~size:40 in
  let report = Sp_fuzz.Distill.distill kernel progs in
  let before = union_coverage progs and after = union_coverage report.Sp_fuzz.Distill.kept in
  Alcotest.(check int) "coverage preserved" (Bitset.cardinal before) (Bitset.cardinal after);
  Alcotest.(check bool) "fewer or equal tests" true
    (report.Sp_fuzz.Distill.distilled_count <= report.Sp_fuzz.Distill.original_count);
  Alcotest.(check bool) "fewer or equal calls" true
    (report.Sp_fuzz.Distill.distilled_calls <= report.Sp_fuzz.Distill.original_calls);
  Alcotest.(check int) "reported coverage matches"
    (Bitset.cardinal after) report.Sp_fuzz.Distill.blocks_covered

let test_distill_drops_redundant () =
  let p = Gen.program (Rng.create 62) db () in
  (* ten copies of the same program distill down to one *)
  let report = Sp_fuzz.Distill.distill kernel (List.init 10 (fun _ -> p)) in
  Alcotest.(check bool) "redundancy removed" true
    (report.Sp_fuzz.Distill.distilled_count <= 1)

let () =
  Alcotest.run "sp_fuzz"
    [
      ( "clock+vm",
        [
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "vm charges time" `Quick test_vm_charges_time;
          Alcotest.test_case "cost scales with length" `Quick test_vm_cost_scales_with_length;
          Alcotest.test_case "factor validation" `Quick test_vm_throughput_factor;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "dedup" `Quick test_corpus_dedup;
          Alcotest.test_case "forged hash collision" `Quick test_corpus_hash_collision;
          Alcotest.test_case "choose" `Quick test_corpus_choose;
          Alcotest.test_case "choose_directed" `Quick test_corpus_choose_directed;
        ] );
      ( "triage",
        [
          Alcotest.test_case "severity filter" `Quick test_severity_filter;
          Alcotest.test_case "dedup and reproduction" `Slow test_triage_dedup_and_repro;
        ] );
      ( "distill",
        [
          Alcotest.test_case "preserves coverage" `Quick test_distill_preserves_coverage;
          Alcotest.test_case "drops redundancy" `Quick test_distill_drops_redundant;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "runs" `Quick test_campaign_runs;
          Alcotest.test_case "series monotone" `Quick test_campaign_series_monotone;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "golden values pinned" `Quick test_campaign_golden;
          Alcotest.test_case "coverage helpers" `Quick test_campaign_coverage_helpers;
          Alcotest.test_case "directed easy target" `Quick test_campaign_directed_easy_target;
          Alcotest.test_case "loop metrics recorded" `Quick test_campaign_metrics_recorded;
          Alcotest.test_case "origin accounting" `Quick test_origin_stats_accounted;
        ] );
    ]
