(* Tests for the fault-domain layer: the deterministic Sp_util.Faults
   plan, its injection points in the pool/channel and the campaign
   executor, the scheduler's quarantine/backoff/retry lifecycle, the
   corrupt-snapshot fallback, the breaker state machine (qcheck model)
   and the funnel's graceful inference degradation. The governing
   property throughout: every injected-failure scenario replays
   byte-identically given the same (seed, plan), and healthy tenants are
   byte-for-byte unaffected by a co-scheduled failing one. *)

module Rng = Sp_util.Rng
module Metrics = Sp_util.Metrics
module Pool = Sp_util.Pool
module Faults = Sp_util.Faults
module Json = Sp_obs.Json
module Io = Sp_obs.Io
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Vm = Sp_fuzz.Vm
module Strategy = Sp_fuzz.Strategy
module Campaign = Sp_fuzz.Campaign
module Scheduler = Sp_fuzz.Scheduler
module Snapshot = Sp_fuzz.Snapshot
module Breaker = Snowplow.Breaker
module Funnel = Snowplow.Funnel
module Inference = Snowplow.Inference

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Faults: the plan itself                                              *)
(* ------------------------------------------------------------------ *)

let test_faults_disabled_inert () =
  let f = Faults.disabled in
  Alcotest.(check bool) "not enabled" false (Faults.enabled f);
  for k = 0 to 20 do
    Alcotest.(check bool) "never fails" false (Faults.should_fail f "x" ~k)
  done;
  Faults.fire f "x" ~k:0;
  check Alcotest.int "nothing injected" 0 (Faults.injected f);
  check Alcotest.int "nothing consulted" 0 (List.length (Faults.site_stats f))

let test_faults_schedule_exact () =
  let f = Faults.create ~schedule:[ ("s", [ 0; 5 ]) ] ~seed:0 () in
  Alcotest.(check bool) "k=0 fires" true (Faults.should_fail f "s" ~k:0);
  Alcotest.(check bool) "k=1 quiet" false (Faults.should_fail f "s" ~k:1);
  Alcotest.(check bool) "k=5 fires" true (Faults.should_fail f "s" ~k:5);
  Alcotest.(check bool) "other site quiet" false
    (Faults.should_fail f "t" ~k:0);
  check Alcotest.int "two injections counted" 2 (Faults.injected f);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.pair Alcotest.int Alcotest.int)))
    "site stats (consulted, hit)"
    [ ("s", (3, 2)); ("t", (1, 0)) ]
    (Faults.site_stats f);
  Alcotest.check_raises "fire raises the named site"
    (Faults.Injected "s") (fun () -> Faults.fire f "s" ~k:5)

let test_faults_rates_deterministic () =
  (* Same (seed, site, k) always decides the same way, and the decision
     is independent of query order — Rng.split_named never advances the
     base stream. *)
  let mk () = Faults.create ~default_rate:0.5 ~seed:42 () in
  let sites = [ "a"; "b"; "pool.task" ] in
  let decisions f order =
    List.map (fun (s, k) -> Faults.should_fail f s ~k) order
  in
  let fwd =
    List.concat_map (fun s -> List.init 40 (fun k -> (s, k))) sites
  in
  let d1 = decisions (mk ()) fwd in
  let d2 = decisions (mk ()) fwd in
  check (Alcotest.list Alcotest.bool) "replayable" d1 d2;
  let rev_order = List.rev fwd in
  let d3 = List.rev (decisions (mk ()) rev_order) in
  check (Alcotest.list Alcotest.bool) "order-independent" d1 d3;
  (* rate 0.5 over 120 draws actually exercises both branches *)
  Alcotest.(check bool) "some fire" true (List.mem true d1);
  Alcotest.(check bool) "some don't" true (List.mem false d1);
  (* rate extremes *)
  let hot = Faults.create ~rates:[ ("h", 1.0) ] ~seed:1 () in
  let cold = Faults.create ~rates:[ ("c", 0.0) ] ~default_rate:1.0 ~seed:1 () in
  for k = 0 to 10 do
    Alcotest.(check bool) "rate 1 always" true (Faults.should_fail hot "h" ~k);
    Alcotest.(check bool) "rate 0 overrides default" false
      (Faults.should_fail cold "c" ~k)
  done

let test_faults_of_json () =
  let plan =
    {|{"seed": 42, "default_rate": 0.0,
       "rates": {"x": 1.0},
       "schedule": {"y": [1, 2]}}|}
  in
  let j = match Json.of_string plan with Ok j -> j | Error e -> Alcotest.fail e in
  let f = match Faults.of_json j with Ok f -> f | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "enabled" true (Faults.enabled f);
  Alcotest.(check bool) "rated site fires" true (Faults.should_fail f "x" ~k:7);
  Alcotest.(check bool) "scheduled k fires" true (Faults.should_fail f "y" ~k:2);
  Alcotest.(check bool) "unscheduled k quiet" false
    (Faults.should_fail f "y" ~k:3);
  let bad txt =
    let j = match Json.of_string txt with Ok j -> j | Error e -> Alcotest.fail e in
    match Faults.of_json j with
    | Ok _ -> Alcotest.failf "accepted bad plan %s" txt
    | Error _ -> ()
  in
  bad {|{"default_rate": 2.0}|};
  bad {|{"rates": 5}|};
  bad {|{"rates": {"x": "often"}}|};
  bad {|{"schedule": {"y": [1.5]}}|}

(* ------------------------------------------------------------------ *)
(* Pool and channel injection                                           *)
(* ------------------------------------------------------------------ *)

let test_pool_task_injection () =
  (* pool.task k = pool-wide submission ordinal, starting at 0. *)
  let faults = Faults.create ~schedule:[ ("pool.task", [ 1 ]) ] ~seed:0 () in
  Pool.with_pool ~faults ~workers:1 (fun pool ->
      let hs = List.init 3 (fun i -> Pool.submit pool (fun () -> i)) in
      match List.map Pool.await hs with
      | [ Ok 0; Error (Faults.Injected "pool.task"); Ok 2 ] -> ()
      | rs ->
        Alcotest.failf "unexpected results: %s"
          (String.concat ", "
             (List.map
                (function
                  | Ok v -> string_of_int v
                  | Error e -> Printexc.to_string e)
                rs)))

exception Probe of string

let test_pool_await_full_backtrace () =
  Pool.with_pool ~workers:1 (fun pool ->
      let h = Pool.submit pool (fun () -> raise (Probe "boom")) in
      match Pool.await_full h with
      | Ok () -> Alcotest.fail "task should have raised"
      | Error (Probe "boom", bt) ->
        (* The backtrace is whatever the worker captured at the raise
           site; re-raising with it must preserve the exception. *)
        Alcotest.check_raises "re-raise preserves the exception"
          (Probe "boom") (fun () ->
            Printexc.raise_with_backtrace (Probe "boom") bt)
      | Error (e, _) ->
        Alcotest.failf "wrong exception: %s" (Printexc.to_string e))

let test_chan_injection () =
  let faults =
    Faults.create
      ~schedule:[ ("chan.send", [ 0 ]); ("chan.recv", [ 1 ]) ]
      ~seed:0 ()
  in
  let ch = Pool.Chan.create ~faults ~capacity:4 () in
  Alcotest.check_raises "send op 0 injected" (Faults.Injected "chan.send")
    (fun () -> Pool.Chan.send ch 1);
  Pool.Chan.send ch 2;
  Pool.Chan.send ch 3;
  (match Pool.Chan.recv ch with
  | Some 2 -> ()
  | _ -> Alcotest.fail "first recv should deliver 2");
  Alcotest.check_raises "recv op 1 injected" (Faults.Injected "chan.recv")
    (fun () -> ignore (Pool.Chan.recv ch));
  (match Pool.Chan.recv ch with
  | Some 3 -> ()
  | _ -> Alcotest.fail "channel unusable after injection")

(* ------------------------------------------------------------------ *)
(* Campaign fixtures (test_sched idioms)                                *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

let cfg_for ?(duration = 900.0) seed =
  { Campaign.default_config with
    seed_corpus = Gen.corpus (Rng.create (seed lxor 0x5eed)) db ~size:30;
    seed;
    duration;
    snapshot_every = 300.0 }

let vm_for_seed seed s = Vm.create ~seed:(seed + (7919 * s)) kernel

let strategy_for _ = Strategy.syzkaller db

let report_bytes r = Json.to_string (Campaign.report_json r)

let with_tmp_dir f =
  let dir = Filename.temp_file "faults-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* The solo oracle: same campaign run alone under a snapshot dir, so
   run_parallel takes the barrier-sliced instance path even at jobs = 1
   (see test_sched.ml). *)
let solo ?duration ~seed ~jobs () =
  with_tmp_dir (fun dir ->
      report_bytes
        (Campaign.run_parallel ~snapshot_dir:dir ~jobs
           ~vm_for:(vm_for_seed seed) ~strategy_for (cfg_for ?duration seed)))

let tenant ?duration ?weight ?snapshot_dir ?restore ~name ~seed ~jobs () =
  Scheduler.tenant ?weight ?snapshot_dir ?restore ~name ~jobs
    ~vm_for:(vm_for_seed seed) ~strategy_for (cfg_for ?duration seed)

let run_ok ?workers ?max_slices ?faults ?max_tenant_retries tenants =
  match Scheduler.run ?workers ?max_slices ?faults ?max_tenant_retries tenants with
  | Ok r -> r
  | Error e -> Alcotest.failf "Scheduler.run failed: %s" e

let by_name (r : Scheduler.report) name =
  List.find (fun tr -> tr.Scheduler.tr_name = name) r.Scheduler.sr_tenants

(* ------------------------------------------------------------------ *)
(* Corrupt-snapshot fallback                                            *)
(* ------------------------------------------------------------------ *)

let test_latest_valid_skips_truncated () =
  with_tmp_dir (fun dir ->
      let full =
        report_bytes
          (Campaign.run_parallel ~snapshot_dir:dir ~jobs:2
             ~vm_for:(vm_for_seed 7) ~strategy_for (cfg_for 7))
      in
      (* 900 s at a 300 s grid: barriers 1..3, so snapshot-000003 is the
         newest. Truncate it mid-document — the torn file a kill during a
         non-atomic write would have left. *)
      let newest = Snapshot.path ~dir ~barrier:3 in
      let data = Io.read_file newest in
      Io.write_atomic newest (String.sub data 0 (String.length data / 2));
      (match Snapshot.latest ~dir with
      | Some (3, _) -> ()
      | _ -> Alcotest.fail "latest should still report barrier 3");
      match Snapshot.latest_valid ~dir () with
      | None -> Alcotest.fail "latest_valid found nothing"
      | Some (barrier, _, doc) ->
        check Alcotest.int "fell back past the torn file" 2 barrier;
        (* The fallback snapshot is fully usable: resuming from it
           reproduces the uninterrupted run byte-for-byte. *)
        (match
           Campaign.resume ~snapshot:doc ~jobs:2 ~vm_for:(vm_for_seed 7)
             ~strategy_for (cfg_for 7)
         with
        | Error e -> Alcotest.failf "resume from fallback failed: %s" e
        | Ok r ->
          check Alcotest.string "resumed == uninterrupted" full
            (report_bytes r)))

(* ------------------------------------------------------------------ *)
(* Scheduler: quarantine, backoff, retry                                *)
(* ------------------------------------------------------------------ *)

(* Kill beta's first barrier in every retry generation: generation n runs
   under label "beta#n", so each must be addressed explicitly — a
   scheduled fault never re-kills a retry the plan doesn't name. *)
let quarantine_plan () =
  Faults.create
    ~schedule:
      [ ("beta/shard.epoch", [ 0 ]);
        ("beta#1/shard.epoch", [ 0 ]);
        ("beta#2/shard.epoch", [ 0 ]);
        ("beta#3/shard.epoch", [ 0 ]) ]
    ~seed:1 ()

let roster () =
  [ tenant ~name:"alpha" ~seed:7 ~jobs:2 ();
    tenant ~name:"beta" ~seed:23 ~jobs:1 ~weight:2.0 ~duration:600.0 ();
    tenant ~name:"gamma" ~seed:5 ~jobs:2 () ]

let count_in_schedule r name =
  List.length (List.filter (( = ) name) r.Scheduler.sr_schedule)

let test_quarantine_isolates_tenant () =
  let r = run_ok ~workers:2 ~faults:(quarantine_plan ()) (roster ()) in
  let beta = by_name r "beta" in
  Alcotest.(check bool) "beta quarantined" true beta.Scheduler.tr_quarantined;
  Alcotest.(check bool) "beta not completed" false beta.Scheduler.tr_completed;
  check Alcotest.int "all three retries spent" 3 beta.Scheduler.tr_retries;
  check Alcotest.int "four failed generations" 4
    (List.length beta.Scheduler.tr_failures);
  List.iteri
    (fun g (fl : Scheduler.failure) ->
      check Alcotest.int "chronological generations" g fl.Scheduler.fl_generation;
      check Alcotest.int "all died at barrier 1" 1 fl.Scheduler.fl_barrier;
      let site =
        if g = 0 then "beta/shard.epoch"
        else Printf.sprintf "beta#%d/shard.epoch" g
      in
      check Alcotest.string "exception names the injected site"
        (Printf.sprintf "Fault injected at %s" site)
        fl.Scheduler.fl_exn)
    beta.Scheduler.tr_failures;
  (* Each generation was admitted exactly once and completed nothing. *)
  check Alcotest.int "beta admitted once per generation" 4
    (count_in_schedule r "beta");
  check Alcotest.int "beta completed no slices" 0 beta.Scheduler.tr_slices;
  check Alcotest.int "quarantine counted" 1
    (Metrics.counter r.Scheduler.sr_metrics "scheduler.quarantined");
  check Alcotest.int "failures counted" 4
    (Metrics.counter r.Scheduler.sr_metrics "scheduler.failures");
  check Alcotest.int "per-tenant failures counted" 4
    (Metrics.counter r.Scheduler.sr_metrics "scheduler.tenant.beta.failures");
  (* The healthy tenants are byte-for-byte untouched by the cascade. *)
  List.iter
    (fun (name, seed) ->
      let tr = by_name r name in
      Alcotest.(check bool) (name ^ " completed") true tr.Scheduler.tr_completed;
      check Alcotest.string (name ^ " report == its solo run")
        (solo ~seed ~jobs:2 ())
        (report_bytes tr.Scheduler.tr_report))
    [ ("alpha", 7); ("gamma", 5) ];
  (* And the whole cascade replays: schedule, reports and failure records
     (modulo wall-clock backtraces) are deterministic per (seed, plan). *)
  let r' = run_ok ~workers:2 ~faults:(quarantine_plan ()) (roster ()) in
  check (Alcotest.list Alcotest.string) "schedule replayed"
    r.Scheduler.sr_schedule r'.Scheduler.sr_schedule;
  List.iter2
    (fun a b ->
      check Alcotest.string (a.Scheduler.tr_name ^ " report replayed")
        (report_bytes a.Scheduler.tr_report)
        (report_bytes b.Scheduler.tr_report);
      List.iter2
        (fun (x : Scheduler.failure) (y : Scheduler.failure) ->
          Alcotest.(check bool) "failure record replayed" true
            (x.Scheduler.fl_slice = y.Scheduler.fl_slice
            && x.Scheduler.fl_barrier = y.Scheduler.fl_barrier
            && x.Scheduler.fl_generation = y.Scheduler.fl_generation
            && x.Scheduler.fl_exn = y.Scheduler.fl_exn))
        a.Scheduler.tr_failures b.Scheduler.tr_failures)
    r.Scheduler.sr_tenants r'.Scheduler.sr_tenants

let test_retry_resumes_from_snapshot () =
  (* Kill generation 0 at its second barrier (k = (2-1)*1 + 0 = 1). With
     a snapshot dir, the retry generation restores barrier 1's snapshot
     and finishes — and the final report is still byte-identical to the
     never-failed solo run. *)
  with_tmp_dir (fun dir ->
      let faults =
        Faults.create ~schedule:[ ("beta/shard.epoch", [ 1 ]) ] ~seed:1 ()
      in
      let r =
        run_ok ~workers:2 ~faults
          [ tenant ~name:"alpha" ~seed:7 ~jobs:2 ();
            tenant ~snapshot_dir:dir ~name:"beta" ~seed:23 ~jobs:1
              ~weight:2.0 ~duration:600.0 () ]
      in
      let beta = by_name r "beta" in
      Alcotest.(check bool) "beta recovered" true beta.Scheduler.tr_completed;
      Alcotest.(check bool) "beta not quarantined" false
        beta.Scheduler.tr_quarantined;
      check Alcotest.int "one retry generation" 1 beta.Scheduler.tr_retries;
      (match beta.Scheduler.tr_failures with
      | [ fl ] ->
        check Alcotest.int "died at barrier 2" 2 fl.Scheduler.fl_barrier;
        check Alcotest.int "generation 0" 0 fl.Scheduler.fl_generation
      | fls -> Alcotest.failf "expected one failure, got %d" (List.length fls));
      check Alcotest.string "recovered report == solo run"
        (solo ~seed:23 ~jobs:1 ~duration:600.0 ())
        (report_bytes beta.Scheduler.tr_report);
      (* The quarantine path left its forensic record beside the
         snapshots, under a name the resume scan ignores. *)
      let record = Snapshot.failure_path ~dir ~barrier:2 ~generation:0 in
      Alcotest.(check bool) "failure record written" true
        (Sys.file_exists record);
      (match Json.of_string (Io.read_file record) with
      | Ok doc ->
        check Alcotest.string "record format"
          "snowplow-tenant-failure"
          (Json.Decode.run (fun () -> Json.Decode.str_field "format" doc)
          |> Result.get_ok)
      | Error e -> Alcotest.failf "failure record unparsable: %s" e);
      match Snapshot.latest_valid ~dir () with
      | Some (b, _, _) ->
        Alcotest.(check bool) "failure record not mistaken for a snapshot"
          true (b >= 1)
      | None -> Alcotest.fail "snapshots disappeared")

let test_kill_resume_with_faults () =
  (* The full robustness gauntlet: an armed plan kills beta's gen 0 at
     barrier 2, the whole service is killed after 4 slices, then a fresh
     scheduler resumes every tenant from its newest valid snapshot under
     the same plan. The final reports must match the solo oracles — the
     quarantine machinery composes with kill + resume. *)
  let root = "faults-resume" in
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let dirs = [ "alpha"; "beta"; "gamma" ] in
  List.iter
    (fun n ->
      let d = Filename.concat root n in
      if Sys.file_exists d then
        Array.iter
          (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
          (Sys.readdir d))
    dirs;
  let plan () =
    Faults.create ~schedule:[ ("beta/shard.epoch", [ 1 ]) ] ~seed:1 ()
  in
  let mk restore_of =
    [ tenant ?restore:(restore_of "alpha")
        ~snapshot_dir:(Filename.concat root "alpha") ~name:"alpha" ~seed:7
        ~jobs:2 ();
      tenant ?restore:(restore_of "beta")
        ~snapshot_dir:(Filename.concat root "beta") ~name:"beta" ~seed:23
        ~jobs:1 ~weight:2.0 ~duration:600.0 ();
      tenant ?restore:(restore_of "gamma")
        ~snapshot_dir:(Filename.concat root "gamma") ~name:"gamma" ~seed:5
        ~jobs:2 () ]
  in
  let killed =
    run_ok ~workers:2 ~max_slices:4 ~faults:(plan ()) (mk (fun _ -> None))
  in
  check Alcotest.int "phase 1 cut at 4 slices" 4 killed.Scheduler.sr_slices;
  (* A tenant the cut caught before its first barrier has no snapshot
     and simply restarts from scratch — same contract as the CLI. *)
  let restore_of name =
    match Snapshot.latest_valid ~dir:(Filename.concat root name) () with
    | Some (_, _, doc) -> Some doc
    | None -> None
  in
  let resumed = run_ok ~workers:2 ~faults:(plan ()) (mk restore_of) in
  List.iter
    (fun (name, seed, jobs, duration) ->
      let tr = by_name resumed name in
      Alcotest.(check bool) (name ^ " completed after resume") true
        tr.Scheduler.tr_completed;
      check Alcotest.string
        (name ^ " report == solo despite faults + kill + resume")
        (solo ~seed ~jobs ?duration ())
        (report_bytes tr.Scheduler.tr_report))
    [ ("alpha", 7, 2, None);
      ("beta", 23, 1, Some 600.0);
      ("gamma", 5, 2, None) ]

(* ------------------------------------------------------------------ *)
(* Breaker: qcheck state-machine model                                  *)
(* ------------------------------------------------------------------ *)

type bop = Err | Succ of float | Wait of float

let bop_print = function
  | Err -> "Err"
  | Succ l -> Printf.sprintf "Succ %.1f" l
  | Wait d -> Printf.sprintf "Wait %.1f" d

let bconfig =
  { Breaker.error_threshold = 2; latency_threshold = 1.0; cooldown = 5.0 }

let bop_gen =
  QCheck.Gen.(
    frequency
      [ (3, return Err);
        (3, map (fun l -> Succ l) (oneofl [ 0.1; 0.5; 2.0 ]));
        (2, map (fun d -> Wait d) (oneofl [ 1.0; 3.0; 6.0 ])) ])

let apply b ~now = function
  | Err -> Breaker.record_error b ~now
  | Succ l -> Breaker.record_success b ~now ~latency:l
  | Wait _ -> ()

let qcheck_breaker_model =
  QCheck.Test.make ~count:200 ~name:"breaker state machine model"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map bop_print ops))
       QCheck.Gen.(list_size (int_range 1 30) bop_gen))
    (fun ops ->
      let b = Breaker.create ~config:bconfig () in
      let now = ref 0.0 in
      let opened_at = ref None in
      List.iter
        (fun op ->
          (match op with Wait d -> now := !now +. d | _ -> ());
          let before = Breaker.state b ~now:!now in
          (* Open must decay to Half_open once the cooldown elapses,
             measured from the trip the model observed. *)
          (match !opened_at with
          | Some t0
            when !now -. t0 >= bconfig.Breaker.cooldown
                 && before = Breaker.Open ->
            QCheck.Test.fail_reportf "open state survived its cooldown"
          | _ -> ());
          apply b ~now:!now op;
          let after = Breaker.state b ~now:!now in
          (match after with
          | Breaker.Open ->
            if before <> Breaker.Open then opened_at := Some !now
          | Breaker.Closed -> opened_at := None
          | Breaker.Half_open -> ());
          (* Closed can hold at most threshold-1 consecutive errors. *)
          if
            after = Breaker.Closed
            && Breaker.consecutive_errors b >= bconfig.Breaker.error_threshold
          then QCheck.Test.fail_reportf "closed at the error threshold";
          (* A fast success anywhere but Open resets the error count. *)
          (match (op, after) with
          | Succ l, s
            when l <= bconfig.Breaker.latency_threshold && s <> Breaker.Open ->
            if Breaker.consecutive_errors b <> 0 then
              QCheck.Test.fail_reportf "fast success kept stale errors";
            if s <> Breaker.Closed then
              QCheck.Test.fail_reportf "fast success failed to close"
          | _ -> ());
          (* An error (or slow success) never lands in Half_open: it
             either trips to Open or stays Closed under the threshold. *)
          match (op, after) with
          | Err, Breaker.Half_open | Succ _, Breaker.Half_open ->
            QCheck.Test.fail_reportf "event left the breaker half-open"
          | _ -> ())
        ops;
      true)

let qcheck_breaker_replay =
  (* Serialize at a random midpoint, restore into a fresh breaker, run
     the tail on both: every observable (state, counters, bytes) must
     agree — the property campaign resume leans on. *)
  QCheck.Test.make ~count:200 ~name:"breaker persisted replay"
    (QCheck.make
       ~print:(fun (ops, cut) ->
         Printf.sprintf "cut=%d [%s]" cut
           (String.concat "; " (List.map bop_print ops)))
       QCheck.Gen.(
         pair (list_size (int_range 1 30) bop_gen) (int_range 0 30)))
    (fun (ops, cut) ->
      let cut = min cut (List.length ops) in
      let b = Breaker.create ~config:bconfig () in
      let now = ref 0.0 in
      List.iteri
        (fun i op ->
          if i < cut then begin
            (match op with Wait d -> now := !now +. d | _ -> ());
            ignore (Breaker.state b ~now:!now);
            apply b ~now:!now op
          end)
        ops;
      let b' = Breaker.create ~config:bconfig () in
      Breaker.restore_state b' (Breaker.state_json b);
      let now' = ref !now in
      List.iteri
        (fun i op ->
          if i >= cut then begin
            (match op with Wait d -> now := !now +. d | _ -> ());
            ignore (Breaker.state b ~now:!now);
            apply b ~now:!now op;
            (match op with Wait d -> now' := !now' +. d | _ -> ());
            ignore (Breaker.state b' ~now:!now');
            apply b' ~now:!now' op
          end)
        ops;
      if Breaker.state b ~now:!now <> Breaker.state b' ~now:!now' then
        QCheck.Test.fail_reportf "states diverged";
      if Breaker.consecutive_errors b <> Breaker.consecutive_errors b' then
        QCheck.Test.fail_reportf "error counts diverged";
      if Breaker.trips b <> Breaker.trips b' then
        QCheck.Test.fail_reportf "trip counts diverged";
      if
        Json.to_string (Breaker.state_json b)
        <> Json.to_string (Breaker.state_json b')
      then QCheck.Test.fail_reportf "persisted bytes diverged";
      true)

(* ------------------------------------------------------------------ *)
(* Funnel degradation                                                   *)
(* ------------------------------------------------------------------ *)

(* A real (untrained) PMM behind the real service — creation is cheap and
   prediction content is irrelevant; what's under test is the breaker /
   retry / shed machinery around delivery. *)
let inference () =
  let encoder =
    Snowplow.Encoder.pretrain
      ~config:{ Snowplow.Encoder.default_config with steps = 40 }
      kernel
  in
  let model =
    Snowplow.Pmm.create
      ~encoder_dim:(Snowplow.Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  Snowplow.Inference.create ~kernel
    ~block_embs:(Snowplow.Encoder.embed_kernel encoder kernel)
    model

let lane_stats_exn funnel ~now =
  match Funnel.lane_stats funnel ~tenant:0 ~now with
  | Some s -> s
  | None -> Alcotest.fail "degradation should be armed"

let test_funnel_degradation_cycle () =
  (* Three requests stalled past the lane deadline: reclaimed, breaker
     tripped, lane degraded (endpoints shed), then — after the cooldown —
     a half-open probe, recovery, and delivery of every reclaimed request
     via the retry ledger. Entirely on the virtual clock. *)
  let service = inference () in
  let faults =
    Faults.create
      ~schedule:[ ("inference.timeout@0", [ 1; 2; 3 ]) ]
      ~seed:3 ()
  in
  let funnel =
    Funnel.create_multi ~degrade:Funnel.default_degrade ~faults
      ~tenant_shards:[| 1 |] service
  in
  let ep = Funnel.endpoint_for funnel ~tenant:0 ~shard:0 in
  let prog s = Gen.program (Rng.create s) db () in
  List.iter
    (fun s ->
      Alcotest.(check bool) "request accepted" true
        (ep.Inference.ep_request ~now:0.0 (prog s) ~targets:[ 0 ]))
    [ 1; 2; 3 ];
  (* Flush 1: all three sends hit the injected stall. *)
  check Alcotest.int "flush 1 delivers nothing" 0
    (Funnel.flush_tenant funnel ~tenant:0 ~now:0.0);
  Alcotest.(check bool) "lane healthy while requests are in flight" false
    (Funnel.lane_degraded funnel ~tenant:0);
  (* Flush 2 at t=40 (past the 30 s deadline): the stalled requests are
     reclaimed, three breaker errors trip the lane open. *)
  check Alcotest.int "flush 2 delivers nothing" 0
    (Funnel.flush_tenant funnel ~tenant:0 ~now:40.0);
  check Alcotest.int "stalled requests reclaimed" 3 (Inference.cancelled service);
  let s = lane_stats_exn funnel ~now:40.0 in
  check Alcotest.string "breaker open" "open" s.Funnel.ls_state;
  check Alcotest.int "one trip" 1 s.Funnel.ls_trips;
  check Alcotest.int "three errors" 3 s.Funnel.ls_errors;
  check Alcotest.int "all three queued for retry" 3 s.Funnel.ls_retries_pending;
  Alcotest.(check bool) "lane degraded" true
    (Funnel.lane_degraded funnel ~tenant:0);
  (* While degraded, the shard endpoints refuse fresh work — the signal
     Hybrid uses to fall back to history/random mutation. *)
  let dropped0 = Funnel.tenant_dropped funnel ~tenant:0 in
  Alcotest.(check bool) "endpoint sheds while degraded" false
    (ep.Inference.ep_request ~now:50.0 (prog 9) ~targets:[ 0 ]);
  check Alcotest.int "shed counted against the tenant" (dropped0 + 1)
    (Funnel.tenant_dropped funnel ~tenant:0);
  (* Mid-degradation state round-trips: a fresh, identically-armed funnel
     restored from state_json persists back byte-identically. *)
  let bytes = Json.to_string (Funnel.state_json funnel) in
  let funnel' =
    Funnel.create_multi ~degrade:Funnel.default_degrade ~faults
      ~tenant_shards:[| 1 |] (inference ())
  in
  (match Json.of_string bytes with
  | Ok doc -> Funnel.restore_state funnel' ~parse:(Sp_syzlang.Parser.program db) doc
  | Error e -> Alcotest.failf "state_json unparsable: %s" e);
  check Alcotest.string "degraded lane state round-trips" bytes
    (Json.to_string (Funnel.state_json funnel'));
  (* Flush 3 past the 1200 s cooldown: half-open, one probe goes out. The
     probe answers from the service's prediction cache (the stalled
     requests were computed, only never delivered), so it completes — a
     fast success that closes the breaker. *)
  check Alcotest.int "probe delivered" 1
    (Funnel.flush_tenant funnel ~tenant:0 ~now:1300.0);
  let s = lane_stats_exn funnel ~now:1300.0 in
  check Alcotest.string "breaker closed by the probe" "closed"
    s.Funnel.ls_state;
  check Alcotest.int "two retries still pending" 2 s.Funnel.ls_retries_pending;
  Alcotest.(check bool) "lane healthy again" false
    (Funnel.lane_degraded funnel ~tenant:0);
  (* Flush 4: the remaining retries drain. Nothing was lost. *)
  check Alcotest.int "remaining retries delivered" 2
    (Funnel.flush_tenant funnel ~tenant:0 ~now:1310.0);
  let s = lane_stats_exn funnel ~now:1310.0 in
  check Alcotest.int "retry ledger empty" 0 s.Funnel.ls_retries_pending

let test_funnel_armed_quiet_matches_unarmed () =
  (* An armed lane that never sees a fault must behave — and persist —
     exactly like an unarmed one: same deliveries, same state bytes. *)
  let quiet = Faults.create ~seed:99 () in
  let plain = Funnel.create_multi ~tenant_shards:[| 1 |] (inference ()) in
  let armed =
    Funnel.create_multi ~degrade:Funnel.default_degrade ~faults:quiet
      ~tenant_shards:[| 1 |] (inference ())
  in
  let prog s = Gen.program (Rng.create s) db () in
  let drive funnel =
    let ep = Funnel.endpoint_for funnel ~tenant:0 ~shard:0 in
    List.iter
      (fun s ->
        Alcotest.(check bool) "accepted" true
          (ep.Inference.ep_request ~now:0.0 (prog s) ~targets:[ 0 ]))
      [ 1; 2 ];
    let d1 = Funnel.flush_tenant funnel ~tenant:0 ~now:0.0 in
    let d2 = Funnel.flush_tenant funnel ~tenant:0 ~now:10.0 in
    (d1 + d2, Json.to_string (Funnel.state_json funnel))
  in
  let n_plain, bytes_plain = drive plain in
  let n_armed, bytes_armed = drive armed in
  check Alcotest.int "same deliveries" n_plain n_armed;
  check Alcotest.string "same persisted bytes" bytes_plain bytes_armed;
  Alcotest.(check bool) "armed-quiet lane never degraded" false
    (Funnel.lane_degraded armed ~tenant:0)

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sp_faults"
    [ ( "plan",
        [ Alcotest.test_case "disabled plan is inert" `Quick
            test_faults_disabled_inert;
          Alcotest.test_case "scheduled ordinals fire exactly" `Quick
            test_faults_schedule_exact;
          Alcotest.test_case "rates are deterministic, order-free" `Quick
            test_faults_rates_deterministic;
          Alcotest.test_case "of_json round-trip and rejects" `Quick
            test_faults_of_json ] );
      ( "pool",
        [ Alcotest.test_case "pool.task injection" `Quick
            test_pool_task_injection;
          Alcotest.test_case "await_full carries the backtrace" `Quick
            test_pool_await_full_backtrace;
          Alcotest.test_case "chan.send/recv injection" `Quick
            test_chan_injection ] );
      ( "snapshots",
        [ Alcotest.test_case "latest_valid skips a torn snapshot" `Quick
            test_latest_valid_skips_truncated ] );
      ( "scheduler",
        [ Alcotest.test_case "quarantine isolates the failing tenant" `Quick
            test_quarantine_isolates_tenant;
          Alcotest.test_case "retry resumes from the last good snapshot"
            `Quick test_retry_resumes_from_snapshot;
          Alcotest.test_case "faults compose with kill + resume" `Quick
            test_kill_resume_with_faults ] );
      ( "breaker",
        [ qtest qcheck_breaker_model; qtest qcheck_breaker_replay ] );
      ( "funnel",
        [ Alcotest.test_case "degrade / recover cycle" `Quick
            test_funnel_degradation_cycle;
          Alcotest.test_case "armed-but-quiet == unarmed" `Quick
            test_funnel_armed_quiet_matches_unarmed ] ) ]
