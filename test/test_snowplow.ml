(* Tests for the core snowplow library: query graphs, PMM, dataset
   construction, trainer metrics, the inference service and the hybrid
   strategies. A small kernel keeps everything fast. *)

module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module QG = Snowplow.Query_graph
module Pmm = Snowplow.Pmm
module Dataset = Snowplow.Dataset
module Encoder = Snowplow.Encoder
module Tensor = Sp_ml.Tensor

let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

let encoder = Encoder.pretrain ~config:{ Encoder.default_config with steps = 300 } kernel

let block_embs = Encoder.embed_kernel encoder kernel

let model =
  Pmm.create ~encoder_dim:(Encoder.dim encoder)
    ~num_syscalls:(Sp_syzlang.Spec.count db) ()

let sample_graph seed =
  let rng = Rng.create seed in
  let prog = Gen.program rng db () in
  let result = Kernel.execute kernel prog in
  let frontier = QG.frontier_blocks kernel result in
  let targets = List.filteri (fun i _ -> i < 5) (List.map fst frontier) in
  (prog, result, QG.build kernel prog ~result ~targets)

(* ------------------------------------------------------------------ *)
(* Query graph                                                          *)
(* ------------------------------------------------------------------ *)

let prop_graph_edges_in_range =
  QCheck.Test.make ~count:60 ~name:"edges reference existing nodes"
    QCheck.(int_bound 100000)
    (fun seed ->
      let _, _, g = sample_graph seed in
      let n = Array.length g.QG.nodes in
      Array.for_all (fun (s, d, _) -> s >= 0 && s < n && d >= 0 && d < n) g.QG.edges)

let prop_graph_arg_nodes_match_prog =
  QCheck.Test.make ~count:60 ~name:"one argument node per program argument"
    QCheck.(int_bound 100000)
    (fun seed ->
      let prog, _, g = sample_graph seed in
      List.length g.QG.arg_index = Prog.num_args prog)

let prop_graph_targets_marked =
  QCheck.Test.make ~count:60 ~name:"targets are marked on frontier entries only"
    QCheck.(int_bound 100000)
    (fun seed ->
      let _, result, g = sample_graph seed in
      let frontier = List.map fst (QG.frontier_blocks kernel result) in
      List.for_all (fun b -> List.mem b frontier) g.QG.target_blocks)

let prop_graph_frontier_edges =
  QCheck.Test.make ~count:60 ~name:"cf-frontier edges go covered -> uncovered"
    QCheck.(int_bound 100000)
    (fun seed ->
      let _, _, g = sample_graph seed in
      Array.for_all
        (fun (s, d, kind) ->
          kind <> QG.Cf_frontier
          || (match (g.QG.nodes.(s), g.QG.nodes.(d)) with
             | QG.Covered_block _, (QG.Alt_block _ | QG.Target_block _) -> true
             | _ -> false))
        g.QG.edges)

let test_graph_drop_edges () =
  let rng = Rng.create 3 in
  let prog = Gen.program rng db () in
  let result = Kernel.execute kernel prog in
  let targets =
    List.filteri (fun i _ -> i < 3) (List.map fst (QG.frontier_blocks kernel result))
  in
  let g = QG.build ~drop:[ QG.Ctx_entry; QG.Ctx_exit ] kernel prog ~result ~targets in
  Alcotest.(check bool) "no ctx edges" true
    (Array.for_all
       (fun (_, _, k) -> k <> QG.Ctx_entry && k <> QG.Ctx_exit)
       g.QG.edges)

let test_graph_stats_keys () =
  let _, _, g = sample_graph 1 in
  let stats = QG.stats g in
  Alcotest.(check int) "node total consistent"
    (List.assoc "nodes" stats)
    (List.assoc "syscall nodes" stats
    + List.assoc "argument nodes" stats
    + List.assoc "covered block nodes" stats
    + List.assoc "alternative entry nodes" stats
    + List.assoc "target nodes" stats)

(* ------------------------------------------------------------------ *)
(* PMM                                                                  *)
(* ------------------------------------------------------------------ *)

let prop_fast_inference_matches_autodiff =
  QCheck.Test.make ~count:30 ~name:"tape-free inference equals autodiff forward"
    QCheck.(int_bound 100000)
    (fun seed ->
      let _, _, g = sample_graph seed in
      let p = Pmm.prepare g in
      let a = Sp_ml.Ad.value (Pmm.forward_logits model ~block_embs p) in
      let b = Pmm.infer_logits model ~block_embs p in
      let rows, _ = Tensor.dims a in
      let ok = ref true in
      for i = 0 to rows - 1 do
        if Float.abs (Tensor.get a i 0 -. Tensor.get b i 0) > 1e-9 then ok := false
      done;
      !ok)

let prop_logits_aligned_with_paths =
  QCheck.Test.make ~count:30 ~name:"one logit per argument path"
    QCheck.(int_bound 100000)
    (fun seed ->
      let _, _, g = sample_graph seed in
      let p = Pmm.prepare g in
      let logits = Pmm.infer_logits model ~block_embs p in
      fst (Tensor.dims logits) = Array.length (Pmm.prepared_paths p))

let prop_predict_mutable_paths =
  QCheck.Test.make ~count:30 ~name:"predictions are mutable argument paths"
    QCheck.(int_bound 100000)
    (fun seed ->
      let prog, _, g = sample_graph seed in
      let predicted = Pmm.predict model ~block_embs g in
      List.for_all
        (fun path ->
          match Prog.ty_at prog path with
          | Sp_syzlang.Ty.Const _ | Sp_syzlang.Ty.Len _ | Sp_syzlang.Ty.Struct _ ->
            false
          | _ -> true)
        predicted)

let test_threshold_roundtrip () =
  Pmm.set_threshold model 0.42;
  Alcotest.(check (float 1e-9)) "threshold" 0.42 (Pmm.threshold model);
  Pmm.set_threshold model 0.5

(* ------------------------------------------------------------------ *)
(* Encoder                                                              *)
(* ------------------------------------------------------------------ *)

let test_encoder_shapes () =
  Alcotest.(check (pair int int)) "one row per block"
    (Kernel.num_blocks kernel, Encoder.dim encoder)
    (Tensor.dims block_embs)

let test_embed_kernel_bit_identical () =
  (* [block_embs] above came from the batched embed_kernel; every row
     must equal the per-block embed bit for bit (the batched path shares
     one matmul per linear layer but row results are independent). *)
  let n = min 60 (Kernel.num_blocks kernel) in
  for b = 0 to n - 1 do
    let e = Encoder.embed encoder (Kernel.block kernel b).Sp_kernel.Ir.tokens in
    Array.iteri
      (fun j v ->
        if Int64.bits_of_float v
           <> Int64.bits_of_float (Tensor.get block_embs b j)
        then Alcotest.failf "block %d col %d differs" b j)
      e
  done

let test_encoder_learns () =
  (* pretrained masked-token accuracy should beat uniform guessing *)
  let acc = Encoder.masked_lm_accuracy encoder kernel ~samples:300 ~seed:4 in
  Alcotest.(check bool) "beats uniform guessing" true
    (acc > 3.0 /. float_of_int Sp_kernel.Token.vocab_size)

(* ------------------------------------------------------------------ *)
(* Dataset                                                              *)
(* ------------------------------------------------------------------ *)

let tiny_dataset_config =
  { Dataset.default_config with mutations_per_base = 120; max_examples_per_base = 4 }

let bases = Gen.corpus (Rng.create 21) db ~size:30

let split = Dataset.collect ~config:tiny_dataset_config kernel ~bases

let all_examples =
  Array.to_list split.Dataset.train
  @ Array.to_list split.Dataset.valid
  @ Array.to_list split.Dataset.eval

let test_dataset_nonempty () =
  Alcotest.(check bool) "collected examples" true (List.length all_examples > 10)

let test_dataset_labels_aligned () =
  List.iter
    (fun (ex : Dataset.example) ->
      Alcotest.(check int) "labels aligned with paths"
        (Array.length (Pmm.prepared_paths ex.Dataset.prepared))
        (Array.length ex.Dataset.labels);
      (* every MUTATE label corresponds to a gold path *)
      let gold =
        List.map (fun (p : Prog.path) -> (p.Prog.call, p.Prog.arg)) ex.Dataset.mutated_args
      in
      Array.iteri
        (fun i l ->
          if l > 0.5 then begin
            let p = (Pmm.prepared_paths ex.Dataset.prepared).(i) in
            if not (List.mem (p.Prog.call, p.Prog.arg) gold) then
              Alcotest.fail "positive label without gold path"
          end)
        ex.Dataset.labels)
    all_examples

let test_dataset_targets_are_frontier () =
  List.iter
    (fun (ex : Dataset.example) ->
      let frontier = List.map fst (QG.frontier_blocks kernel ex.Dataset.exec) in
      Alcotest.(check bool) "targets from frontier" true
        (List.for_all (fun b -> List.mem b frontier) ex.Dataset.targets);
      Alcotest.(check bool) "has targets" true (ex.Dataset.targets <> []))
    all_examples

let test_dataset_split_no_leak () =
  (* no base test may appear in two splits *)
  let key (ex : Dataset.example) = Prog.hash ex.Dataset.base in
  let of_arr a = List.sort_uniq compare (List.map key (Array.to_list a)) in
  let tr = of_arr split.Dataset.train
  and va = of_arr split.Dataset.valid
  and ev = of_arr split.Dataset.eval in
  let inter a b = List.filter (fun x -> List.mem x b) a in
  Alcotest.(check (list int)) "train/valid disjoint" [] (inter tr va);
  Alcotest.(check (list int)) "train/eval disjoint" [] (inter tr ev);
  Alcotest.(check (list int)) "valid/eval disjoint" [] (inter va ev)

let test_exact_targets_mode () =
  let cfg = { tiny_dataset_config with exact_targets = true } in
  let s = Dataset.collect ~config:cfg kernel ~bases in
  Array.iter
    (fun (ex : Dataset.example) ->
      (* with option (a), every target is genuinely new coverage *)
      Alcotest.(check bool) "targets are real new blocks" true
        (List.for_all (fun b -> List.mem b ex.Dataset.new_blocks) ex.Dataset.targets))
    s.Dataset.train

let prop_stratified_assignment =
  QCheck.Test.make ~count:300
    ~name:"stratified assignment keeps 80/10/10 inside every stratum"
    QCheck.(pair (int_bound 100000) (int_bound 60))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 1) in
      (* Coarse rates so ties across bases are common, like real data. *)
      let rates = Array.init n (fun _ -> float_of_int (Rng.int rng 6) /. 5.0) in
      let assign = Dataset.stratified_assignment rates in
      Array.length assign = n
      &&
      (* Recover the terciles independently and count tags per stratum:
         each must carry exactly the floor-formula proportions the
         unstratified split applies to the whole corpus. *)
      let sorted = Array.copy rates in
      Array.sort compare sorted;
      let q1 = if n = 0 then 0.0 else sorted.(n / 3)
      and q2 = if n = 0 then 0.0 else sorted.(2 * n / 3) in
      let stratum r = if r < q1 then 0 else if r < q2 then 1 else 2 in
      List.for_all
        (fun s ->
          let tags = ref [] in
          Array.iteri
            (fun i r -> if stratum r = s then tags := assign.(i) :: !tags)
            rates;
          let ns = List.length !tags in
          let count t = List.length (List.filter (( = ) t) !tags) in
          count `Train = ns * 8 / 10
          && count `Valid = ns / 10
          && count `Eval = ns - (ns * 8 / 10) - (ns / 10))
        [ 0; 1; 2 ])

let test_stratified_split_no_leak () =
  let cfg = { tiny_dataset_config with Dataset.stratify = true } in
  let s = Dataset.collect ~config:cfg kernel ~bases in
  let key (ex : Dataset.example) = Prog.hash ex.Dataset.base in
  let of_arr a = List.sort_uniq compare (List.map key (Array.to_list a)) in
  let tr = of_arr s.Dataset.train
  and va = of_arr s.Dataset.valid
  and ev = of_arr s.Dataset.eval in
  let inter a b = List.filter (fun x -> List.mem x b) a in
  Alcotest.(check (list int)) "train/valid disjoint" [] (inter tr va);
  Alcotest.(check (list int)) "train/eval disjoint" [] (inter tr ev);
  Alcotest.(check (list int)) "valid/eval disjoint" [] (inter va ev);
  Alcotest.(check bool) "train still dominant" true
    (Array.length s.Dataset.train > Array.length s.Dataset.valid)

let test_unstratified_split_unchanged () =
  (* stratify=false must run the historical code path byte for byte: a
     second collect with the explicit default flag reproduces the
     module-level [split] exactly. *)
  let s =
    Dataset.collect
      ~config:{ tiny_dataset_config with Dataset.stratify = false }
      kernel ~bases
  in
  let sig_of a =
    Array.to_list a
    |> List.map (fun (ex : Dataset.example) ->
           (Prog.hash ex.Dataset.base, Array.to_list ex.Dataset.labels))
  in
  Alcotest.(check bool) "train identical" true
    (sig_of s.Dataset.train = sig_of split.Dataset.train);
  Alcotest.(check bool) "valid identical" true
    (sig_of s.Dataset.valid = sig_of split.Dataset.valid);
  Alcotest.(check bool) "eval identical" true
    (sig_of s.Dataset.eval = sig_of split.Dataset.eval)

(* ------------------------------------------------------------------ *)
(* Trainer                                                              *)
(* ------------------------------------------------------------------ *)

let test_training_beats_random () =
  let m =
    Pmm.create ~encoder_dim:(Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  let cfg = { Snowplow.Trainer.default_config with epochs = 4; log_every = 0 } in
  let _ =
    Snowplow.Trainer.train ~config:cfg m ~block_embs ~train:split.Dataset.train
      ~valid:split.Dataset.valid
  in
  let pmm_scores = Snowplow.Trainer.evaluate m ~block_embs split.Dataset.eval in
  let rand = Snowplow.Trainer.random_baseline ~k:8 ~seed:5 split.Dataset.eval in
  Alcotest.(check bool)
    (Printf.sprintf "trained F1 (%.2f) beats Rand.8 (%.2f)"
       pmm_scores.Sp_ml.Metrics.f1 rand.Sp_ml.Metrics.f1)
    true
    (pmm_scores.Sp_ml.Metrics.f1 > rand.Sp_ml.Metrics.f1 +. 0.05)

let test_striped_training_deterministic () =
  let mk () =
    Pmm.create ~encoder_dim:(Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  let run jobs =
    let m = mk () in
    let cfg =
      { Snowplow.Trainer.default_config with epochs = 2; log_every = 7; jobs }
    in
    let h =
      Snowplow.Trainer.train ~config:cfg m ~block_embs
        ~train:split.Dataset.train ~valid:split.Dataset.valid
    in
    ( h,
      Pmm.threshold m,
      List.map (fun p -> Tensor.to_array (Sp_ml.Ad.value p)) (Pmm.params m) )
  in
  let h1, t1, p1 = run 2 in
  let h2, t2, p2 = run 2 in
  Alcotest.(check bool) "histories identical" true (h1 = h2);
  Alcotest.(check bool) "threshold identical" true (Float.equal t1 t2);
  List.iter2
    (fun a b -> Alcotest.(check bool) "params identical" true (a = b))
    p1 p2;
  (* jobs=1 trains too and lands near the striped run (different float
     association, so tolerance, not equality). *)
  let _, t_seq, p_seq = run 1 in
  Alcotest.(check bool) "thresholds comparable" true
    (Float.abs (t1 -. t_seq) <= 0.25);
  List.iter2
    (fun a b ->
      Array.iteri
        (fun i v ->
          if Float.abs (v -. b.(i)) > 1e-3 *. (1.0 +. Float.abs v) then
            Alcotest.failf "striped/sequential diverged: %g vs %g" v b.(i))
        a)
    p1 p_seq

(* ------------------------------------------------------------------ *)
(* Inference service                                                    *)
(* ------------------------------------------------------------------ *)

let test_inference_latency_and_cache () =
  let inference = Snowplow.Inference.create ~kernel ~block_embs model in
  let prog = Gen.program (Rng.create 31) db () in
  let r = Kernel.execute kernel prog in
  let targets =
    List.filteri (fun i _ -> i < 4) (List.map fst (QG.frontier_blocks kernel r))
  in
  Alcotest.(check bool) "request accepted" true
    (Snowplow.Inference.request inference ~now:0.0 prog ~targets);
  Alcotest.(check (list (pair int int))) "not ready immediately" []
    (List.map (fun _ -> (0, 0)) (Snowplow.Inference.poll inference ~now:0.1 ()));
  let done_at_1s = Snowplow.Inference.poll inference ~now:1.0 () in
  Alcotest.(check int) "ready after latency" 1 (List.length done_at_1s);
  (* same query again: served from the cache instantly *)
  ignore (Snowplow.Inference.request inference ~now:2.0 prog ~targets);
  Alcotest.(check int) "cache answers instantly" 1
    (List.length (Snowplow.Inference.poll inference ~now:2.0 ()));
  Alcotest.(check int) "cache hit counted" 1 (Snowplow.Inference.cache_hits inference)

let test_inference_queue_capacity () =
  let inference =
    Snowplow.Inference.create ~max_pending:2 ~kernel ~block_embs model
  in
  let progs = Gen.corpus (Rng.create 33) db ~size:5 in
  let accepted =
    List.filter
      (fun prog ->
        let r = Kernel.execute kernel prog in
        match QG.frontier_blocks kernel r with
        | [] -> false
        | f ->
          Snowplow.Inference.request inference ~now:0.0 prog
            ~targets:[ fst (List.hd f) ])
      progs
  in
  Alcotest.(check bool) "queue capacity enforced" true (List.length accepted <= 2);
  Alcotest.(check bool) "drops counted" true (Snowplow.Inference.dropped inference > 0)

let test_inference_cache_hits_respect_max_pending () =
  (* Regression: the cache-hit path used to enqueue unconditionally, so a
     stream of memoized requests could grow the pending queue past its
     configured bound. *)
  let inference =
    Snowplow.Inference.create ~max_pending:2 ~kernel ~block_embs model
  in
  let prog = Gen.program (Rng.create 31) db () in
  let r = Kernel.execute kernel prog in
  let targets =
    List.filteri (fun i _ -> i < 4) (List.map fst (QG.frontier_blocks kernel r))
  in
  Alcotest.(check bool) "first request admitted" true
    (Snowplow.Inference.request inference ~now:0.0 prog ~targets);
  (* identical query: every further admission is a cache hit *)
  Alcotest.(check bool) "cache hit admitted while below bound" true
    (Snowplow.Inference.request inference ~now:0.1 prog ~targets);
  Alcotest.(check int) "queue at bound" 2 (Snowplow.Inference.pending inference);
  for _ = 1 to 10 do
    Alcotest.(check bool) "cache hit dropped at bound" false
      (Snowplow.Inference.request inference ~now:0.2 prog ~targets)
  done;
  Alcotest.(check int) "queue never exceeds max_pending" 2
    (Snowplow.Inference.pending inference);
  Alcotest.(check bool) "drops counted" true
    (Snowplow.Inference.dropped inference >= 10)

let test_inference_cache_hits_not_served () =
  (* Regression: zero-latency cache hits were folded into served /
     latency_sum, deflating the reported mean service latency. *)
  let inference = Snowplow.Inference.create ~kernel ~block_embs model in
  let prog = Gen.program (Rng.create 31) db () in
  let r = Kernel.execute kernel prog in
  let targets =
    List.filteri (fun i _ -> i < 4) (List.map fst (QG.frontier_blocks kernel r))
  in
  ignore (Snowplow.Inference.request inference ~now:0.0 prog ~targets);
  ignore (Snowplow.Inference.poll inference ~now:10.0 ());
  let latency_after_compute = Snowplow.Inference.mean_latency inference in
  Alcotest.(check bool) "computed request has real latency" true
    (latency_after_compute > 0.0);
  (* hammer the cache: delivered instantly, but the mean must not move *)
  for i = 1 to 20 do
    ignore
      (Snowplow.Inference.request inference ~now:(10.0 +. float_of_int i) prog
         ~targets);
    ignore (Snowplow.Inference.poll inference ~now:(10.0 +. float_of_int i) ())
  done;
  Alcotest.(check int) "hits counted as hits" 20
    (Snowplow.Inference.cache_hits inference);
  Alcotest.(check int) "hits not counted as served" 1
    (Snowplow.Inference.served inference);
  Alcotest.(check (float 1e-9)) "mean latency undistorted by cache hits"
    latency_after_compute
    (Snowplow.Inference.mean_latency inference)

let test_inference_cache_bounded () =
  (* Eviction: across a long virtual campaign of ever-changing queries the
     prediction caches must stay within their configured capacity. *)
  let capacity = 32 in
  let inference =
    Snowplow.Inference.create ~max_pending:1000 ~cache_capacity:capacity
      ~kernel ~block_embs model
  in
  let progs = Gen.corpus (Rng.create 91) db ~size:12 in
  let usable =
    List.filter_map
      (fun prog ->
        let r = Kernel.execute kernel prog in
        if r.Kernel.crash <> None then None
        else
          match QG.frontier_blocks kernel r with
          | f when List.length f >= 2 ->
            Some (prog, Array.of_list (List.map fst f))
          | _ -> None)
      progs
    |> List.filteri (fun i _ -> i < 3)
  in
  Alcotest.(check bool) "enough usable programs" true (List.length usable >= 2);
  (* >24 virtual hours of rotating (base, target-set) queries: each round
     picks a different pair of real frontier blocks, so distinct cache keys
     keep arriving for the whole run — far more than [capacity] *)
  let now = ref 0.0 in
  let rounds = 150 in
  let step = 90_000.0 /. float_of_int (rounds * List.length usable) in
  for round = 0 to rounds - 1 do
    List.iter
      (fun (prog, frontier) ->
        let n = Array.length frontier in
        let targets =
          [ frontier.(round mod n); frontier.(((round * 7) + 3) mod n) ]
        in
        ignore (Snowplow.Inference.request inference ~now:!now prog ~targets);
        ignore (Snowplow.Inference.poll inference ~now:!now ());
        now := !now +. step)
      usable
  done;
  Alcotest.(check bool) "ran >= 24 virtual hours" true (!now >= 86_400.0);
  Alcotest.(check bool)
    (Printf.sprintf "cache entries (%d) within capacity (%d)"
       (Snowplow.Inference.cache_size inference)
       (Snowplow.Inference.cache_capacity inference))
    true
    (Snowplow.Inference.cache_size inference
    <= Snowplow.Inference.cache_capacity inference)

(* ------------------------------------------------------------------ *)
(* Strategies                                                           *)
(* ------------------------------------------------------------------ *)

let test_hybrid_proposals_valid () =
  let inference = Snowplow.Inference.create ~kernel ~block_embs model in
  let strategy = Snowplow.Hybrid.strategy ~inference kernel in
  let corpus = Sp_fuzz.Corpus.create () in
  let entry prog =
    let r = Kernel.execute kernel prog in
    { Sp_fuzz.Corpus.prog; blocks = r.Kernel.covered; edges = r.Kernel.covered_edges;
      added_at = 0.0 }
  in
  List.iter
    (fun p -> ignore (Sp_fuzz.Corpus.add corpus (entry p)))
    (Gen.corpus (Rng.create 41) db ~size:8);
  let covered = Bitset.create (Kernel.num_blocks kernel) in
  let rng = Rng.create 6 in
  for i = 0 to 20 do
    let e = Sp_fuzz.Corpus.choose rng corpus in
    let props =
      strategy.Sp_fuzz.Strategy.propose rng ~now:(float_of_int i) ~covered corpus e
    in
    List.iter
      (fun (p : Sp_fuzz.Strategy.proposal) ->
        match Prog.validate p.Sp_fuzz.Strategy.prog with
        | Ok () -> ()
        | Error e -> Alcotest.failf "invalid proposal: %s" e)
      props
  done

let test_hybrid_with_insertion_model () =
  (* An (untrained) insertion model plugged into the hybrid strategy must
     still yield well-formed proposals, including learned-insert ones. *)
  let inference = Snowplow.Inference.create ~kernel ~block_embs model in
  let ins = Snowplow.Insertion.create kernel in
  let strategy = Snowplow.Hybrid.strategy ~insertion:ins ~inference kernel in
  let corpus = Sp_fuzz.Corpus.create () in
  List.iter
    (fun prog ->
      let r = Kernel.execute kernel prog in
      ignore
        (Sp_fuzz.Corpus.add corpus
           { Sp_fuzz.Corpus.prog; blocks = r.Kernel.covered;
             edges = r.Kernel.covered_edges; added_at = 0.0 }))
    (Gen.corpus (Rng.create 43) db ~size:6);
  let covered = Bitset.create (Kernel.num_blocks kernel) in
  let rng = Rng.create 44 in
  let saw_learned = ref false in
  for i = 0 to 30 do
    let e = Sp_fuzz.Corpus.choose rng corpus in
    List.iter
      (fun (p : Sp_fuzz.Strategy.proposal) ->
        if p.Sp_fuzz.Strategy.origin = "learned-insert" then saw_learned := true;
        match Prog.validate p.Sp_fuzz.Strategy.prog with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "invalid proposal: %s" msg)
      (strategy.Sp_fuzz.Strategy.propose rng ~now:(float_of_int i) ~covered corpus e)
  done;
  Alcotest.(check bool) "learned insertions proposed" true !saw_learned

let test_directed_targets_move_towards () =
  let target = Kernel.handler_exit kernel 3 in
  let dist = Sp_cfg.Cfg.distances_to (Kernel.cfg kernel) target in
  let prog = Gen.program (Rng.create 51) db () in
  let r = Kernel.execute kernel prog in
  let entry =
    { Sp_fuzz.Corpus.prog; blocks = r.Kernel.covered; edges = r.Kernel.covered_edges;
      added_at = 0.0 }
  in
  let covered = Bitset.create (Kernel.num_blocks kernel) in
  let picked =
    Snowplow.Directed.pick_targets_towards (Rng.create 1) kernel ~covered ~dist entry
      ~max_targets:8
  in
  (* all picked targets are frontier entries with finite distance *)
  let frontier = List.map fst (QG.frontier_blocks kernel r) in
  Alcotest.(check bool) "picked from frontier, finite distance" true
    (List.for_all (fun b -> List.mem b frontier && dist.(b) < max_int) picked)

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)
(* ------------------------------------------------------------------ *)

let test_pmm_save_load () =
  let path = Filename.temp_file "pmm" ".weights" in
  Pmm.set_threshold model 0.61;
  Pmm.save model path;
  let fresh =
    Pmm.create ~encoder_dim:(Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  (match Pmm.load fresh path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path;
  Alcotest.(check (float 1e-9)) "threshold restored" 0.61 (Pmm.threshold fresh);
  (* identical predictions after the round trip *)
  let _, _, g = sample_graph 77 in
  let p = Pmm.prepare g in
  let a = Pmm.infer_logits model ~block_embs p in
  let b = Pmm.infer_logits fresh ~block_embs p in
  let rows, _ = Tensor.dims a in
  for i = 0 to rows - 1 do
    Alcotest.(check (float 1e-12)) "same logit" (Tensor.get a i 0) (Tensor.get b i 0)
  done;
  Pmm.set_threshold model 0.5

(* ------------------------------------------------------------------ *)
(* Insertion extension (sec. 6)                                         *)
(* ------------------------------------------------------------------ *)

let test_insertion_learns () =
  let bases = Gen.corpus (Rng.create 71) db ~size:30 in
  (* coverage context: what a short campaign would already have seen *)
  let covered = Bitset.create (Kernel.num_blocks kernel) in
  List.iter
    (fun p ->
      let r = Kernel.execute kernel p in
      if r.Kernel.crash = None then
        ignore (Bitset.union_into ~dst:covered r.Kernel.covered))
    (Gen.corpus (Rng.create 99) db ~size:120);
  let examples = Snowplow.Insertion.collect_examples ~seed:72 ~covered kernel ~bases in
  Alcotest.(check bool) "collected insertion examples" true
    (List.length examples > 30);
  let n = List.length examples in
  let train_ex = List.filteri (fun i _ -> i < n * 8 / 10) examples in
  let eval_ex = List.filteri (fun i _ -> i >= n * 8 / 10) examples in
  let m = Snowplow.Insertion.create kernel in
  let losses = Snowplow.Insertion.train m ~covered train_ex in
  (match (losses, List.rev losses) with
  | first :: _, last :: _ ->
    Alcotest.(check bool) "loss decreased" true (last < first)
  | _ -> Alcotest.fail "no training happened");
  let acc = Snowplow.Insertion.accuracy m ~covered eval_ex ~k:3 in
  let uniform = 3.0 /. float_of_int (Sp_syzlang.Spec.count db) in
  Alcotest.(check bool)
    (Printf.sprintf "top-3 accuracy (%.2f) beats uniform (%.2f)" acc uniform)
    true (acc > uniform)

let test_insertion_scores_normalized () =
  let m = Snowplow.Insertion.create kernel in
  let covered = Bitset.create (Kernel.num_blocks kernel) in
  let prog = Gen.program (Rng.create 73) db () in
  let s = Snowplow.Insertion.scores m ~covered prog in
  let total = Array.fold_left ( +. ) 0.0 s in
  Alcotest.(check (float 1e-6)) "softmax sums to 1" 1.0 total;
  Alcotest.(check int) "one score per syscall" (Sp_syzlang.Spec.count db)
    (Array.length s)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "snowplow"
    [
      qsuite "query-graph-props"
        [
          prop_graph_edges_in_range;
          prop_graph_arg_nodes_match_prog;
          prop_graph_targets_marked;
          prop_graph_frontier_edges;
        ];
      ( "query-graph",
        [
          Alcotest.test_case "drop edges" `Quick test_graph_drop_edges;
          Alcotest.test_case "stats consistent" `Quick test_graph_stats_keys;
        ] );
      qsuite "pmm-props"
        [
          prop_fast_inference_matches_autodiff;
          prop_logits_aligned_with_paths;
          prop_predict_mutable_paths;
        ];
      ( "pmm",
        [ Alcotest.test_case "threshold" `Quick test_threshold_roundtrip ] );
      ( "encoder",
        [
          Alcotest.test_case "shapes" `Quick test_encoder_shapes;
          Alcotest.test_case "batched embed bit-identical" `Quick
            test_embed_kernel_bit_identical;
          Alcotest.test_case "masked LM learns" `Slow test_encoder_learns;
        ] );
      qsuite "dataset-props" [ prop_stratified_assignment ];
      ( "dataset",
        [
          Alcotest.test_case "nonempty" `Quick test_dataset_nonempty;
          Alcotest.test_case "labels aligned" `Quick test_dataset_labels_aligned;
          Alcotest.test_case "targets from frontier" `Quick test_dataset_targets_are_frontier;
          Alcotest.test_case "split no leak" `Quick test_dataset_split_no_leak;
          Alcotest.test_case "exact targets mode" `Quick test_exact_targets_mode;
          Alcotest.test_case "stratified split no leak" `Quick
            test_stratified_split_no_leak;
          Alcotest.test_case "unstratified split unchanged" `Quick
            test_unstratified_split_unchanged;
        ] );
      ( "trainer",
        [
          Alcotest.test_case "training beats random" `Slow test_training_beats_random;
          Alcotest.test_case "striped training deterministic" `Slow
            test_striped_training_deterministic;
        ] );
      ( "inference",
        [
          Alcotest.test_case "latency and cache" `Quick test_inference_latency_and_cache;
          Alcotest.test_case "queue capacity" `Quick test_inference_queue_capacity;
          Alcotest.test_case "cache hits respect max_pending" `Quick
            test_inference_cache_hits_respect_max_pending;
          Alcotest.test_case "cache hits excluded from latency" `Quick
            test_inference_cache_hits_not_served;
          Alcotest.test_case "caches bounded over long campaign" `Quick
            test_inference_cache_bounded;
        ] );
      ( "persistence",
        [ Alcotest.test_case "save/load" `Quick test_pmm_save_load ] );
      ( "insertion",
        [
          Alcotest.test_case "scores normalized" `Quick test_insertion_scores_normalized;
          Alcotest.test_case "learns which call to insert" `Slow test_insertion_learns;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "hybrid proposals valid" `Quick test_hybrid_proposals_valid;
          Alcotest.test_case "hybrid with insertion model" `Quick
            test_hybrid_with_insertion_model;
          Alcotest.test_case "directed target picking" `Quick test_directed_targets_move_towards;
        ] );
    ]
