(* Differential and scratch-contract tests for the compiled executor
   (Sp_kernel.Exec) against the tree-walking reference interpreter
   (Sp_kernel.Reference). The bytecode path is the one every fuzzing
   campaign runs, so its semantics are pinned to the oracle over a large
   randomized space: kernel configs, programs, noise seeds, crashes, and
   resource-state predicates all mixed in. *)

module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Stampset = Sp_util.Stampset
module Kernel = Sp_kernel.Kernel
module Reference = Sp_kernel.Reference
module Build = Sp_kernel.Build
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen

(* Three small kernels with different shapes: narrow-and-deep handlers,
   wide-and-shallow, and a mid-size default-like one. Small enough that a
   1000+-case differential stays fast. *)
let configs =
  [
    { Build.default_config with seed = 2; num_syscalls = 16; handler_budget = 120; max_depth = 8 };
    { Build.default_config with seed = 3; num_syscalls = 8; handler_budget = 400 };
    { Build.default_config with seed = 42; num_syscalls = 24; handler_budget = 250 };
  ]

let kernels =
  List.map
    (fun c ->
      let k = Kernel.generate c in
      (k, Reference.of_built (Kernel.built k), Kernel.spec_db k))
    configs

let equal_result (a : Kernel.result) (b : Kernel.result) =
  a.Kernel.traces = b.Kernel.traces
  && a.Kernel.crash = b.Kernel.crash
  && Bitset.equal a.Kernel.covered b.Kernel.covered
  && Bitset.equal a.Kernel.covered_edges b.Kernel.covered_edges
  && a.Kernel.objects = b.Kernel.objects

(* The acceptance differential: >= 1000 random (kernel config, program,
   noise seed) cases, bytecode result identical to the reference. The
   scratch is reused across every case of a kernel, so this also exercises
   stamp-clears between executions of very different programs. *)
let test_differential () =
  let cases = ref 0 in
  List.iter
    (fun (kernel, oracle, db) ->
      let scratch = Kernel.create_scratch kernel in
      let rng = Rng.create 7331 in
      for i = 0 to 349 do
        let prog = Gen.program rng db () in
        let noise =
          (* every third case noisy, alternating heavy and light *)
          if i mod 3 = 0 then
            Some (if i mod 2 = 0 then 0.8 else 0.3)
          else None
        in
        let r_ref, r_byte =
          match noise with
          | Some level ->
            ( Reference.execute oracle ~noise:(Rng.create (5000 + i), level) prog,
              Kernel.execute kernel ~scratch
                ~noise:(Rng.create (5000 + i), level)
                prog )
          | None ->
            (Reference.execute oracle prog, Kernel.execute kernel ~scratch prog)
        in
        incr cases;
        if not (equal_result r_ref r_byte) then
          Alcotest.failf "bytecode diverged from reference (case %d, noise %s)"
            i
            (match noise with None -> "off" | Some l -> string_of_float l)
      done)
    kernels;
  Alcotest.(check bool) "at least 1000 cases" true (!cases >= 1000)

(* The differential must actually see crashes and resource-state branches,
   otherwise it proves less than it claims. *)
let test_differential_reaches_crashes () =
  let crashes = ref 0 and resourceful = ref 0 in
  List.iter
    (fun (kernel, _, db) ->
      let rng = Rng.create 7331 in
      for _ = 0 to 349 do
        let prog = Gen.program rng db () in
        let r = Kernel.execute kernel prog in
        if r.Kernel.crash <> None then incr crashes;
        if Array.exists Option.is_some r.Kernel.objects then incr resourceful
      done)
    kernels;
  Alcotest.(check bool) "some cases crash" true (!crashes > 0);
  Alcotest.(check bool) "some cases create kernel objects" true
    (!resourceful > 0)

(* Scratch reuse: running A then B in one scratch leaves exactly B's
   result behind, bit-for-bit equal to a fresh execution of B. *)
let test_scratch_reuse_identity () =
  let kernel, _, db = List.hd kernels in
  let scratch = Kernel.create_scratch kernel in
  let rng = Rng.create 99 in
  let prev = ref None in
  for _ = 1 to 50 do
    let prog = Gen.program rng db () in
    (match !prev with
    | Some p -> Kernel.execute_into kernel scratch p
    | None -> ());
    Kernel.execute_into kernel scratch prog;
    let fresh = Kernel.execute kernel prog in
    if not (equal_result (Kernel.scratch_result scratch) fresh) then
      Alcotest.fail "reused scratch differs from fresh execution";
    prev := Some prog
  done

(* The borrowed scratch views agree with the materialized result. *)
let test_scratch_views () =
  let kernel, _, db = List.hd kernels in
  let scratch = Kernel.create_scratch kernel in
  let rng = Rng.create 1234 in
  for _ = 1 to 50 do
    let prog = Gen.program rng db () in
    Kernel.execute_into kernel scratch prog;
    let r = Kernel.scratch_result scratch in
    Alcotest.(check int) "scratch_calls" (List.length r.Kernel.traces)
      (Kernel.scratch_calls scratch);
    Alcotest.(check bool) "scratch_crashed" (r.Kernel.crash <> None)
      (Kernel.scratch_crashed scratch);
    Alcotest.(check bool) "scratch_crash" true
      (Kernel.scratch_crash scratch = r.Kernel.crash);
    Alcotest.(check bool) "blocks view" true
      (Bitset.equal r.Kernel.covered
         (Stampset.to_bitset (Kernel.scratch_blocks scratch)));
    Alcotest.(check bool) "edges view" true
      (Bitset.equal r.Kernel.covered_edges
         (Stampset.to_bitset (Kernel.scratch_edges scratch)));
    Alcotest.(check bool) "blocks bitset snapshot" true
      (Bitset.equal r.Kernel.covered (Kernel.scratch_blocks_bitset scratch));
    Alcotest.(check bool) "edges bitset snapshot" true
      (Bitset.equal r.Kernel.covered_edges
         (Kernel.scratch_edges_bitset scratch))
  done

let test_scratch_wrong_kernel () =
  let kernel, _, db = List.hd kernels in
  let other = Kernel.generate (List.hd configs) in
  let scratch = Kernel.create_scratch other in
  let prog = Gen.program (Rng.create 1) db () in
  Alcotest.check_raises "foreign scratch rejected"
    (Invalid_argument
       "Exec.execute_raw: scratch was created for a different kernel")
    (fun () -> Kernel.execute_into kernel scratch prog)

(* Per-call coverage is one execution's traces sliced per call. *)
let test_per_call_coverage () =
  let kernel, _, db = List.hd kernels in
  let num_blocks = Kernel.num_blocks kernel in
  let rng = Rng.create 555 in
  for _ = 1 to 30 do
    let prog = Gen.program rng db () in
    let r = Kernel.execute kernel prog in
    let per_call = Kernel.per_call_coverage kernel prog in
    Alcotest.(check int) "one bitset per executed call"
      (List.length r.Kernel.traces)
      (Array.length per_call);
    let union = Bitset.create num_blocks in
    List.iteri
      (fun i (tr : Kernel.call_trace) ->
        let expect =
          Sp_coverage.Trace.block_set ~num_blocks tr.Kernel.visited
        in
        Alcotest.(check bool) "call bitset matches its trace" true
          (Bitset.equal expect per_call.(i));
        ignore (Bitset.union_into ~dst:union per_call.(i)))
      r.Kernel.traces;
    Alcotest.(check bool) "union of calls is the covered set" true
      (Bitset.equal union r.Kernel.covered)
  done

let test_block_coverage_of_call () =
  let kernel, _, db = List.hd kernels in
  let prog = Gen.program (Rng.create 8) db () in
  let per_call = Kernel.per_call_coverage kernel prog in
  Array.iteri
    (fun i expect ->
      Alcotest.(check bool) "matches per_call_coverage" true
        (Bitset.equal expect (Kernel.block_coverage_of_call kernel prog i)))
    per_call;
  Alcotest.(check bool) "out-of-range call is empty" true
    (Bitset.is_empty
       (Kernel.block_coverage_of_call kernel prog (Array.length per_call)));
  Alcotest.(check bool) "negative call is empty" true
    (Bitset.is_empty (Kernel.block_coverage_of_call kernel prog (-1)))

(* Noise must consume the same RNG stream in both interpreters — pin that
   by checking the *results* differ from the quiet run but agree with each
   other (already covered) and that noise stays deterministic per seed. *)
let test_noise_deterministic () =
  let kernel, _, db = List.hd kernels in
  let prog = Gen.program (Rng.create 13) db () in
  let run seed = Kernel.execute kernel ~noise:(Rng.create seed, 0.9) prog in
  let a = run 7 and b = run 7 and c = run 8 in
  Alcotest.(check bool) "same seed, same noisy result" true (equal_result a b);
  Alcotest.(check bool) "noise seed matters somewhere" true
    (not (equal_result a c) || Bitset.equal a.Kernel.covered c.Kernel.covered)

let () =
  Alcotest.run "sp_exec"
    [
      ( "differential",
        [
          Alcotest.test_case "bytecode == reference (1050 cases)" `Quick
            test_differential;
          Alcotest.test_case "cases reach crashes and objects" `Quick
            test_differential_reaches_crashes;
          Alcotest.test_case "noise deterministic per seed" `Quick
            test_noise_deterministic;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "reuse identity" `Quick test_scratch_reuse_identity;
          Alcotest.test_case "views agree with result" `Quick test_scratch_views;
          Alcotest.test_case "wrong kernel rejected" `Quick
            test_scratch_wrong_kernel;
        ] );
      ( "coverage-queries",
        [
          Alcotest.test_case "per_call_coverage" `Quick test_per_call_coverage;
          Alcotest.test_case "block_coverage_of_call" `Quick
            test_block_coverage_of_call;
        ] );
    ]
