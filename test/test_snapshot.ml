(* Tests for campaign snapshot/resume: the JSON codecs each serialized
   component round-trips through, the atomic file writer the snapshots
   (and every other artifact) rely on, the on-disk snapshot layout, and
   the headline property — a campaign killed after any barrier and
   resumed from its snapshot produces a report byte-identical
   ([Campaign.report_json] serialization) to the uninterrupted run. *)

module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Json = Sp_obs.Json
module Io = Sp_obs.Io
module Accum = Sp_coverage.Accum
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Parser = Sp_syzlang.Parser
module Vm = Sp_fuzz.Vm
module Strategy = Sp_fuzz.Strategy
module Campaign = Sp_fuzz.Campaign
module Corpus = Sp_fuzz.Corpus
module Snapshot = Sp_fuzz.Snapshot

let check = Alcotest.check

(* Shared small kernel (same shape as test_parallel's). *)
let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

let parse = Parser.program db

(* ------------------------------------------------------------------ *)
(* Component codecs                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_int64_roundtrip =
  QCheck.Test.make ~count:500 ~name:"int64 hex codec round-trips any state"
    QCheck.int64 (fun v ->
      Json.Decode.int64_field "s" (Json.Obj [ ("s", Json.Decode.int64_to_json v) ])
      = v)

let test_rng_json_roundtrip () =
  let rng = Rng.create 99 in
  for _ = 1 to 23 do ignore (Rng.bits64 rng) done;
  let doc = Json.Obj [ ("rng", Json.Decode.int64_to_json (Rng.state rng)) ] in
  let restored = Rng.of_state (Json.Decode.int64_field "rng" doc) in
  check
    (Alcotest.list Alcotest.int64)
    "restored stream replays the original"
    (List.init 40 (fun _ -> Rng.bits64 rng))
    (List.init 40 (fun _ -> Rng.bits64 restored))

let qcheck_bitset_roundtrip =
  QCheck.Test.make ~count:300 ~name:"bitset codec round-trips"
    QCheck.(pair (int_range 1 512) (small_list small_nat))
    (fun (cap, raw) ->
      let b = Bitset.of_list cap (List.map (fun i -> i mod cap) raw) in
      let b' = Accum.bitset_of_json (Accum.bitset_to_json b) in
      Bitset.equal b b' && Bitset.capacity b' = cap)

let test_accum_json_roundtrip () =
  let rng = Rng.create 3 in
  let acc = Accum.create ~num_blocks:64 ~num_edges:128 in
  for _ = 1 to 20 do
    let blocks = Bitset.of_list 64 (List.init 5 (fun _ -> Rng.int rng 64)) in
    let edges = Bitset.of_list 128 (List.init 7 (fun _ -> Rng.int rng 128)) in
    ignore (Accum.add acc ~blocks ~edges)
  done;
  let j = Accum.to_json acc in
  let acc' = Accum.of_json j in
  check Alcotest.int "blocks covered" (Accum.blocks_covered acc)
    (Accum.blocks_covered acc');
  check Alcotest.int "edges covered" (Accum.edges_covered acc)
    (Accum.edges_covered acc');
  Alcotest.(check bool) "capacities preserved" true
    (Accum.capacities acc = Accum.capacities acc');
  Alcotest.(check bool) "block sets equal" true
    (Bitset.equal (Accum.snapshot_blocks acc) (Accum.snapshot_blocks acc'));
  (* Canonical bytes: re-serializing the restored accumulator is stable. *)
  check Alcotest.string "canonical serialization" (Json.to_string j)
    (Json.to_string (Accum.to_json acc'))

let test_corpus_codec_roundtrip () =
  let progs = Gen.corpus (Rng.create 5) db ~size:8 in
  let corpus = Corpus.create () in
  List.iteri
    (fun i prog ->
      let entry =
        { Corpus.prog;
          blocks = Bitset.of_list 64 [ i; (2 * i) mod 64 ];
          edges = Bitset.of_list 128 [ (3 * i) mod 128 ];
          added_at = float_of_int i *. 10.0 }
      in
      Alcotest.(check bool) "admitted" true (Corpus.add corpus entry))
    progs;
  let j = Snapshot.corpus_to_json corpus in
  let entries = Snapshot.corpus_entries_of_json ~parse j in
  check Alcotest.int "entry count" (Corpus.size corpus) (List.length entries);
  (* Re-adding the decoded entries in list order reproduces the corpus —
     including entry order, so the serialization is byte-stable. *)
  let corpus' = Corpus.create () in
  List.iter (fun e -> ignore (Corpus.add corpus' e)) entries;
  check Alcotest.string "canonical corpus serialization" (Json.to_string j)
    (Json.to_string (Snapshot.corpus_to_json corpus'));
  List.iter2
    (fun (a : Corpus.entry) (b : Corpus.entry) ->
      Alcotest.(check bool) "programs equal" true (Prog.equal a.Corpus.prog b.Corpus.prog);
      Alcotest.(check bool) "coverage equal" true
        (Bitset.equal a.Corpus.blocks b.Corpus.blocks
        && Bitset.equal a.Corpus.edges b.Corpus.edges);
      check (Alcotest.float 0.0) "added_at equal" a.Corpus.added_at b.Corpus.added_at)
    (Corpus.entries corpus) (Corpus.entries corpus')

let test_codec_rejects_malformed () =
  (match Snapshot.entry_of_json ~parse Json.Null with
  | _ -> Alcotest.fail "entry_of_json accepted Null"
  | exception Json.Decode.Error _ -> ());
  (match Accum.bitset_of_json (Json.Obj [ ("capacity", Json.Num 4.0) ]) with
  | _ -> Alcotest.fail "bitset_of_json accepted a set with no elements field"
  | exception Json.Decode.Error _ -> ());
  match
    Json.Decode.int64_field "s" (Json.Obj [ ("s", Json.Str "not-hex") ])
  with
  | _ -> Alcotest.fail "int64_field accepted a non-hex string"
  | exception Json.Decode.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Atomic writes                                                        *)
(* ------------------------------------------------------------------ *)

let with_dir name f =
  if not (Sys.file_exists name) then Sys.mkdir name 0o755;
  Array.iter
    (fun file -> Sys.remove (Filename.concat name file))
    (Sys.readdir name);
  f name

let no_tmp_leftovers dir =
  Array.for_all
    (fun file -> not (Filename.check_suffix file ".tmp"))
    (Sys.readdir dir)

let test_write_atomic_roundtrip () =
  with_dir "wa-basic" (fun dir ->
      let path = Filename.concat dir "out.txt" in
      Io.write_atomic path "first\n";
      check Alcotest.string "write then read" "first\n" (Io.read_file path);
      Io.write_atomic path "second\n";
      check Alcotest.string "overwrite" "second\n" (Io.read_file path);
      Alcotest.(check bool) "no temp files left" true (no_tmp_leftovers dir))

let test_write_atomic_interrupted () =
  with_dir "wa-interrupted" (fun dir ->
      let path = Filename.concat dir "out.txt" in
      Io.write_atomic path "previous snapshot\n";
      (* A writer that dies mid-stream models a kill during serialization:
         the destination must keep its previous contents and the temp file
         must not leak. *)
      (match
         Io.write_atomic_with path (fun oc ->
             output_string oc "torn partial wri";
             failwith "killed mid-write")
       with
      | () -> Alcotest.fail "interrupted write should raise"
      | exception Failure _ -> ());
      check Alcotest.string "previous contents intact" "previous snapshot\n"
        (Io.read_file path);
      Alcotest.(check bool) "no temp files left" true (no_tmp_leftovers dir))

(* ------------------------------------------------------------------ *)
(* Snapshot files                                                       *)
(* ------------------------------------------------------------------ *)

let test_snapshot_path_layout () =
  check Alcotest.string "zero-padded barrier name" "d/snapshot-000003.json"
    (Snapshot.path ~dir:"d" ~barrier:3);
  check Alcotest.string "wide barriers fit" "d/snapshot-123456.json"
    (Snapshot.path ~dir:"d" ~barrier:123456)

let test_snapshot_write_read () =
  with_dir "snap-files" (fun dir ->
      (* write creates nested directories as needed *)
      let nested = Filename.concat dir "a/b" in
      let doc = Json.Obj [ ("barrier", Json.Num 1.0); ("ok", Json.Bool true) ] in
      let path = Snapshot.write ~dir:nested ~barrier:1 doc in
      check Alcotest.string "path returned" (Snapshot.path ~dir:nested ~barrier:1) path;
      (match Snapshot.read path with
      | Ok j -> Alcotest.(check bool) "round-trips" true (Json.equal doc j)
      | Error e -> Alcotest.failf "read failed: %s" e);
      match Snapshot.read (Filename.concat dir "missing.json") with
      | Ok _ -> Alcotest.fail "read of a missing file should be an Error"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Resume determinism                                                   *)
(* ------------------------------------------------------------------ *)

let seeds = Gen.corpus (Rng.create 42) db ~size:30

let cfg =
  { Campaign.default_config with
    seed_corpus = seeds; seed = 7; duration = 900.0; snapshot_every = 300.0 }

let vm_for s = Vm.create ~seed:(100 + s) kernel

let strategy_for _ = Strategy.syzkaller db

let report_bytes r = Json.to_string (Campaign.report_json r)

let snap_dir = "snap-resume"

(* One uninterrupted jobs=2 run, snapshotting at every barrier — the
   oracle every resumed run must match byte-for-byte. *)
let baseline =
  lazy
    (with_dir snap_dir (fun dir ->
         let r =
           Campaign.run_parallel ~snapshot_dir:dir ~jobs:2 ~vm_for ~strategy_for
             cfg
         in
         report_bytes r))

let resume_from ?(cfg = cfg) ?(jobs = 2) barrier =
  match Snapshot.read (Snapshot.path ~dir:snap_dir ~barrier) with
  | Error e -> Alcotest.failf "snapshot %d unreadable: %s" barrier e
  | Ok snapshot ->
    Campaign.resume ~snapshot ~jobs ~vm_for ~strategy_for cfg

let test_snapshots_written_per_barrier () =
  let oracle = Lazy.force baseline in
  Alcotest.(check bool) "baseline did real work" true (String.length oracle > 0);
  (* 900 s at a 300 s grid = barriers 1..3, one file each. *)
  List.iter
    (fun barrier ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot %d exists" barrier)
        true
        (Sys.file_exists (Snapshot.path ~dir:snap_dir ~barrier)))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "no temp files left" true (no_tmp_leftovers snap_dir)

let test_snapshotting_does_not_perturb () =
  let oracle = Lazy.force baseline in
  let plain =
    Campaign.run_parallel ~jobs:2 ~vm_for ~strategy_for cfg
  in
  check Alcotest.string "snapshot_dir leaves the campaign unchanged" oracle
    (report_bytes plain)

let test_resume_matches_uninterrupted () =
  let oracle = Lazy.force baseline in
  (* >= 2 distinct resume points: kill after the first barrier, and kill
     after the second. Both must replay to the identical report. *)
  List.iter
    (fun barrier ->
      match resume_from barrier with
      | Error e -> Alcotest.failf "resume at barrier %d failed: %s" barrier e
      | Ok r ->
        check Alcotest.string
          (Printf.sprintf "resume at barrier %d is byte-identical" barrier)
          oracle (report_bytes r))
    [ 1; 2 ]

let test_resume_from_final_snapshot () =
  let oracle = Lazy.force baseline in
  match resume_from 3 with
  | Error e -> Alcotest.failf "resume from final snapshot failed: %s" e
  | Ok r ->
    check Alcotest.string "final snapshot reassembles the report" oracle
      (report_bytes r)

let test_resume_rejects_config_mismatch () =
  ignore (Lazy.force baseline);
  (match resume_from ~cfg:{ cfg with seed = cfg.seed + 1 } 1 with
  | Ok _ -> Alcotest.fail "seed mismatch accepted"
  | Error _ -> ());
  (match resume_from ~jobs:3 1 with
  | Ok _ -> Alcotest.fail "jobs mismatch accepted"
  | Error _ -> ());
  match resume_from ~cfg:{ cfg with duration = 1200.0 } 1 with
  | Ok _ -> Alcotest.fail "duration mismatch accepted"
  | Error _ -> ()

let test_resume_rejects_garbage () =
  (match
     Campaign.resume ~snapshot:(Json.Obj [ ("format", Json.Str "bogus") ])
       ~jobs:2 ~vm_for ~strategy_for cfg
   with
  | Ok _ -> Alcotest.fail "wrong format accepted"
  | Error _ -> ());
  match Campaign.resume ~snapshot:Json.Null ~jobs:2 ~vm_for ~strategy_for cfg with
  | Ok _ -> Alcotest.fail "Null snapshot accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Snowplow aux state: inference / funnel / prediction memos            *)
(* ------------------------------------------------------------------ *)

(* A real (untrained) PMM behind the real service, as in test_parallel:
   creation is cheap and deterministic, so two calls build services with
   identical initial state — which is what lets a resumed run recreate
   the service fresh and restore the snapshot's aux into it. *)
let inference () =
  let encoder =
    Snowplow.Encoder.pretrain
      ~config:{ Snowplow.Encoder.default_config with steps = 40 }
      kernel
  in
  let model =
    Snowplow.Pmm.create
      ~encoder_dim:(Snowplow.Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  Snowplow.Inference.create ~kernel
    ~block_embs:(Snowplow.Encoder.embed_kernel encoder kernel)
    model

let test_inference_state_roundtrip () =
  let service = inference () in
  let prog s = Gen.program (Rng.create s) db () in
  (* Mixed-tag traffic, partially drained: the surviving state holds a
     non-empty queue, warm caches and per-tag counters. *)
  for s = 1 to 6 do
    ignore
      (Snowplow.Inference.request service ~tag:(s mod 2)
         ~now:(float_of_int s) (prog s) ~targets:[ 0 ])
  done;
  ignore (Snowplow.Inference.poll service ~tag:1 ~now:1000.0 ());
  let j = Snowplow.Inference.state_json service in
  let service' = inference () in
  Snowplow.Inference.restore_state service' ~parse j;
  check Alcotest.string "canonical state serialization"
    (Json.to_string j)
    (Json.to_string (Snowplow.Inference.state_json service'));
  check Alcotest.int "pending queue restored"
    (Snowplow.Inference.pending service)
    (Snowplow.Inference.pending service');
  List.iter
    (fun tag ->
      Alcotest.(check bool)
        (Printf.sprintf "tag %d stats restored" tag)
        true
        (Snowplow.Inference.tenant_stats service ~tag
        = Snowplow.Inference.tenant_stats service' ~tag))
    [ 0; 1 ];
  (* The restored queue drains identically. *)
  check Alcotest.int "same completions deliverable"
    (List.length (Snowplow.Inference.poll service ~now:1e9 ()))
    (List.length (Snowplow.Inference.poll service' ~now:1e9 ()))

let test_snapshot_latest () =
  with_dir "snap-latest" (fun dir ->
      check
        (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
        "empty dir has no snapshot" None
        (Snapshot.latest ~dir);
      List.iter
        (fun b -> ignore (Snapshot.write ~dir ~barrier:b Json.Null))
        [ 1; 3; 2 ];
      check
        (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
        "highest barrier wins"
        (Some (3, Snapshot.path ~dir ~barrier:3))
        (Snapshot.latest ~dir))

(* The headline aux property: a snowplow campaign — strategy state in the
   shared inference service, the funnel lanes and per-shard prediction
   memos, all outside the campaign record — killed at a barrier and
   resumed from its snapshot still reproduces the uninterrupted report
   byte-for-byte, because [Persist.aux] rides that state in the
   snapshot's [aux] field. *)
let aux_cfg =
  { Campaign.default_config with
    seed_corpus = Gen.corpus (Rng.create 29) db ~size:20;
    seed = 13;
    duration = 900.0;
    snapshot_every = 300.0 }

let aux_jobs = 2

let snowplow_run ?snapshot_dir ?restore () =
  let service = inference () in
  let funnel = Snowplow.Funnel.create ~shards:aux_jobs service in
  let predictions =
    Array.init aux_jobs (fun _ -> Snowplow.Hybrid.make_predictions ())
  in
  let aux =
    Snowplow.Persist.aux ~parse ~inference:service ~funnel ~predictions
  in
  let strategy_for s =
    Snowplow.Hybrid.strategy_with
      ~predictions:(predictions.(s))
      ~endpoint:(Snowplow.Funnel.endpoint funnel ~shard:s)
      kernel
  in
  let on_barrier ~now = ignore (Snowplow.Funnel.flush funnel ~now) in
  match restore with
  | None ->
    Ok
      (Campaign.run_parallel ?snapshot_dir ~on_barrier ~aux ~jobs:aux_jobs
         ~vm_for ~strategy_for aux_cfg)
  | Some snapshot ->
    Campaign.resume ~snapshot ~on_barrier ~aux ~jobs:aux_jobs ~vm_for
      ~strategy_for aux_cfg

let test_snowplow_resume_matches_uninterrupted () =
  let dir = "snap-aux" in
  let oracle =
    with_dir dir (fun dir ->
        match snowplow_run ~snapshot_dir:dir () with
        | Ok r -> report_bytes r
        | Error e -> Alcotest.failf "snowplow baseline failed: %s" e)
  in
  List.iter
    (fun barrier ->
      let snapshot =
        match Snapshot.read (Snapshot.path ~dir ~barrier) with
        | Ok s -> s
        | Error e -> Alcotest.failf "snapshot %d unreadable: %s" barrier e
      in
      match snowplow_run ~restore:snapshot () with
      | Error e -> Alcotest.failf "snowplow resume at %d failed: %s" barrier e
      | Ok r ->
        check Alcotest.string
          (Printf.sprintf
             "snowplow resume at barrier %d is byte-identical" barrier)
          oracle (report_bytes r))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "snapshot"
    [ ( "codec",
        [ qtest qcheck_int64_roundtrip;
          Alcotest.test_case "rng state through JSON" `Quick test_rng_json_roundtrip;
          qtest qcheck_bitset_roundtrip;
          Alcotest.test_case "accum round-trip" `Quick test_accum_json_roundtrip;
          Alcotest.test_case "corpus codec round-trip" `Quick
            test_corpus_codec_roundtrip;
          Alcotest.test_case "malformed input rejected" `Quick
            test_codec_rejects_malformed ] );
      ( "write-atomic",
        [ Alcotest.test_case "write/read/overwrite" `Quick
            test_write_atomic_roundtrip;
          Alcotest.test_case "interrupted write keeps previous file" `Quick
            test_write_atomic_interrupted ] );
      ( "snapshot-files",
        [ Alcotest.test_case "path layout" `Quick test_snapshot_path_layout;
          Alcotest.test_case "write/read round-trip" `Quick
            test_snapshot_write_read ] );
      ( "resume",
        [ Alcotest.test_case "one file per barrier" `Quick
            test_snapshots_written_per_barrier;
          Alcotest.test_case "snapshotting does not perturb" `Quick
            test_snapshotting_does_not_perturb;
          Alcotest.test_case "resume == uninterrupted (2 resume points)" `Slow
            test_resume_matches_uninterrupted;
          Alcotest.test_case "resume from final snapshot" `Quick
            test_resume_from_final_snapshot;
          Alcotest.test_case "config mismatch rejected" `Quick
            test_resume_rejects_config_mismatch;
          Alcotest.test_case "garbage snapshot rejected" `Quick
            test_resume_rejects_garbage ] );
      ( "aux",
        [ Alcotest.test_case "inference state round-trip" `Quick
            test_inference_state_roundtrip;
          Alcotest.test_case "latest snapshot in a dir" `Quick
            test_snapshot_latest;
          Alcotest.test_case "snowplow resume == uninterrupted" `Slow
            test_snowplow_resume_matches_uninterrupted ] ) ]
