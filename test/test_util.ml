(* Unit and property tests for sp_util: RNG, statistics, bitsets, tables. *)

module Rng = Sp_util.Rng
module Stats = Sp_util.Stats
module Bitset = Sp_util.Bitset
module Table = Sp_util.Table

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds give different streams" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* Drawing from the child must not perturb the parent relative to a
     parent that was split but never used the child. *)
  let parent' = Rng.create 9 in
  let _child' = Rng.split parent' in
  for _ = 1 to 10 do
    ignore (Rng.bits64 child)
  done;
  check Alcotest.int64 "parent unaffected by child draws" (Rng.bits64 parent')
    (Rng.bits64 parent)

let test_rng_split_named_stable () =
  let a = Rng.create 5 and b = Rng.create 5 in
  let sa = Rng.split_named a "workers" and sb = Rng.split_named b "workers" in
  check Alcotest.int64 "same label, same stream" (Rng.bits64 sa) (Rng.bits64 sb);
  let other = Rng.split_named (Rng.create 5) "other" in
  Alcotest.(check bool) "different labels diverge" true
    (Rng.bits64 other <> Rng.bits64 (Rng.split_named (Rng.create 5) "workers"))

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 10);
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "int_in in bounds" true (v >= -5 && v <= 5);
    let f = Rng.float rng 2.0 in
    Alcotest.(check bool) "float in bounds" true (f >= 0.0 && f < 2.0)
  done

let test_rng_uniformity () =
  let rng = Rng.create 17 in
  let counts = Array.make 8 0 in
  let n = 16_000 in
  for _ = 1 to n do
    let i = Rng.int rng 8 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 15% of uniform" true
        (abs (c - (n / 8)) < n * 15 / 800))
    counts

let test_weighted () =
  let rng = Rng.create 23 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Rng.weighted rng [ (`A, 9.0); (`B, 1.0) ] = `A then incr heavy
  done;
  Alcotest.(check bool) "weights respected" true (!heavy > 820 && !heavy < 980)

let test_weighted_non_finite () =
  (* Regression: a NaN weight used to poison the cumulative total
     ([Float.max nan 0.0] is NaN, and NaN <= 0.0 is false, so the
     positive-total guard was bypassed and the scan returned an arbitrary
     element). Non-finite weights must count as zero. *)
  let rng = Rng.create 29 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "NaN weight never drawn" true
      (Rng.weighted rng [ (`Bad, Float.nan); (`Good, 1.0) ] = `Good);
    Alcotest.(check bool) "infinite weight never drawn" true
      (Rng.weighted rng [ (`Bad, Float.infinity); (`Good, 1.0) ] = `Good);
    Alcotest.(check bool) "neg_infinity weight never drawn" true
      (Rng.weighted rng [ (`Bad, Float.neg_infinity); (`Good, 1.0) ] = `Good)
  done;
  Alcotest.check_raises "all weights non-finite"
    (Invalid_argument "Rng.weighted: no positive weight") (fun () ->
      ignore (Rng.weighted rng [ (`A, Float.nan); (`B, Float.infinity) ]))

let test_rng_int_rejection_exact () =
  (* Rejection sampling must make every residue exactly as likely: for a
     bound of the form 2^k the draw is a pure mask (never rejects), and
     for other bounds all values stay in range. The statistical check is
     [test_rng_uniformity]; here we pin the degenerate bounds. *)
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    check Alcotest.int "bound 1 is always 0" 0 (Rng.int rng 1);
    let v = Rng.int rng 3 in
    Alcotest.(check bool) "bound 3 in range" true (v >= 0 && v < 3);
    let v = Rng.int rng max_int in
    Alcotest.(check bool) "huge bound in range" true (v >= 0)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_state_roundtrip () =
  let rng = Rng.create 37 in
  for _ = 1 to 17 do ignore (Rng.bits64 rng) done;
  let saved = Rng.state rng in
  let future = List.init 50 (fun _ -> Rng.bits64 rng) in
  let replay = Rng.of_state saved in
  check
    (Alcotest.list Alcotest.int64)
    "of_state replays the stream" future
    (List.init 50 (fun _ -> Rng.bits64 replay));
  let target = Rng.create 0 in
  Rng.set_state target saved;
  check
    (Alcotest.list Alcotest.int64)
    "set_state replays the stream" future
    (List.init 50 (fun _ -> Rng.bits64 target))

let test_sample_distinct =
  QCheck.Test.make ~count:200 ~name:"Rng.sample draws distinct elements"
    QCheck.(pair small_nat (int_bound 1000))
    (fun (k, seed) ->
      let rng = Rng.create seed in
      let arr = Array.init 30 Fun.id in
      let sampled = Rng.sample rng arr k in
      List.length (List.sort_uniq compare sampled) = List.length sampled
      && List.length sampled = min k 30)

let test_shuffle_permutation =
  QCheck.Test.make ~count:200 ~name:"Rng.shuffle is a permutation"
    QCheck.(pair (list small_int) (int_bound 1000))
    (fun (l, seed) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let feq = Alcotest.float 1e-9

let test_stats_basics () =
  check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "mean empty" 0.0 (Stats.mean []);
  check feq "sum" 6.0 (Stats.sum [ 1.0; 2.0; 3.0 ]);
  check feq "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check feq "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check feq "p0 is min" 1.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 0.0);
  check feq "p100 is max" 3.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 100.0);
  check feq "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stats_minmax () =
  let lo, hi = Stats.min_max [ 4.0; -1.0; 9.0 ] in
  check feq "min" (-1.0) lo;
  check feq "max" 9.0 hi;
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.min_max: empty list")
    (fun () -> ignore (Stats.min_max []))

let test_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_inclusive 100.0))
    (fun xs ->
      let p25 = Stats.percentile xs 25.0
      and p50 = Stats.percentile xs 50.0
      and p75 = Stats.percentile xs 75.0 in
      p25 <= p50 && p50 <= p75)

(* ------------------------------------------------------------------ *)
(* Bitset                                                               *)
(* ------------------------------------------------------------------ *)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem" true (Bitset.mem s 63);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "elements" [ 0; 99 ] (Bitset.elements s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index out of range") (fun () -> Bitset.add s 100)

let bitset_of_list l = Bitset.of_list 256 (List.map (fun i -> i mod 256) l)

let test_bitset_union_model =
  QCheck.Test.make ~count:300 ~name:"union_into agrees with a list model"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let sa = bitset_of_list a and sb = bitset_of_list b in
      let expected =
        List.sort_uniq compare (List.map (fun i -> i mod 256) (a @ b))
      in
      let added = Bitset.union_into ~dst:sa sb in
      Bitset.elements sa = expected
      && added
         = List.length expected
           - List.length (List.sort_uniq compare (List.map (fun i -> i mod 256) a)))

let test_bitset_diff_inter_model =
  QCheck.Test.make ~count:300 ~name:"diff/inter cardinals agree with a list model"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let norm l = List.sort_uniq compare (List.map (fun i -> i mod 256) l) in
      let la = norm a and lb = norm b in
      let sa = bitset_of_list a and sb = bitset_of_list b in
      Bitset.diff_cardinal sa sb
      = List.length (List.filter (fun x -> not (List.mem x lb)) la)
      && Bitset.inter_cardinal sa sb
         = List.length (List.filter (fun x -> List.mem x lb) la))

let test_bitset_subset =
  QCheck.Test.make ~count:300 ~name:"subset matches diff_cardinal = 0"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let sa = bitset_of_list a and sb = bitset_of_list b in
      Bitset.subset sa sb = (Bitset.diff_cardinal sa sb = 0))

let test_bitset_copy_isolated () =
  let s = Bitset.create 16 in
  Bitset.add s 3;
  let c = Bitset.copy s in
  Bitset.add c 5;
  Alcotest.(check bool) "copy isolated" false (Bitset.mem s 5);
  Alcotest.(check bool) "copy kept contents" true (Bitset.mem c 3)

(* Full op-sequence model check against Stdlib's Set.Make(Int): every
   Bitset operation interleaved at random, the set-algebra queries
   (union_into / diff_cardinal / inter_cardinal / subset) checked against
   their mathematical definitions on the model. *)
module ISet = Set.Make (Int)

let test_bitset_model_ops =
  QCheck.Test.make ~count:300 ~name:"Bitset op sequences match an IntSet model"
    QCheck.(list (pair (int_bound 7) (int_bound 127)))
    (fun ops ->
      let n = 128 in
      let s = Bitset.create n in
      let other = Bitset.of_list n [ 3; 17; 64; 65; 127 ] in
      let other_m = ISet.of_list [ 3; 17; 64; 65; 127 ] in
      let model = ref ISet.empty in
      List.for_all
        (fun (code, v) ->
          let step_ok =
            match code with
            | 0 | 1 | 2 ->
              Bitset.add s v;
              model := ISet.add v !model;
              true
            | 3 ->
              Bitset.remove s v;
              model := ISet.remove v !model;
              true
            | 4 -> Bitset.mem s v = ISet.mem v !model
            | 5 ->
              let added = Bitset.union_into ~dst:s other in
              let union = ISet.union !model other_m in
              let grew = ISet.cardinal union - ISet.cardinal !model in
              model := union;
              added = grew
            | 6 ->
              Bitset.diff_cardinal s other
              = ISet.cardinal (ISet.diff !model other_m)
              && Bitset.inter_cardinal s other
                 = ISet.cardinal (ISet.inter !model other_m)
            | _ -> Bitset.subset s other = ISet.subset !model other_m
          in
          step_ok
          && Bitset.cardinal s = ISet.cardinal !model
          && Bitset.elements s = ISet.elements !model)
        ops)

(* ------------------------------------------------------------------ *)
(* Stampset                                                             *)
(* ------------------------------------------------------------------ *)

module Stampset = Sp_util.Stampset

let test_stampset_basics () =
  let s = Stampset.create 100 in
  Alcotest.(check int) "capacity" 100 (Stampset.capacity s);
  Alcotest.(check bool) "empty" true (Stampset.is_empty s);
  Stampset.add s 7;
  Stampset.add s 3;
  Stampset.add s 7;
  (* idempotent *)
  Alcotest.(check int) "cardinal" 2 (Stampset.cardinal s);
  Alcotest.(check bool) "mem" true (Stampset.mem s 3);
  Alcotest.(check bool) "not mem" false (Stampset.mem s 4);
  (* insertion order via member/iter, ascending via elements *)
  Alcotest.(check int) "member 0" 7 (Stampset.member s 0);
  Alcotest.(check int) "member 1" 3 (Stampset.member s 1);
  Alcotest.(check (list int)) "elements ascending" [ 3; 7 ]
    (Stampset.elements s);
  Alcotest.(check int) "fold sums members" 10
    (Stampset.fold ( + ) s 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stampset: index out of range") (fun () ->
      Stampset.add s 100);
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Stampset.member: bad rank") (fun () ->
      ignore (Stampset.member s 2))

let test_stampset_clear () =
  let s = Stampset.create 64 in
  for i = 0 to 63 do
    Stampset.add s i
  done;
  Stampset.clear s;
  Alcotest.(check bool) "cleared" true (Stampset.is_empty s);
  Alcotest.(check bool) "stale member gone" false (Stampset.mem s 17);
  (* a fresh generation must not resurrect pre-clear members *)
  Stampset.add s 5;
  Alcotest.(check (list int)) "only new members" [ 5 ] (Stampset.elements s);
  (* many generations: the stamp never wraps into a false positive in
     practical use *)
  for g = 0 to 1000 do
    Stampset.clear s;
    Stampset.add s (g mod 64);
    if Stampset.cardinal s <> 1 then Alcotest.fail "stale stamp leaked"
  done

(* Op-sequence model check including the stamp-clear: the O(1) clear must
   be observationally identical to emptying the model set. *)
let test_stampset_model_ops =
  QCheck.Test.make ~count:300
    ~name:"Stampset op sequences (incl. clear) match an IntSet model"
    QCheck.(list (pair (int_bound 9) (int_bound 63)))
    (fun ops ->
      let s = Stampset.create 64 in
      let model = ref ISet.empty in
      let order = ref [] in
      (* insertion order, newest first *)
      List.for_all
        (fun (code, v) ->
          let step_ok =
            match code with
            | 0 | 1 | 2 | 3 ->
              if not (ISet.mem v !model) then order := v :: !order;
              Stampset.add s v;
              model := ISet.add v !model;
              true
            | 4 | 5 -> Stampset.mem s v = ISet.mem v !model
            | 6 ->
              Stampset.clear s;
              model := ISet.empty;
              order := [];
              true
            | 7 ->
              (* to_bitset snapshots survive later mutation *)
              let b = Stampset.to_bitset s in
              let before = Bitset.elements b in
              if not (ISet.mem v !model) then order := v :: !order;
              Stampset.add s v;
              model := ISet.add v !model;
              Bitset.elements b = before
            | _ ->
              Stampset.fold (fun x acc -> acc + x) s 0
              = ISet.fold ( + ) !model 0
          in
          (* [member]/[fold] walk insertion order (oldest first) *)
          let insertion =
            List.rev (Stampset.fold (fun x acc -> x :: acc) s [])
          in
          step_ok
          && Stampset.cardinal s = ISet.cardinal !model
          && Stampset.elements s = ISet.elements !model
          && Stampset.is_empty s = ISet.is_empty !model
          && insertion = List.rev !order
          && List.mapi (fun k _ -> Stampset.member s k) insertion = insertion)
        ops)

let test_stampset_to_bitset =
  QCheck.Test.make ~count:200 ~name:"Stampset.to_bitset is a faithful snapshot"
    QCheck.(list (int_bound 99))
    (fun xs ->
      let s = Stampset.create 100 in
      List.iter (Stampset.add s) xs;
      let b = Stampset.to_bitset s in
      Bitset.elements b = Stampset.elements s
      && Bitset.cardinal b = Stampset.cardinal s)

(* ------------------------------------------------------------------ *)
(* Fqueue                                                               *)
(* ------------------------------------------------------------------ *)

module Fqueue = Sp_util.Fqueue

let test_fqueue_fifo () =
  let q = Fqueue.create () in
  Alcotest.(check bool) "empty" true (Fqueue.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Fqueue.pop_opt q);
  List.iter (Fqueue.push q) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Fqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Fqueue.peek_opt q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Fqueue.pop_opt q);
  Fqueue.push q 4;
  Alcotest.(check (list int)) "order preserved" [ 2; 3; 4 ] (Fqueue.to_list q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Fqueue.pop_opt q);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Fqueue.pop_opt q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Fqueue.pop_opt q);
  Alcotest.(check bool) "drained" true (Fqueue.is_empty q)

let test_fqueue_partition () =
  let q = Fqueue.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let evens = Fqueue.partition (fun x -> x mod 2 = 0) q in
  Alcotest.(check (list int)) "removed in order" [ 2; 4; 6 ] evens;
  Alcotest.(check (list int)) "kept in order" [ 1; 3; 5 ] (Fqueue.to_list q);
  Alcotest.(check int) "length updated" 3 (Fqueue.length q)

let test_fqueue_model =
  QCheck.Test.make ~count:300 ~name:"Fqueue behaves like a list queue"
    QCheck.(list (int_bound 2))
    (fun ops ->
      (* op 0 = pop, op >0 = push op *)
      let q = Fqueue.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          if op = 0 then begin
            let expect =
              match !model with
              | [] -> None
              | x :: rest ->
                model := rest;
                Some x
            in
            Fqueue.pop_opt q = expect
          end
          else begin
            Fqueue.push q op;
            model := !model @ [ op ];
            true
          end
          && Fqueue.to_list q = !model
          && Fqueue.length q = List.length !model)
        ops)

(* ------------------------------------------------------------------ *)
(* Lru                                                                  *)
(* ------------------------------------------------------------------ *)

module Lru = Sp_util.Lru

let test_lru_bounded () =
  let c = Lru.create ~capacity:3 () in
  for i = 1 to 10 do
    Lru.put c ~now:0.0 i (i * 10)
  done;
  Alcotest.(check int) "bounded by capacity" 3 (Lru.length c);
  Alcotest.(check int) "evictions counted" 7 (Lru.evictions c);
  (* the three most recent survive *)
  Alcotest.(check (option int)) "recent kept" (Some 100) (Lru.find c ~now:0.0 10);
  Alcotest.(check (option int)) "old evicted" None (Lru.find c ~now:0.0 1)

let test_lru_recency () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c ~now:0.0 "a" 1;
  Lru.put c ~now:0.0 "b" 2;
  (* touching "a" makes "b" the LRU victim *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c ~now:0.0 "a");
  Lru.put c ~now:0.0 "c" 3;
  Alcotest.(check (option int)) "a survived" (Some 1) (Lru.find c ~now:0.0 "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.find c ~now:0.0 "b");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find c ~now:0.0 "c")

let test_lru_ttl () =
  let c = Lru.create ~ttl:10.0 ~capacity:8 () in
  Lru.put c ~now:0.0 "k" 1;
  Alcotest.(check (option int)) "fresh" (Some 1) (Lru.find c ~now:9.9 "k");
  (* a hit refreshes recency, not the TTL stamp *)
  Alcotest.(check (option int)) "expired" None (Lru.find c ~now:10.1 "k");
  Alcotest.(check int) "expiration counted" 1 (Lru.expirations c);
  Alcotest.(check int) "dropped from table" 0 (Lru.length c);
  (* re-put resets the stamp *)
  Lru.put c ~now:20.0 "k" 2;
  Alcotest.(check (option int)) "fresh again" (Some 2) (Lru.find c ~now:29.0 "k")

let test_lru_to_list () =
  let c = Lru.create ~ttl:100.0 ~capacity:4 () in
  Lru.put c ~now:1.0 "a" 1;
  Lru.put c ~now:2.0 "b" 2;
  Lru.put c ~now:3.0 "c" 3;
  (* touching "a" promotes it to MRU without changing its TTL stamp *)
  Alcotest.(check (option int)) "touch a" (Some 1) (Lru.find c ~now:3.0 "a");
  Alcotest.(check (list (triple string int (float 0.0))))
    "MRU-first with write stamps"
    [ ("a", 1, 1.0); ("c", 3, 3.0); ("b", 2, 2.0) ]
    (Lru.to_list c);
  (* replaying oldest-first at the recorded stamps rebuilds an
     equivalent cache — the snapshot restore path *)
  let c' = Lru.create ~ttl:100.0 ~capacity:4 () in
  List.iter
    (fun (k, v, at) -> Lru.put c' ~now:at k v)
    (List.rev (Lru.to_list c));
  Alcotest.(check (list (triple string int (float 0.0))))
    "replay reconstructs order and stamps" (Lru.to_list c) (Lru.to_list c')

let test_lru_validation () =
  Alcotest.check_raises "capacity checked"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0 () : (int, int) Lru.t));
  Alcotest.check_raises "ttl checked"
    (Invalid_argument "Lru.create: ttl must be positive") (fun () ->
      ignore (Lru.create ~ttl:0.0 ~capacity:1 () : (int, int) Lru.t))

let test_lru_model =
  QCheck.Test.make ~count:200 ~name:"Lru.length never exceeds capacity"
    QCheck.(list (pair (int_bound 30) (int_bound 100)))
    (fun kvs ->
      let c = Lru.create ~capacity:7 () in
      List.for_all
        (fun (k, v) ->
          Lru.put c ~now:0.0 k v;
          Lru.length c <= 7 && Lru.find c ~now:0.0 k = Some v)
        kvs)

(* Full op-sequence model check: every queue operation interleaved at
   random, each step compared against a naive list reference. *)
let test_fqueue_model_ops =
  QCheck.Test.make ~count:300 ~name:"Fqueue op sequences match list model"
    QCheck.(list (pair (int_bound 9) (int_bound 50)))
    (fun ops ->
      let q = Fqueue.create () in
      let model = ref [] in
      List.for_all
        (fun (code, v) ->
          let step_ok =
            match code with
            | 0 | 1 | 2 | 3 | 4 ->
              Fqueue.push q v;
              model := !model @ [ v ];
              true
            | 5 ->
              let expect =
                match !model with
                | [] -> None
                | x :: rest ->
                  model := rest;
                  Some x
              in
              Fqueue.pop_opt q = expect
            | 6 ->
              Fqueue.peek_opt q
              = (match !model with [] -> None | x :: _ -> Some x)
            | 7 ->
              let keep x = x mod 3 <> v mod 3 in
              let removed = Fqueue.partition (fun x -> not (keep x)) q in
              let expect_removed = List.filter (fun x -> not (keep x)) !model in
              model := List.filter keep !model;
              removed = expect_removed
            | 8 ->
              Fqueue.fold (fun acc x -> acc + x) 0 q
              = List.fold_left ( + ) 0 !model
            | _ ->
              Fqueue.clear q;
              model := [];
              true
          in
          step_ok
          && Fqueue.to_list q = !model
          && Fqueue.length q = List.length !model)
        ops)

(* Reference LRU: assoc list in MRU -> LRU order carrying write stamps.
   Mirrors the documented semantics — a find refreshes recency but not
   the TTL stamp; eviction takes the recency tail regardless of
   freshness; expiry is strict (now - written > ttl). *)
module Lru_model = struct
  type t = (int * (int * float)) list ref  (* key -> value, written_at *)

  let ttl = 10.0

  let capacity = 4

  let find (m : t) ~now k =
    match List.assoc_opt k !m with
    | None -> None
    | Some (v, written) ->
      if now -. written > ttl then begin
        m := List.remove_assoc k !m;
        None
      end
      else begin
        m := (k, (v, written)) :: List.remove_assoc k !m;
        Some v
      end

  let put (m : t) ~now k v =
    if List.mem_assoc k !m then m := (k, (v, now)) :: List.remove_assoc k !m
    else begin
      let kept =
        if List.length !m >= capacity then
          (* drop the recency tail (last element) *)
          List.filteri (fun i _ -> i < List.length !m - 1) !m
        else !m
      in
      m := (k, (v, now)) :: kept
    end

  let remove (m : t) k = m := List.remove_assoc k !m
end

let test_lru_model_ops =
  QCheck.Test.make ~count:300
    ~name:"Lru op sequences (find/put/remove/TTL/evict) match assoc model"
    QCheck.(
      list
        (quad (int_bound 5) (int_bound 8) (int_bound 100) (int_bound 4)))
    (fun ops ->
      let c = Lru.create ~ttl:Lru_model.ttl ~capacity:Lru_model.capacity () in
      let m : Lru_model.t = ref [] in
      let now = ref 0.0 in
      List.for_all
        (fun (code, k, v, dt) ->
          now := !now +. float_of_int dt;
          let step_ok =
            match code with
            | 0 | 1 ->
              Lru.put c ~now:!now k v;
              Lru_model.put m ~now:!now k v;
              true
            | 2 | 3 -> Lru.find c ~now:!now k = Lru_model.find m ~now:!now k
            | 4 ->
              Lru.remove c k;
              Lru_model.remove m k;
              true
            | _ -> true (* pure time advance *)
          in
          step_ok
          && Lru.length c = List.length !m
          && Lru.length c <= Lru_model.capacity)
        ops)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

module Metrics = Sp_util.Metrics

let test_metrics_counters () =
  let m = Metrics.create () in
  Alcotest.(check int) "unknown is zero" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m "x" ~by:4;
  Metrics.incr m "y";
  Alcotest.(check int) "accumulates" 5 (Metrics.counter m "x");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("x", 5); ("y", 1) ] (Metrics.counters m)

let test_metrics_histogram () =
  let m = Metrics.create () in
  Alcotest.(check bool) "no summary before observations" true
    (Metrics.summary m "lat" = None);
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.summary m "lat" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
    Alcotest.(check bool) "median near middle" true (s.Metrics.p50 > 40.0 && s.Metrics.p50 < 60.0);
    Alcotest.(check bool) "p99 near top" true (s.Metrics.p99 > 90.0)

let test_metrics_reservoir_bounded () =
  (* far more observations than the reservoir holds: moments stay exact,
     percentiles stay sane, memory stays constant *)
  let m = Metrics.create () in
  let n = 50_000 in
  for i = 1 to n do
    Metrics.observe m "big" (float_of_int i)
  done;
  match Metrics.summary m "big" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
    Alcotest.(check int) "exact count" n s.Metrics.count;
    Alcotest.(check (float 1e-6)) "exact max" (float_of_int n) s.Metrics.max;
    Alcotest.(check bool) "sampled p50 within 10%" true
      (s.Metrics.p50 > 0.4 *. float_of_int n && s.Metrics.p50 < 0.6 *. float_of_int n)

let test_metrics_time_and_render () =
  let m = Metrics.create () in
  let v = Metrics.time m "work" (fun () -> 42) in
  Alcotest.(check int) "thunk result returned" 42 v;
  (match Metrics.summary m "work" with
  | Some s -> Alcotest.(check int) "timed once" 1 s.Metrics.count
  | None -> Alcotest.fail "timer not recorded");
  Metrics.incr m "n";
  let out = Metrics.render m in
  let contains_line prefix =
    String.split_on_char '\n' out
    |> List.exists (fun l ->
           String.length l >= String.length prefix
           && String.sub (String.trim l) 0
                (min (String.length prefix) (String.length (String.trim l)))
              = prefix)
  in
  Alcotest.(check bool) "render mentions counter" true (contains_line "n");
  Alcotest.(check bool) "render mentions timer" true (contains_line "work");
  Metrics.reset m;
  Alcotest.(check int) "reset clears" 0 (Metrics.counter m "n")

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "c" ~by:2;
  Metrics.incr b "c" ~by:3;
  Metrics.observe b "h" 1.0;
  Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "counters merged" 5 (Metrics.counter a "c");
  match Metrics.summary a "h" with
  | Some s -> Alcotest.(check int) "observations merged" 1 s.Metrics.count
  | None -> Alcotest.fail "histogram not merged"

(* The campaign's barrier merge relies on this: folding per-shard
   registries into an empty one in shard order must be indistinguishable
   from having recorded every event directly, no matter how the events
   were batched across shards. With fewer observations than the reservoir
   size the merge replays every sample in order, so counters AND every
   summary field (moments and percentiles) must match bitwise. *)
let test_metrics_merge_batching_invariant =
  let shard_gen =
    QCheck.Gen.(
      list_size (int_range 1 5)
        (pair
           (list_size (int_range 0 20) (float_bound_exclusive 100.0))
           (int_range 0 10)))
  in
  QCheck.Test.make ~count:100
    ~name:"merge_into in shard order == direct observation"
    (QCheck.make shard_gen) (fun shards ->
      let direct = Metrics.create () in
      List.iter
        (fun (obs, c) ->
          List.iter (fun v -> Metrics.observe direct "h" v) obs;
          Metrics.incr direct "c" ~by:c)
        shards;
      let merged = Metrics.create () in
      List.iter
        (fun (obs, c) ->
          let shard = Metrics.create () in
          List.iter (fun v -> Metrics.observe shard "h" v) obs;
          Metrics.incr shard "c" ~by:c;
          Metrics.merge_into ~dst:merged shard)
        shards;
      Metrics.counter merged "c" = Metrics.counter direct "c"
      && Metrics.counters merged = Metrics.counters direct
      &&
      match (Metrics.summary merged "h", Metrics.summary direct "h") with
      | None, None -> true
      | Some m, Some d ->
        m.Metrics.count = d.Metrics.count
        && Float.equal m.Metrics.sum d.Metrics.sum
        && Float.equal m.Metrics.mean d.Metrics.mean
        && Float.equal m.Metrics.min d.Metrics.min
        && Float.equal m.Metrics.max d.Metrics.max
        && Float.equal m.Metrics.p50 d.Metrics.p50
        && Float.equal m.Metrics.p90 d.Metrics.p90
        && Float.equal m.Metrics.p99 d.Metrics.p99
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.create ~title:"T" ~header:[ "name"; "value" ] () in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "beta"; "23" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* all lines equally wide *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "" && l <> "T")
    |> List.map String.length
  in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_width_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "row width checked"
    (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Table.add_row t [ "only one" ])

(* ------------------------------------------------------------------ *)
(* Ascii_plot                                                           *)
(* ------------------------------------------------------------------ *)

module Plot = Sp_util.Ascii_plot

let test_plot_renders () =
  let s1 =
    Plot.series ~label:"a" ~glyph:'a'
      [ (0.0, 0.0); (1.0, 10.0); (2.0, 20.0) ]
  in
  let s2 =
    Plot.series ~label:"b" ~glyph:'b'
      ~band:[ (0.0, 0.0, 5.0); (1.0, 5.0, 15.0) ]
      [ (0.0, 2.0); (1.0, 12.0) ]
  in
  let out = Plot.render ~title:"plot" ~x_label:"x" ~y_label:"y" [ s1; s2 ] in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  Alcotest.(check bool) "glyph a plotted" true (String.contains out 'a');
  Alcotest.(check bool) "glyph b plotted" true (String.contains out 'b');
  Alcotest.(check bool) "band shading present" true (String.contains out '.');
  Alcotest.(check bool) "legend present" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> l = "  a = a" || l = "  b = b (band: min..max shown as '.')") lines)

let utf8_length s =
  (* glyph count, not byte count: sparkline cells are multi-byte blocks *)
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let test_sparkline_edge_cases () =
  Alcotest.(check string) "empty input" "" (Plot.sparkline [||]);
  Alcotest.(check string) "all non-finite is empty" ""
    (Plot.sparkline [| Float.nan; Float.infinity; Float.neg_infinity |]);
  (* Constant series: a flat mid-height bar, one cell per value. *)
  let flat = Plot.sparkline ~ascii:true [| 5.0; 5.0; 5.0 |] in
  Alcotest.(check string) "constant is a flat mid bar" "===" flat;
  (* NaN values are dropped, not plotted as cells. *)
  Alcotest.(check string) "nan filtered"
    (Plot.sparkline ~ascii:true [| 1.0; 3.0 |])
    (Plot.sparkline ~ascii:true [| 1.0; Float.nan; 3.0 |]);
  (* Monotone ramp hits the extreme glyphs at both ends. *)
  let ramp = Plot.sparkline ~ascii:true [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 |] in
  Alcotest.(check char) "ramp starts at min glyph" '.' ramp.[0];
  Alcotest.(check char) "ramp ends at max glyph" '@' ramp.[String.length ramp - 1]

let test_sparkline_resample () =
  let long = Array.init 1000 (fun i -> float_of_int i) in
  Alcotest.(check int) "default width caps cells" 64
    (utf8_length (Plot.sparkline long));
  Alcotest.(check int) "custom width respected" 8
    (String.length (Plot.sparkline ~ascii:true ~max_width:8 long));
  Alcotest.(check int) "short series keeps one cell per value" 3
    (utf8_length (Plot.sparkline [| 1.0; 2.0; 3.0 |]));
  (* Bucket-mean resampling preserves monotone shape end to end. *)
  let s = Plot.sparkline ~ascii:true ~max_width:8 long in
  Alcotest.(check char) "resampled min end" '.' s.[0];
  Alcotest.(check char) "resampled max end" '@' s.[String.length s - 1]

let test_plot_degenerate () =
  (* single point, flat series: must not crash or divide by zero *)
  let s = Plot.series ~label:"p" ~glyph:'p' [ (1.0, 5.0) ] in
  Alcotest.(check bool) "renders" true
    (String.length (Plot.render ~title:"t" [ s ]) > 0);
  Alcotest.(check bool) "empty series renders" true
    (String.length (Plot.render ~title:"t" [ Plot.series ~label:"e" ~glyph:'e' [] ]) > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split_named stability" `Quick test_rng_split_named_stable;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "weighted ignores non-finite weights" `Quick
            test_weighted_non_finite;
          Alcotest.test_case "int rejection sampling" `Quick
            test_rng_int_rejection_exact;
          Alcotest.test_case "state round-trip" `Quick test_rng_state_roundtrip;
        ] );
      qsuite "rng-props" [ test_sample_distinct; test_shuffle_permutation ];
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "min_max" `Quick test_stats_minmax;
        ] );
      qsuite "stats-props" [ test_percentile_monotone ];
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "copy isolation" `Quick test_bitset_copy_isolated;
        ] );
      qsuite "bitset-props"
        [
          test_bitset_union_model;
          test_bitset_diff_inter_model;
          test_bitset_subset;
          test_bitset_model_ops;
        ];
      ( "stampset",
        [
          Alcotest.test_case "basics" `Quick test_stampset_basics;
          Alcotest.test_case "stamp clear" `Quick test_stampset_clear;
        ] );
      qsuite "stampset-props" [ test_stampset_model_ops; test_stampset_to_bitset ];
      ( "fqueue",
        [
          Alcotest.test_case "fifo order" `Quick test_fqueue_fifo;
          Alcotest.test_case "partition" `Quick test_fqueue_partition;
        ] );
      qsuite "fqueue-props" [ test_fqueue_model; test_fqueue_model_ops ];
      ( "lru",
        [
          Alcotest.test_case "bounded" `Quick test_lru_bounded;
          Alcotest.test_case "recency order" `Quick test_lru_recency;
          Alcotest.test_case "ttl expiry" `Quick test_lru_ttl;
          Alcotest.test_case "to_list order and replay" `Quick
            test_lru_to_list;
          Alcotest.test_case "validation" `Quick test_lru_validation;
        ] );
      qsuite "lru-props" [ test_lru_model; test_lru_model_ops ];
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histogram summary" `Quick test_metrics_histogram;
          Alcotest.test_case "reservoir bounded" `Quick test_metrics_reservoir_bounded;
          Alcotest.test_case "time and render" `Quick test_metrics_time_and_render;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
        ] );
      qsuite "metrics-props" [ test_metrics_merge_batching_invariant ];
      ( "table",
        [
          Alcotest.test_case "renders aligned" `Quick test_table_renders;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        ] );
      ( "plot",
        [
          Alcotest.test_case "renders series, bands, legend" `Quick test_plot_renders;
          Alcotest.test_case "sparkline edge cases" `Quick test_sparkline_edge_cases;
          Alcotest.test_case "sparkline resampling" `Quick test_sparkline_resample;
          Alcotest.test_case "degenerate input" `Quick test_plot_degenerate;
        ] );
    ]
