(* Tests for the parallel execution layer: the Sp_util.Pool worker pool
   and its bounded channel, the deterministic sharded campaign executor,
   and the barrier-batched inference funnel. The determinism properties
   here are the contract the whole design hangs on: identical (seed,
   jobs) must give identical reports, regardless of domain scheduling. *)

module Rng = Sp_util.Rng
module Pool = Sp_util.Pool
module Metrics = Sp_util.Metrics
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Vm = Sp_fuzz.Vm
module Strategy = Sp_fuzz.Strategy
module Campaign = Sp_fuzz.Campaign
module Triage = Sp_fuzz.Triage

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_tasks () =
  Pool.with_pool ~workers:3 (fun pool ->
      let results =
        Pool.run_all pool (List.init 20 (fun i () -> i * i))
      in
      let values = List.map (function Ok v -> v | Error e -> raise e) results in
      check (Alcotest.list Alcotest.int) "results in submission order"
        (List.init 20 (fun i -> i * i))
        values;
      Alcotest.(check bool) "tasks counted" true
        (Metrics.counter (Pool.metrics pool) "pool.tasks" >= 20))

exception Boom of int

let test_pool_survives_raising_task () =
  Pool.with_pool ~workers:2 (fun pool ->
      let results =
        Pool.run_all pool
          (List.init 10 (fun i () -> if i = 3 then raise (Boom i) else i))
      in
      (* the failing task reports its exception... *)
      (match List.nth results 3 with
      | Error (Boom 3) -> ()
      | Error e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | Ok _ -> Alcotest.fail "task 3 should have failed");
      (* ...and every other task still ran to completion. *)
      List.iteri
        (fun i r ->
          if i <> 3 then
            match r with
            | Ok v -> check Alcotest.int "succeeded" i v
            | Error e -> Alcotest.failf "task %d died: %s" i (Printexc.to_string e))
        results;
      (* the pool is still usable afterwards *)
      match Pool.run_all pool [ (fun () -> 41 + 1) ] with
      | [ Ok 42 ] -> ()
      | _ -> Alcotest.fail "pool unusable after a task raised")

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~workers:1 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit refused"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

let test_pool_concurrent_shutdown () =
  (* Two domains racing shutdown on one pool: the second caller must
     block until the drain completes and then return — not deadlock, not
     double-join the worker domains. *)
  for _ = 1 to 20 do
    let pool = Pool.create ~workers:2 () in
    let handles = List.init 8 (fun i -> Pool.submit pool (fun () -> i)) in
    let other = Domain.spawn (fun () -> Pool.shutdown pool) in
    Pool.shutdown pool;
    Domain.join other;
    (* Tasks submitted before shutdown were drained, not dropped. *)
    List.iteri
      (fun i h ->
        match Pool.await h with
        | Ok v -> check Alcotest.int "drained task" i v
        | Error e -> Alcotest.failf "task %d died: %s" i (Printexc.to_string e))
      handles;
    check Alcotest.int "nothing in flight after shutdown" 0
      (Pool.in_flight pool);
    Alcotest.check_raises "submit refused after racing shutdowns"
      (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
        ignore (Pool.submit pool (fun () -> ())))
  done

let test_pool_shutdown_races_submitters () =
  (* Submitter domains hammer the pool while the main domain shuts it
     down: every submit either lands (and its handle resolves) or raises
     the documented Invalid_argument — never a hang, never a third
     outcome. *)
  for _ = 1 to 10 do
    let pool = Pool.create ~workers:2 () in
    let submitter =
      Domain.spawn (fun () ->
          let landed = ref 0 in
          (try
             for i = 0 to 199 do
               let h = Pool.submit pool (fun () -> i) in
               match Pool.await h with
               | Ok v when v = i -> incr landed
               | Ok v -> Alcotest.failf "task %d returned %d" i v
               | Error e -> raise e
             done
           with Invalid_argument msg ->
             check Alcotest.string "documented refusal"
               "Pool.submit: pool is shut down" msg);
          !landed)
    in
    Pool.shutdown pool;
    let landed = Domain.join submitter in
    Alcotest.(check bool) "submitter observed a clean cutoff" true
      (landed >= 0 && landed <= 200)
  done

let test_pool_many_rounds () =
  (* Several barrier rounds through one pool: per-worker queues must not
     leak state between rounds. *)
  Pool.with_pool ~workers:4 (fun pool ->
      for round = 1 to 5 do
        let results = Pool.run_all pool (List.init 8 (fun i () -> round * i)) in
        List.iteri
          (fun i r -> check Alcotest.int "value" (round * i)
              (match r with Ok v -> v | Error e -> raise e))
          results
      done)

(* ------------------------------------------------------------------ *)
(* Chan                                                                 *)
(* ------------------------------------------------------------------ *)

let test_chan_fifo () =
  let c = Pool.Chan.create ~capacity:8 () in
  List.iter (Pool.Chan.send c) [ 1; 2; 3 ];
  check Alcotest.int "length" 3 (Pool.Chan.length c);
  check (Alcotest.option Alcotest.int) "fifo 1" (Some 1) (Pool.Chan.recv c);
  check (Alcotest.option Alcotest.int) "fifo 2" (Some 2) (Pool.Chan.try_recv c);
  Pool.Chan.close c;
  check (Alcotest.option Alcotest.int) "drains after close" (Some 3)
    (Pool.Chan.recv c);
  check (Alcotest.option Alcotest.int) "closed and empty" None (Pool.Chan.recv c);
  Alcotest.check_raises "send to closed raises" Pool.Chan.Closed (fun () ->
      Pool.Chan.send c 9)

let test_chan_capacity () =
  let c = Pool.Chan.create ~capacity:2 () in
  Alcotest.(check bool) "accepts under capacity" true (Pool.Chan.try_send c 1);
  Alcotest.(check bool) "accepts at capacity" true (Pool.Chan.try_send c 2);
  Alcotest.(check bool) "refuses over capacity" false (Pool.Chan.try_send c 3);
  check (Alcotest.option Alcotest.int) "pop" (Some 1) (Pool.Chan.try_recv c);
  Alcotest.(check bool) "accepts again" true (Pool.Chan.try_send c 3)

let test_chan_cross_domain () =
  (* A producer domain streams into a small channel while this domain
     consumes: blocking send/recv must hand all items over, in order. *)
  let c = Pool.Chan.create ~capacity:4 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 100 do
          Pool.Chan.send c i
        done;
        Pool.Chan.close c)
  in
  let received = ref [] in
  let rec drain () =
    match Pool.Chan.recv c with
    | Some v ->
      received := v :: !received;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  check (Alcotest.list Alcotest.int) "all items, in order"
    (List.init 100 (fun i -> i + 1))
    (List.rev !received)

(* ------------------------------------------------------------------ *)
(* Parallel campaign                                                    *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

let seeds = Gen.corpus (Rng.create 42) db ~size:30

let short_cfg =
  { Campaign.default_config with
    seed_corpus = seeds; seed = 7; duration = 900.0; snapshot_every = 300.0 }

let run_par ?(cfg = short_cfg) jobs =
  Campaign.run_parallel ~jobs
    ~vm_for:(fun s -> Vm.create ~seed:(100 + s) kernel)
    ~strategy_for:(fun _ -> Strategy.syzkaller db)
    cfg

let snapshot_tuple (s : Campaign.snapshot) =
  (s.Campaign.s_time, s.Campaign.s_blocks, s.Campaign.s_edges,
   s.Campaign.s_crashes, s.Campaign.s_execs)

(* Everything deterministic in a report (the metrics registry also carries
   wall-clock pool timings, so it is deliberately excluded). *)
let report_fingerprint (r : Campaign.report) =
  ( List.map snapshot_tuple r.Campaign.series,
    (r.Campaign.final_blocks, r.Campaign.final_edges, r.Campaign.executions,
     r.Campaign.corpus_size, r.Campaign.target_hit_at),
    List.map (fun (f : Triage.found) -> (f.Triage.description, f.Triage.found_at))
      r.Campaign.crashes,
    r.Campaign.origin_stats )

let test_parallel_reproducible () =
  let a = run_par 3 and b = run_par 3 in
  Alcotest.(check bool) "identical reports for identical (seed, jobs)" true
    (report_fingerprint a = report_fingerprint b);
  Alcotest.(check bool) "did real work" true (a.Campaign.executions > 0);
  Alcotest.(check bool) "found coverage" true (a.Campaign.final_edges > 0)

let test_parallel_jobs1_matches_sequential () =
  let vm = Vm.create ~seed:100 kernel in
  let seq = Campaign.run vm (Strategy.syzkaller db) short_cfg in
  let par = run_par 1 in
  Alcotest.(check bool) "jobs=1 equals the sequential executor" true
    (report_fingerprint seq = report_fingerprint par)

let test_parallel_jobs_change_results_deterministically () =
  (* Different shard counts give different (but each reproducible)
     schedules; and more workers must not lose the ability to fuzz. *)
  let two = run_par 2 and four = run_par 4 in
  Alcotest.(check bool) "4 shards executed at least as much" true
    (four.Campaign.executions > two.Campaign.executions / 2);
  Alcotest.(check bool) "coverage found at both widths" true
    (two.Campaign.final_edges > 0 && four.Campaign.final_edges > 0);
  let four' = run_par 4 in
  Alcotest.(check bool) "jobs=4 reproducible too" true
    (report_fingerprint four = report_fingerprint four')

let test_parallel_series_shape () =
  let r = run_par 3 in
  let times = List.map (fun (s : Campaign.snapshot) -> s.Campaign.s_time) r.Campaign.series in
  check (Alcotest.list (Alcotest.float 1e-6)) "full snapshot grid"
    [ 300.0; 600.0; 900.0 ] times;
  (* executions accumulate monotonically across barriers *)
  let execs = List.map (fun (s : Campaign.snapshot) -> s.Campaign.s_execs) r.Campaign.series in
  Alcotest.(check bool) "monotone executions" true
    (List.sort compare execs = execs);
  Alcotest.(check bool) "pool metrics merged into the report" true
    (Metrics.counter r.Campaign.metrics "pool.tasks" > 0)

let test_parallel_validation () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Campaign.run_parallel: jobs must be >= 1") (fun () ->
      ignore (run_par 0))

let test_parallel_telemetry_deterministic () =
  (* The timeseries is inside the determinism contract (sampled from
     merged state on the snapshot grid): two runs at the same (seed, jobs)
     must serialize to the same bytes. Traces carry wall clock and are
     only required to be structurally valid. *)
  let run () =
    let trace = Sp_obs.Trace.create ~enabled:true () in
    let ts = Sp_obs.Timeseries.create () in
    let r =
      Campaign.run_parallel ~jobs:3 ~trace ~timeseries:ts
        ~vm_for:(fun s -> Vm.create ~seed:(100 + s) kernel)
        ~strategy_for:(fun _ -> Strategy.syzkaller db)
        short_cfg
    in
    (r, trace, Sp_obs.Timeseries.to_jsonl ts)
  in
  let r1, trace, jsonl1 = run () in
  let r2, _, jsonl2 = run () in
  Alcotest.(check bool) "telemetry does not perturb the campaign" true
    (report_fingerprint r1 = report_fingerprint r2);
  Alcotest.(check string) "timeseries bit-for-bit reproducible" jsonl1 jsonl2;
  (match Sp_obs.Timeseries.of_jsonl jsonl1 with
  | Ok ts ->
    check (Alcotest.list Alcotest.string) "expected columns"
      [ "blocks"; "edges"; "execs"; "execs_per_s"; "corpus"; "crashes" ]
      (Sp_obs.Timeseries.columns ts);
    Alcotest.(check int) "one row per snapshot" 3 (Sp_obs.Timeseries.length ts)
  | Error e -> Alcotest.fail e);
  match Sp_obs.Trace_check.validate (Sp_obs.Trace.export trace) with
  | Error e -> Alcotest.failf "trace fails validation: %s" e
  | Ok s ->
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " span present") true
          (Sp_obs.Trace_check.has_span s name))
      [ "shard.epoch"; "campaign.barrier"; "campaign.merge"; "pool.task" ];
    Alcotest.(check bool) "edges counter present" true
      (Sp_obs.Trace_check.has_counter s "edges")

(* ------------------------------------------------------------------ *)
(* Funnel                                                               *)
(* ------------------------------------------------------------------ *)

(* A real (untrained) PMM behind the real service: creation is cheap, and
   prediction content is irrelevant here — the funnel contract under test
   is deferral, shard-ordered batched forwarding, and broadcast. *)
let inference () =
  let encoder =
    Snowplow.Encoder.pretrain
      ~config:{ Snowplow.Encoder.default_config with steps = 40 }
      kernel
  in
  let model =
    Snowplow.Pmm.create
      ~encoder_dim:(Snowplow.Encoder.dim encoder)
      ~num_syscalls:(Sp_syzlang.Spec.count db) ()
  in
  Snowplow.Inference.create ~kernel
    ~block_embs:(Snowplow.Encoder.embed_kernel encoder kernel)
    model

let test_funnel_defers_and_broadcasts () =
  let service = inference () in
  let funnel = Snowplow.Funnel.create ~shards:2 service in
  let ep0 = Snowplow.Funnel.endpoint funnel ~shard:0 in
  let ep1 = Snowplow.Funnel.endpoint funnel ~shard:1 in
  let prog s = Gen.program (Rng.create s) db () in
  Alcotest.(check bool) "shard 0 request accepted" true
    (ep0.Snowplow.Inference.ep_request ~now:0.0 (prog 1) ~targets:[ 0 ]);
  Alcotest.(check bool) "shard 1 request accepted" true
    (ep1.Snowplow.Inference.ep_request ~now:0.0 (prog 2) ~targets:[ 0 ]);
  (* Nothing reaches the service until the barrier flush. *)
  check Alcotest.int "service idle before flush" 0
    (Snowplow.Inference.served service + Snowplow.Inference.pending service);
  check Alcotest.int "nothing delivered mid-epoch" 0
    (List.length (ep0.Snowplow.Inference.ep_poll ~now:0.0));
  check Alcotest.int "deferred counted" 2
    (Snowplow.Funnel.requests_deferred funnel);
  (* Barrier 1: forward both; they complete after the service latency. *)
  ignore (Snowplow.Funnel.flush funnel ~now:100.0);
  check Alcotest.int "batch admitted" 2 (Snowplow.Inference.pending service);
  let delivered = Snowplow.Funnel.flush funnel ~now:200.0 in
  check Alcotest.int "both predictions completed" 2 delivered;
  let inbox0 = ep0.Snowplow.Inference.ep_poll ~now:200.0 in
  let inbox1 = ep1.Snowplow.Inference.ep_poll ~now:200.0 in
  check Alcotest.int "broadcast to shard 0" 2 (List.length inbox0);
  check Alcotest.int "broadcast to shard 1" 2 (List.length inbox1);
  Alcotest.(check bool) "same predictions, same order" true
    (List.map fst inbox0 = List.map fst inbox1);
  check Alcotest.int "inbox drained by poll" 0
    (List.length (ep0.Snowplow.Inference.ep_poll ~now:200.0));
  check Alcotest.int "one batch recorded" 1
    (Metrics.counter (Snowplow.Inference.metrics service) "inference.batches")

let test_funnel_tenant_lanes () =
  (* Two tenants over one service: a tenant's flush must deliver only
     its own completions — the other tenant's stay queued for its own
     barrier, so neither's prediction stream depends on the schedule. *)
  let service = inference () in
  let funnel =
    Snowplow.Funnel.create_multi ~tenant_shards:[| 2; 1 |] service
  in
  let ep00 = Snowplow.Funnel.endpoint_for funnel ~tenant:0 ~shard:0 in
  let ep10 = Snowplow.Funnel.endpoint_for funnel ~tenant:1 ~shard:0 in
  let prog s = Gen.program (Rng.create s) db () in
  Alcotest.(check bool) "tenant 0 request accepted" true
    (ep00.Snowplow.Inference.ep_request ~now:0.0 (prog 1) ~targets:[ 0 ]);
  Alcotest.(check bool) "tenant 1 request accepted" true
    (ep10.Snowplow.Inference.ep_request ~now:0.0 (prog 2) ~targets:[ 0 ]);
  check Alcotest.int "per-tenant deferral counted" 1
    (Snowplow.Funnel.tenant_deferred funnel ~tenant:0);
  (* Forward both tenants' batches, then let both complete. *)
  ignore (Snowplow.Funnel.flush_tenant funnel ~tenant:0 ~now:100.0);
  ignore (Snowplow.Funnel.flush_tenant funnel ~tenant:1 ~now:100.0);
  check Alcotest.int "tenant 0 receives only its prediction" 1
    (Snowplow.Funnel.flush_tenant funnel ~tenant:0 ~now:200.0);
  check Alcotest.int "tenant 0's inbox has only its prediction" 1
    (List.length (ep00.Snowplow.Inference.ep_poll ~now:200.0));
  (* Tenant 1's completion was not stolen by tenant 0's poll. *)
  check Alcotest.int "tenant 1's prediction still delivered" 1
    (Snowplow.Funnel.flush_tenant funnel ~tenant:1 ~now:200.0);
  let inbox1 = ep10.Snowplow.Inference.ep_poll ~now:200.0 in
  check Alcotest.int "tenant 1's inbox" 1 (List.length inbox1);
  Alcotest.(check bool) "tenant 1 got its own program back" true
    (List.map fst inbox1 = [ prog 2 ]);
  (* Per-tag service accounting sums to the service-wide counters. *)
  let r0, s0, _, _ = Snowplow.Inference.tenant_stats service ~tag:0 in
  let r1, s1, _, _ = Snowplow.Inference.tenant_stats service ~tag:1 in
  check Alcotest.int "tagged requests sum" 2 (r0 + r1);
  check Alcotest.int "tagged served sum"
    (Snowplow.Inference.served service)
    (s0 + s1)

let test_funnel_outbox_bound () =
  let service = inference () in
  let funnel = Snowplow.Funnel.create ~max_outbox:2 ~shards:1 service in
  let ep = Snowplow.Funnel.endpoint funnel ~shard:0 in
  let prog s = Gen.program (Rng.create s) db () in
  Alcotest.(check bool) "1st accepted" true
    (ep.Snowplow.Inference.ep_request ~now:0.0 (prog 1) ~targets:[ 0 ]);
  Alcotest.(check bool) "2nd accepted" true
    (ep.Snowplow.Inference.ep_request ~now:0.0 (prog 2) ~targets:[ 0 ]);
  Alcotest.(check bool) "3rd refused (outbox full)" false
    (ep.Snowplow.Inference.ep_request ~now:0.0 (prog 3) ~targets:[ 0 ]);
  check Alcotest.int "drop counted" 1 (Snowplow.Funnel.dropped funnel)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sp_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "runs tasks, ordered results" `Quick test_pool_runs_tasks;
          Alcotest.test_case "survives a raising task" `Quick
            test_pool_survives_raising_task;
          Alcotest.test_case "submit after shutdown" `Quick
            test_pool_submit_after_shutdown;
          Alcotest.test_case "concurrent double shutdown" `Quick
            test_pool_concurrent_shutdown;
          Alcotest.test_case "shutdown races submitters" `Quick
            test_pool_shutdown_races_submitters;
          Alcotest.test_case "many barrier rounds" `Quick test_pool_many_rounds;
        ] );
      ( "chan",
        [
          Alcotest.test_case "fifo and close" `Quick test_chan_fifo;
          Alcotest.test_case "capacity bound" `Quick test_chan_capacity;
          Alcotest.test_case "cross-domain streaming" `Quick test_chan_cross_domain;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "same (seed, jobs) => identical report" `Quick
            test_parallel_reproducible;
          Alcotest.test_case "jobs=1 matches sequential" `Quick
            test_parallel_jobs1_matches_sequential;
          Alcotest.test_case "width scaling stays deterministic" `Quick
            test_parallel_jobs_change_results_deterministically;
          Alcotest.test_case "series shape and pool metrics" `Quick
            test_parallel_series_shape;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
          Alcotest.test_case "telemetry determinism" `Quick
            test_parallel_telemetry_deterministic;
        ] );
      ( "funnel",
        [
          Alcotest.test_case "defers, batches, broadcasts" `Quick
            test_funnel_defers_and_broadcasts;
          Alcotest.test_case "tenant lanes stay isolated" `Quick
            test_funnel_tenant_lanes;
          Alcotest.test_case "outbox bound" `Quick test_funnel_outbox_bound;
        ] );
    ]
