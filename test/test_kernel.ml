(* Tests for sp_kernel: generation determinism, structure invariants, the
   interpreter, bugs and noise, plus sp_coverage helpers. *)

module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Cfg = Sp_cfg.Cfg
module Kernel = Sp_kernel.Kernel
module Ir = Sp_kernel.Ir
module Bug = Sp_kernel.Bug
module Build = Sp_kernel.Build
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen

(* A small kernel keeps the tests fast. *)
let small_config =
  { Build.default_config with num_syscalls = 16; handler_budget = 120; max_depth = 8 }

let kernel = Kernel.generate small_config

let db = Kernel.spec_db kernel

let corpus seed n = Gen.corpus (Rng.create seed) db ~size:n

(* ------------------------------------------------------------------ *)
(* Generation                                                           *)
(* ------------------------------------------------------------------ *)

let test_deterministic_generation () =
  let k2 = Kernel.generate small_config in
  Alcotest.(check int) "same block count" (Kernel.num_blocks kernel) (Kernel.num_blocks k2);
  for b = 0 to Kernel.num_blocks kernel - 1 do
    let b1 = Kernel.block kernel b and b2 = Kernel.block k2 b in
    if b1.Ir.term <> b2.Ir.term then Alcotest.fail "terminators differ"
  done

let test_structure () =
  Alcotest.(check bool) "has blocks" true (Kernel.num_blocks kernel > 500);
  (* every handler entry reaches its exit *)
  for sys = 0 to Sp_syzlang.Spec.count db - 1 do
    let entry = Kernel.handler_entry kernel sys in
    let exit_b = Kernel.handler_exit kernel sys in
    Alcotest.(check bool) "exit reachable from entry" true
      (Bitset.mem (Cfg.reachable (Kernel.cfg kernel) entry) exit_b)
  done

let test_block_sys_ids () =
  for b = 0 to Kernel.num_blocks kernel - 1 do
    let blk = Kernel.block kernel b in
    if blk.Ir.sys_id >= Sp_syzlang.Spec.count db then
      Alcotest.fail "block with out-of-range sys id"
  done

let test_cfg_matches_terminators () =
  for b = 0 to Kernel.num_blocks kernel - 1 do
    let succs = List.sort compare (Cfg.succs (Kernel.cfg kernel) b) in
    let expected =
      List.sort_uniq compare (Ir.successors (Kernel.block kernel b).Ir.term)
    in
    if succs <> expected then Alcotest.fail "cfg out of sync with terminators"
  done

let test_bugs_reachable () =
  (* every injected bug's crash block is statically reachable from its
     handler's entry *)
  Array.iter
    (fun (bug : Bug.t) ->
      let crash_block = ref None in
      for b = 0 to Kernel.num_blocks kernel - 1 do
        match (Kernel.block kernel b).Ir.term with
        | Ir.Crash id when id = bug.Bug.id -> crash_block := Some b
        | _ -> ()
      done;
      match !crash_block with
      | None -> Alcotest.fail "bug without crash block"
      | Some cb ->
        let sys = (Kernel.block kernel cb).Ir.sys_id in
        let entry = Kernel.handler_entry kernel sys in
        Alcotest.(check bool) "crash block reachable" true
          (Bitset.mem (Cfg.reachable (Kernel.cfg kernel) entry) cb))
    (Kernel.bugs kernel)

let test_version_evolution () =
  let base = Kernel.linux_like ~seed:3 ~version:"6.8" in
  let next = Kernel.linux_like ~seed:3 ~version:"6.9" in
  Alcotest.(check bool) "later version grew" true
    (Kernel.num_blocks next > Kernel.num_blocks base);
  (* the syscall interface is shared *)
  Alcotest.(check int) "same interface"
    (Sp_syzlang.Spec.count (Kernel.spec_db base))
    (Sp_syzlang.Spec.count (Kernel.spec_db next));
  (* known bugs are shared, new bugs are version-specific *)
  let known k =
    Array.to_list (Kernel.bugs k)
    |> List.filter (fun (b : Bug.t) -> b.Bug.known)
    |> List.map Bug.description
  in
  Alcotest.(check (list string)) "known bug list shared" (known base) (known next)

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let prop_execute_deterministic =
  QCheck.Test.make ~count:60 ~name:"execution is deterministic"
    QCheck.(int_bound 100000)
    (fun seed ->
      let p = Gen.program (Rng.create seed) db () in
      let r1 = Kernel.execute kernel p and r2 = Kernel.execute kernel p in
      Bitset.equal r1.Kernel.covered r2.Kernel.covered
      && Bitset.equal r1.Kernel.covered_edges r2.Kernel.covered_edges
      && r1.Kernel.crash = r2.Kernel.crash)

let prop_traces_consistent =
  QCheck.Test.make ~count:60 ~name:"trace blocks are exactly the covered set"
    QCheck.(int_bound 100000)
    (fun seed ->
      let p = Gen.program (Rng.create seed) db () in
      let r = Kernel.execute kernel p in
      let from_traces = Bitset.create (Kernel.num_blocks kernel) in
      List.iter
        (fun (tr : Kernel.call_trace) ->
          List.iter (Bitset.add from_traces) tr.Kernel.visited)
        r.Kernel.traces;
      Bitset.equal from_traces r.Kernel.covered)

let prop_trace_follows_cfg =
  QCheck.Test.make ~count:60 ~name:"consecutive trace blocks are static edges"
    QCheck.(int_bound 100000)
    (fun seed ->
      let p = Gen.program (Rng.create seed) db () in
      let r = Kernel.execute kernel p in
      List.for_all
        (fun (tr : Kernel.call_trace) ->
          let rec ok = function
            | [] | [ _ ] -> true
            | a :: (b :: _ as rest) ->
              Cfg.mem_edge (Kernel.cfg kernel) (a, b) && ok rest
          in
          ok tr.Kernel.visited)
        r.Kernel.traces)

let prop_crash_stops_execution =
  QCheck.Test.make ~count:200 ~name:"a crash aborts the remaining calls"
    QCheck.(int_bound 100000)
    (fun seed ->
      let p = Gen.program (Rng.create seed) db () in
      let r = Kernel.execute kernel p in
      match r.Kernel.crash with
      | None -> List.length r.Kernel.traces = Array.length p
      | Some c ->
        List.length r.Kernel.traces = c.Kernel.crash_call + 1)

let test_entry_and_exit_in_trace () =
  let p = corpus 4 1 |> List.hd in
  let r = Kernel.execute kernel p in
  List.iter
    (fun (tr : Kernel.call_trace) ->
      let sys = p.(tr.Kernel.call_idx).Prog.spec.Sp_syzlang.Spec.sys_id in
      Alcotest.(check bool) "starts at handler entry" true
        (List.hd tr.Kernel.visited = Kernel.handler_entry kernel sys))
    r.Kernel.traces

let test_noise_pollutes () =
  let p = corpus 8 1 |> List.hd in
  let clean = Kernel.execute kernel p in
  let rng = Rng.create 1 in
  let differs = ref false in
  for _ = 1 to 20 do
    let noisy = Kernel.execute ~noise:(rng, 0.8) kernel p in
    if not (Bitset.equal clean.Kernel.covered noisy.Kernel.covered) then differs := true
  done;
  Alcotest.(check bool) "noise changes coverage" true !differs

let test_resource_dependency () =
  (* Cross-call dependency: a consumer's coverage can depend on the
     producer's arguments (the paper's implicit control dependencies). At
     least one producer argument mutation must change some consumer's
     coverage across a corpus of tests. *)
  let rng = Rng.create 12 in
  let found = ref false in
  List.iter
    (fun p ->
      if not !found then begin
        let r = Kernel.execute kernel p in
        if r.Kernel.crash = None then
          List.iter
            (fun ((path : Prog.path), ty) ->
              match ty with
              | Sp_syzlang.Ty.Flags _ when p.(path.Prog.call).Prog.spec.Sp_syzlang.Spec.ret <> None ->
                for _ = 1 to 8 do
                  let v = Sp_syzlang.Value.random rng ty in
                  let p' = Prog.set p path v in
                  let r' = Kernel.execute kernel p' in
                  if r'.Kernel.crash = None
                     && not (Bitset.equal r.Kernel.covered r'.Kernel.covered)
                  then found := true
                done
              | _ -> ())
            (Prog.mutable_nodes p)
      end)
    (corpus 77 40);
  Alcotest.(check bool) "producer args influence coverage" true !found

(* ------------------------------------------------------------------ *)
(* Coverage helpers (sp_coverage)                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_edge_pairs () =
  let pairs = Sp_coverage.Trace.edge_pairs [ 1; 2; 3; 2; 3; 4 ] in
  Alcotest.(check (list (pair int int))) "unique directional pairs"
    [ (1, 2); (2, 3); (3, 2); (3, 4) ]
    pairs;
  Alcotest.(check (list int)) "unique blocks" [ 1; 2; 3; 4 ]
    (Sp_coverage.Trace.unique_blocks [ 1; 2; 3; 2; 3; 4 ])

(* Naive dedup implementations the stamped seen-set must agree with. *)
let naive_edge_pairs trace =
  let seen = Hashtbl.create 64 in
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | b1 :: (b2 :: _ as rest) ->
      if Hashtbl.mem seen (b1, b2) then go acc rest
      else begin
        Hashtbl.add seen (b1, b2) ();
        go ((b1, b2) :: acc) rest
      end
  in
  go [] trace

let naive_unique_blocks trace =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun b ->
      if Hashtbl.mem seen b then false
      else begin
        Hashtbl.add seen b ();
        true
      end)
    trace

(* Block ids up to 5000 on traces of up to 600 entries force the seen-set
   through several grow cycles; negative-free but otherwise arbitrary. *)
let trace_gen = QCheck.(list_of_size Gen.(int_range 0 600) (int_bound 5000))

let prop_edge_pairs_model =
  QCheck.Test.make ~count:200 ~name:"edge_pairs matches the naive Hashtbl dedup"
    trace_gen
    (fun trace -> Sp_coverage.Trace.edge_pairs trace = naive_edge_pairs trace)

let prop_unique_blocks_model =
  QCheck.Test.make ~count:200
    ~name:"unique_blocks matches the naive Hashtbl dedup" trace_gen
    (fun trace ->
      Sp_coverage.Trace.unique_blocks trace = naive_unique_blocks trace)

let prop_seen_reuse =
  QCheck.Test.make ~count:100
    ~name:"a reused seen-set gives the same answers as fresh ones"
    QCheck.(pair trace_gen trace_gen)
    (fun (t1, t2) ->
      let seen = Sp_coverage.Trace.create_seen () in
      (* interleave both entry kinds through one scratch, twice over *)
      Sp_coverage.Trace.edge_pairs ~seen t1 = naive_edge_pairs t1
      && Sp_coverage.Trace.unique_blocks ~seen t1 = naive_unique_blocks t1
      && Sp_coverage.Trace.edge_pairs ~seen t2 = naive_edge_pairs t2
      && Sp_coverage.Trace.unique_blocks ~seen t2 = naive_unique_blocks t2
      && Sp_coverage.Trace.edge_pairs ~seen t1 = naive_edge_pairs t1)

let test_accum () =
  let a = Sp_coverage.Accum.create ~num_blocks:10 ~num_edges:10 in
  let blocks = Bitset.of_list 10 [ 1; 2 ] and edges = Bitset.of_list 10 [ 0 ] in
  let d = Sp_coverage.Accum.add a ~blocks ~edges in
  Alcotest.(check int) "new blocks" 2 d.Sp_coverage.Accum.new_blocks;
  Alcotest.(check int) "new edges" 1 d.Sp_coverage.Accum.new_edges;
  let d2 = Sp_coverage.Accum.would_add a ~blocks ~edges in
  Alcotest.(check int) "nothing new" 0 d2.Sp_coverage.Accum.new_blocks;
  Alcotest.(check int) "totals" 2 (Sp_coverage.Accum.blocks_covered a)

let test_bug_categories () =
  Alcotest.(check int) "7 categories" 7 (List.length Bug.all_categories);
  Array.iter
    (fun (bug : Bug.t) ->
      Alcotest.(check bool) "description non-empty" true
        (String.length (Bug.description bug) > 0))
    (Kernel.bugs kernel)

(* ------------------------------------------------------------------ *)
(* Tokens, predicates, interface generation                             *)
(* ------------------------------------------------------------------ *)

module Token = Sp_kernel.Token

let test_tokens () =
  Alcotest.(check bool) "opcode ids distinct" true (Token.opcode "cmp" <> Token.opcode "je");
  Alcotest.(check int) "opsig in bucket range" (Token.opsig_bucket "open_flags")
    (Token.opsig "open_flags" - Token.opsig "" + Token.opsig_bucket "");
  Alcotest.(check bool) "opsig stable" true (Token.opsig "x" = Token.opsig "x");
  Alcotest.(check bool) "bucket bounded" true
    (Token.opsig_bucket "anything" < Token.num_opsig_buckets);
  Alcotest.(check bool) "const buckets distinguish small ints" true
    (Token.const_bucket 1 <> Token.const_bucket 2);
  Alcotest.(check string) "padding printable" "<pad>" (Token.to_string Token.padding);
  Alcotest.check_raises "unknown opcode"
    (Invalid_argument "Token.opcode: unknown mnemonic frobnicate") (fun () ->
      ignore (Token.opcode "frobnicate"))

let test_eval_cmp () =
  let open Sp_kernel.Ir in
  Alcotest.(check bool) "eq" true (eval_cmp Eq 3 3);
  Alcotest.(check bool) "ne" true (eval_cmp Ne 3 4);
  Alcotest.(check bool) "lt" true (eval_cmp Lt 3 4);
  Alcotest.(check bool) "gt" false (eval_cmp Gt 3 4);
  Alcotest.(check bool) "masked all bits" true (eval_cmp Masked 0b111 0b101);
  Alcotest.(check bool) "masked missing bit" false (eval_cmp Masked 0b010 0b101)

let test_specgen_deterministic () =
  let a = Sp_kernel.Specgen.generate (Rng.create 5) ~num_syscalls:20 in
  let b = Sp_kernel.Specgen.generate (Rng.create 5) ~num_syscalls:20 in
  List.iter2
    (fun (sa : Sp_syzlang.Spec.t) sb ->
      Alcotest.(check string) "same names" sa.Sp_syzlang.Spec.name sb.Sp_syzlang.Spec.name;
      Alcotest.(check int) "same arity"
        (List.length sa.Sp_syzlang.Spec.args)
        (List.length sb.Sp_syzlang.Spec.args))
    (Sp_syzlang.Spec.all a) (Sp_syzlang.Spec.all b)

let test_specgen_producers_complete () =
  (* every consumed resource kind has a producer in the same interface *)
  let db48 = Sp_kernel.Specgen.generate (Rng.create 5) ~num_syscalls:Sp_kernel.Specgen.catalog_size in
  List.iter
    (fun (spec : Sp_syzlang.Spec.t) ->
      List.iter
        (fun (f : Sp_syzlang.Ty.field) ->
          match f.fty with
          | Sp_syzlang.Ty.Resource kind ->
            Alcotest.(check bool)
              (Printf.sprintf "%s has a producer" kind)
              true
              (Sp_syzlang.Spec.producers_of db48 kind <> [])
          | _ -> ())
        spec.Sp_syzlang.Spec.args)
    (Sp_syzlang.Spec.all db48)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_kernel"
    [
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic_generation;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "block sys ids" `Quick test_block_sys_ids;
          Alcotest.test_case "cfg sync" `Quick test_cfg_matches_terminators;
          Alcotest.test_case "bugs reachable" `Quick test_bugs_reachable;
          Alcotest.test_case "version evolution" `Slow test_version_evolution;
          Alcotest.test_case "bug categories" `Quick test_bug_categories;
        ] );
      qsuite "execution-props"
        [
          prop_execute_deterministic;
          prop_traces_consistent;
          prop_trace_follows_cfg;
          prop_crash_stops_execution;
        ];
      ( "execution",
        [
          Alcotest.test_case "entry in trace" `Quick test_entry_and_exit_in_trace;
          Alcotest.test_case "noise pollutes" `Quick test_noise_pollutes;
          Alcotest.test_case "resource dependency" `Quick test_resource_dependency;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "edge pairs" `Quick test_trace_edge_pairs;
          Alcotest.test_case "accumulator" `Quick test_accum;
        ] );
      qsuite "trace-props"
        [ prop_edge_pairs_model; prop_unique_blocks_model; prop_seen_reuse ];
      ( "tokens+specgen",
        [
          Alcotest.test_case "tokens" `Quick test_tokens;
          Alcotest.test_case "eval_cmp" `Quick test_eval_cmp;
          Alcotest.test_case "specgen deterministic" `Quick test_specgen_deterministic;
          Alcotest.test_case "producers complete" `Quick test_specgen_producers_complete;
        ] );
    ]
