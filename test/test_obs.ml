(* Tests for sp_obs, the telemetry subsystem: the JSON emitter/parser
   (byte-exact string and float round-trips), the ring-buffer tracer and
   its Chrome trace_event export (always balanced, always monotone, even
   after ring eviction), the trace validator, and the time-series
   sampler's JSONL/CSV writers. *)

module Json = Sp_obs.Json
module Tracer = Sp_obs.Tracer
module Trace = Sp_obs.Trace
module Trace_check = Sp_obs.Trace_check
module Timeseries = Sp_obs.Timeseries

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "re-parse failed: %s (input %s)" e (Json.to_string v)

let test_json_basics () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "bool" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int-valued float" "42" (Json.to_string (Json.Num 42.0));
  check Alcotest.string "array" "[1,2]"
    (Json.to_string (Json.Arr [ Json.Num 1.0; Json.Num 2.0 ]));
  check Alcotest.string "object field order" {|{"b":1,"a":2}|}
    (Json.to_string (Json.Obj [ ("b", Json.Num 1.0); ("a", Json.Num 2.0) ]));
  Alcotest.(check bool) "structural round-trip" true
    (Json.equal
       (Json.Obj
          [ ("xs", Json.Arr [ Json.Null; Json.Bool false; Json.Str "hi" ]) ])
       (roundtrip
          (Json.Obj
             [ ("xs", Json.Arr [ Json.Null; Json.Bool false; Json.Str "hi" ]) ])))

let test_json_string_escaping () =
  (* Every byte value must survive a round-trip: control characters via
     \uXXXX, quote/backslash via their short escapes, the rest verbatim. *)
  let all_bytes = String.init 256 Char.chr in
  (match roundtrip (Json.Str all_bytes) with
  | Json.Str s -> check Alcotest.string "all 256 bytes round-trip" all_bytes s
  | _ -> Alcotest.fail "expected a string");
  let encoded = Json.to_string (Json.Str "a\n\t\"\\\x01b") in
  check Alcotest.string "escape forms" {|"a\n\t\"\\\u0001b"|} encoded;
  (* Non-ASCII (UTF-8) passes through verbatim... *)
  check Alcotest.string "utf-8 verbatim" "\"\xc3\xa9\""
    (Json.to_string (Json.Str "\xc3\xa9"));
  (* ...and \uXXXX escapes (incl. surrogate pairs) decode to UTF-8. *)
  (match Json.of_string {|"é 😀"|} with
  | Ok (Json.Str s) -> check Alcotest.string "unicode escapes" "\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e)

let test_json_float_exact () =
  List.iter
    (fun f ->
      match roundtrip (Json.Num f) with
      | Json.Num f' ->
        Alcotest.(check bool)
          (Printf.sprintf "%h round-trips exactly" f)
          true (Float.equal f f')
      | _ -> Alcotest.fail "expected a number")
    [ 0.0; -0.0; 1.0; -1.5; 0.1; 1e-300; 1.7976931348623157e308;
      4.9e-324; 3.141592653589793; 1234567890123456.0; 6.858333333333333 ];
  check Alcotest.string "integral without exponent" "1234567890123456"
    (Json.num_to_string 1234567890123456.0);
  check Alcotest.string "nan is null" "null" (Json.num_to_string Float.nan);
  check Alcotest.string "inf is null" "null" (Json.num_to_string Float.infinity)

let test_json_float_exact_prop =
  QCheck.Test.make ~count:500 ~name:"every finite float re-parses exactly"
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.of_string (Json.num_to_string f) with
      | Ok (Json.Num f') -> Float.equal f f'
      | _ -> false)

let test_json_string_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"every string round-trips byte-exactly"
    QCheck.string (fun s ->
      match Json.of_string (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') -> String.equal s s'
      | _ -> false)

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing";
      "\"bad \\q escape\"" ]

(* ------------------------------------------------------------------ *)
(* Tracer and export                                                    *)
(* ------------------------------------------------------------------ *)

let validated trace =
  match Trace_check.validate (Trace.export trace) with
  | Ok s -> s
  | Error e -> Alcotest.failf "export failed validation: %s" e

let test_tracer_spans_and_export () =
  let trace = Trace.create ~enabled:true () in
  let tr = Trace.tracer trace ~pid:0 ~name:"main" in
  Tracer.span tr "outer" (fun () ->
      Tracer.span tr "inner" (fun () -> ());
      Tracer.instant tr "tick";
      Tracer.counter tr "depth" 2.0);
  let s = validated trace in
  Alcotest.(check bool) "outer span" true (Trace_check.has_span s "outer");
  Alcotest.(check bool) "inner span" true (Trace_check.has_span s "inner");
  Alcotest.(check bool) "counter" true (Trace_check.has_counter s "depth");
  check (Alcotest.list Alcotest.int) "one pid lane" [ 0 ] s.Trace_check.pids;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "instants" [ ("tick", 1) ] s.Trace_check.instants;
  (* Spans aggregate: inner nests inside outer, so outer's total >= inner's. *)
  let total name =
    match
      List.find_opt
        (fun (st : Trace_check.span_stat) -> st.Trace_check.span = name)
        s.Trace_check.span_stats
    with
    | Some st -> st.Trace_check.total_us
    | None -> Alcotest.failf "span %s missing from stats" name
  in
  Alcotest.(check bool) "outer contains inner" true
    (total "outer" >= total "inner")

let test_tracer_span_reraises () =
  let trace = Trace.create ~enabled:true () in
  let tr = Trace.tracer trace ~pid:0 ~name:"main" in
  (try Tracer.span tr "will-raise" (fun () -> failwith "boom") with
  | Failure _ -> ());
  (* The span closed on the exception path, so the export stays valid. *)
  let s = validated trace in
  Alcotest.(check bool) "span recorded despite raise" true
    (Trace_check.has_span s "will-raise")

let test_tracer_ring_eviction_stays_balanced () =
  (* Overflow a tiny ring so B halves are evicted: the export must drop
     the orphaned E halves rather than emit an unbalanced trace. *)
  let trace = Trace.create ~capacity:8 ~enabled:true () in
  let tr = Trace.tracer trace ~pid:3 ~name:"hot" in
  for i = 1 to 100 do
    Tracer.span tr (Printf.sprintf "task-%d" (i mod 5)) (fun () -> ())
  done;
  Alcotest.(check bool) "events were dropped" true (Tracer.dropped tr > 0);
  check Alcotest.int "recorded counts everything" 200 (Tracer.recorded tr);
  let s = validated trace in
  Alcotest.(check bool) "still has complete spans" true
    (List.exists
       (fun (st : Trace_check.span_stat) -> st.Trace_check.spans > 0)
       s.Trace_check.span_stats)

let test_tracer_unclosed_span_dropped () =
  let trace = Trace.create ~enabled:true () in
  let tr = Trace.tracer trace ~pid:0 ~name:"main" in
  Tracer.begin_span tr "never-closed";
  Tracer.span tr "complete" (fun () -> ());
  let s = validated trace in
  Alcotest.(check bool) "complete span exported" true
    (Trace_check.has_span s "complete");
  Alcotest.(check bool) "unclosed span dropped" false
    (Trace_check.has_span s "never-closed")

let test_tracer_disabled_is_noop () =
  let tr = Tracer.null in
  Tracer.span tr "x" (fun () -> ());
  Tracer.instant tr "y";
  Tracer.counter tr "z" 1.0;
  check Alcotest.int "nothing recorded" 0 (Tracer.recorded tr);
  let trace = Trace.disabled in
  let tr' = Trace.tracer trace ~pid:7 ~name:"shard" in
  Tracer.span tr' "x" (fun () -> ());
  check Alcotest.int "disabled collection hands out null" 0 (Tracer.recorded tr');
  let s = validated trace in
  check Alcotest.int "empty export still validates" 0 s.Trace_check.events

let test_trace_multi_pid_export () =
  let trace = Trace.create ~enabled:true () in
  let a = Trace.tracer trace ~pid:1 ~name:"shard-0" in
  let b = Trace.tracer trace ~pid:2 ~name:"shard-1" in
  Tracer.span a "epoch" (fun () -> Tracer.span b "epoch" (fun () -> ()));
  Alcotest.(check bool) "same pid memoized" true
    (Trace.tracer trace ~pid:1 ~name:"whatever" == a);
  let s = validated trace in
  check (Alcotest.list Alcotest.int) "both lanes" [ 1; 2 ] s.Trace_check.pids

let test_trace_check_rejects_malformed () =
  let ev ?(ts = 1.0) ?(pid = 0) name ph =
    Json.Obj
      [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", Json.Num ts);
        ("pid", Json.Num (float_of_int pid)); ("tid", Json.Num 0.0) ]
  in
  let file events = Json.Obj [ ("traceEvents", Json.Arr events) ] in
  let rejects label events =
    match Trace_check.validate (file events) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "validator accepted %s" label
  in
  rejects "orphan E" [ ev "a" "E" ];
  rejects "unclosed B" [ ev "a" "B" ];
  rejects "name-mismatched pair" [ ev ~ts:1.0 "a" "B"; ev ~ts:2.0 "b" "E" ];
  rejects "backwards time"
    [ ev ~ts:2.0 "a" "B"; ev ~ts:1.0 "a" "E" ];
  rejects "unknown phase" [ ev "a" "X" ];
  (match Trace_check.validate (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "validator accepted an object with no traceEvents");
  (* Interleaved lanes are independent: B/E balance is per (pid, tid). *)
  match
    Trace_check.validate
      (file [ ev ~ts:1.0 ~pid:1 "a" "B"; ev ~ts:1.5 ~pid:2 "b" "B";
              ev ~ts:2.0 ~pid:1 "a" "E"; ev ~ts:2.5 ~pid:2 "b" "E" ])
  with
  | Ok s -> check Alcotest.int "events counted" 4 s.Trace_check.events
  | Error e -> Alcotest.failf "independent lanes rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Timeseries                                                           *)
(* ------------------------------------------------------------------ *)

let test_timeseries_sampling () =
  let ts = Timeseries.create () in
  check Alcotest.int "empty" 0 (Timeseries.length ts);
  Timeseries.sample ts ~time:300.0 [ ("edges", 10.0); ("execs", 100.0) ];
  Timeseries.sample ts ~time:600.0 [ ("edges", 25.0); ("corpus", 3.0) ];
  check Alcotest.int "rows" 2 (Timeseries.length ts);
  check (Alcotest.list Alcotest.string) "columns in first-seen order"
    [ "edges"; "execs"; "corpus" ] (Timeseries.columns ts);
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.0) (Alcotest.float 0.0)))
    "column extraction" [ (300.0, 10.0); (600.0, 25.0) ]
    (Timeseries.column ts "edges");
  check (Alcotest.option (Alcotest.float 0.0)) "last" (Some 25.0)
    (Timeseries.last ts "edges");
  check (Alcotest.option (Alcotest.float 0.0)) "last of sparse column"
    (Some 100.0) (Timeseries.last ts "execs")

let test_timeseries_jsonl_roundtrip () =
  let ts = Timeseries.create () in
  Timeseries.sample ts ~time:300.0 [ ("edges", 10.5); ("execs_per_s", 6.858333333333333) ];
  Timeseries.sample ts ~time:600.0 [ ("edges", 25.0); ("execs_per_s", 7.25) ];
  let jsonl = Timeseries.to_jsonl ts in
  (match Timeseries.of_jsonl jsonl with
  | Ok ts' ->
    check Alcotest.string "byte-exact re-serialization" jsonl
      (Timeseries.to_jsonl ts')
  | Error e -> Alcotest.fail e);
  (* Each line is a standalone JSON object with "t" first. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "line starts with t field" true
        (String.length line > 5 && String.sub line 0 5 = {|{"t":|});
      match Json.of_string line with
      | Ok (Json.Obj _) -> ()
      | _ -> Alcotest.failf "line is not an object: %s" line)
    (String.split_on_char '\n' (String.trim jsonl))

let test_timeseries_csv () =
  let ts = Timeseries.create () in
  Timeseries.sample ts ~time:1.0 [ ("a", 1.0) ];
  Timeseries.sample ts ~time:2.0 [ ("a", 2.0); ("b", 0.5) ];
  check Alcotest.string "rectangular with empty cells"
    "t,a,b\n1,1,\n2,2,0.5\n" (Timeseries.to_csv ts)

let test_timeseries_of_jsonl_errors () =
  (match Timeseries.of_jsonl "{\"edges\":1}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a row without t");
  (match Timeseries.of_jsonl "not json\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Timeseries.of_jsonl "" with
  | Ok ts -> check Alcotest.int "empty input, empty series" 0 (Timeseries.length ts)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Tracer drop metadata                                                 *)
(* ------------------------------------------------------------------ *)

let test_tracer_drop_metadata () =
  (* An overflowed ring must advertise its truncation in the export so
     `stats --check` can warn (and --strict can fail). *)
  let trace = Trace.create ~capacity:8 ~enabled:true () in
  let tr = Trace.tracer trace ~pid:7 ~name:"hot" in
  for _ = 1 to 50 do
    Tracer.span tr "task" (fun () -> ())
  done;
  let s = validated trace in
  (match s.Trace_check.dropped with
  | [ (7, n) ] ->
    check Alcotest.int "dropped count matches the tracer's" (Tracer.dropped tr) n
  | other ->
    Alcotest.failf "expected one dropped entry for pid 7, got %d"
      (List.length other));
  Alcotest.(check bool) "total_dropped positive" true
    (Trace_check.total_dropped s > 0);
  (* An untruncated trace carries no drop metadata at all — the export
     bytes are unchanged for healthy rings. *)
  let quiet = Trace.create ~enabled:true () in
  let qt = Trace.tracer quiet ~pid:1 ~name:"cold" in
  Tracer.span qt "task" (fun () -> ());
  let qs = validated quiet in
  check Alcotest.int "no drops, no metadata" 0 (Trace_check.total_dropped qs)

(* ------------------------------------------------------------------ *)
(* Events                                                               *)
(* ------------------------------------------------------------------ *)

module Events = Sp_obs.Events

let test_events_levels_and_since () =
  let lines = ref [] in
  let ev =
    Events.create ~capacity:4 ~min_level:Events.Info
      ~sink:(fun l -> lines := l :: !lines)
      ()
  in
  Events.log ev ~level:Events.Debug ~kind:"noise" [];
  check Alcotest.int "below min_level gets no seq" 0 (Events.seq ev);
  Events.log ev ~kind:"a" [ ("x", Json.Num 1.0) ];
  Events.log ev ~level:Events.Warn ~kind:"b" [];
  Events.log ev ~level:Events.Error ~kind:"c" [];
  check Alcotest.int "three accepted" 3 (Events.seq ev);
  check Alcotest.int "sink saw each accepted event" 3 (List.length !lines);
  (* since: strict cursor, oldest first *)
  let all = Events.since ev 0 in
  check
    Alcotest.(list string)
    "oldest first" [ "a"; "b"; "c" ]
    (List.map (fun e -> e.Events.ev_kind) all);
  let tail = Events.since ev 1 in
  check
    Alcotest.(list string)
    "cursor is exclusive" [ "b"; "c" ]
    (List.map (fun e -> e.Events.ev_kind) tail);
  let warns = Events.since ~min_level:Events.Warn ev 0 in
  check
    Alcotest.(list string)
    "level filter" [ "b"; "c" ]
    (List.map (fun e -> e.Events.ev_kind) warns);
  (* Overflow the 4-slot ring: the oldest events evict, the sink keeps
     everything, seq stays monotone. *)
  for i = 4 to 10 do
    Events.log ev ~kind:(Printf.sprintf "k%d" i) []
  done;
  check Alcotest.int "seq counts all accepted" 10 (Events.seq ev);
  Alcotest.(check bool) "ring evicted" true (Events.dropped ev > 0);
  let retained = Events.since ev 0 in
  check Alcotest.int "ring holds capacity" 4 (List.length retained);
  check Alcotest.int "sink saw every accepted event" 10 (List.length !lines);
  (match retained with
  | first :: _ -> check Alcotest.int "oldest retained seq" 7 first.Events.ev_seq
  | [] -> Alcotest.fail "ring empty");
  (* the sink lines are the event_json serialization *)
  (match Json.of_string (List.hd !lines) with
  | Ok j ->
    Alcotest.(check bool) "sink line parses to an event object" true
      (Json.member "seq" j <> None && Json.member "kind" j <> None)
  | Error e -> Alcotest.failf "sink line unparsable: %s" e)

let test_events_null_disabled () =
  Alcotest.(check bool) "null disabled" false (Events.enabled Events.null);
  Events.log Events.null ~kind:"ignored" [];
  check Alcotest.int "no seq" 0 (Events.seq Events.null);
  check Alcotest.int "no events" 0 (List.length (Events.since Events.null 0))

(* ------------------------------------------------------------------ *)
(* HTTP parser                                                          *)
(* ------------------------------------------------------------------ *)

module Http = Sp_obs.Http

let test_http_parse_request () =
  (match Http.parse_request "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok r ->
    check Alcotest.string "method" "GET" r.Http.rq_method;
    check Alcotest.string "path" "/metrics" r.Http.rq_path;
    check Alcotest.string "version" "HTTP/1.1" r.Http.rq_version;
    check Alcotest.(option string) "header lowercased" (Some "x")
      (Http.header r "HOST")
  | Error e -> Alcotest.failf "plain GET rejected: %s" e);
  (match
     Http.parse_request "GET /events?since=42&level=warn HTTP/1.1\r\n\r\n"
   with
  | Ok r ->
    check Alcotest.string "query stripped from path" "/events" r.Http.rq_path;
    check Alcotest.(option int) "query_int" (Some 42) (Http.query_int r "since");
    check Alcotest.(option int) "non-int query" None (Http.query_int r "level")
  | Error e -> Alcotest.failf "query GET rejected: %s" e);
  (match Http.parse_request "GET /a%20b+c HTTP/1.0\r\n\r\n" with
  | Ok r -> check Alcotest.string "percent+plus decoded" "/a b c" r.Http.rq_path
  | Error e -> Alcotest.failf "escaped path rejected: %s" e)

let test_http_parse_hostile () =
  let rejected head =
    match Http.parse_request head with
    | Ok _ -> Alcotest.failf "hostile head accepted: %S" head
    | Error _ -> ()
  in
  rejected "";
  rejected "GET";
  rejected "GET /";
  rejected "get /x HTTP/1.1";
  (* lowercase method *)
  rejected "GET x HTTP/1.1";
  (* target must start with / *)
  rejected "GET /x HTTP/2.0";
  (* unsupported version *)
  rejected "GET /x SMTP";
  rejected "GET /\x01 HTTP/1.1";
  (* ctl byte in target *)
  rejected "GET /x HTTP/1.1\r\nno-colon-header\r\n";
  rejected "GET /x HTTP/1.1\r\nbad: \x00value\r\n";
  (* percent_decode leaves invalid escapes verbatim *)
  check Alcotest.string "bad escape passthrough" "%zz"
    (Http.percent_decode "%zz")

let test_http_read_head_partial () =
  (* Drip the head through a socketpair a few bytes at a time: read_head
     must reassemble across arbitrarily fragmented reads and discard
     body bytes after the terminator. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let head = "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n" in
  let writer =
    Thread.create
      (fun () ->
        String.iteri
          (fun _ c ->
            ignore (Unix.write_substring a (String.make 1 c) 0 1);
            if Char.code c mod 7 = 0 then Thread.yield ())
          (head ^ "trailing body ignored"))
      ()
  in
  (match Http.read_head b with
  | Ok got ->
    Alcotest.(check bool) "head recovered" true
      (String.length got >= String.length head - 4)
  | Error e -> Alcotest.failf "read_head failed: %s" e);
  Thread.join writer;
  Unix.close a;
  Unix.close b;
  (* EOF before the terminator is an error, not a hang *)
  let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore (Unix.write_substring c "GET / HTTP/1.1\r\n" 0 16);
  Unix.close c;
  (match Http.read_head d with
  | Ok _ -> Alcotest.fail "truncated head accepted"
  | Error _ -> ());
  Unix.close d;
  (* an oversized head is rejected by the size cap *)
  let e, f = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let flood = Thread.create (fun () ->
      try
        ignore
          (Unix.write_substring e (String.make 9000 'A') 0 9000)
      with Unix.Unix_error _ -> ()) ()
  in
  (match Http.read_head ~max_bytes:1024 f with
  | Ok _ -> Alcotest.fail "oversized head accepted"
  | Error _ -> ());
  Unix.close f;
  Thread.join flood;
  Unix.close e

(* ------------------------------------------------------------------ *)
(* Exposition                                                           *)
(* ------------------------------------------------------------------ *)

module Exposition = Sp_obs.Exposition

let test_exposition_render_validate () =
  let metrics =
    [ Exposition.metric ~help:"total things" Exposition.Counter "things_total"
        42.0;
      Exposition.metric
        ~labels:[ ("tenant", "al\"pha\n\\") ]
        Exposition.Gauge "tenant_state" 1.0;
      Exposition.metric
        ~labels:[ ("tenant", "beta") ]
        Exposition.Gauge "tenant_state" 0.0;
      Exposition.metric Exposition.Gauge "weird_values" Float.nan;
      Exposition.metric Exposition.Gauge "more_values" Float.infinity
    ]
  in
  let text = Exposition.render metrics in
  (match Exposition.validate text with
  | Ok x ->
    check Alcotest.int "families" 4 x.Exposition.x_families;
    check Alcotest.int "samples" 5 x.Exposition.x_samples;
    check
      Alcotest.(list string)
      "first-seen family order"
      [ "things_total"; "tenant_state"; "weird_values"; "more_values" ]
      x.Exposition.x_names
  | Error e -> Alcotest.failf "renderer output rejected: %s\n%s" e text);
  Alcotest.(check bool) "label value escaped" true
    (let needle = {|al\"pha\n\\|} in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length text
       && (String.sub text i n = needle || go (i + 1))
     in
     go 0);
  (* sanitize_name maps internal dotted names into the charset *)
  check Alcotest.string "sanitize dots" "scheduler_execs_total"
    (Exposition.sanitize_name "scheduler.execs_total");
  check Alcotest.string "sanitize leading digit" "_9lives"
    (Exposition.sanitize_name "9lives");
  (* invalid names raise rather than emit a corrupt payload *)
  (match Exposition.render [ Exposition.metric Exposition.Gauge "bad name" 0.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid metric name accepted");
  (match
     Exposition.render
       [ Exposition.metric ~labels:[ ("bad label", "v") ] Exposition.Gauge "m" 0.0 ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid label name accepted")

let test_exposition_validator_rejects () =
  let rejected text =
    match Exposition.validate text with
    | Ok _ -> Alcotest.failf "accepted: %S" text
    | Error _ -> ()
  in
  rejected "no_type_decl 1\n";
  (* sample before TYPE *)
  rejected "# TYPE m counter\n# TYPE m counter\nm 1\n";
  (* duplicate TYPE *)
  rejected "# TYPE m counter\nm not-a-number\n";
  rejected "# TYPE m counter\nm{unclosed=\"v\" 1\n";
  match Exposition.validate "# TYPE m counter\nm{l=\"v\"} 1\nm 2\n" with
  | Ok x -> check Alcotest.int "two samples, one family" 2 x.Exposition.x_samples
  | Error e -> Alcotest.failf "valid payload rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Exporter                                                             *)
(* ------------------------------------------------------------------ *)

module Exporter = Sp_obs.Exporter

let test_exporter_end_to_end () =
  let ev = Events.create () in
  Events.log ev ~kind:"boot" [ ("ok", Json.Bool true) ];
  let ex = Exporter.create ~events:ev () in
  Exporter.publish ex
    {
      Exporter.p_metrics =
        [ Exposition.metric Exposition.Counter "snowplow_scheduler_slices" 3.0 ];
      p_health = Json.Obj [ ("status", Json.Str "ok") ];
      p_tenants = Json.Arr [ Json.Obj [ ("name", Json.Str "alpha") ] ];
    };
  match Exporter.start ex ~port:0 with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok port ->
    Fun.protect ~finally:(fun () -> Exporter.stop ex) @@ fun () ->
    let get path =
      match Http.get ~host:"127.0.0.1" ~port path with
      | Ok r -> r
      | Error e -> Alcotest.failf "GET %s: %s" path e
    in
    let code, _, metrics = get "/metrics" in
    check Alcotest.int "/metrics 200" 200 code;
    (match Exposition.validate metrics with
    | Ok x ->
      Alcotest.(check bool) "published family served" true
        (List.mem "snowplow_scheduler_slices" x.Exposition.x_names)
    | Error e -> Alcotest.failf "/metrics invalid: %s" e);
    let code, _, health = get "/health" in
    check Alcotest.int "/health 200" 200 code;
    check Alcotest.string "/health body" {|{"status":"ok"}|}
      (String.trim health);
    let code, _, tenants = get "/tenants" in
    check Alcotest.int "/tenants 200" 200 code;
    check Alcotest.string "/tenants body" {|[{"name":"alpha"}]|}
      (String.trim tenants);
    let code, _, events_body = get "/events?since=0" in
    check Alcotest.int "/events 200" 200 code;
    (match Json.of_string events_body with
    | Ok j ->
      (* the exporter logs its own exporter.start event after boot *)
      (match Option.bind (Json.member "events" j) Json.arr_opt with
      | Some (e1 :: _ as evs) ->
        check Alcotest.(option string) "first event kind served" (Some "boot")
          (Option.bind (Json.member "kind" e1) Json.str_opt);
        check Alcotest.int "both events served" 2 (List.length evs)
      | _ ->
        Alcotest.failf "/events: expected events, got %s" events_body);
      check Alcotest.(option (float 0.0)) "next cursor" (Some 2.0)
        (Option.bind (Json.member "next" j) Json.num_opt)
    | Error e -> Alcotest.failf "/events unparsable: %s" e);
    (* the since cursor is exclusive: seq 1 is skipped *)
    let _, _, tail_body = get "/events?since=1" in
    (match Json.of_string tail_body with
    | Ok j ->
      (match Option.bind (Json.member "events" j) Json.arr_opt with
      | Some evs ->
        Alcotest.(check bool) "cursor excludes seq 1" true
          (List.for_all
             (fun e ->
               Option.bind (Json.member "seq" e) Json.num_opt
               |> Option.value ~default:0.0 > 1.0)
             evs)
      | None -> Alcotest.fail "/events tail: missing events array")
    | Error e -> Alcotest.failf "/events tail unparsable: %s" e);
    let code, _, _ = get "/nope" in
    check Alcotest.int "404 for unknown path" 404 code;
    let code, _, _ = get "/events?level=bogus" in
    check Alcotest.int "400 for a bad level" 400 code;
    (* a republish swaps what subsequent scrapes see *)
    Exporter.publish ex
      {
        Exporter.p_metrics = [];
        p_health = Json.Obj [ ("status", Json.Str "degraded") ];
        p_tenants = Json.Arr [];
      };
    let _, _, health2 = get "/health" in
    check Alcotest.string "republished health" {|{"status":"degraded"}|}
      (String.trim health2)

let test_exporter_concurrent_scrapes () =
  let ex = Exporter.create () in
  Exporter.publish ex
    {
      Exporter.p_metrics =
        [ Exposition.metric Exposition.Gauge "snowplow_up" 1.0 ];
      p_health = Json.Obj [ ("status", Json.Str "ok") ];
      p_tenants = Json.Arr [];
    };
  match Exporter.start ex ~port:0 with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok port ->
    Fun.protect ~finally:(fun () -> Exporter.stop ex) @@ fun () ->
    let failures = Atomic.make 0 in
    let scraper _ =
      Thread.create
        (fun () ->
          for _ = 1 to 10 do
            match Http.get ~host:"127.0.0.1" ~port "/metrics" with
            | Ok (200, _, body) -> (
              match Exposition.validate body with
              | Ok _ -> ()
              | Error _ -> Atomic.incr failures)
            | Ok _ | Error _ -> Atomic.incr failures
          done)
        ()
    in
    let threads = List.init 4 scraper in
    List.iter Thread.join threads;
    check Alcotest.int "every concurrent scrape succeeded" 0
      (Atomic.get failures);
    (* stop is idempotent and wakes the accept loop *)
    Exporter.stop ex;
    Exporter.stop ex

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_obs"
    [
      ( "json",
        [
          Alcotest.test_case "emit and parse basics" `Quick test_json_basics;
          Alcotest.test_case "string escaping round-trips" `Quick
            test_json_string_escaping;
          Alcotest.test_case "floats round-trip exactly" `Quick
            test_json_float_exact;
          Alcotest.test_case "malformed input rejected" `Quick
            test_json_parse_errors;
        ] );
      qsuite "json-props"
        [ test_json_float_exact_prop; test_json_string_roundtrip_prop ];
      ( "tracer",
        [
          Alcotest.test_case "spans, instants, counters export" `Quick
            test_tracer_spans_and_export;
          Alcotest.test_case "span closes on raise" `Quick
            test_tracer_span_reraises;
          Alcotest.test_case "ring eviction keeps export balanced" `Quick
            test_tracer_ring_eviction_stays_balanced;
          Alcotest.test_case "unclosed span dropped at export" `Quick
            test_tracer_unclosed_span_dropped;
          Alcotest.test_case "disabled tracer is a no-op" `Quick
            test_tracer_disabled_is_noop;
          Alcotest.test_case "multi-pid collection" `Quick
            test_trace_multi_pid_export;
          Alcotest.test_case "validator rejects malformed traces" `Quick
            test_trace_check_rejects_malformed;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "sampling and columns" `Quick
            test_timeseries_sampling;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_timeseries_jsonl_roundtrip;
          Alcotest.test_case "csv shape" `Quick test_timeseries_csv;
          Alcotest.test_case "of_jsonl validation" `Quick
            test_timeseries_of_jsonl_errors;
        ] );
      ( "tracer-drops",
        [
          Alcotest.test_case "truncation rides the export as metadata"
            `Quick test_tracer_drop_metadata;
        ] );
      ( "events",
        [
          Alcotest.test_case "levels, since cursor, ring eviction, sink"
            `Quick test_events_levels_and_since;
          Alcotest.test_case "null log is inert" `Quick
            test_events_null_disabled;
        ] );
      ( "http",
        [
          Alcotest.test_case "request parsing" `Quick test_http_parse_request;
          Alcotest.test_case "hostile heads rejected" `Quick
            test_http_parse_hostile;
          Alcotest.test_case "read_head reassembles partial reads" `Quick
            test_http_read_head_partial;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "render/validate round-trip" `Quick
            test_exposition_render_validate;
          Alcotest.test_case "validator rejects malformed payloads" `Quick
            test_exposition_validator_rejects;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "endpoints end-to-end" `Quick
            test_exporter_end_to_end;
          Alcotest.test_case "concurrent scrapes" `Quick
            test_exporter_concurrent_scrapes;
        ] );
    ]
