(* Tests for sp_obs, the telemetry subsystem: the JSON emitter/parser
   (byte-exact string and float round-trips), the ring-buffer tracer and
   its Chrome trace_event export (always balanced, always monotone, even
   after ring eviction), the trace validator, and the time-series
   sampler's JSONL/CSV writers. *)

module Json = Sp_obs.Json
module Tracer = Sp_obs.Tracer
module Trace = Sp_obs.Trace
module Trace_check = Sp_obs.Trace_check
module Timeseries = Sp_obs.Timeseries

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "re-parse failed: %s (input %s)" e (Json.to_string v)

let test_json_basics () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "bool" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int-valued float" "42" (Json.to_string (Json.Num 42.0));
  check Alcotest.string "array" "[1,2]"
    (Json.to_string (Json.Arr [ Json.Num 1.0; Json.Num 2.0 ]));
  check Alcotest.string "object field order" {|{"b":1,"a":2}|}
    (Json.to_string (Json.Obj [ ("b", Json.Num 1.0); ("a", Json.Num 2.0) ]));
  Alcotest.(check bool) "structural round-trip" true
    (Json.equal
       (Json.Obj
          [ ("xs", Json.Arr [ Json.Null; Json.Bool false; Json.Str "hi" ]) ])
       (roundtrip
          (Json.Obj
             [ ("xs", Json.Arr [ Json.Null; Json.Bool false; Json.Str "hi" ]) ])))

let test_json_string_escaping () =
  (* Every byte value must survive a round-trip: control characters via
     \uXXXX, quote/backslash via their short escapes, the rest verbatim. *)
  let all_bytes = String.init 256 Char.chr in
  (match roundtrip (Json.Str all_bytes) with
  | Json.Str s -> check Alcotest.string "all 256 bytes round-trip" all_bytes s
  | _ -> Alcotest.fail "expected a string");
  let encoded = Json.to_string (Json.Str "a\n\t\"\\\x01b") in
  check Alcotest.string "escape forms" {|"a\n\t\"\\\u0001b"|} encoded;
  (* Non-ASCII (UTF-8) passes through verbatim... *)
  check Alcotest.string "utf-8 verbatim" "\"\xc3\xa9\""
    (Json.to_string (Json.Str "\xc3\xa9"));
  (* ...and \uXXXX escapes (incl. surrogate pairs) decode to UTF-8. *)
  (match Json.of_string {|"é 😀"|} with
  | Ok (Json.Str s) -> check Alcotest.string "unicode escapes" "\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e)

let test_json_float_exact () =
  List.iter
    (fun f ->
      match roundtrip (Json.Num f) with
      | Json.Num f' ->
        Alcotest.(check bool)
          (Printf.sprintf "%h round-trips exactly" f)
          true (Float.equal f f')
      | _ -> Alcotest.fail "expected a number")
    [ 0.0; -0.0; 1.0; -1.5; 0.1; 1e-300; 1.7976931348623157e308;
      4.9e-324; 3.141592653589793; 1234567890123456.0; 6.858333333333333 ];
  check Alcotest.string "integral without exponent" "1234567890123456"
    (Json.num_to_string 1234567890123456.0);
  check Alcotest.string "nan is null" "null" (Json.num_to_string Float.nan);
  check Alcotest.string "inf is null" "null" (Json.num_to_string Float.infinity)

let test_json_float_exact_prop =
  QCheck.Test.make ~count:500 ~name:"every finite float re-parses exactly"
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.of_string (Json.num_to_string f) with
      | Ok (Json.Num f') -> Float.equal f f'
      | _ -> false)

let test_json_string_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"every string round-trips byte-exactly"
    QCheck.string (fun s ->
      match Json.of_string (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') -> String.equal s s'
      | _ -> false)

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing";
      "\"bad \\q escape\"" ]

(* ------------------------------------------------------------------ *)
(* Tracer and export                                                    *)
(* ------------------------------------------------------------------ *)

let validated trace =
  match Trace_check.validate (Trace.export trace) with
  | Ok s -> s
  | Error e -> Alcotest.failf "export failed validation: %s" e

let test_tracer_spans_and_export () =
  let trace = Trace.create ~enabled:true () in
  let tr = Trace.tracer trace ~pid:0 ~name:"main" in
  Tracer.span tr "outer" (fun () ->
      Tracer.span tr "inner" (fun () -> ());
      Tracer.instant tr "tick";
      Tracer.counter tr "depth" 2.0);
  let s = validated trace in
  Alcotest.(check bool) "outer span" true (Trace_check.has_span s "outer");
  Alcotest.(check bool) "inner span" true (Trace_check.has_span s "inner");
  Alcotest.(check bool) "counter" true (Trace_check.has_counter s "depth");
  check (Alcotest.list Alcotest.int) "one pid lane" [ 0 ] s.Trace_check.pids;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "instants" [ ("tick", 1) ] s.Trace_check.instants;
  (* Spans aggregate: inner nests inside outer, so outer's total >= inner's. *)
  let total name =
    match
      List.find_opt
        (fun (st : Trace_check.span_stat) -> st.Trace_check.span = name)
        s.Trace_check.span_stats
    with
    | Some st -> st.Trace_check.total_us
    | None -> Alcotest.failf "span %s missing from stats" name
  in
  Alcotest.(check bool) "outer contains inner" true
    (total "outer" >= total "inner")

let test_tracer_span_reraises () =
  let trace = Trace.create ~enabled:true () in
  let tr = Trace.tracer trace ~pid:0 ~name:"main" in
  (try Tracer.span tr "will-raise" (fun () -> failwith "boom") with
  | Failure _ -> ());
  (* The span closed on the exception path, so the export stays valid. *)
  let s = validated trace in
  Alcotest.(check bool) "span recorded despite raise" true
    (Trace_check.has_span s "will-raise")

let test_tracer_ring_eviction_stays_balanced () =
  (* Overflow a tiny ring so B halves are evicted: the export must drop
     the orphaned E halves rather than emit an unbalanced trace. *)
  let trace = Trace.create ~capacity:8 ~enabled:true () in
  let tr = Trace.tracer trace ~pid:3 ~name:"hot" in
  for i = 1 to 100 do
    Tracer.span tr (Printf.sprintf "task-%d" (i mod 5)) (fun () -> ())
  done;
  Alcotest.(check bool) "events were dropped" true (Tracer.dropped tr > 0);
  check Alcotest.int "recorded counts everything" 200 (Tracer.recorded tr);
  let s = validated trace in
  Alcotest.(check bool) "still has complete spans" true
    (List.exists
       (fun (st : Trace_check.span_stat) -> st.Trace_check.spans > 0)
       s.Trace_check.span_stats)

let test_tracer_unclosed_span_dropped () =
  let trace = Trace.create ~enabled:true () in
  let tr = Trace.tracer trace ~pid:0 ~name:"main" in
  Tracer.begin_span tr "never-closed";
  Tracer.span tr "complete" (fun () -> ());
  let s = validated trace in
  Alcotest.(check bool) "complete span exported" true
    (Trace_check.has_span s "complete");
  Alcotest.(check bool) "unclosed span dropped" false
    (Trace_check.has_span s "never-closed")

let test_tracer_disabled_is_noop () =
  let tr = Tracer.null in
  Tracer.span tr "x" (fun () -> ());
  Tracer.instant tr "y";
  Tracer.counter tr "z" 1.0;
  check Alcotest.int "nothing recorded" 0 (Tracer.recorded tr);
  let trace = Trace.disabled in
  let tr' = Trace.tracer trace ~pid:7 ~name:"shard" in
  Tracer.span tr' "x" (fun () -> ());
  check Alcotest.int "disabled collection hands out null" 0 (Tracer.recorded tr');
  let s = validated trace in
  check Alcotest.int "empty export still validates" 0 s.Trace_check.events

let test_trace_multi_pid_export () =
  let trace = Trace.create ~enabled:true () in
  let a = Trace.tracer trace ~pid:1 ~name:"shard-0" in
  let b = Trace.tracer trace ~pid:2 ~name:"shard-1" in
  Tracer.span a "epoch" (fun () -> Tracer.span b "epoch" (fun () -> ()));
  Alcotest.(check bool) "same pid memoized" true
    (Trace.tracer trace ~pid:1 ~name:"whatever" == a);
  let s = validated trace in
  check (Alcotest.list Alcotest.int) "both lanes" [ 1; 2 ] s.Trace_check.pids

let test_trace_check_rejects_malformed () =
  let ev ?(ts = 1.0) ?(pid = 0) name ph =
    Json.Obj
      [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", Json.Num ts);
        ("pid", Json.Num (float_of_int pid)); ("tid", Json.Num 0.0) ]
  in
  let file events = Json.Obj [ ("traceEvents", Json.Arr events) ] in
  let rejects label events =
    match Trace_check.validate (file events) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "validator accepted %s" label
  in
  rejects "orphan E" [ ev "a" "E" ];
  rejects "unclosed B" [ ev "a" "B" ];
  rejects "name-mismatched pair" [ ev ~ts:1.0 "a" "B"; ev ~ts:2.0 "b" "E" ];
  rejects "backwards time"
    [ ev ~ts:2.0 "a" "B"; ev ~ts:1.0 "a" "E" ];
  rejects "unknown phase" [ ev "a" "X" ];
  (match Trace_check.validate (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "validator accepted an object with no traceEvents");
  (* Interleaved lanes are independent: B/E balance is per (pid, tid). *)
  match
    Trace_check.validate
      (file [ ev ~ts:1.0 ~pid:1 "a" "B"; ev ~ts:1.5 ~pid:2 "b" "B";
              ev ~ts:2.0 ~pid:1 "a" "E"; ev ~ts:2.5 ~pid:2 "b" "E" ])
  with
  | Ok s -> check Alcotest.int "events counted" 4 s.Trace_check.events
  | Error e -> Alcotest.failf "independent lanes rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Timeseries                                                           *)
(* ------------------------------------------------------------------ *)

let test_timeseries_sampling () =
  let ts = Timeseries.create () in
  check Alcotest.int "empty" 0 (Timeseries.length ts);
  Timeseries.sample ts ~time:300.0 [ ("edges", 10.0); ("execs", 100.0) ];
  Timeseries.sample ts ~time:600.0 [ ("edges", 25.0); ("corpus", 3.0) ];
  check Alcotest.int "rows" 2 (Timeseries.length ts);
  check (Alcotest.list Alcotest.string) "columns in first-seen order"
    [ "edges"; "execs"; "corpus" ] (Timeseries.columns ts);
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.0) (Alcotest.float 0.0)))
    "column extraction" [ (300.0, 10.0); (600.0, 25.0) ]
    (Timeseries.column ts "edges");
  check (Alcotest.option (Alcotest.float 0.0)) "last" (Some 25.0)
    (Timeseries.last ts "edges");
  check (Alcotest.option (Alcotest.float 0.0)) "last of sparse column"
    (Some 100.0) (Timeseries.last ts "execs")

let test_timeseries_jsonl_roundtrip () =
  let ts = Timeseries.create () in
  Timeseries.sample ts ~time:300.0 [ ("edges", 10.5); ("execs_per_s", 6.858333333333333) ];
  Timeseries.sample ts ~time:600.0 [ ("edges", 25.0); ("execs_per_s", 7.25) ];
  let jsonl = Timeseries.to_jsonl ts in
  (match Timeseries.of_jsonl jsonl with
  | Ok ts' ->
    check Alcotest.string "byte-exact re-serialization" jsonl
      (Timeseries.to_jsonl ts')
  | Error e -> Alcotest.fail e);
  (* Each line is a standalone JSON object with "t" first. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "line starts with t field" true
        (String.length line > 5 && String.sub line 0 5 = {|{"t":|});
      match Json.of_string line with
      | Ok (Json.Obj _) -> ()
      | _ -> Alcotest.failf "line is not an object: %s" line)
    (String.split_on_char '\n' (String.trim jsonl))

let test_timeseries_csv () =
  let ts = Timeseries.create () in
  Timeseries.sample ts ~time:1.0 [ ("a", 1.0) ];
  Timeseries.sample ts ~time:2.0 [ ("a", 2.0); ("b", 0.5) ];
  check Alcotest.string "rectangular with empty cells"
    "t,a,b\n1,1,\n2,2,0.5\n" (Timeseries.to_csv ts)

let test_timeseries_of_jsonl_errors () =
  (match Timeseries.of_jsonl "{\"edges\":1}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a row without t");
  (match Timeseries.of_jsonl "not json\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Timeseries.of_jsonl "" with
  | Ok ts -> check Alcotest.int "empty input, empty series" 0 (Timeseries.length ts)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_obs"
    [
      ( "json",
        [
          Alcotest.test_case "emit and parse basics" `Quick test_json_basics;
          Alcotest.test_case "string escaping round-trips" `Quick
            test_json_string_escaping;
          Alcotest.test_case "floats round-trip exactly" `Quick
            test_json_float_exact;
          Alcotest.test_case "malformed input rejected" `Quick
            test_json_parse_errors;
        ] );
      qsuite "json-props"
        [ test_json_float_exact_prop; test_json_string_roundtrip_prop ];
      ( "tracer",
        [
          Alcotest.test_case "spans, instants, counters export" `Quick
            test_tracer_spans_and_export;
          Alcotest.test_case "span closes on raise" `Quick
            test_tracer_span_reraises;
          Alcotest.test_case "ring eviction keeps export balanced" `Quick
            test_tracer_ring_eviction_stays_balanced;
          Alcotest.test_case "unclosed span dropped at export" `Quick
            test_tracer_unclosed_span_dropped;
          Alcotest.test_case "disabled tracer is a no-op" `Quick
            test_tracer_disabled_is_noop;
          Alcotest.test_case "multi-pid collection" `Quick
            test_trace_multi_pid_export;
          Alcotest.test_case "validator rejects malformed traces" `Quick
            test_trace_check_rejects_malformed;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "sampling and columns" `Quick
            test_timeseries_sampling;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_timeseries_jsonl_roundtrip;
          Alcotest.test_case "csv shape" `Quick test_timeseries_csv;
          Alcotest.test_case "of_jsonl validation" `Quick
            test_timeseries_of_jsonl_errors;
        ] );
    ]
