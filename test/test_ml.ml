(* Tests for sp_ml: tensors, autodiff (gradients checked against finite
   differences), optimizers and metrics. *)

module Rng = Sp_util.Rng
module Tensor = Sp_ml.Tensor
module Ad = Sp_ml.Ad
module Nn = Sp_ml.Nn
module Optim = Sp_ml.Optim
module Metrics = Sp_ml.Metrics

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Tensor                                                               *)
(* ------------------------------------------------------------------ *)

let test_tensor_basics () =
  let t = Tensor.create 2 3 in
  Tensor.set t 1 2 5.0;
  Alcotest.check feq "get/set" 5.0 (Tensor.get t 1 2);
  Alcotest.(check (pair int int)) "dims" (2, 3) (Tensor.dims t);
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Alcotest.check feq "sum" 5.0 (Tensor.sum t)

let test_matmul_known () =
  let a = Tensor.of_array ~rows:2 ~cols:2 [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.of_array ~rows:2 ~cols:2 [| 5.; 6.; 7.; 8. |] in
  let c = Tensor.matmul a b in
  Alcotest.check feq "c00" 19.0 (Tensor.get c 0 0);
  Alcotest.check feq "c01" 22.0 (Tensor.get c 0 1);
  Alcotest.check feq "c10" 43.0 (Tensor.get c 1 0);
  Alcotest.check feq "c11" 50.0 (Tensor.get c 1 1)

let random_tensor seed rows cols = Tensor.randn (Rng.create seed) 1.0 rows cols

let approx_equal a b =
  let da = Tensor.sub a b in
  Tensor.frobenius da < 1e-9 *. (1.0 +. Tensor.frobenius a)

let prop_matmul_tn =
  QCheck.Test.make ~count:100 ~name:"matmul_tn a b = (transpose a) * b"
    QCheck.(int_bound 100000)
    (fun seed ->
      let a = random_tensor seed 4 3 and b = random_tensor (seed + 1) 4 5 in
      approx_equal (Tensor.matmul_tn a b) (Tensor.matmul (Tensor.transpose a) b))

let prop_matmul_nt =
  QCheck.Test.make ~count:100 ~name:"matmul_nt a b = a * (transpose b)"
    QCheck.(int_bound 100000)
    (fun seed ->
      let a = random_tensor seed 4 3 and b = random_tensor (seed + 1) 5 3 in
      approx_equal (Tensor.matmul_nt a b) (Tensor.matmul a (Tensor.transpose b)))

let test_broadcast_bias () =
  let a = Tensor.of_array ~rows:2 ~cols:2 [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.of_row [| 10.; 20. |] in
  let c = Tensor.add a b in
  Alcotest.check feq "broadcast" 13.0 (Tensor.get c 1 0);
  Alcotest.check feq "broadcast col1" 24.0 (Tensor.get c 1 1)

(* ------------------------------------------------------------------ *)
(* Autodiff: finite differences                                         *)
(* ------------------------------------------------------------------ *)

(* Numerical gradient of [f] w.r.t. entry [i] of the parameter tensor. *)
let numeric_grad param f i =
  let data = (Ad.value param).Tensor.data in
  let eps = 1e-5 in
  let orig = data.{i} in
  data.{i} <- orig +. eps;
  let up = Tensor.get (Ad.value (f ())) 0 0 in
  data.{i} <- orig -. eps;
  let down = Tensor.get (Ad.value (f ())) 0 0 in
  data.{i} <- orig;
  (up -. down) /. (2.0 *. eps)

let check_grads ?(tol = 1e-3) param f =
  Ad.zero_grad param;
  let loss = f () in
  Ad.backward loss;
  let g = Ad.grad param in
  let n = Tensor.numel (Ad.value param) in
  for i = 0 to n - 1 do
    let expected = numeric_grad param f i in
    let got = g.Tensor.data.{i} in
    if Float.abs (expected -. got) > tol *. (1.0 +. Float.abs expected) then
      Alcotest.failf "grad mismatch at %d: numeric %f vs autodiff %f" i expected got
  done

let test_grad_matmul_chain () =
  let w = Ad.param (random_tensor 1 3 3) in
  let x = Ad.const (random_tensor 2 4 3) in
  check_grads w (fun () -> Ad.mean_all (Ad.relu (Ad.matmul x w)))

let test_grad_sigmoid_mul () =
  let w = Ad.param (random_tensor 3 2 4) in
  let x = Ad.const (random_tensor 4 2 4) in
  check_grads w (fun () -> Ad.mean_all (Ad.mul (Ad.sigmoid w) x))

let test_grad_softmax_attention () =
  let q = Ad.param (random_tensor 5 3 4) in
  let k = Ad.const (random_tensor 6 3 4) in
  let v = Ad.const (random_tensor 7 3 4) in
  check_grads q (fun () ->
      Ad.mean_all (Ad.matmul (Ad.softmax_rows (Ad.matmul_nt q k)) v))

let test_grad_gather () =
  let emb = Ad.param (random_tensor 8 6 4) in
  check_grads emb (fun () ->
      Ad.mean_all (Ad.tanh (Ad.gather_rows emb [| 1; 3; 3; 5 |])))

let test_grad_spmm () =
  let x = Ad.param (random_tensor 9 4 3) in
  let src = [| 0; 1; 2; 3; 1 |] and dst = [| 1; 2; 2; 0; 0 |] in
  let coef = [| 1.0; 0.5; 0.5; 1.0; 0.25 |] in
  check_grads x (fun () -> Ad.mean_all (Ad.relu (Ad.spmm ~src ~dst ~coef ~rows:3 x)))

let test_grad_bce () =
  let w = Ad.param (random_tensor 10 4 1) in
  let targets = [| 1.0; 0.0; 1.0; 0.0 |] and mask = [| 2.0; 1.0; 1.0; 0.0 |] in
  check_grads w (fun () -> Ad.bce_with_logits w ~targets ~mask)

let test_grad_cross_entropy () =
  let w = Ad.param (random_tensor 11 3 5) in
  check_grads w (fun () -> Ad.cross_entropy_rows w ~targets:[| 2; -1; 0 |])

let test_grad_add_weighted_sub_scale () =
  let w = Ad.param (random_tensor 12 3 3) in
  let x = Ad.const (random_tensor 13 3 3) in
  check_grads w (fun () ->
      Ad.mean_all (Ad.add_weighted (Ad.sub x w) (Ad.scale 2.0 w) 0.5))

let test_grad_accumulates_on_reuse () =
  (* y = w*w-ish reuse: both branches must contribute. *)
  let w = Ad.param (Tensor.of_array ~rows:1 ~cols:1 [| 3.0 |]) in
  let loss = Ad.mean_all (Ad.mul w w) in
  Ad.backward loss;
  Alcotest.check (Alcotest.float 1e-9) "d(w^2)/dw = 2w" 6.0
    (Tensor.get (Ad.grad w) 0 0)

(* ------------------------------------------------------------------ *)
(* Optimizers                                                           *)
(* ------------------------------------------------------------------ *)

let minimize optim w steps =
  for _ = 1 to steps do
    Optim.zero_grad optim;
    let loss = Ad.mean_all (Ad.mul w w) in
    Ad.backward loss;
    Optim.step optim
  done;
  Tensor.frobenius (Ad.value w)

let test_adam_minimizes () =
  let w = Ad.param (random_tensor 20 3 3) in
  let before = Tensor.frobenius (Ad.value w) in
  let after = minimize (Optim.adam ~lr:0.05 [ w ]) w 300 in
  Alcotest.(check bool) "moves towards zero" true (after < 0.1 *. before)

let test_sgd_minimizes () =
  let w = Ad.param (random_tensor 21 3 3) in
  let before = Tensor.frobenius (Ad.value w) in
  let after = minimize (Optim.sgd ~lr:0.1 ~momentum:0.5 [ w ]) w 200 in
  Alcotest.(check bool) "moves towards zero" true (after < 0.1 *. before)

(* ------------------------------------------------------------------ *)
(* Nn / Metrics                                                         *)
(* ------------------------------------------------------------------ *)

let test_linear_shapes () =
  let rng = Rng.create 4 in
  let lin = Nn.Linear.create rng 3 5 in
  let x = Ad.const (random_tensor 22 2 3) in
  Alcotest.(check (pair int int)) "output shape" (2, 5)
    (Tensor.dims (Ad.value (Nn.Linear.apply lin x)));
  Alcotest.(check int) "params" 2 (List.length (Nn.Linear.params lin))

let test_embedding () =
  let rng = Rng.create 4 in
  let emb = Nn.Embedding.create rng ~vocab:10 ~dim:4 in
  let out = Ad.value (Nn.Embedding.lookup emb [| 3; 3; 7 |]) in
  Alcotest.(check (pair int int)) "shape" (3, 4) (Tensor.dims out);
  Alcotest.check feq "same index same row" (Tensor.get out 0 2) (Tensor.get out 1 2)

let test_metrics_cases () =
  let s = Metrics.score ~compare ~pred:[ 1; 2; 3 ] ~gold:[ 2; 3; 4 ] in
  Alcotest.check feq "precision" (2.0 /. 3.0) s.Metrics.precision;
  Alcotest.check feq "recall" (2.0 /. 3.0) s.Metrics.recall;
  Alcotest.check feq "jaccard" 0.5 s.Metrics.jaccard;
  let empty = Metrics.score ~compare ~pred:([] : int list) ~gold:[] in
  Alcotest.check feq "both empty f1" 1.0 empty.Metrics.f1;
  let miss = Metrics.score ~compare ~pred:[ 1 ] ~gold:([] : int list) in
  Alcotest.check feq "empty gold f1" 0.0 miss.Metrics.f1;
  let dup = Metrics.score ~compare ~pred:[ 1; 1; 2 ] ~gold:[ 1; 2 ] in
  Alcotest.check feq "duplicates collapsed" 1.0 dup.Metrics.f1

let prop_f1_between_p_and_r =
  QCheck.Test.make ~count:200 ~name:"F1 lies between min and max of P and R"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (pred, gold) ->
      let s = Metrics.score ~compare ~pred ~gold in
      let lo = Float.min s.Metrics.precision s.Metrics.recall in
      let hi = Float.max s.Metrics.precision s.Metrics.recall in
      s.Metrics.f1 >= lo -. 1e-9 && s.Metrics.f1 <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let test_serialize_roundtrip () =
  let params =
    [ Ad.param (random_tensor 30 3 4); Ad.param (random_tensor 31 1 1);
      Ad.param (random_tensor 32 5 2) ]
  in
  let text = Sp_ml.Serialize.params_to_string params in
  let fresh =
    [ Ad.param (Tensor.create 3 4); Ad.param (Tensor.create 1 1);
      Ad.param (Tensor.create 5 2) ]
  in
  (match Sp_ml.Serialize.load_params text fresh with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  List.iter2
    (fun a b ->
      if not (Tensor.equal (Ad.value a) (Ad.value b)) then
        Alcotest.fail "values did not round trip exactly")
    params fresh

let test_serialize_shape_mismatch () =
  let text = Sp_ml.Serialize.params_to_string [ Ad.param (random_tensor 33 2 2) ] in
  (match Sp_ml.Serialize.load_params text [ Ad.param (Tensor.create 3 3) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shape mismatch accepted");
  match Sp_ml.Serialize.load_params "garbage" [ Ad.param (Tensor.create 1 1) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage accepted"

let test_serialize_file_roundtrip () =
  let params = [ Ad.param (random_tensor 34 4 4) ] in
  let path = Filename.temp_file "sp_ml_params" ".txt" in
  Sp_ml.Serialize.params_to_file path params;
  let fresh = [ Ad.param (Tensor.create 4 4) ] in
  (match Sp_ml.Serialize.params_from_file path fresh with
  | Ok () -> ()
  | Error e -> Alcotest.failf "file load failed: %s" e);
  Sys.remove path;
  Alcotest.(check bool) "exact" true
    (Tensor.equal (Ad.value (List.hd params)) (Ad.value (List.hd fresh)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_ml"
    [
      ( "tensor",
        [
          Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "matmul known" `Quick test_matmul_known;
          Alcotest.test_case "broadcast bias" `Quick test_broadcast_bias;
        ] );
      qsuite "tensor-props" [ prop_matmul_tn; prop_matmul_nt ];
      ( "autodiff (vs finite differences)",
        [
          Alcotest.test_case "matmul+relu" `Quick test_grad_matmul_chain;
          Alcotest.test_case "sigmoid*x" `Quick test_grad_sigmoid_mul;
          Alcotest.test_case "softmax attention" `Quick test_grad_softmax_attention;
          Alcotest.test_case "gather_rows" `Quick test_grad_gather;
          Alcotest.test_case "spmm" `Quick test_grad_spmm;
          Alcotest.test_case "bce_with_logits" `Quick test_grad_bce;
          Alcotest.test_case "cross_entropy" `Quick test_grad_cross_entropy;
          Alcotest.test_case "sub/scale/add_weighted" `Quick test_grad_add_weighted_sub_scale;
          Alcotest.test_case "gradient accumulation" `Quick test_grad_accumulates_on_reuse;
        ] );
      ( "optim",
        [
          Alcotest.test_case "adam minimizes" `Quick test_adam_minimizes;
          Alcotest.test_case "sgd minimizes" `Quick test_sgd_minimizes;
        ] );
      ( "nn+metrics",
        [
          Alcotest.test_case "linear shapes" `Quick test_linear_shapes;
          Alcotest.test_case "embedding" `Quick test_embedding;
          Alcotest.test_case "metrics cases" `Quick test_metrics_cases;
        ] );
      qsuite "metrics-props" [ prop_f1_between_p_and_r ];
      ( "serialize",
        [
          Alcotest.test_case "roundtrip exact" `Quick test_serialize_roundtrip;
          Alcotest.test_case "rejects mismatches" `Quick test_serialize_shape_mismatch;
          Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip;
        ] );
    ]
