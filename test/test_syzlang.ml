(* Unit and property tests for sp_syzlang: types, values, programs,
   parser/printer, generator. The syscall interface of the synthetic
   kernel provides realistic specs for the property tests. *)

module Rng = Sp_util.Rng
module Ty = Sp_syzlang.Ty
module Spec = Sp_syzlang.Spec
module Value = Sp_syzlang.Value
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Parser = Sp_syzlang.Parser

let db = Sp_kernel.Specgen.generate (Rng.create 3) ~num_syscalls:24

let prog_gen =
  (* QCheck generator of well-formed programs via the program generator. *)
  QCheck.make
    ~print:(fun p -> Prog.to_string p)
    QCheck.Gen.(map (fun seed -> Gen.program (Rng.create seed) db ()) int)

(* ------------------------------------------------------------------ *)
(* Spec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_spec_db () =
  Alcotest.(check int) "count" 24 (Spec.count db);
  let open_spec = Spec.find_exn db "open" in
  Alcotest.(check string) "name" "open" open_spec.Spec.name;
  Alcotest.(check bool) "produces fd" true (open_spec.Spec.ret = Some "fd");
  Alcotest.(check bool) "read consumes fd" true
    (List.exists
       (fun (f : Ty.field) -> f.fty = Ty.Resource "fd")
       (Spec.find_exn db "read").Spec.args);
  Alcotest.(check bool) "unknown is None" true (Spec.find db "nope" = None)

let test_spec_ids_dense () =
  List.iteri
    (fun i spec -> Alcotest.(check int) "dense id" i spec.Spec.sys_id)
    (Spec.all db)

let test_producers () =
  let fds = Spec.producers_of db "fd" in
  Alcotest.(check bool) "open produces fd" true
    (List.exists (fun s -> s.Spec.name = "open") fds)

let test_duplicate_name_rejected () =
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Spec.make_db: duplicate syscall name x") (fun () ->
      ignore (Spec.make_db [ ("x", [], None); ("x", [], None) ]))

(* ------------------------------------------------------------------ *)
(* Value                                                                *)
(* ------------------------------------------------------------------ *)

let all_types_of_db () =
  List.concat_map
    (fun spec ->
      let rec tys (t : Ty.t) =
        t
        ::
        (match t with
        | Ty.Ptr inner -> tys inner
        | Ty.Struct fields -> List.concat_map (fun f -> tys f.Ty.fty) fields
        | _ -> [])
      in
      List.concat_map (fun (f : Ty.field) -> tys f.fty) spec.Spec.args)
    (Spec.all db)

let test_minimal_conforms () =
  List.iter
    (fun ty ->
      Alcotest.(check bool)
        (Printf.sprintf "minimal conforms to %s" (Ty.to_string ty))
        true
        (Value.conforms ty (Value.minimal ty)))
    (all_types_of_db ())

let prop_default_random_conform =
  QCheck.Test.make ~count:200 ~name:"default and random values conform"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun ty ->
          Value.conforms ty (Value.default rng ty)
          && Value.conforms ty (Value.random rng ty))
        (all_types_of_db ()))

let test_scalar_views () =
  Alcotest.(check int) "int" 7 (Value.scalar (Value.Vint 7));
  Alcotest.(check int) "buffer length" 42 (Value.scalar (Value.Vbuf { len = 42; seed = 3 }));
  Alcotest.(check int) "null ptr" 0 (Value.scalar (Value.Vptr None));
  Alcotest.(check int) "non-null ptr" 1 (Value.scalar (Value.Vptr (Some (Value.Vint 0))));
  Alcotest.(check bool) "string hash is stable" true
    (Value.scalar (Value.Vstr "x") = Value.scalar (Value.Vstr "x"))

let prop_content_hash_respects_equal =
  QCheck.Test.make ~count:200 ~name:"equal values have equal content hashes"
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (s1, s2) ->
      let v1 = Value.random (Rng.create s1) (Ty.Int { bits = 32; lo = 0; hi = 100 }) in
      let v2 = Value.random (Rng.create s2) (Ty.Int { bits = 32; lo = 0; hi = 100 }) in
      (not (Value.equal v1 v2)) || Value.content_hash v1 = Value.content_hash v2)

(* ------------------------------------------------------------------ *)
(* Prog                                                                 *)
(* ------------------------------------------------------------------ *)

let prop_generated_valid =
  QCheck.Test.make ~count:150 ~name:"generated programs validate" prog_gen
    (fun p -> Prog.validate p = Ok ())

let prop_roundtrip =
  QCheck.Test.make ~count:150 ~name:"print/parse round trip" prog_gen (fun p ->
      match Parser.program db (Prog.to_string p) with
      | Ok p' -> Prog.equal p p'
      | Error _ -> false)

(* The stock generator only draws strings from the spec's name lists, so
   it can never shake out printer/parser escaping bugs; this property
   plants adversarial payloads (quotes, backslashes, control characters,
   arbitrary bytes) into every string argument before round-tripping. *)
let prop_roundtrip_hostile_strings =
  let hostile =
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 12))
  in
  QCheck.Test.make ~count:400 ~name:"round trip survives hostile string payloads"
    (QCheck.make
       ~print:(fun (p, s) -> Prog.to_string p ^ "  [payload " ^ String.escaped s ^ "]")
       QCheck.Gen.(pair (QCheck.gen prog_gen) hostile))
    (fun (p, s) ->
      let str_paths =
        List.filter_map
          (fun (path, ty) ->
            match ty with Ty.Str _ -> Some path | _ -> None)
          (Prog.mutable_nodes p)
      in
      str_paths = []
      ||
      let p =
        List.fold_left (fun p path -> Prog.set p path (Value.Vstr s)) p str_paths
      in
      match Parser.program db (Prog.to_string p) with
      | Ok p' -> Prog.equal p p'
      | Error _ -> false)

let prop_get_set_roundtrip =
  QCheck.Test.make ~count:150 ~name:"set then get returns the new value"
    QCheck.(pair prog_gen (int_bound 100000))
    (fun (p, seed) ->
      let rng = Rng.create seed in
      let nodes = Prog.mutable_nodes p in
      nodes = []
      ||
      let path, ty = List.nth nodes (Rng.int rng (List.length nodes)) in
      let v = Value.random rng ty in
      let p' = Prog.set p path v in
      match ty with
      | Ty.Len _ -> true (* lengths are recomputed *)
      | _ -> Value.equal (Prog.get p' path) v || Prog.validate p' = Ok ())

let prop_set_preserves_validity =
  QCheck.Test.make ~count:150 ~name:"set preserves validity"
    QCheck.(pair prog_gen (int_bound 100000))
    (fun (p, seed) ->
      let rng = Rng.create seed in
      let nodes = Prog.mutable_nodes p in
      nodes = []
      ||
      let path, ty = List.nth nodes (Rng.int rng (List.length nodes)) in
      (* resources need program-level wiring; skip them here *)
      match ty with
      | Ty.Resource _ -> true
      | _ -> Prog.validate (Prog.set p path (Value.random rng ty)) = Ok ())

let prop_remove_call_valid =
  QCheck.Test.make ~count:150 ~name:"remove_call keeps programs valid"
    QCheck.(pair prog_gen (int_bound 100000))
    (fun (p, seed) ->
      Array.length p <= 1
      ||
      let rng = Rng.create seed in
      let p' = Prog.remove_call p (Rng.int rng (Array.length p)) in
      Prog.validate p' = Ok () && Array.length p' = Array.length p - 1)

let prop_insert_call_shifts_resources =
  QCheck.Test.make ~count:150 ~name:"insert_call keeps programs valid"
    QCheck.(pair prog_gen (int_bound 100000))
    (fun (p, seed) ->
      let rng = Rng.create seed in
      let spec = List.nth (Spec.all db) (Rng.int rng (Spec.count db)) in
      let call = Prog.make_call rng spec in
      let pos = Rng.int rng (Array.length p + 1) in
      let p' = Prog.insert_call p pos call in
      Prog.validate p' = Ok () && Array.length p' = Array.length p + 1)

let test_arg_nodes_count () =
  let rng = Rng.create 5 in
  let p = Gen.program rng db () in
  Alcotest.(check int) "num_args consistent"
    (List.length (Prog.arg_nodes p))
    (Prog.num_args p);
  Alcotest.(check bool) "mutable subset" true
    (List.length (Prog.mutable_nodes p) <= Prog.num_args p)

let test_fix_lens () =
  (* A call with an explicit Len field tracking a buffer sibling. *)
  let db2 =
    Spec.make_db
      [ ("w",
         [ { Ty.fname = "buf"; fty = Ty.Ptr (Ty.Buffer { min_len = 0; max_len = 64 }) };
           { Ty.fname = "len"; fty = Ty.Len 0 } ],
         None) ]
  in
  let spec = Spec.find_exn db2 "w" in
  let call =
    { Prog.spec;
      args = [ Value.Vptr (Some (Value.Vbuf { len = 13; seed = 0 })); Value.Vlen 0 ] }
  in
  let fixed = Prog.fix_lens call in
  Alcotest.(check bool) "len recomputed" true
    (List.nth fixed.Prog.args 1 = Value.Vlen 13)

let test_parser_errors () =
  Alcotest.(check bool) "unknown syscall" true
    (Result.is_error (Parser.program db "nosuchcall(1)"));
  Alcotest.(check bool) "garbage" true (Result.is_error (Parser.program db "open(((("));
  Alcotest.(check bool) "empty program parses" true
    (match Parser.program db "" with Ok [||] -> true | _ -> false)

let prop_corpus_unique =
  QCheck.Test.make ~count:20 ~name:"generated corpus has no duplicate programs"
    QCheck.(int_bound 100000)
    (fun seed ->
      let progs = Gen.corpus (Rng.create seed) db ~size:30 in
      let hashes = List.map Prog.hash progs in
      List.length (List.sort_uniq compare hashes) = List.length hashes)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_syzlang"
    [
      ( "spec",
        [
          Alcotest.test_case "database" `Quick test_spec_db;
          Alcotest.test_case "dense ids" `Quick test_spec_ids_dense;
          Alcotest.test_case "producers" `Quick test_producers;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_name_rejected;
        ] );
      ( "value",
        [
          Alcotest.test_case "minimal conforms" `Quick test_minimal_conforms;
          Alcotest.test_case "scalar views" `Quick test_scalar_views;
        ] );
      qsuite "value-props" [ prop_default_random_conform; prop_content_hash_respects_equal ];
      ( "prog",
        [
          Alcotest.test_case "arg nodes" `Quick test_arg_nodes_count;
          Alcotest.test_case "fix_lens" `Quick test_fix_lens;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
        ] );
      qsuite "prog-props"
        [
          prop_generated_valid;
          prop_roundtrip;
          prop_roundtrip_hostile_strings;
          prop_get_set_roundtrip;
          prop_set_preserves_validity;
          prop_remove_call_valid;
          prop_insert_call_shifts_resources;
          prop_corpus_unique;
        ];
    ]
