(* Differential tests pinning the Bigarray tensor core against the
   frozen float-array core (Sp_ml.Reference). The contract is strong:
   every op performs the same IEEE operations in the same order, so
   results are required to be BIT-identical, not merely close — that is
   what keeps serialized weights and campaign results stable across the
   storage swap. The striped trainer is the one deliberate exception
   (stripes change the float association), pinned separately with a
   tolerance plus an exact repeat-determinism check. *)

module Rng = Sp_util.Rng
module Pool = Sp_util.Pool
module Tensor = Sp_ml.Tensor
module Reference = Sp_ml.Reference
module Dense = Sp_ml.Dense
module Ad = Sp_ml.Ad
module Workspace = Sp_ml.Workspace
module Serialize = Sp_ml.Serialize

let bits = Int64.bits_of_float

(* Same backing floats on both sides. *)
let pair_of_rng rng rows cols =
  let data = Array.init (rows * cols) (fun _ -> Rng.gaussian rng) in
  ( Tensor.of_array ~rows ~cols data,
    Reference.of_array ~rows ~cols (Array.copy data) )

let check_bits name (t : Tensor.t) (r : Reference.t) =
  let rows, cols = Tensor.dims t in
  if (rows, cols) <> Reference.dims r then
    Alcotest.failf "%s: shape mismatch %dx%d vs %dx%d" name rows cols
      (fst (Reference.dims r)) (snd (Reference.dims r));
  let ta = Tensor.to_array t in
  Array.iteri
    (fun i v ->
      if bits v <> bits r.Reference.data.(i) then
        Alcotest.failf "%s: element %d differs: %h vs %h" name i v
          r.Reference.data.(i))
    ta

(* ------------------------------------------------------------------ *)
(* Randomized op-by-op diff: 600 cases, random op / shapes / data.      *)
(* ------------------------------------------------------------------ *)

let ops =
  [| "add"; "sub"; "mul"; "scale"; "relu"; "matmul"; "matmul_tn";
     "matmul_nt"; "transpose"; "sum"; "frobenius"; "row" |]

let prop_ops_bit_identical =
  QCheck.Test.make ~count:600 ~name:"every Tensor op is bit-identical to Reference"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let rows = 1 + Rng.int rng 7 and cols = 1 + Rng.int rng 7 in
      let op = ops.(Rng.int rng (Array.length ops)) in
      let t_a, r_a = pair_of_rng rng rows cols in
      (match op with
      | "add" | "sub" | "mul" ->
        let t_b, r_b = pair_of_rng rng rows cols in
        let f_t, f_r =
          match op with
          | "add" -> (Tensor.add, Reference.add)
          | "sub" -> (Tensor.sub, Reference.sub)
          | _ -> (Tensor.mul, Reference.mul)
        in
        check_bits op (f_t t_a t_b) (f_r r_a r_b)
      | "scale" ->
        let s = Rng.gaussian rng in
        check_bits op (Tensor.scale s t_a) (Reference.scale s r_a)
      | "relu" ->
        let f x = Float.max 0.0 x in
        check_bits op (Tensor.map f t_a) (Reference.map f r_a)
      | "matmul" ->
        let k = 1 + Rng.int rng 7 in
        let t_b, r_b = pair_of_rng rng cols k in
        check_bits op (Tensor.matmul t_a t_b) (Reference.matmul r_a r_b)
      | "matmul_tn" ->
        let k = 1 + Rng.int rng 7 in
        let t_b, r_b = pair_of_rng rng rows k in
        check_bits op (Tensor.matmul_tn t_a t_b) (Reference.matmul_tn r_a r_b)
      | "matmul_nt" ->
        let k = 1 + Rng.int rng 7 in
        let t_b, r_b = pair_of_rng rng k cols in
        check_bits op (Tensor.matmul_nt t_a t_b) (Reference.matmul_nt r_a r_b)
      | "transpose" ->
        check_bits op (Tensor.transpose t_a) (Reference.transpose r_a)
      | "sum" ->
        if bits (Tensor.sum t_a) <> bits (Reference.sum r_a) then
          Alcotest.fail "sum differs"
      | "frobenius" ->
        if bits (Tensor.frobenius t_a) <> bits (Reference.frobenius r_a) then
          Alcotest.fail "frobenius differs"
      | "row" ->
        let i = Rng.int rng rows in
        let tr = Tensor.row t_a i and rr = Reference.row r_a i in
        Array.iteri
          (fun j v ->
            if bits (Tensor.get tr 0 j) <> bits v then
              Alcotest.fail "row view differs")
          rr
      | _ -> assert false);
      true)

(* Initializers draw from the RNG in the same (ascending) order. *)
let prop_initializers_bit_identical =
  QCheck.Test.make ~count:50 ~name:"glorot/randn draw identically"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rows = 1 + (seed mod 5) and cols = 1 + (seed mod 7) in
      check_bits "glorot"
        (Tensor.glorot (Rng.create seed) rows cols)
        (Reference.glorot (Rng.create seed) rows cols);
      check_bits "randn"
        (Tensor.randn (Rng.create (seed + 1)) 0.7 rows cols)
        (Reference.randn (Rng.create (seed + 1)) 0.7 rows cols);
      true)

(* ------------------------------------------------------------------ *)
(* End-to-end: Dense (batched) == Reference.Mlp (per-sample), exactly.  *)
(* ------------------------------------------------------------------ *)

let prop_train_bit_identical =
  QCheck.Test.make ~count:25 ~name:"Dense train == Reference.Mlp train, bit for bit"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 3) in
      let d_in = 1 + Rng.int rng 6
      and hidden = 1 + Rng.int rng 8
      and d_out = 1 + Rng.int rng 4
      and rows = 1 + Rng.int rng 6 in
      let xs = Array.init (rows * d_in) (fun _ -> Rng.gaussian rng) in
      let ts = Array.init (rows * d_out) (fun _ -> Rng.gaussian rng) in
      let x = Tensor.of_array ~rows ~cols:d_in xs
      and target = Tensor.of_array ~rows ~cols:d_out ts
      and x_r = Reference.of_array ~rows ~cols:d_in (Array.copy xs)
      and t_r = Reference.of_array ~rows ~cols:d_out (Array.copy ts) in
      let dense = Dense.create (Rng.create seed) ~d_in ~hidden ~d_out ~lr:1e-3 in
      let mlp = Reference.Mlp.create (Rng.create seed) ~d_in ~hidden ~d_out ~lr:1e-3 in
      let p = Dense.plan dense ~rows in
      for step = 1 to 20 do
        let ld = Dense.train_step dense p ~x ~target in
        let lr_ = Reference.Mlp.train_step mlp ~x:x_r ~target:t_r in
        if bits ld <> bits lr_ then
          Alcotest.failf "loss differs at step %d: %h vs %h" step ld lr_
      done;
      List.iter2 (check_bits "param") (Dense.params dense)
        (Reference.Mlp.params mlp);
      check_bits "predict"
        (Dense.predict_into dense p ~x)
        (Reference.Mlp.predict mlp ~x:x_r);
      true)

(* ------------------------------------------------------------------ *)
(* Striped training: repeat-deterministic exactly; close to jobs=1.     *)
(* ------------------------------------------------------------------ *)

let test_striped_determinism () =
  let d_in = 5 and hidden = 9 and d_out = 3 and rows = 12 in
  let rng = Rng.create 17 in
  let xs = Array.init (rows * d_in) (fun _ -> Rng.gaussian rng) in
  let ts = Array.init (rows * d_out) (fun _ -> Rng.gaussian rng) in
  let x = Tensor.of_array ~rows ~cols:d_in xs
  and target = Tensor.of_array ~rows ~cols:d_out ts in
  let run jobs =
    let m = Dense.create (Rng.create 5) ~d_in ~hidden ~d_out ~lr:1e-3 in
    let losses =
      if jobs = 1 then begin
        let p = Dense.plan m ~rows in
        List.init 30 (fun _ -> Dense.train_step m p ~x ~target)
      end
      else
        Pool.with_pool ~workers:jobs (fun pool ->
            let plans = Dense.stripe_plans m ~rows ~jobs in
            List.init 30 (fun _ -> Dense.train_step_striped m pool plans ~x ~target))
    in
    (losses, List.map Tensor.to_array (Dense.params m))
  in
  let l2, p2 = run 3 in
  let l2', p2' = run 3 in
  Alcotest.(check bool) "striped repeat: losses identical" true (l2 = l2');
  List.iter2
    (fun a b -> Alcotest.(check bool) "striped repeat: params identical" true (a = b))
    p2 p2';
  (* vs jobs=1: different float association, so tolerance, not bits. *)
  let _, p1 = run 1 in
  List.iter2
    (fun a b ->
      Array.iteri
        (fun i v ->
          if Float.abs (v -. b.(i)) > 1e-9 *. (1.0 +. Float.abs v) then
            Alcotest.failf "striped vs sequential diverged: %g vs %g" v b.(i))
        a)
    p2 p1

(* ------------------------------------------------------------------ *)
(* Serialization: format golden + exact round-trip.                     *)
(* ------------------------------------------------------------------ *)

(* The on-disk format must not drift with the storage swap: weights
   persisted by the float-array core still load. This golden was
   produced by the pre-Bigarray serializer. *)
let golden_params () =
  [ Ad.param (Tensor.of_array ~rows:2 ~cols:3
        [| 1.5; -0.25; 3.0; 0.1; -0.0; 1e-9 |]);
    Ad.param (Tensor.of_array ~rows:1 ~cols:2 [| Float.pi; -1e22 |]) ]

let test_serialize_golden () =
  let s = Serialize.params_to_string (golden_params ()) in
  let expected =
    "sp-ml-params v1\n\
     count 2\n\
     tensor 2 3\n\
     0x1.8p+0 -0x1p-2 0x1.8p+1\n\
     0x1.999999999999ap-4 -0x0p+0 0x1.12e0be826d695p-30\n\
     tensor 1 2\n\
     0x1.921fb54442d18p+1 -0x1.0f0cf064dd592p+73\n"
  in
  Alcotest.(check string) "serialized form is stable" expected s

let test_serialize_roundtrip () =
  let ps = golden_params () in
  let s = Serialize.params_to_string ps in
  let fresh =
    List.map (fun p -> Ad.param (Tensor.create
        (fst (Tensor.dims (Ad.value p))) (snd (Tensor.dims (Ad.value p))))) ps
  in
  (match Serialize.load_params s fresh with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load_params: %s" e);
  List.iter2
    (fun a b ->
      let va = Tensor.to_array (Ad.value a) and vb = Tensor.to_array (Ad.value b) in
      Array.iteri
        (fun i v ->
          if bits v <> bits vb.(i) then Alcotest.fail "round-trip not exact")
        va)
    ps fresh

(* ------------------------------------------------------------------ *)
(* Workspace: steady-state reuse, no growth, escape discipline.         *)
(* ------------------------------------------------------------------ *)

let test_workspace_reuse () =
  let ws = Workspace.create () in
  let work () =
    Workspace.with_active ws (fun () ->
        let a = Tensor.create 4 6 in
        let b = Tensor.make 4 6 1.0 in
        let c = Tensor.add a b in
        ignore (Tensor.matmul c (Tensor.create 6 3));
        Workspace.tick ws)
  in
  (* Warm up, then the footprint must stay flat. *)
  for _ = 1 to 3 do work () done;
  let retained = Workspace.retained ws
  and elements = Workspace.retained_elements ws in
  for _ = 1 to 100 do work () done;
  Alcotest.(check int) "buffer count flat" retained (Workspace.retained ws);
  Alcotest.(check int) "element count flat" elements
    (Workspace.retained_elements ws);
  (* Distinct buffers within a generation; reused across generations. *)
  Workspace.tick ws;
  let b1 = Workspace.acquire ws 24 in
  let b2 = Workspace.acquire ws 24 in
  Alcotest.(check bool) "two acquires differ" false (b1 == b2);
  Workspace.tick ws;
  let b1' = Workspace.acquire ws 24 in
  Alcotest.(check bool) "recycled after tick" true (b1 == b1');
  (* Initializers stay off the workspace: parameters must survive ticks. *)
  Workspace.with_active ws (fun () ->
      let p = Tensor.glorot (Rng.create 3) 4 4 in
      let before = Tensor.to_array p in
      Workspace.tick ws;
      let (_ : Tensor.t) = Tensor.create 4 4 in
      Alcotest.(check bool) "glorot unaffected by tick" true
        (before = Tensor.to_array p))

let is_ambient w = match Workspace.ambient () with Some a -> a == w | None -> false

let test_workspace_scoped_nesting () =
  let w1 = Workspace.create () and w2 = Workspace.create () in
  Workspace.with_active w1 (fun () ->
      Alcotest.(check bool) "w1 ambient" true (is_ambient w1);
      Workspace.with_active w2 (fun () ->
          Alcotest.(check bool) "w2 shadows" true (is_ambient w2));
      Alcotest.(check bool) "w1 restored" true (is_ambient w1);
      Workspace.without (fun () ->
          Alcotest.(check bool) "without clears" true (Workspace.ambient () = None)));
  Alcotest.(check bool) "cleared at exit" true (Workspace.ambient () = None);
  (* Restores even when the body raises. *)
  (try Workspace.with_active w1 (fun () -> failwith "boom") with _ -> ());
  Alcotest.(check bool) "restored after raise" true (Workspace.ambient () = None)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sp_ml differential"
    [ ("ops", qsuite [ prop_ops_bit_identical; prop_initializers_bit_identical ]);
      ("train", qsuite [ prop_train_bit_identical ]);
      ("striped", [ Alcotest.test_case "determinism" `Quick test_striped_determinism ]);
      ("serialize",
        [ Alcotest.test_case "golden" `Quick test_serialize_golden;
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip ]);
      ("workspace",
        [ Alcotest.test_case "reuse" `Quick test_workspace_reuse;
          Alcotest.test_case "nesting" `Quick test_workspace_scoped_nesting ]) ]
