#!/bin/sh
# Telemetry-plane scrape smoke: run the example roster through `serve`
# twice — once with the exporter armed (--listen 0 + event log) and once
# unarmed — scrape the live plane mid-run with `snowplow top --once
# --json --check` (valid Prometheus exposition carrying the scheduler and
# per-tenant families, well-shaped /health and /tenants), validate the
# exported trace/timeseries with `stats --check`, and assert the armed
# run changed nothing: the machine-readable --summary-json documents and
# every tenant snapshot must be byte-identical across the two runs.
#
# The roster is expected to contain a snowplow tenant and a fault plan
# may be supplied, so the scrape also carries the funnel + breaker
# families — the telemetry reads that are easiest to get wrong (they
# sample every tenant's lane at every barrier, where a mutating read
# would perturb the very bytes the identity check pins).
#
# Usage: serve_scrape_smoke.sh CLI_EXE TENANTS_JSON [FAULT_PLAN]
set -eu

cli="$1"
roster="$2"
fault_plan="${3:-}"
plan_args=""
if [ -n "$fault_plan" ]; then
  plan_args="--fault-plan $fault_plan"
fi
tmp="${TMPDIR:-/tmp}/snowplow-ci-scrape"
rm -rf "$tmp"
mkdir -p "$tmp"

echo "== armed run (exporter + event log) =="
# shellcheck disable=SC2086
"$cli" serve --tenants "$roster" --workers 2 $plan_args \
  --snapshot-root "$tmp/armed" \
  --listen 0 --listen-port-file "$tmp/port" \
  --events "$tmp/events.jsonl" \
  --summary-json "$tmp/armed-summary.json" \
  --trace "$tmp/armed-trace.json" \
  --timeseries "$tmp/armed-timeseries.jsonl" \
  >"$tmp/armed.out" 2>&1 &
serve_pid=$!

# The port file appears once the exporter is bound, just before the
# scheduler starts admitting slices.
tries=0
while [ ! -s "$tmp/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 600 ]; then
    echo "FAIL: serve never wrote its port file" >&2
    cat "$tmp/armed.out" >&2 || true
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "FAIL: serve exited before binding its exporter" >&2
    cat "$tmp/armed.out" >&2 || true
    exit 1
  fi
  sleep 0.2
done
port="$(cat "$tmp/port")"

echo "== live scrape (snowplow top --once --json --check) =="
# --retry-for also covers the window before the scheduler's first
# barrier publication fills in the scheduler/tenant metric families.
"$cli" top --once --json --check --ascii \
  --connect "127.0.0.1:$port" --retry-for 60 >"$tmp/top.json"

if ! wait "$serve_pid"; then
  echo "FAIL: armed serve run failed" >&2
  cat "$tmp/armed.out" >&2 || true
  exit 1
fi

echo "== scrape carries the per-tenant / funnel / breaker families =="
grep -q 'snowplow_tenant_state' "$tmp/top.json"
grep -q 'snowplow_tenant_executions' "$tmp/top.json"
if [ -n "$fault_plan" ]; then
  grep -q 'snowplow_funnel_queue_depth' "$tmp/top.json"
  grep -q 'snowplow_breaker_state' "$tmp/top.json"
fi

echo "== structured event log carries the run =="
grep -q '"kind":"scheduler.start"' "$tmp/events.jsonl"
grep -q '"kind":"scheduler.finish"' "$tmp/events.jsonl"

echo "== exported telemetry artifacts are structurally valid =="
quarantine_span=""
if [ -n "$fault_plan" ]; then
  # The fault plan kills an epoch, so the failure-handling span must be
  # in the trace (the tenant retries and the run still exits 0 above).
  quarantine_span="--expect-span scheduler.quarantine"
fi
# shellcheck disable=SC2086
"$cli" stats --check \
  --trace "$tmp/armed-trace.json" \
  --timeseries "$tmp/armed-timeseries.jsonl" \
  --expect-span scheduler.slice --expect-span shard.epoch \
  --expect-span pool.task $quarantine_span

echo "== unarmed run (no exporter, no event log) =="
# shellcheck disable=SC2086
"$cli" serve --tenants "$roster" --workers 2 $plan_args \
  --snapshot-root "$tmp/unarmed" \
  --summary-json "$tmp/unarmed-summary.json" >"$tmp/unarmed.out" 2>&1

echo "== byte identity: armed == unarmed =="
cmp "$tmp/armed-summary.json" "$tmp/unarmed-summary.json"
diff -r "$tmp/armed" "$tmp/unarmed"

echo "serve scrape smoke: OK (scraped 127.0.0.1:$port)"
