#!/bin/sh
# CI entry point: full build + typecheck + test suite, then verify the
# working tree stayed clean (no build artifacts or generated files leaked
# outside _build/, which .gitignore must keep invisible to git).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @ci (default + @check + runtest) =="
dune build @ci

echo "== working tree hygiene =="
status="$(git status --short)"
if printf '%s\n' "$status" | grep -q '_build'; then
  echo "FAIL: _build/ artifacts visible to git:" >&2
  printf '%s\n' "$status" >&2
  exit 1
fi

echo "ci: OK"
