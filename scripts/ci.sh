#!/bin/sh
# CI entry point: full build + typecheck + test suite + the e11 executor
# smoke test (bench/main.exe e11 in SNOWPLOW_QUICK mode, via the @ci
# alias) + the telemetry smoke-run (a short 2-job `snowplow fuzz` with
# --trace/--timeseries, validated by `snowplow stats --check`, which exits
# nonzero on malformed artifacts or missing span/series names), then
# verify the working tree stayed clean (no build artifacts or generated
# files leaked outside _build/, which .gitignore must keep invisible to
# git).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @ci (default + @check + runtest + e11 + telemetry smoke) =="
dune build @ci

echo "== working tree hygiene =="
status="$(git status --short)"
if printf '%s\n' "$status" | grep -q '_build'; then
  echo "FAIL: _build/ artifacts visible to git:" >&2
  printf '%s\n' "$status" >&2
  exit 1
fi

echo "ci: OK"
