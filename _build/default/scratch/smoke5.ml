let () =
  let t0 = Unix.gettimeofday () in
  let tick name = Printf.printf "[%6.1fs] %s\n%!" (Unix.gettimeofday () -. t0) name in
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let gen_bases = Sp_syzlang.Gen.corpus rng db ~size:80 in
  let warm =
    let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = gen_bases; seed = 3; duration = 3600.0 } in
    Sp_fuzz.Campaign.run (Sp_fuzz.Vm.create ~seed:2 k) (Sp_fuzz.Strategy.syzkaller db) cfg in
  let corpus_bases = Sp_fuzz.Corpus.entries warm.Sp_fuzz.Campaign.corpus
    |> List.map (fun (e : Sp_fuzz.Corpus.entry) -> e.prog)
    |> List.filteri (fun i _ -> i < 120) in
  let bases = gen_bases @ corpus_bases in
  let split = Snowplow.Dataset.collect k ~bases in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let _ = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  tick "trained";
  (* campaigns: same fresh seeds for both systems *)
  let seed_rng = Sp_util.Rng.create 99 in
  let seeds = Sp_syzlang.Gen.corpus seed_rng db ~size:100 in
  let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11 } in
  let run_syz () =
    let vm = Sp_fuzz.Vm.create ~seed:1 k in
    Sp_fuzz.Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) cfg in
  let run_snow () =
    let vm = Sp_fuzz.Vm.create ~seed:1 k in
    let inference = Snowplow.Inference.create ~kernel:k ~block_embs model in
    Sp_fuzz.Campaign.run vm (Snowplow.Hybrid.strategy ~inference k) cfg in
  let rs = run_syz () in
  tick "syzkaller 24h";
  let rn = run_snow () in
  tick "snowplow 24h";
  let final (r : Sp_fuzz.Campaign.report) = r.final_edges in
  Printf.printf "Syzkaller: edges %d execs %d | Snowplow: edges %d execs %d\n"
    (final rs) rs.executions (final rn) rn.executions;
  Printf.printf "improvement: %.1f%%\n" (100. *. (float_of_int (final rn) /. float_of_int (final rs) -. 1.));
  (match Sp_fuzz.Campaign.time_to_edges rn (final rs) with
   | Some t -> Printf.printf "Snowplow reached Syzkaller@24h coverage at %.1f h (speedup %.1fx)\n" (t /. 3600.) (86400. /. t)
   | None -> print_endline "Snowplow did not reach Syzkaller@24h");
  List.iter (fun ((s : Sp_fuzz.Campaign.snapshot), (n : Sp_fuzz.Campaign.snapshot)) ->
    if int_of_float s.s_time mod 14400 = 0 then
      Printf.printf "  t=%5.1fh syz=%d snow=%d\n" (s.s_time /. 3600.) s.s_edges n.s_edges)
    (List.combine rs.series rn.series);
  let show name (r : Sp_fuzz.Campaign.report) =
    Printf.printf "%s origins:\n" name;
    List.iter (fun (o, (e, ne)) -> Printf.printf "  %-10s execs=%8d new_edges=%5d (%.2f/1k)\n" o e ne (1000. *. float_of_int ne /. float_of_int (max 1 e))) r.origin_stats in
  show "Syzkaller" rs; show "Snowplow" rn
