(* Phase-2 conditions: guided vs random arg mutation measured on a real
   late-campaign corpus against global coverage. *)
let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let bases = Sp_syzlang.Gen.corpus rng db ~size:150 in
  let split = Snowplow.Dataset.collect k ~bases in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let _ = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 99) db ~size:100 in
  let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11; duration = 21600.0 } in
  let vm = Sp_fuzz.Vm.create ~seed:1 k in
  let r = Sp_fuzz.Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) cfg in
  Printf.printf "6h syzkaller: edges %d, corpus %d\n%!" r.final_edges r.corpus_size;
  let covered = r.covered_blocks in
  let inference = Snowplow.Inference.create ~kernel:k ~block_embs model in
  let engine = Sp_mutation.Engine.create db in
  let entries = Sp_fuzz.Corpus.entries r.corpus in
  (* entries that still expose uncovered frontier *)
  let rng2 = Sp_util.Rng.create 4242 in
  let with_targets = List.filter_map (fun (e : Sp_fuzz.Corpus.entry) ->
    let t = Snowplow.Hybrid.pick_targets rng2 k ~covered e ~max_targets:12 in
    if t = [] then None else Some (e, t)) entries in
  Printf.printf "corpus entries with uncovered frontier: %d / %d\n%!" (List.length with_targets) (List.length entries);
  let sample = List.filteri (fun i _ -> i < 40) with_targets in
  let measure name localize =
    let rng = Sp_util.Rng.create 777 in
    let total = ref 0 and succ = ref 0 and dup = ref 0 in
    let seen = Hashtbl.create 1024 in
    List.iter (fun ((e : Sp_fuzz.Corpus.entry), targets) ->
      let base = e.prog in
      match localize rng base targets with
      | [] -> ()
      | paths ->
        for _ = 1 to 100 do
          let chosen = Sp_util.Rng.sample rng (Array.of_list paths) (1 + Sp_util.Rng.int rng 2) in
          let m = Sp_mutation.Engine.mutate_args_at engine rng base chosen in
          incr total;
          if Hashtbl.mem seen (Sp_syzlang.Prog.hash m) then incr dup
          else begin
            Hashtbl.add seen (Sp_syzlang.Prog.hash m) ();
            let res = Sp_kernel.Kernel.execute k m in
            if res.crash = None then begin
              let fresh = ref 0 in
              Sp_util.Bitset.iter (fun b -> if not (Sp_util.Bitset.mem covered b) then incr fresh) res.covered;
              if !fresh > 0 then incr succ
            end
          end
        done) sample;
    Printf.printf "%-12s: %d globally-new / %d (%.1f/1k), dups %d\n%!" name !succ !total
      (1000. *. float_of_int !succ /. float_of_int (max 1 !total)) !dup
  in
  measure "random" (fun rng base _ -> (Sp_mutation.Engine.syzkaller_arg_localizer ()) rng base);
  measure "pmm" (fun _ base targets -> Snowplow.Inference.predict_now inference base ~targets);
  (* how many paths does pmm predict on these? *)
  let lens = List.map (fun ((e : Sp_fuzz.Corpus.entry), t) ->
    float_of_int (List.length (Snowplow.Inference.predict_now inference e.prog ~targets:t))) sample in
  Printf.printf "pmm predicted paths per query: mean %.1f\n" (Sp_util.Stats.mean lens)
