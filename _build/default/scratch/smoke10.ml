(* Isolated phase-1 conditions with GLOBAL novelty: union of seed coverage,
   guided (various target caps) vs random. *)
module QG = Snowplow.Query_graph
let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let bases = Sp_syzlang.Gen.corpus rng db ~size:150 in
  let split = Snowplow.Dataset.collect k ~bases in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let _ = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 99) db ~size:100 in
  let covered = Sp_util.Bitset.create (Sp_kernel.Kernel.num_blocks k) in
  let execs = List.map (fun p -> (p, Sp_kernel.Kernel.execute k p)) seeds in
  List.iter (fun (_, (r : Sp_kernel.Kernel.result)) ->
    ignore (Sp_util.Bitset.union_into ~dst:covered r.covered)) execs;
  Printf.printf "seed union coverage: %d blocks\n%!" (Sp_util.Bitset.cardinal covered);
  let inference = Snowplow.Inference.create ~kernel:k ~block_embs model in
  let engine = Sp_mutation.Engine.create db in
  let ok = List.filter (fun (_, (r : Sp_kernel.Kernel.result)) -> r.crash = None) execs in
  let frontier_sizes = List.map (fun ((_p), (r : Sp_kernel.Kernel.result)) ->
    let f = QG.frontier_blocks k r in
    float_of_int (List.length (List.filter (fun (b,_) -> not (Sp_util.Bitset.mem covered b)) f))) ok in
  Printf.printf "avg globally-uncovered frontier per seed: %.1f\n%!" (Sp_util.Stats.mean frontier_sizes);
  let measure name localize =
    let rng = Sp_util.Rng.create 777 in
    let total = ref 0 and succ = ref 0 in
    List.iter (fun (base, (r0 : Sp_kernel.Kernel.result)) ->
      match localize rng base r0 with
      | [] -> ()
      | paths ->
        for _ = 1 to 60 do
          let chosen = Sp_util.Rng.sample rng (Array.of_list paths) (1 + Sp_util.Rng.int rng 2) in
          let m = Sp_mutation.Engine.mutate_args_at engine rng base chosen in
          let res = Sp_kernel.Kernel.execute k m in
          incr total;
          if res.crash = None && Sp_util.Bitset.diff_cardinal res.covered covered > 0 then incr succ
        done) ok;
    Printf.printf "%-14s: %d/%d globally-new (%.1f/1k)\n%!" name !succ !total
      (1000. *. float_of_int !succ /. float_of_int (max 1 !total))
  in
  let targets_for (r0 : Sp_kernel.Kernel.result) cap =
    QG.frontier_blocks k r0 |> List.filter_map (fun (b,_) ->
      if Sp_util.Bitset.mem covered b then None else Some b)
    |> List.filteri (fun i _ -> i < cap) in
  measure "random" (fun rng base _ -> (Sp_mutation.Engine.syzkaller_arg_localizer ()) rng base);
  measure "pmm cap12" (fun _ base r0 -> Snowplow.Inference.predict_now inference base ~targets:(targets_for r0 12));
  measure "pmm cap40" (fun _ base r0 -> Snowplow.Inference.predict_now inference base ~targets:(targets_for r0 40));
  (* how many predicted paths? *)
  let lens cap = Sp_util.Stats.mean (List.map (fun (base, r0) ->
    float_of_int (List.length (Snowplow.Inference.predict_now inference base ~targets:(targets_for r0 cap)))) ok) in
  Printf.printf "predicted paths: cap12 %.1f cap40 %.1f\n" (lens 12) (lens 40)
