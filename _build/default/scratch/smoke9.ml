let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  (* training bases: half random generation, half evolved corpus entries
     from a short Syzkaller warmup (like the paper's Syzbot-derived corpus) *)
  let gen_bases = Sp_syzlang.Gen.corpus rng db ~size:80 in
  let warm =
    let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = gen_bases; seed = 3; duration = 3600.0 } in
    Sp_fuzz.Campaign.run (Sp_fuzz.Vm.create ~seed:2 k) (Sp_fuzz.Strategy.syzkaller db) cfg in
  let corpus_bases = Sp_fuzz.Corpus.entries warm.Sp_fuzz.Campaign.corpus
    |> List.map (fun (e : Sp_fuzz.Corpus.entry) -> e.prog)
    |> List.filteri (fun i _ -> i < 120) in
  let bases = gen_bases @ corpus_bases in
  Printf.printf "training bases: %d (gen %d + corpus %d)\n%!" (List.length bases) (List.length gen_bases) (List.length corpus_bases);
  let split = Snowplow.Dataset.collect k ~bases in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let _ = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 99) db ~size:100 in
  let run dur strat =
    let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11; duration = dur; snapshot_every = 600.0 } in
    let vm = Sp_fuzz.Vm.create ~seed:1 k in
    Sp_fuzz.Campaign.run vm strat cfg in
  List.iter (fun dur ->
    let rs = run dur (Sp_fuzz.Strategy.syzkaller db) in
    let inference = Snowplow.Inference.create ~kernel:k ~block_embs model in
    let rn = run dur (Snowplow.Hybrid.strategy ~inference k) in
    Printf.printf "dur %5.1fh: syz edges %d corpus %d | snow edges %d corpus %d (served %d hits %d)\n%!"
      (dur /. 3600.) rs.Sp_fuzz.Campaign.final_edges rs.corpus_size rn.final_edges rn.corpus_size
      (Snowplow.Inference.served inference) (Snowplow.Inference.cache_hits inference);
    let pr name (r : Sp_fuzz.Campaign.report) =
      Printf.printf "  %s: " name;
      List.iter (fun (o,(e,ne)) -> Printf.printf "%s %d/%dk=%.2f  " o ne (e/1000) (1000. *. float_of_int ne /. float_of_int (max 1 e))) r.origin_stats;
      print_newline () in
    pr "syz " rs; pr "snow" rn)
    [ 1800.; 7200. ]
