let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  Printf.printf "kernel 6.8: %d blocks, %d edges, %d syscalls, %d bugs\n"
    (Sp_kernel.Kernel.num_blocks k)
    (Sp_cfg.Cfg.num_edges (Sp_kernel.Kernel.cfg k))
    (Sp_syzlang.Spec.count db)
    (Array.length (Sp_kernel.Kernel.bugs k));
  let rng = Sp_util.Rng.create 42 in
  let progs = Sp_syzlang.Gen.corpus rng db ~size:200 in
  let args = List.map (fun p -> float_of_int (Sp_syzlang.Prog.num_args p)) progs in
  Printf.printf "corpus: %d programs, avg args per test %.1f\n" (List.length progs) (Sp_util.Stats.mean args);
  let total = Sp_util.Bitset.create (Sp_kernel.Kernel.num_blocks k) in
  let crashes = ref 0 in
  List.iter (fun p ->
    (match Sp_syzlang.Prog.validate p with Ok () -> () | Error e -> Printf.printf "INVALID: %s\n" e);
    let r = Sp_kernel.Kernel.execute k p in
    (match r.Sp_kernel.Kernel.crash with Some _ -> incr crashes | None -> ());
    ignore (Sp_util.Bitset.union_into ~dst:total r.Sp_kernel.Kernel.covered)) progs;
  Printf.printf "covered blocks by corpus: %d; crashes: %d\n" (Sp_util.Bitset.cardinal total) !crashes;
  let p = List.hd progs in
  print_string (Sp_syzlang.Prog.to_string p);
  let r = Sp_kernel.Kernel.execute k p in
  List.iter (fun tr -> Printf.printf "call %d: %d blocks\n" tr.Sp_kernel.Kernel.call_idx (List.length tr.Sp_kernel.Kernel.visited)) r.Sp_kernel.Kernel.traces;
  (* roundtrip *)
  let s = Sp_syzlang.Prog.to_string p in
  (match Sp_syzlang.Parser.program db s with
   | Ok p2 -> Printf.printf "roundtrip ok: %b\n" (Sp_syzlang.Prog.equal p p2)
   | Error e -> Printf.printf "parse error: %s\n" e);
  (* versions *)
  let k9 = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.9" in
  Printf.printf "kernel 6.9: %d blocks, %d bugs\n" (Sp_kernel.Kernel.num_blocks k9) (Array.length (Sp_kernel.Kernel.bugs k9))
