let () =
  let t0 = Unix.gettimeofday () in
  let tick name = Printf.printf "[%6.1fs] %s\n%!" (Unix.gettimeofday () -. t0) name in
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let bases = Sp_syzlang.Gen.corpus rng db ~size:150 in
  tick "kernel + corpus";
  let rate = Snowplow.Dataset.successful_mutation_rate k ~bases:(List.filteri (fun i _ -> i < 20) bases) in
  Printf.printf "successful mutations per 1000: %.1f\n" rate;
  tick "rate";
  let split = Snowplow.Dataset.collect k ~bases in
  List.iter (fun (name, v) -> Printf.printf "  %-36s %.1f\n" name v) (Snowplow.Dataset.stats split);
  tick "dataset";
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  Printf.printf "masked LM accuracy: %.2f\n" (Snowplow.Encoder.masked_lm_accuracy enc k ~samples:500 ~seed:3);
  tick "encoder";
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  tick "embed";
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  Printf.printf "PMM parameters: %d\n" (Snowplow.Pmm.num_parameters model);
  let hist = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  List.iter (fun (p : Snowplow.Trainer.progress) -> Printf.printf "  step %5d loss %.4f\n" p.step p.loss)
    (List.filteri (fun i _ -> i mod 4 = 0) hist);
  Printf.printf "threshold: %.2f\n" (Snowplow.Pmm.threshold model);
  tick "train";
  let scores = Snowplow.Trainer.evaluate model ~block_embs split.Snowplow.Dataset.eval in
  Format.printf "PMM   : %a@." Sp_ml.Metrics.pp scores;
  let rand = Snowplow.Trainer.random_baseline ~k:8 ~seed:4 split.Snowplow.Dataset.eval in
  Format.printf "Rand.8: %a@." Sp_ml.Metrics.pp rand;
  tick "eval"
