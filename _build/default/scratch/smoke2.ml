let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let seeds = Sp_syzlang.Gen.corpus rng db ~size:100 in
  let vm = Sp_fuzz.Vm.create ~seed:1 k in
  let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11 } in
  let t0 = Unix.gettimeofday () in
  let r = Sp_fuzz.Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) cfg in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "real time: %.1fs; executions: %d\n" dt r.Sp_fuzz.Campaign.executions;
  Printf.printf "final edges %d / %d, blocks %d / %d, corpus %d\n"
    r.Sp_fuzz.Campaign.final_edges (Sp_cfg.Cfg.num_edges (Sp_kernel.Kernel.cfg k))
    r.Sp_fuzz.Campaign.final_blocks (Sp_kernel.Kernel.num_blocks k)
    r.Sp_fuzz.Campaign.corpus_size;
  Printf.printf "crashes: %d (new %d, known %d)\n"
    (List.length r.Sp_fuzz.Campaign.crashes)
    (List.length r.Sp_fuzz.Campaign.new_crashes)
    (List.length r.Sp_fuzz.Campaign.known_crashes);
  List.iter (fun (s : Sp_fuzz.Campaign.snapshot) ->
    if int_of_float s.s_time mod 14400 = 0 then
      Printf.printf "  t=%5.1fh edges=%d blocks=%d crashes=%d execs=%d\n"
        (s.s_time /. 3600.) s.s_edges s.s_blocks s.s_crashes s.s_execs)
    r.Sp_fuzz.Campaign.series
