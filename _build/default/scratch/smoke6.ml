module QG = Snowplow.Query_graph
let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let bases = Sp_syzlang.Gen.corpus rng db ~size:150 in
  let split = Snowplow.Dataset.collect k ~bases in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let _ = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  Printf.printf "trained; eval F1: ";
  Format.printf "%a@." Sp_ml.Metrics.pp (Snowplow.Trainer.evaluate model ~block_embs split.Snowplow.Dataset.eval);
  let engine = Sp_mutation.Engine.create db in
  let inference = Snowplow.Inference.create ~kernel:k ~block_embs model in
  (* fresh bases not in training *)
  let fresh = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 555) db ~size:40 in
  let rate name bases localize =
    let rng = Sp_util.Rng.create 777 in
    let total = ref 0 and succ = ref 0 in
    List.iter (fun base ->
      let r0 = Sp_kernel.Kernel.execute k base in
      if r0.Sp_kernel.Kernel.crash = None then begin
        (* global covered = base coverage for this test (isolated) *)
        for _ = 1 to 100 do
          match localize rng base r0 with
          | [] -> ()
          | paths ->
            let chosen = Sp_util.Rng.sample rng (Array.of_list paths) (1 + Sp_util.Rng.int rng 2) in
            let m = Sp_mutation.Engine.mutate_args_at engine rng base chosen in
            let r = Sp_kernel.Kernel.execute k m in
            incr total;
            if r.Sp_kernel.Kernel.crash = None &&
               Sp_util.Bitset.diff_cardinal r.Sp_kernel.Kernel.covered r0.Sp_kernel.Kernel.covered > 0
            then incr succ
        done
      end) bases;
    Printf.printf "%-18s: %d/%d successful (%.1f per 1000)\n%!" name !succ !total
      (1000. *. float_of_int !succ /. float_of_int (max 1 !total))
  in
  let random_loc rng base _r0 = (Sp_mutation.Engine.syzkaller_arg_localizer () ) rng base in
  let pmm_loc rng base r0 =
    let frontier = QG.frontier_blocks k r0 |> List.map fst in
    let targets = if List.length frontier <= 12 then frontier else Sp_util.Rng.sample rng (Array.of_list frontier) 12 in
    Snowplow.Inference.predict_now inference base ~targets
  in
  rate "random args" fresh random_loc;
  rate "pmm args" fresh pmm_loc
