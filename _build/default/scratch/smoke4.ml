(* Probe: does "arg sig matches a target-via sig" predict the gold labels? *)
module QG = Snowplow.Query_graph
let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let bases = Sp_syzlang.Gen.corpus rng db ~size:80 in
  let config = { Snowplow.Dataset.default_config with max_args_per_mutation = 1 } in
  let split = Snowplow.Dataset.collect ~config k ~bases in
  Printf.printf "examples: train %d eval %d\n"
    (Array.length split.Snowplow.Dataset.train) (Array.length split.Snowplow.Dataset.eval);
  (* per-example oracle: predict mutable args whose detail_sig is among via sigs of targets *)
  let all = Array.append split.Snowplow.Dataset.train split.Snowplow.Dataset.eval in
  let scores = Array.to_list all |> List.map (fun (ex : Snowplow.Dataset.example) ->
    let g = ex.graph in
    (* via blocks of targets *)
    let target_idx = Hashtbl.create 8 in
    Array.iteri (fun i n -> match n with QG.Target_block _ -> Hashtbl.add target_idx i () | _ -> ()) g.nodes;
    let via_blocks = Array.to_list g.edges |> List.filter_map (fun (s,d,kind) ->
      if kind = QG.Cf_frontier && Hashtbl.mem target_idx d then
        (match g.nodes.(s) with QG.Covered_block b -> Some b | _ -> None)
      else None) in
    (* sig of via blocks: find opsig token in block tokens *)
    let sig_of_block b =
      let toks = (Sp_kernel.Kernel.block k b).Sp_kernel.Ir.tokens in
      Array.to_list toks |> List.filter (fun t -> t > 22 && t < 22 + 97) in
    let via_sigs = List.concat_map sig_of_block via_blocks in
    let pred = Array.to_list g.nodes |> List.filter_map (fun n -> match n with
      | QG.Arg { path; detail_sig; mutable_node = true; _ } when List.mem (detail_sig + 23) via_sigs -> Some path
      | _ -> None) in
    Sp_ml.Metrics.score ~compare:Sp_syzlang.Prog.path_compare ~pred ~gold:ex.mutated_args) in
  Format.printf "sig-match oracle: %a@." Sp_ml.Metrics.pp (Sp_ml.Metrics.mean scores);
  (* how many gold args per example now *)
  let avg = Sp_util.Stats.mean (Array.to_list all |> List.map (fun ex -> float_of_int (List.length ex.Snowplow.Dataset.mutated_args))) in
  Printf.printf "avg gold args: %.2f\n" avg
