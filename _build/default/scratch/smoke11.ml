(* Oracle localizer: ground-truth gating args for targets. *)
module K = Sp_kernel.Kernel
module Ir = Sp_kernel.Ir
module QG = Snowplow.Query_graph

let oracle_paths k (base : Sp_syzlang.Prog.t) targets =
  let cfgk = K.cfg k in
  List.concat_map (fun tgt ->
    (* find via conds: predecessors with Cond term *)
    List.concat_map (fun via ->
      match (K.block k via).Ir.term with
      | Ir.Cond { pred; _ } ->
        let sys = (K.block k tgt).Ir.sys_id in
        let calls = Array.to_list (Array.mapi (fun i (c : Sp_syzlang.Prog.call) ->
          if c.spec.Sp_syzlang.Spec.sys_id = sys then Some i else None) base) |> List.filter_map Fun.id in
        (match pred with
         | Ir.Arg { path; _ } -> List.map (fun ci -> { Sp_syzlang.Prog.call = ci; arg = path }) calls
         | Ir.Res_valid { path; _ } -> List.map (fun ci -> { Sp_syzlang.Prog.call = ci; arg = path }) calls
         | Ir.Res_state { path; _ } ->
           (* gating arg is the producer's mode-feeding arg; approximate with the resource arg itself plus producer flags args *)
           List.concat_map (fun ci ->
             let self = { Sp_syzlang.Prog.call = ci; arg = path } in
             match Sp_syzlang.Prog.get base self with
             | Sp_syzlang.Value.Vres i when i >= 0 ->
               let pnodes = Sp_syzlang.Prog.mutable_nodes base |> List.filter (fun ((p : Sp_syzlang.Prog.path), ty) ->
                 p.call = i && (match ty with Sp_syzlang.Ty.Flags _ | Sp_syzlang.Ty.Enum _ -> true | _ -> false)) in
               self :: List.map fst pnodes
             | _ -> [ self ]
             | exception _ -> [ self ]) calls)
      | _ -> []) (Sp_cfg.Cfg.preds cfgk tgt))
    targets
  |> List.sort_uniq Sp_syzlang.Prog.path_compare

let () =
  let k = K.linux_like ~seed:7 ~version:"6.8" in
  let db = K.spec_db k in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 99) db ~size:100 in
  let engine = Sp_mutation.Engine.create db in
  let oracle_strategy =
    let propose rng ~now:_ ~covered corpus (entry : Sp_fuzz.Corpus.entry) =
      let targets = Snowplow.Hybrid.pick_targets rng k ~covered entry ~max_targets:40 in
      let paths = oracle_paths k entry.prog targets
                  |> List.filter (fun p -> match Sp_syzlang.Prog.get entry.prog p with _ -> true | exception _ -> false) in
      let guided = Snowplow.Hybrid.guided_mutants rng engine entry.prog paths ~per_arg:1 in
      let busy = (Sp_fuzz.Strategy.syzkaller ~mutations_per_base:4 db).propose rng ~now:0.0 ~covered corpus entry in
      guided @ busy in
    { Sp_fuzz.Strategy.name = "Oracle"; throughput_factor = 1.0; propose } in
  let run dur strat =
    let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11; duration = dur } in
    let vm = Sp_fuzz.Vm.create ~seed:1 k in
    Sp_fuzz.Campaign.run vm strat cfg in
  List.iter (fun dur ->
    let rs = run dur (Sp_fuzz.Strategy.syzkaller db) in
    let ro = run dur oracle_strategy in
    Printf.printf "dur %4.1fh: syz %d | oracle %d (%+.1f%%)\n%!" (dur /. 3600.)
      rs.Sp_fuzz.Campaign.final_edges ro.final_edges
      (100. *. (float_of_int ro.final_edges /. float_of_int rs.final_edges -. 1.));
    List.iter (fun (o,(e,ne)) -> Printf.printf "   oracle %s: %d/%dk = %.2f\n" o ne (e/1000) (1000.*.float_of_int ne /. float_of_int (max 1 e))) ro.origin_stats)
    [ 1800.; 7200.; 86400. ]
