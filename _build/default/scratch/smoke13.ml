let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let progs = Sp_syzlang.Gen.corpus rng db ~size:50 in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 200 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:16 ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let results = List.map (fun p -> (p, Sp_kernel.Kernel.execute k p)) progs in
  let time name f =
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while Unix.gettimeofday () -. t0 < 2.0 do f (); incr n done;
    Printf.printf "%-14s %.2f ms/op\n%!" name (2000.0 /. float_of_int !n) in
  let targets_of r = Snowplow.Query_graph.frontier_blocks k r |> List.map fst |> List.filteri (fun i _ -> i < 40) in
  let cycle = ref results in
  let next () = match !cycle with [] -> cycle := results; List.hd results | x :: rest -> cycle := rest; x in
  time "execute" (fun () -> let p, _ = next () in ignore (Sp_kernel.Kernel.execute k p));
  time "graph build" (fun () -> let p, r = next () in ignore (Snowplow.Query_graph.build k p ~result:r ~targets:(targets_of r)));
  let graphs = List.map (fun (p, r) -> Snowplow.Query_graph.build k p ~result:r ~targets:(targets_of r)) results in
  let gc = ref graphs in
  let nextg () = match !gc with [] -> gc := graphs; List.hd graphs | x :: rest -> gc := rest; x in
  time "prepare" (fun () -> ignore (Snowplow.Pmm.prepare (nextg ())));
  let preps = List.map Snowplow.Pmm.prepare graphs in
  let pc = ref preps in
  let nextp () = match !pc with [] -> pc := preps; List.hd preps | x :: rest -> pc := rest; x in
  time "forward" (fun () -> ignore (Snowplow.Pmm.forward_logits model ~block_embs (nextp ())));
  time "infer(fast)" (fun () -> ignore (Snowplow.Pmm.infer_logits model ~block_embs (nextp ())));
  (* verify identical *)
  let pr = List.hd preps in
  let a = Sp_ml.Ad.value (Snowplow.Pmm.forward_logits model ~block_embs pr) in
  let b = Snowplow.Pmm.infer_logits model ~block_embs pr in
  let maxdiff = ref 0.0 in
  for i = 0 to fst (Sp_ml.Tensor.dims a) - 1 do
    maxdiff := Float.max !maxdiff (Float.abs (Sp_ml.Tensor.get a i 0 -. Sp_ml.Tensor.get b i 0))
  done;
  Printf.printf "max |fast - ad| = %g\n" !maxdiff;
  let g1 = List.hd graphs in
  Printf.printf "graph nodes: %d edges: %d\n" (Array.length g1.nodes) (Array.length g1.edges)
