let () =
  let t0 = Unix.gettimeofday () in
  let pipe = Snowplow.Pipeline.train () in
  Printf.printf "pipeline train: %.1fs; examples %d; " (Unix.gettimeofday () -. t0)
    (Array.length pipe.split.train);
  Format.printf "eval %a@." Sp_ml.Metrics.pp (Snowplow.Pipeline.eval_scores pipe);
  let db = Sp_kernel.Kernel.spec_db pipe.kernel in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 99) db ~size:100 in
  let t1 = Unix.gettimeofday () in
  let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11 } in
  let vm = Sp_fuzz.Vm.create ~seed:1 pipe.kernel in
  let rs = Sp_fuzz.Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) cfg in
  Printf.printf "syz 24h: %.1fs edges %d\n%!" (Unix.gettimeofday () -. t1) rs.final_edges;
  let t2 = Unix.gettimeofday () in
  let inference = Snowplow.Pipeline.inference_for pipe pipe.kernel in
  let vm = Sp_fuzz.Vm.create ~seed:1 pipe.kernel in
  let rn = Sp_fuzz.Campaign.run vm (Snowplow.Hybrid.strategy ~inference pipe.kernel) cfg in
  Printf.printf "snow 24h: %.1fs edges %d served %d cache_hits %d\n%!"
    (Unix.gettimeofday () -. t2) rn.final_edges
    (Snowplow.Inference.served inference) (Snowplow.Inference.cache_hits inference)
