(* Quantify duplicate proposals per origin during a Snowplow campaign. *)
let () =
  let k = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db k in
  let rng = Sp_util.Rng.create 1 in
  let bases = Sp_syzlang.Gen.corpus rng db ~size:150 in
  let split = Snowplow.Dataset.collect k ~bases in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 2000 } k in
  let block_embs = Snowplow.Encoder.embed_kernel enc k in
  let model = Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc) ~num_syscalls:(Sp_syzlang.Spec.count db) () in
  let _ = Snowplow.Trainer.train model ~block_embs ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid in
  (* wrap strategies to count duplicate proposals *)
  let count name strat =
    let seen = Hashtbl.create 1024 in
    let dup = Hashtbl.create 8 in
    let wrapped = { strat with Sp_fuzz.Strategy.propose = (fun rng ~now ~covered corpus entry ->
      let props = strat.Sp_fuzz.Strategy.propose rng ~now ~covered corpus entry in
      List.iter (fun (p : Sp_fuzz.Strategy.proposal) ->
        let h = Sp_syzlang.Prog.hash p.prog in
        let total, dups = Option.value ~default:(0,0) (Hashtbl.find_opt dup p.origin) in
        let d = if Hashtbl.mem seen h then 1 else 0 in
        Hashtbl.replace seen h ();
        Hashtbl.replace dup p.origin (total+1, dups+d)) props;
      props) } in
    let seed_rng = Sp_util.Rng.create 99 in
    let seeds = Sp_syzlang.Gen.corpus seed_rng db ~size:100 in
    let cfg = { Sp_fuzz.Campaign.default_config with seed_corpus = seeds; seed = 11; duration = 21600.0 } in
    let vm = Sp_fuzz.Vm.create ~seed:1 k in
    let r = Sp_fuzz.Campaign.run vm wrapped cfg in
    Printf.printf "%s: edges %d\n" name r.Sp_fuzz.Campaign.final_edges;
    Hashtbl.iter (fun o (t,d) -> Printf.printf "  %-10s proposals=%8d dup=%8d (%.1f%%)\n" o t d (100. *. float_of_int d /. float_of_int (max 1 t))) dup
  in
  count "Syzkaller" (Sp_fuzz.Strategy.syzkaller db);
  let inference = Snowplow.Inference.create ~kernel:k ~block_embs model in
  count "Snowplow" (Snowplow.Hybrid.strategy ~inference k)
