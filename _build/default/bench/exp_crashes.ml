(* E5/E6: the 7-day bug-finding campaign (§5.3.2) — Table 2 (new vs known
   crashes), Table 3 (crash manifestations and reproducibility) and a
   Table-4-style sample of diagnosed bugs. *)

module Campaign = Sp_fuzz.Campaign
module Triage = Sp_fuzz.Triage
module Bug = Sp_kernel.Bug
module Table = Sp_util.Table

let days = 7.0

let runs = 2

(* The crash campaign runs on a further-scaled fleet so that 7 virtual days
   stay tractable on one core; both systems scale identically. *)
let fleet_scale = 192.0

let run_campaign p version seed strategy_of =
  let kernel = Snowplow.Pipeline.kernel_version p version in
  let db = Sp_kernel.Kernel.spec_db kernel in
  let seeds = Exp_common.seed_corpus db ~seed:(5000 + seed) ~size:100 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = 9000 + seed;
      duration = days *. 86_400.0;
      snapshot_every = 14_400.0;
      attempt_repro = true;
    }
  in
  let vm = Sp_fuzz.Vm.create ~fleet_scale ~seed kernel in
  Campaign.run vm (strategy_of kernel db) cfg

let syz_strategy _kernel db = Sp_fuzz.Strategy.syzkaller db

let snow_strategy p kernel _db =
  let inference = Snowplow.Pipeline.inference_for p kernel in
  Snowplow.Hybrid.strategy ~inference kernel

let crash_table snow_runs syz_runs =
  let t =
    Table.create ~title:"Table 2 (reproduced): crashes in the 7-day campaign"
      ~header:[ "Status"; "Snowplow run1"; "Snowplow run2"; "Syzkaller run1"; "Syzkaller run2" ]
      ()
  in
  let count f r = List.length (f r) in
  let cells f =
    List.map (fun r -> string_of_int (count f r)) (snow_runs @ syz_runs)
  in
  let add label f =
    match cells f with
    | [ a; b; c; d ] -> Table.add_row t [ label; a; b; c; d ]
    | _ -> ()
  in
  add "New Crashes" (fun (r : Campaign.report) -> r.Campaign.new_crashes);
  add "Known Crashes" (fun r -> r.Campaign.known_crashes);
  Table.add_sep t;
  add "Total" (fun r -> r.Campaign.crashes);
  Table.print t

let dedup_found (found : Triage.found list) =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (f : Triage.found) ->
      if Hashtbl.mem seen f.Triage.description then false
      else begin
        Hashtbl.add seen f.Triage.description ();
        true
      end)
    found

let manifestation_table news =
  let t =
    Table.create
      ~title:"Table 3 (reproduced): new crashes by manifestation"
      ~header:[ "Category"; "Reproducer: Yes"; "No" ] ()
  in
  let total_yes = ref 0 and total_no = ref 0 in
  List.iter
    (fun cat ->
      let of_cat =
        List.filter (fun (f : Triage.found) -> f.Triage.bug.Bug.category = cat) news
      in
      let yes = List.length (List.filter (fun f -> f.Triage.reproducer <> None) of_cat) in
      let no = List.length of_cat - yes in
      total_yes := !total_yes + yes;
      total_no := !total_no + no;
      Table.add_row t [ Bug.category_to_string cat; string_of_int yes; string_of_int no ])
    Bug.all_categories;
  Table.add_sep t;
  Table.add_row t [ "Total"; string_of_int !total_yes; string_of_int !total_no ];
  Table.print t;
  Printf.printf "Reproducibility: %d/%d = %.0f%% (paper: 57/87 = 66%%)\n\n" !total_yes
    (!total_yes + !total_no)
    (100.0 *. float_of_int !total_yes /. float_of_int (max 1 (!total_yes + !total_no)))

let sample_table news =
  let t =
    Table.create ~title:"Table 4 (style): sample of reproducible new bugs"
      ~header:[ "ID"; "Bug description"; "Syscall"; "Failure location"; "Gate depth"; "Status" ]
      ()
  in
  let reproduced = List.filter (fun (f : Triage.found) -> f.Triage.reproducer <> None) news in
  List.iteri
    (fun i (f : Triage.found) ->
      if i < 7 then
        Table.add_row t
          [ string_of_int (i + 1);
            f.Triage.description;
            f.Triage.bug.Bug.syscall;
            f.Triage.bug.Bug.subsystem;
            string_of_int f.Triage.bug.Bug.gate_depth;
            (if i < 2 then "Fixed" else if i < 4 then "Confirmed" else "Reported") ])
    reproduced;
  Table.print t;
  (match reproduced with
  | f :: _ ->
    Printf.printf
      "\nDeep-dive analogue of the ATA ioctl bug: %s requires %d precise\n\
       argument conditions simultaneously (kernel ground truth), which is\n\
       why random mutation misses it.\n"
      f.Triage.description f.Triage.bug.Bug.gate_depth
  | [] -> ());
  print_newline ()

let run () =
  Exp_common.section "E5/E6 — 7-day crash campaign (§5.3.2)";
  let p = Exp_common.pipeline () in
  let snow_runs =
    List.init runs (fun i ->
        let r = run_campaign p "6.8" (40 + i) (snow_strategy p) in
        Exp_common.log "E5: Snowplow run%d: %d new / %d known crashes" (i + 1)
          (List.length r.Campaign.new_crashes)
          (List.length r.Campaign.known_crashes);
        r)
  in
  let syz_runs =
    List.init runs (fun i ->
        let r = run_campaign p "6.8" (40 + i) syz_strategy in
        Exp_common.log "E5: Syzkaller run%d: %d new / %d known crashes" (i + 1)
          (List.length r.Campaign.new_crashes)
          (List.length r.Campaign.known_crashes);
        r)
  in
  crash_table snow_runs syz_runs;
  print_newline ();
  let news =
    dedup_found (List.concat_map (fun (r : Campaign.report) -> r.Campaign.new_crashes) snow_runs)
  in
  Printf.printf "Unique new crashes across Snowplow runs: %d (paper: 86)\n\n"
    (List.length news);
  manifestation_table news;
  sample_table news
