(* E3/E4: Figure 6 — edge coverage over 24 hours of fuzzing, Syzkaller vs
   Snowplow, on kernels 6.8 (trained-on), 6.9 and 6.10 (generalization),
   repeated with distinct initial seeds; plus the coverage-improvement
   summary (Figure 6d) and the time-to-coverage speedups. *)

module Campaign = Sp_fuzz.Campaign
module Table = Sp_util.Table
module Plot = Sp_util.Ascii_plot

let repeats = 3 (* the paper uses 5; scaled down for a single-core run *)

let versions = [ "6.8"; "6.9"; "6.10" ]

let run_pair p version seed =
  let kernel = Snowplow.Pipeline.kernel_version p version in
  let db = Sp_kernel.Kernel.spec_db kernel in
  let seeds = Exp_common.seed_corpus db ~seed:(1000 + seed) ~size:100 in
  let cfg =
    { Campaign.default_config with seed_corpus = seeds; seed = 7000 + seed }
  in
  let syz =
    Campaign.run
      (Sp_fuzz.Vm.create ~seed kernel)
      (Sp_fuzz.Strategy.syzkaller db) cfg
  in
  let inference = Snowplow.Pipeline.inference_for p kernel in
  let snow =
    Campaign.run
      (Sp_fuzz.Vm.create ~seed kernel)
      (Snowplow.Hybrid.strategy ~inference kernel)
      cfg
  in
  (syz, snow)

type version_result = {
  version : string;
  syz : Campaign.report list;
  snow : Campaign.report list;
}

let collect () =
  let p = Exp_common.pipeline () in
  List.map
    (fun version ->
      let pairs =
        List.init repeats (fun seed ->
            let r = run_pair p version seed in
            Exp_common.log "E3: %s seed %d done (syz %d / snow %d edges)" version
              seed (fst r).Campaign.final_edges (snd r).Campaign.final_edges;
            r)
      in
      { version; syz = List.map fst pairs; snow = List.map snd pairs })
    versions

let mean_final reports =
  Sp_util.Stats.mean
    (List.map (fun (r : Campaign.report) -> float_of_int r.Campaign.final_edges) reports)

(* Mean virtual time for the Snowplow mean curve to reach Syzkaller's mean
   24-hour coverage — the dark vertical line of Figure 6. *)
let speedup_of vr =
  let syz_final = mean_final vr.syz in
  let snow_mean, _ = Exp_common.mean_series vr.snow in
  let rec first_reach = function
    | [] -> None
    | (h, v) :: rest -> if v >= syz_final then Some h else first_reach rest
  in
  Option.map (fun h -> 24.0 /. h) (first_reach snow_mean)

let print_figure vr =
  let syz_mean, syz_band = Exp_common.mean_series vr.syz in
  let snow_mean, snow_band = Exp_common.mean_series vr.snow in
  print_endline
    (Plot.render
       ~title:(Printf.sprintf "Figure 6 (%s): edge coverage over 24h of fuzzing" vr.version)
       ~x_label:"uptime (h)" ~y_label:"edge coverage"
       [ Plot.series ~band:syz_band ~label:"Syzkaller" ~glyph:'s' syz_mean;
         Plot.series ~band:snow_band ~label:"Snowplow" ~glyph:'O' snow_mean ])

let run () =
  Exp_common.section "E3/E4 — Figure 6: coverage campaigns (§5.3.1)";
  let results = collect () in
  List.iter print_figure results;
  let t =
    Table.create ~title:"Figure 6d: summary over repeated 24h campaigns"
      ~header:
        [ "Kernel"; "Syzkaller@24h (mean)"; "Snowplow@24h (mean)";
          "improvement"; "time-to-Syzkaller@24h"; "speedup" ]
      ()
  in
  List.iter
    (fun vr ->
      let syz = mean_final vr.syz and snow = mean_final vr.snow in
      let speedup = speedup_of vr in
      let snow_mean, _ = Exp_common.mean_series vr.snow in
      let reach =
        let rec go = function
          | [] -> "-"
          | (h, v) :: rest -> if v >= syz then Printf.sprintf "%.1f h" h else go rest
        in
        go snow_mean
      in
      Table.add_row t
        [ vr.version;
          Printf.sprintf "%.0f" syz;
          Printf.sprintf "%.0f" snow;
          Printf.sprintf "%+.1f%%" (100.0 *. ((snow /. syz) -. 1.0));
          reach;
          (match speedup with Some s -> Printf.sprintf "%.1fx" s | None -> "-") ])
    results;
  Table.print t;
  print_endline
    "\nPaper reference: +7.0% / 5.2x (6.8), +8.6% (6.9), +7.7% (6.10), >4.8x";
  print_endline
    "speedups; bands of the two systems do not overlap after 5 hours.\n"
