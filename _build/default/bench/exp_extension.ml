(* E9: the §6 extensions — learned system-call insertion (localization of
   SYSCALL_INSERTION, with instantiation over the syscall vocabulary) and
   corpus distillation (§7's Moonshine idea as a substrate). Not part of
   the paper's evaluation; reported as the "future work" implementation. *)

module Table = Sp_util.Table
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Gen = Sp_syzlang.Gen
module Rng = Sp_util.Rng

let insertion_experiment p =
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  (* Coverage context from a short warm campaign. *)
  let seeds = Exp_common.seed_corpus db ~seed:2100 ~size:80 in
  let warm_cfg =
    { Sp_fuzz.Campaign.default_config with
      seed_corpus = seeds; seed = 2101; duration = 3600.0 }
  in
  let warm =
    Sp_fuzz.Campaign.run (Sp_fuzz.Vm.create ~seed:2 kernel)
      (Sp_fuzz.Strategy.syzkaller db) warm_cfg
  in
  let covered = warm.Sp_fuzz.Campaign.covered_blocks in
  let bases = Exp_common.seed_corpus db ~seed:2102 ~size:60 in
  let examples =
    Snowplow.Insertion.collect_examples ~seed:2103 ~covered kernel ~bases
  in
  Exp_common.log "E9: %d successful-insertion examples" (List.length examples);
  let n = List.length examples in
  let train_ex = List.filteri (fun i _ -> i < n * 8 / 10) examples in
  let eval_ex = List.filteri (fun i _ -> i >= n * 8 / 10) examples in
  let model = Snowplow.Insertion.create kernel in
  let _ = Snowplow.Insertion.train model ~covered train_ex in
  let t =
    Table.create ~title:"Learned insertion (sec. 6 extension): held-out accuracy"
      ~header:[ "selector"; "top-1"; "top-3"; "top-5" ] ()
  in
  let row name acc_fn =
    Table.add_row t
      [ name;
        Printf.sprintf "%.1f%%" (100.0 *. acc_fn 1);
        Printf.sprintf "%.1f%%" (100.0 *. acc_fn 3);
        Printf.sprintf "%.1f%%" (100.0 *. acc_fn 5) ]
  in
  row "learned" (fun k -> Snowplow.Insertion.accuracy model ~covered eval_ex ~k);
  let num_sys = Sp_syzlang.Spec.count db in
  row "uniform random" (fun k -> float_of_int k /. float_of_int num_sys);
  Table.print t;
  print_newline ()

let distill_experiment p =
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  (* Distill the corpus a short campaign accumulated. *)
  let seeds = Exp_common.seed_corpus db ~seed:2200 ~size:80 in
  let cfg =
    { Sp_fuzz.Campaign.default_config with
      seed_corpus = seeds; seed = 2201; duration = 7200.0 }
  in
  let r =
    Sp_fuzz.Campaign.run (Sp_fuzz.Vm.create ~seed:3 kernel)
      (Sp_fuzz.Strategy.syzkaller db) cfg
  in
  let corpus_progs =
    List.map (fun (e : Sp_fuzz.Corpus.entry) -> e.Sp_fuzz.Corpus.prog)
      (Sp_fuzz.Corpus.entries r.Sp_fuzz.Campaign.corpus)
  in
  let report = Sp_fuzz.Distill.distill kernel corpus_progs in
  let t =
    Table.create ~title:"Corpus distillation (Moonshine-style substrate)"
      ~header:[ "metric"; "before"; "after" ] ()
  in
  Table.add_row t
    [ "tests"; string_of_int report.Sp_fuzz.Distill.original_count;
      string_of_int report.Sp_fuzz.Distill.distilled_count ];
  Table.add_row t
    [ "total calls"; string_of_int report.Sp_fuzz.Distill.original_calls;
      string_of_int report.Sp_fuzz.Distill.distilled_calls ];
  Table.add_row t
    [ "blocks covered"; string_of_int report.Sp_fuzz.Distill.blocks_covered;
      string_of_int report.Sp_fuzz.Distill.blocks_covered ];
  Table.print t;
  print_newline ()

let run () =
  Exp_common.section "E9 — Extensions: learned insertion + corpus distillation";
  let p = Exp_common.pipeline () in
  insertion_experiment p;
  distill_experiment p
