(* E1: §5.1 dataset statistics.  E2: Table 1 (PMM vs Rand.8). *)

module Table = Sp_util.Table
module Metrics = Sp_ml.Metrics

let e1 () =
  Exp_common.section "E1 — Mutation dataset statistics (§5.1)";
  let p = Exp_common.pipeline () in
  let stats = Snowplow.Dataset.stats p.Snowplow.Pipeline.split in
  let t = Table.create ~title:"Dataset / query-graph statistics" ~header:[ "statistic"; "value" ] () in
  List.iter
    (fun (name, v) -> Table.add_row t [ name; Printf.sprintf "%.1f" v ])
    stats;
  let args_per_test =
    Sp_util.Stats.mean
      (List.map
         (fun prog -> float_of_int (Sp_syzlang.Prog.num_args prog))
         p.Snowplow.Pipeline.bases)
  in
  Table.add_row t [ "avg arguments per base test"; Printf.sprintf "%.1f" args_per_test ];
  let sample_bases =
    List.filteri (fun i _ -> i < 15) p.Snowplow.Pipeline.bases
  in
  let rate =
    Snowplow.Dataset.successful_mutation_rate p.Snowplow.Pipeline.kernel
      ~bases:sample_bases
  in
  Table.add_row t
    [ "successful mutations per 1000 random argument mutations";
      Printf.sprintf "%.1f" rate ];
  Table.print t;
  print_newline ();
  print_endline
    "Paper reference: ~2372 vertices / 2989 edges per graph, >60 arguments";
  print_endline
    "per test, ~45 successful mutations per 1000 (full-scale Linux; ours is";
  print_endline "a laptop-scale kernel, so absolute sizes are smaller).\n"

let e2 () =
  Exp_common.section "E2 — Table 1: promising-argument selector performance (§5.2)";
  let p = Exp_common.pipeline () in
  let pmm = Snowplow.Pipeline.eval_scores p in
  let rand = Snowplow.Pipeline.rand_baseline p ~k:8 in
  let t =
    Table.create ~title:"Table 1 (reproduced)"
      ~header:[ "Selector"; "F1"; "Precision"; "Recall"; "Jaccard" ] ()
  in
  let row name (s : Metrics.scores) =
    Table.add_row t
      [ name;
        Printf.sprintf "%.1f%%" (100. *. s.Metrics.f1);
        Printf.sprintf "%.1f%%" (100. *. s.Metrics.precision);
        Printf.sprintf "%.1f%%" (100. *. s.Metrics.recall);
        Printf.sprintf "%.1f%%" (100. *. s.Metrics.jaccard) ]
  in
  row "PMModel" pmm;
  row "Rand.8" rand;
  Table.print t;
  Printf.printf
    "\nF1 ratio PMM/Rand.8 = %.1fx (paper: 84.2/30.3 = 2.8x); Jaccard ratio = %.1fx (paper: 3.8x)\n\n"
    (pmm.Metrics.f1 /. Float.max 0.001 rand.Metrics.f1)
    (pmm.Metrics.jaccard /. Float.max 0.001 rand.Metrics.jaccard)

let run () =
  e1 ();
  e2 ()
