bench/exp_common.ml: Array List Printf Snowplow Sp_fuzz Sp_syzlang Sp_util String Unix
