bench/exp_perf.ml: Analyze Bechamel Benchmark Exp_common Hashtbl List Measure Printf Snowplow Sp_fuzz Sp_kernel Sp_mutation Sp_syzlang Sp_util Staged Test Time Toolkit
