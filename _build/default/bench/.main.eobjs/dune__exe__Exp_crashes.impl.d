bench/exp_crashes.ml: Exp_common Hashtbl List Printf Snowplow Sp_fuzz Sp_kernel Sp_util
