bench/main.mli:
