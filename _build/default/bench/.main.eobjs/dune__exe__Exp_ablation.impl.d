bench/exp_ablation.ml: Exp_common List Printf Snowplow Sp_ml Sp_util
