bench/exp_pmm.ml: Exp_common Float List Printf Snowplow Sp_ml Sp_syzlang Sp_util
