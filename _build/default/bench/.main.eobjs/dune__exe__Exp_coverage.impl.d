bench/exp_coverage.ml: Exp_common List Option Printf Snowplow Sp_fuzz Sp_kernel Sp_util
