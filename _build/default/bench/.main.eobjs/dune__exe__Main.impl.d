bench/main.ml: Array Exp_ablation Exp_common Exp_coverage Exp_crashes Exp_directed Exp_extension Exp_perf Exp_pmm List Printf String Sys
