bench/exp_directed.ml: Array Exp_common Float Fun List Option Printf Snowplow Sp_cfg Sp_fuzz Sp_kernel Sp_syzlang Sp_util
