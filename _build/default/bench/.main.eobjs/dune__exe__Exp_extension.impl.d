bench/exp_extension.ml: Exp_common List Printf Snowplow Sp_fuzz Sp_kernel Sp_syzlang Sp_util
