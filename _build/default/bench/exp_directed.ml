(* E7: directed kernel fuzzing (§5.4, Table 5) — time for SyzDirect vs
   Snowplow-D to reach target code locations, per-target and in subtotal.

   Targets mirror the SyzDirect dataset's bug-related locations: the crash
   blocks of the kernel's injected bugs (deep, precise-argument-gated
   code) plus a few shallow blocks near handler entries (the paper's
   easy-to-reach rows). *)

module Campaign = Sp_fuzz.Campaign
module Kernel = Sp_kernel.Kernel
module Ir = Sp_kernel.Ir
module Bug = Sp_kernel.Bug
module Table = Sp_util.Table

let runs = 2 (* per paper: 5; scaled down *)

let time_cap = 6.0 *. 3600.0 (* paper caps at 24 h; scaled with the fleet *)

let fleet_scale = 192.0

type target = { label : string; block : int }

let pick_targets kernel =
  (* Deep targets: crash blocks of new bugs (bug-related locations). *)
  let deep =
    Array.to_list (Kernel.bugs kernel)
    |> List.filter (fun (b : Bug.t) -> not b.Bug.known)
    |> List.filteri (fun i _ -> i < 12)
    |> List.filter_map (fun (b : Bug.t) ->
           (* locate the crash block of this bug *)
           let rec find i =
             if i >= Kernel.num_blocks kernel then None
             else
               match (Kernel.block kernel i).Ir.term with
               | Ir.Crash id when id = b.Bug.id -> Some i
               | _ -> find (i + 1)
           in
           Option.map
             (fun blk ->
               { label = Printf.sprintf "%s/%s.c:%d" b.Bug.subsystem b.Bug.syscall blk;
                 block = blk })
             (find 0))
  in
  (* Shallow targets: low-depth blocks of a few handlers. *)
  let shallow =
    List.init 6 (fun i ->
        let sys = (i * 7) mod Sp_syzlang.Spec.count (Kernel.spec_db kernel) in
        let entry = Kernel.handler_entry kernel sys in
        let spec = Sp_syzlang.Spec.by_id (Kernel.spec_db kernel) sys in
        (* second hop from the entry: easy as long as the syscall is invoked *)
        let blk =
          match Sp_cfg.Cfg.succs (Kernel.cfg kernel) entry with
          | b :: _ -> b
          | [] -> entry
        in
        { label = Printf.sprintf "entry/%s.c:%d" spec.Sp_syzlang.Spec.name blk; block = blk })
  in
  deep @ shallow

let run_one p kernel target strategy_of seed =
  let db = Kernel.spec_db kernel in
  let seeds = Exp_common.seed_corpus db ~seed:(6000 + seed) ~size:60 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = 8000 + seed;
      duration = time_cap;
      snapshot_every = 600.0;
      target = Some target.block;
    }
  in
  let vm = Sp_fuzz.Vm.create ~fleet_scale ~seed kernel in
  let r = Campaign.run vm (strategy_of p kernel target) cfg in
  r.Campaign.target_hit_at

let syzdirect_strategy _p kernel target =
  let target_sys =
    let sys = (Kernel.block kernel target.block).Ir.sys_id in
    if sys >= 0 then Some sys else None
  in
  Sp_fuzz.Strategy.syzdirect ~target_sys (Kernel.spec_db kernel)

let snowd_strategy p kernel target =
  let inference = Snowplow.Pipeline.inference_for p kernel in
  Snowplow.Directed.strategy ~inference ~target:target.block kernel

type row = {
  target : target;
  syz_times : float list;  (* successful runs only *)
  snow_times : float list;
}

let mean_or_na = function
  | [] -> None
  | l -> Some (Sp_util.Stats.mean l)

let run () =
  Exp_common.section "E7 — Table 5: directed kernel fuzzing (§5.4)";
  let p = Exp_common.pipeline () in
  let kernel = p.Snowplow.Pipeline.kernel in
  let targets = pick_targets kernel in
  Exp_common.log "E7: %d targets, %d runs each, %.0fh cap" (List.length targets)
    runs (time_cap /. 3600.0);
  let rows =
    List.map
      (fun target ->
        let collect strategy_of =
          List.init runs (fun seed -> run_one p kernel target strategy_of seed)
          |> List.filter_map Fun.id
        in
        let syz_times = collect syzdirect_strategy in
        let snow_times = collect snowd_strategy in
        Exp_common.log "E7: %-32s syzdirect %d/%d snowplow-d %d/%d" target.label
          (List.length syz_times) runs (List.length snow_times) runs;
        { target; syz_times; snow_times })
      targets
  in
  let t =
    Table.create ~title:"Table 5 (reproduced): average time to reach target (s)"
      ~header:[ "Target location"; "SyzDirect"; "Snowplow-D"; "Speedup" ] ()
  in
  let both_syz = ref 0.0 and both_snow = ref 0.0 and both_n = ref 0 in
  let extra = ref 0 in
  let fmt times =
    match mean_or_na times with
    | None -> Printf.sprintf "NA (0/%d)" runs
    | Some m -> Printf.sprintf "%.0f (%d/%d)" m (List.length times) runs
  in
  List.iter
    (fun row ->
      let speedup =
        match (mean_or_na row.syz_times, mean_or_na row.snow_times) with
        | Some s, Some n ->
          both_syz := !both_syz +. s;
          both_snow := !both_snow +. n;
          incr both_n;
          Printf.sprintf "%.1f" (s /. Float.max 1.0 n)
        | None, Some _ ->
          incr extra;
          "INF"
        | Some _, None -> "0"
        | None, None -> "NA"
      in
      Table.add_row t [ row.target.label; fmt row.syz_times; fmt row.snow_times; speedup ])
    (List.sort
       (fun a b ->
         compare (mean_or_na b.syz_times = None) (mean_or_na a.syz_times = None))
       rows);
  Table.add_sep t;
  Table.add_row t
    [ Printf.sprintf "Subtotal (%d reached by both)" !both_n;
      Printf.sprintf "%.0f" !both_syz;
      Printf.sprintf "%.0f" !both_snow;
      Printf.sprintf "%.1f" (!both_syz /. Float.max 1.0 !both_snow) ];
  Table.print t;
  Printf.printf
    "\nTargets reached only by Snowplow-D: %d (paper: 2). Paper subtotal speedup: 8.5x.\n\n"
    !extra
