(* Ablations of the design decisions called out in DESIGN.md §5, each on a
   reduced-budget pipeline so relative comparisons stay cheap:

   1. noisy target synthesis (§3.1 option c) vs exact new coverage (option a)
   2. relation-typed message passing vs an untyped GCN
   3. removing the kernel-user connection (context-switch + handler edges)
   4. deterministic data collection vs noisy stock-Syzkaller collection
   5. asynchronous inference with fallback vs blocking inference
      (measured as fuzzing throughput, not model quality) *)

module Table = Sp_util.Table
module Metrics = Sp_ml.Metrics

let small_dataset =
  { Snowplow.Dataset.default_config with mutations_per_base = 300 }

let small_trainer = { Snowplow.Trainer.default_config with epochs = 5 }

let small_config =
  {
    Snowplow.Pipeline.default_config with
    gen_bases = 60;
    corpus_bases = 60;
    dataset = small_dataset;
    trainer = small_trainer;
    encoder = { Snowplow.Encoder.default_config with steps = 1500 };
  }

type arm = { name : string; config : Snowplow.Pipeline.config }

let arms =
  [
    { name = "control (full design, reduced budget)"; config = small_config };
    {
      name = "exact targets (option a, no frontier noise)";
      config =
        { small_config with
          dataset = { small_dataset with exact_targets = true } };
    };
    {
      name = "untyped GCN (shared relation weights)";
      config =
        { small_config with
          pmm = { Snowplow.Pmm.default_config with share_relations = true } };
    };
    {
      name = "no kernel-user edges (ctx + handler dropped)";
      config =
        { small_config with
          dataset =
            { small_dataset with
              drop_edges =
                [ Snowplow.Query_graph.Ctx_entry; Snowplow.Query_graph.Ctx_exit;
                  Snowplow.Query_graph.Handler ] } };
    };
    {
      name = "noisy collection (stock executor, no §3.1 controls)";
      config =
        { small_config with dataset = { small_dataset with noise = 0.3 } };
    };
  ]

let run () =
  Exp_common.section "Ablations — design decisions of §3";
  let t =
    Table.create ~title:"Validation-calibrated evaluation F1 per arm"
      ~header:[ "arm"; "F1"; "Precision"; "Recall"; "Jaccard" ] ()
  in
  List.iter
    (fun arm ->
      let p = Snowplow.Pipeline.train ~config:arm.config () in
      let s = Snowplow.Pipeline.eval_scores p in
      Exp_common.log "ablation '%s': F1 %.1f%%" arm.name (100.0 *. s.Metrics.f1);
      Table.add_row t
        [ arm.name;
          Printf.sprintf "%.1f%%" (100.0 *. s.Metrics.f1);
          Printf.sprintf "%.1f%%" (100.0 *. s.Metrics.precision);
          Printf.sprintf "%.1f%%" (100.0 *. s.Metrics.recall);
          Printf.sprintf "%.1f%%" (100.0 *. s.Metrics.jaccard) ])
    arms;
  Table.print t;
  print_endline
    "\nExpected shape: the control leads; dropping kernel-user edges\n\
     disconnects program from coverage and should collapse accuracy;\n\
     untyped message passing and noisy collection degrade it; exact\n\
     targets trade robustness for precision.\n"
