(* Unit and property tests for sp_util: RNG, statistics, bitsets, tables. *)

module Rng = Sp_util.Rng
module Stats = Sp_util.Stats
module Bitset = Sp_util.Bitset
module Table = Sp_util.Table

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds give different streams" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* Drawing from the child must not perturb the parent relative to a
     parent that was split but never used the child. *)
  let parent' = Rng.create 9 in
  let _child' = Rng.split parent' in
  for _ = 1 to 10 do
    ignore (Rng.bits64 child)
  done;
  check Alcotest.int64 "parent unaffected by child draws" (Rng.bits64 parent')
    (Rng.bits64 parent)

let test_rng_split_named_stable () =
  let a = Rng.create 5 and b = Rng.create 5 in
  let sa = Rng.split_named a "workers" and sb = Rng.split_named b "workers" in
  check Alcotest.int64 "same label, same stream" (Rng.bits64 sa) (Rng.bits64 sb);
  let other = Rng.split_named (Rng.create 5) "other" in
  Alcotest.(check bool) "different labels diverge" true
    (Rng.bits64 other <> Rng.bits64 (Rng.split_named (Rng.create 5) "workers"))

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 10);
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "int_in in bounds" true (v >= -5 && v <= 5);
    let f = Rng.float rng 2.0 in
    Alcotest.(check bool) "float in bounds" true (f >= 0.0 && f < 2.0)
  done

let test_rng_uniformity () =
  let rng = Rng.create 17 in
  let counts = Array.make 8 0 in
  let n = 16_000 in
  for _ = 1 to n do
    let i = Rng.int rng 8 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 15% of uniform" true
        (abs (c - (n / 8)) < n * 15 / 800))
    counts

let test_weighted () =
  let rng = Rng.create 23 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Rng.weighted rng [ (`A, 9.0); (`B, 1.0) ] = `A then incr heavy
  done;
  Alcotest.(check bool) "weights respected" true (!heavy > 820 && !heavy < 980)

let test_sample_distinct =
  QCheck.Test.make ~count:200 ~name:"Rng.sample draws distinct elements"
    QCheck.(pair small_nat (int_bound 1000))
    (fun (k, seed) ->
      let rng = Rng.create seed in
      let arr = Array.init 30 Fun.id in
      let sampled = Rng.sample rng arr k in
      List.length (List.sort_uniq compare sampled) = List.length sampled
      && List.length sampled = min k 30)

let test_shuffle_permutation =
  QCheck.Test.make ~count:200 ~name:"Rng.shuffle is a permutation"
    QCheck.(pair (list small_int) (int_bound 1000))
    (fun (l, seed) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let feq = Alcotest.float 1e-9

let test_stats_basics () =
  check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "mean empty" 0.0 (Stats.mean []);
  check feq "sum" 6.0 (Stats.sum [ 1.0; 2.0; 3.0 ]);
  check feq "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check feq "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check feq "p0 is min" 1.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 0.0);
  check feq "p100 is max" 3.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 100.0);
  check feq "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stats_minmax () =
  let lo, hi = Stats.min_max [ 4.0; -1.0; 9.0 ] in
  check feq "min" (-1.0) lo;
  check feq "max" 9.0 hi;
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.min_max: empty list")
    (fun () -> ignore (Stats.min_max []))

let test_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_inclusive 100.0))
    (fun xs ->
      let p25 = Stats.percentile xs 25.0
      and p50 = Stats.percentile xs 50.0
      and p75 = Stats.percentile xs 75.0 in
      p25 <= p50 && p50 <= p75)

(* ------------------------------------------------------------------ *)
(* Bitset                                                               *)
(* ------------------------------------------------------------------ *)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem" true (Bitset.mem s 63);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "elements" [ 0; 99 ] (Bitset.elements s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index out of range") (fun () -> Bitset.add s 100)

let bitset_of_list l = Bitset.of_list 256 (List.map (fun i -> i mod 256) l)

let test_bitset_union_model =
  QCheck.Test.make ~count:300 ~name:"union_into agrees with a list model"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let sa = bitset_of_list a and sb = bitset_of_list b in
      let expected =
        List.sort_uniq compare (List.map (fun i -> i mod 256) (a @ b))
      in
      let added = Bitset.union_into ~dst:sa sb in
      Bitset.elements sa = expected
      && added
         = List.length expected
           - List.length (List.sort_uniq compare (List.map (fun i -> i mod 256) a)))

let test_bitset_diff_inter_model =
  QCheck.Test.make ~count:300 ~name:"diff/inter cardinals agree with a list model"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let norm l = List.sort_uniq compare (List.map (fun i -> i mod 256) l) in
      let la = norm a and lb = norm b in
      let sa = bitset_of_list a and sb = bitset_of_list b in
      Bitset.diff_cardinal sa sb
      = List.length (List.filter (fun x -> not (List.mem x lb)) la)
      && Bitset.inter_cardinal sa sb
         = List.length (List.filter (fun x -> List.mem x lb) la))

let test_bitset_subset =
  QCheck.Test.make ~count:300 ~name:"subset matches diff_cardinal = 0"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let sa = bitset_of_list a and sb = bitset_of_list b in
      Bitset.subset sa sb = (Bitset.diff_cardinal sa sb = 0))

let test_bitset_copy_isolated () =
  let s = Bitset.create 16 in
  Bitset.add s 3;
  let c = Bitset.copy s in
  Bitset.add c 5;
  Alcotest.(check bool) "copy isolated" false (Bitset.mem s 5);
  Alcotest.(check bool) "copy kept contents" true (Bitset.mem c 3)

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.create ~title:"T" ~header:[ "name"; "value" ] () in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "beta"; "23" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* all lines equally wide *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "" && l <> "T")
    |> List.map String.length
  in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_width_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "row width checked"
    (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Table.add_row t [ "only one" ])

(* ------------------------------------------------------------------ *)
(* Ascii_plot                                                           *)
(* ------------------------------------------------------------------ *)

module Plot = Sp_util.Ascii_plot

let test_plot_renders () =
  let s1 =
    Plot.series ~label:"a" ~glyph:'a'
      [ (0.0, 0.0); (1.0, 10.0); (2.0, 20.0) ]
  in
  let s2 =
    Plot.series ~label:"b" ~glyph:'b'
      ~band:[ (0.0, 0.0, 5.0); (1.0, 5.0, 15.0) ]
      [ (0.0, 2.0); (1.0, 12.0) ]
  in
  let out = Plot.render ~title:"plot" ~x_label:"x" ~y_label:"y" [ s1; s2 ] in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  Alcotest.(check bool) "glyph a plotted" true (String.contains out 'a');
  Alcotest.(check bool) "glyph b plotted" true (String.contains out 'b');
  Alcotest.(check bool) "band shading present" true (String.contains out '.');
  Alcotest.(check bool) "legend present" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> l = "  a = a" || l = "  b = b (band: min..max shown as '.')") lines)

let test_plot_degenerate () =
  (* single point, flat series: must not crash or divide by zero *)
  let s = Plot.series ~label:"p" ~glyph:'p' [ (1.0, 5.0) ] in
  Alcotest.(check bool) "renders" true
    (String.length (Plot.render ~title:"t" [ s ]) > 0);
  Alcotest.(check bool) "empty series renders" true
    (String.length (Plot.render ~title:"t" [ Plot.series ~label:"e" ~glyph:'e' [] ]) > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split_named stability" `Quick test_rng_split_named_stable;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "weighted" `Quick test_weighted;
        ] );
      qsuite "rng-props" [ test_sample_distinct; test_shuffle_permutation ];
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "min_max" `Quick test_stats_minmax;
        ] );
      qsuite "stats-props" [ test_percentile_monotone ];
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "copy isolation" `Quick test_bitset_copy_isolated;
        ] );
      qsuite "bitset-props"
        [ test_bitset_union_model; test_bitset_diff_inter_model; test_bitset_subset ];
      ( "table",
        [
          Alcotest.test_case "renders aligned" `Quick test_table_renders;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        ] );
      ( "plot",
        [
          Alcotest.test_case "renders series, bands, legend" `Quick test_plot_renders;
          Alcotest.test_case "degenerate input" `Quick test_plot_degenerate;
        ] );
    ]
