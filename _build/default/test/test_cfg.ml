(* Unit and property tests for sp_cfg. *)

module Cfg = Sp_cfg.Cfg
module Bitset = Sp_util.Bitset
module Rng = Sp_util.Rng

(* A small diamond with a tail:  0 -> 1 -> 3 -> 4,  0 -> 2 -> 3. *)
let diamond () =
  Cfg.create ~num_blocks:5 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]

let test_basics () =
  let g = diamond () in
  Alcotest.(check int) "blocks" 5 (Cfg.num_blocks g);
  Alcotest.(check int) "edges" 5 (Cfg.num_edges g);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (Cfg.succs g 0);
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (Cfg.preds g 3);
  Alcotest.(check bool) "mem_edge" true (Cfg.mem_edge g (0, 1));
  Alcotest.(check bool) "not mem_edge" false (Cfg.mem_edge g (1, 0))

let test_duplicate_edges_collapsed () =
  let g = Cfg.create ~num_blocks:2 ~edges:[ (0, 1); (0, 1); (0, 1) ] in
  Alcotest.(check int) "one edge" 1 (Cfg.num_edges g)

let test_edge_ids_dense () =
  let g = diamond () in
  let ids = List.filter_map (Cfg.edge_id g) (Cfg.edges g) in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3; 4 ] (List.sort compare ids)

let test_out_of_range () =
  Alcotest.check_raises "edge endpoint checked"
    (Invalid_argument "Cfg.create: edge endpoint out of range") (fun () ->
      ignore (Cfg.create ~num_blocks:2 ~edges:[ (0, 5) ]))

let test_reachable () =
  let g = diamond () in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2; 3; 4 ]
    (Bitset.elements (Cfg.reachable g 0));
  Alcotest.(check (list int)) "from 3" [ 3; 4 ] (Bitset.elements (Cfg.reachable g 3))

let test_frontier () =
  let g = diamond () in
  let covered = Bitset.of_list 5 [ 0; 1 ] in
  let f = List.sort compare (Cfg.frontier g ~covered) in
  (* 2 via 0, 3 via 1. *)
  Alcotest.(check (list (pair int int))) "frontier" [ (2, 0); (3, 1) ] f

let test_distances () =
  let g = diamond () in
  let d = Cfg.distances_to g 4 in
  Alcotest.(check int) "0 -> 4" 3 d.(0);
  Alcotest.(check int) "3 -> 4" 1 d.(3);
  Alcotest.(check int) "4 -> 4" 0 d.(4);
  let d1 = Cfg.distances_to g 0 in
  Alcotest.(check int) "unreachable" max_int d1.(4)

let test_shortest_path () =
  let g = diamond () in
  (match Cfg.shortest_path g ~src:0 ~dst:4 with
  | Some path ->
    Alcotest.(check int) "length" 4 (List.length path);
    Alcotest.(check int) "starts at src" 0 (List.hd path)
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check bool) "no reverse path" true (Cfg.shortest_path g ~src:4 ~dst:0 = None)

(* Random DAG generator: edges only go from lower to higher ids. *)
let random_dag seed n =
  let rng = Rng.create seed in
  let edges = ref [] in
  for src = 0 to n - 2 do
    for dst = src + 1 to n - 1 do
      if Rng.coin rng 0.15 then edges := (src, dst) :: !edges
    done
  done;
  Cfg.create ~num_blocks:n ~edges:!edges

let prop_frontier_invariants =
  QCheck.Test.make ~count:100 ~name:"frontier entries uncovered, via covered, adjacent"
    QCheck.(pair (int_bound 1000) (list small_nat))
    (fun (seed, cover_l) ->
      let n = 30 in
      let g = random_dag seed n in
      let covered = Bitset.of_list n (List.map (fun i -> i mod n) cover_l) in
      List.for_all
        (fun (entry, via) ->
          (not (Bitset.mem covered entry))
          && Bitset.mem covered via
          && Cfg.mem_edge g (via, entry))
        (Cfg.frontier g ~covered))

let prop_frontier_unique_entries =
  QCheck.Test.make ~count:100 ~name:"frontier lists each entry once"
    QCheck.(pair (int_bound 1000) (list small_nat))
    (fun (seed, cover_l) ->
      let n = 30 in
      let g = random_dag seed n in
      let covered = Bitset.of_list n (List.map (fun i -> i mod n) cover_l) in
      let entries = List.map fst (Cfg.frontier g ~covered) in
      List.length entries = List.length (List.sort_uniq compare entries))

let prop_distance_edge_consistency =
  QCheck.Test.make ~count:100 ~name:"dist(src) <= dist(dst) + 1 along every edge"
    QCheck.(pair (int_bound 1000) (int_bound 29))
    (fun (seed, target) ->
      let n = 30 in
      let g = random_dag seed n in
      let d = Cfg.distances_to g target in
      List.for_all
        (fun (src, dst) -> d.(dst) = max_int || d.(src) <= d.(dst) + 1)
        (Cfg.edges g))

let prop_shortest_path_length_matches_distance =
  QCheck.Test.make ~count:100 ~name:"shortest_path length equals distances_to"
    QCheck.(triple (int_bound 1000) (int_bound 29) (int_bound 29))
    (fun (seed, src, dst) ->
      let g = random_dag seed 30 in
      let d = Cfg.distances_to g dst in
      match Cfg.shortest_path g ~src ~dst with
      | None -> d.(src) = max_int
      | Some path -> List.length path - 1 = d.(src))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_cfg"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_collapsed;
          Alcotest.test_case "edge ids dense" `Quick test_edge_ids_dense;
          Alcotest.test_case "bounds check" `Quick test_out_of_range;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "frontier" `Quick test_frontier;
          Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      qsuite "props"
        [
          prop_frontier_invariants;
          prop_frontier_unique_entries;
          prop_distance_edge_consistency;
          prop_shortest_path_length_matches_distance;
        ];
    ]
