(* End-to-end integration tests: the whole pipeline at a tiny scale —
   kernel generation, dataset collection, model training, inference
   service, and side-by-side campaigns of all four fuzzers. *)

module Rng = Sp_util.Rng
module Kernel = Sp_kernel.Kernel
module Build = Sp_kernel.Build
module Gen = Sp_syzlang.Gen
module Campaign = Sp_fuzz.Campaign
module Pipeline = Snowplow.Pipeline

let tiny_config =
  {
    Pipeline.default_config with
    kernel_seed = 19;
    gen_bases = 40;
    corpus_bases = 40;
    warmup_duration = 900.0;
    dataset = { Snowplow.Dataset.default_config with mutations_per_base = 200 };
    encoder = { Snowplow.Encoder.default_config with steps = 600 };
    trainer = { Snowplow.Trainer.default_config with epochs = 4; log_every = 0 };
  }

let pipeline = lazy (Pipeline.train ~config:tiny_config ())

let test_pipeline_trains () =
  let p = Lazy.force pipeline in
  Alcotest.(check bool) "has training data" true
    (Array.length p.Pipeline.split.Snowplow.Dataset.train > 20);
  let s = Pipeline.eval_scores p in
  let rand = Pipeline.rand_baseline p ~k:8 in
  Alcotest.(check bool)
    (Printf.sprintf "PMM F1 (%.2f) beats Rand.8 (%.2f)" s.Sp_ml.Metrics.f1
       rand.Sp_ml.Metrics.f1)
    true
    (s.Sp_ml.Metrics.f1 > rand.Sp_ml.Metrics.f1 && s.Sp_ml.Metrics.f1 > 0.1)

let test_generalizes_across_versions () =
  let p = Lazy.force pipeline in
  let k9 = Pipeline.kernel_version p "6.9" in
  Alcotest.(check string) "version" "6.9" (Kernel.version k9);
  let embs = Pipeline.embeddings_for p k9 in
  Alcotest.(check (pair int int)) "embeddings per block"
    (Kernel.num_blocks k9, Snowplow.Encoder.dim p.Pipeline.encoder)
    (Sp_ml.Tensor.dims embs);
  (* the trained model must produce predictions on the unseen version *)
  let inference = Pipeline.inference_for p k9 in
  let prog = Gen.program (Rng.create 3) (Kernel.spec_db k9) () in
  let r = Kernel.execute k9 prog in
  if r.Kernel.crash = None then begin
    let targets =
      List.filteri (fun i _ -> i < 6)
        (List.map fst (Snowplow.Query_graph.frontier_blocks k9 r))
    in
    if targets <> [] then
      Alcotest.(check bool) "predicts on unseen kernel" true
        (Snowplow.Inference.predict_now inference prog ~targets <> [])
  end

let campaign_cfg p seed duration =
  let db = Kernel.spec_db p.Pipeline.kernel in
  let seeds = Gen.corpus (Rng.create 2024) db ~size:40 in
  { Campaign.default_config with seed_corpus = seeds; seed; duration }

let test_all_four_fuzzers_run () =
  let p = Lazy.force pipeline in
  let kernel = p.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  let cfg = campaign_cfg p 3 1800.0 in
  let strategies =
    [ Sp_fuzz.Strategy.syzkaller db;
      Sp_fuzz.Strategy.syzdirect ~target_sys:(Some 0) db;
      Snowplow.Hybrid.strategy ~inference:(Pipeline.inference_for p kernel) kernel;
      Snowplow.Directed.strategy
        ~inference:(Pipeline.inference_for p kernel)
        ~target:(Kernel.handler_exit kernel 1) kernel ]
  in
  List.iter
    (fun strategy ->
      let vm = Sp_fuzz.Vm.create ~seed:4 kernel in
      let r = Campaign.run vm strategy cfg in
      Alcotest.(check bool)
        (strategy.Sp_fuzz.Strategy.name ^ " makes progress")
        true
        (r.Campaign.final_edges > 0 && r.Campaign.executions > 50))
    strategies

let test_snowplow_guided_mutations_flow () =
  (* During a Snowplow campaign, PMM-guided argument mutations must both
     happen and contribute coverage. *)
  let p = Lazy.force pipeline in
  let kernel = p.Pipeline.kernel in
  let inference = Pipeline.inference_for p kernel in
  let cfg = campaign_cfg p 5 3600.0 in
  let vm = Sp_fuzz.Vm.create ~seed:6 kernel in
  let r = Campaign.run vm (Snowplow.Hybrid.strategy ~inference kernel) cfg in
  let pmm_execs =
    match List.assoc_opt "pmm-arg" r.Campaign.origin_stats with
    | Some (execs, _) -> execs
    | None -> 0
  in
  Alcotest.(check bool) "guided mutations executed" true (pmm_execs > 100);
  Alcotest.(check bool) "inference served queries" true
    (Snowplow.Inference.served inference > 10)

let test_crash_campaign_with_triage () =
  (* A longer noisy hunt on a bug-dense kernel must find, dedup and
     classify crashes. *)
  let kernel =
    Kernel.generate
      { Build.default_config with
        seed = 5; num_syscalls = 16; handler_budget = 120; max_depth = 8;
        num_known_bugs = 10; num_new_bugs = 10 }
  in
  let db = Kernel.spec_db kernel in
  let seeds = Gen.corpus (Rng.create 7) db ~size:40 in
  let cfg =
    { Campaign.default_config with
      seed_corpus = seeds; seed = 8; duration = 14_400.0; attempt_repro = true }
  in
  let vm = Sp_fuzz.Vm.create ~seed:9 kernel in
  let r = Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) cfg in
  Alcotest.(check bool) "found crashes" true (r.Campaign.crashes <> []);
  (* dedup: descriptions unique *)
  let descs = List.map (fun (f : Sp_fuzz.Triage.found) -> f.Sp_fuzz.Triage.description) r.Campaign.crashes in
  Alcotest.(check int) "descriptions unique" (List.length descs)
    (List.length (List.sort_uniq compare descs));
  (* every reproducer really crashes *)
  List.iter
    (fun (f : Sp_fuzz.Triage.found) ->
      match f.Sp_fuzz.Triage.reproducer with
      | None -> ()
      | Some repro ->
        let res = Kernel.execute kernel repro in
        Alcotest.(check bool) "reproducer crashes" true (res.Kernel.crash <> None))
    r.Campaign.crashes

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "trains end to end" `Slow test_pipeline_trains;
          Alcotest.test_case "generalizes across versions" `Slow
            test_generalizes_across_versions;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "all four fuzzers run" `Slow test_all_four_fuzzers_run;
          Alcotest.test_case "guided mutations flow" `Slow
            test_snowplow_guided_mutations_flow;
          Alcotest.test_case "crash campaign with triage" `Slow
            test_crash_campaign_with_triage;
        ] );
    ]
