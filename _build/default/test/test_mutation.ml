(* Tests for sp_mutation: instantiators and the engine. *)

module Rng = Sp_util.Rng
module Ty = Sp_syzlang.Ty
module Value = Sp_syzlang.Value
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Engine = Sp_mutation.Engine
module Instantiate = Sp_mutation.Instantiate

let db = Sp_kernel.Specgen.generate (Rng.create 3) ~num_syscalls:24

let prog_gen =
  QCheck.make
    ~print:(fun p -> Prog.to_string p)
    QCheck.Gen.(map (fun seed -> Gen.program (Rng.create seed) db ()) int)

let engine = Engine.create db

(* ------------------------------------------------------------------ *)
(* Instantiate                                                          *)
(* ------------------------------------------------------------------ *)

let prop_instantiate_conforms =
  QCheck.Test.make ~count:300 ~name:"instantiated values conform to their type"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let tys =
        [ Ty.Int { bits = 32; lo = 0; hi = 100 };
          Ty.Flags { flag_name = "f"; flag_values = [ ("A", 1); ("B", 2); ("C", 4) ] };
          Ty.Enum { enum_name = "e"; choices = [ ("X", 3); ("Y", 9) ] };
          Ty.Buffer { min_len = 0; max_len = 64 };
          Ty.Str [ "a"; "b" ];
          Ty.Ptr (Ty.Int { bits = 32; lo = 0; hi = 7 }) ]
      in
      List.for_all
        (fun ty ->
          let v0 = Value.default rng ty in
          Value.conforms ty (Instantiate.value rng ty v0))
        tys)

let test_const_len_untouched () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "const untouched" true
    (Instantiate.value rng (Ty.Const 5) (Value.Vconst 5) = Value.Vconst 5);
  Alcotest.(check bool) "len untouched" true
    (Instantiate.value rng (Ty.Len 0) (Value.Vlen 3) = Value.Vlen 3)

let test_enum_changes () =
  let rng = Rng.create 1 in
  let ty = Ty.Enum { enum_name = "e"; choices = [ ("X", 3); ("Y", 9) ] } in
  for _ = 1 to 20 do
    match Instantiate.value rng ty (Value.Venum 3) with
    | Value.Venum 9 -> ()
    | v -> Alcotest.failf "enum mutated to %s" (Value.to_string v)
  done

let prop_at_path_valid =
  QCheck.Test.make ~count:200 ~name:"at_path keeps the program valid"
    QCheck.(pair prog_gen (int_bound 1000000))
    (fun (p, seed) ->
      let rng = Rng.create seed in
      let nodes = Prog.mutable_nodes p in
      nodes = []
      ||
      let path, _ = List.nth nodes (Rng.int rng (List.length nodes)) in
      Prog.validate (Instantiate.at_path rng p path) = Ok ())

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let prop_mutate_valid =
  QCheck.Test.make ~count:300 ~name:"engine mutants validate"
    QCheck.(pair prog_gen (int_bound 1000000))
    (fun (p, seed) ->
      let rng = Rng.create seed in
      let donor = Gen.program (Rng.create (seed lxor 77)) db () in
      let mutated, _ = Engine.mutate engine rng ~donor p in
      Prog.validate mutated = Ok ())

let prop_mutate_args_at_touches_only_named_call =
  QCheck.Test.make ~count:200 ~name:"mutate_args_at changes only the targeted call"
    QCheck.(pair prog_gen (int_bound 1000000))
    (fun (p, seed) ->
      let rng = Rng.create seed in
      let nodes = Prog.mutable_nodes p in
      nodes = []
      ||
      let path, _ = List.nth nodes (Rng.int rng (List.length nodes)) in
      let p' = Engine.mutate_args_at engine rng p [ path ] in
      Array.length p = Array.length p'
      && Array.for_all2
           (fun (a : Prog.call) (b : Prog.call) ->
             a.Prog.spec.Sp_syzlang.Spec.name = b.Prog.spec.Sp_syzlang.Spec.name)
           p p'
      && fst
           (Array.fold_left
              (fun (ok, i) (a : Prog.call) ->
                let b = p'.(i) in
                let same = List.for_all2 Value.equal a.Prog.args b.Prog.args in
                ((ok && (i = path.Prog.call || same)), i + 1))
              (true, 0) p))

let test_selector_distribution () =
  let rng = Rng.create 5 in
  let p = Gen.program (Rng.create 0) db () in
  let counts = Hashtbl.create 4 in
  let selector = Engine.syzkaller_selector ~splice:true () in
  for _ = 1 to 2000 do
    let m = selector rng p in
    Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m))
  done;
  let get m = Option.value ~default:0 (Hashtbl.find_opt counts m) in
  Alcotest.(check bool) "args dominate" true
    (get Engine.Argument_mutation > get Engine.Call_insertion);
  Alcotest.(check bool) "insertion > removal" true
    (get Engine.Call_insertion > get Engine.Call_removal);
  Alcotest.(check bool) "all types occur" true
    (List.for_all
       (fun m -> get m > 0)
       [ Engine.Argument_mutation; Engine.Call_insertion; Engine.Call_removal;
         Engine.Splice ])

let test_localizer_picks_mutable () =
  let rng = Rng.create 9 in
  let localizer = Engine.syzkaller_arg_localizer () in
  let p = Gen.program (Rng.create 3) db () in
  for _ = 1 to 50 do
    let paths = localizer rng p in
    Alcotest.(check bool) "non-empty" true (paths <> []);
    List.iter
      (fun path ->
        match Prog.ty_at p path with
        | Ty.Const _ | Ty.Len _ | Ty.Struct _ -> Alcotest.fail "picked immutable node"
        | _ -> ())
      paths
  done

let prop_length_capped =
  QCheck.Test.make ~count:100 ~name:"insertion respects the call cap"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = ref (Gen.program (Rng.create (seed lxor 3)) db ()) in
      for _ = 1 to 40 do
        let m, _ = Engine.mutate engine rng !p in
        p := m
      done;
      Array.length !p <= 12)

let test_mutation_type_names () =
  Alcotest.(check string) "arg" "ARGUMENT_MUTATION"
    (Engine.mutation_type_to_string Engine.Argument_mutation);
  Alcotest.(check string) "insert" "SYSCALL_INSERTION"
    (Engine.mutation_type_to_string Engine.Call_insertion)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sp_mutation"
    [
      ( "instantiate",
        [
          Alcotest.test_case "const/len untouched" `Quick test_const_len_untouched;
          Alcotest.test_case "enum changes value" `Quick test_enum_changes;
        ] );
      qsuite "instantiate-props" [ prop_instantiate_conforms; prop_at_path_valid ];
      ( "engine",
        [
          Alcotest.test_case "selector distribution" `Quick test_selector_distribution;
          Alcotest.test_case "localizer mutable only" `Quick test_localizer_picks_mutable;
          Alcotest.test_case "type names" `Quick test_mutation_type_names;
        ] );
      qsuite "engine-props"
        [ prop_mutate_valid; prop_mutate_args_at_touches_only_named_call; prop_length_capped ];
    ]
