type scores = { precision : float; recall : float; f1 : float; jaccard : float }

let dedup compare l = List.sort_uniq compare l

let score ~compare ~pred ~gold =
  let pred = dedup compare pred and gold = dedup compare gold in
  match (pred, gold) with
  | [], [] -> { precision = 1.0; recall = 1.0; f1 = 1.0; jaccard = 1.0 }
  | [], _ | _, [] -> { precision = 0.0; recall = 0.0; f1 = 0.0; jaccard = 0.0 }
  | _ ->
    let inter =
      List.length (List.filter (fun p -> List.exists (fun g -> compare p g = 0) gold) pred)
    in
    let np = List.length pred and ng = List.length gold in
    let precision = float_of_int inter /. float_of_int np in
    let recall = float_of_int inter /. float_of_int ng in
    let f1 =
      if precision +. recall = 0.0 then 0.0
      else 2.0 *. precision *. recall /. (precision +. recall)
    in
    let union = np + ng - inter in
    let jaccard = float_of_int inter /. float_of_int union in
    { precision; recall; f1; jaccard }

let mean = function
  | [] -> { precision = 0.0; recall = 0.0; f1 = 0.0; jaccard = 0.0 }
  | l ->
    let n = float_of_int (List.length l) in
    let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 l /. n in
    {
      precision = sum (fun s -> s.precision);
      recall = sum (fun s -> s.recall);
      f1 = sum (fun s -> s.f1);
      jaccard = sum (fun s -> s.jaccard);
    }

let pp ppf s =
  Format.fprintf ppf "F1=%.1f%% P=%.1f%% R=%.1f%% J=%.1f%%" (100.0 *. s.f1)
    (100.0 *. s.precision) (100.0 *. s.recall) (100.0 *. s.jaccard)
