type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let make rows cols v = { rows; cols; data = Array.make (rows * cols) v }

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Tensor.of_array: size mismatch";
  { rows; cols; data }

let of_row data = { rows = 1; cols = Array.length data; data = Array.copy data }

let copy t = { t with data = Array.copy t.data }

let get t i j = t.data.((i * t.cols) + j)

let set t i j v = t.data.((i * t.cols) + j) <- v

let dims t = (t.rows, t.cols)

let numel t = t.rows * t.cols

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let glorot rng rows cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  {
    rows;
    cols;
    data =
      Array.init (rows * cols) (fun _ ->
          Sp_util.Rng.float rng (2.0 *. bound) -. bound);
  }

let randn rng std rows cols =
  { rows; cols;
    data = Array.init (rows * cols) (fun _ -> std *. Sp_util.Rng.gaussian rng) }

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let add_into ~dst src =
  if same_shape dst src then
    for i = 0 to numel dst - 1 do
      dst.data.(i) <- dst.data.(i) +. src.data.(i)
    done
  else if src.rows = 1 && src.cols = dst.cols then
    for i = 0 to dst.rows - 1 do
      let base = i * dst.cols in
      for j = 0 to dst.cols - 1 do
        dst.data.(base + j) <- dst.data.(base + j) +. src.data.(j)
      done
    done
  else invalid_arg "Tensor.add_into: shape mismatch"

let add a b =
  let r = copy a in
  add_into ~dst:r b;
  r

let sub a b =
  if not (same_shape a b) then invalid_arg "Tensor.sub: shape mismatch";
  { a with data = Array.init (numel a) (fun i -> a.data.(i) -. b.data.(i)) }

let mul a b =
  if not (same_shape a b) then invalid_arg "Tensor.mul: shape mismatch";
  { a with data = Array.init (numel a) (fun i -> a.data.(i) *. b.data.(i)) }

let scale s t = { t with data = Array.map (fun x -> s *. x) t.data }

let map f t = { t with data = Array.map f t.data }

let matmul_into ~dst a b =
  if a.cols <> b.rows || dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Tensor.matmul_into: shape mismatch";
  let n = a.rows and k = a.cols and m = b.cols in
  for i = 0 to n - 1 do
    let abase = i * k and dbase = i * m in
    for l = 0 to k - 1 do
      let av = a.data.(abase + l) in
      if av <> 0.0 then begin
        let bbase = l * m in
        for j = 0 to m - 1 do
          dst.data.(dbase + j) <- dst.data.(dbase + j) +. (av *. b.data.(bbase + j))
        done
      end
    done
  done

let matmul a b =
  let dst = create a.rows b.cols in
  matmul_into ~dst a b;
  dst

let matmul_tn a b =
  (* (a^T b): a is k x n, b is k x m, result n x m. *)
  if a.rows <> b.rows then invalid_arg "Tensor.matmul_tn: shape mismatch";
  let k = a.rows and n = a.cols and m = b.cols in
  let dst = create n m in
  for l = 0 to k - 1 do
    let abase = l * n and bbase = l * m in
    for i = 0 to n - 1 do
      let av = a.data.(abase + i) in
      if av <> 0.0 then begin
        let dbase = i * m in
        for j = 0 to m - 1 do
          dst.data.(dbase + j) <- dst.data.(dbase + j) +. (av *. b.data.(bbase + j))
        done
      end
    done
  done;
  dst

let matmul_nt a b =
  (* (a b^T): a is n x k, b is m x k, result n x m. *)
  if a.cols <> b.cols then invalid_arg "Tensor.matmul_nt: shape mismatch";
  let n = a.rows and k = a.cols and m = b.rows in
  let dst = create n m in
  for i = 0 to n - 1 do
    let abase = i * k in
    for j = 0 to m - 1 do
      let bbase = j * k in
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (a.data.(abase + l) *. b.data.(bbase + l))
      done;
      dst.data.((i * m) + j) <- !acc
    done
  done;
  dst

let transpose t =
  let r = create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      r.data.((j * t.rows) + i) <- t.data.((i * t.cols) + j)
    done
  done;
  r

let row t i = Array.sub t.data (i * t.cols) t.cols

let sum t = Array.fold_left ( +. ) 0.0 t.data

let frobenius t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

let equal a b = same_shape a b && a.data = b.data

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to min (t.rows - 1) 7 do
    Format.fprintf ppf "[";
    for j = 0 to min (t.cols - 1) 11 do
      Format.fprintf ppf "%8.4f " (get t i j)
    done;
    Format.fprintf ppf "%s]@,"
      (if t.cols > 12 then "..." else "")
  done;
  if t.rows > 8 then Format.fprintf ppf "...@,";
  Format.fprintf ppf "(%dx%d)@]" t.rows t.cols
