let magic = "sp-ml-params v1"

let tensor_to_buffer buf (t : Tensor.t) =
  let rows, cols = Tensor.dims t in
  Buffer.add_string buf (Printf.sprintf "tensor %d %d\n" rows cols);
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j > 0 then Buffer.add_char buf ' ';
      (* hexadecimal float literals round-trip exactly *)
      Buffer.add_string buf (Printf.sprintf "%h" (Tensor.get t i j))
    done;
    Buffer.add_char buf '\n'
  done

let tensor_of_lines lines =
  match lines with
  | [] -> Error "unexpected end of input"
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "tensor"; rows_s; cols_s ] -> (
      match (int_of_string_opt rows_s, int_of_string_opt cols_s) with
      | Some rows, Some cols ->
        let t = Tensor.create rows cols in
        let rec read_rows i lines =
          if i >= rows then Ok (t, lines)
          else
            match lines with
            | [] -> Error "missing tensor rows"
            | line :: rest ->
              let cells =
                String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
              in
              if List.length cells <> cols then Error "row width mismatch"
              else begin
                List.iteri (fun j cell -> Tensor.set t i j (float_of_string cell)) cells;
                read_rows (i + 1) rest
              end
        in
        (try read_rows 0 rest with Failure _ -> Error "malformed float")
      | _ -> Error "malformed tensor header")
    | _ -> Error ("expected tensor header, got: " ^ header))

let params_to_string params =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf (Printf.sprintf "count %d\n" (List.length params));
  List.iter (fun p -> tensor_to_buffer buf (Ad.value p)) params;
  Buffer.contents buf

let load_params text params =
  match String.split_on_char '\n' text with
  | m :: count_line :: rest when m = magic -> (
    match String.split_on_char ' ' count_line with
    | [ "count"; n_s ] when int_of_string_opt n_s = Some (List.length params) ->
      let rec load lines = function
        | [] -> Ok ()
        | p :: ps -> (
          match tensor_of_lines lines with
          | Error e -> Error e
          | Ok (t, remainder) ->
            let dst = Ad.value p in
            if Tensor.dims dst <> Tensor.dims t then Error "shape mismatch"
            else begin
              let rows, cols = Tensor.dims t in
              for i = 0 to rows - 1 do
                for j = 0 to cols - 1 do
                  Tensor.set dst i j (Tensor.get t i j)
                done
              done;
              load remainder ps
            end)
      in
      load rest params
    | _ -> Error "parameter count mismatch")
  | _ -> Error "bad magic (not an sp-ml parameter file)"

let params_to_file path params =
  let oc = open_out path in
  output_string oc (params_to_string params);
  close_out oc

let params_from_file path params =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  load_params text params
