(** Set-overlap metrics used throughout §5: per-example precision, recall,
    F1 and Jaccard of a predicted argument set against the ground truth,
    then averaged across examples (the paper's Table 1 protocol). *)

type scores = { precision : float; recall : float; f1 : float; jaccard : float }

val score : compare:('a -> 'a -> int) -> pred:'a list -> gold:'a list -> scores
(** Duplicates are collapsed. Conventions for empty sets: both empty gives
    all-1 scores; empty prediction with non-empty gold (or vice versa)
    gives all-0. *)

val mean : scores list -> scores

val pp : Format.formatter -> scores -> unit
