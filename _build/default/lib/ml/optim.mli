(** Optimizers updating {!Ad.param} leaves in place. *)

type t

val adam :
  ?lr:float ->
  ?beta1:float ->
  ?beta2:float ->
  ?eps:float ->
  ?weight_decay:float ->
  Ad.t list ->
  t
(** Defaults: lr 1e-3, betas (0.9, 0.999), eps 1e-8, no weight decay. *)

val sgd : ?lr:float -> ?momentum:float -> Ad.t list -> t

val step : t -> unit
(** Apply one update from the accumulated gradients; parameters without a
    gradient are skipped. *)

val zero_grad : t -> unit

val set_lr : t -> float -> unit

val lr : t -> float
