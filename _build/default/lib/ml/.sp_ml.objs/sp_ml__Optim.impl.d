lib/ml/optim.ml: Ad Array Tensor
