lib/ml/serialize.ml: Ad Buffer List Printf String Tensor
