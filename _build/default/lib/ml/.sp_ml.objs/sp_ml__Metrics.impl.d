lib/ml/metrics.ml: Format List
