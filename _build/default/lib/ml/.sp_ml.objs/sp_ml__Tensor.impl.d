lib/ml/tensor.ml: Array Format Sp_util
