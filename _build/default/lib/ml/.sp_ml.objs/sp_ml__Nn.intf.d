lib/ml/nn.mli: Ad Sp_util Tensor
