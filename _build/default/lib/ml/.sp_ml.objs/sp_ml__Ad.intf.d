lib/ml/ad.mli: Tensor
