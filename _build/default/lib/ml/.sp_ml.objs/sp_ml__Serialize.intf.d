lib/ml/serialize.mli: Ad Buffer Tensor
