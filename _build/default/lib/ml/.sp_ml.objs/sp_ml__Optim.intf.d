lib/ml/optim.mli: Ad
