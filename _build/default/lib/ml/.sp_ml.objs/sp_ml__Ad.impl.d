lib/ml/ad.ml: Array Float Hashtbl List Tensor
