lib/ml/nn.ml: Ad List Option Tensor
