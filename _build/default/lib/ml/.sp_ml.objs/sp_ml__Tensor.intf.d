lib/ml/tensor.mli: Format Sp_util
