(** Dense row-major float matrices — the storage layer of the from-scratch
    ML stack (the paper's PyTorch/fairseq substitute).

    Everything is a 2-D matrix; vectors are [1 x n] rows. Operations either
    allocate a result or, where named [_into], write into a caller-provided
    destination so hot loops stay allocation-light. *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** Zero-filled. *)

val make : int -> int -> float -> t

val of_array : rows:int -> cols:int -> float array -> t
(** Takes ownership of the array. Raises [Invalid_argument] on a size
    mismatch. *)

val of_row : float array -> t

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val dims : t -> int * int

val numel : t -> int

val fill : t -> float -> unit

val glorot : Sp_util.Rng.t -> int -> int -> t
(** Glorot/Xavier-uniform initialization. *)

val randn : Sp_util.Rng.t -> float -> int -> int -> t
(** Gaussian init with the given standard deviation. *)

val add : t -> t -> t
(** Same shape, or [b] a [1 x cols] row broadcast over [a]'s rows. *)

val add_into : dst:t -> t -> unit
(** [dst += src], same-shape or row-broadcast. *)

val sub : t -> t -> t

val mul : t -> t -> t
(** Element-wise. *)

val scale : float -> t -> t

val map : (float -> float) -> t -> t

val matmul : t -> t -> t

val matmul_into : dst:t -> t -> t -> unit
(** [dst += a*b]; [dst] must be pre-sized. *)

val matmul_tn : t -> t -> t
(** [transpose a * b] without materializing the transpose. *)

val matmul_nt : t -> t -> t
(** [a * transpose b]. *)

val transpose : t -> t

val row : t -> int -> float array
(** Copy of one row. *)

val sum : t -> float

val frobenius : t -> float
(** L2 norm of all entries. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
