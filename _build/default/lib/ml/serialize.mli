(** Plain-text serialization of tensors and parameter lists.

    The paper ships PMM weights to a torchserve deployment (and suggests
    sharing trained weights between institutions, §6); this module is the
    corresponding persistence layer: a human-readable, version-tagged
    format that round-trips float values exactly (hexadecimal float
    literals). *)

val tensor_to_buffer : Buffer.t -> Tensor.t -> unit

val tensor_of_lines : string list -> (Tensor.t * string list, string) result
(** Consumes the tensor's lines, returns the remainder. *)

val params_to_string : Ad.t list -> string
(** Serialize trainable parameters in order. *)

val load_params : string -> Ad.t list -> (unit, string) result
(** Load serialized values {e into} an existing parameter list (shapes must
    match, order as written). *)

val params_to_file : string -> Ad.t list -> unit

val params_from_file : string -> Ad.t list -> (unit, string) result
