lib/syzlang/gen.ml: Array Hashtbl List Prog Sp_util Spec Ty Value
