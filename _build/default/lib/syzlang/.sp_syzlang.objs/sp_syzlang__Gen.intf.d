lib/syzlang/gen.mli: Prog Sp_util Spec
