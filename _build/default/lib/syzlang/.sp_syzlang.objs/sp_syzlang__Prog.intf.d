lib/syzlang/prog.mli: Format Sp_util Spec Ty Value
