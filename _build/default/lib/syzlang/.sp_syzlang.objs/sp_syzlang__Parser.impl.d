lib/syzlang/parser.ml: Array Buffer List Printf Prog Spec String Ty Value
