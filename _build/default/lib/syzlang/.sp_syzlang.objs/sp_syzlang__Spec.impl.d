lib/syzlang/spec.ml: Array Format Hashtbl List Ty
