lib/syzlang/value.mli: Format Sp_util Ty
