lib/syzlang/spec.mli: Format Ty
