lib/syzlang/parser.mli: Prog Spec
