lib/syzlang/value.ml: Format Hashtbl List Sp_util String Ty
