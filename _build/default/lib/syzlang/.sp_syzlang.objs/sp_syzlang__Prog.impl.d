lib/syzlang/prog.ml: Array Format Hashtbl List Printf Sp_util Spec String Ty Value
