lib/syzlang/ty.ml: Format List
