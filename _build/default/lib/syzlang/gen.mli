(** Random well-formed program generation (seed-corpus construction).

    Plays the role of Syzkaller's generator: pick syscalls, give every
    argument a plausible value, and wire resource arguments either to an
    earlier producing call (inserting one when the program has none) or, with
    small probability, leave them bogus — invalid fds are a classic source of
    error-path coverage. *)

val call : Sp_util.Rng.t -> Spec.db -> Spec.t -> Prog.call
(** One call with randomized (well-formed) argument values; resources are
    left bogus for the caller to wire. *)

val program :
  Sp_util.Rng.t -> Spec.db -> ?min_calls:int -> ?max_calls:int -> unit -> Prog.t
(** A random program of [min_calls..max_calls] generated calls (default
    3..7); producer calls inserted for resource wiring may push the total
    slightly above [max_calls]. The result always passes
    {!Prog.validate}. *)

val wire_resources : Sp_util.Rng.t -> Spec.db -> Prog.t -> Prog.t
(** Resolve bogus resource arguments: reuse an earlier producer when one
    exists (90%), insert a fresh producer call otherwise; leaves ~10% bogus
    on purpose. Idempotent on fully wired programs. *)

val corpus :
  Sp_util.Rng.t -> Spec.db -> size:int -> Prog.t list
(** [size] distinct (by {!Prog.hash}) random programs. *)
