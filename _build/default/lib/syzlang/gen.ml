module Rng = Sp_util.Rng

let call rng _db (spec : Spec.t) =
  let mk (f : Ty.field) =
    (* Mostly defaults with some randomization: seed tests in real corpora
       are valid programs, not uniform noise. *)
    if Rng.coin rng 0.5 then Value.default rng f.fty else Value.random rng f.fty
  in
  Prog.fix_lens { Prog.spec; args = List.map mk spec.Spec.args }

(* Collect the paths of resource-typed argument nodes of one call. *)
let resource_paths (c : Prog.call) ci =
  List.filter_map
    (fun (p, (ty : Ty.t)) ->
      match ty with
      | Ty.Resource kind when p.Prog.call = ci -> Some (p, kind)
      | _ -> None)
    (Prog.arg_nodes [| c |])
  |> List.map (fun (p, kind) -> ({ p with Prog.call = ci }, kind))

let wire_resources rng db prog =
  let prog = ref prog in
  let ci = ref 0 in
  while !ci < Array.length !prog do
    let paths = resource_paths !prog.(!ci) !ci in
    List.iter
      (fun (path, kind) ->
        match Prog.get !prog path with
        | Value.Vres i when i >= 0 -> ()
        | _ when Rng.coin rng 0.1 -> () (* keep a bogus fd on purpose *)
        | _ ->
          let producers =
            List.filteri (fun i _ -> i < !ci) (Array.to_list !prog)
            |> List.mapi (fun i c -> (i, c))
            |> List.filter (fun (_, (c : Prog.call)) -> c.spec.Spec.ret = Some kind)
          in
          (match (producers, Spec.producers_of db kind) with
          | (_ :: _ as ps), _ when Rng.coin rng 0.9 ->
            let i, _ = Rng.choose_list rng ps in
            prog := Prog.set !prog path (Value.Vres i)
          | _, [] -> ()
          | _, specs ->
            (* Insert a fresh producer right before this call. The path we
               are wiring shifts by one call. *)
            let producer = Prog.make_call rng (Rng.choose_list rng specs) in
            prog := Prog.insert_call !prog !ci producer;
            let path = { path with Prog.call = path.Prog.call + 1 } in
            prog := Prog.set !prog path (Value.Vres !ci);
            incr ci))
      paths;
    incr ci
  done;
  !prog

let program rng db ?(min_calls = 3) ?(max_calls = 7) () =
  let n = Rng.int_in rng min_calls max_calls in
  let specs = Array.of_list (Spec.all db) in
  let calls = Array.init n (fun _ -> call rng db (Rng.choose rng specs)) in
  wire_resources rng db calls

let corpus rng db ~size =
  let seen = Hashtbl.create size in
  let rec collect acc n guard =
    if n >= size || guard > size * 50 then List.rev acc
    else
      let p = program rng db () in
      let h = Prog.hash p in
      if Hashtbl.mem seen h then collect acc n (guard + 1)
      else begin
        Hashtbl.add seen h ();
        collect (p :: acc) (n + 1) (guard + 1)
      end
  in
  collect [] 0 0
