(** Argument types of the Syzlang-like system-call description language.

    Mirrors the parts of Syzlang the paper relies on (§2, Figure 4): plain
    integers, named flag sets, enums, length fields, byte buffers, known
    strings (file names), pointers, nested structs, and kernel resources
    (file-descriptor-like values that flow from a producing call's return
    into later calls' arguments). *)

type flag_spec = {
  flag_name : string;  (** e.g. "open_flags" *)
  flag_values : (string * int) list;  (** name -> bit value; OR-combinable *)
}

type t =
  | Const of int  (** a fixed value the fuzzer never mutates *)
  | Int of { bits : int; lo : int; hi : int }  (** bounded integer *)
  | Flags of flag_spec  (** bitwise OR of named values *)
  | Enum of { enum_name : string; choices : (string * int) list }
      (** exactly one named value *)
  | Len of int  (** length of the sibling argument at the given index *)
  | Buffer of { min_len : int; max_len : int }  (** opaque byte buffer *)
  | Str of string list  (** one of a set of known strings *)
  | Ptr of t  (** pointer, possibly NULL *)
  | Struct of field list  (** nested record, Figure 4 style *)
  | Resource of string  (** consumes a resource of the given kind *)

and field = { fname : string; fty : t }

val kind_token : t -> string
(** Coarse type token used as the PMM embedding vocabulary for argument
    nodes ("the type of the argument", §3.2 — literal constants are
    deliberately not part of the representation). *)

val all_kind_tokens : string list
(** Every possible [kind_token] result, for building embedding tables. *)

val arity : t -> int
(** Number of immediate children (struct fields; 1 under a pointer). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
