(** Parser for the textual syz-like program format printed by {!Prog.pp}.

    The grammar is one call per line:
    {v
      [rN = ] name(value, value, ...)
    v}
    with values as printed by {!Value.pp} ([0x..] flags, [&v] pointers,
    [{..}] structs, [buf(len, seed)] buffers, ["s"] strings, [rN]/[bogus]
    resources, [e:N] enums, [len:N] lengths, [const:N] constants).

    Parsing is specification-directed: the database supplies each call's
    argument types so that bare integers land on the right constructor. *)

val program : Spec.db -> string -> (Prog.t, string) result
(** Parse a whole program. The error string carries line/position context. *)

val program_exn : Spec.db -> string -> Prog.t
(** Like {!program}; raises [Failure] on parse errors. *)
