module Rng = Sp_util.Rng

type call = { spec : Spec.t; args : Value.t list }

type t = call array

type path = { call : int; arg : int list }

let path_compare a b =
  match compare a.call b.call with 0 -> compare a.arg b.arg | c -> c

let path_to_string p =
  Printf.sprintf "c%d.%s" p.call
    (String.concat "." (List.map string_of_int p.arg))

let pp_path ppf p = Format.pp_print_string ppf (path_to_string p)

(* Length fixing: a [Len i] field mirrors the length of the sibling argument
   at index [i] within the same argument list (top level or struct). *)

let value_length (v : Value.t) =
  match v with
  | Vbuf { len; _ } -> len
  | Vstr s -> String.length s
  | Vptr (Some (Vbuf { len; _ })) -> len
  | Vptr (Some (Vstr s)) -> String.length s
  | other -> Value.scalar other

let rec fix_level (tys : Ty.t list) (vs : Value.t list) =
  let vs_arr = Array.of_list vs in
  List.mapi
    (fun i (ty : Ty.t) ->
      match (ty, vs_arr.(i)) with
      | Ty.Len sib, _ when sib >= 0 && sib < Array.length vs_arr ->
        Value.Vlen (value_length vs_arr.(sib))
      | Ty.Ptr inner, Value.Vptr (Some v) ->
        let fixed = fix_level [ inner ] [ v ] in
        Value.Vptr (Some (List.hd fixed))
      | Ty.Struct fields, Value.Vstruct inner_vs
        when List.length fields = List.length inner_vs ->
        Value.Vstruct (fix_level (List.map (fun f -> f.Ty.fty) fields) inner_vs)
      | _, v -> v)
    tys

let fix_lens c =
  let tys = List.map (fun f -> f.Ty.fty) c.spec.Spec.args in
  { c with args = fix_level tys c.args }

let make_call rng (spec : Spec.t) =
  fix_lens
    { spec; args = List.map (fun f -> Value.default rng f.Ty.fty) spec.args }

(* Node enumeration. *)

let rec enum_ty_value ~call ~rev_path (ty : Ty.t) (v : Value.t) acc =
  let here = ({ call; arg = List.rev rev_path }, ty) in
  let acc = here :: acc in
  match (ty, v) with
  | Ty.Ptr inner, Value.Vptr (Some v) ->
    enum_ty_value ~call ~rev_path:(0 :: rev_path) inner v acc
  | Ty.Ptr inner, Value.Vptr None ->
    (* NULL pointers still expose the pointee node: mutating it requires
       materializing the pointee, which the instantiator can do. *)
    ignore inner;
    acc
  | Ty.Struct fields, Value.Vstruct vs ->
    List.fold_left2
      (fun (acc, i) f v ->
        (enum_ty_value ~call ~rev_path:(i :: rev_path) f.Ty.fty v acc, i + 1))
      (acc, 0) fields vs
    |> fst
  | _, _ -> acc

let arg_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun ci c ->
      List.iteri
        (fun i (f : Ty.field) ->
          let v = List.nth c.args i in
          acc := enum_ty_value ~call:ci ~rev_path:[ i ] f.fty v !acc)
        c.spec.Spec.args)
    t;
  List.rev !acc

let is_mutable (ty : Ty.t) =
  match ty with
  | Ty.Const _ | Ty.Len _ | Ty.Struct _ -> false
  | Ty.Int _ | Ty.Flags _ | Ty.Enum _ | Ty.Buffer _ | Ty.Str _ | Ty.Ptr _
  | Ty.Resource _ ->
    true

let mutable_nodes t =
  List.filter (fun (_, ty) -> is_mutable ty) (arg_nodes t)

let num_args t = List.length (arg_nodes t)

let nth_exn l i name =
  match List.nth_opt l i with
  | Some x -> x
  | None -> invalid_arg ("Prog: dangling path at " ^ name)

let ty_at t (p : path) =
  if p.call < 0 || p.call >= Array.length t then invalid_arg "Prog.ty_at: bad call";
  let c = t.(p.call) in
  match p.arg with
  | [] -> invalid_arg "Prog.ty_at: empty path"
  | top :: rest ->
    let rec go (ty : Ty.t) = function
      | [] -> ty
      | i :: rest -> (
        match ty with
        | Ty.Ptr inner when i = 0 -> go inner rest
        | Ty.Struct fields -> go (nth_exn fields i "struct field").Ty.fty rest
        | _ -> invalid_arg "Prog.ty_at: path descends into a leaf")
    in
    go (nth_exn c.spec.Spec.args top "top arg").Ty.fty rest

let get t (p : path) =
  if p.call < 0 || p.call >= Array.length t then invalid_arg "Prog.get: bad call";
  let c = t.(p.call) in
  match p.arg with
  | [] -> invalid_arg "Prog.get: empty path"
  | top :: rest ->
    let rec go (v : Value.t) = function
      | [] -> v
      | i :: rest -> (
        match v with
        | Value.Vptr (Some inner) when i = 0 -> go inner rest
        | Value.Vstruct vs -> go (nth_exn vs i "struct value") rest
        | _ -> invalid_arg "Prog.get: path descends into a leaf value")
    in
    go (nth_exn c.args top "top value") rest

let set t (p : path) v =
  if p.call < 0 || p.call >= Array.length t then invalid_arg "Prog.set: bad call";
  let c = t.(p.call) in
  match p.arg with
  | [] -> invalid_arg "Prog.set: empty path"
  | top :: rest ->
    (* Type-directed descent: a NULL pointer on the path is materialized
       with a minimal well-formed pointee so the write still lands
       (instantiators rely on this to mutate under NULLed pointers). *)
    let rec go (ty : Ty.t) (cur : Value.t) = function
      | [] -> v
      | i :: rest -> (
        match (ty, cur) with
        | Ty.Ptr inner_ty, Value.Vptr (Some inner) when i = 0 ->
          Value.Vptr (Some (go inner_ty inner rest))
        | Ty.Ptr inner_ty, Value.Vptr None when i = 0 ->
          Value.Vptr (Some (go inner_ty (Value.minimal inner_ty) rest))
        | Ty.Struct fields, Value.Vstruct vs when i < List.length fields ->
          Value.Vstruct
            (List.mapi
               (fun j x -> if j = i then go (nth_exn fields i "field").Ty.fty x rest else x)
               vs)
        | _ -> invalid_arg "Prog.set: path descends into a leaf value")
    in
    let args =
      List.mapi
        (fun j x ->
          if j = top then go (nth_exn c.spec.Spec.args top "top arg").Ty.fty x rest
          else x)
        c.args
    in
    let t' = Array.copy t in
    t'.(p.call) <- fix_lens { c with args };
    t'

(* Resource reference rewiring for call-level edits. *)

let rec map_res f (v : Value.t) =
  match v with
  | Value.Vres i -> Value.Vres (f i)
  | Value.Vptr (Some inner) -> Value.Vptr (Some (map_res f inner))
  | Value.Vstruct vs -> Value.Vstruct (List.map (map_res f) vs)
  | Value.Vconst _ | Value.Vint _ | Value.Vflags _ | Value.Venum _
  | Value.Vlen _ | Value.Vbuf _ | Value.Vstr _ | Value.Vptr None ->
    v

let map_call_res f c = { c with args = List.map (map_res f) c.args }

let insert_call t pos c =
  let n = Array.length t in
  if pos < 0 || pos > n then invalid_arg "Prog.insert_call: bad position";
  let shift i = if i >= pos then i + 1 else i in
  Array.init (n + 1) (fun i ->
      if i < pos then t.(i)
      else if i = pos then c
      else map_call_res shift t.(i - 1))

let remove_call t pos =
  let n = Array.length t in
  if pos < 0 || pos >= n then invalid_arg "Prog.remove_call: bad position";
  let rewire i = if i = pos then -1 else if i > pos then i - 1 else i in
  Array.init (n - 1) (fun i ->
      let c = if i < pos then t.(i) else t.(i + 1) in
      map_call_res rewire c)

let validate t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  Array.iteri
    (fun ci c ->
      if List.length c.args <> List.length c.spec.Spec.args then
        fail "call %d (%s): arity mismatch" ci c.spec.Spec.name
      else begin
        List.iter2
          (fun (f : Ty.field) v ->
            if not (Value.conforms f.fty v) then
              fail "call %d (%s): argument %s does not conform to %s" ci
                c.spec.Spec.name f.fname (Ty.to_string f.fty))
          c.spec.Spec.args c.args;
        (* Resource references must point to earlier producers of the kind. *)
        let rec check_res (ty : Ty.t) (v : Value.t) =
          match (ty, v) with
          | Ty.Resource kind, Value.Vres i ->
            if i >= 0 then
              if i >= ci then fail "call %d: forward resource reference r%d" ci i
              else if i < Array.length t && t.(i).spec.Spec.ret <> Some kind then
                fail "call %d: r%d does not produce resource %s" ci i kind
          | Ty.Ptr inner, Value.Vptr (Some v) -> check_res inner v
          | Ty.Struct fields, Value.Vstruct vs ->
            List.iter2 (fun f v -> check_res f.Ty.fty v) fields vs
          | _, _ -> ()
        in
        List.iter2 (fun (f : Ty.field) v -> check_res f.fty v) c.spec.Spec.args c.args;
        (* Len fields must be consistent with their sibling. *)
        let fixed = fix_lens c in
        if not (List.for_all2 Value.equal fixed.args c.args) then
          fail "call %d (%s): stale Len field" ci c.spec.Spec.name
      end)
    t;
  match !problem with None -> Ok () | Some msg -> Error msg

let hash t =
  Array.fold_left
    (fun acc c ->
      let h =
        List.fold_left
          (fun acc v -> (acc * 1000003) lxor Value.content_hash v)
          (Hashtbl.hash c.spec.Spec.name)
          c.args
      in
      (acc * 65599) lxor h)
    0 t

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ca cb ->
         String.equal ca.spec.Spec.name cb.spec.Spec.name
         && List.length ca.args = List.length cb.args
         && List.for_all2 Value.equal ca.args cb.args)
       a b

let pp ppf t =
  Array.iteri
    (fun i c ->
      (match c.spec.Spec.ret with
      | Some _ -> Format.fprintf ppf "r%d = " i
      | None -> ());
      Format.fprintf ppf "%s(%a)@." c.spec.Spec.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Value.pp)
        c.args)
    t

let to_string t = Format.asprintf "%a" pp t
