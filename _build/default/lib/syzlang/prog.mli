(** Test programs: sequences of system-call invocations with typed argument
    values, plus the argument-path machinery every other component builds on.

    A {e path} names one argument node at any nesting depth — the unit of
    mutation localization in the paper. [{ call = 1; arg = [2; 0; 1] }] is
    "call 1, third top-level argument, then under the pointer, then the
    second struct field". Paths are what PMM predicts (MUTATE / NOT-MUTATE
    per argument node) and what instantiators rewrite. *)

type call = { spec : Spec.t; args : Value.t list }

type t = call array

type path = { call : int; arg : int list }

val path_compare : path -> path -> int

val path_to_string : path -> string

val pp_path : Format.formatter -> path -> unit

(** {1 Construction} *)

val make_call : Sp_util.Rng.t -> Spec.t -> call
(** A call with default argument values and lengths fixed up. *)

val validate : t -> (unit, string) result
(** Checks that every value conforms to its type, resource arguments refer to
    earlier calls producing the right kind (or are bogus), and [Len] fields
    match their sibling's length. *)

(** {1 Argument nodes} *)

val arg_nodes : t -> (path * Ty.t) list
(** Every argument node of every call, in program order, paired with its
    type. This is the localization search space; the paper measures >60 of
    these per test on average (§5.1). *)

val mutable_nodes : t -> (path * Ty.t) list
(** [arg_nodes] minus nodes that no instantiator can change: constants,
    auto-computed lengths, and interior struct/pointer spines. *)

val num_args : t -> int
(** [List.length (arg_nodes t)]. *)

val ty_at : t -> path -> Ty.t

val get : t -> path -> Value.t

val set : t -> path -> Value.t -> t
(** Functional update; re-fixes [Len] fields on the affected call. Raises
    [Invalid_argument] on a dangling path. *)

val fix_lens : call -> call
(** Recompute every [Len] field from its sibling argument's current length. *)

(** {1 Program-level edits (used by call-level mutations)} *)

val insert_call : t -> int -> call -> t
(** [insert_call t pos c] inserts before position [pos], shifting resource
    references in later calls. *)

val remove_call : t -> int -> t
(** Removes the call; resource references to it become bogus, later
    references shift down. *)

(** {1 Misc} *)

val hash : t -> int
(** Content hash for corpus deduplication. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Syz-like text, one call per line, [rN = name(...)] for producers. *)
