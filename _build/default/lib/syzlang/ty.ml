type flag_spec = { flag_name : string; flag_values : (string * int) list }

type t =
  | Const of int
  | Int of { bits : int; lo : int; hi : int }
  | Flags of flag_spec
  | Enum of { enum_name : string; choices : (string * int) list }
  | Len of int
  | Buffer of { min_len : int; max_len : int }
  | Str of string list
  | Ptr of t
  | Struct of field list
  | Resource of string

and field = { fname : string; fty : t }

let kind_token = function
  | Const _ -> "const"
  | Int _ -> "int"
  | Flags _ -> "flags"
  | Enum _ -> "enum"
  | Len _ -> "len"
  | Buffer _ -> "buffer"
  | Str _ -> "string"
  | Ptr _ -> "ptr"
  | Struct _ -> "struct"
  | Resource _ -> "resource"

let all_kind_tokens =
  [ "const"; "int"; "flags"; "enum"; "len"; "buffer"; "string"; "ptr";
    "struct"; "resource" ]

let arity = function
  | Ptr _ -> 1
  | Struct fields -> List.length fields
  | Const _ | Int _ | Flags _ | Enum _ | Len _ | Buffer _ | Str _ | Resource _
    -> 0

let rec pp ppf = function
  | Const v -> Format.fprintf ppf "const[%d]" v
  | Int { bits; lo; hi } -> Format.fprintf ppf "int%d[%d:%d]" bits lo hi
  | Flags f -> Format.fprintf ppf "flags[%s]" f.flag_name
  | Enum e -> Format.fprintf ppf "enum[%s]" e.enum_name
  | Len i -> Format.fprintf ppf "len[arg%d]" i
  | Buffer { min_len; max_len } -> Format.fprintf ppf "buffer[%d:%d]" min_len max_len
  | Str names -> Format.fprintf ppf "string[%d]" (List.length names)
  | Ptr inner -> Format.fprintf ppf "ptr[%a]" pp inner
  | Struct fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf f -> Format.fprintf ppf "%s:%a" f.fname pp f.fty))
      fields
  | Resource kind -> Format.fprintf ppf "res[%s]" kind

let to_string t = Format.asprintf "%a" pp t
