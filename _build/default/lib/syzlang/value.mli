(** Runtime argument values of a test program.

    Values mirror the type structure of {!Ty.t}. Buffers are abstracted to a
    (length, content-seed) pair: the kernel model never inspects individual
    bytes, only lengths and a content hash, which is exactly the granularity
    the paper's branch predicates need (e.g. the ATA bug of §5.3.2 is gated
    on a data length). *)

type t =
  | Vconst of int
  | Vint of int
  | Vflags of int
  | Venum of int  (** the enum's concrete value, not its index *)
  | Vlen of int
  | Vbuf of { len : int; seed : int }
  | Vstr of string
  | Vptr of t option  (** [None] is NULL *)
  | Vstruct of t list
  | Vres of int  (** index of the producing call in the program, -1 = bogus *)

val minimal : Ty.t -> t
(** A deterministic well-formed value: zeros, first choices, minimum-size
    buffers, NULL-free pointers, bogus resources. Used when a structure
    must be materialized without a random source (e.g. rewriting through a
    NULL pointer). *)

val default : Sp_util.Rng.t -> Ty.t -> t
(** A well-formed, mostly-benign value for the given type: flag fields start
    with a common default bit, ints at the low end of their range, buffers at
    minimum size, resources bogus (the generator wires them afterwards). *)

val random : Sp_util.Rng.t -> Ty.t -> t
(** A uniformly randomized well-formed value (used by instantiators). *)

val conforms : Ty.t -> t -> bool
(** Structural well-formedness of a value against a type. Resource indices
    and [Len] consistency are program-level properties checked by
    {!Prog.validate}. *)

val scalar : t -> int
(** Integer view used by kernel branch predicates: the numeric value for
    int/const/flags/enum/len; buffer length for buffers; a stable hash for
    strings; 0 for NULL pointers and 1 for non-NULL; number of fields for
    structs; the call index for resources. *)

val content_hash : t -> int
(** Deeper hash that also reflects buffer content seeds and nested values;
    used for deduplicating programs and for data-dependent predicates. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
