type t = {
  name : string;
  sys_id : int;
  args : Ty.field list;
  ret : string option;
}

type db = { by_name : (string, t) Hashtbl.t; ordered : t array }

let make_db entries =
  let by_name = Hashtbl.create (List.length entries) in
  let ordered =
    List.mapi
      (fun sys_id (name, args, ret) ->
        if Hashtbl.mem by_name name then
          invalid_arg ("Spec.make_db: duplicate syscall name " ^ name);
        let spec = { name; sys_id; args; ret } in
        Hashtbl.add by_name name spec;
        spec)
      entries
  in
  { by_name; ordered = Array.of_list ordered }

let find db name = Hashtbl.find_opt db.by_name name

let find_exn db name =
  match find db name with
  | Some s -> s
  | None -> invalid_arg ("Spec.find_exn: unknown syscall " ^ name)

let by_id db id = db.ordered.(id)

let count db = Array.length db.ordered

let all db = Array.to_list db.ordered

let producers_of db kind =
  List.filter (fun s -> s.ret = Some kind) (all db)

let rec count_nodes (ty : Ty.t) =
  match ty with
  | Ptr inner -> 1 + count_nodes inner
  | Struct fields ->
    1 + List.fold_left (fun acc f -> acc + count_nodes f.Ty.fty) 0 fields
  | Const _ | Int _ | Flags _ | Enum _ | Len _ | Buffer _ | Str _ | Resource _
    -> 1

let arg_count t =
  List.fold_left (fun acc f -> acc + count_nodes f.Ty.fty) 0 t.args

let pp ppf t =
  Format.fprintf ppf "%s(%a)%s" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf f -> Format.fprintf ppf "%s: %a" f.Ty.fname Ty.pp f.Ty.fty))
    t.args
    (match t.ret with None -> "" | Some k -> " -> " ^ k)
