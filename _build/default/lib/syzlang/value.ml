module Rng = Sp_util.Rng

type t =
  | Vconst of int
  | Vint of int
  | Vflags of int
  | Venum of int
  | Vlen of int
  | Vbuf of { len : int; seed : int }
  | Vstr of string
  | Vptr of t option
  | Vstruct of t list
  | Vres of int

let rec minimal (ty : Ty.t) =
  match ty with
  | Const v -> Vconst v
  | Int { lo; _ } -> Vint lo
  | Flags f -> Vflags (match f.flag_values with [] -> 0 | (_, v) :: _ -> v)
  | Enum e -> Venum (match e.choices with [] -> 0 | (_, v) :: _ -> v)
  | Len _ -> Vlen 0
  | Buffer { min_len; _ } -> Vbuf { len = min_len; seed = 0 }
  | Str names -> Vstr (match names with [] -> "" | s :: _ -> s)
  | Ptr inner -> Vptr (Some (minimal inner))
  | Struct fields -> Vstruct (List.map (fun f -> minimal f.Ty.fty) fields)
  | Resource _ -> Vres (-1)

let rec default rng (ty : Ty.t) =
  match ty with
  | Const v -> Vconst v
  | Int { lo; _ } -> Vint lo
  | Flags f ->
    (* Start from the first named bit: mirrors how seed tests typically use
       the common mode (e.g. O_CREAT) before mutation explores the rest. *)
    Vflags (match f.flag_values with [] -> 0 | (_, v) :: _ -> v)
  | Enum e -> Venum (match e.choices with [] -> 0 | (_, v) :: _ -> v)
  | Len _ -> Vlen 0
  | Buffer { min_len; _ } -> Vbuf { len = min_len; seed = Rng.int rng 1000 }
  | Str names -> Vstr (match names with [] -> "" | s :: _ -> s)
  | Ptr inner -> Vptr (Some (default rng inner))
  | Struct fields -> Vstruct (List.map (fun f -> default rng f.Ty.fty) fields)
  | Resource _ -> Vres (-1)

let rec random rng (ty : Ty.t) =
  match ty with
  | Const v -> Vconst v
  | Int { lo; hi; _ } -> Vint (Rng.int_in rng lo hi)
  | Flags f ->
    let v =
      List.fold_left
        (fun acc (_, bit) -> if Rng.bool rng then acc lor bit else acc)
        0 f.flag_values
    in
    Vflags v
  | Enum e ->
    Venum (match e.choices with [] -> 0 | l -> snd (Rng.choose_list rng l))
  | Len _ -> Vlen 0
  | Buffer { min_len; max_len } ->
    Vbuf { len = Rng.int_in rng min_len max_len; seed = Rng.int rng 1_000_000 }
  | Str names -> (
    match names with [] -> Vstr "" | l -> Vstr (Rng.choose_list rng l))
  | Ptr inner -> if Rng.coin rng 0.1 then Vptr None else Vptr (Some (random rng inner))
  | Struct fields -> Vstruct (List.map (fun f -> random rng f.Ty.fty) fields)
  | Resource _ -> Vres (-1)

let rec conforms (ty : Ty.t) v =
  match (ty, v) with
  | Const c, Vconst c' -> c = c'
  | Int { lo; hi; _ }, Vint n -> n >= lo && n <= hi
  | Flags _, Vflags _ -> true
  | Enum e, Venum n -> List.exists (fun (_, v) -> v = n) e.choices || e.choices = []
  | Len _, Vlen n -> n >= 0
  | Buffer _, Vbuf { len; _ } -> len >= 0
  | Str names, Vstr s -> names = [] || List.mem s names
  | Ptr _, Vptr None -> true
  | Ptr inner, Vptr (Some v) -> conforms inner v
  | Struct fields, Vstruct vs ->
    List.length fields = List.length vs
    && List.for_all2 (fun f v -> conforms f.Ty.fty v) fields vs
  | Resource _, Vres _ -> true
  | ( ( Const _ | Int _ | Flags _ | Enum _ | Len _ | Buffer _ | Str _ | Ptr _
      | Struct _ | Resource _ ),
      _ ) ->
    false

let str_hash s = Hashtbl.hash s land 0xffffff

let scalar = function
  | Vconst n | Vint n | Vflags n | Venum n | Vlen n -> n
  | Vbuf { len; _ } -> len
  | Vstr s -> str_hash s
  | Vptr None -> 0
  | Vptr (Some _) -> 1
  | Vstruct vs -> List.length vs
  | Vres i -> i

let rec content_hash v =
  let combine tag parts =
    List.fold_left (fun acc p -> (acc * 1000003) lxor p) (Hashtbl.hash tag) parts
  in
  match v with
  | Vconst n -> combine "c" [ n ]
  | Vint n -> combine "i" [ n ]
  | Vflags n -> combine "f" [ n ]
  | Venum n -> combine "e" [ n ]
  | Vlen n -> combine "l" [ n ]
  | Vbuf { len; seed } -> combine "b" [ len; seed ]
  | Vstr s -> combine "s" [ str_hash s ]
  | Vptr None -> combine "p0" []
  | Vptr (Some v) -> combine "p" [ content_hash v ]
  | Vstruct vs -> combine "t" (List.map content_hash vs)
  | Vres i -> combine "r" [ i ]

let rec equal a b =
  match (a, b) with
  | Vconst x, Vconst y
  | Vint x, Vint y
  | Vflags x, Vflags y
  | Venum x, Venum y
  | Vlen x, Vlen y
  | Vres x, Vres y ->
    x = y
  | Vbuf a, Vbuf b -> a.len = b.len && a.seed = b.seed
  | Vstr x, Vstr y -> String.equal x y
  | Vptr None, Vptr None -> true
  | Vptr (Some x), Vptr (Some y) -> equal x y
  | Vstruct xs, Vstruct ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | ( ( Vconst _ | Vint _ | Vflags _ | Venum _ | Vlen _ | Vbuf _ | Vstr _
      | Vptr _ | Vstruct _ | Vres _ ),
      _ ) ->
    false

let rec pp ppf = function
  | Vconst n -> Format.fprintf ppf "const:%d" n
  | Vint n -> Format.fprintf ppf "%d" n
  | Vflags n -> Format.fprintf ppf "0x%x" n
  | Venum n -> Format.fprintf ppf "e:%d" n
  | Vlen n -> Format.fprintf ppf "len:%d" n
  | Vbuf { len; seed } -> Format.fprintf ppf "buf(%d, %d)" len seed
  | Vstr s -> Format.fprintf ppf "%S" s
  | Vptr None -> Format.pp_print_string ppf "nil"
  | Vptr (Some v) -> Format.fprintf ppf "&%a" pp v
  | Vstruct vs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      vs
  | Vres i -> if i < 0 then Format.pp_print_string ppf "bogus" else Format.fprintf ppf "r%d" i

let to_string v = Format.asprintf "%a" pp v
