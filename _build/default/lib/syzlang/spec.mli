(** System-call specifications and the specification database.

    A spec is one Syzlang "variant" (e.g. [sendmsg$inet]): a name, typed
    arguments, and optionally the kind of kernel resource its return value
    produces. The database assigns dense ids used across the kernel model,
    the mutation engine, and PMM's vocabulary. *)

type t = {
  name : string;
  sys_id : int;  (** dense id within the database that created it *)
  args : Ty.field list;
  ret : string option;  (** resource kind produced by the return value *)
}

type db

val make_db : (string * Ty.field list * string option) list -> db
(** Builds the database; ids are assigned in list order. Raises
    [Invalid_argument] on duplicate names. *)

val find : db -> string -> t option

val find_exn : db -> string -> t

val by_id : db -> int -> t

val count : db -> int

val all : db -> t list
(** In id order. *)

val producers_of : db -> string -> t list
(** Specs whose return produces the given resource kind. *)

val arg_count : t -> int
(** Total number of argument nodes (all nesting levels), i.e. the size of the
    mutation localization space for this call. *)

val pp : Format.formatter -> t -> unit
