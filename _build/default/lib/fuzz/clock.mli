(** Virtual campaign clock.

    The paper's campaigns are wall-clock hours on GCP machines; here a
    virtual clock advances by a cost model per executed test (calibrated to
    the paper's ~390 tests/second per fuzzing machine, §5.5), so "24 hours"
    of fuzzing completes in seconds while preserving every relative timing
    the paper reports — speedups, time-to-coverage, time-to-target. *)

type t

val create : unit -> t

val now : t -> float
(** Seconds since campaign start. *)

val advance : t -> float -> unit
(** Raises [Invalid_argument] on negative increments. *)
