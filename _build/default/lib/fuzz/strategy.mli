(** Pluggable fuzzing strategies.

    A strategy answers one question: given the base test just chosen from
    the corpus, which mutant programs should be executed next? The baseline
    strategies here reproduce Syzkaller (semi-random mutations) and
    SyzDirect (target-subsystem-biased mutations); Snowplow's PMM-guided
    strategies live in the [snowplow] library and plug into the same
    interface. *)

type proposal = { prog : Sp_syzlang.Prog.t; origin : string }

type t = {
  name : string;
  throughput_factor : float;
      (** relative to Syzkaller's 390 tests/s; Snowplow runs at ~383/390 *)
  propose :
    Sp_util.Rng.t ->
    now:float ->
    covered:Sp_util.Bitset.t ->
    Corpus.t ->
    Corpus.entry ->
    proposal list;
      (** [covered] is the campaign's accumulated block coverage — what a
          white-box strategy consults to pick uncovered targets. *)
}

val syzkaller :
  ?mutations_per_base:int -> Sp_syzlang.Spec.db -> t
(** Stock Syzkaller: [mutations_per_base] (default 8) mutants per base via
    the default selector/localizer; splices against random corpus donors. *)

val syzdirect :
  ?mutations_per_base:int ->
  target_sys:int option ->
  Sp_syzlang.Spec.db ->
  t
(** SyzDirect's mutation heuristics: argument mutations are focused on
    calls of the syscall whose handler hosts the target (when the base test
    has one), and a call of that syscall is inserted when missing. Base
    selection distance-weighting is handled by the campaign loop. *)
