(** The fuzzing corpus: tests worth mutating, with their cached coverage.

    A mutant enters the corpus when it covered kernel code no previous test
    did (Figure 1's [update_corpus]); each entry caches its block and edge
    coverage so base-test selection and query-graph construction never
    re-execute. *)

type entry = {
  prog : Sp_syzlang.Prog.t;
  blocks : Sp_util.Bitset.t;
  edges : Sp_util.Bitset.t;
  added_at : float;
}

type t

val create : unit -> t

val size : t -> int

val entries : t -> entry list
(** Newest first. *)

val nth : t -> int -> entry

val add : t -> entry -> bool
(** False (and no insertion) when a program with the same content hash is
    already present. *)

val mem_prog : t -> Sp_syzlang.Prog.t -> bool

val choose : Sp_util.Rng.t -> t -> entry
(** Uniform choice. Raises [Invalid_argument] on an empty corpus. *)

val choose_directed : Sp_util.Rng.t -> t -> distance:(entry -> int) -> entry
(** SyzDirect-style base selection: strongly favours entries whose coverage
    got closest to the target (minimum [distance]); falls back to uniform
    among the best tier with occasional exploration. *)
