module Rng = Sp_util.Rng
module Bug = Sp_kernel.Bug
module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog

let filtered_keywords = [ "INFO:"; "SYZFAIL"; "lost connection to the VM" ]

let severity_filter description =
  not
    (List.exists
       (fun kw ->
         (* substring search *)
         let nk = String.length kw and nd = String.length description in
         let rec at i = i + nk <= nd && (String.sub description i nk = kw || at (i + 1)) in
         at 0)
       filtered_keywords)

type found = {
  bug : Bug.t;
  description : string;
  found_at : float;
  witness : Prog.t;
  reproducer : Prog.t option;
}

type t = {
  known : (string, unit) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  mutable found_rev : found list;
}

let create kernel =
  let known = Hashtbl.create 64 in
  Array.iter
    (fun bug -> if bug.Bug.known then Hashtbl.add known (Bug.description bug) ())
    (Kernel.bugs kernel);
  { known; seen = Hashtbl.create 64; found_rev = [] }

let is_known t description = Hashtbl.mem t.known description

(* Racy crashes replay only rarely: the interpreter is deterministic, so
   irreproducibility is modelled as a per-attempt coin, matching the ~34%
   no-reproducer rate of Table 3. *)
let replay_crashes rng ~vm bug prog =
  let r = Vm.run_free vm prog in
  match r.Kernel.crash with
  | Some c when c.Kernel.bug.Bug.id = bug.Bug.id ->
    if bug.Bug.concurrency then Rng.coin rng 0.08 else true
  | Some _ | None -> false

let reproduce t rng ~vm bug prog =
  ignore t;
  let rec attempt k = k > 0 && (replay_crashes rng ~vm bug prog || attempt (k - 1)) in
  if not (attempt 3) then None
  else begin
    (* Minimization: greedily drop calls while the crash persists. *)
    let current = ref prog in
    let changed = ref true in
    while !changed do
      changed := false;
      let n = Array.length !current in
      let rec try_drop i =
        if i < n && not !changed then begin
          (if n > 1 then
             let candidate = Prog.remove_call !current i in
             if replay_crashes rng ~vm bug candidate then begin
               current := candidate;
               changed := true
             end);
          try_drop (i + 1)
        end
      in
      try_drop 0
    done;
    Some !current
  end

let record ?(attempt_repro = true) t rng ~vm ~now (crash : Kernel.crash) prog =
  let description = Bug.description crash.Kernel.bug in
  if (not (severity_filter description)) || Hashtbl.mem t.seen description then None
  else begin
    Hashtbl.add t.seen description ();
    let reproducer =
      if attempt_repro then reproduce t rng ~vm crash.Kernel.bug prog else None
    in
    let f = { bug = crash.Kernel.bug; description; found_at = now; witness = prog; reproducer } in
    t.found_rev <- f :: t.found_rev;
    Some f
  end

let all_found t = List.rev t.found_rev

let new_crashes t =
  List.filter (fun f -> not (is_known t f.description)) (all_found t)

let known_crashes t = List.filter (fun f -> is_known t f.description) (all_found t)
