lib/fuzz/clock.mli:
