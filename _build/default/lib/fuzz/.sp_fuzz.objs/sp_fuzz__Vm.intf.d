lib/fuzz/vm.mli: Clock Sp_kernel Sp_syzlang
