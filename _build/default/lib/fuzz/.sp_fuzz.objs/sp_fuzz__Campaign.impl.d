lib/fuzz/campaign.ml: Array Clock Corpus Float Hashtbl List Option Sp_cfg Sp_coverage Sp_kernel Sp_syzlang Sp_util Strategy Triage Vm
