lib/fuzz/strategy.mli: Corpus Sp_syzlang Sp_util
