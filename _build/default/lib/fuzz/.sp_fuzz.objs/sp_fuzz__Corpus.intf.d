lib/fuzz/corpus.mli: Sp_syzlang Sp_util
