lib/fuzz/distill.mli: Sp_kernel Sp_syzlang
