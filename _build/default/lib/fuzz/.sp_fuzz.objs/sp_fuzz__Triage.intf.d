lib/fuzz/triage.mli: Sp_kernel Sp_syzlang Sp_util Vm
