lib/fuzz/campaign.mli: Corpus Sp_syzlang Sp_util Strategy Triage Vm
