lib/fuzz/corpus.ml: Array Fun Hashtbl List Sp_syzlang Sp_util
