lib/fuzz/distill.ml: Array List Option Sp_kernel Sp_syzlang Sp_util
