lib/fuzz/clock.ml:
