lib/fuzz/strategy.ml: Array Corpus Fun List Sp_mutation Sp_syzlang Sp_util
