lib/fuzz/vm.ml: Array Clock Sp_kernel Sp_util
