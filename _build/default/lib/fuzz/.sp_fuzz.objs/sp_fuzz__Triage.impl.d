lib/fuzz/triage.ml: Array Hashtbl List Sp_kernel Sp_syzlang Sp_util String Vm
