module Rng = Sp_util.Rng
module Prog = Sp_syzlang.Prog
module Spec = Sp_syzlang.Spec
module Gen = Sp_syzlang.Gen
module Engine = Sp_mutation.Engine

type proposal = { prog : Prog.t; origin : string }

type t = {
  name : string;
  throughput_factor : float;
  propose :
    Rng.t ->
    now:float ->
    covered:Sp_util.Bitset.t ->
    Corpus.t ->
    Corpus.entry ->
    proposal list;
}

let syzkaller ?(mutations_per_base = 8) db =
  let engine = Engine.create ~selector:(Engine.syzkaller_selector ~splice:true ()) db in
  let propose rng ~now:_ ~covered:_ corpus (entry : Corpus.entry) =
    List.init mutations_per_base (fun _ ->
        let donor =
          if Corpus.size corpus > 1 && Rng.coin rng 0.2 then
            Some (Corpus.choose rng corpus).Corpus.prog
          else None
        in
        let mutated, applied = Engine.mutate engine rng ?donor entry.Corpus.prog in
        let origin =
          match applied with
          | Engine.Mutated_args _ -> "arg"
          | Engine.Inserted_call _ -> "insert"
          | Engine.Removed_call _ -> "remove"
          | Engine.Spliced _ -> "splice"
          | Engine.No_change -> "none"
        in
        { prog = mutated; origin })
    |> List.filter (fun p -> p.origin <> "none")
  in
  { name = "Syzkaller"; throughput_factor = 1.0; propose }

(* SyzDirect: when the base test invokes the target's syscall, focus
   argument mutations on that call's arguments; otherwise steer the test
   towards invoking it by inserting such a call (with resources wired). *)
let syzdirect ?(mutations_per_base = 8) ~target_sys db =
  let focused_localizer rng prog =
    let nodes = Prog.mutable_nodes prog in
    if nodes = [] then []
    else begin
      let focused =
        match target_sys with
        | None -> []
        | Some sys ->
          List.filter
            (fun ((p : Prog.path), _) ->
              prog.(p.Prog.call).Prog.spec.Spec.sys_id = sys)
            nodes
      in
      let pool = if focused <> [] && Rng.coin rng 0.7 then focused else nodes in
      let k = 1 + Rng.int rng 3 in
      Rng.sample rng (Array.of_list pool) k |> List.map fst
    end
  in
  let engine =
    Engine.create
      ~selector:(Engine.syzkaller_selector ~splice:false ())
      ~arg_localizer:focused_localizer db
  in
  let propose rng ~now:_ ~covered:_ _corpus (entry : Corpus.entry) =
    let base = entry.Corpus.prog in
    let has_target_call =
      match target_sys with
      | None -> true
      | Some sys ->
        Array.exists (fun (c : Prog.call) -> c.spec.Spec.sys_id = sys) base
    in
    let steered =
      match target_sys with
      | Some sys when not has_target_call ->
        (* Insert a call of the target syscall at the end, wiring any
           resources it needs to earlier producers. *)
        let call = Gen.call rng db (Spec.by_id db sys) in
        let prog = Prog.insert_call base (Array.length base) call in
        [ { prog = Gen.wire_resources rng db prog; origin = "steer" } ]
      | Some _ | None -> []
    in
    let mutants =
      List.init mutations_per_base (fun _ ->
          let mutated, applied = Engine.mutate engine rng base in
          match applied with
          | Engine.No_change -> None
          | _ -> Some { prog = mutated; origin = "directed" })
      |> List.filter_map Fun.id
    in
    steered @ mutants
  in
  { name = "SyzDirect"; throughput_factor = 1.0; propose }
