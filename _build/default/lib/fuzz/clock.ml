type t = { mutable now : float }

let create () = { now = 0.0 }

let now t = t.now

let advance t dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative increment";
  t.now <- t.now +. dt
