module Rng = Sp_util.Rng
module Prog = Sp_syzlang.Prog

type entry = {
  prog : Prog.t;
  blocks : Sp_util.Bitset.t;
  edges : Sp_util.Bitset.t;
  added_at : float;
}

type t = {
  mutable items : entry array;
  mutable count : int;
  seen : (int, unit) Hashtbl.t;
}

let create () = { items = [||]; count = 0; seen = Hashtbl.create 256 }

let size t = t.count

let nth t i =
  if i < 0 || i >= t.count then invalid_arg "Corpus.nth";
  t.items.(i)

let entries t = List.init t.count (fun i -> t.items.(t.count - 1 - i))

let mem_prog t prog = Hashtbl.mem t.seen (Prog.hash prog)

let add t entry =
  let h = Prog.hash entry.prog in
  if Hashtbl.mem t.seen h then false
  else begin
    Hashtbl.add t.seen h ();
    if t.count = Array.length t.items then begin
      let cap = max 16 (2 * Array.length t.items) in
      let items = Array.make cap entry in
      Array.blit t.items 0 items 0 t.count;
      t.items <- items
    end;
    t.items.(t.count) <- entry;
    t.count <- t.count + 1;
    true
  end

let choose rng t =
  if t.count = 0 then invalid_arg "Corpus.choose: empty corpus";
  t.items.(Rng.int rng t.count)

let choose_directed rng t ~distance =
  if t.count = 0 then invalid_arg "Corpus.choose_directed: empty corpus";
  if Rng.coin rng 0.1 then choose rng t
  else begin
    let best = ref max_int in
    for i = 0 to t.count - 1 do
      best := min !best (distance t.items.(i))
    done;
    let tier =
      List.filter (fun i -> distance t.items.(i) = !best) (List.init t.count Fun.id)
    in
    t.items.(Rng.choose_list rng tier)
  end
