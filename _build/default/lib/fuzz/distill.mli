(** Seed-corpus distillation (the Moonshine idea referenced in §7).

    Continuous fuzzing accumulates corpora full of redundant tests; a
    distilled corpus keeps the coverage while shrinking the test count, so
    campaigns seeded from it ramp up faster. Two passes: a greedy
    set-cover selection of tests by marginal coverage, then per-test call
    minimization that drops calls not contributing to the test's retained
    coverage. *)

type report = {
  kept : Sp_syzlang.Prog.t list;
  original_count : int;
  distilled_count : int;
  original_calls : int;
  distilled_calls : int;
  blocks_covered : int;  (** identical before and after, by construction *)
}

val distill :
  ?minimize_calls:bool ->
  Sp_kernel.Kernel.t ->
  Sp_syzlang.Prog.t list ->
  report
(** Crashing tests are dropped (they cannot seed a campaign); coverage is
    measured with the deterministic executor. [minimize_calls] (default
    true) enables the per-test pass. *)
