module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog

type report = {
  kept : Prog.t list;
  original_count : int;
  distilled_count : int;
  original_calls : int;
  distilled_calls : int;
  blocks_covered : int;
}

let coverage_of kernel prog =
  let r = Kernel.execute kernel prog in
  if r.Kernel.crash <> None then None else Some r.Kernel.covered

(* Greedy set cover: repeatedly take the test with the largest marginal
   block coverage. *)
let greedy_cover kernel progs =
  let with_cov =
    List.filter_map
      (fun p -> Option.map (fun c -> (p, c)) (coverage_of kernel p))
      progs
  in
  let covered = Bitset.create (Kernel.num_blocks kernel) in
  let remaining = ref with_cov and kept = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let best =
      List.fold_left
        (fun acc (p, c) ->
          let gain = Bitset.diff_cardinal c covered in
          match acc with
          | Some (_, _, g) when g >= gain -> acc
          | _ when gain = 0 -> acc
          | _ -> Some (p, c, gain))
        None !remaining
    in
    match best with
    | None -> continue_ := false
    | Some (p, c, _) ->
      ignore (Bitset.union_into ~dst:covered c);
      kept := p :: !kept;
      remaining := List.filter (fun (q, _) -> not (Prog.equal p q)) !remaining
  done;
  (List.rev !kept, covered)

(* Drop calls that do not contribute to this test's own coverage. *)
let minimize kernel prog =
  match coverage_of kernel prog with
  | None -> prog
  | Some full ->
    let current = ref prog in
    let changed = ref true in
    while !changed do
      changed := false;
      let n = Array.length !current in
      let rec try_drop i =
        if i < n && not !changed then begin
          (if n > 1 then
             let candidate = Prog.remove_call !current i in
             match coverage_of kernel candidate with
             | Some c when Bitset.diff_cardinal full c = 0 ->
               current := candidate;
               changed := true
             | Some _ | None -> ());
          try_drop (i + 1)
        end
      in
      try_drop 0
    done;
    !current

let total_calls progs =
  List.fold_left (fun acc p -> acc + Array.length p) 0 progs

let distill ?(minimize_calls = true) kernel progs =
  let kept, covered = greedy_cover kernel progs in
  let kept = if minimize_calls then List.map (minimize kernel) kept else kept in
  {
    kept;
    original_count = List.length progs;
    distilled_count = List.length kept;
    original_calls = total_calls progs;
    distilled_calls = total_calls kept;
    blocks_covered = Bitset.cardinal covered;
  }
