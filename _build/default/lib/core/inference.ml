module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog

type pending = {
  ready_at : float;
  requested_at : float;
  prog : Prog.t;
  prediction : Prog.path list;
}

type t = {
  latency : float;
  capacity_qps : float;
  max_pending : int;
  cache_ttl : float;
  kernel : Kernel.t;
  block_embs : Sp_ml.Tensor.t;
  model : Pmm.t;
  mutable queue : pending list;  (* oldest first *)
  mutable next_free : float;
  mutable served : int;
  mutable dropped : int;
  mutable cache_hits : int;
  mutable latency_sum : float;
  cache : (int, float * Prog.path list) Hashtbl.t;
  (* secondary memo per base test: a recent answer for the same base with a
     slightly different target set is close enough while fresh *)
  by_prog : (int, float * Prog.path list) Hashtbl.t;
  soft_ttl : float;
}

let create ?(latency = 0.69) ?(capacity_qps = 57.0) ?(max_pending = 16)
    ?(cache_ttl = 1800.0) ~kernel ~block_embs model =
  {
    latency;
    capacity_qps;
    max_pending;
    cache_ttl;
    kernel;
    block_embs;
    model;
    queue = [];
    next_free = 0.0;
    served = 0;
    dropped = 0;
    cache_hits = 0;
    latency_sum = 0.0;
    cache = Hashtbl.create 1024;
    by_prog = Hashtbl.create 1024;
    soft_ttl = 240.0;
  }

let predict_now t prog ~targets =
  let result = Kernel.execute t.kernel prog in
  if result.Kernel.crash <> None then []
  else begin
    let graph = Query_graph.build t.kernel prog ~result ~targets in
    Pmm.predict t.model ~block_embs:t.block_embs graph
  end

let targets_key prog targets =
  List.fold_left
    (fun acc b -> (acc * 1000003) lxor b)
    (Prog.hash prog)
    (List.sort compare targets)

let request t ~now prog ~targets =
  let key = targets_key prog targets in
  let cached_answer =
    match Hashtbl.find_opt t.cache key with
    | Some (computed_at, cached) when now -. computed_at <= t.cache_ttl ->
      Some cached
    | Some _ | None -> (
      match Hashtbl.find_opt t.by_prog (Prog.hash prog) with
      | Some (computed_at, cached) when now -. computed_at <= t.soft_ttl ->
        Some cached
      | Some _ | None -> None)
  in
  match cached_answer with
  | Some cached ->
    (* A recent answer for this base is reused without touching the
       service (the integration layer memoizes per base test). *)
    t.cache_hits <- t.cache_hits + 1;
    t.queue <- t.queue @ [ { ready_at = now; requested_at = now; prog; prediction = cached } ];
    true
  | None ->
    if List.length t.queue >= t.max_pending then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      (* The service admits one query per 1/qps; each takes [latency] from
         admission to completion. *)
      let admitted = Float.max now t.next_free in
      t.next_free <- admitted +. (1.0 /. t.capacity_qps);
      let ready_at = admitted +. t.latency in
      let prediction = predict_now t prog ~targets in
      Hashtbl.replace t.cache key (now, prediction);
      Hashtbl.replace t.by_prog (Prog.hash prog) (now, prediction);
      t.queue <- t.queue @ [ { ready_at; requested_at = now; prog; prediction } ];
      true
    end

let poll t ~now =
  let ready, waiting = List.partition (fun p -> p.ready_at <= now) t.queue in
  t.queue <- waiting;
  List.map
    (fun p ->
      t.served <- t.served + 1;
      t.latency_sum <- t.latency_sum +. (p.ready_at -. p.requested_at);
      (p.prog, p.prediction))
    ready

let served t = t.served

let cache_hits t = t.cache_hits

let dropped t = t.dropped

let mean_latency t =
  if t.served = 0 then 0.0 else t.latency_sum /. float_of_int t.served

let saturation_qps t = t.capacity_qps
