(** Learned system-call insertion — the §6 extension.

    The paper argues the PMM methodology "can be used to localize system
    call insertion with no representational or training changes" and that
    instantiation prediction (choosing which of the known system-call
    variants to insert) is a minimal architecture change: predict one of
    the syscall variants instead of a binary label. This module implements
    that extension: a small relational model over the {e program side} of
    the query graph, plus a per-syscall coverage-saturation context,
    trained on successful insertion mutations to predict {e which syscall
    to insert} into a base test to unlock new coverage. (This also
    recovers HEALER-style implicit call-relation learning, §7.) *)

type config = {
  hidden : int;
  rounds : int;  (** program-graph message-passing rounds *)
  epochs : int;
  lr : float;
  seed : int;
}

val default_config : config

type t

val create :
  ?config:config -> Sp_kernel.Kernel.t -> t

(** {1 Dataset} *)

type example = {
  base : Sp_syzlang.Prog.t;
  inserted_sys : int;  (** syscall id whose insertion unlocked new coverage *)
}

val collect_examples :
  ?tries_per_base:int ->
  seed:int ->
  covered:Sp_util.Bitset.t ->
  Sp_kernel.Kernel.t ->
  bases:Sp_syzlang.Prog.t list ->
  example list
(** Random insertions executed against the kernel; an example is kept when
    the mutant covered blocks neither the base nor the whole campaign
    ([covered]) has seen — marginal novelty, the quantity a fuzzing loop
    actually optimizes (default 40 tries per base). *)

(** {1 Training and prediction} *)

val train :
  t -> covered:Sp_util.Bitset.t -> example list -> float list
(** Train on the examples given the campaign's current coverage context;
    returns the per-epoch mean loss. *)

val scores : t -> covered:Sp_util.Bitset.t -> Sp_syzlang.Prog.t -> float array
(** A probability per syscall id: how promising is inserting it into this
    base test. *)

val predict : t -> covered:Sp_util.Bitset.t -> Sp_syzlang.Prog.t -> int
(** The argmax syscall id. *)

val top_k : t -> covered:Sp_util.Bitset.t -> Sp_syzlang.Prog.t -> k:int -> int list

val accuracy :
  t -> covered:Sp_util.Bitset.t -> example list -> k:int -> float
(** Top-[k] accuracy against held-out successful insertions. *)
