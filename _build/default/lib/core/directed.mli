(** Snowplow-D: PMM plugged into the directed fuzzer (§5.4).

    SyzDirect's heuristics steer the campaign toward a target code
    location (distance-weighted base selection — handled by the campaign
    loop — plus target-syscall steering); PMM replaces random argument
    localization. The desired-coverage targets of each query are the
    uncovered frontier entries of the base test that are statically closest
    to the target block, so the model is asked "which arguments unlock the
    next branch on the way to the target". *)

val pick_targets_towards :
  Sp_util.Rng.t ->
  Sp_kernel.Kernel.t ->
  covered:Sp_util.Bitset.t ->
  dist:int array ->
  Sp_fuzz.Corpus.entry ->
  max_targets:int ->
  int list
(** Frontier entries of the base coverage, globally uncovered, restricted
    to the tier closest to the target ([dist] from
    [Cfg.distances_to]). *)

val strategy :
  ?mutations_per_base:int ->
  ?max_targets:int ->
  ?per_arg:int ->
  inference:Inference.t ->
  target:int ->
  Sp_kernel.Kernel.t ->
  Sp_fuzz.Strategy.t
(** The Snowplow-D strategy for one target block. *)
