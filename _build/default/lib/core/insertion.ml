module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Ir = Sp_kernel.Ir
module Token = Sp_kernel.Token
module Spec = Sp_syzlang.Spec
module Ty = Sp_syzlang.Ty
module Prog = Sp_syzlang.Prog
module Gen = Sp_syzlang.Gen
module Ad = Sp_ml.Ad
module Nn = Sp_ml.Nn
module Tensor = Sp_ml.Tensor
module Optim = Sp_ml.Optim

type config = { hidden : int; rounds : int; epochs : int; lr : float; seed : int }

let default_config = { hidden = 20; rounds = 2; epochs = 6; lr = 3e-3; seed = 41 }

type t = {
  cfg : config;
  kernel : Kernel.t;
  num_sys : int;
  sys_emb : Nn.Embedding.t;
  kind_emb : Nn.Embedding.t;
  sig_emb : Nn.Embedding.t;
  rel : Nn.Linear.t array;  (* program relations, forward + reverse *)
  self_map : Nn.Linear.t;
  ctx_proj : Nn.Linear.t;  (* per-syscall saturation vector -> hidden *)
  head : Nn.Linear.t;  (* hidden -> num_sys *)
  (* blocks of each handler, for the saturation context *)
  handler_blocks : int list array;
}

let num_relations = 6 (* contains, arg-order, call-order, each direction *)

let kind_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i k -> Hashtbl.add tbl k i) Ty.all_kind_tokens;
  fun k -> match Hashtbl.find_opt tbl k with Some i -> i | None -> 0

let create ?(config = default_config) kernel =
  let rng = Rng.create config.seed in
  let d = config.hidden in
  let num_sys = Spec.count (Kernel.spec_db kernel) in
  let handler_blocks = Array.make num_sys [] in
  for b = 0 to Kernel.num_blocks kernel - 1 do
    let sys = (Kernel.block kernel b).Ir.sys_id in
    if sys >= 0 then handler_blocks.(sys) <- b :: handler_blocks.(sys)
  done;
  {
    cfg = config;
    kernel;
    num_sys;
    sys_emb = Nn.Embedding.create rng ~vocab:num_sys ~dim:d;
    kind_emb = Nn.Embedding.create rng ~vocab:(List.length Ty.all_kind_tokens) ~dim:d;
    sig_emb = Nn.Embedding.create rng ~vocab:Token.num_opsig_buckets ~dim:d;
    rel = Array.init num_relations (fun _ -> Nn.Linear.create ~bias:false rng d d);
    self_map = Nn.Linear.create rng d d;
    ctx_proj = Nn.Linear.create rng num_sys d;
    head = Nn.Linear.create rng d num_sys;
    handler_blocks;
  }

let params t =
  Nn.Embedding.params t.sys_emb @ Nn.Embedding.params t.kind_emb
  @ Nn.Embedding.params t.sig_emb
  @ List.concat_map Nn.Linear.params (Array.to_list t.rel)
  @ Nn.Linear.params t.self_map @ Nn.Linear.params t.ctx_proj
  @ Nn.Linear.params t.head

(* Per-syscall handler-coverage saturation under the campaign's coverage:
   an almost-exhausted handler makes inserting its syscall unattractive. *)
let saturation t ~covered =
  Array.map
    (fun blocks ->
      match blocks with
      | [] -> 0.0
      | _ ->
        let hit = List.length (List.filter (Bitset.mem covered) blocks) in
        float_of_int hit /. float_of_int (List.length blocks))
    t.handler_blocks

(* Program-only graph, lowered to index arrays (a light-weight cousin of
   Pmm.prepare over Query_graph's program side). *)
type prepared = {
  n : int;
  call_pos : int array;
  call_sys : int array;
  arg_pos : int array;
  arg_kinds : int array;
  arg_sigs : int array;
  rels : (int array * int array * float array) array;
}

let prepare prog =
  let g = ref [] and n = ref 0 in
  let node () =
    incr n;
    !n - 1
  in
  let calls =
    Array.map (fun (c : Prog.call) -> (node (), c.Prog.spec.Spec.sys_id)) prog
  in
  let args = ref [] in
  let arg_node = Hashtbl.create 32 in
  List.iter
    (fun ((path : Prog.path), ty) ->
      let idx = node () in
      Hashtbl.add arg_node (path.Prog.call, path.Prog.arg) idx;
      args := (idx, kind_index (Ty.kind_token ty), 0) :: !args)
    (Prog.arg_nodes prog);
  (* relations: 0 contains, 1 arg-order, 2 call-order (+3 reversed) *)
  let add r src dst = g := (r, src, dst) :: !g in
  Array.iteri
    (fun i (idx, _) -> if i > 0 then add 2 (fst calls.(i - 1)) idx)
    calls;
  List.iter
    (fun ((path : Prog.path), _) ->
      let idx = Hashtbl.find arg_node (path.Prog.call, path.Prog.arg) in
      match List.rev path.Prog.arg with
      | [] -> ()
      | [ top ] ->
        add 0 (fst calls.(path.Prog.call)) idx;
        if top > 0 then (
          match Hashtbl.find_opt arg_node (path.Prog.call, [ top - 1 ]) with
          | Some s -> add 1 s idx
          | None -> ())
      | last :: parent_rev -> (
        (match Hashtbl.find_opt arg_node (path.Prog.call, List.rev parent_rev) with
        | Some pidx -> add 0 pidx idx
        | None -> ());
        if last > 0 then
          match
            Hashtbl.find_opt arg_node (path.Prog.call, List.rev ((last - 1) :: parent_rev))
          with
          | Some s -> add 1 s idx
          | None -> ()))
    (Prog.arg_nodes prog);
  let buckets = Array.make num_relations [] in
  List.iter
    (fun (r, s, d) ->
      buckets.(r) <- (s, d) :: buckets.(r);
      buckets.(r + 3) <- (d, s) :: buckets.(r + 3))
    !g;
  let rels =
    Array.map
      (fun pairs ->
        let pairs = Array.of_list pairs in
        let indeg = Hashtbl.create 16 in
        Array.iter
          (fun (_, d) ->
            Hashtbl.replace indeg d (1 + Option.value ~default:0 (Hashtbl.find_opt indeg d)))
          pairs;
        ( Array.map fst pairs,
          Array.map snd pairs,
          Array.map (fun (_, d) -> 1.0 /. float_of_int (Hashtbl.find indeg d)) pairs ))
      buckets
  in
  {
    n = !n;
    call_pos = Array.map fst calls;
    call_sys = Array.map snd calls;
    arg_pos = Array.of_list (List.rev_map (fun (i, _, _) -> i) !args);
    arg_kinds = Array.of_list (List.rev_map (fun (_, k, _) -> k) !args);
    arg_sigs = Array.of_list (List.rev_map (fun (_, _, s) -> s) !args);
    rels;
  }

let scatter ~n ~pos x =
  let k = Array.length pos in
  Ad.spmm ~src:(Array.init k Fun.id) ~dst:pos ~coef:(Array.make k 1.0) ~rows:n x

let forward t ~covered prog =
  let p = prepare prog in
  let h0 =
    let base = scatter ~n:p.n ~pos:p.call_pos (Nn.Embedding.lookup t.sys_emb p.call_sys) in
    if Array.length p.arg_pos = 0 then base
    else
      Ad.add base
        (scatter ~n:p.n ~pos:p.arg_pos
           (Ad.add
              (Nn.Embedding.lookup t.kind_emb p.arg_kinds)
              (Nn.Embedding.lookup t.sig_emb p.arg_sigs)))
  in
  let h = ref h0 in
  for _ = 1 to t.cfg.rounds do
    let acc = ref (Nn.Linear.apply t.self_map !h) in
    Array.iteri
      (fun r (src, dst, coef) ->
        if Array.length src > 0 then
          acc :=
            Ad.add !acc
              (Ad.spmm ~src ~dst ~coef ~rows:p.n (Nn.Linear.apply t.rel.(r) !h)))
      p.rels;
    h := Ad.relu !acc
  done;
  (* pooled program embedding over call nodes *)
  let k = Array.length p.call_pos in
  let pool = Ad.const (Tensor.of_row (Array.make k (1.0 /. float_of_int k))) in
  let prog_emb = Ad.matmul pool (Ad.gather_rows !h p.call_pos) in
  let ctx =
    Nn.Linear.apply t.ctx_proj
      (Ad.const (Tensor.of_row (saturation t ~covered)))
  in
  Nn.Linear.apply t.head (Ad.relu (Ad.add prog_emb ctx))

type example = { base : Prog.t; inserted_sys : int }

let collect_examples ?(tries_per_base = 40) ~seed ~covered kernel ~bases =
  let rng = Rng.create seed in
  let db = Kernel.spec_db kernel in
  let specs = Array.of_list (Spec.all db) in
  List.concat_map
    (fun base ->
      let r0 = Kernel.execute kernel base in
      if r0.Kernel.crash <> None then []
      else begin
        let found = ref [] in
        for _ = 1 to tries_per_base do
          let spec = Rng.choose rng specs in
          let pos = Rng.int rng (Array.length base + 1) in
          let call = Gen.call rng db spec in
          let mutant =
            Gen.wire_resources rng db (Prog.insert_call base pos call)
          in
          let r = Kernel.execute kernel mutant in
          (* Success is marginal to the campaign's accumulated coverage:
             on a fresh kernel every insertion trivially covers a new
             handler, so the informative label is "still unlocks something
             the whole campaign has not seen". *)
          if r.Kernel.crash = None
             && Bitset.diff_cardinal r.Kernel.covered r0.Kernel.covered > 0
             && Bitset.diff_cardinal r.Kernel.covered covered > 0
          then found := { base; inserted_sys = spec.Spec.sys_id } :: !found
        done;
        !found
      end)
    bases

let train t ~covered examples =
  let rng = Rng.create (t.cfg.seed lxor 0x7a1) in
  let optim = Optim.adam ~lr:t.cfg.lr (params t) in
  let arr = Array.of_list examples in
  let losses = ref [] in
  for _epoch = 1 to t.cfg.epochs do
    Rng.shuffle rng arr;
    let total = ref 0.0 in
    Array.iter
      (fun ex ->
        let logits = forward t ~covered ex.base in
        let loss = Ad.cross_entropy_rows logits ~targets:[| ex.inserted_sys |] in
        Optim.zero_grad optim;
        Ad.backward loss;
        Optim.step optim;
        total := !total +. Tensor.get (Ad.value loss) 0 0)
      arr;
    losses := (!total /. float_of_int (max 1 (Array.length arr))) :: !losses
  done;
  List.rev !losses

let scores t ~covered prog =
  let logits = Ad.value (forward t ~covered prog) in
  let raw = Array.init t.num_sys (fun i -> Tensor.get logits 0 i) in
  let mx = Array.fold_left Float.max neg_infinity raw in
  let exps = Array.map (fun v -> exp (v -. mx)) raw in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps

let top_k t ~covered prog ~k =
  let s = scores t ~covered prog in
  let idx = Array.init t.num_sys Fun.id in
  Array.sort (fun a b -> compare s.(b) s.(a)) idx;
  Array.to_list (Array.sub idx 0 (min k t.num_sys))

let predict t ~covered prog = List.hd (top_k t ~covered prog ~k:1)

let accuracy t ~covered examples ~k =
  match examples with
  | [] -> 0.0
  | _ ->
    let hits =
      List.length
        (List.filter
           (fun ex -> List.mem ex.inserted_sys (top_k t ~covered ex.base ~k))
           examples)
    in
    float_of_int hits /. float_of_int (List.length examples)
