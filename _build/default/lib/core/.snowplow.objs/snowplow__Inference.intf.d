lib/core/inference.mli: Pmm Sp_kernel Sp_ml Sp_syzlang
