lib/core/directed.mli: Inference Sp_fuzz Sp_kernel Sp_util
