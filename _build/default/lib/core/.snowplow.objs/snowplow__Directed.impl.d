lib/core/directed.ml: Array Hybrid Inference List Sp_cfg Sp_fuzz Sp_kernel Sp_mutation Sp_util
