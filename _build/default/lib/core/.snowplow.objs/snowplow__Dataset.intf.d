lib/core/dataset.mli: Pmm Query_graph Sp_kernel Sp_syzlang
