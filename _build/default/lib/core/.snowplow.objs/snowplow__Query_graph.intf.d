lib/core/query_graph.mli: Sp_kernel Sp_syzlang
