lib/core/insertion.ml: Array Float Fun Hashtbl List Option Sp_kernel Sp_ml Sp_syzlang Sp_util
