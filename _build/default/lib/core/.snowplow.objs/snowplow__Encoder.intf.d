lib/core/encoder.mli: Sp_kernel Sp_ml
