lib/core/pipeline.ml: Dataset Encoder Inference List Pmm Sp_fuzz Sp_kernel Sp_ml Sp_syzlang Sp_util Trainer
