lib/core/hybrid.mli: Inference Insertion Sp_fuzz Sp_kernel Sp_mutation Sp_syzlang Sp_util
