lib/core/insertion.mli: Sp_kernel Sp_syzlang Sp_util
