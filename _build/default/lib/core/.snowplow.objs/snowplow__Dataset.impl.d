lib/core/dataset.ml: Array Hashtbl List Option Pmm Query_graph Sp_kernel Sp_mutation Sp_syzlang Sp_util
