lib/core/trainer.mli: Dataset Pmm Sp_ml
