lib/core/inference.ml: Float Hashtbl List Pmm Query_graph Sp_kernel Sp_ml Sp_syzlang
