lib/core/hybrid.ml: Array Fun Hashtbl Inference Insertion List Sp_cfg Sp_fuzz Sp_kernel Sp_mutation Sp_syzlang Sp_util
