lib/core/encoder.ml: Array Fun List Sp_kernel Sp_ml Sp_util
