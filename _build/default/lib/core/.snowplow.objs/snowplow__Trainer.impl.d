lib/core/trainer.ml: Array Dataset Fun List Pmm Sp_ml Sp_syzlang Sp_util
