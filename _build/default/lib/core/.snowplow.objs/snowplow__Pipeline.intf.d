lib/core/pipeline.mli: Dataset Encoder Inference Pmm Sp_kernel Sp_ml Sp_syzlang Trainer
