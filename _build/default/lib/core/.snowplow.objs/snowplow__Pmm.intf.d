lib/core/pmm.mli: Query_graph Sp_ml Sp_syzlang
