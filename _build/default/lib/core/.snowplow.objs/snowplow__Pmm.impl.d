lib/core/pmm.ml: Array Fun Hashtbl List Option Query_graph Sp_kernel Sp_ml Sp_syzlang Sp_util
