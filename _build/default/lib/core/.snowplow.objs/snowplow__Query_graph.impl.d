lib/core/query_graph.ml: Array Hashtbl List Sp_cfg Sp_kernel Sp_syzlang Sp_util
