module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Token = Sp_kernel.Token
module Prog = Sp_syzlang.Prog
module Spec = Sp_syzlang.Spec
module Ty = Sp_syzlang.Ty
module Value = Sp_syzlang.Value

type node =
  | Syscall of { call : int; sys_id : int }
  | Arg of {
      path : Prog.path;
      kind : string;
      detail_sig : int;
      mutable_node : bool;
    }
  | Covered_block of int
  | Alt_block of int
  | Target_block of int

type edge_kind =
  | Call_order
  | Contains
  | Arg_order
  | Res_flow
  | Ctx_entry
  | Ctx_exit
  | Cf_covered
  | Cf_frontier
  | Handler

let num_edge_kinds = 9

let edge_kind_index = function
  | Call_order -> 0
  | Contains -> 1
  | Arg_order -> 2
  | Res_flow -> 3
  | Ctx_entry -> 4
  | Ctx_exit -> 5
  | Cf_covered -> 6
  | Cf_frontier -> 7
  | Handler -> 8

let edge_kind_to_string = function
  | Call_order -> "call-order"
  | Contains -> "contains"
  | Arg_order -> "arg-order"
  | Res_flow -> "res-flow"
  | Ctx_entry -> "ctx-entry"
  | Ctx_exit -> "ctx-exit"
  | Cf_covered -> "cf-covered"
  | Cf_frontier -> "cf-frontier"
  | Handler -> "handler"

type t = {
  nodes : node array;
  edges : (int * int * edge_kind) array;
  arg_index : (int * Prog.path) list;
  target_blocks : int list;
}

(* Detail name of the argument node at [path] within [spec] (the named
   flag-set / enum / resource kind, or the field name): the information the
   paper embeds for argument vertices. *)
let detail_of (spec : Spec.t) path =
  match path with
  | [] -> invalid_arg "Query_graph.detail_of: empty path"
  | top :: rest ->
    let rec go (f : Ty.field) = function
      | [] -> Token.detail_name f.fty ~fallback:f.fname
      | i :: rest -> (
        match f.fty with
        | Ty.Ptr inner -> go { Ty.fname = f.fname; fty = inner } (i :: rest)
        | Ty.Struct fields when i < List.length fields ->
          go (List.nth fields i) rest
        | _ -> f.fname)
    in
    (match List.nth_opt spec.Spec.args top with
    | Some f -> go f rest
    | None -> "?")

let frontier_blocks kernel (result : Kernel.result) =
  Sp_cfg.Cfg.frontier (Kernel.cfg kernel) ~covered:result.Kernel.covered

let is_mutable_kind (ty : Ty.t) =
  match ty with
  | Ty.Const _ | Ty.Len _ | Ty.Struct _ -> false
  | Ty.Int _ | Ty.Flags _ | Ty.Enum _ | Ty.Buffer _ | Ty.Str _ | Ty.Ptr _
  | Ty.Resource _ ->
    true

let build ?(drop = []) kernel prog ~result ~targets =
  let nodes = ref [] and n_nodes = ref 0 in
  let edges = ref [] in
  let new_node node =
    nodes := node :: !nodes;
    incr n_nodes;
    !n_nodes - 1
  in
  let add_edge src dst kind =
    if not (List.mem kind drop) then edges := (src, dst, kind) :: !edges
  in
  (* Program side: syscall nodes, argument nodes, program-structure edges. *)
  let call_nodes = Array.make (Array.length prog) (-1) in
  Array.iteri
    (fun ci (c : Prog.call) ->
      call_nodes.(ci) <- new_node (Syscall { call = ci; sys_id = c.spec.Spec.sys_id }))
    prog;
  Array.iteri
    (fun ci _ -> if ci > 0 then add_edge call_nodes.(ci - 1) call_nodes.(ci) Call_order)
    prog;
  let arg_index = ref [] in
  let arg_node_of = Hashtbl.create 64 in
  (* First pass: create one node per argument path. *)
  let all_nodes = Prog.arg_nodes prog in
  List.iter
    (fun ((path : Prog.path), ty) ->
      let spec = prog.(path.Prog.call).Prog.spec in
      let idx =
        new_node
          (Arg
             {
               path;
               kind = Ty.kind_token ty;
               detail_sig = Token.opsig_bucket (detail_of spec path.Prog.arg);
               mutable_node = is_mutable_kind ty;
             })
      in
      Hashtbl.add arg_node_of (path.Prog.call, path.Prog.arg) idx;
      arg_index := (idx, path) :: !arg_index)
    all_nodes;
  (* Second pass: containment, ordering and resource-flow edges. *)
  List.iter
    (fun ((path : Prog.path), _ty) ->
      let idx = Hashtbl.find arg_node_of (path.Prog.call, path.Prog.arg) in
      (match List.rev path.Prog.arg with
      | [] -> ()
      | [ _top ] -> add_edge call_nodes.(path.Prog.call) idx Contains
      | last :: parent_rev ->
        let parent = List.rev parent_rev in
        (match Hashtbl.find_opt arg_node_of (path.Prog.call, parent) with
        | Some pidx -> add_edge pidx idx Contains
        | None -> ());
        (* Sibling ordering edge from the previous sibling. *)
        if last > 0 then
          let sib = List.rev ((last - 1) :: parent_rev) in
          (match Hashtbl.find_opt arg_node_of (path.Prog.call, sib) with
          | Some sidx -> add_edge sidx idx Arg_order
          | None -> ()));
      (* Top-level sibling ordering. *)
      (match path.Prog.arg with
      | [ top ] when top > 0 -> (
        match Hashtbl.find_opt arg_node_of (path.Prog.call, [ top - 1 ]) with
        | Some sidx -> add_edge sidx idx Arg_order
        | None -> ())
      | _ -> ());
      (* Resource data flow: producing call -> consuming argument node. *)
      match Prog.get prog path with
      | Value.Vres i when i >= 0 && i < Array.length prog ->
        add_edge call_nodes.(i) idx Res_flow
      | _ -> ()
      | exception Invalid_argument _ -> ())
    all_nodes;
  (* Kernel side: covered blocks, frontier blocks, control-flow edges. *)
  let block_node = Hashtbl.create 256 in
  Bitset.iter
    (fun b -> Hashtbl.replace block_node b (new_node (Covered_block b)))
    result.Kernel.covered;
  let target_set = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace target_set b ()) targets;
  let frontier = frontier_blocks kernel result in
  let marked_targets = ref [] in
  List.iter
    (fun (entry, via) ->
      let is_target = Hashtbl.mem target_set entry in
      let idx =
        new_node (if is_target then Target_block entry else Alt_block entry)
      in
      if is_target then marked_targets := entry :: !marked_targets;
      Hashtbl.replace block_node entry idx;
      (match Hashtbl.find_opt block_node via with
      | Some vidx -> add_edge vidx idx Cf_frontier
      | None -> ());
      (* Handler-membership shortcut: every call of the owning syscall is
         one hop from the frontier entry. *)
      let owner = (Kernel.block kernel entry).Sp_kernel.Ir.sys_id in
      Array.iteri
        (fun ci (c : Prog.call) ->
          if c.spec.Spec.sys_id = owner then add_edge call_nodes.(ci) idx Handler)
        prog)
    frontier;
  (* Executed control-flow edges, from the traces. *)
  let seen_cf = Hashtbl.create 256 in
  List.iter
    (fun (tr : Kernel.call_trace) ->
      let rec go = function
        | [] | [ _ ] -> ()
        | b1 :: (b2 :: _ as rest) ->
          if not (Hashtbl.mem seen_cf (b1, b2)) then begin
            Hashtbl.add seen_cf (b1, b2) ();
            match (Hashtbl.find_opt block_node b1, Hashtbl.find_opt block_node b2) with
            | Some i1, Some i2 -> add_edge i1 i2 Cf_covered
            | _ -> ()
          end;
          go rest
      in
      go tr.Kernel.visited)
    result.Kernel.traces;
  (* Kernel-user context switches: call -> handler entry, handler exit ->
     call, when those blocks were reached. *)
  Array.iteri
    (fun ci (c : Prog.call) ->
      let sys = c.spec.Spec.sys_id in
      (match Hashtbl.find_opt block_node (Kernel.handler_entry kernel sys) with
      | Some bidx -> add_edge call_nodes.(ci) bidx Ctx_entry
      | None -> ());
      match Hashtbl.find_opt block_node (Kernel.handler_exit kernel sys) with
      | Some bidx -> add_edge bidx call_nodes.(ci) Ctx_exit
      | None -> ())
    prog;
  {
    nodes = Array.of_list (List.rev !nodes);
    edges = Array.of_list (List.rev !edges);
    arg_index = List.rev !arg_index;
    target_blocks = List.rev !marked_targets;
  }

let stats t =
  let count f = Array.fold_left (fun acc x -> if f x then acc + 1 else acc) 0 in
  let node_is k n =
    match (k, n) with
    | `Sys, Syscall _ | `Arg, Arg _ | `Cov, Covered_block _ | `Alt, Alt_block _
    | `Tgt, Target_block _ ->
      true
    | _ -> false
  in
  let edge_is k (_, _, kind) = kind = k in
  [
    ("nodes", Array.length t.nodes);
    ("syscall nodes", count (node_is `Sys) t.nodes);
    ("argument nodes", count (node_is `Arg) t.nodes);
    ("covered block nodes", count (node_is `Cov) t.nodes);
    ("alternative entry nodes", count (node_is `Alt) t.nodes);
    ("target nodes", count (node_is `Tgt) t.nodes);
    ("edges", Array.length t.edges);
    ("call ordering edges", count (edge_is Call_order) t.edges);
    ("containment edges", count (edge_is Contains) t.edges);
    ("argument ordering edges", count (edge_is Arg_order) t.edges);
    ("argument in/out edges", count (edge_is Res_flow) t.edges);
    ("context switch edges", count (edge_is Ctx_entry) t.edges
                             + count (edge_is Ctx_exit) t.edges);
    ("covered control flow edges", count (edge_is Cf_covered) t.edges);
    ("uncovered control flow edges", count (edge_is Cf_frontier) t.edges);
  ]
