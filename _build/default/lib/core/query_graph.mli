(** The argument-mutation query graph of §3.2 and Figure 5.

    A single graph joins the user-space test program and its kernel
    coverage: program nodes (one per system call, one per argument node at
    every nesting level) and kernel nodes (covered basic blocks, uncovered
    "alternative path entries" one not-taken branch away, and the subset of
    those marked as the desired targets), connected by six edge families —
    call ordering, argument containment/ordering, resource data flow,
    kernel-user context switches, covered control flow, and not-taken
    branches to the frontier. *)

type node =
  | Syscall of { call : int; sys_id : int }
  | Arg of {
      path : Sp_syzlang.Prog.path;
      kind : string;  (** the {!Sp_syzlang.Ty.kind_token} *)
      detail_sig : int;  (** bucketed name token, {!Sp_kernel.Token.opsig_bucket} *)
      mutable_node : bool;
    }
  | Covered_block of int
  | Alt_block of int  (** alternative path entry (uncovered) *)
  | Target_block of int  (** alternative path entry marked as desired *)

type edge_kind =
  | Call_order  (** call i -> call i+1 *)
  | Contains  (** call -> top-level arg; parent arg -> child arg *)
  | Arg_order  (** sibling argument ordering *)
  | Res_flow  (** producing call -> consuming resource argument *)
  | Ctx_entry  (** call -> handler entry block *)
  | Ctx_exit  (** handler exit block -> call *)
  | Cf_covered  (** executed kernel control-flow edge *)
  | Cf_frontier  (** covered block -> alternative path entry *)
  | Handler
      (** call -> frontier entries inside its own handler. A diameter
          shortcut: the paper's production-scale GNN can propagate over
          long covered chains, the laptop-scale model cannot, so handler
          membership (information a kernel CFG carries anyway) is made
          explicit. The ablation bench quantifies its effect. *)

val num_edge_kinds : int

val edge_kind_index : edge_kind -> int

val edge_kind_to_string : edge_kind -> string

type t = {
  nodes : node array;
  edges : (int * int * edge_kind) array;  (** (src, dst, kind) *)
  arg_index : (int * Sp_syzlang.Prog.path) list;
      (** node index of every argument node, with its path *)
  target_blocks : int list;  (** kernel block ids marked as targets *)
}

val build :
  ?drop:edge_kind list ->
  Sp_kernel.Kernel.t ->
  Sp_syzlang.Prog.t ->
  result:Sp_kernel.Kernel.result ->
  targets:int list ->
  t
(** Build the query for a base test from its (deterministic) execution
    result. [targets] are kernel block ids to mark as desired; ids that are
    not alternative path entries of this coverage are ignored. [drop]
    removes whole edge families (used by the representation ablations). *)

val frontier_blocks :
  Sp_kernel.Kernel.t -> Sp_kernel.Kernel.result -> (int * int) list
(** Alternative path entries [(entry, via)] of a result's block coverage. *)

val stats : t -> (string * int) list
(** Node/edge counts per kind — the dataset statistics reported in §5.1. *)
