module Rng = Sp_util.Rng
module Kernel = Sp_kernel.Kernel
module Token = Sp_kernel.Token
module Ad = Sp_ml.Ad
module Nn = Sp_ml.Nn
module Tensor = Sp_ml.Tensor
module Optim = Sp_ml.Optim

type config = { dim : int; max_len : int; steps : int; lr : float; seed : int }

let default_config = { dim = 16; max_len = 8; steps = 3000; lr = 3e-3; seed = 17 }

type t = {
  config : config;
  tok_emb : Nn.Embedding.t;
  pos_emb : Nn.Embedding.t;
  wq : Nn.Linear.t;
  wk : Nn.Linear.t;
  wv : Nn.Linear.t;
  wo : Nn.Linear.t;
  ffn1 : Nn.Linear.t;
  ffn2 : Nn.Linear.t;
  lm_head : Nn.Linear.t;
}

let mask_token = Token.vocab_size

let vocab = Token.vocab_size + 1

let dim t = t.config.dim

let params t =
  Nn.Embedding.params t.tok_emb @ Nn.Embedding.params t.pos_emb
  @ Nn.Linear.params t.wq @ Nn.Linear.params t.wk @ Nn.Linear.params t.wv
  @ Nn.Linear.params t.wo @ Nn.Linear.params t.ffn1 @ Nn.Linear.params t.ffn2
  @ Nn.Linear.params t.lm_head

let create config =
  let rng = Rng.create config.seed in
  let d = config.dim in
  {
    config;
    tok_emb = Nn.Embedding.create rng ~vocab ~dim:d;
    pos_emb = Nn.Embedding.create rng ~vocab:config.max_len ~dim:d;
    wq = Nn.Linear.create ~bias:false rng d d;
    wk = Nn.Linear.create ~bias:false rng d d;
    wv = Nn.Linear.create ~bias:false rng d d;
    wo = Nn.Linear.create ~bias:false rng d d;
    ffn1 = Nn.Linear.create rng d (2 * d);
    ffn2 = Nn.Linear.create rng (2 * d) d;
    lm_head = Nn.Linear.create rng d vocab;
  }

(* One pre-norm-free transformer block over a single sequence. *)
let forward t tokens =
  let len = min (Array.length tokens) t.config.max_len in
  let toks = Array.sub tokens 0 len in
  let x0 =
    Ad.add
      (Nn.Embedding.lookup t.tok_emb toks)
      (Nn.Embedding.lookup t.pos_emb (Array.init len Fun.id))
  in
  let q = Nn.Linear.apply t.wq x0
  and k = Nn.Linear.apply t.wk x0
  and v = Nn.Linear.apply t.wv x0 in
  let scores = Ad.scale (1.0 /. sqrt (float_of_int t.config.dim)) (Ad.matmul_nt q k) in
  let attended = Ad.matmul (Ad.softmax_rows scores) v in
  let x1 = Ad.add x0 (Nn.Linear.apply t.wo attended) in
  let ff = Nn.Linear.apply t.ffn2 (Ad.relu (Nn.Linear.apply t.ffn1 x1)) in
  Ad.add x1 ff

let block_tokens kernel =
  Array.init (Kernel.num_blocks kernel) (fun b -> (Kernel.block kernel b).Sp_kernel.Ir.tokens)

let pretrain ?(config = default_config) kernel =
  let t = create config in
  let rng = Rng.create (config.seed lxor 0xbe27) in
  let optim = Optim.adam ~lr:config.lr (params t) in
  let all = block_tokens kernel in
  let eligible =
    Array.of_list
      (List.filter (fun toks -> Array.length toks >= 2) (Array.to_list all))
  in
  for _step = 1 to config.steps do
    let toks = Array.copy (Rng.choose rng eligible) in
    let len = min (Array.length toks) config.max_len in
    let pos = Rng.int rng len in
    let original = toks.(pos) in
    toks.(pos) <- mask_token;
    let out = forward t toks in
    let logits = Nn.Linear.apply t.lm_head out in
    let targets = Array.make len (-1) in
    targets.(pos) <- original;
    let loss = Ad.cross_entropy_rows logits ~targets in
    Optim.zero_grad optim;
    Ad.backward loss;
    Optim.step optim
  done;
  t

let embed t tokens =
  let out = Ad.value (forward t tokens) in
  let rows, cols = Tensor.dims out in
  let pooled = Array.make cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      pooled.(j) <- pooled.(j) +. (Tensor.get out i j /. float_of_int rows)
    done
  done;
  pooled

let embed_kernel t kernel =
  let n = Kernel.num_blocks kernel in
  let out = Tensor.create n t.config.dim in
  for b = 0 to n - 1 do
    let e = embed t (Kernel.block kernel b).Sp_kernel.Ir.tokens in
    Array.iteri (fun j v -> Tensor.set out b j v) e
  done;
  out

let masked_lm_accuracy t kernel ~samples ~seed =
  let rng = Rng.create seed in
  let all = block_tokens kernel in
  let eligible =
    Array.of_list
      (List.filter (fun toks -> Array.length toks >= 2) (Array.to_list all))
  in
  let correct = ref 0 in
  for _ = 1 to samples do
    let toks = Array.copy (Rng.choose rng eligible) in
    let len = min (Array.length toks) t.config.max_len in
    let pos = Rng.int rng len in
    let original = toks.(pos) in
    toks.(pos) <- mask_token;
    let logits = Ad.value (Nn.Linear.apply t.lm_head (forward t toks)) in
    let best = ref 0 and best_v = ref neg_infinity in
    for v = 0 to vocab - 1 do
      if Tensor.get logits pos v > !best_v then begin
        best_v := Tensor.get logits pos v;
        best := v
      end
    done;
    if !best = original then incr correct
  done;
  float_of_int !correct /. float_of_int samples
