module Rng = Sp_util.Rng
module Ty = Sp_syzlang.Ty
module Value = Sp_syzlang.Value
module Prog = Sp_syzlang.Prog

(* Syzkaller biases integer mutation towards "interesting" magic values
   (powers of two and off-by-ones) because kernel comparisons
   overwhelmingly involve them. *)
let magic rng =
  let base = 1 lsl Rng.int rng 13 in
  if Rng.coin rng 0.7 then base else base + Rng.int_in rng (-1) 1

let mutate_int rng lo hi v =
  let strategies =
    [ (`Uniform, 2.0); (`Delta, 2.0); (`Boundary, 1.0); (`Bitflip, 1.0);
      (`Magic, 3.0) ]
  in
  let v' =
    match Rng.weighted rng strategies with
    | `Uniform -> Rng.int_in rng lo hi
    | `Delta -> v + Rng.int_in rng (-4) 4
    | `Boundary -> if Rng.bool rng then lo else hi
    | `Bitflip -> v lxor (1 lsl Rng.int rng 10)
    | `Magic -> magic rng
  in
  max lo (min hi v')

let mutate_flags rng (fs : Ty.flag_spec) v =
  let bits = List.map snd fs.flag_values in
  match
    Rng.weighted rng
      [ (`Flip, 3.0); (`Set, 2.0); (`Exact, 1.0); (`Few, 3.0); (`Zero, 1.0) ]
  with
  | `Flip -> v lxor Rng.choose_list rng bits
  | `Set -> v lor Rng.choose_list rng bits
  | `Exact ->
    List.fold_left (fun acc b -> if Rng.bool rng then acc lor b else acc) 0 bits
  | `Few ->
    (* Exactly 1-3 (mostly 2) distinct bits: real flag predicates test
       small combinations far more often than arbitrary subsets. *)
    let k = Rng.weighted rng [ (1, 1.0); (2, 3.0); (3, 1.0) ] in
    Rng.sample rng (Array.of_list bits) k |> List.fold_left ( lor ) 0
  | `Zero -> 0

let mutate_buffer rng min_len max_len (len, _seed) =
  let len' =
    match
      Rng.weighted rng
        [ (`Uniform, 2.0); (`Delta, 2.0); (`Boundary, 1.0); (`Magic, 3.0) ]
    with
    | `Uniform -> Rng.int_in rng min_len max_len
    | `Delta -> len + Rng.int_in rng (-2) 2
    | `Boundary -> if Rng.bool rng then min_len else max_len
    | `Magic -> magic rng
  in
  (max min_len (min max_len len'), Rng.int rng 1_000_000)

let rec value rng (ty : Ty.t) (v : Value.t) : Value.t =
  match (ty, v) with
  | Ty.Const _, _ | Ty.Len _, _ -> v
  | Ty.Int { lo; hi; _ }, Value.Vint n -> Value.Vint (mutate_int rng lo hi n)
  | Ty.Flags fs, Value.Vflags n -> Value.Vflags (mutate_flags rng fs n)
  | Ty.Enum { choices; _ }, Value.Venum n ->
    let others = List.filter (fun (_, c) -> c <> n) choices in
    Value.Venum
      (match others with [] -> n | l -> snd (Rng.choose_list rng l))
  | Ty.Buffer { min_len; max_len }, Value.Vbuf { len; seed } ->
    let len, seed = mutate_buffer rng min_len max_len (len, seed) in
    Value.Vbuf { len; seed }
  | Ty.Str names, Value.Vstr s ->
    let others = List.filter (fun n -> not (String.equal n s)) names in
    Value.Vstr (match others with [] -> s | l -> Rng.choose_list rng l)
  | Ty.Ptr inner, Value.Vptr cur -> (
    match cur with
    | None -> Value.Vptr (Some (Value.default rng inner))
    | Some inner_v ->
      if Rng.coin rng 0.15 then Value.Vptr None
      else Value.Vptr (Some (value rng inner inner_v)))
  | Ty.Struct fields, Value.Vstruct vs when vs <> [] ->
    (* Mutating a struct node delegates to one random field. *)
    let i = Rng.int rng (List.length vs) in
    Value.Vstruct
      (List.mapi
         (fun j x -> if j = i then value rng (List.nth fields j).Ty.fty x else x)
         vs)
  | Ty.Resource _, Value.Vres _ ->
    (* Without program context the only safe local change is bogus; callers
       that can rewire use [at_path]. *)
    Value.Vres (-1)
  | _, _ -> Value.random rng ty

let producers_before prog kind upto =
  let acc = ref [] in
  Array.iteri
    (fun i (c : Prog.call) ->
      if i < upto && c.spec.Sp_syzlang.Spec.ret = Some kind then acc := i :: !acc)
    prog;
  !acc

let at_path rng prog (path : Prog.path) =
  let ty = Prog.ty_at prog path in
  match ty with
  | Ty.Resource kind -> (
    (* Rewiring beats local mutation for resources: point at a different
       producer, or poison with a bogus handle. *)
    let producers = producers_before prog kind path.Prog.call in
    match producers with
    | [] -> Prog.set prog path (Value.Vres (-1))
    | ps ->
      let choice =
        if Rng.coin rng 0.2 then Value.Vres (-1)
        else Value.Vres (Rng.choose_list rng ps)
      in
      Prog.set prog path choice)
  | _ ->
    (* A previous mutation in the same batch may have NULLed a pointer on
       this path; regenerate the subtree instead of reading through it. *)
    let cur =
      match Prog.get prog path with
      | v -> v
      | exception Invalid_argument _ -> Value.default rng ty
    in
    Prog.set prog path (value rng ty cur)
