module Rng = Sp_util.Rng
module Prog = Sp_syzlang.Prog
module Spec = Sp_syzlang.Spec
module Gen = Sp_syzlang.Gen

type mutation_type =
  | Argument_mutation
  | Call_insertion
  | Call_removal
  | Splice

let mutation_type_to_string = function
  | Argument_mutation -> "ARGUMENT_MUTATION"
  | Call_insertion -> "SYSCALL_INSERTION"
  | Call_removal -> "SYSCALL_REMOVAL"
  | Splice -> "SPLICE"

type applied =
  | Mutated_args of Prog.path list
  | Inserted_call of int
  | Removed_call of int
  | Spliced of int
  | No_change

type selector = Rng.t -> Prog.t -> mutation_type

type arg_localizer = Rng.t -> Prog.t -> Prog.path list

let syzkaller_selector ?(splice = false) () rng _prog =
  let weights =
    [ (Argument_mutation, 0.60); (Call_insertion, 0.25); (Call_removal, 0.10) ]
    @ if splice then [ (Splice, 0.05) ] else []
  in
  Rng.weighted rng weights

let syzkaller_arg_localizer ?(max_args = 3) () rng prog =
  let nodes = Prog.mutable_nodes prog in
  if nodes = [] then []
  else begin
    (* Syzkaller's heuristic: calls with more arguments attract more
       mutations. Weight each node's call by its node count, which is what
       uniform sampling over the flat node list achieves. *)
    let k = 1 + Rng.int rng max_args in
    let arr = Array.of_list nodes in
    Rng.sample rng arr k |> List.map fst
  end

type t = {
  db : Spec.db;
  selector : selector;
  arg_localizer : arg_localizer;
}

(* Syzkaller caps test size; beyond it, insertion degenerates to removal. *)
let apply_removal rng prog =
  if Array.length prog <= 1 then (prog, No_change)
  else begin
    let pos = Rng.int rng (Array.length prog) in
    (Prog.remove_call prog pos, Removed_call pos)
  end

let create ?selector ?arg_localizer db =
  {
    db;
    selector = (match selector with Some s -> s | None -> syzkaller_selector ());
    arg_localizer =
      (match arg_localizer with
      | Some l -> l
      | None -> syzkaller_arg_localizer ());
  }

let mutate_args_at _t rng prog paths =
  List.fold_left (fun p path -> Instantiate.at_path rng p path) prog paths

let random_call t rng prog =
  let specs = Array.of_list (Spec.all t.db) in
  let pos = Rng.int rng (Array.length prog + 1) in
  (pos, Gen.call rng t.db (Rng.choose rng specs))

let apply_argument_mutation t rng prog =
  match t.arg_localizer rng prog with
  | [] -> (prog, No_change)
  | paths -> (mutate_args_at t rng prog paths, Mutated_args paths)

let max_calls = 12

let apply_insertion t rng prog =
  if Array.length prog >= max_calls then apply_removal rng prog
  else begin
    let pos, call = random_call t rng prog in
    let grown = Prog.insert_call prog pos call in
    (* Newly inserted consumers get their resources wired like generated
       programs do; wiring may add producer calls, so the cap is enforced
       on the final result. *)
    let wired = Gen.wire_resources rng t.db grown in
    if Array.length wired > max_calls then apply_removal rng prog
    else (wired, Inserted_call pos)
  end

let apply_splice t rng prog donor =
  (* Append a prefix of the donor; resource references inside the appended
     calls keep their relative targets by shifting them. *)
  let take =
    min
      (1 + Rng.int rng (max 1 (Array.length donor)))
      (max 0 (max_calls - Array.length prog))
  in
  if take = 0 then apply_removal rng prog
  else
  let base_len = Array.length prog in
  let shifted =
    Array.sub donor 0 (min take (Array.length donor))
    |> Array.map (fun (c : Prog.call) ->
           { c with
             args =
               List.map
                 (let rec shift (v : Sp_syzlang.Value.t) =
                    match v with
                    | Vres i when i >= 0 -> Sp_syzlang.Value.Vres (i + base_len)
                    | Vptr (Some inner) -> Vptr (Some (shift inner))
                    | Vstruct vs -> Vstruct (List.map shift vs)
                    | v -> v
                  in
                  shift)
                 c.args })
  in
  let grown = Array.append prog shifted in
  let wired = Gen.wire_resources rng t.db grown in
  if Array.length wired > max_calls then apply_removal rng prog
  else (wired, Spliced (Array.length shifted))

let mutate t rng ?donor prog =
  match (t.selector rng prog, donor) with
  | Argument_mutation, _ -> apply_argument_mutation t rng prog
  | Call_insertion, _ -> apply_insertion t rng prog
  | Call_removal, _ -> apply_removal rng prog
  | Splice, Some donor -> apply_splice t rng prog donor
  | Splice, None -> apply_argument_mutation t rng prog
