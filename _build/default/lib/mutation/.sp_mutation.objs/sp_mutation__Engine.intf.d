lib/mutation/engine.mli: Sp_syzlang Sp_util
