lib/mutation/instantiate.ml: Array List Sp_syzlang Sp_util String
