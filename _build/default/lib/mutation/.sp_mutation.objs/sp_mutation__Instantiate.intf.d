lib/mutation/instantiate.mli: Sp_syzlang Sp_util
