lib/mutation/engine.ml: Array Instantiate List Sp_syzlang Sp_util
