(** The mutation engine: Figure 1's [mutate_test] with pluggable controller
    functions.

    Three policy decisions shape every mutation: {e type selection} (what
    kind of mutation), {e localization} (where to apply it) and
    {e instantiation} (how). The baseline controllers reproduce Syzkaller's
    semi-random heuristics — fixed type-selection probabilities, and
    argument localization that ignores the target and favours calls with
    more arguments. Snowplow swaps in a learned localizer while keeping
    everything else. *)

type mutation_type =
  | Argument_mutation
  | Call_insertion
  | Call_removal
  | Splice

val mutation_type_to_string : mutation_type -> string

type applied =
  | Mutated_args of Sp_syzlang.Prog.path list
  | Inserted_call of int  (** position *)
  | Removed_call of int
  | Spliced of int  (** number of calls appended from the donor *)
  | No_change  (** the program had nothing to mutate for the chosen type *)

type selector = Sp_util.Rng.t -> Sp_syzlang.Prog.t -> mutation_type

type arg_localizer =
  Sp_util.Rng.t -> Sp_syzlang.Prog.t -> Sp_syzlang.Prog.path list
(** Which argument nodes to mutate when the selected type is
    [Argument_mutation]. This is the function the paper learns. *)

val syzkaller_selector : ?splice:bool -> unit -> selector
(** Fixed-probability biased coin over mutation types (arguments favoured),
    as in stock Syzkaller. [splice] is enabled only when the engine is given
    donor programs. *)

val syzkaller_arg_localizer : ?max_args:int -> unit -> arg_localizer
(** Target-agnostic random localization: weight calls by their argument
    count, then pick 1..[max_args] (default 3) mutable nodes uniformly. *)

type t

val create :
  ?selector:selector ->
  ?arg_localizer:arg_localizer ->
  Sp_syzlang.Spec.db ->
  t
(** Defaults to the Syzkaller controllers. *)

val mutate :
  t ->
  Sp_util.Rng.t ->
  ?donor:Sp_syzlang.Prog.t ->
  Sp_syzlang.Prog.t ->
  Sp_syzlang.Prog.t * applied
(** One mutation step: select, localize, instantiate, apply. [donor]
    enables splicing. The result is always well-formed
    ([Prog.validate]-clean) when the input is. *)

val mutate_args_at :
  t ->
  Sp_util.Rng.t ->
  Sp_syzlang.Prog.t ->
  Sp_syzlang.Prog.path list ->
  Sp_syzlang.Prog.t
(** Apply argument instantiation at externally-chosen locations (the entry
    point a learned localizer uses). *)

val random_call : t -> Sp_util.Rng.t -> Sp_syzlang.Prog.t -> int * Sp_syzlang.Prog.call
(** A fresh call and insertion position for [Call_insertion]. *)
