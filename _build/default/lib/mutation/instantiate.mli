(** Argument instantiation: {e how} to mutate a value once a location has
    been chosen (§2's third policy decision).

    These are the hand-crafted per-type strategies of a Syzkaller-style
    mutator — flip a flag bit, replace an integer with a boundary constant,
    resize a buffer, rewire a resource, toggle a pointer's nullness. Both
    the baseline fuzzer and Snowplow use exactly this instantiator; the
    paper's intervention replaces only localization. *)

val value : Sp_util.Rng.t -> Sp_syzlang.Ty.t -> Sp_syzlang.Value.t -> Sp_syzlang.Value.t
(** A mutated value of the same type. For immutable kinds ([Const], [Len])
    the value is returned unchanged. The result always satisfies
    [Value.conforms]. *)

val at_path :
  Sp_util.Rng.t ->
  Sp_syzlang.Prog.t ->
  Sp_syzlang.Prog.path ->
  Sp_syzlang.Prog.t
(** Mutate the argument node at [path] (resource rewiring picks among the
    program's earlier producers). Lengths are re-fixed by [Prog.set]. *)
