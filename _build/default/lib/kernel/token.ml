let opcodes =
  [| "nop"; "mov"; "lea"; "add"; "sub"; "xor"; "and"; "or"; "shl"; "shr";
     "push"; "pop"; "call"; "ret"; "cmp"; "test"; "je"; "jne"; "jg"; "jb";
     "jmp"; "ud2" |]

let opcode_tbl =
  let tbl = Hashtbl.create 32 in
  Array.iteri (fun i name -> Hashtbl.add tbl name (i + 1)) opcodes;
  tbl

let num_opcodes = Array.length opcodes

let opsig_buckets = 96

let const_buckets = 24

let padding = 0

let opsig_base = 1 + num_opcodes

let const_base = opsig_base + opsig_buckets

let vocab_size = const_base + const_buckets

let opcode name =
  match Hashtbl.find_opt opcode_tbl name with
  | Some t -> t
  | None -> invalid_arg ("Token.opcode: unknown mnemonic " ^ name)

let fnv s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

let num_opsig_buckets = opsig_buckets

let opsig_bucket name = fnv name mod opsig_buckets

let opsig name = opsig_base + opsig_bucket name

let const_bucket v =
  let v = abs v in
  (* Small constants get their own buckets; bigger ones are log-bucketed, so
     "0 vs 1 vs 2" stays distinguishable but 0x4100 vs 0x4200 may collide. *)
  let b =
    if v < 8 then v
    else 8 + min (const_buckets - 9) (int_of_float (Float.log2 (float_of_int v)))
  in
  const_base + b

let to_string t =
  if t = padding then "<pad>"
  else if t <= num_opcodes then opcodes.(t - 1)
  else if t < const_base then Printf.sprintf "sig%d" (t - opsig_base)
  else Printf.sprintf "imm%d" (t - const_base)

let detail_name (ty : Sp_syzlang.Ty.t) ~fallback =
  match ty with
  | Sp_syzlang.Ty.Flags f -> f.flag_name
  | Sp_syzlang.Ty.Enum e -> e.enum_name
  | Sp_syzlang.Ty.Resource kind -> kind
  | Sp_syzlang.Ty.Const _ | Sp_syzlang.Ty.Int _ | Sp_syzlang.Ty.Len _
  | Sp_syzlang.Ty.Buffer _ | Sp_syzlang.Ty.Str _ | Sp_syzlang.Ty.Ptr _
  | Sp_syzlang.Ty.Struct _ ->
    fallback
