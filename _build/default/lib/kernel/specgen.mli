(** Synthetic system-call interface generation.

    Produces the Syzlang-style specification database the rest of the system
    runs against: a catalog of realistic syscall variants (producers like
    [open]/[socket$inet], consumers like [read]/[ioctl$scsi]/[sendmsg$inet])
    whose argument shapes — named flag sets, enums, nested pointer/struct
    arguments, buffer+length pairs — are generated deterministically from a
    seed. All kernel "versions" share one interface, mirroring the stability
    of the Linux syscall ABI across 6.8–6.10. *)

val resource_kinds : string list

val generate : Sp_util.Rng.t -> num_syscalls:int -> Sp_syzlang.Spec.db
(** At most the catalog size (currently 48) syscalls; the first entries
    always include [open] and [read] so examples match the paper's
    Figure 3. Every resource kind consumed by a generated consumer has at
    least one generated producer. *)

val catalog_size : int
