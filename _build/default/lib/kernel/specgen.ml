module Rng = Sp_util.Rng
module Ty = Sp_syzlang.Ty
module Spec = Sp_syzlang.Spec

let resource_kinds = [ "fd"; "sock"; "pipefd"; "timerfd"; "ring"; "kobj" ]

(* name, produced resource kind, consumed resource kind. Producers come
   first per kind so consumers always have a producer available. *)
let catalog =
  [
    ("open", Some "fd", None);
    ("read", None, Some "fd");
    ("openat$dir", Some "fd", None);
    ("memfd_create", Some "fd", None);
    ("socket$inet", Some "sock", None);
    ("socket$unix", Some "sock", None);
    ("pipe2", Some "pipefd", None);
    ("timerfd_create", Some "timerfd", None);
    ("io_uring_setup", Some "ring", None);
    ("epoll_create1", Some "kobj", None);
    ("eventfd2", Some "kobj", None);
    ("accept$inet", Some "sock", Some "sock");
    ("dup3", Some "fd", Some "fd");
    ("write", None, Some "fd");
    ("pread64", None, Some "fd");
    ("pwrite64", None, Some "fd");
    ("ioctl$scsi", None, Some "fd");
    ("ioctl$tty", None, Some "fd");
    ("ioctl$kvm", None, Some "fd");
    ("ioctl$sock", None, Some "sock");
    ("mmap", None, Some "fd");
    ("fcntl$setfl", None, Some "fd");
    ("lseek", None, Some "fd");
    ("ftruncate", None, Some "fd");
    ("fallocate", None, Some "fd");
    ("sendmsg$inet", None, Some "sock");
    ("recvmsg", None, Some "sock");
    ("setsockopt$inet", None, Some "sock");
    ("getsockopt", None, Some "sock");
    ("bind$inet", None, Some "sock");
    ("connect$inet", None, Some "sock");
    ("listen", None, Some "sock");
    ("splice", None, Some "pipefd");
    ("tee", None, Some "pipefd");
    ("timerfd_settime", None, Some "timerfd");
    ("io_uring_enter", None, Some "ring");
    ("epoll_ctl$add", None, Some "kobj");
    ("getdents64", None, Some "fd");
    ("statx", None, Some "fd");
    ("madvise", None, None);
    ("mprotect", None, None);
    ("futex", None, None);
    ("mount$ext4", None, None);
    ("unlinkat", None, None);
    ("renameat2", None, None);
    ("prctl", None, None);
    ("seccomp", None, None);
    ("bpf$prog_load", None, None);
  ]

let catalog_size = List.length catalog

let file_names =
  [ "./file0"; "./file1"; "./file2"; "/dev/scsi0"; "/dev/tty1"; "/dev/kvm";
    "/proc/self/status"; "./dir0/file0" ]

let gen_flag_spec rng base =
  let n = Rng.int_in rng 5 8 in
  {
    Ty.flag_name = base;
    flag_values =
      List.init n (fun i -> (Printf.sprintf "%s_B%d" (String.uppercase_ascii base) i, 1 lsl i));
  }

let gen_enum rng base =
  let n = Rng.int_in rng 4 10 in
  (* Non-contiguous command numbers, like real ioctl commands. *)
  let start = Rng.int_in rng 1 64 in
  let choices =
    List.init n (fun i ->
        (Printf.sprintf "%s_C%d" (String.uppercase_ascii base) i, start + (i * 17)))
  in
  Ty.Enum { enum_name = base; choices }

let gen_int rng =
  let hi = Rng.choose rng [| 63; 255; 1023; 4095; 65535 |] in
  Ty.Int { bits = 32; lo = 0; hi }

(* A leaf or shallow field type, named so operand signatures can refer to
   it. [depth] bounds struct nesting. *)
let rec gen_field rng ~name ~depth ~sibling_buffer =
  let choices =
    [ (`Flags, 3.0); (`Enum, 2.0); (`Int, 3.0); (`Str, 1.0); (`Bufptr, 2.0) ]
    @ (if depth > 0 then [ (`Structptr, 2.5) ] else [])
    @ if sibling_buffer >= 0 then [ (`Len, 2.0) ] else []
  in
  match Rng.weighted rng choices with
  | `Flags -> Ty.Flags (gen_flag_spec rng (name ^ "_flags"))
  | `Enum -> gen_enum rng (name ^ "_cmd")
  | `Int -> gen_int rng
  | `Str -> Ty.Str (Rng.sample rng (Array.of_list file_names) (Rng.int_in rng 2 4))
  | `Bufptr ->
    let min_len = 0 and max_len = Rng.choose rng [| 16; 64; 256; 4096 |] in
    Ty.Ptr (Ty.Buffer { min_len; max_len })
  | `Len -> Ty.Len sibling_buffer
  | `Structptr ->
    let nfields = Rng.int_in rng 2 4 in
    let fields =
      List.init nfields (fun i ->
          let fname = Printf.sprintf "%s_f%d" name i in
          (* Struct fields can themselves contain one more struct level when
             depth allows — Figure 4's nested struct buffers. *)
          let buffer_sib =
            (* within the struct, field i-1 index if it was a buffer *)
            -1
          in
          { Ty.fname; fty = gen_field rng ~name:fname ~depth:(depth - 1) ~sibling_buffer:buffer_sib })
    in
    Ty.Ptr (Ty.Struct fields)

let buffer_like (ty : Ty.t) =
  match ty with
  | Ty.Ptr (Ty.Buffer _) | Ty.Buffer _ | Ty.Str _ -> true
  | _ -> false

(* Filler arguments: fields the kernel accepts but never branches on —
   payload buffers, padding words, reserved structs. Real system calls are
   dominated by these; "only a few arguments are effective in changing the
   behavior" (§1), which is precisely the slack a learned localizer
   exploits. Their names end in "_pad" and the kernel builder never
   generates predicates over them. *)
let rec gen_filler rng ~name ~depth =
  match Rng.weighted rng
          ([ (`Int, 3.0); (`Buf, 3.0); (`Str, 1.0) ]
          @ if depth > 0 then [ (`Struct, 2.0) ] else [])
  with
  | `Int -> Ty.Int { bits = 32; lo = 0; hi = 65535 }
  | `Buf -> Ty.Ptr (Ty.Buffer { min_len = 0; max_len = 4096 })
  | `Str -> Ty.Str (Rng.sample rng (Array.of_list file_names) 2)
  | `Struct ->
    let nfields = Rng.int_in rng 2 3 in
    Ty.Ptr
      (Ty.Struct
         (List.init nfields (fun i ->
              let fname = Printf.sprintf "%s%d_pad" name i in
              { Ty.fname; fty = gen_filler rng ~name:fname ~depth:(depth - 1) })))

let gen_args rng name ~consumes =
  let base =
    match consumes with
    | Some kind -> [ { Ty.fname = name ^ "_res"; fty = Ty.Resource kind } ]
    | None -> []
  in
  let extra = Rng.int_in rng 2 3 in
  let fillers = Rng.int_in rng 10 16 in
  let fields = ref (List.rev base) in
  for i = 0 to extra - 1 do
    let fname = Printf.sprintf "%s_a%d" name i in
    (* If the previous top-level field is buffer-like, bias towards pairing
       it with a Len field (buffer+length calling conventions). *)
    let sibling_buffer =
      match !fields with
      | prev :: _ when buffer_like prev.Ty.fty && Rng.coin rng 0.6 ->
        List.length !fields - 1
      | _ -> -1
    in
    let fty =
      if sibling_buffer >= 0 then Ty.Len sibling_buffer
      else gen_field rng ~name:fname ~depth:2 ~sibling_buffer:(-1)
    in
    fields := { Ty.fname; fty } :: !fields
  done;
  for i = 0 to fillers - 1 do
    let fname = Printf.sprintf "%s_f%d_pad" name i in
    fields := { Ty.fname; fty = gen_filler rng ~name:fname ~depth:1 } :: !fields
  done;
  (* Interleave fillers among real arguments deterministically. *)
  let arr = Array.of_list (List.rev !fields) in
  Rng.shuffle rng arr;
  (* keep the resource first, as in real call conventions *)
  let res, rest =
    Array.to_list arr
    |> List.partition (fun f -> match f.Ty.fty with Ty.Resource _ -> true | _ -> false)
  in
  res @ rest

let generate rng ~num_syscalls =
  let picked = List.filteri (fun i _ -> i < num_syscalls) catalog in
  let entries =
    List.map
      (fun (name, produces, consumes) ->
        (name, gen_args rng name ~consumes, produces))
      picked
  in
  Spec.make_db entries
