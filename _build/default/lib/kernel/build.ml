module Rng = Sp_util.Rng
module Ty = Sp_syzlang.Ty
module Spec = Sp_syzlang.Spec
module Value = Sp_syzlang.Value

type config = {
  seed : int;
  version : string;
  num_syscalls : int;
  max_depth : int;
  handler_budget : int;
  num_known_bugs : int;
  num_new_bugs : int;
  evolve_rounds : int;
}

let default_config =
  {
    seed = 1;
    version = "6.8";
    num_syscalls = 48;
    max_depth = 15;
    handler_budget = 1400;
    num_known_bugs = 6;
    num_new_bugs = 14;
    evolve_rounds = 0;
  }

type built = {
  db : Spec.db;
  blocks : Ir.block array;
  cfg : Sp_cfg.Cfg.t;
  entries : int array;
  exits : int array;
  bugs : Bug.t array;
  bug_gates : Ir.predicate list array;
  background : int list;
  mode_paths : (int list option * int list option) array;
}

(* ------------------------------------------------------------------ *)
(* Mutable construction state                                          *)
(* ------------------------------------------------------------------ *)

type mblock = {
  mid : int;
  msys : int;
  mdepth : int;
  mutable mtokens : int array;
  mutable mterm : Ir.terminator;
}

type builder = {
  mutable rev_blocks : mblock list;
  mutable count : int;
  no_inject : (int, unit) Hashtbl.t;  (* bug-gate / miss / crash blocks *)
}

let new_block b ~sys ~depth ~tokens ~term =
  let mb = { mid = b.count; msys = sys; mdepth = depth; mtokens = tokens; mterm = term } in
  b.rev_blocks <- mb :: b.rev_blocks;
  b.count <- b.count + 1;
  mb

(* ------------------------------------------------------------------ *)
(* Predicate candidates: testable argument paths of a syscall          *)
(* ------------------------------------------------------------------ *)

type cand = { cpath : int list; cty : Ty.t; cname : string }

let is_filler name =
  let suffix = "_pad" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.sub name (nl - sl) sl = suffix

let candidates_of_spec (spec : Spec.t) =
  let acc = ref [] in
  let rec walk path (ty : Ty.t) fallback =
    let keep =
      (not (is_filler fallback))
      &&
      match ty with
      | Ty.Int _ | Ty.Flags _ | Ty.Enum _ | Ty.Buffer _ | Ty.Str _
      | Ty.Resource _ | Ty.Ptr _ ->
        true
      | Ty.Const _ | Ty.Len _ | Ty.Struct _ -> false
    in
    if keep then
      acc :=
        { cpath = List.rev path; cty = ty; cname = Token.detail_name ty ~fallback }
        :: !acc;
    match ty with
    | Ty.Ptr inner -> walk (0 :: path) inner fallback
    | Ty.Struct fields ->
      List.iteri (fun i f -> walk (i :: path) f.Ty.fty f.Ty.fname) fields
    | Ty.Const _ | Ty.Int _ | Ty.Flags _ | Ty.Enum _ | Ty.Len _ | Ty.Buffer _
    | Ty.Str _ | Ty.Resource _ ->
      ()
  in
  List.iteri (fun i (f : Ty.field) -> walk [ i ] f.fty f.fname) spec.Spec.args;
  Array.of_list (List.rev !acc)

(* Paths feeding a produced object's fields: first flags argument -> mode,
   second flags or first enum -> oflags. *)
let object_field_paths (spec : Spec.t) =
  let flags = ref [] and enums = ref [] in
  Array.iter
    (fun c ->
      match c.cty with
      | Ty.Flags _ -> flags := c.cpath :: !flags
      | Ty.Enum _ -> enums := c.cpath :: !enums
      | _ -> ())
    (candidates_of_spec spec);
  let flags = List.rev !flags and enums = List.rev !enums in
  let mode = match flags with p :: _ -> Some p | [] -> (match enums with p :: _ -> Some p | [] -> None) in
  let oflags =
    match flags with
    | _ :: p :: _ -> Some p
    | _ -> ( match enums with p :: _ -> Some p | [] -> None)
  in
  (mode, oflags)

(* ------------------------------------------------------------------ *)
(* Predicate and token synthesis                                       *)
(* ------------------------------------------------------------------ *)

let magic_const rng ~lo ~hi =
  if hi <= lo then max lo 1
  else begin
    let rec draw guard =
      let v = 1 lsl Rng.int rng 13 in
      if v >= lo && v <= hi then v
      else if guard = 0 then Rng.int_in rng lo hi
      else draw (guard - 1)
    in
    draw 32
  end

let rand_flag_subset rng (fs : Ty.flag_spec) k =
  Rng.sample rng (Array.of_list fs.flag_values) k
  |> List.fold_left (fun acc (_, bit) -> acc lor bit) 0

let make_pred rng (c : cand) ~rare : Ir.predicate =
  match c.cty with
  | Ty.Flags fs ->
    if rare then
      Ir.Arg { path = c.cpath; name = c.cname; cmp = Ir.Eq;
               const = rand_flag_subset rng fs 2 }
    else
      Ir.Arg { path = c.cpath; name = c.cname; cmp = Ir.Masked;
               const = rand_flag_subset rng fs 1 }
  | Ty.Enum e ->
    let choices = Array.of_list e.choices in
    let _, v =
      if rare && Array.length choices > 1 then
        (* Skip the first (default) choice so the gate is off by default. *)
        choices.(1 + Rng.int rng (Array.length choices - 1))
      else Rng.choose rng choices
    in
    Ir.Arg { path = c.cpath; name = c.cname; cmp = Ir.Eq; const = v }
  | Ty.Int { lo; hi; _ } ->
    if rare then
      (* Exact comparisons in real kernels overwhelmingly test "magic"
         constants (powers of two, off-by-ones); a fuzzer's magic-value
         instantiation can hit them once the right argument is chosen. *)
      Ir.Arg { path = c.cpath; name = c.cname; cmp = Ir.Eq;
               const = magic_const rng ~lo:(lo + 1) ~hi }
    else
      let cmp = if Rng.bool rng then Ir.Lt else Ir.Gt in
      Ir.Arg { path = c.cpath; name = c.cname; cmp;
               const = Rng.int_in rng lo hi }
  | Ty.Buffer { min_len; max_len } ->
    if rare then
      (* An exact (wrong) length, like the inconsistent data length that
         gates the ATA out-of-bounds write of §5.3.2. *)
      Ir.Arg { path = c.cpath; name = c.cname; cmp = Ir.Eq;
               const = magic_const rng ~lo:(min_len + 1) ~hi:(max min_len (max_len - 1)) }
    else
      let cmp = if Rng.bool rng then Ir.Gt else Ir.Lt in
      Ir.Arg { path = c.cpath; name = c.cname; cmp;
               const = Rng.int_in rng min_len max_len }
  | Ty.Str names ->
    let s = match names with [] -> "" | l -> Rng.choose_list rng l in
    Ir.Arg { path = c.cpath; name = c.cname; cmp = Ir.Eq;
             const = Value.scalar (Value.Vstr s) }
  | Ty.Ptr _ ->
    (* NULL-pointer check; rare gates require a non-NULL pointer plus other
       conditions, common ones split on nullness either way. *)
    Ir.Arg { path = c.cpath; name = c.cname;
             cmp = (if rare || Rng.bool rng then Ir.Ne else Ir.Eq); const = 0 }
  | Ty.Resource kind ->
    if (not rare) && Rng.bool rng then
      Ir.Res_valid { path = c.cpath; name = kind }
    else
      let field = if Rng.bool rng then `Mode else `Oflags in
      let fname = kind ^ (match field with `Mode -> "_mode" | `Oflags -> "_oflags") in
      let cmp = if rare then Ir.Eq else Ir.Masked in
      let const =
        if rare then Rng.int_in rng 1 31 else 1 lsl Rng.int rng 5
      in
      Ir.Res_state { path = c.cpath; name = fname; field; cmp; const }
  | Ty.Const _ | Ty.Len _ | Ty.Struct _ ->
    invalid_arg "make_pred: not a testable candidate"

let body_tokens rng =
  let n = Rng.int_in rng 3 7 in
  Array.init n (fun _ ->
      Token.opcode
        (Rng.choose rng [| "mov"; "lea"; "add"; "sub"; "xor"; "and"; "push"; "pop"; "call" |]))

let cond_tokens rng (pred : Ir.predicate) =
  let jcc = Rng.choose rng [| "je"; "jne"; "jg"; "jb" |] in
  match pred with
  | Ir.Arg { name; cmp; const; _ } ->
    let op = match cmp with Ir.Masked -> "test" | _ -> "cmp" in
    [| Token.opcode "mov"; Token.opcode op; Token.opsig name;
       Token.const_bucket const; Token.opcode jcc |]
  | Ir.Res_state { name; cmp; const; _ } ->
    let op = match cmp with Ir.Masked -> "test" | _ -> "cmp" in
    [| Token.opcode "mov"; Token.opcode op; Token.opsig name;
       Token.const_bucket const; Token.opcode jcc |]
  | Ir.Res_valid { name; _ } ->
    [| Token.opcode "test"; Token.opsig name; Token.opcode "je" |]

let crash_tokens subsystem =
  [| Token.opcode "call"; Token.opsig subsystem; Token.opcode "ud2" |]

(* ------------------------------------------------------------------ *)
(* Handler region generation                                           *)
(* ------------------------------------------------------------------ *)

let rec region b rng ~sys ~cands ~max_depth ~depth ~budget ~exit_id =
  if budget <= 2 || depth >= max_depth || Rng.coin rng 0.15 then begin
    let leaf =
      new_block b ~sys ~depth ~tokens:(body_tokens rng) ~term:(Ir.Jump exit_id)
    in
    if budget >= 2 && Rng.bool rng then
      let pre =
        new_block b ~sys ~depth ~tokens:(body_tokens rng)
          ~term:(Ir.Jump leaf.mid)
      in
      pre.mid
    else leaf.mid
  end
  else begin
    let cand = Rng.choose rng cands in
    let pred = make_pred rng cand ~rare:(Rng.coin rng 0.28) in
    let tb =
      region b rng ~sys ~cands ~max_depth ~depth:(depth + 1)
        ~budget:(budget * 3 / 5) ~exit_id
    in
    let fb =
      region b rng ~sys ~cands ~max_depth ~depth:(depth + 1)
        ~budget:(budget * 2 / 5) ~exit_id
    in
    let cond =
      new_block b ~sys ~depth ~tokens:(cond_tokens rng pred)
        ~term:(Ir.Cond { pred; if_true = tb; if_false = fb })
    in
    cond.mid
  end

let build_handler b rng ~sys ~cands ~max_depth ~budget =
  let exit_blk = new_block b ~sys ~depth:0 ~tokens:[| Token.opcode "ret" |] ~term:Ir.Ret in
  let body = region b rng ~sys ~cands ~max_depth ~depth:1 ~budget ~exit_id:exit_blk.mid in
  let entry =
    new_block b ~sys ~depth:0
      ~tokens:[| Token.opcode "push"; Token.opcode "mov"; Token.opcode "call" |]
      ~term:(Ir.Jump body)
  in
  (entry.mid, exit_blk.mid)

(* ------------------------------------------------------------------ *)
(* Bug injection                                                       *)
(* ------------------------------------------------------------------ *)

let category_dist =
  (* Frequencies follow Table 3's manifestation mix. *)
  [ (Bug.Gpf, 0.44); (Bug.Paging_fault, 0.26); (Bug.Null_deref, 0.11);
    (Bug.Warning, 0.09); (Bug.Assertion, 0.05); (Bug.Oob, 0.02);
    (Bug.Other, 0.03) ]

let subsystems =
  [| "fs/ext4"; "drivers/ata"; "drivers/scsi"; "net/packet"; "net/ipv4";
     "mm"; "kernel"; "fs/io_uring"; "sound/core"; "drivers/video" |]

let leaves_of_handler b ~sys ~exit_id ~min_depth ~max_depth =
  List.filter
    (fun mb ->
      mb.msys = sys && mb.mdepth >= min_depth && mb.mdepth <= max_depth
      && (not (Hashtbl.mem b.no_inject mb.mid))
      && match mb.mterm with Ir.Jump t -> t = exit_id | _ -> false)
    b.rev_blocks

(* Replace a leaf [... -> exit] with [... -> gate1 -> ... -> gateN -> crash],
   every gate miss falling back to a fresh body block that jumps to exit. *)
let inject_bug b rng ~spec ~cands ~exit_id ~bug_id ~gate_len ~deep ~subsystem =
  let sys = spec.Spec.sys_id in
  let min_depth, max_depth = if deep then (3, 99) else (1, 2) in
  match leaves_of_handler b ~sys ~exit_id ~min_depth ~max_depth with
  | [] -> None
  | leaves ->
    let leaf = Rng.choose_list rng leaves in
    let crash =
      new_block b ~sys ~depth:(leaf.mdepth + gate_len)
        ~tokens:(crash_tokens subsystem) ~term:(Ir.Crash bug_id)
    in
    Hashtbl.add b.no_inject crash.mid ();
    (* Only argument kinds whose rare predicate is genuinely narrow can act
       as a gate; NULL-checks and string picks crash far too often. *)
    let gate_pool =
      Array.of_list
        (List.filter
           (fun c ->
             match c.cty with
             | Ty.Flags _ | Ty.Enum _ | Ty.Buffer _ -> true
             | Ty.Int { hi; _ } -> hi >= 15
             | Ty.Resource _ | Ty.Str _ | Ty.Ptr _ | Ty.Const _ | Ty.Len _
             | Ty.Struct _ ->
               false)
           (Array.to_list cands))
    in
    let gate_pool = if Array.length gate_pool >= 1 then gate_pool else cands in
    let gate_cands = Rng.sample rng gate_pool (max gate_len 1) in
    (* Known (shallow) bugs still need a precise predicate — Syzbot found
       them over years of fuzzing, not instantly — they are just guarded by
       a single condition at low depth instead of a deep chain. *)
    let gates = List.map (fun c -> make_pred rng c ~rare:true) gate_cands in
    let target = ref crash.mid in
    List.iteri
      (fun i pred ->
        let miss =
          new_block b ~sys ~depth:(leaf.mdepth + gate_len - i)
            ~tokens:(body_tokens rng) ~term:(Ir.Jump exit_id)
        in
        Hashtbl.add b.no_inject miss.mid ();
        let cond =
          new_block b ~sys ~depth:(leaf.mdepth + gate_len - 1 - i)
            ~tokens:(cond_tokens rng pred)
            ~term:(Ir.Cond { pred; if_true = !target; if_false = miss.mid })
        in
        Hashtbl.add b.no_inject cond.mid ();
        target := cond.mid)
      (List.rev gates);
    leaf.mterm <- Ir.Jump !target;
    Hashtbl.add b.no_inject leaf.mid ();
    Some gates

(* ------------------------------------------------------------------ *)
(* Version evolution                                                   *)
(* ------------------------------------------------------------------ *)

let tweak_const rng (pred : Ir.predicate) : Ir.predicate =
  match pred with
  | Ir.Arg a -> Ir.Arg { a with const = max 0 (a.const + Rng.int_in rng (-3) 3) }
  | Ir.Res_state r -> Ir.Res_state { r with const = max 1 (r.const lxor (1 lsl Rng.int rng 3)) }
  | Ir.Res_valid _ -> pred

let evolve b rng ~per_sys ~max_depth =
  let snapshot = b.rev_blocks in
  List.iter
    (fun mb ->
      if mb.msys >= 0 && not (Hashtbl.mem b.no_inject mb.mid) then
        match mb.mterm with
        | Ir.Cond c when Rng.coin rng 0.06 ->
          let pred = tweak_const rng c.pred in
          mb.mterm <- Ir.Cond { c with pred };
          mb.mtokens <- cond_tokens rng pred
        | Ir.Jump t when Rng.coin rng 0.08 ->
          let cands, exit_id = per_sys.(mb.msys) in
          if t = exit_id && Array.length cands > 0 then begin
            let grafted =
              region b rng ~sys:mb.msys ~cands ~max_depth
                ~depth:(mb.mdepth + 1) ~budget:8 ~exit_id
            in
            mb.mterm <- Ir.Jump grafted
          end
        | Ir.Cond _ | Ir.Jump _ | Ir.Ret | Ir.Crash _ -> ())
    snapshot

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let freeze b =
  let arr = Array.make b.count None in
  List.iter (fun mb -> arr.(mb.mid) <- Some mb) b.rev_blocks;
  Array.map
    (function
      | Some mb ->
        { Ir.id = mb.mid; sys_id = mb.msys; depth = mb.mdepth;
          tokens = mb.mtokens; term = mb.mterm }
      | None -> assert false)
    arr

let build config =
  let base_rng = Rng.create config.seed in
  let spec_rng = Rng.split_named base_rng "specs" in
  let db = Specgen.generate spec_rng ~num_syscalls:config.num_syscalls in
  let n = Spec.count db in
  let b = { rev_blocks = []; count = 0; no_inject = Hashtbl.create 64 } in
  let entries = Array.make n (-1) and exits = Array.make n (-1) in
  let per_sys = Array.make n ([||], -1) in
  let handler_rng = Rng.split_named base_rng "handlers" in
  for sys = 0 to n - 1 do
    let spec = Spec.by_id db sys in
    let cands = candidates_of_spec spec in
    let entry, exit_id =
      build_handler b handler_rng ~sys ~cands ~max_depth:config.max_depth
        ~budget:config.handler_budget
    in
    entries.(sys) <- entry;
    exits.(sys) <- exit_id;
    per_sys.(sys) <- (cands, exit_id)
  done;
  (* Background / interrupt region. *)
  let bg_rng = Rng.split_named base_rng "background" in
  let bg_exit = new_block b ~sys:(-1) ~depth:0 ~tokens:[| Token.opcode "ret" |] ~term:Ir.Ret in
  let background = ref [ bg_exit.mid ] in
  let prev = ref bg_exit.mid in
  for _ = 1 to 12 do
    let blk =
      new_block b ~sys:(-1) ~depth:0 ~tokens:(body_tokens bg_rng)
        ~term:(Ir.Jump !prev)
    in
    background := blk.mid :: !background;
    prev := blk.mid
  done;
  (* Bugs: known (shallow, shared across versions) first, then version
     evolution, then new (deep, version-specific). *)
  let bugs = ref [] and gates = ref [] in
  let next_bug = ref 0 in
  let add_bugs rng count ~known ~deep =
    let placed = ref 0 and attempts = ref 0 in
    while !placed < count && !attempts < count * 20 do
      incr attempts;
      let sys = Rng.int rng n in
      let spec = Spec.by_id db sys in
      let cands, exit_id = per_sys.(sys) in
      if Array.length cands >= 2 then begin
        let gate_len = if deep then Rng.int_in rng 2 3 else 1 in
        let subsystem = Rng.choose rng subsystems in
        match
          inject_bug b rng ~spec ~cands ~exit_id ~bug_id:!next_bug ~gate_len
            ~deep ~subsystem
        with
        | None -> ()
        | Some gate_preds ->
          let bug =
            {
              Bug.id = !next_bug;
              category = Rng.weighted rng category_dist;
              known;
              concurrency = Rng.coin rng 0.40;
              subsystem;
              syscall = spec.Spec.name;
              gate_depth = gate_len;
            }
          in
          bugs := bug :: !bugs;
          gates := gate_preds :: !gates;
          incr next_bug;
          incr placed
      end
    done
  in
  let known_rng = Rng.split_named base_rng "known-bugs" in
  add_bugs known_rng config.num_known_bugs ~known:true ~deep:false;
  (* Version evolution: the base version does zero rounds. *)
  let evolve_rng = Rng.create (Hashtbl.hash (config.seed, config.version)) in
  for _ = 1 to config.evolve_rounds do
    evolve b evolve_rng ~per_sys ~max_depth:config.max_depth
  done;
  let new_rng = Rng.split_named evolve_rng "new-bugs" in
  add_bugs new_rng config.num_new_bugs ~known:false ~deep:true;
  (* Freeze. *)
  let blocks = freeze b in
  let edges =
    Array.to_list blocks
    |> List.concat_map (fun (blk : Ir.block) ->
           List.map (fun dst -> (blk.Ir.id, dst)) (Ir.successors blk.Ir.term))
  in
  let cfg = Sp_cfg.Cfg.create ~num_blocks:(Array.length blocks) ~edges in
  let mode_paths =
    Array.init n (fun sys -> object_field_paths (Spec.by_id db sys))
  in
  {
    db;
    blocks;
    cfg;
    entries;
    exits;
    bugs = Array.of_list (List.rev !bugs);
    bug_gates = Array.of_list (List.rev !gates);
    background = !background;
    mode_paths;
  }
