(** Injected kernel bugs and their crash manifestations.

    The synthetic kernel contains latent bugs: crash blocks guarded by
    chains of precise argument predicates, modelled on the ATA
    [SCSI_IOCTL_SEND_COMMAND] out-of-bounds write of §5.3.2 (which required
    an exact command, sub-command, protocol, and an inconsistent data
    length). "Known" bugs sit behind shallow, easy gates — the continuous
    Syzbot fuzzing would have found them — while "new" bugs sit behind deep
    rare gates. Concurrency-flavoured bugs reproduce flakily, driving the
    with/without-reproducer split of Table 3. *)

type category =
  | Null_deref
  | Paging_fault
  | Assertion
  | Gpf  (** general protection fault *)
  | Oob  (** out-of-bounds access (KASAN) *)
  | Warning
  | Other

val category_to_string : category -> string

val all_categories : category list

type t = {
  id : int;
  category : category;
  known : bool;  (** already on the Syzbot-style known list *)
  concurrency : bool;  (** crash replays only probabilistically *)
  subsystem : string;  (** fake failure location, e.g. "fs/ext4" *)
  syscall : string;  (** syscall whose handler hosts the crash block *)
  gate_depth : int;  (** number of precise predicates guarding it *)
}

val description : t -> string
(** Stable crash signature, playing the role of the report title Syzkaller
    dedups on (e.g. "general protection fault in ext4_do_writepages"). *)

val pp : Format.formatter -> t -> unit
