type category =
  | Null_deref
  | Paging_fault
  | Assertion
  | Gpf
  | Oob
  | Warning
  | Other

let category_to_string = function
  | Null_deref -> "Null pointer dereference"
  | Paging_fault -> "Paging fault"
  | Assertion -> "Explicit assertion violation"
  | Gpf -> "General protection fault"
  | Oob -> "Out of bounds access"
  | Warning -> "Warning"
  | Other -> "Other"

let all_categories =
  [ Null_deref; Paging_fault; Assertion; Gpf; Oob; Warning; Other ]

type t = {
  id : int;
  category : category;
  known : bool;
  concurrency : bool;
  subsystem : string;
  syscall : string;
  gate_depth : int;
}

let manifestation = function
  | Null_deref -> "null-ptr-deref in"
  | Paging_fault -> "BUG: unable to handle page fault in"
  | Assertion -> "kernel BUG in"
  | Gpf -> "general protection fault in"
  | Oob -> "KASAN: slab-out-of-bounds in"
  | Warning -> "WARNING in"
  | Other -> "unexpected kernel state in"

let description t =
  Printf.sprintf "%s %s_%s_%d" (manifestation t.category) t.syscall
    (String.map (fun c -> if c = '/' then '_' else c) t.subsystem)
    t.id

let pp ppf t =
  Format.fprintf ppf "bug#%d [%s] %s (%s, gate=%d%s%s)" t.id
    (category_to_string t.category)
    (description t) t.subsystem t.gate_depth
    (if t.known then ", known" else ", new")
    (if t.concurrency then ", racy" else "")
