(** Token vocabulary for basic-block contents and argument descriptors.

    The paper embeds each kernel basic block from its x86 assembly text with
    a BERT-pretrained Transformer, and each argument node from its Syzlang
    type. Our synthetic blocks carry token sequences in the same spirit:
    opcode tokens plus {e operand-signature} tokens that (noisily, through a
    bucketed hash) reveal which named quantity a comparison inspects — the
    analogue of struct offsets and immediates in real assembly. The same
    bucketing embeds the names of argument types ("open_flags"), so the
    learnable correspondence {e block-tests-X ↔ argument-is-X} exists but
    must be extracted by the model, across hash collisions. *)

val vocab_size : int

val opcode : string -> int
(** Token of a known opcode mnemonic ("cmp", "je", "mov", ...). Raises
    [Invalid_argument] for unknown mnemonics. *)

val opsig : string -> int
(** Bucketed token of a named operand signature; many names share a bucket. *)

val num_opsig_buckets : int

val opsig_bucket : string -> int
(** The bucket index in [0, num_opsig_buckets) behind {!opsig} — used to
    embed argument-type names on the program side of the query graph with
    the same collision structure as block operand signatures. *)

val const_bucket : int -> int
(** Bucketed token of an immediate constant. *)

val padding : int
(** Padding token id (0), distinct from every real token. *)

val to_string : int -> string
(** Debug rendering of a token id. *)

val detail_name : Sp_syzlang.Ty.t -> fallback:string -> string
(** The name embedded for an argument node: flag-set / enum / resource names
    when the type has one, the field name otherwise. *)
