(** Procedural construction of a synthetic kernel.

    Builds, from a seed: tree-shaped handler regions per syscall whose
    branch predicates test argument scalars and resource-object state;
    injected bugs behind shallow (known) or deep rare (new) predicate
    gates; a background/interrupt region; and version evolution — later
    kernel "versions" graft new regions onto handler leaves and retune some
    branch constants, so a model trained on the base version faces slightly
    shifted code, as PMM did when moving from Linux 6.8 to 6.9/6.10. *)

type config = {
  seed : int;
  version : string;  (** e.g. "6.8" *)
  num_syscalls : int;
  max_depth : int;  (** branch-nesting bound per handler *)
  handler_budget : int;  (** approximate block count per handler *)
  num_known_bugs : int;  (** shallow-gated, on the Syzbot-style known list *)
  num_new_bugs : int;  (** deep-gated, previously unknown *)
  evolve_rounds : int;  (** 0 for the base version, +1 per later release *)
}

val default_config : config
(** A laptop-scale kernel: 48 syscalls, depth 15, ~850 blocks per handler,
    6 known + 14 new bugs, version "6.8". *)

type built = {
  db : Sp_syzlang.Spec.db;
  blocks : Ir.block array;  (** indexed by block id *)
  cfg : Sp_cfg.Cfg.t;
  entries : int array;  (** sys_id -> handler entry block *)
  exits : int array;  (** sys_id -> unique handler exit block *)
  bugs : Bug.t array;  (** indexed by bug id *)
  bug_gates : Ir.predicate list array;  (** ground-truth gate per bug *)
  background : int list;  (** interrupt-region block ids, in chain order *)
  mode_paths : (int list option * int list option) array;
      (** per sys_id: argument paths feeding a produced object's
          [mode] and [oflags] fields *)
}

val build : config -> built
