type cmp = Eq | Ne | Lt | Gt | Masked

let eval_cmp cmp v c =
  match cmp with
  | Eq -> v = c
  | Ne -> v <> c
  | Lt -> v < c
  | Gt -> v > c
  | Masked -> v land c = c

let cmp_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Masked -> "&="

type predicate =
  | Arg of { path : int list; name : string; cmp : cmp; const : int }
  | Res_state of {
      path : int list;
      name : string;
      field : [ `Mode | `Oflags ];
      cmp : cmp;
      const : int;
    }
  | Res_valid of { path : int list; name : string }

let predicate_name = function
  | Arg { name; _ } | Res_state { name; _ } | Res_valid { name; _ } -> name

let pp_predicate ppf = function
  | Arg { path; name; cmp; const } ->
    Format.fprintf ppf "arg[%s](%s) %s %d"
      (String.concat "." (List.map string_of_int path))
      name (cmp_to_string cmp) const
  | Res_state { path; name; field; cmp; const } ->
    Format.fprintf ppf "res[%s](%s).%s %s %d"
      (String.concat "." (List.map string_of_int path))
      name
      (match field with `Mode -> "mode" | `Oflags -> "oflags")
      (cmp_to_string cmp) const
  | Res_valid { path; name } ->
    Format.fprintf ppf "res[%s](%s) valid"
      (String.concat "." (List.map string_of_int path))
      name

type terminator =
  | Jump of int
  | Cond of { pred : predicate; if_true : int; if_false : int }
  | Ret
  | Crash of int

type block = {
  id : int;
  sys_id : int;
  depth : int;
  tokens : int array;
  term : terminator;
}

let successors = function
  | Jump b -> [ b ]
  | Cond { if_true; if_false; _ } -> [ if_true; if_false ]
  | Ret | Crash _ -> []
