(** The synthetic kernel: generation, inspection, and test execution.

    A kernel bundles the syscall interface (a {!Sp_syzlang.Spec.db}), the
    handler code (basic blocks over a global id space with a static CFG),
    injected bugs, and an interpreter that executes test programs and
    returns their coverage trace — the role KCOV plays in the paper. *)

type t

(** {1 Generation} *)

val generate : Build.config -> t

val default : unit -> t
(** [generate Build.default_config]. *)

val linux_like : seed:int -> version:string -> t
(** The three-kernel setup of §5.3: versions "6.8", "6.9", "6.10" share one
    interface and a base code generation; "6.9" applies one evolution round
    and "6.10" two, each with version-specific new bugs. Raises
    [Invalid_argument] for other version strings. *)

(** {1 Inspection} *)

val version : t -> string

val spec_db : t -> Sp_syzlang.Spec.db

val cfg : t -> Sp_cfg.Cfg.t

val num_blocks : t -> int

val block : t -> int -> Ir.block

val handler_entry : t -> int -> int
(** Entry block of the handler for a syscall id. *)

val handler_exit : t -> int -> int

val bugs : t -> Bug.t array

val bug : t -> int -> Bug.t

val bug_gate : t -> int -> Ir.predicate list
(** Ground-truth gate predicates of a bug (for tests and analyses only; the
    fuzzers never see this). *)

val background_blocks : t -> int list

(** {1 Execution} *)

type kobject = { okind : string; mode : int; oflags : int }
(** The kernel object a producer call creates; its fields are derived from
    the producer's flag/enum arguments, so later calls' [Res_state] branches
    depend on earlier calls' arguments (the paper's implicit cross-call
    dependencies). *)

type crash = { bug : Bug.t; crash_call : int }

type call_trace = { call_idx : int; visited : int list (** in order *) }

type result = {
  traces : call_trace list;
  crash : crash option;
  covered : Sp_util.Bitset.t;  (** block coverage, sized [num_blocks] *)
  covered_edges : Sp_util.Bitset.t;  (** static-edge coverage *)
  objects : kobject option array;  (** post-state, per call index *)
}

val execute : ?noise:Sp_util.Rng.t * float -> t -> Sp_syzlang.Prog.t -> result
(** Run a program from a pristine kernel snapshot (execution is a pure
    function of the program — the determinism §3.1 engineers for). With
    [~noise:(rng, level)], interrupt-style background blocks and phantom
    blocks from unrelated handlers pollute the trace with probability
    [level] per call, emulating the noisy collection mode of stock
    Syzkaller. Execution stops at the first crash. *)

val block_coverage_of_call : t -> Sp_syzlang.Prog.t -> int -> Sp_util.Bitset.t
(** Coverage of one call of the program (used by query-graph construction).
    Equivalent to filtering [execute]'s trace for that call. *)
