(** Intermediate representation of kernel handler code.

    A handler is a tree-shaped region of basic blocks; branches test scalar
    views of the invoking call's arguments or the state of kernel objects
    referenced through resource arguments (the paper's implicit cross-call
    dependencies: [read]'s behaviour depends on the mode [open] was given).
    Block ids are global across the whole kernel. *)

type cmp =
  | Eq
  | Ne
  | Lt
  | Gt
  | Masked  (** [(v land c) = c] — flag-bits-set test *)

val eval_cmp : cmp -> int -> int -> bool
(** [eval_cmp cmp v c]. *)

val cmp_to_string : cmp -> string

type predicate =
  | Arg of { path : int list; name : string; cmp : cmp; const : int }
      (** test [scalar] of this call's argument at [path]; [name] is the
          operand signature embedded in the block tokens *)
  | Res_state of {
      path : int list;  (** a resource-typed argument of this call *)
      name : string;  (** producer-side operand signature *)
      field : [ `Mode | `Oflags ];
      cmp : cmp;
      const : int;
    }  (** test a field of the kernel object the resource refers to *)
  | Res_valid of { path : int list; name : string }
      (** does the resource argument refer to a live object? *)

val predicate_name : predicate -> string

val pp_predicate : Format.formatter -> predicate -> unit

type terminator =
  | Jump of int
  | Cond of { pred : predicate; if_true : int; if_false : int }
  | Ret
  | Crash of int  (** reaching this block triggers the bug with this id *)

type block = {
  id : int;
  sys_id : int;  (** owning handler's syscall id; -1 for background code *)
  depth : int;  (** branch-nesting depth within the handler *)
  tokens : int array;  (** content fed to the PMM block encoder *)
  term : terminator;
}

val successors : terminator -> int list
