lib/kernel/ir.mli: Format
