lib/kernel/kernel.ml: Array Bug Build Ir List Sp_cfg Sp_syzlang Sp_util
