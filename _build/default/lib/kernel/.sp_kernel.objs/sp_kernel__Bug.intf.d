lib/kernel/bug.mli: Format
