lib/kernel/specgen.mli: Sp_syzlang Sp_util
