lib/kernel/token.mli: Sp_syzlang
