lib/kernel/build.mli: Bug Ir Sp_cfg Sp_syzlang
