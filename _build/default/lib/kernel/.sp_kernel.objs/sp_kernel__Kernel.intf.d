lib/kernel/kernel.mli: Bug Build Ir Sp_cfg Sp_syzlang Sp_util
