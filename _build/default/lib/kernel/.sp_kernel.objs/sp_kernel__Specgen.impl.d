lib/kernel/specgen.ml: Array List Printf Sp_syzlang Sp_util String
