lib/kernel/ir.ml: Format List String
