lib/kernel/build.ml: Array Bug Hashtbl Ir List Sp_cfg Sp_syzlang Sp_util Specgen String Token
