lib/kernel/bug.ml: Format Printf String
