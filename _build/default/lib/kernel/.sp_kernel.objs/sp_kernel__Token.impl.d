lib/kernel/token.ml: Array Char Float Hashtbl Printf Sp_syzlang String
