type series = {
  label : string;
  glyph : char;
  points : (float * float) list;
  band : (float * float * float) list;
}

let series ?(band = []) ~label ~glyph points = { label; glyph; points; band }

let bounds all =
  match all with
  | [] -> (0.0, 1.0, 0.0, 1.0)
  | (x0, y0) :: rest ->
    List.fold_left
      (fun (xlo, xhi, ylo, yhi) (x, y) ->
        (Float.min xlo x, Float.max xhi x, Float.min ylo y, Float.max yhi y))
      (x0, x0, y0, y0) rest

let fmt_tick v =
  if Float.abs v >= 10000.0 then Printf.sprintf "%.0fK" (v /. 1000.0)
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2g" v

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") ~title
    seriess =
  let all_points =
    List.concat_map
      (fun s ->
        s.points
        @ List.concat_map (fun (x, lo, hi) -> [ (x, lo); (x, hi) ]) s.band)
      seriess
  in
  let xlo, xhi, ylo, yhi = bounds all_points in
  let xspan = if xhi > xlo then xhi -. xlo else 1.0 in
  let yspan = if yhi > ylo then yhi -. ylo else 1.0 in
  let col x = int_of_float (Float.round ((x -. xlo) /. xspan *. float_of_int (width - 1))) in
  let row y =
    height - 1
    - int_of_float (Float.round ((y -. ylo) /. yspan *. float_of_int (height - 1)))
  in
  let grid = Array.make_matrix height width ' ' in
  let plot_band s =
    List.iter
      (fun (x, lo, hi) ->
        let c = col x in
        if c >= 0 && c < width then
          for r = row hi to row lo do
            if r >= 0 && r < height && grid.(r).(c) = ' ' then grid.(r).(c) <- '.'
          done)
      s.band
  in
  let plot_line s =
    List.iter
      (fun (x, y) ->
        let c = col x and r = row y in
        if c >= 0 && c < width && r >= 0 && r < height then grid.(r).(c) <- s.glyph)
      s.points
  in
  List.iter plot_band seriess;
  List.iter plot_line seriess;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  let ytick_w = 8 in
  for r = 0 to height - 1 do
    let tick =
      if r = 0 then fmt_tick yhi
      else if r = height - 1 then fmt_tick ylo
      else if r = height / 2 then fmt_tick ((yhi +. ylo) /. 2.0)
      else ""
    in
    Buffer.add_string buf (Printf.sprintf "%*s |" ytick_w tick);
    Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make ytick_w ' ' ^ " +" ^ String.make width '-' ^ "\n");
  let xlo_s = fmt_tick xlo and xhi_s = fmt_tick xhi in
  let gap = max 1 (width - String.length xlo_s - String.length xhi_s) in
  Buffer.add_string buf
    (String.make (ytick_w + 2) ' ' ^ xlo_s ^ String.make gap ' ' ^ xhi_s ^ "\n");
  if x_label <> "" then
    Buffer.add_string buf (String.make (ytick_w + 2) ' ' ^ x_label ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s%s\n" s.glyph s.label
           (if s.band <> [] then " (band: min..max shown as '.')" else "")))
    seriess;
  Buffer.contents buf
