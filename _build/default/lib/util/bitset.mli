(** Dense mutable bitsets over [0, capacity).

    Kernel coverage is a set of basic-block (or edge) indices out of a known
    universe, tested and merged millions of times per fuzzing campaign; a
    dense bitset keeps those operations O(words) and allocation-free. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0, capacity). *)

val capacity : t -> int

val copy : t -> t

val add : t -> int -> unit
(** Raises [Invalid_argument] when the index is out of range. *)

val remove : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val union_into : dst:t -> t -> int
(** [union_into ~dst src] adds all of [src] to [dst]; returns the number of
    bits newly set in [dst]. Capacities must match. *)

val diff_cardinal : t -> t -> int
(** [diff_cardinal a b] is [|a \ b|]. Capacities must match. *)

val inter_cardinal : t -> t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Ascending order. *)

val of_list : int -> int list -> t

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every element of [a] is in [b]. *)
