(** ASCII table rendering for the experiment harness output.

    Every table of the paper is re-printed by [bench/main.exe] through this
    module so that rows line up regardless of cell width. *)

type align = Left | Right

type t

val create : ?title:string -> header:string list -> unit -> t
(** Column count is fixed by [header]'s length. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_sep : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : ?aligns:align list -> t -> string
(** Render to a string, one trailing newline. Numeric-looking columns default
    to right alignment unless [aligns] overrides them. *)

val print : ?aligns:align list -> t -> unit
