(** Small descriptive-statistics helpers used by the experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val median : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    closest ranks. Raises [Invalid_argument] on the empty list. *)

val sum : float list -> float

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
