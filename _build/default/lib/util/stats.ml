let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

let median xs = percentile xs 50.0

let geomean = function
  | [] -> 0.0
  | xs -> exp (mean (List.map log xs))

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  let lo, hi = min_max xs in
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    max = hi;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max
