type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  header : string list;
  mutable rows : row list; (* reversed *)
}

let create ?title ~header () = { title; header; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || String.contains "+-.%xX,()/" c)
       s

let render ?aligns t =
  let rows = List.rev t.rows in
  let ncols = List.length t.header in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (function
      | Sep -> ()
      | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: aligns width mismatch"
    | None ->
      (* A column is right-aligned when every body cell looks numeric. *)
      Array.init ncols (fun i ->
          let numeric =
            List.for_all
              (function
                | Sep -> true
                | Cells cells -> looks_numeric (List.nth cells i))
              rows
            && rows <> []
          in
          if numeric then Right else Left)
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let emit cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  line '-';
  emit t.header;
  line '=';
  List.iter (function Sep -> line '-' | Cells cells -> emit cells) rows;
  line '-';
  Buffer.contents buf

let print ?aligns t = print_string (render ?aligns t)
