lib/util/bitset.ml: Array Bytes List
