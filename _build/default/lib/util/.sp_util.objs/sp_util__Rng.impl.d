lib/util/rng.ml: Array Char Float Fun Int64 List String
