lib/util/rng.mli:
