lib/util/bitset.mli:
