lib/util/table.mli:
