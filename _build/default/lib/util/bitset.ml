type t = { capacity : int; words : Bytes.t }

(* One byte per 8 bits; Bytes gives unboxed storage without Int64 boxing. *)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Bytes.make ((capacity + 7) / 8) '\000' }

let capacity t = t.capacity

let copy t = { capacity = t.capacity; words = Bytes.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b lor (1 lsl (i land 7)))

let remove t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem t i =
  check t i;
  Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun b -> table.(b)

let cardinal t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.words - 1 do
    n := !n + popcount_byte (Bytes.get_uint8 t.words i)
  done;
  !n

let is_empty t =
  let rec go i =
    i >= Bytes.length t.words
    || (Bytes.get_uint8 t.words i = 0 && go (i + 1))
  in
  go 0

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let check_same a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst src =
  check_same dst src;
  let added = ref 0 in
  for i = 0 to Bytes.length dst.words - 1 do
    let d = Bytes.get_uint8 dst.words i and s = Bytes.get_uint8 src.words i in
    let merged = d lor s in
    if merged <> d then begin
      added := !added + popcount_byte (merged lxor d);
      Bytes.set_uint8 dst.words i merged
    end
  done;
  !added

let diff_cardinal a b =
  check_same a b;
  let n = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    let x = Bytes.get_uint8 a.words i land lnot (Bytes.get_uint8 b.words i) in
    n := !n + popcount_byte (x land 0xff)
  done;
  !n

let inter_cardinal a b =
  check_same a b;
  let n = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    n := !n + popcount_byte (Bytes.get_uint8 a.words i land Bytes.get_uint8 b.words i)
  done;
  !n

let iter f t =
  for i = 0 to Bytes.length t.words - 1 do
    let b = Bytes.get_uint8 t.words i in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f ((i lsl 3) lor bit)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words

let subset a b =
  check_same a b;
  let rec go i =
    i >= Bytes.length a.words
    || (Bytes.get_uint8 a.words i land lnot (Bytes.get_uint8 b.words i) land 0xff = 0
        && go (i + 1))
  in
  go 0
