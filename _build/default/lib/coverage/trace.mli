(** Execution-trace postprocessing.

    The paper collects KCOV traces (sequences of executed kernel basic
    blocks) and postprocesses them into "unique, directional pairs of basic
    blocks, or edges" (§5.3.1). These helpers implement that step plus the
    per-trace block set. *)

val edge_pairs : int list -> (int * int) list
(** Unique directional consecutive pairs, in first-occurrence order. *)

val block_set : num_blocks:int -> int list -> Sp_util.Bitset.t

val unique_blocks : int list -> int list
(** Distinct block ids in first-occurrence order. *)
