let edge_pairs trace =
  let seen = Hashtbl.create 64 in
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | b1 :: (b2 :: _ as rest) ->
      if Hashtbl.mem seen (b1, b2) then go acc rest
      else begin
        Hashtbl.add seen (b1, b2) ();
        go ((b1, b2) :: acc) rest
      end
  in
  go [] trace

let block_set ~num_blocks trace =
  let set = Sp_util.Bitset.create num_blocks in
  List.iter (fun b -> if b >= 0 && b < num_blocks then Sp_util.Bitset.add set b) trace;
  set

let unique_blocks trace =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun b ->
      if Hashtbl.mem seen b then false
      else begin
        Hashtbl.add seen b ();
        true
      end)
    trace
