lib/coverage/trace.mli: Sp_util
