lib/coverage/accum.ml: Sp_util
