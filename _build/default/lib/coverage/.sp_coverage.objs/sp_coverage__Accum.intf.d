lib/coverage/accum.mli: Sp_util
