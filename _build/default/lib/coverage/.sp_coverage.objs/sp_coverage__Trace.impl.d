lib/coverage/trace.ml: Hashtbl List Sp_util
