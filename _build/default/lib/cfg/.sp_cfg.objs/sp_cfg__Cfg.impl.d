lib/cfg/cfg.ml: Array Hashtbl List Queue Sp_util
