lib/cfg/cfg.mli: Sp_util
