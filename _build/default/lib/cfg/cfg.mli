(** Static control-flow graphs over kernel basic blocks.

    The paper recovers the kernel's CFG with Angr and uses it for two static
    analyses: finding "alternative path entries" (uncovered blocks one
    not-taken branch away from a test's coverage, §3.2) and, for directed
    fuzzing, measuring how close a test got to a target block. This module is
    that substrate: blocks are dense integer ids [0..num_blocks), edges are
    directed, and both analyses are provided. *)

type t

val create : num_blocks:int -> edges:(int * int) list -> t
(** Duplicate edges are collapsed; self-edges are allowed. Raises
    [Invalid_argument] on out-of-range endpoints. *)

val num_blocks : t -> int

val num_edges : t -> int

val succs : t -> int -> int list
(** Successors in insertion order. *)

val preds : t -> int -> int list

val edges : t -> (int * int) list
(** All edges, grouped by source block. *)

val edge_id : t -> int * int -> int option
(** Dense id in [0, num_edges) for an existing edge, [None] otherwise. Edge
    ids index edge-coverage bitsets. *)

val mem_edge : t -> int * int -> bool

val reachable : t -> int -> Sp_util.Bitset.t
(** [reachable t b] is the forward-reachable set from [b], including [b]. *)

val frontier : t -> covered:Sp_util.Bitset.t -> (int * int) list
(** [frontier t ~covered] lists pairs [(entry, via)] where [entry] is not in
    [covered], [via] is, and edge [via -> entry] exists: the paper's
    alternative path entries with the covered block whose not-taken branch
    leads to them. Each [entry] appears once (first covered predecessor
    wins). *)

val distances_to : t -> int -> int array
(** [distances_to t target] gives, per block, the minimum number of edges on
    any path from that block to [target]; [max_int] when no path exists.
    Used by the SyzDirect-style directed fuzzer as a closeness metric. *)

val shortest_path : t -> src:int -> dst:int -> int list option
(** One BFS-shortest path [src; ...; dst], if any. *)
