module Bitset = Sp_util.Bitset

type t = {
  num_blocks : int;
  succ : int list array; (* insertion order *)
  pred : int list array;
  edge_ids : (int * int, int) Hashtbl.t;
  num_edges : int;
}

let create ~num_blocks ~edges =
  if num_blocks < 0 then invalid_arg "Cfg.create: negative num_blocks";
  let succ = Array.make num_blocks [] and pred = Array.make num_blocks [] in
  let edge_ids = Hashtbl.create (List.length edges) in
  let next_id = ref 0 in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= num_blocks || dst < 0 || dst >= num_blocks then
        invalid_arg "Cfg.create: edge endpoint out of range";
      if not (Hashtbl.mem edge_ids (src, dst)) then begin
        Hashtbl.add edge_ids (src, dst) !next_id;
        incr next_id;
        succ.(src) <- dst :: succ.(src);
        pred.(dst) <- src :: pred.(dst)
      end)
    edges;
  Array.iteri (fun i l -> succ.(i) <- List.rev l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.rev l) pred;
  { num_blocks; succ; pred; edge_ids; num_edges = !next_id }

let num_blocks t = t.num_blocks

let num_edges t = t.num_edges

let succs t b = t.succ.(b)

let preds t b = t.pred.(b)

let edges t =
  List.concat
    (List.init t.num_blocks (fun src -> List.map (fun dst -> (src, dst)) t.succ.(src)))

let edge_id t e = Hashtbl.find_opt t.edge_ids e

let mem_edge t e = Hashtbl.mem t.edge_ids e

let reachable t start =
  let seen = Bitset.create t.num_blocks in
  let q = Queue.create () in
  Bitset.add seen start;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let b = Queue.pop q in
    List.iter
      (fun nxt ->
        if not (Bitset.mem seen nxt) then begin
          Bitset.add seen nxt;
          Queue.add nxt q
        end)
      t.succ.(b)
  done;
  seen

let frontier t ~covered =
  let found = Hashtbl.create 64 in
  let acc = ref [] in
  Bitset.iter
    (fun via ->
      List.iter
        (fun entry ->
          if (not (Bitset.mem covered entry)) && not (Hashtbl.mem found entry)
          then begin
            Hashtbl.add found entry ();
            acc := (entry, via) :: !acc
          end)
        t.succ.(via))
    covered;
  List.rev !acc

let distances_to t target =
  let dist = Array.make t.num_blocks max_int in
  if t.num_blocks = 0 then dist
  else begin
    dist.(target) <- 0;
    let q = Queue.create () in
    Queue.add target q;
    while not (Queue.is_empty q) do
      let b = Queue.pop q in
      List.iter
        (fun p ->
          if dist.(p) = max_int then begin
            dist.(p) <- dist.(b) + 1;
            Queue.add p q
          end)
        t.pred.(b)
    done;
    dist
  end

let shortest_path t ~src ~dst =
  let parent = Array.make t.num_blocks (-1) in
  let seen = Bitset.create t.num_blocks in
  Bitset.add seen src;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let b = Queue.pop q in
    List.iter
      (fun nxt ->
        if not (Bitset.mem seen nxt) then begin
          Bitset.add seen nxt;
          parent.(nxt) <- b;
          if nxt = dst then found := true else Queue.add nxt q
        end)
      t.succ.(b)
  done;
  if not !found then None
  else begin
    let rec walk b acc = if b = src then src :: acc else walk parent.(b) (b :: acc) in
    Some (walk dst [])
  end
