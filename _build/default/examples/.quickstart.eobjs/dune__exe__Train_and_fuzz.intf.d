examples/train_and_fuzz.mli:
