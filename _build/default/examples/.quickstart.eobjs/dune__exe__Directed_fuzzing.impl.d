examples/directed_fuzzing.ml: Array Format List Option Printf Snowplow Sp_fuzz Sp_kernel Sp_syzlang Sp_util
