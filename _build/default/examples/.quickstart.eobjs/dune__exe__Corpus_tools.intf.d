examples/corpus_tools.mli:
