examples/crash_hunt.mli:
