examples/quickstart.mli:
