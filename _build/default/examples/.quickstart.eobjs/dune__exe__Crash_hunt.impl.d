examples/crash_hunt.ml: Array List Printf Sp_fuzz Sp_kernel Sp_syzlang Sp_util String
