examples/directed_fuzzing.mli:
