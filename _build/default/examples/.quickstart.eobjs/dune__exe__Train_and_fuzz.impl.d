examples/train_and_fuzz.ml: Format List Printf Snowplow Sp_fuzz Sp_kernel Sp_ml Sp_syzlang Sp_util
