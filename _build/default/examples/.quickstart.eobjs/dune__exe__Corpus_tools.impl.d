examples/corpus_tools.ml: List Printf Snowplow Sp_fuzz Sp_kernel Sp_syzlang Sp_util
