examples/quickstart.ml: Array Format List Printf Snowplow Sp_cfg Sp_kernel Sp_mutation Sp_syzlang Sp_util String
