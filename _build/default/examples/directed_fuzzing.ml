(* Directed fuzzing (§5.4): point the fuzzer at one target code location —
   here the crash site of an injected deep bug — and compare how fast
   SyzDirect-style heuristics and PMM-guided Snowplow-D reach it.

   Run with: dune exec examples/directed_fuzzing.exe *)

module Campaign = Sp_fuzz.Campaign
module Kernel = Sp_kernel.Kernel
module Ir = Sp_kernel.Ir
module Bug = Sp_kernel.Bug

let find_crash_block kernel (bug : Bug.t) =
  let rec go i =
    if i >= Kernel.num_blocks kernel then None
    else
      match (Kernel.block kernel i).Ir.term with
      | Ir.Crash id when id = bug.Bug.id -> Some i
      | _ -> go (i + 1)
  in
  go 0

let () =
  let config =
    {
      Snowplow.Pipeline.default_config with
      gen_bases = 50;
      corpus_bases = 50;
      dataset = { Snowplow.Dataset.default_config with mutations_per_base = 300 };
      trainer = { Snowplow.Trainer.default_config with epochs = 5 };
      encoder = { Snowplow.Encoder.default_config with steps = 1500 };
    }
  in
  print_endline "training PMM (reduced budget)...";
  let p = Snowplow.Pipeline.train ~config () in
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Kernel.spec_db kernel in
  (* Target: the crash site of the first deep (previously-unknown) bug. *)
  let bug =
    Array.to_list (Kernel.bugs kernel)
    |> List.find (fun (b : Bug.t) -> not b.Bug.known)
  in
  let target = Option.get (find_crash_block kernel bug) in
  Format.printf "target: block %d — %a@." target Bug.pp bug;
  Printf.printf "ground-truth gate (hidden from the fuzzers):\n";
  List.iter
    (fun pred -> Format.printf "  %a@." Ir.pp_predicate pred)
    (Kernel.bug_gate kernel bug.Bug.id);
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 77) db ~size:60 in
  let run name strategy =
    let cfg =
      {
        Campaign.default_config with
        seed_corpus = seeds;
        seed = 21;
        duration = 4.0 *. 3600.0;
        snapshot_every = 600.0;
        target = Some target;
      }
    in
    let vm = Sp_fuzz.Vm.create ~fleet_scale:192.0 ~seed:2 kernel in
    let r = Campaign.run vm strategy cfg in
    (match r.Campaign.target_hit_at with
    | Some t -> Printf.printf "%-12s reached the target after %.0f virtual seconds\n" name t
    | None -> Printf.printf "%-12s did not reach the target within the cap\n" name);
    r
  in
  let target_sys =
    let sys = (Kernel.block kernel target).Ir.sys_id in
    if sys >= 0 then Some sys else None
  in
  let syz = run "SyzDirect" (Sp_fuzz.Strategy.syzdirect ~target_sys db) in
  let inference = Snowplow.Pipeline.inference_for p kernel in
  let snow = run "Snowplow-D" (Snowplow.Directed.strategy ~inference ~target kernel) in
  match (syz.Campaign.target_hit_at, snow.Campaign.target_hit_at) with
  | Some a, Some b when b > 0.0 ->
    Printf.printf "\nspeedup: %.1fx\n" (a /. b)
  | None, Some _ -> print_endline "\nonly Snowplow-D reached the target"
  | Some _, None -> print_endline "\nonly SyzDirect reached the target"
  | _ -> print_endline "\nneither system reached the target within the cap"
