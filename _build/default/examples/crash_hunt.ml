(* Crash hunting and triage: run a short Syzkaller campaign with reproducer
   extraction enabled, then show what the triage pipeline produced —
   dedup'd crash reports, known-vs-new classification against the
   Syzbot-style list, and minimized reproducers (§5.3.2's workflow).

   Run with: dune exec examples/crash_hunt.exe *)

module Campaign = Sp_fuzz.Campaign
module Triage = Sp_fuzz.Triage
module Bug = Sp_kernel.Bug

let () =
  let kernel = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Sp_kernel.Kernel.spec_db kernel in
  Printf.printf "kernel has %d injected bugs (%d on the known list)\n\n"
    (Array.length (Sp_kernel.Kernel.bugs kernel))
    (Array.length
       (Array.of_list
          (List.filter
             (fun (b : Bug.t) -> b.Bug.known)
             (Array.to_list (Sp_kernel.Kernel.bugs kernel)))));
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 31) db ~size:100 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = 13;
      duration = 12.0 *. 3600.0;
      attempt_repro = true;
    }
  in
  print_endline "fuzzing 12 virtual hours with reproduction enabled...";
  let vm = Sp_fuzz.Vm.create ~seed:3 kernel in
  let report = Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) cfg in
  Printf.printf "executions: %d; crashes found: %d (%d new, %d known)\n\n"
    report.Campaign.executions
    (List.length report.Campaign.crashes)
    (List.length report.Campaign.new_crashes)
    (List.length report.Campaign.known_crashes);
  List.iter
    (fun (f : Triage.found) ->
      Printf.printf "crash after %.0f virtual seconds:\n  %s\n" f.Triage.found_at
        f.Triage.description;
      Printf.printf "  category: %s%s\n"
        (Bug.category_to_string f.Triage.bug.Bug.category)
        (if f.Triage.bug.Bug.concurrency then " (racy)" else "");
      (match f.Triage.reproducer with
      | Some repro ->
        Printf.printf "  minimized reproducer (%d of %d calls kept):\n"
          (Array.length repro)
          (Array.length f.Triage.witness);
        print_string
          (String.concat ""
             (List.map
                (fun line -> "    " ^ line ^ "\n")
                (String.split_on_char '\n' (String.trim (Sp_syzlang.Prog.to_string repro)))))
      | None -> print_endline "  no reproducer (syz-repro analogue failed to replay)");
      print_newline ())
    report.Campaign.crashes
