(* Extensions showcase: corpus distillation (Moonshine-style, §7) and the
   learned syscall-insertion model (§6's future work).

   Run with: dune exec examples/corpus_tools.exe *)

module Kernel = Sp_kernel.Kernel
module Campaign = Sp_fuzz.Campaign
module Bitset = Sp_util.Bitset

let () =
  let kernel = Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Kernel.spec_db kernel in
  (* Accumulate a corpus with a short Syzkaller campaign. *)
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 5) db ~size:60 in
  let cfg =
    { Campaign.default_config with seed_corpus = seeds; seed = 6; duration = 3600.0 }
  in
  print_endline "accumulating a corpus (1 virtual hour of Syzkaller)...";
  let r =
    Campaign.run (Sp_fuzz.Vm.create ~seed:7 kernel) (Sp_fuzz.Strategy.syzkaller db) cfg
  in
  let corpus_progs =
    List.map (fun (e : Sp_fuzz.Corpus.entry) -> e.Sp_fuzz.Corpus.prog)
      (Sp_fuzz.Corpus.entries r.Campaign.corpus)
  in
  (* 1. Distill it. *)
  let report = Sp_fuzz.Distill.distill kernel corpus_progs in
  Printf.printf
    "distillation: %d tests (%d calls) -> %d tests (%d calls), %d blocks preserved\n\n"
    report.Sp_fuzz.Distill.original_count report.Sp_fuzz.Distill.original_calls
    report.Sp_fuzz.Distill.distilled_count report.Sp_fuzz.Distill.distilled_calls
    report.Sp_fuzz.Distill.blocks_covered;
  (* 2. Train the insertion model against this campaign's coverage. *)
  let covered = r.Campaign.covered_blocks in
  print_endline "collecting successful-insertion examples...";
  let bases = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 8) db ~size:40 in
  let examples = Snowplow.Insertion.collect_examples ~seed:9 ~covered kernel ~bases in
  Printf.printf "%d examples of insertions that unlocked marginal coverage\n" (List.length examples);
  let model = Snowplow.Insertion.create kernel in
  let losses = Snowplow.Insertion.train model ~covered examples in
  Printf.printf "training loss: %.3f -> %.3f over %d epochs\n"
    (List.hd losses)
    (List.nth losses (List.length losses - 1))
    (List.length losses);
  (* 3. Ask it what to insert into a fresh test. *)
  let base = Sp_syzlang.Gen.program (Sp_util.Rng.create 10) db () in
  print_endline "\nbase test:";
  print_string (Sp_syzlang.Prog.to_string base);
  let top = Snowplow.Insertion.top_k model ~covered base ~k:5 in
  Printf.printf "\nmost promising syscalls to insert:\n";
  List.iteri
    (fun i sys ->
      Printf.printf "  %d. %s\n" (i + 1) (Sp_syzlang.Spec.by_id db sys).Sp_syzlang.Spec.name)
    top
