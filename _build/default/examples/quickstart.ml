(* Quickstart: generate a kernel, write a test in the syz-like text format,
   execute it, inspect its coverage and frontier, and apply one argument
   mutation — the paper's Figure 3 scenario.

   Run with: dune exec examples/quickstart.exe *)

module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog
module Bitset = Sp_util.Bitset

let () =
  (* A synthetic "Linux 6.8": 48 syscalls with generated handler code. *)
  let kernel = Kernel.linux_like ~seed:7 ~version:"6.8" in
  let db = Kernel.spec_db kernel in
  Printf.printf "kernel %s: %d basic blocks, %d static edges, %d syscalls\n\n"
    (Kernel.version kernel) (Kernel.num_blocks kernel)
    (Sp_cfg.Cfg.num_edges (Kernel.cfg kernel))
    (Sp_syzlang.Spec.count db);
  (* Figure 3's base test: open a file, then read through the returned fd.
     Programs parse from the same text format the printer emits. *)
  let open_spec = Sp_syzlang.Spec.find_exn db "open" in
  let read_spec = Sp_syzlang.Spec.find_exn db "read" in
  Format.printf "open's interface : %a@." Sp_syzlang.Spec.pp open_spec;
  Format.printf "read's interface : %a@.@." Sp_syzlang.Spec.pp read_spec;
  let rng = Sp_util.Rng.create 42 in
  let base =
    Sp_syzlang.Gen.wire_resources rng db
      [| Prog.make_call rng open_spec; Prog.make_call rng read_spec |]
  in
  print_endline "Base test:";
  print_string (Prog.to_string base);
  (match Prog.validate base with
  | Ok () -> print_endline "(validates)\n"
  | Error e -> Printf.printf "(INVALID: %s)\n" e);
  (* Execute deterministically and look at the coverage. *)
  let result = Kernel.execute kernel base in
  Printf.printf "covered %d blocks, %d edges; per call:\n"
    (Bitset.cardinal result.Kernel.covered)
    (Bitset.cardinal result.Kernel.covered_edges);
  List.iter
    (fun (tr : Kernel.call_trace) ->
      Printf.printf "  call %d (%s): %d blocks\n" tr.Kernel.call_idx
        base.(tr.Kernel.call_idx).Prog.spec.Sp_syzlang.Spec.name
        (List.length tr.Kernel.visited))
    result.Kernel.traces;
  let frontier = Snowplow.Query_graph.frontier_blocks kernel result in
  Printf.printf "alternative path entries (one branch away): %d\n\n"
    (List.length frontier);
  (* One argument mutation via the Syzkaller-style engine. *)
  let engine = Sp_mutation.Engine.create db in
  let mutated, applied = Sp_mutation.Engine.mutate engine rng base in
  (match applied with
  | Sp_mutation.Engine.Mutated_args paths ->
    Printf.printf "mutated argument(s): %s\n"
      (String.concat ", " (List.map Prog.path_to_string paths))
  | _ -> print_endline "(non-argument mutation this time)");
  print_endline "Mutated test:";
  print_string (Prog.to_string mutated);
  let result' = Kernel.execute kernel mutated in
  let fresh = Bitset.diff_cardinal result'.Kernel.covered result.Kernel.covered in
  Printf.printf "\nmutant covered %d blocks the base did not: %s mutation\n"
    fresh
    (if fresh > 0 then "a successful" else "not a successful");
  (* Parse / print round trip. *)
  let reparsed = Sp_syzlang.Parser.program_exn db (Prog.to_string base) in
  Printf.printf "printer/parser round trip: %b\n" (Prog.equal base reparsed)
