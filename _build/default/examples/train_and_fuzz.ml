(* Train a small PMM and run a side-by-side Syzkaller vs Snowplow coverage
   campaign — a miniature of §5.3.1 / Figure 6 (a reduced-budget model and
   a 6-virtual-hour campaign so the example finishes in a couple of
   minutes).

   Run with: dune exec examples/train_and_fuzz.exe *)

module Campaign = Sp_fuzz.Campaign

let () =
  let config =
    {
      Snowplow.Pipeline.default_config with
      gen_bases = 50;
      corpus_bases = 50;
      dataset = { Snowplow.Dataset.default_config with mutations_per_base = 300 };
      trainer = { Snowplow.Trainer.default_config with epochs = 5 };
      encoder = { Snowplow.Encoder.default_config with steps = 1500 };
    }
  in
  print_endline "training PMM (reduced budget)...";
  let p = Snowplow.Pipeline.train ~config () in
  Format.printf "held-out localization quality: %a@."
    Sp_ml.Metrics.pp (Snowplow.Pipeline.eval_scores p);
  let kernel = p.Snowplow.Pipeline.kernel in
  let db = Sp_kernel.Kernel.spec_db kernel in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create 99) db ~size:80 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = 11;
      duration = 6.0 *. 3600.0;
      snapshot_every = 1800.0;
    }
  in
  print_endline "running 6 virtual hours of Syzkaller...";
  let syz =
    Campaign.run (Sp_fuzz.Vm.create ~seed:1 kernel) (Sp_fuzz.Strategy.syzkaller db) cfg
  in
  print_endline "running 6 virtual hours of Snowplow...";
  let inference = Snowplow.Pipeline.inference_for p kernel in
  let snow =
    Campaign.run
      (Sp_fuzz.Vm.create ~seed:1 kernel)
      (Snowplow.Hybrid.strategy ~inference kernel)
      cfg
  in
  Printf.printf "\n%-10s %8s %8s\n" "uptime" "Syzkaller" "Snowplow";
  List.iter2
    (fun (s : Campaign.snapshot) (n : Campaign.snapshot) ->
      Printf.printf "%6.1f h   %8d %8d\n" (s.Campaign.s_time /. 3600.0)
        s.Campaign.s_edges n.Campaign.s_edges)
    syz.Campaign.series snow.Campaign.series;
  Printf.printf "\nedge coverage after 6 h: Syzkaller %d, Snowplow %d (%+.1f%%)\n"
    syz.Campaign.final_edges snow.Campaign.final_edges
    (100.0
    *. ((float_of_int snow.Campaign.final_edges
        /. float_of_int (max 1 syz.Campaign.final_edges))
       -. 1.0));
  Printf.printf "inference service: %d queries served, %d answered from cache\n"
    (Snowplow.Inference.served inference)
    (Snowplow.Inference.cache_hits inference)
