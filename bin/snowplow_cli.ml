(* Command-line interface to the Snowplow reproduction.

   snowplow kernel-info  — describe a generated kernel
   snowplow gen          — generate and print random test programs
   snowplow run          — execute a test program from a file or stdin
   snowplow fuzz         — run a coverage campaign (syzkaller or snowplow)
   snowplow serve        — multiplex several campaigns over one shared pool
   snowplow train        — train PMM and print Table-1 metrics
   snowplow directed     — directed fuzzing towards a bug's crash site
   snowplow stats        — inspect exported traces / time-series *)

open Cmdliner

module Kernel = Sp_kernel.Kernel
module Campaign = Sp_fuzz.Campaign
module Prog = Sp_syzlang.Prog
module Trace = Sp_obs.Trace
module Timeseries = Sp_obs.Timeseries
module Trace_check = Sp_obs.Trace_check

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Kernel generation seed.")

let version_arg =
  Arg.(
    value
    & opt (enum [ ("6.8", "6.8"); ("6.9", "6.9"); ("6.10", "6.10") ]) "6.8"
    & info [ "kernel" ] ~docv:"VERSION" ~doc:"Kernel version (6.8, 6.9 or 6.10).")

let hours_arg =
  Arg.(
    value & opt float 2.0
    & info [ "hours" ] ~docv:"H" ~doc:"Virtual campaign duration in hours.")

let campaign_seed_arg =
  Arg.(value & opt int 11 & info [ "run-seed" ] ~docv:"SEED" ~doc:"Campaign RNG seed.")

let make_kernel seed version = Kernel.linux_like ~seed ~version

(* ------------------------------------------------------------------ *)
(* kernel-info                                                         *)
(* ------------------------------------------------------------------ *)

let kernel_info seed version =
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  Printf.printf "kernel %s (seed %d)\n" (Kernel.version k) seed;
  Printf.printf "  basic blocks : %d\n" (Kernel.num_blocks k);
  Printf.printf "  static edges : %d\n" (Sp_cfg.Cfg.num_edges (Kernel.cfg k));
  Printf.printf "  syscalls     : %d\n" (Sp_syzlang.Spec.count db);
  Printf.printf "  bugs         : %d (%d known / %d new)\n"
    (Array.length (Kernel.bugs k))
    (List.length (List.filter (fun (b : Sp_kernel.Bug.t) -> b.known)
                    (Array.to_list (Kernel.bugs k))))
    (List.length (List.filter (fun (b : Sp_kernel.Bug.t) -> not b.known)
                    (Array.to_list (Kernel.bugs k))));
  print_endline "  interface:";
  List.iter
    (fun spec -> Format.printf "    %a@." Sp_syzlang.Spec.pp spec)
    (Sp_syzlang.Spec.all db)

let kernel_info_cmd =
  Cmd.v
    (Cmd.info "kernel-info" ~doc:"Describe a generated synthetic kernel.")
    Term.(const kernel_info $ seed_arg $ version_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen seed version count =
  let k = make_kernel seed version in
  let rng = Sp_util.Rng.create (seed lxor 0x9e9) in
  List.iter
    (fun prog ->
      print_string (Prog.to_string prog);
      print_newline ())
    (Sp_syzlang.Gen.corpus rng (Kernel.spec_db k) ~size:count)

let gen_cmd =
  let count =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of programs.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate random well-formed test programs.")
    Term.(const gen $ seed_arg $ version_arg $ count)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_prog seed version file =
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  let text =
    match file with
    | Some path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    | None -> In_channel.input_all stdin
  in
  match Sp_syzlang.Parser.program db text with
  | Error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | Ok prog ->
    let r = Kernel.execute k prog in
    Printf.printf "covered %d blocks, %d edges\n"
      (Sp_util.Bitset.cardinal r.Kernel.covered)
      (Sp_util.Bitset.cardinal r.Kernel.covered_edges);
    (match r.Kernel.crash with
    | Some c ->
      Printf.printf "CRASH at call %d: %s\n" c.Kernel.crash_call
        (Sp_kernel.Bug.description c.Kernel.bug)
    | None -> print_endline "no crash")

let run_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Program file (defaults to stdin).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a test program against the kernel.")
    Term.(const run_prog $ seed_arg $ version_arg $ file)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

(* All artifact writes go through the atomic writer: the old in-place
   writer leaked its channel on exception and could leave a torn file. *)
let write_text_file path data = Sp_obs.Io.write_atomic path data

let fuzz seed version hours run_seed system jobs trace_file ts_file
    snapshot_dir resume_file =
  if jobs < 1 then begin
    prerr_endline "snowplow fuzz: -jobs must be >= 1";
    exit 1
  end;
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create (run_seed lxor 0x5eed)) db ~size:100 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = run_seed;
      duration = hours *. 3600.0;
      snapshot_every = Float.max 600.0 (hours *. 3600.0 /. 12.0);
      attempt_repro = true;
    }
  in
  let trace =
    if trace_file = None then Trace.disabled
    else Trace.create ~enabled:true ()
  in
  let timeseries = Option.map (fun _ -> Timeseries.create ()) ts_file in
  (* Shared with the campaign's own pid-0 handout (Trace.tracer memoizes
     by pid): the inference/funnel spans land in the main domain's lane,
     which is also where their calls run. *)
  let main_tracer = Trace.tracer trace ~pid:0 ~name:"campaign-main" in
  (* Per-shard VM seeds are a pure function of (run_seed, shard), so a
     parallel run is reproducible from (seed, jobs) alone. *)
  let vm_for s = Sp_fuzz.Vm.create ~seed:(run_seed + (7919 * s)) k in
  (* One launcher for both systems: fresh campaigns go through
     [run_parallel] (which snapshots at barriers when --snapshot-dir is
     given), resumed ones load the snapshot file and validate it against
     the flags — resuming demands the same seed/hours/jobs/system flags
     the snapshotted campaign was launched with. *)
  let launch ?ts_extra ?on_barrier ?aux ~strategy_for () =
    match resume_file with
    | None ->
      Campaign.run_parallel ~trace ?timeseries ?ts_extra ?on_barrier ?aux
        ?snapshot_dir ~jobs ~vm_for ~strategy_for cfg
    | Some file -> (
      match Sp_fuzz.Snapshot.read file with
      | Error msg ->
        Printf.eprintf "snowplow fuzz: cannot read snapshot %s: %s\n" file msg;
        exit 1
      | Ok snap -> (
        match
          Campaign.resume ~trace ?timeseries ?ts_extra ?on_barrier ?aux
            ?snapshot_dir ~snapshot:snap ~jobs ~vm_for ~strategy_for cfg
        with
        | Ok r -> r
        | Error msg ->
          Printf.eprintf "snowplow fuzz: cannot resume from %s: %s\n" file msg;
          exit 1))
  in
  let name, run_campaign =
    match system with
    | `Syzkaller ->
      ( "Syzkaller",
        fun () ->
          launch ~strategy_for:(fun _ -> Sp_fuzz.Strategy.syzkaller db) () )
    | `Snowplow ->
      ( "Snowplow",
        fun () ->
          print_endline "training PMM first (this takes a few minutes)...";
          let p = Snowplow.Pipeline.train ~tracer:main_tracer () in
          let inference =
            Snowplow.Pipeline.inference_for ~tracer:main_tracer p k
          in
          (* Service-side columns for the time-series: all read at the
             snapshot grid on the main domain from barrier-merged state,
             so they stay inside the determinism contract. *)
          let ts_extra () =
            [
              ("inference.pending",
               float_of_int (Snowplow.Inference.pending inference));
              ("inference.served",
               float_of_int (Snowplow.Inference.served inference));
              ("inference.cache_hits",
               float_of_int (Snowplow.Inference.cache_hits inference));
              ("inference.cache_size",
               float_of_int (Snowplow.Inference.cache_size inference));
            ]
          in
          if jobs = 1 && snapshot_dir = None && resume_file = None then
            Campaign.run ~trace ?timeseries ~ts_extra (vm_for 0)
              (Snowplow.Hybrid.strategy ~inference k) cfg
          else begin
            (* One inference service for the whole fleet: shards enqueue
               into per-shard outboxes and the funnel forwards them as one
               batch at each snapshot barrier. *)
            let funnel =
              Snowplow.Funnel.create ~tracer:main_tracer ~shards:jobs inference
            in
            (* Service, funnel lanes and per-shard prediction memos ride
               in the snapshot's aux field, so a resumed snowplow
               campaign matches its uninterrupted run exactly. *)
            let predictions =
              Array.init jobs (fun _ -> Snowplow.Hybrid.make_predictions ())
            in
            let aux =
              Snowplow.Persist.aux
                ~parse:(Sp_syzlang.Parser.program db)
                ~inference ~funnel ~predictions
            in
            let ts_extra () =
              ts_extra ()
              @ [
                  ("funnel.deferred",
                   float_of_int (Snowplow.Funnel.requests_deferred funnel));
                  ("funnel.dropped",
                   float_of_int (Snowplow.Funnel.dropped funnel));
                ]
            in
            launch ~ts_extra ~aux
              ~strategy_for:(fun s ->
                Snowplow.Hybrid.strategy_with ~predictions:(predictions.(s))
                  ~endpoint:(Snowplow.Funnel.endpoint funnel ~shard:s)
                  k)
              ~on_barrier:(fun ~now -> ignore (Snowplow.Funnel.flush funnel ~now))
              ()
          end )
  in
  Printf.printf "fuzzing %s for %.1f virtual hours with %s (%d job%s)...\n%!"
    version hours name jobs
    (if jobs = 1 then "" else "s");
  let r = run_campaign () in
  Printf.printf "%-8s %10s %10s %8s\n" "uptime" "blocks" "edges" "crashes";
  List.iter
    (fun (s : Campaign.snapshot) ->
      Printf.printf "%6.1f h %10d %10d %8d\n" (s.Campaign.s_time /. 3600.0)
        s.Campaign.s_blocks s.Campaign.s_edges s.Campaign.s_crashes)
    r.Campaign.series;
  Printf.printf "\nexecutions %d, corpus %d, crashes %d (%d new)\n"
    r.Campaign.executions r.Campaign.corpus_size
    (List.length r.Campaign.crashes)
    (List.length r.Campaign.new_crashes);
  List.iter
    (fun (f : Sp_fuzz.Triage.found) ->
      Printf.printf "  [%s] %s%s\n"
        (if Sp_fuzz.Triage.is_known
              (Sp_fuzz.Triage.create k) f.Sp_fuzz.Triage.description
         then "known" else " new ")
        f.Sp_fuzz.Triage.description
        (match f.Sp_fuzz.Triage.reproducer with
        | Some _ -> " (reproducer available)"
        | None -> ""))
    r.Campaign.crashes;
  (match trace_file with
  | Some path ->
    Trace.write_file trace path;
    Printf.printf "trace written to %s\n" path
  | None -> ());
  match (ts_file, timeseries) with
  | Some path, Some ts ->
    let data =
      if Filename.check_suffix path ".csv" then Timeseries.to_csv ts
      else Timeseries.to_jsonl ts
    in
    write_text_file path data;
    Printf.printf "timeseries written to %s (%d rows)\n" path
      (Timeseries.length ts)
  | _ -> ()

let snapshot_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the campaign state to $(docv)/snapshot-NNNNNN.json after \
           every merge barrier (written atomically: a kill mid-write leaves \
           the previous snapshot intact). A killed campaign can then be \
           continued with $(b,--resume). Forces the barrier-merged executor \
           even with --jobs 1.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume a campaign from a snapshot file written via \
           $(b,--snapshot-dir). Pass the same seed/hours/jobs/system flags \
           as the original launch (validated against the snapshot). The \
           resumed report is bit-identical to the uninterrupted run's — \
           snowplow's inference/funnel caches are part of the snapshot.")

let system_arg =
  Arg.(
    value
    & opt (enum [ ("syzkaller", `Syzkaller); ("snowplow", `Snowplow) ]) `Syzkaller
    & info [ "system" ] ~docv:"SYS" ~doc:"Fuzzer to run: syzkaller or snowplow.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker shards (OCaml domains). With N > 1 the campaign runs on \
           the parallel executor: N VMs fuzz independently between \
           snapshot barriers and merge deterministically, so results are \
           reproducible given (run-seed, jobs).")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON trace of the campaign to \
           $(docv) (load it in chrome://tracing or Perfetto, or inspect \
           it with $(b,snowplow stats --trace)).")

let timeseries_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Write the campaign time-series to $(docv): one JSON object per \
           snapshot-grid row (JSONL), or CSV when $(docv) ends in .csv. \
           Rows are sampled from barrier-merged state on the virtual \
           clock, so the file is bit-for-bit reproducible given \
           (run-seed, jobs).")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a coverage-directed fuzzing campaign.")
    Term.(
      const fuzz $ seed_arg $ version_arg $ hours_arg $ campaign_seed_arg
      $ system_arg $ jobs_arg $ trace_file_arg $ timeseries_file_arg
      $ snapshot_dir_arg $ resume_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

type tenant_spec = {
  tn_name : string;
  tn_system : [ `Syzkaller | `Snowplow ];
  tn_jobs : int;
  tn_hours : float;
  tn_seed : int;
  tn_weight : float;
  tn_budget : int option;
  tn_corpus : int;
}

(* The --tenants file: a JSON array of {"name", "system", "jobs",
   "hours", "run_seed", "weight", "exec_budget", "corpus_size"}; only
   "name" is required. Every invalid entry is reported — one pass over
   the roster collects them all into a single error message, so a bad
   ten-tenant file is fixed in one edit, not ten. *)
let tenant_specs_of_json j =
  let module J = Sp_obs.Json in
  let module D = J.Decode in
  let opt name f default tj = if J.member name tj = None then default else f name tj in
  let spec tj =
    let s =
      {
        tn_name = D.str_field "name" tj;
        tn_system =
          (match opt "system" D.str_field "syzkaller" tj with
          | "syzkaller" -> `Syzkaller
          | "snowplow" -> `Snowplow
          | s -> D.error "system: unknown fuzzer %S" s);
        tn_jobs = opt "jobs" D.int_field 1 tj;
        tn_hours = opt "hours" D.num_field 1.0 tj;
        tn_seed = opt "run_seed" D.int_field 11 tj;
        tn_weight = opt "weight" D.num_field 1.0 tj;
        tn_budget =
          (if J.member "exec_budget" tj = None then None
           else Some (D.int_field "exec_budget" tj));
        tn_corpus = opt "corpus_size" D.int_field 100 tj;
      }
    in
    if s.tn_name = "" then D.error "name: must be non-empty";
    if s.tn_jobs < 1 then D.error "jobs: must be >= 1 (got %d)" s.tn_jobs;
    if not (Float.is_finite s.tn_weight && s.tn_weight > 0.0) then
      D.error "weight: must be finite and positive (got %g)" s.tn_weight;
    if not (Float.is_finite s.tn_hours && s.tn_hours > 0.0) then
      D.error "hours: must be finite and positive (got %g)" s.tn_hours;
    (match s.tn_budget with
    | Some b when b < 0 -> D.error "exec_budget: must be >= 0 (got %d)" b
    | Some _ | None -> ());
    s
  in
  match j with
  | J.Arr [] -> Error "tenants file: at least one tenant required"
  | J.Arr tenants ->
    let specs, errors =
      List.fold_left
        (fun (specs, errors) (i, tj) ->
          match D.run (fun () -> spec tj) with
          | Ok s -> (s :: specs, errors)
          | Error e ->
            (specs, Printf.sprintf "tenant entry %d: %s" i e :: errors))
        ([], [])
        (List.mapi (fun i tj -> (i, tj)) tenants)
    in
    let specs = List.rev specs in
    let dup_errors =
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun s ->
          if s.tn_name <> "" && Hashtbl.mem seen s.tn_name then
            Some (Printf.sprintf "duplicate tenant name %S" s.tn_name)
          else begin
            Hashtbl.add seen s.tn_name ();
            None
          end)
        specs
    in
    let errors = List.rev_append errors dup_errors in
    if errors <> [] then Error (String.concat "\n" errors) else Ok specs
  | _ -> Error "tenants file: expected a JSON array of tenant objects"

let serve seed version tenants_file workers snapshot_root resume trace_file
    ts_file max_slices fault_plan_file max_tenant_retries listen
    listen_port_file events_file summary_json =
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  let specs =
    match Sp_obs.Json.of_string (Sp_obs.Io.read_file tenants_file) with
    | Error e ->
      Printf.eprintf "snowplow serve: %s: JSON parse error: %s\n" tenants_file e;
      exit 1
    | Ok j -> (
      match tenant_specs_of_json j with
      | Error e ->
        Printf.eprintf "snowplow serve: %s: %s\n" tenants_file e;
        exit 1
      | Ok specs -> specs)
  in
  let faults =
    match fault_plan_file with
    | None -> Sp_util.Faults.disabled
    | Some file -> (
      match Sp_obs.Json.of_string (Sp_obs.Io.read_file file) with
      | Error e ->
        Printf.eprintf "snowplow serve: %s: JSON parse error: %s\n" file e;
        exit 1
      | Ok j -> (
        match Sp_util.Faults.of_json j with
        | Error e ->
          Printf.eprintf "snowplow serve: %s: %s\n" file e;
          exit 1
        | Ok f -> f))
  in
  let trace =
    if trace_file = None then Trace.disabled else Trace.create ~enabled:true ()
  in
  let timeseries = Option.map (fun _ -> Timeseries.create ()) ts_file in
  (* The structured event log replaces ad-hoc stderr prints: one bounded
     ring (feeding the exporter's /events endpoint) plus an optional
     JSONL sink. Armed whenever anything can observe it. *)
  let events_chan = Option.map open_out events_file in
  let events =
    if Option.is_none events_chan && Option.is_none listen then
      Sp_obs.Events.null
    else
      Sp_obs.Events.create
        ?sink:
          (Option.map
             (fun oc line ->
               output_string oc line;
               output_char oc '\n';
               flush oc)
             events_chan)
        ()
  in
  (* Fault injections become Warn events instead of being invisible
     until the final count — the observer fires on whichever domain hit
     the site, and Events.log is thread-safe. *)
  Sp_util.Faults.set_observer faults (fun site ~k ->
      Sp_obs.Events.log events ~level:Sp_obs.Events.Warn ~kind:"fault.injected"
        [ ("site", Sp_obs.Json.Str site); ("k", Sp_obs.Json.Num (float_of_int k)) ]);
  (* One warm service + one multi-tenant funnel for every snowplow
     tenant: the shared-inference deployment the paper runs, and the
     cold-start amortization bench/exp_sched.ml measures. Each tenant
     gets its own funnel lane (outboxes/inboxes + request tag), so its
     prediction stream depends only on its own request history. *)
  let service =
    if not (List.exists (fun s -> s.tn_system = `Snowplow) specs) then None
    else begin
      print_endline "training PMM first (this takes a few minutes)...";
      (* SNOWPLOW_QUICK shrinks training to the integration-test scale —
         the CI chaos smoke uses it to keep the serve run under a minute.
         The model is bad; the plumbing it exercises is the same. *)
      let config =
        if Sys.getenv_opt "SNOWPLOW_QUICK" = None then None
        else
          Some
            {
              Snowplow.Pipeline.default_config with
              kernel_seed = 19;
              gen_bases = 40;
              corpus_bases = 40;
              warmup_duration = 900.0;
              dataset =
                {
                  Snowplow.Dataset.default_config with
                  mutations_per_base = 200;
                };
              encoder = { Snowplow.Encoder.default_config with steps = 600 };
              trainer =
                {
                  Snowplow.Trainer.default_config with
                  epochs = 4;
                  log_every = 0;
                };
            }
      in
      let t0 = Unix.gettimeofday () in
      let p = Snowplow.Pipeline.train ?config () in
      let train_wall = Unix.gettimeofday () -. t0 in
      (* Trainer throughput as a static gauge: example presentations per
         wall second over the whole pretraining run. *)
      let samples_per_s =
        let epochs =
          (Option.value config ~default:Snowplow.Pipeline.default_config)
            .Snowplow.Pipeline.trainer
            .Snowplow.Trainer.epochs
        in
        let presented =
          Array.length p.Snowplow.Pipeline.split.Snowplow.Dataset.train * epochs
        in
        if train_wall > 0.0 then float_of_int presented /. train_wall else 0.0
      in
      let inference = Snowplow.Pipeline.inference_for p k in
      (* Degradation (lane breakers, retries, timeouts) only arms
         together with a fault plan: the base service cannot stall on
         its own, so without injected faults the machinery would be pure
         (byte-compat-threatening) dead weight. *)
      let degrade =
        if Sp_util.Faults.enabled faults then
          Some Snowplow.Funnel.default_degrade
        else None
      in
      let funnel =
        Snowplow.Funnel.create_multi ?degrade ~faults ~events
          ~tenant_shards:(Array.of_list (List.map (fun s -> s.tn_jobs) specs))
          inference
      in
      Some (inference, funnel, samples_per_s)
    end
  in
  (* Latest barrier virtual time across snowplow tenants: what the
     telemetry extra-metrics closure passes to [Funnel.lane_stats] (the
     breaker's half-open decision is clocked). Written only inside
     barrier hooks and read only between slices — both on the
     scheduling domain. *)
  let last_barrier_now = ref 0.0 in
  let tenants =
    List.mapi
      (fun i s ->
        let cfg =
          {
            Campaign.default_config with
            seed_corpus =
              Sp_syzlang.Gen.corpus
                (Sp_util.Rng.create (s.tn_seed lxor 0x5eed))
                db ~size:s.tn_corpus;
            seed = s.tn_seed;
            duration = s.tn_hours *. 3600.0;
            snapshot_every = Float.max 600.0 (s.tn_hours *. 3600.0 /. 12.0);
            attempt_repro = true;
          }
        in
        let vm_for sh = Sp_fuzz.Vm.create ~seed:(s.tn_seed + (7919 * sh)) k in
        let snapshot_dir =
          Option.map (fun root -> Filename.concat root s.tn_name) snapshot_root
        in
        let restore =
          match (resume, snapshot_dir) with
          | false, _ | _, None -> None
          | true, Some dir -> (
            (* [latest_valid] scans past a torn/corrupt newest snapshot
               (warning per skip) to the most recent one that parses —
               a kill mid-write never strands the tenant. *)
            match Sp_fuzz.Snapshot.latest_valid ~dir () with
            | None ->
              Printf.printf "tenant %-12s no snapshot in %s, starting fresh\n"
                s.tn_name dir;
              None
            | Some (_, file, snap) ->
              Printf.printf "tenant %-12s resuming from %s\n" s.tn_name file;
              Some snap)
        in
        let strategy_for, on_barrier, aux =
          match s.tn_system with
          | `Syzkaller ->
            ((fun _ -> Sp_fuzz.Strategy.syzkaller db), None, None)
          | `Snowplow ->
            let inference, funnel, _ = Option.get service in
            let predictions =
              Array.init s.tn_jobs (fun _ ->
                  Snowplow.Hybrid.make_predictions ())
            in
            ( (fun sh ->
                Snowplow.Hybrid.strategy_with
                  ~predictions:(predictions.(sh))
                  ~degraded:(fun () ->
                    Snowplow.Funnel.lane_degraded funnel ~tenant:i)
                  ~endpoint:(Snowplow.Funnel.endpoint_for funnel ~tenant:i ~shard:sh)
                  k),
              Some
                (fun ~now ->
                  last_barrier_now := Float.max !last_barrier_now now;
                  ignore (Snowplow.Funnel.flush_tenant funnel ~tenant:i ~now)),
              (* Shared-service state rides in every snowplow tenant's
                 snapshot; on a multi-tenant resume the last restored
                 tenant's view wins (best effort — solo resume is
                 exact). *)
              Some
                (Snowplow.Persist.aux
                   ~parse:(Sp_syzlang.Parser.program db)
                   ~inference ~funnel ~predictions) )
        in
        Sp_fuzz.Scheduler.tenant ~weight:s.tn_weight ?exec_budget:s.tn_budget
          ?on_barrier ?snapshot_dir ?restore ?aux ~name:s.tn_name
          ~jobs:s.tn_jobs ~vm_for ~strategy_for cfg)
      specs
  in
  (* Extra exposition series the scheduler cannot see: the shared
     inference service, the funnel lanes, and the (static) trainer
     throughput. Called on the scheduling domain between slices, so
     every read is barrier-stable. *)
  let extra_metrics () =
    let module E = Sp_obs.Exposition in
    match service with
    | None -> []
    | Some (inference, funnel, samples_per_s) ->
      let svc name help v =
        E.metric ~help E.Gauge ("snowplow_inference_" ^ name) v
      in
      let base =
        [ E.metric ~help:"PMM training throughput over the pretraining run"
            E.Gauge "snowplow_trainer_samples_per_second" samples_per_s;
          svc "pending" "requests queued in the shared service"
            (float_of_int (Snowplow.Inference.pending inference));
          E.metric ~help:"predictions served" E.Counter
            "snowplow_inference_served"
            (float_of_int (Snowplow.Inference.served inference));
          E.metric ~help:"prediction cache hits" E.Counter
            "snowplow_inference_cache_hits"
            (float_of_int (Snowplow.Inference.cache_hits inference));
          svc "cache_size" "cached predictions"
            (float_of_int (Snowplow.Inference.cache_size inference))
        ]
      in
      let lanes =
        List.concat
          (List.mapi
             (fun i s ->
               let labels = [ ("tenant", s.tn_name) ] in
               let gauge name help v =
                 E.metric ~help ~labels E.Gauge ("snowplow_funnel_" ^ name) v
               in
               let counter name help v =
                 E.metric ~help ~labels E.Counter ("snowplow_funnel_" ^ name) v
               in
               let common =
                 [ gauge "queue_depth"
                     "outbox + inbox + pending-retry requests parked in the \
                      lane"
                     (float_of_int
                        (Snowplow.Funnel.tenant_queue_depth funnel ~tenant:i));
                   counter "deferred" "requests accepted into the lane"
                     (float_of_int
                        (Snowplow.Funnel.tenant_deferred funnel ~tenant:i));
                   counter "dropped" "requests refused by the lane"
                     (float_of_int
                        (Snowplow.Funnel.tenant_dropped funnel ~tenant:i))
                 ]
               in
               match
                 Snowplow.Funnel.lane_stats funnel ~tenant:i
                   ~now:!last_barrier_now
               with
               | None -> common
               | Some ls ->
                 common
                 @ [ E.metric
                       ~help:
                         "breaker state (0 closed, 1 half-open, 2 open, -1 \
                          unknown)"
                       ~labels E.Gauge "snowplow_breaker_state"
                       (match ls.Snowplow.Funnel.ls_state with
                       | "closed" -> 0.0
                       | "half-open" -> 1.0
                       | "open" -> 2.0
                       | _ -> -1.0);
                     E.metric ~help:"breaker trips" ~labels E.Counter
                       "snowplow_breaker_trips"
                       (float_of_int ls.Snowplow.Funnel.ls_trips);
                     E.metric ~help:"lane errors (timeouts + failures)"
                       ~labels E.Counter "snowplow_breaker_errors"
                       (float_of_int ls.Snowplow.Funnel.ls_errors);
                     E.metric ~help:"requests shed while degraded" ~labels
                       E.Counter "snowplow_breaker_shed"
                       (float_of_int ls.Snowplow.Funnel.ls_shed)
                   ])
             specs)
      in
      base @ lanes
  in
  let exporter =
    match listen with
    | None -> None
    | Some port -> (
      let ex = Sp_obs.Exporter.create ~events () in
      match Sp_obs.Exporter.start ex ~port with
      | Error e ->
        Printf.eprintf "snowplow serve: --listen %d: %s\n" port e;
        exit 1
      | Ok actual ->
        Printf.printf "telemetry exporter listening on 127.0.0.1:%d\n%!" actual;
        (match listen_port_file with
        | Some f -> write_text_file f (string_of_int actual ^ "\n")
        | None -> ());
        Some ex)
  in
  let telemetry =
    Option.map (fun ex -> Sp_fuzz.Scheduler.telemetry ~extra:extra_metrics ex)
      exporter
  in
  Printf.printf "serving %d tenant%s on kernel %s...\n%!" (List.length specs)
    (if List.length specs = 1 then "" else "s")
    version;
  let result =
    Sp_fuzz.Scheduler.run ?workers ~trace ?timeseries ?max_slices ~faults
      ?max_tenant_retries ~events ?telemetry tenants
  in
  let finish_telemetry () =
    Option.iter Sp_obs.Exporter.stop exporter;
    Option.iter close_out events_chan
  in
  match result with
  | Error msg ->
    finish_telemetry ();
    Printf.eprintf "snowplow serve: %s\n" msg;
    exit 1
  | Ok r ->
    let module S = Sp_fuzz.Scheduler in
    Printf.printf "%d slices over %d workers\n\n" r.S.sr_slices r.S.sr_workers;
    Printf.printf "%-12s %6s %6s %10s %8s %7s  %s\n" "tenant" "weight"
      "slices" "execs" "crashes" "corpus" "status";
    List.iter
      (fun tr ->
        Printf.printf "%-12s %6.1f %6d %10d %8d %7d  %s\n" tr.S.tr_name
          tr.S.tr_weight tr.S.tr_slices tr.S.tr_executions
          (List.length tr.S.tr_report.Campaign.crashes)
          tr.S.tr_report.Campaign.corpus_size
          (if tr.S.tr_quarantined then
             Printf.sprintf "quarantined after %d failure%s"
               (List.length tr.S.tr_failures)
               (if List.length tr.S.tr_failures = 1 then "" else "s")
           else if tr.S.tr_completed then
             if tr.S.tr_retries > 0 then
               Printf.sprintf "completed (%d retr%s)" tr.S.tr_retries
                 (if tr.S.tr_retries = 1 then "y" else "ies")
             else "completed"
           else if tr.S.tr_budget_exhausted then "budget exhausted"
           else "cut by --max-slices"))
      r.S.sr_tenants;
    let failed =
      List.filter (fun tr -> tr.S.tr_failures <> []) r.S.sr_tenants
    in
    if failed <> [] then begin
      Printf.printf "\n%-12s %4s %8s %6s  %s\n" "tenant" "gen" "barrier"
        "slice" "failure";
      List.iter
        (fun tr ->
          List.iter
            (fun (fl : S.failure) ->
              let first_line =
                match String.index_opt fl.S.fl_exn '\n' with
                | None -> fl.S.fl_exn
                | Some i -> String.sub fl.S.fl_exn 0 i
              in
              Printf.printf "%-12s %4d %8d %6d  %s\n" tr.S.tr_name
                fl.S.fl_generation fl.S.fl_barrier fl.S.fl_slice first_line)
            tr.S.tr_failures)
        failed
    end;
    if Sp_util.Faults.enabled faults then
      Printf.printf "\n%d fault%s injected\n"
        (Sp_util.Faults.injected faults)
        (if Sp_util.Faults.injected faults = 1 then "" else "s");
    (match trace_file with
    | Some path ->
      Trace.write_file trace path;
      Printf.printf "trace written to %s\n" path
    | None -> ());
    (match (ts_file, timeseries) with
    | Some path, Some ts ->
      let data =
        if Filename.check_suffix path ".csv" then Timeseries.to_csv ts
        else Timeseries.to_jsonl ts
      in
      write_text_file path data;
      Printf.printf "timeseries written to %s (%d rows)\n" path
        (Timeseries.length ts)
    | _ -> ());
    (* Machine-readable run summary, written atomically — what the CI
       smoke asserts against instead of scraping stdout. Derived only
       from the report, so it is byte-identical for identical runs. *)
    (match summary_json with
    | None -> ()
    | Some path ->
      let module J = Sp_obs.Json in
      let tenant_json tr =
        J.Obj
          [ ("name", J.Str tr.S.tr_name);
            ("weight", J.Num tr.S.tr_weight);
            ("slices", J.Num (float_of_int tr.S.tr_slices));
            ("executions", J.Num (float_of_int tr.S.tr_executions));
            ( "crashes",
              J.Num
                (float_of_int (List.length tr.S.tr_report.Campaign.crashes)) );
            ( "corpus_size",
              J.Num (float_of_int tr.S.tr_report.Campaign.corpus_size) );
            ("completed", J.Bool tr.S.tr_completed);
            ("quarantined", J.Bool tr.S.tr_quarantined);
            ("budget_exhausted", J.Bool tr.S.tr_budget_exhausted);
            ("retries", J.Num (float_of_int tr.S.tr_retries));
            ("failures", J.Num (float_of_int (List.length tr.S.tr_failures)))
          ]
      in
      let doc =
        J.Obj
          [ ("slices", J.Num (float_of_int r.S.sr_slices));
            ("workers", J.Num (float_of_int r.S.sr_workers));
            ( "faults_injected",
              J.Num (float_of_int (Sp_util.Faults.injected faults)) );
            ("tenants", J.Arr (List.map tenant_json r.S.sr_tenants))
          ]
      in
      Sp_obs.Io.write_atomic path (J.to_string doc ^ "\n");
      Printf.printf "summary written to %s\n" path);
    finish_telemetry ();
    (* Partial failure is still service: the run only counts as failed
       when not a single tenant survived. *)
    if List.for_all (fun tr -> tr.S.tr_quarantined) r.S.sr_tenants then begin
      Printf.eprintf "snowplow serve: every tenant was quarantined\n";
      exit 1
    end

let serve_cmd =
  let tenants_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "tenants" ] ~docv:"FILE"
          ~doc:
            "JSON tenant roster: an array of objects with fields \
             $(b,name) (required), $(b,system) (syzkaller|snowplow), \
             $(b,jobs), $(b,hours), $(b,run_seed), $(b,weight), \
             $(b,exec_budget), $(b,corpus_size).")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Shared pool size (defaults to the largest tenant's jobs). \
             Each scheduler round admits tenants in stride order while \
             their summed jobs fit.")
  in
  let snapshot_root =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-root" ] ~docv:"DIR"
          ~doc:
            "Per-tenant snapshot directories $(docv)/NAME, written at each \
             tenant's merge barriers exactly as $(b,snowplow fuzz \
             --snapshot-dir) does.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume every tenant from its latest snapshot under \
             $(b,--snapshot-root) (tenants without one start fresh). Each \
             tenant's resumed report is bit-identical to its \
             uninterrupted scheduled run.")
  in
  let max_slices =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-slices" ] ~docv:"N"
          ~doc:
            "Stop after admitting $(docv) barrier slices (with \
             $(b,--snapshot-root), a clean kill point to $(b,--resume) \
             from).")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"FILE"
          ~doc:
            "Deterministic fault-injection plan (JSON: $(b,seed), \
             optional $(b,default_rate), $(b,rates), $(b,schedule)). \
             Arms the pool/campaign/inference injection sites and the \
             per-tenant inference breakers; the same plan replays the \
             same failures byte-for-byte. See DESIGN.md \
             \xc2\xa712.")
  in
  let max_tenant_retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-tenant-retries" ] ~docv:"N"
          ~doc:
            "Retry generations a failing tenant gets (exponential \
             backoff, resumed from its last good snapshot) before it is \
             quarantined (default 3).")
  in
  let listen =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Serve live telemetry over HTTP on 127.0.0.1:$(docv) (0 picks \
             an ephemeral port): $(b,/metrics) (Prometheus text \
             exposition), $(b,/health) and $(b,/tenants) (JSON), \
             $(b,/events?since=N). Endpoints read immutable snapshots \
             published at barriers, so arming the exporter cannot change \
             any report or snapshot byte.")
  in
  let listen_port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen-port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound exporter port to $(docv) — how scripts find \
             the port picked by $(b,--listen 0).")
  in
  let events_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Append the structured event log (slice/snapshot/failure/\
             breaker/fault events) to $(docv) as JSON lines.")
  in
  let summary_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-json" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable run summary (per-tenant slices, \
             executions, crashes, status flags) to $(docv), atomically.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Multiplex several campaigns over one shared worker pool (and, \
          for snowplow tenants, one shared warm inference service).")
    Term.(
      const serve $ seed_arg $ version_arg $ tenants_file $ workers
      $ snapshot_root $ resume $ trace_file_arg $ timeseries_file_arg
      $ max_slices $ fault_plan $ max_tenant_retries $ listen
      $ listen_port_file $ events_file $ summary_json)

(* ------------------------------------------------------------------ *)
(* train                                                               *)
(* ------------------------------------------------------------------ *)

let train jobs trace_file =
  let trace =
    if trace_file = None then Trace.disabled else Trace.create ~enabled:true ()
  in
  let main_tracer = Trace.tracer trace ~pid:0 ~name:"train-main" in
  (* One tracer per stripe (pids 2001+s): a stripe is executed by exactly
     one pool task per batch, so each tracer stays single-writer no
     matter which domain steals the task. *)
  let tracer_for s =
    Trace.tracer trace ~pid:(2001 + s) ~name:(Printf.sprintf "train-stripe-%d" s)
  in
  let config =
    (* SNOWPLOW_QUICK shrinks the pipeline to integration-test scale, the
       same dial `serve` uses — the CI smoke trains in seconds and still
       exercises the full striped path. *)
    let base =
      if Sys.getenv_opt "SNOWPLOW_QUICK" = None then
        Snowplow.Pipeline.default_config
      else
        {
          Snowplow.Pipeline.default_config with
          kernel_seed = 19;
          gen_bases = 40;
          corpus_bases = 40;
          warmup_duration = 900.0;
          dataset =
            { Snowplow.Dataset.default_config with mutations_per_base = 200 };
          encoder = { Snowplow.Encoder.default_config with steps = 600 };
          trainer =
            { Snowplow.Trainer.default_config with epochs = 4; log_every = 0 };
        }
    in
    { base with trainer = { base.trainer with jobs } }
  in
  let p = Snowplow.Pipeline.train ~config ~tracer:main_tracer ~tracer_for () in
  let pmm = Snowplow.Pipeline.eval_scores p in
  let rand = Snowplow.Pipeline.rand_baseline p ~k:8 in
  Format.printf "PMModel: %a@." Sp_ml.Metrics.pp pmm;
  Format.printf "Rand.8 : %a@." Sp_ml.Metrics.pp rand;
  Printf.printf "threshold %.2f, %d parameters\n"
    (Snowplow.Pmm.threshold p.Snowplow.Pipeline.model)
    (Snowplow.Pmm.num_parameters p.Snowplow.Pipeline.model);
  match trace_file with
  | Some path ->
    Trace.write_file trace path;
    Printf.printf "trace written to %s\n" path
  | None -> ()

let train_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Training stripe parallelism: each mini-batch is sharded into \
             $(docv) contiguous stripes evaluated on a domain pool, with a \
             deterministic stripe-order gradient reduction. $(docv)=1 is \
             the sequential path (byte-identical to earlier releases).")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train PMM and report Table-1 selector metrics.")
    Term.(const train $ jobs $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* directed                                                            *)
(* ------------------------------------------------------------------ *)

let directed seed version hours run_seed bug_id =
  let k = make_kernel seed version in
  let bug = Kernel.bug k bug_id in
  let target =
    let rec go i =
      if i >= Kernel.num_blocks k then failwith "bug has no crash block"
      else
        match (Kernel.block k i).Sp_kernel.Ir.term with
        | Sp_kernel.Ir.Crash id when id = bug_id -> i
        | _ -> go (i + 1)
    in
    go 0
  in
  Format.printf "target: crash site of %a@." Sp_kernel.Bug.pp bug;
  print_endline "training PMM first (this takes a few minutes)...";
  let p = Snowplow.Pipeline.train () in
  let inference = Snowplow.Pipeline.inference_for p k in
  let db = Kernel.spec_db k in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create (run_seed lxor 0xd1c)) db ~size:60 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = run_seed;
      duration = hours *. 3600.0;
      snapshot_every = 600.0;
      target = Some target;
    }
  in
  let run name strategy =
    let vm = Sp_fuzz.Vm.create ~fleet_scale:192.0 ~seed:run_seed k in
    let r = Campaign.run vm strategy cfg in
    match r.Campaign.target_hit_at with
    | Some t -> Printf.printf "%-12s reached the target in %.0f virtual seconds\n" name t
    | None -> Printf.printf "%-12s did not reach the target\n" name
  in
  let target_sys =
    let sys = (Kernel.block k target).Sp_kernel.Ir.sys_id in
    if sys >= 0 then Some sys else None
  in
  run "SyzDirect" (Sp_fuzz.Strategy.syzdirect ~target_sys db);
  run "Snowplow-D" (Snowplow.Directed.strategy ~inference ~target k)

let directed_cmd =
  let bug_id =
    Arg.(value & opt int 10 & info [ "bug" ] ~docv:"ID" ~doc:"Bug id whose crash site to reach.")
  in
  Cmd.v
    (Cmd.info "directed" ~doc:"Directed fuzzing towards a bug's crash site.")
    Term.(const directed $ seed_arg $ version_arg $ hours_arg $ campaign_seed_arg $ bug_id)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let read_text_file path = Sp_obs.Io.read_file path

let show_trace path ~top ~strict ~expect_spans problem =
  match Sp_obs.Json.of_string (read_text_file path) with
  | Error e -> problem (Printf.sprintf "trace %s: JSON parse error: %s" path e)
  | Ok json -> (
    match Trace_check.validate json with
    | Error e -> problem (Printf.sprintf "trace %s: %s" path e)
    | Ok s ->
      Printf.printf "trace %s: %d events, %d process lanes, %d instants\n" path
        s.Trace_check.events
        (List.length s.Trace_check.pids)
        (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Trace_check.instants);
      (* Ring-evicted events: the tracer's bounded buffers silently drop
         the oldest events past capacity, so a truncated lane means the
         span tables below under-count. Loud in --check, fatal in
         --strict. *)
      if s.Trace_check.dropped <> [] then begin
        List.iter
          (fun (pid, n) ->
            Printf.printf
              "  WARN pid %d: %d event(s) dropped from its bounded ring \
               (tables under-count)\n"
              pid n)
          s.Trace_check.dropped;
        if strict then
          problem
            (Printf.sprintf "trace %s: %d event(s) dropped from bounded rings"
               path
               (Trace_check.total_dropped s))
      end;
      if s.Trace_check.span_stats <> [] then begin
        Printf.printf "\n  %-24s %8s %12s %12s\n" "hottest spans" "count"
          "total ms" "max ms";
        List.iteri
          (fun i (st : Trace_check.span_stat) ->
            if i < top then
              Printf.printf "  %-24s %8d %12.3f %12.3f\n" st.Trace_check.span
                st.Trace_check.spans
                (st.Trace_check.total_us /. 1000.0)
                (st.Trace_check.max_us /. 1000.0))
          s.Trace_check.span_stats
      end;
      if s.Trace_check.counter_stats <> [] then begin
        Printf.printf "\n  %-24s %8s %12s\n" "counters" "samples" "last";
        List.iteri
          (fun i (c : Trace_check.counter_stat) ->
            if i < top then
              Printf.printf "  %-24s %8d %12g\n" c.Trace_check.counter
                c.Trace_check.samples c.Trace_check.last)
          s.Trace_check.counter_stats
      end;
      List.iter
        (fun name ->
          if not (Trace_check.has_span s name) then
            problem (Printf.sprintf "trace %s: expected span %S missing" path name))
        expect_spans)

let show_timeseries path ~plot ~ascii ~csv_out ~expect_series problem =
  match Timeseries.of_jsonl (read_text_file path) with
  | Error e -> problem (Printf.sprintf "timeseries %s: %s" path e)
  | Ok ts ->
    let columns = Timeseries.columns ts in
    Printf.printf "\ntimeseries %s: %d rows\n" path (Timeseries.length ts);
    List.iter
      (fun col ->
        let values =
          Array.of_list (List.map snd (Timeseries.column ts col))
        in
        Printf.printf "  %-22s %-24s last %g\n" col
          (Sp_util.Ascii_plot.sparkline ~max_width:24 ~ascii values)
          (Option.value ~default:Float.nan (Timeseries.last ts col)))
      columns;
    (* Full curves for the headline columns only — one coverage, one
       throughput — so the default output stays one screen tall. *)
    List.iter
      (fun col ->
        if List.mem col columns then
          match Timeseries.column ts col with
          | [] | [ _ ] -> ()
          | points ->
            let points = List.map (fun (t, v) -> (t /. 3600.0, v)) points in
            print_newline ();
            print_string
              (Sp_util.Ascii_plot.render ~height:10 ~x_label:"uptime (h)"
                 ~y_label:col ~title:col
                 [ Sp_util.Ascii_plot.series ~label:col ~glyph:'*' points ]))
      (if plot then [ "edges"; "execs_per_s" ] else []);
    (match csv_out with
    | Some out ->
      write_text_file out (Timeseries.to_csv ts);
      Printf.printf "\ncsv written to %s\n" out
    | None -> ());
    List.iter
      (fun name ->
        if not (List.mem name columns) then
          problem
            (Printf.sprintf "timeseries %s: expected series %S missing" path name))
      expect_series

let stats trace_file ts_file top plot ascii check strict expect_spans
    expect_series csv_out =
  if trace_file = None && ts_file = None then begin
    prerr_endline "snowplow stats: provide --trace FILE and/or --timeseries FILE";
    exit 2
  end;
  let check = check || strict in
  let problems = ref [] in
  let problem msg = problems := msg :: !problems in
  (match trace_file with
  | Some path -> show_trace path ~top ~strict ~expect_spans problem
  | None ->
    if expect_spans <> [] then
      problem "--expect-span requires --trace FILE");
  (match ts_file with
  | Some path -> show_timeseries path ~plot ~ascii ~csv_out ~expect_series problem
  | None ->
    if expect_series <> [] then
      problem "--expect-series requires --timeseries FILE");
  match List.rev !problems with
  | [] -> if check then print_endline "stats check: OK"
  | problems ->
    List.iter (fun p -> Printf.eprintf "FAIL %s\n" p) problems;
    exit 1

let stats_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Chrome trace written by $(b,snowplow fuzz --trace).")
  in
  let ts_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeseries" ] ~docv:"FILE"
          ~doc:"JSONL time-series written by $(b,snowplow fuzz --timeseries).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows shown in the span/counter tables.")
  in
  let plot =
    Arg.(
      value & flag
      & info [ "plot" ]
          ~doc:"Render full coverage/throughput curves, not just sparklines.")
  in
  let ascii =
    Arg.(
      value & flag
      & info [ "ascii" ] ~doc:"Pure-ASCII sparklines (no Unicode blocks).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validation mode for CI: print $(b,stats check: OK) when every \
             artifact parses, every trace lane is balanced and monotone, \
             and every --expect-span/--expect-series is present. Any \
             problem exits 1.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Like $(b,--check), but also fail when any trace lane dropped \
             events from its bounded ring (a truncated trace: the span \
             tables under-count).")
  in
  let expect_spans =
    Arg.(
      value & opt_all string []
      & info [ "expect-span" ] ~docv:"NAME"
          ~doc:"Fail unless the trace contains a span named $(docv).")
  in
  let expect_series =
    Arg.(
      value & opt_all string []
      & info [ "expect-series" ] ~docv:"NAME"
          ~doc:"Fail unless the time-series has a column named $(docv).")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Also convert the time-series to CSV at $(docv).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Inspect campaign telemetry: traces and time-series.")
    Term.(
      const stats $ trace_file $ ts_file $ top $ plot $ ascii $ check $ strict
      $ expect_spans $ expect_series $ csv_out)

(* ------------------------------------------------------------------ *)
(* top — live view of a `serve --listen` telemetry plane               *)
(* ------------------------------------------------------------------ *)

let parse_connect s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "--connect %S: expected HOST:PORT" s)
  | Some i -> (
    let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p when p > 0 && p < 65536 -> Ok (host, p)
    | Some _ | None ->
      Error (Printf.sprintf "--connect %S: bad port" s))

let top_get ~host ~port path =
  match Sp_obs.Http.get ~host ~port path with
  | Ok (200, _, body) -> Ok body
  | Ok (code, _, _) -> Error (Printf.sprintf "GET %s: HTTP %d" path code)
  | Error e -> Error (Printf.sprintf "GET %s: %s" path e)

(* Wait for the exporter to come up: `serve` trains the PMM before it
   binds, so a monitor started alongside it needs patience. *)
let top_wait ~host ~port ~retry_for =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    match top_get ~host ~port "/health" with
    | Ok _ -> Ok ()
    | Error e ->
      if Unix.gettimeofday () >= deadline then Error e
      else begin
        Unix.sleepf 0.25;
        go ()
      end
  in
  go ()

type top_sample = {
  tp_health : Sp_obs.Json.t;
  tp_tenants : Sp_obs.Json.t;
  tp_metrics : string;
}

let top_fetch ~host ~port =
  let ( let* ) = Result.bind in
  let* health = top_get ~host ~port "/health" in
  let* tenants = top_get ~host ~port "/tenants" in
  let* metrics = top_get ~host ~port "/metrics" in
  let* tp_health =
    Result.map_error (Printf.sprintf "/health: JSON parse error: %s")
      (Sp_obs.Json.of_string health)
  in
  let* tp_tenants =
    Result.map_error (Printf.sprintf "/tenants: JSON parse error: %s")
      (Sp_obs.Json.of_string tenants)
  in
  Ok { tp_health; tp_tenants; tp_metrics = metrics }

(* Structural check of one scrape: the exposition parses and carries the
   series the dashboard depends on; /health and /tenants have the
   documented shape. *)
let top_check sample =
  let module J = Sp_obs.Json in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match Sp_obs.Exposition.validate sample.tp_metrics with
  | Error e -> problem "/metrics: invalid exposition: %s" e
  | Ok x ->
    if x.Sp_obs.Exposition.x_samples = 0 then problem "/metrics: no samples";
    List.iter
      (fun name ->
        if not (List.mem name x.Sp_obs.Exposition.x_names) then
          problem "/metrics: expected family %s missing" name)
      [ "snowplow_scheduler_slices"; "snowplow_tenant_state";
        "snowplow_tenant_executions" ]);
  (match sample.tp_health with
  | J.Obj _ ->
    if Option.bind (J.member "status" sample.tp_health) J.str_opt = None then
      problem "/health: missing status"
  | _ -> problem "/health: expected an object");
  (match sample.tp_tenants with
  | J.Arr (_ :: _) -> ()
  | J.Arr [] -> problem "/tenants: empty roster"
  | _ -> problem "/tenants: expected an array");
  List.rev !problems

let top_tenant_rows tenants =
  let module J = Sp_obs.Json in
  match tenants with
  | J.Arr items ->
    List.filter_map
      (fun tj ->
        let str name = Option.bind (J.member name tj) J.str_opt in
        let num name = Option.bind (J.member name tj) J.num_opt in
        match (str "name", str "state") with
        | Some name, Some state ->
          Some
            ( name,
              state,
              Option.value ~default:1.0 (num "weight"),
              int_of_float (Option.value ~default:0.0 (num "slices")),
              int_of_float (Option.value ~default:0.0 (num "executions")),
              Option.map int_of_float (num "budget_remaining"),
              int_of_float (Option.value ~default:0.0 (num "retries")) )
        | _ -> None)
      items
  | _ -> []

let top_render ~target ~ascii ~history sample =
  let module J = Sp_obs.Json in
  let h name = Option.bind (J.member name sample.tp_health) J.num_opt in
  let status =
    Option.value ~default:"?"
      (Option.bind (J.member "status" sample.tp_health) J.str_opt)
  in
  let running =
    match J.member "running" sample.tp_health with
    | Some (J.Bool b) -> b
    | _ -> false
  in
  Printf.printf "snowplow top — %s — status %s%s, %d slices, %d workers\n\n"
    target status
    (if running then "" else " (finished)")
    (int_of_float (Option.value ~default:0.0 (h "slices")))
    (int_of_float (Option.value ~default:0.0 (h "workers")));
  Printf.printf "%-12s %-11s %6s %6s %10s %10s %7s  %s\n" "tenant" "state"
    "weight" "slices" "execs" "budget" "retries" "execs trend";
  List.iter
    (fun (name, state, weight, slices, execs, budget, retries) ->
      let hist =
        match Hashtbl.find_opt history name with
        | Some l -> l
        | None -> []
      in
      let hist = float_of_int execs :: hist in
      let hist = if List.length hist > 32 then List.filteri (fun i _ -> i < 32) hist else hist in
      Hashtbl.replace history name hist;
      (* Spark the per-interval deltas, not the monotone totals — flat
         means stalled, tall means busy. *)
      let deltas =
        match List.rev hist with
        | [] | [ _ ] -> [| 0.0 |]
        | oldest :: rest ->
          let _, ds =
            List.fold_left
              (fun (prev, acc) v -> (v, (v -. prev) :: acc))
              (oldest, []) rest
          in
          Array.of_list (List.rev ds)
      in
      Printf.printf "%-12s %-11s %6.1f %6d %10d %10s %7d  %s\n" name state
        weight slices execs
        (match budget with None -> "-" | Some b -> string_of_int b)
        retries
        (Sp_util.Ascii_plot.sparkline ~max_width:24 ~ascii deltas))
    (top_tenant_rows sample.tp_tenants);
  running

let top connect interval once json check ascii retry_for =
  match parse_connect connect with
  | Error e ->
    prerr_endline ("snowplow top: " ^ e);
    exit 2
  | Ok (host, port) -> (
    let target = Printf.sprintf "%s:%d" host port in
    (match top_wait ~host ~port ~retry_for with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "snowplow top: cannot reach %s: %s\n" target e;
      exit 2);
    let fetch () =
      match top_fetch ~host ~port with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "snowplow top: %s: %s\n" target e;
        exit 2
    in
    let run_checks sample =
      match top_check sample with
      | [] -> true
      | problems ->
        List.iter (fun p -> Printf.eprintf "FAIL %s\n" p) problems;
        false
    in
    if once then begin
      (* Under --check, --retry-for also covers the window between the
         exporter binding its port and the scheduler's first barrier
         publication — keep sampling until a scrape passes or the
         deadline expires (the last failing scrape's problems are what
         gets reported). *)
      let deadline = Unix.gettimeofday () +. retry_for in
      let rec sample_until_ok () =
        let sample = fetch () in
        if not check then (sample, true)
        else if top_check sample = [] then (sample, true)
        else if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.25;
          sample_until_ok ()
        end
        else (sample, run_checks sample)
      in
      let sample, ok = sample_until_ok () in
      if json then
        print_endline
          (Sp_obs.Json.to_string
             (Sp_obs.Json.Obj
                [ ("health", sample.tp_health);
                  ("tenants", sample.tp_tenants);
                  ("metrics", Sp_obs.Json.Str sample.tp_metrics)
                ]))
      else begin
        let history = Hashtbl.create 8 in
        ignore (top_render ~target ~ascii ~history sample)
      end;
      if check && ok then prerr_endline "top check: OK";
      if not ok then exit 1
    end
    else begin
      let history = Hashtbl.create 8 in
      let rec loop () =
        let sample = fetch () in
        (* ANSI home+clear: redraw in place like top(1). *)
        print_string "\027[H\027[2J";
        let running = top_render ~target ~ascii ~history sample in
        print_string "\nctrl-c to quit\n";
        flush stdout;
        if running then begin
          Unix.sleepf interval;
          loop ()
        end
      in
      loop ()
    end)

let top_cmd =
  let connect =
    Arg.(
      value
      & opt string "127.0.0.1:9090"
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Exporter address, as bound by $(b,snowplow serve --listen) \
             (see $(b,--listen-port-file) for ephemeral ports).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period of the live view.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Render a single sample and exit (no refresh).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With $(b,--once): print the raw /health and /tenants \
             documents (plus the /metrics exposition text as a string) \
             as one JSON object instead of the table.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "With $(b,--once): validate the scrape — /metrics is \
             well-formed Prometheus exposition carrying the scheduler \
             and per-tenant families, /health and /tenants have the \
             documented shapes. Any problem exits 1.")
  in
  let ascii =
    Arg.(
      value & flag
      & info [ "ascii" ] ~doc:"Pure-ASCII sparklines (no Unicode blocks).")
  in
  let retry_for =
    Arg.(
      value & opt float 0.0
      & info [ "retry-for" ] ~docv:"SECONDS"
          ~doc:
            "Keep retrying the first connection for up to $(docv) — \
             covers the PMM-training window before $(b,serve) binds its \
             port. With $(b,--check), also keep sampling until a scrape \
             passes validation (the scheduler's first barrier \
             publication) or the deadline expires.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-tenant view of a running $(b,snowplow serve --listen) \
          telemetry plane.")
    Term.(
      const top $ connect $ interval $ once $ json $ check $ ascii $ retry_for)

(* ------------------------------------------------------------------ *)
(* bench-diff — compare a fresh bench run against committed baselines  *)
(* ------------------------------------------------------------------ *)

(* The committed BENCH_E*.json files carry full-workload numbers; a CI
   quick-mode rerun produces junk absolute values on a shared runner.
   So the comparison is structural plus banded: key sets must match,
   every value must be finite and sane for its unit, the *committed*
   baselines must clear absolute floors (the real perf-rot gate — a
   regression lands as a diff to the committed file), and the fresh
   run's scale-free ratio metrics must clear the reduced quick-mode
   bars. *)
let bench_baseline_floors =
  [ ("E8", "inference_saturation_qps", 40.0);
    ("E11", "speedup_vs_reference", 3.0);
    ("E12", "throughput_ratio", 1.5);
    ("E13", "speedup_vs_reference", 3.0)
  ]

(* Kept in sync with the experiments' own quick-mode sanity bars: the
   speedup pairs are short loops whose ratio a loaded 1-core CI host can
   skew (e13's dense path was observed at 1.48x under a full concurrent
   @ci build vs 3.5x uncontended), so only a wide sanity margin is
   asserted on the fresh side. *)
let bench_fresh_bars =
  [ ("E11", "speedup_vs_reference", 1.1);
    ("E12", "throughput_ratio", 1.2);
    ("E13", "speedup_vs_reference", 1.1)
  ]

(* Unit sanity: time/rate/count metrics must be positive. Ratio metrics
   (speedups included — a 1-core host can make them < 1) only need to
   be positive too, so the one rule covers everything measured. *)
let bench_positive_key key =
  let has sub =
    let lk = String.lowercase_ascii key and n = String.length sub in
    let rec go i =
      i + n <= String.length lk
      && (String.sub lk i n = sub || go (i + 1))
    in
    go 0
  in
  has "_s" || has "per_s" || has "qps" || has "execs" || has "ratio"
  || has "speedup"

let bench_read_fields path =
  let module J = Sp_obs.Json in
  match J.of_string (Sp_obs.Io.read_file path) with
  | exception Sys_error e -> Error e
  | Error e -> Error (Printf.sprintf "JSON parse error: %s" e)
  | Ok (J.Obj fields) ->
    Ok
      (List.filter_map
         (fun (k, v) ->
           match v with
           | J.Num n -> Some (k, n)
           | _ -> None)
         fields)
  | Ok _ -> Error "expected a JSON object"

let bench_diff fresh_dir baseline_dir experiments =
  let experiments =
    if experiments <> [] then experiments
    else
      (* Default roster: every committed trajectory that has a fresh
         counterpart to compare against. *)
      Sys.readdir baseline_dir |> Array.to_list
      |> List.filter_map (fun name ->
             match Scanf.sscanf_opt name "BENCH_%s@.json%!" (fun e -> e) with
             | Some e
               when Sys.file_exists
                      (Filename.concat fresh_dir ("BENCH_" ^ e ^ ".json")) ->
               Some e
             | Some _ | None -> None)
      |> List.sort compare
  in
  if experiments = [] then begin
    Printf.eprintf
      "snowplow bench-diff: no comparable BENCH_*.json pairs under %s and %s\n"
      baseline_dir fresh_dir;
    exit 2
  end;
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let metrics_checked = ref 0 in
  List.iter
    (fun e ->
      let file dir = Filename.concat dir ("BENCH_" ^ e ^ ".json") in
      match (bench_read_fields (file baseline_dir), bench_read_fields (file fresh_dir)) with
      | Error err, _ -> problem "%s: baseline %s: %s" e (file baseline_dir) err
      | _, Error err -> problem "%s: fresh %s: %s" e (file fresh_dir) err
      | Ok base, Ok fresh ->
        let keys l = List.sort compare (List.map fst l) in
        if keys base <> keys fresh then
          problem "%s: metric key sets differ (baseline: %s; fresh: %s)" e
            (String.concat "," (keys base))
            (String.concat "," (keys fresh));
        List.iter
          (fun (side, fields) ->
            List.iter
              (fun (k, v) ->
                incr metrics_checked;
                if not (Float.is_finite v) then
                  problem "%s: %s %s is not finite (%g)" e side k v
                else if bench_positive_key k && v <= 0.0 then
                  problem "%s: %s %s must be positive, got %g" e side k v)
              fields)
          [ ("baseline", base); ("fresh", fresh) ];
        List.iter
          (fun (exp, key, floor) ->
            if exp = e then
              match List.assoc_opt key base with
              | None -> problem "%s: baseline is missing %s" e key
              | Some v ->
                if v < floor then
                  problem
                    "%s: committed baseline %s = %g is below the %g floor \
                     (perf rot in the committed trajectory)"
                    e key v floor)
          bench_baseline_floors;
        List.iter
          (fun (exp, key, bar) ->
            if exp = e then
              match List.assoc_opt key fresh with
              | None -> problem "%s: fresh run is missing %s" e key
              | Some v ->
                if v < bar then
                  problem "%s: fresh %s = %g is below the %g quick-mode bar"
                    e key v bar)
          bench_fresh_bars;
        Printf.printf "%-4s %d metric(s) compared\n" e (List.length base))
    experiments;
  match List.rev !problems with
  | [] ->
    Printf.printf "bench-diff: OK (%d experiment(s), %d metric value(s))\n"
      (List.length experiments) !metrics_checked
  | problems ->
    List.iter (fun p -> Printf.eprintf "FAIL %s\n" p) problems;
    exit 1

let bench_diff_cmd =
  let fresh =
    Arg.(
      required
      & opt (some dir) None
      & info [ "fresh" ] ~docv:"DIR"
          ~doc:
            "Directory holding a fresh run's BENCH_*.json files (write \
             one with $(b,SNOWPLOW_BENCH_OUT=DIR bench/main.exe ...)).")
  in
  let baseline =
    Arg.(
      value & opt dir "."
      & info [ "baseline" ] ~docv:"DIR"
          ~doc:
            "Directory holding the committed baseline BENCH_*.json files \
             (default: the current directory).")
  in
  let experiments =
    Arg.(
      value & opt_all string []
      & info [ "experiment" ] ~docv:"NAME"
          ~doc:
            "Experiment to compare (e.g. $(b,E11)); repeatable. Default: \
             every baseline with a fresh counterpart.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare a fresh benchmark run against the committed BENCH_*.json \
          trajectories: key sets, unit sanity, absolute floors on the \
          baselines and quick-mode bars on the fresh ratios.")
    Term.(const bench_diff $ fresh $ baseline $ experiments)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "snowplow" ~version:"1.0"
      ~doc:"Snowplow (ASPLOS'25) reproduction: learned white-box kernel test mutation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ kernel_info_cmd; gen_cmd; run_cmd; fuzz_cmd; serve_cmd;
            train_cmd; directed_cmd; stats_cmd; top_cmd; bench_diff_cmd ]))
