(* Command-line interface to the Snowplow reproduction.

   snowplow kernel-info  — describe a generated kernel
   snowplow gen          — generate and print random test programs
   snowplow run          — execute a test program from a file or stdin
   snowplow fuzz         — run a coverage campaign (syzkaller or snowplow)
   snowplow train        — train PMM and print Table-1 metrics
   snowplow directed     — directed fuzzing towards a bug's crash site *)

open Cmdliner

module Kernel = Sp_kernel.Kernel
module Campaign = Sp_fuzz.Campaign
module Prog = Sp_syzlang.Prog

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Kernel generation seed.")

let version_arg =
  Arg.(
    value
    & opt (enum [ ("6.8", "6.8"); ("6.9", "6.9"); ("6.10", "6.10") ]) "6.8"
    & info [ "kernel" ] ~docv:"VERSION" ~doc:"Kernel version (6.8, 6.9 or 6.10).")

let hours_arg =
  Arg.(
    value & opt float 2.0
    & info [ "hours" ] ~docv:"H" ~doc:"Virtual campaign duration in hours.")

let campaign_seed_arg =
  Arg.(value & opt int 11 & info [ "run-seed" ] ~docv:"SEED" ~doc:"Campaign RNG seed.")

let make_kernel seed version = Kernel.linux_like ~seed ~version

(* ------------------------------------------------------------------ *)
(* kernel-info                                                         *)
(* ------------------------------------------------------------------ *)

let kernel_info seed version =
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  Printf.printf "kernel %s (seed %d)\n" (Kernel.version k) seed;
  Printf.printf "  basic blocks : %d\n" (Kernel.num_blocks k);
  Printf.printf "  static edges : %d\n" (Sp_cfg.Cfg.num_edges (Kernel.cfg k));
  Printf.printf "  syscalls     : %d\n" (Sp_syzlang.Spec.count db);
  Printf.printf "  bugs         : %d (%d known / %d new)\n"
    (Array.length (Kernel.bugs k))
    (List.length (List.filter (fun (b : Sp_kernel.Bug.t) -> b.known)
                    (Array.to_list (Kernel.bugs k))))
    (List.length (List.filter (fun (b : Sp_kernel.Bug.t) -> not b.known)
                    (Array.to_list (Kernel.bugs k))));
  print_endline "  interface:";
  List.iter
    (fun spec -> Format.printf "    %a@." Sp_syzlang.Spec.pp spec)
    (Sp_syzlang.Spec.all db)

let kernel_info_cmd =
  Cmd.v
    (Cmd.info "kernel-info" ~doc:"Describe a generated synthetic kernel.")
    Term.(const kernel_info $ seed_arg $ version_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen seed version count =
  let k = make_kernel seed version in
  let rng = Sp_util.Rng.create (seed lxor 0x9e9) in
  List.iter
    (fun prog ->
      print_string (Prog.to_string prog);
      print_newline ())
    (Sp_syzlang.Gen.corpus rng (Kernel.spec_db k) ~size:count)

let gen_cmd =
  let count =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of programs.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate random well-formed test programs.")
    Term.(const gen $ seed_arg $ version_arg $ count)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_prog seed version file =
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  let text =
    match file with
    | Some path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    | None -> In_channel.input_all stdin
  in
  match Sp_syzlang.Parser.program db text with
  | Error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | Ok prog ->
    let r = Kernel.execute k prog in
    Printf.printf "covered %d blocks, %d edges\n"
      (Sp_util.Bitset.cardinal r.Kernel.covered)
      (Sp_util.Bitset.cardinal r.Kernel.covered_edges);
    (match r.Kernel.crash with
    | Some c ->
      Printf.printf "CRASH at call %d: %s\n" c.Kernel.crash_call
        (Sp_kernel.Bug.description c.Kernel.bug)
    | None -> print_endline "no crash")

let run_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Program file (defaults to stdin).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a test program against the kernel.")
    Term.(const run_prog $ seed_arg $ version_arg $ file)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz seed version hours run_seed system jobs =
  if jobs < 1 then begin
    prerr_endline "snowplow fuzz: -jobs must be >= 1";
    exit 1
  end;
  let k = make_kernel seed version in
  let db = Kernel.spec_db k in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create (run_seed lxor 0x5eed)) db ~size:100 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = run_seed;
      duration = hours *. 3600.0;
      snapshot_every = Float.max 600.0 (hours *. 3600.0 /. 12.0);
      attempt_repro = true;
    }
  in
  (* Per-shard VM seeds are a pure function of (run_seed, shard), so a
     parallel run is reproducible from (seed, jobs) alone. *)
  let vm_for s = Sp_fuzz.Vm.create ~seed:(run_seed + (7919 * s)) k in
  let name, run_campaign =
    match system with
    | `Syzkaller ->
      ( "Syzkaller",
        fun () ->
          Campaign.run_parallel ~jobs ~vm_for
            ~strategy_for:(fun _ -> Sp_fuzz.Strategy.syzkaller db)
            cfg )
    | `Snowplow ->
      ( "Snowplow",
        fun () ->
          print_endline "training PMM first (this takes a few minutes)...";
          let p = Snowplow.Pipeline.train () in
          let inference = Snowplow.Pipeline.inference_for p k in
          if jobs = 1 then
            Campaign.run (vm_for 0) (Snowplow.Hybrid.strategy ~inference k) cfg
          else begin
            (* One inference service for the whole fleet: shards enqueue
               into per-shard outboxes and the funnel forwards them as one
               batch at each snapshot barrier. *)
            let funnel = Snowplow.Funnel.create ~shards:jobs inference in
            Campaign.run_parallel ~jobs ~vm_for
              ~strategy_for:(fun s ->
                Snowplow.Hybrid.strategy_with
                  ~endpoint:(Snowplow.Funnel.endpoint funnel ~shard:s)
                  k)
              ~on_barrier:(fun ~now -> ignore (Snowplow.Funnel.flush funnel ~now))
              cfg
          end )
  in
  Printf.printf "fuzzing %s for %.1f virtual hours with %s (%d job%s)...\n%!"
    version hours name jobs
    (if jobs = 1 then "" else "s");
  let r = run_campaign () in
  Printf.printf "%-8s %10s %10s %8s\n" "uptime" "blocks" "edges" "crashes";
  List.iter
    (fun (s : Campaign.snapshot) ->
      Printf.printf "%6.1f h %10d %10d %8d\n" (s.Campaign.s_time /. 3600.0)
        s.Campaign.s_blocks s.Campaign.s_edges s.Campaign.s_crashes)
    r.Campaign.series;
  Printf.printf "\nexecutions %d, corpus %d, crashes %d (%d new)\n"
    r.Campaign.executions r.Campaign.corpus_size
    (List.length r.Campaign.crashes)
    (List.length r.Campaign.new_crashes);
  List.iter
    (fun (f : Sp_fuzz.Triage.found) ->
      Printf.printf "  [%s] %s%s\n"
        (if Sp_fuzz.Triage.is_known
              (Sp_fuzz.Triage.create k) f.Sp_fuzz.Triage.description
         then "known" else " new ")
        f.Sp_fuzz.Triage.description
        (match f.Sp_fuzz.Triage.reproducer with
        | Some _ -> " (reproducer available)"
        | None -> ""))
    r.Campaign.crashes

let system_arg =
  Arg.(
    value
    & opt (enum [ ("syzkaller", `Syzkaller); ("snowplow", `Snowplow) ]) `Syzkaller
    & info [ "system" ] ~docv:"SYS" ~doc:"Fuzzer to run: syzkaller or snowplow.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker shards (OCaml domains). With N > 1 the campaign runs on \
           the parallel executor: N VMs fuzz independently between \
           snapshot barriers and merge deterministically, so results are \
           reproducible given (run-seed, jobs).")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a coverage-directed fuzzing campaign.")
    Term.(
      const fuzz $ seed_arg $ version_arg $ hours_arg $ campaign_seed_arg
      $ system_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* train                                                               *)
(* ------------------------------------------------------------------ *)

let train () =
  let p = Snowplow.Pipeline.train () in
  let pmm = Snowplow.Pipeline.eval_scores p in
  let rand = Snowplow.Pipeline.rand_baseline p ~k:8 in
  Format.printf "PMModel: %a@." Sp_ml.Metrics.pp pmm;
  Format.printf "Rand.8 : %a@." Sp_ml.Metrics.pp rand;
  Printf.printf "threshold %.2f, %d parameters\n"
    (Snowplow.Pmm.threshold p.Snowplow.Pipeline.model)
    (Snowplow.Pmm.num_parameters p.Snowplow.Pipeline.model)

let train_cmd =
  Cmd.v
    (Cmd.info "train" ~doc:"Train PMM and report Table-1 selector metrics.")
    Term.(const train $ const ())

(* ------------------------------------------------------------------ *)
(* directed                                                            *)
(* ------------------------------------------------------------------ *)

let directed seed version hours run_seed bug_id =
  let k = make_kernel seed version in
  let bug = Kernel.bug k bug_id in
  let target =
    let rec go i =
      if i >= Kernel.num_blocks k then failwith "bug has no crash block"
      else
        match (Kernel.block k i).Sp_kernel.Ir.term with
        | Sp_kernel.Ir.Crash id when id = bug_id -> i
        | _ -> go (i + 1)
    in
    go 0
  in
  Format.printf "target: crash site of %a@." Sp_kernel.Bug.pp bug;
  print_endline "training PMM first (this takes a few minutes)...";
  let p = Snowplow.Pipeline.train () in
  let inference = Snowplow.Pipeline.inference_for p k in
  let db = Kernel.spec_db k in
  let seeds = Sp_syzlang.Gen.corpus (Sp_util.Rng.create (run_seed lxor 0xd1c)) db ~size:60 in
  let cfg =
    {
      Campaign.default_config with
      seed_corpus = seeds;
      seed = run_seed;
      duration = hours *. 3600.0;
      snapshot_every = 600.0;
      target = Some target;
    }
  in
  let run name strategy =
    let vm = Sp_fuzz.Vm.create ~fleet_scale:192.0 ~seed:run_seed k in
    let r = Campaign.run vm strategy cfg in
    match r.Campaign.target_hit_at with
    | Some t -> Printf.printf "%-12s reached the target in %.0f virtual seconds\n" name t
    | None -> Printf.printf "%-12s did not reach the target\n" name
  in
  let target_sys =
    let sys = (Kernel.block k target).Sp_kernel.Ir.sys_id in
    if sys >= 0 then Some sys else None
  in
  run "SyzDirect" (Sp_fuzz.Strategy.syzdirect ~target_sys db);
  run "Snowplow-D" (Snowplow.Directed.strategy ~inference ~target k)

let directed_cmd =
  let bug_id =
    Arg.(value & opt int 10 & info [ "bug" ] ~docv:"ID" ~doc:"Bug id whose crash site to reach.")
  in
  Cmd.v
    (Cmd.info "directed" ~doc:"Directed fuzzing towards a bug's crash site.")
    Term.(const directed $ seed_arg $ version_arg $ hours_arg $ campaign_seed_arg $ bug_id)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "snowplow" ~version:"1.0"
      ~doc:"Snowplow (ASPLOS'25) reproduction: learned white-box kernel test mutation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ kernel_info_cmd; gen_cmd; run_cmd; fuzz_cmd; train_cmd; directed_cmd ]))
