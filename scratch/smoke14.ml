(* Smoke: batched embed_kernel bit-identity vs per-block embed; striped
   trainer determinism; workspace reuse. *)
let () =
  let kernel = Sp_kernel.Kernel.linux_like ~seed:7 ~version:"6.8" in
  let enc = Snowplow.Encoder.pretrain ~config:{ Snowplow.Encoder.default_config with steps = 200 } kernel in
  let embs = Snowplow.Encoder.embed_kernel enc kernel in
  let n = Sp_kernel.Kernel.num_blocks kernel in
  let mismatches = ref 0 in
  for b = 0 to n - 1 do
    let e = Snowplow.Encoder.embed enc (Sp_kernel.Kernel.block kernel b).Sp_kernel.Ir.tokens in
    Array.iteri
      (fun j v ->
        if not (Float.equal v (Sp_ml.Tensor.get embs b j)) then incr mismatches)
      e
  done;
  Printf.printf "blocks=%d mismatched entries=%d\n%!" n !mismatches;
  if !mismatches > 0 then exit 1;
  (* striped trainer: jobs=2 twice -> identical histories; jobs=1 runs too *)
  let cfg j = { Snowplow.Trainer.default_config with epochs = 2; log_every = 5; jobs = j } in
  let mk () =
    Snowplow.Pmm.create ~encoder_dim:(Snowplow.Encoder.dim enc)
      ~num_syscalls:(Sp_syzlang.Spec.count (Sp_kernel.Kernel.spec_db kernel)) ()
  in
  let bases =
    Sp_syzlang.Gen.corpus (Sp_util.Rng.create 3) (Sp_kernel.Kernel.spec_db kernel) ~size:20
  in
  let split = Snowplow.Dataset.collect kernel ~bases in
  let run j =
    let m = mk () in
    let h =
      Snowplow.Trainer.train ~config:(cfg j) m ~block_embs:embs
        ~train:split.Snowplow.Dataset.train ~valid:split.Snowplow.Dataset.valid
    in
    (h, Snowplow.Pmm.threshold m,
     List.map (fun p -> Sp_ml.Tensor.to_array (Sp_ml.Ad.value p)) (Snowplow.Pmm.params m))
  in
  let h1, t1, p1 = run 2 in
  let h2, t2, p2 = run 2 in
  let hs, _, _ = run 1 in
  Printf.printf "hist jobs2 len=%d, jobs1 len=%d\n%!" (List.length h1) (List.length hs);
  assert (h1 = h2);
  assert (Float.equal t1 t2);
  List.iter2 (fun a b -> assert (a = b)) p1 p2;
  Printf.printf "striped determinism OK\n%!"
