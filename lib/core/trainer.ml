module Rng = Sp_util.Rng
module Pool = Sp_util.Pool
module Prog = Sp_syzlang.Prog
module Ad = Sp_ml.Ad
module Optim = Sp_ml.Optim
module Metrics = Sp_ml.Metrics
module Tensor = Sp_ml.Tensor
module Workspace = Sp_ml.Workspace
module Tracer = Sp_obs.Tracer

type config = {
  epochs : int;
  lr : float;
  batch : int;
  seed : int;
  log_every : int;
  jobs : int;
}

let default_config =
  { epochs = 8; lr = 3e-3; batch = 8; seed = 31; log_every = 400; jobs = 1 }

type progress = { step : int; loss : float }

let path_compare (a : Prog.path) (b : Prog.path) = Prog.path_compare a b

let score_example model ~block_embs (ex : Dataset.example) =
  let predicted = Pmm.predict model ~block_embs ex.Dataset.graph in
  Metrics.score ~compare:path_compare ~pred:predicted ~gold:ex.Dataset.mutated_args

let evaluate model ~block_embs examples =
  Metrics.mean (Array.to_list (Array.map (score_example model ~block_embs) examples))

let calibrate_threshold model ~block_embs examples =
  let candidates = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  let best = ref (Pmm.threshold model) and best_f1 = ref neg_infinity in
  List.iter
    (fun th ->
      Pmm.set_threshold model th;
      let scores = evaluate model ~block_embs examples in
      if scores.Metrics.f1 > !best_f1 then begin
        best_f1 := scores.Metrics.f1;
        best := th
      end)
    candidates;
  Pmm.set_threshold model !best;
  !best

(* Shared history/throughput bookkeeping for both execution paths. *)
type progress_state = {
  mutable step : int;
  mutable running_loss : float;
  mutable running_n : int;
  mutable history : progress list;
  mutable last_step_at : float;
}

let fresh_progress () =
  { step = 0; running_loss = 0.0; running_n = 0; history = [];
    last_step_at = Unix.gettimeofday () }

(* One eligible example's loss has been observed: advance the step
   counter and emit a history record at [log_every] boundaries — the
   same cadence whether losses arrive one by one (sequential) or
   replayed in batch order after a parallel barrier. *)
let observe_loss st ~config ~tracer loss_value =
  st.step <- st.step + 1;
  st.running_loss <- st.running_loss +. loss_value;
  st.running_n <- st.running_n + 1;
  if config.log_every > 0 && st.step mod config.log_every = 0 then begin
    let mean = st.running_loss /. float_of_int st.running_n in
    st.history <- { step = st.step; loss = mean } :: st.history;
    Tracer.counter tracer "trainer.loss" mean;
    st.running_loss <- 0.0;
    st.running_n <- 0
  end

let note_step_rate st ~tracer samples =
  let now = Unix.gettimeofday () in
  let dt = now -. st.last_step_at in
  if dt > 0.0 then
    Tracer.counter tracer "trainer.samples_per_s" (float_of_int samples /. dt);
  st.last_step_at <- now

(* ------------------------------------------------------------------ *)
(* Sequential path (jobs = 1) — byte-identical to the historical
   trainer: same RNG draws, same IEEE operations in the same order. The
   only change is that tape temporaries and gradient buffers now draw
   from a workspace ticked at optimizer-step boundaries (gradients
   accumulate across a mini-batch, so a generation spans exactly one
   batch). *)
(* ------------------------------------------------------------------ *)

let train_sequential ~config ~tracer model ~block_embs ~train:train_exs =
  let rng = Rng.create config.seed in
  let optim = Optim.adam ~lr:config.lr (Pmm.params model) in
  let ws = Workspace.create () in
  let st = fresh_progress () in
  let in_batch = ref 0 in
  Workspace.with_active ws (fun () ->
      for _epoch = 1 to config.epochs do
        Tracer.span tracer "trainer.epoch" (fun () ->
            let order = Array.init (Array.length train_exs) Fun.id in
            Rng.shuffle rng order;
            Array.iter
              (fun i ->
                let ex = train_exs.(i) in
                if Array.length ex.Dataset.labels > 0 then begin
                  let loss =
                    Pmm.loss model ~block_embs ex.Dataset.prepared
                      ~labels:ex.Dataset.labels
                  in
                  (* Gradients accumulate across the mini-batch; one Adam
                     step per [config.batch] examples. *)
                  Ad.backward loss;
                  incr in_batch;
                  let stepped = !in_batch >= config.batch in
                  if stepped then begin
                    Optim.step optim;
                    Optim.zero_grad optim;
                    in_batch := 0
                  end;
                  observe_loss st ~config ~tracer
                    (Tensor.get (Ad.value loss) 0 0);
                  (* The loss scalar has been read and the gradients
                     consumed: everything this generation handed out is
                     dead, so the batch's buffers can be recycled. *)
                  if stepped then begin
                    Workspace.tick ws;
                    note_step_rate st ~tracer config.batch
                  end
                end)
              order)
      done;
      if !in_batch > 0 then begin
        Optim.step optim;
        Optim.zero_grad optim;
        Workspace.tick ws
      end);
  List.rev st.history

(* ------------------------------------------------------------------ *)
(* Striped path (jobs > 1) — minibatch striping: each mini-batch's
   eligible examples are split into [jobs] contiguous stripes, each
   stripe builds tapes and accumulates gradients on its own pool domain
   into a [Pmm.clone_shared] view (shared parameter values, private
   gradient slots, private workspace), and the main domain reduces the
   per-stripe gradients in stripe order before one Adam step.

   Deterministic for a fixed (seed, jobs): stripes are reduced in
   submission order and each stripe accumulates its examples in batch
   order. The floating-point association differs from jobs = 1 (stripe
   subtotals are summed, not one long chain), so results are
   reproducible per (seed, jobs) rather than across job counts. *)
(* ------------------------------------------------------------------ *)

let train_parallel ~config ~tracer ~tracer_for model ~block_embs ~train:train_exs =
  let jobs = config.jobs in
  let rng = Rng.create config.seed in
  let optim = Optim.adam ~lr:config.lr (Pmm.params model) in
  let primary_params = Pmm.params model in
  let clones = Array.init jobs (fun _ -> Pmm.clone_shared model) in
  let clone_params = Array.map Pmm.params clones in
  (* Per-stripe tracers, not per-worker: work stealing may run stripe [s]
     on any domain, but one stripe is one task, executed exactly once per
     barrier interval — so each stripe tracer has a single writer at any
     instant (hand-offs are ordered by the pool's barrier). *)
  let stripe_tracers = Array.init jobs tracer_for in
  let st = fresh_progress () in
  let pending = ref [] and n_pending = ref 0 in
  Pool.with_pool ~workers:jobs (fun pool ->
      let flush () =
        if !n_pending > 0 then begin
          let batch = Array.of_list (List.rev !pending) in
          pending := [];
          n_pending := 0;
          let n = Array.length batch in
          let tasks =
            List.init jobs (fun s ->
                let start = n * s / jobs in
                let stop = n * (s + 1) / jobs in
                let clone = clones.(s) in
                let stracer = stripe_tracers.(s) in
                fun () ->
                  Tracer.span stracer "trainer.stripe" (fun () ->
                      Workspace.with_active (Pmm.workspace clone) (fun () ->
                          Array.init (stop - start) (fun k ->
                              let ex = batch.(start + k) in
                              let loss =
                                Pmm.loss clone ~block_embs ex.Dataset.prepared
                                  ~labels:ex.Dataset.labels
                              in
                              Ad.backward loss;
                              Tensor.get (Ad.value loss) 0 0))))
          in
          let results = Pool.run_all pool tasks in
          let losses =
            List.map (function Ok a -> a | Error e -> raise e) results
          in
          (* Reduce in stripe order, then zero the clone's slots so the
             next generation starts clean; the clones' workspaces are
             only recycled after their gradients have been consumed. *)
          Array.iter
            (fun cps ->
              List.iter2
                (fun p cp ->
                  (match Ad.grad_opt cp with
                  | Some g -> Ad.accum p g
                  | None -> ());
                  Ad.zero_grad cp)
                primary_params cps)
            clone_params;
          Optim.step optim;
          Optim.zero_grad optim;
          Array.iter (fun c -> Workspace.tick (Pmm.workspace c)) clones;
          note_step_rate st ~tracer n;
          (* Replay the per-example losses in batch order so history and
             logging cadence match the sequential path's. *)
          List.iter
            (fun stripe_losses ->
              Array.iter
                (fun l -> observe_loss st ~config ~tracer l)
                stripe_losses)
            losses
        end
      in
      for _epoch = 1 to config.epochs do
        Tracer.span tracer "trainer.epoch" (fun () ->
            let order = Array.init (Array.length train_exs) Fun.id in
            Rng.shuffle rng order;
            Array.iter
              (fun i ->
                let ex = train_exs.(i) in
                if Array.length ex.Dataset.labels > 0 then begin
                  pending := ex :: !pending;
                  incr n_pending;
                  if !n_pending >= config.batch then flush ()
                end)
              order)
      done;
      (* Leftover partial batch after all epochs, like the sequential
         trainer's trailing step. *)
      flush ());
  List.rev st.history

let train ?(config = default_config) ?(tracer = Tracer.null)
    ?(tracer_for = fun _ -> Tracer.null) model ~block_embs ~train ~valid =
  let history =
    if config.jobs <= 1 then
      train_sequential ~config ~tracer model ~block_embs ~train
    else train_parallel ~config ~tracer ~tracer_for model ~block_embs ~train
  in
  if Array.length valid > 0 then ignore (calibrate_threshold model ~block_embs valid);
  history

let random_baseline ~k ~seed examples =
  let rng = Rng.create seed in
  let scores =
    Array.to_list examples
    |> List.map (fun (ex : Dataset.example) ->
           let nodes = Prog.mutable_nodes ex.Dataset.base in
           let pred =
             Rng.sample rng (Array.of_list (List.map fst nodes)) k
           in
           Metrics.score ~compare:path_compare ~pred ~gold:ex.Dataset.mutated_args)
  in
  Metrics.mean scores
