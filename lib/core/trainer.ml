module Rng = Sp_util.Rng
module Prog = Sp_syzlang.Prog
module Ad = Sp_ml.Ad
module Optim = Sp_ml.Optim
module Metrics = Sp_ml.Metrics
module Tensor = Sp_ml.Tensor
module Tracer = Sp_obs.Tracer

type config = {
  epochs : int;
  lr : float;
  batch : int;
  seed : int;
  log_every : int;
}

let default_config = { epochs = 8; lr = 3e-3; batch = 8; seed = 31; log_every = 400 }

type progress = { step : int; loss : float }

let path_compare (a : Prog.path) (b : Prog.path) = Prog.path_compare a b

let score_example model ~block_embs (ex : Dataset.example) =
  let predicted = Pmm.predict model ~block_embs ex.Dataset.graph in
  Metrics.score ~compare:path_compare ~pred:predicted ~gold:ex.Dataset.mutated_args

let evaluate model ~block_embs examples =
  Metrics.mean (Array.to_list (Array.map (score_example model ~block_embs) examples))

let calibrate_threshold model ~block_embs examples =
  let candidates = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  let best = ref (Pmm.threshold model) and best_f1 = ref neg_infinity in
  List.iter
    (fun th ->
      Pmm.set_threshold model th;
      let scores = evaluate model ~block_embs examples in
      if scores.Metrics.f1 > !best_f1 then begin
        best_f1 := scores.Metrics.f1;
        best := th
      end)
    candidates;
  Pmm.set_threshold model !best;
  !best

let train ?(config = default_config) ?(tracer = Tracer.null) model ~block_embs
    ~train ~valid =
  let rng = Rng.create config.seed in
  let optim = Optim.adam ~lr:config.lr (Pmm.params model) in
  let history = ref [] in
  let step = ref 0 in
  let in_batch = ref 0 in
  let running_loss = ref 0.0 and running_n = ref 0 in
  for _epoch = 1 to config.epochs do
    Tracer.span tracer "trainer.epoch" (fun () ->
        let order = Array.init (Array.length train) Fun.id in
        Rng.shuffle rng order;
        Array.iter
          (fun i ->
            let ex = train.(i) in
            if Array.length ex.Dataset.labels > 0 then begin
              incr step;
              let loss =
                Pmm.loss model ~block_embs ex.Dataset.prepared
                  ~labels:ex.Dataset.labels
              in
              (* Gradients accumulate across the mini-batch; one Adam step
                 per [config.batch] examples. *)
              Ad.backward loss;
              incr in_batch;
              if !in_batch >= config.batch then begin
                Optim.step optim;
                Optim.zero_grad optim;
                in_batch := 0
              end;
              running_loss := !running_loss +. Tensor.get (Ad.value loss) 0 0;
              incr running_n;
              if config.log_every > 0 && !step mod config.log_every = 0
              then begin
                let mean = !running_loss /. float_of_int !running_n in
                history := { step = !step; loss = mean } :: !history;
                Tracer.counter tracer "trainer.loss" mean;
                running_loss := 0.0;
                running_n := 0
              end
            end)
          order)
  done;
  if !in_batch > 0 then begin
    Optim.step optim;
    Optim.zero_grad optim
  end;
  if Array.length valid > 0 then ignore (calibrate_threshold model ~block_embs valid);
  List.rev !history

let random_baseline ~k ~seed examples =
  let rng = Rng.create seed in
  let scores =
    Array.to_list examples
    |> List.map (fun (ex : Dataset.example) ->
           let nodes = Prog.mutable_nodes ex.Dataset.base in
           let pred =
             Rng.sample rng (Array.of_list (List.map fst nodes)) k
           in
           Metrics.score ~compare:path_compare ~pred ~gold:ex.Dataset.mutated_args)
  in
  Metrics.mean scores
