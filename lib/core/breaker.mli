(** Circuit breaker for the inference service's per-tenant lanes.

    Classic three-state machine over the campaign's {e virtual} clock
    (barrier time — never wall clock, so every transition is
    deterministic and replayable):

    - [Closed]: requests flow; [error_threshold] {e consecutive} errors
      (a timed-out or failed request, or a success slower than
      [latency_threshold]) trip the breaker.
    - [Open]: requests are shed without touching the service; after
      [cooldown] virtual seconds the next {!state} query moves to
      half-open.
    - [Half_open]: the caller sends a single probe; a fast success
      closes the breaker, any error re-trips it (restarting the
      cooldown).

    The state machine itself performs no I/O and holds no references —
    the {!Funnel} owns one breaker per tenant lane and consults it at
    flush time. State round-trips through {!state_json} /
    {!restore_state} so a resumed campaign's breaker continues exactly
    where the uninterrupted one would be. *)

type state = Closed | Open | Half_open

type config = {
  error_threshold : int;  (** consecutive errors that trip Closed -> Open *)
  latency_threshold : float;
      (** a success slower than this (virtual seconds) counts as an error *)
  cooldown : float;  (** virtual seconds Open before probing *)
}

val default_config : config
(** 3 consecutive errors; 10 s latency ceiling; 1200 s cooldown (two
    default snapshot barriers — so a tripped lane skips one whole flush
    and probes on the next). *)

type t

val create : ?config:config -> unit -> t
(** Starts [Closed]. Raises [Invalid_argument] unless
    [error_threshold >= 1], [latency_threshold > 0] and [cooldown > 0]. *)

val config : t -> config

val state : t -> now:float -> state
(** Current state; performs the Open -> Half_open transition once the
    cooldown has elapsed at [now]. *)

val peek : t -> now:float -> state
(** Like {!state} but pure: reports the state [now] implies without
    committing the Open -> Half_open transition. This is what
    observability reads (telemetry gauges) must use — a scrape-driven
    read may run at virtual times the unclocked path never visits, and
    committing the transition there would perturb the serialized
    breaker state an unobserved run would have written. *)

val state_name : state -> string
(** ["closed"] / ["open"] / ["half-open"]. *)

val record_error : t -> now:float -> unit
(** A request failed or timed out. *)

val record_success : t -> now:float -> latency:float -> unit
(** A request completed after [latency] virtual seconds. A slow success
    (over [latency_threshold]) is counted as an error instead. *)

val note_probe : t -> unit
(** The caller sent a half-open probe (bookkeeping only). *)

val consecutive_errors : t -> int

val trips : t -> int
(** Times the breaker entered [Open]. *)

val probes : t -> int

val is_default : t -> bool
(** [true] iff the breaker has never seen an error, trip or probe —
    i.e. persisting it would write only defaults. The funnel uses this
    to keep snapshots of never-degraded lanes byte-identical to
    pre-breaker snapshots. *)

val reset : t -> unit
(** Back to the freshly-created state (config retained). *)

val state_json : t -> Sp_obs.Json.t
(** Mutable state only — the config is supplied by the runtime at
    {!create} time and is not persisted. *)

val restore_state : t -> Sp_obs.Json.t -> unit
(** Raises [Sp_obs.Json.Decode.Error] on a malformed document. *)
