module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog
module Engine = Sp_mutation.Engine

type example = {
  base : Prog.t;
  exec : Kernel.result;
  mutated_args : Prog.path list;
  new_blocks : int list;
  targets : int list;
  graph : Query_graph.t;
  prepared : Pmm.prepared;
  labels : float array;
}

type config = {
  mutations_per_base : int;
  max_args_per_mutation : int;
  popularity_cap : int;
  max_examples_per_base : int;
  noise : float;  (* executor nondeterminism (ablation of §3.1's controls) *)
  exact_targets : bool;  (* ablation: §3.1 design option (a) instead of (c) *)
  drop_edges : Query_graph.edge_kind list;  (* representation ablations *)
  stratify : bool;  (* stratify the per-base split by label rate *)
  seed : int;
}

let default_config =
  {
    mutations_per_base = 500;
    max_args_per_mutation = 1;
    popularity_cap = 60;
    max_examples_per_base = 6;
    noise = 0.0;
    exact_targets = false;
    drop_edges = [];
    stratify = false;
    seed = 5;
  }

type split = { train : example array; valid : example array; eval : example array }

let path_key (p : Prog.path) = (p.Prog.call, p.Prog.arg)

let execute config rng kernel prog =
  if config.noise > 0.0 then Kernel.execute ~noise:(rng, config.noise) kernel prog
  else Kernel.execute kernel prog

(* Successful raw samples for one base: (localized paths, new blocks). *)
let raw_samples config rng kernel engine base (base_exec : Kernel.result) =
  let seen = Hashtbl.create 64 in
  Hashtbl.add seen (Prog.hash base) ();
  let localizer = Engine.syzkaller_arg_localizer ~max_args:config.max_args_per_mutation () in
  let samples = ref [] in
  for _j = 1 to config.mutations_per_base do
    match localizer rng base with
    | [] -> ()
    | paths ->
      let mutant = Engine.mutate_args_at engine rng base paths in
      let h = Prog.hash mutant in
      if not (Hashtbl.mem seen h) then begin
        Hashtbl.add seen h ();
        let r = execute config rng kernel mutant in
        if r.Kernel.crash = None then begin
          let fresh = ref [] in
          Bitset.iter
            (fun b ->
              if not (Bitset.mem base_exec.Kernel.covered b) then fresh := b :: !fresh)
            r.Kernel.covered;
          if !fresh <> [] then samples := (paths, List.rev !fresh) :: !samples
        end
      end
  done;
  List.rev !samples

(* Merge samples with identical new coverage: their localizations all led
   to the same behaviour change, so they form one example with the union of
   argument sets (§3.1). *)
let merge_samples samples =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (paths, fresh) ->
      let key = List.sort compare fresh in
      match Hashtbl.find_opt tbl key with
      | Some existing ->
        let merged =
          List.sort_uniq
            (fun a b -> compare (path_key a) (path_key b))
            (paths @ existing)
        in
        Hashtbl.replace tbl key merged
      | None ->
        Hashtbl.add tbl key paths;
        order := key :: !order)
    samples;
  List.rev_map (fun key -> (Hashtbl.find tbl key, key)) !order |> List.rev

(* Target synthesis, design option (c) of §3.1: a sample of the frontier
   guaranteed to overlap the really-reachable new blocks. *)
let synthesize_targets config rng ~frontier ~fresh =
  let frontier_set = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace frontier_set b ()) frontier;
  let real = List.filter (fun b -> Hashtbl.mem frontier_set b) fresh in
  match real with
  | [] -> None
  | _ when config.exact_targets ->
    (* Design option (a): exactly the new coverage, no frontier noise. *)
    Some (List.sort_uniq compare real, real)
  | _ ->
    let fraction = Rng.choose rng [| `One; `F 0.25; `F 0.5; `F 0.75; `F 1.0 |] in
    let targets =
      match fraction with
      | `One -> [ Rng.choose_list rng real ]
      | `F f ->
        let pool = Array.of_list frontier in
        let k = max 1 (int_of_float (f *. float_of_int (Array.length pool))) in
        let sampled = Rng.sample rng pool k in
        let anchor = Rng.choose_list rng real in
        if List.mem anchor sampled then sampled else anchor :: sampled
    in
    Some (List.sort_uniq compare targets, real)

let labels_of prepared mutated_args =
  let gold = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace gold (path_key p) ()) mutated_args;
  Array.map
    (fun p -> if Hashtbl.mem gold (path_key p) then 1.0 else 0.0)
    (Pmm.prepared_paths prepared)

let build_example config kernel base base_exec mutated_args fresh targets =
  let graph =
    Query_graph.build ~drop:config.drop_edges kernel base ~result:base_exec ~targets
  in
  let prepared = Pmm.prepare graph in
  {
    base;
    exec = base_exec;
    mutated_args;
    new_blocks = fresh;
    targets;
    graph;
    prepared;
    labels = labels_of prepared mutated_args;
  }

let collect_for_base ?(config = default_config) kernel base =
  let rng = Rng.create (config.seed lxor Prog.hash base) in
  let engine = Engine.create (Kernel.spec_db kernel) in
  let base_exec = execute config rng kernel base in
  if base_exec.Kernel.crash <> None then []
  else begin
    let frontier = List.map fst (Query_graph.frontier_blocks kernel base_exec) in
    let merged = merge_samples (raw_samples config rng kernel engine base base_exec) in
    (* The MUTATE set of an example is the union of localizations over
       every successful mutation whose new coverage intersects the chosen
       targets: all arguments observed to lead to some of the desired
       coverage, not just the one mutation the example was derived from. *)
    let gold_for targets =
      let tset = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace tset b ()) targets;
      List.concat_map
        (fun (paths, fresh) ->
          if List.exists (Hashtbl.mem tset) fresh then paths else [])
        merged
      |> List.sort_uniq (fun a b -> compare (path_key a) (path_key b))
    in
    let examples =
      List.filter_map
        (fun (_paths, fresh) ->
          match synthesize_targets config rng ~frontier ~fresh with
          | Some (targets, _real) ->
            Some
              (build_example config kernel base base_exec (gold_for targets)
                 fresh targets)
          | None -> None)
        merged
    in
    List.filteri (fun i _ -> i < config.max_examples_per_base) examples
  end

let apply_popularity_cap config examples =
  let counts = Hashtbl.create 256 in
  let count b = Option.value ~default:0 (Hashtbl.find_opt counts b) in
  List.filter
    (fun ex ->
      if ex.targets <> [] && List.for_all (fun b -> count b >= config.popularity_cap) ex.targets
      then false
      else begin
        List.iter (fun b -> Hashtbl.replace counts b (count b + 1)) ex.targets;
        true
      end)
    examples

(* Pure stratified partition: [rates.(i)] is base [i]'s label rate in
   (shuffled) base order. Bases are grouped into terciles of the rate
   distribution and each tercile is split 80/10/10 in order, with the
   same floor formulas as the unstratified split — so each stratum's
   train/valid/eval proportions match the whole corpus's. Still a
   per-base partition: every base lands in exactly one part. *)
let stratified_assignment rates =
  let n = Array.length rates in
  let sorted = Array.copy rates in
  Array.sort compare sorted;
  let q1 = if n = 0 then 0.0 else sorted.(n / 3)
  and q2 = if n = 0 then 0.0 else sorted.(2 * n / 3) in
  let stratum r = if r < q1 then 0 else if r < q2 then 1 else 2 in
  let assign = Array.make n `Eval in
  for s = 0 to 2 do
    let members = ref [] in
    Array.iteri (fun i r -> if stratum r = s then members := i :: !members) rates;
    let members = Array.of_list (List.rev !members) in
    let ns = Array.length members in
    let ns_train = ns * 8 / 10 and ns_valid = ns / 10 in
    Array.iteri
      (fun k i ->
        assign.(i) <-
          (if k < ns_train then `Train
           else if k < ns_train + ns_valid then `Valid
           else `Eval))
      members
  done;
  assign

(* Fraction of MUTATE labels over all of a base's argument nodes, across
   its examples — the class balance the stratified split equalizes. *)
let label_rate examples =
  let pos = ref 0.0 and total = ref 0.0 in
  List.iter
    (fun ex ->
      Array.iter
        (fun l ->
          total := !total +. 1.0;
          if l > 0.5 then pos := !pos +. 1.0)
        ex.labels)
    examples;
  if !total = 0.0 then 0.0 else !pos /. !total

let collect ?(config = default_config) kernel ~bases =
  let rng = Rng.create config.seed in
  let bases = Array.of_list bases in
  Rng.shuffle rng bases;
  let n = Array.length bases in
  if config.stratify then begin
    (* Collect every base's examples once ([collect_for_base] seeds its
       RNG per base, so this is independent of collection order), rate
       them, and partition by label-rate terciles. The popularity cap
       still runs per part, over that part's examples in base order. *)
    let per_base =
      Array.map (fun base -> collect_for_base ~config kernel base) bases
    in
    let assign = stratified_assignment (Array.map label_rate per_base) in
    let part tag =
      let acc = ref [] in
      Array.iteri
        (fun i exs -> if assign.(i) = tag then acc := List.rev_append exs !acc)
        per_base;
      List.rev !acc |> apply_popularity_cap config |> Array.of_list
    in
    { train = part `Train; valid = part `Valid; eval = part `Eval }
  end
  else begin
    let n_train = n * 8 / 10 and n_valid = n / 10 in
    let part lo hi =
      Array.to_list (Array.sub bases lo (hi - lo))
      |> List.concat_map (fun base -> collect_for_base ~config kernel base)
      |> apply_popularity_cap config
      |> Array.of_list
    in
    {
      train = part 0 n_train;
      valid = part n_train (n_train + n_valid);
      eval = part (n_train + n_valid) n;
    }
  end

let successful_mutation_rate ?(config = default_config) kernel ~bases =
  let engine = Engine.create (Kernel.spec_db kernel) in
  let rates =
    List.filter_map
      (fun base ->
        let rng = Rng.create (config.seed lxor Prog.hash base) in
        let base_exec = execute config rng kernel base in
        if base_exec.Kernel.crash <> None then None
        else begin
          let samples = raw_samples config rng kernel engine base base_exec in
          Some
            (1000.0
            *. float_of_int (List.length samples)
            /. float_of_int config.mutations_per_base)
        end)
      bases
  in
  Sp_util.Stats.mean rates

let stats split =
  let all =
    Array.to_list split.train @ Array.to_list split.valid @ Array.to_list split.eval
  in
  match all with
  | [] -> [ ("examples", 0.0) ]
  | _ ->
    let n = float_of_int (List.length all) in
    let avg f = List.fold_left (fun acc ex -> acc +. f ex) 0.0 all /. n in
    let graph_stat key =
      avg (fun ex ->
          float_of_int (List.assoc key (Query_graph.stats ex.graph)))
    in
    [
      ("examples", n);
      ("train examples", float_of_int (Array.length split.train));
      ("valid examples", float_of_int (Array.length split.valid));
      ("eval examples", float_of_int (Array.length split.eval));
      ("avg vertices", graph_stat "nodes");
      ("avg syscall nodes", graph_stat "syscall nodes");
      ("avg argument nodes", graph_stat "argument nodes");
      ("avg covered block nodes", graph_stat "covered block nodes");
      ("avg alternative entry nodes",
       graph_stat "alternative entry nodes" +. graph_stat "target nodes");
      ("avg edges", graph_stat "edges");
      ("avg call ordering edges", graph_stat "call ordering edges");
      ("avg argument ordering edges", graph_stat "argument ordering edges");
      ("avg argument in/out edges",
       graph_stat "argument in/out edges" +. graph_stat "containment edges");
      ("avg covered control flow edges", graph_stat "covered control flow edges");
      ("avg uncovered control flow edges", graph_stat "uncovered control flow edges");
      ("avg context switch edges", graph_stat "context switch edges");
      ("avg MUTATE args per example",
       avg (fun ex -> float_of_int (List.length ex.mutated_args)));
      ("avg targets per example", avg (fun ex -> float_of_int (List.length ex.targets)));
    ]
