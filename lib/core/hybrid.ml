module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog
module Engine = Sp_mutation.Engine
module Strategy = Sp_fuzz.Strategy
module Corpus = Sp_fuzz.Corpus

let guided_mutants rng engine base paths ~per_arg =
  match paths with
  | [] -> []
  | _ ->
    (* One mutant per predicted argument (times [per_arg]), each changing a
       single argument so the path prefix the base already satisfies stays
       intact. *)
    let arr = Array.of_list paths in
    let n = per_arg * Array.length arr in
    List.init n (fun i ->
        let chosen = [ arr.(i mod Array.length arr) ] in
        let prog = Engine.mutate_args_at engine rng base chosen in
        { Strategy.prog; origin = "pmm-arg" })

let pick_targets _rng kernel ~covered (entry : Corpus.entry) ~max_targets =
  let frontier =
    Sp_cfg.Cfg.frontier (Kernel.cfg kernel) ~covered:entry.Corpus.blocks
  in
  let uncovered_entries =
    List.filter_map
      (fun (blk, _via) -> if Bitset.mem covered blk then None else Some blk)
      frontier
  in
  (* Deterministic pseudo-random subset: the same base against the same
     campaign frontier always queries the same targets, so the inference
     cache only recomputes when the frontier actually changes. *)
  let h = Prog.hash entry.Corpus.prog in
  List.sort
    (fun a b -> compare (Hashtbl.hash (a lxor h)) (Hashtbl.hash (b lxor h)))
    uncovered_entries
  |> List.filteri (fun i _ -> i < max_targets)

(* Delivered predictions, keyed by program hash. Bounded (LRU, no TTL —
   recency alone bounds it) and collision-guarded: the base program is
   stored alongside its paths and confirmed structurally on lookup, so a
   hash collision degrades to "no prediction" instead of mutating the
   wrong argument of the wrong program. The LRU clock is irrelevant
   without a TTL, so lookups pass now = 0. *)
type predictions = (int, Prog.t * Prog.path list) Sp_util.Lru.t

let make_predictions () : predictions = Sp_util.Lru.create ~capacity:4096 ()

let predictions_json (p : predictions) =
  Codec.lru_to_json ~key_to_json:Codec.key_to_json
    ~value_to_json:(fun (prog, paths) ->
      Sp_obs.Json.Obj
        [ ("prog", Codec.prog_to_json prog);
          ("paths", Codec.paths_to_json paths)
        ])
    p

let restore_predictions ~parse (p : predictions) j =
  Codec.lru_restore
    ~key_of_json:(Codec.key_of_json "prediction key")
    ~value_of_json:(fun v ->
      ( Codec.prog_of_json ~parse "prediction prog"
          (Sp_obs.Json.Decode.field "prog" v),
        Codec.paths_of_json (Sp_obs.Json.Decode.field "paths" v) ))
    p j

(* Snowplow is Syzkaller with the argument-mutation localizer swapped out
   (§3.4): mutation-type selection, insertion, removal, splicing and their
   relative volumes are untouched. When the selector picks
   ARGUMENT_MUTATION and a PMM prediction for the base test has been
   delivered, the mutation lands on a predicted argument; until the
   (asynchronous) prediction arrives, the stock random localizer acts as
   the fallback. *)
let strategy_with ?(mutations_per_base = 8) ?(max_targets = 40) ?insertion
    ?predictions ?degraded ~endpoint kernel =
  let db = Kernel.spec_db kernel in
  let predictions =
    match predictions with Some p -> p | None -> make_predictions ()
  in
  let find_prediction prog =
    match Sp_util.Lru.find predictions ~now:0.0 (Prog.hash prog) with
    | Some (base, paths) when Prog.equal base prog -> Some paths
    | Some _ | None -> None
  in
  let random_localizer = Engine.syzkaller_arg_localizer () in
  let arg_localizer rng prog =
    match find_prediction prog with
    | Some (_ :: _ as paths) when Rng.coin rng 0.85 ->
      let predicted = Rng.choose_list rng paths in
      (* Pairing the predicted argument with one random argument keeps the
         mutant space large (small flag/enum spaces exhaust quickly when
         the same argument is hammered alone) at negligible risk to the
         satisfied path prefix. *)
      if Rng.bool rng then [ predicted ]
      else begin
        match random_localizer rng prog with
        | other :: _ when Prog.path_compare other predicted <> 0 ->
          [ predicted; other ]
        | _ -> [ predicted ]
      end
    | Some _ | None -> random_localizer rng prog
  in
  let engine =
    Engine.create
      ~selector:(Engine.syzkaller_selector ~splice:true ())
      ~arg_localizer db
  in
  (* Optional sec.-6 extension: when an insertion model is supplied, new
     calls are drawn from its top predictions instead of uniformly. *)
  let guided_insert rng ~covered base =
    match insertion with
    | None -> None
    | Some model ->
      let choices = Insertion.top_k model ~covered base ~k:4 in
      let sys = Rng.choose_list rng choices in
      let call = Sp_syzlang.Gen.call rng db (Sp_syzlang.Spec.by_id db sys) in
      let pos = Rng.int rng (Array.length base + 1) in
      let prog =
        Sp_syzlang.Gen.wire_resources rng db (Prog.insert_call base pos call)
      in
      if Array.length prog > 12 then None
      else Some { Strategy.prog; origin = "learned-insert" }
  in
  let propose rng ~now ~covered corpus (entry : Corpus.entry) =
    List.iter
      (fun (prog, paths) ->
        Sp_util.Lru.put predictions ~now:0.0 (Prog.hash prog) (prog, paths))
      (endpoint.Inference.ep_poll ~now);
    (* While the inference lane is degraded (breaker open), skip target
       selection and the request entirely: the endpoint would refuse it
       anyway, and not drawing from the RNG here keeps the degraded
       stream a pure function of the (deterministic) degradation signal.
       Already-delivered predictions keep guiding; new bases fall back to
       the stock random localizer — the graceful half of degradation. *)
    (match degraded with
    | Some d when d () -> ()
    | _ ->
        let targets = pick_targets rng kernel ~covered entry ~max_targets in
        if targets <> [] then
          ignore (endpoint.Inference.ep_request ~now entry.Corpus.prog ~targets));
    let guided = find_prediction entry.Corpus.prog <> None in
    List.init mutations_per_base (fun _ ->
        let donor =
          if Corpus.size corpus > 1 && Rng.coin rng 0.2 then
            Some (Corpus.choose rng corpus).Corpus.prog
          else None
        in
        let prog, applied = Engine.mutate engine rng ?donor entry.Corpus.prog in
        match applied with
        | Engine.No_change -> None
        | Engine.Mutated_args _ ->
          Some { Strategy.prog; origin = (if guided then "pmm-arg" else "arg") }
        | Engine.Inserted_call _ -> (
          match guided_insert rng ~covered entry.Corpus.prog with
          | Some p when Rng.coin rng 0.7 -> Some p
          | _ -> Some { Strategy.prog; origin = "insert" })
        | Engine.Removed_call _ -> Some { Strategy.prog; origin = "remove" }
        | Engine.Spliced _ -> Some { Strategy.prog; origin = "splice" })
    |> List.filter_map Fun.id
  in
  { Strategy.name = "Snowplow"; throughput_factor = 383.0 /. 390.0; propose }

let strategy ?mutations_per_base ?max_targets ?insertion ~inference kernel =
  strategy_with ?mutations_per_base ?max_targets ?insertion
    ~endpoint:(Inference.endpoint inference) kernel
