(** PMM training, threshold calibration and evaluation (§3.3, §5.2).

    Adam over per-example BCE; validation F1 both guides threshold
    calibration and selects the best checkpointed threshold, mirroring the
    paper's F1-guided hyper-parameter protocol. The random baseline Rand.K
    of Table 1 is provided for comparison.

    With [jobs > 1] the trainer runs minibatch striping (DESIGN.md §13):
    each mini-batch's examples are split into [jobs] contiguous stripes,
    each stripe builds its tapes and accumulates gradients on its own
    {!Sp_util.Pool} domain against a {!Pmm.clone_shared} view of the
    model, and the per-stripe gradients are reduced in stripe order
    before a single Adam step — deterministic for a fixed (seed, jobs).
    [jobs = 1] is byte-identical to the historical sequential trainer. *)

type config = {
  epochs : int;
  lr : float;
  batch : int;  (** examples per gradient step (gradient accumulation) *)
  seed : int;
  log_every : int;  (** steps between history records; 0 disables *)
  jobs : int;
      (** stripe/domain count; 1 (the default) trains sequentially *)
}

val default_config : config

type progress = { step : int; loss : float (** mean loss since last record *) }

val train :
  ?config:config ->
  ?tracer:Sp_obs.Tracer.t ->
  ?tracer_for:(int -> Sp_obs.Tracer.t) ->
  Pmm.t ->
  block_embs:Sp_ml.Tensor.t ->
  train:Dataset.example array ->
  valid:Dataset.example array ->
  progress list
(** Trains in place; afterwards the model's threshold is calibrated to
    maximize mean F1 on [valid]. Returns the loss history. [tracer]
    (default disabled) records one [trainer.epoch] span per epoch, a
    [trainer.loss] counter per history record and a
    [trainer.samples_per_s] counter per optimizer step. With [jobs > 1],
    [tracer_for s] supplies stripe [s]'s tracer (called once per stripe
    up front; each records one [trainer.stripe] span per mini-batch) —
    use distinct tracers per stripe, they are written from pool
    domains. *)

val evaluate :
  Pmm.t ->
  block_embs:Sp_ml.Tensor.t ->
  Dataset.example array ->
  Sp_ml.Metrics.scores
(** Mean per-example scores of {!Pmm.predict} against the merged mutated
    argument sets. *)

val random_baseline :
  k:int -> seed:int -> Dataset.example array -> Sp_ml.Metrics.scores
(** Table 1's Rand.K: select [k] unique arguments uniformly per example. *)

val calibrate_threshold :
  Pmm.t -> block_embs:Sp_ml.Tensor.t -> Dataset.example array -> float
(** The threshold in \{0.1..0.9\} maximizing mean F1 (also set on the
    model). *)
