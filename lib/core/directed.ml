module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Kernel = Sp_kernel.Kernel
module Engine = Sp_mutation.Engine
module Strategy = Sp_fuzz.Strategy
module Corpus = Sp_fuzz.Corpus

let pick_targets_towards rng kernel ~covered ~dist (entry : Corpus.entry)
    ~max_targets =
  let frontier =
    Sp_cfg.Cfg.frontier (Kernel.cfg kernel) ~covered:entry.Corpus.blocks
  in
  let candidates =
    List.filter_map
      (fun (blk, _via) ->
        if Bitset.mem covered blk || dist.(blk) = max_int then None
        else Some (blk, dist.(blk)))
      frontier
  in
  match candidates with
  | [] -> []
  | _ ->
    let best = List.fold_left (fun acc (_, d) -> min acc d) max_int candidates in
    (* The closest tier plus one hop of slack: precise enough to direct the
       model, loose enough to survive distance ties. *)
    let tier = List.filter (fun (_, d) -> d <= best + 1) candidates in
    let blocks = List.map fst tier in
    if List.length blocks <= max_targets then blocks
    else Rng.sample rng (Array.of_list blocks) max_targets

let strategy ?(mutations_per_base = 8) ?(max_targets = 8) ?(per_arg = 2)
    ~inference ~target kernel =
  let db = Kernel.spec_db kernel in
  let dist = Sp_cfg.Cfg.distances_to (Kernel.cfg kernel) target in
  let target_sys =
    let sys = (Kernel.block kernel target).Sp_kernel.Ir.sys_id in
    if sys >= 0 then Some sys else None
  in
  let base = Strategy.syzdirect ~mutations_per_base ~target_sys db in
  let propose rng ~now ~covered corpus (entry : Corpus.entry) =
    let engine = Engine.create db in
    let delivered =
      Inference.poll inference ~now ()
      |> List.concat_map (fun (prog, paths) ->
             Hybrid.guided_mutants rng engine prog paths ~per_arg)
    in
    let targets = pick_targets_towards rng kernel ~covered ~dist entry ~max_targets in
    if targets <> [] then
      ignore (Inference.request inference ~now entry.Corpus.prog ~targets);
    delivered @ base.Strategy.propose rng ~now ~covered corpus entry
  in
  { Strategy.name = "Snowplow-D"; throughput_factor = 383.0 /. 390.0; propose }
