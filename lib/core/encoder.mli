(** Basic-block content encoder.

    The paper embeds each kernel basic block from its x86 assembly with a
    Transformer encoder pre-trained on all assembly of a compiled kernel
    using the BERT recipe (§3.3). This is the same design at laptop scale: a
    single-head self-attention encoder over the block's token sequence,
    pre-trained with masked-token prediction over every block of a kernel,
    then frozen; PMM consumes the cached per-block embeddings. *)

type t

type config = {
  dim : int;  (** embedding width (default 16) *)
  max_len : int;  (** longest block token sequence (default 8) *)
  steps : int;  (** masked-LM pretraining steps (default 3000) *)
  lr : float;
  seed : int;
}

val default_config : config

val pretrain : ?config:config -> Sp_kernel.Kernel.t -> t
(** Masked-token pretraining over all blocks of the kernel. *)

val dim : t -> int

val embed : t -> int array -> float array
(** Encode one token sequence (mean-pooled over positions). *)

val embed_kernel : t -> Sp_kernel.Kernel.t -> Sp_ml.Tensor.t
(** One row per kernel block — the frozen cache PMM reads. Works on any
    kernel version, not just the one pretrained on. Runs the batched
    tape-free path: chunks of blocks share one matmul per linear layer,
    attention runs per sequence on zero-copy views, and temporaries draw
    from a local workspace — bit-identical to calling {!embed} per
    block. *)

val masked_lm_accuracy : t -> Sp_kernel.Kernel.t -> samples:int -> seed:int -> float
(** Fraction of masked tokens recovered correctly on random blocks; a
    pretraining sanity metric. *)
