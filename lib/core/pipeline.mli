(** End-to-end Snowplow pipeline: the §5.1 protocol in one call.

    Builds the kernel, assembles a base-test corpus (random generation plus
    corpus entries evolved by a short Syzkaller warm-up, standing in for
    the Syzbot-derived corpus), collects the mutation dataset, pretrains
    the block encoder, trains PMM with validation-calibrated threshold, and
    hands out inference services — including for later kernel versions the
    model was never trained on (the §5.3 generalization setting). *)

type config = {
  kernel_seed : int;
  train_version : string;  (** the version PMM is trained on ("6.8") *)
  gen_bases : int;  (** randomly generated base tests *)
  corpus_bases : int;  (** bases taken from the warm-up fuzzing corpus *)
  warmup_duration : float;  (** virtual seconds of Syzkaller warm-up *)
  dataset : Dataset.config;
  encoder : Encoder.config;
  pmm : Pmm.config;
  trainer : Trainer.config;
}

val default_config : config
(** 80 generated + 120 corpus bases, 1 virtual hour of warm-up, and the
    component defaults. *)

type t = {
  config : config;
  kernel : Sp_kernel.Kernel.t;  (** the training kernel *)
  bases : Sp_syzlang.Prog.t list;
  split : Dataset.split;
  encoder : Encoder.t;
  block_embs : Sp_ml.Tensor.t;  (** embeddings for the training kernel *)
  model : Pmm.t;
  history : Trainer.progress list;
}

val train :
  ?config:config ->
  ?tracer:Sp_obs.Tracer.t ->
  ?tracer_for:(int -> Sp_obs.Tracer.t) ->
  unit ->
  t
(** [tracer] (default disabled) records [pipeline.collect_bases],
    [pipeline.dataset] and [pipeline.pretrain] spans around the training
    stages and is passed through to {!Trainer.train}, along with
    [tracer_for] (per-stripe tracers when the trainer runs with
    [jobs > 1]). *)

val kernel_version : t -> string -> Sp_kernel.Kernel.t
(** Another version of the same kernel family (same seed). *)

val embeddings_for : t -> Sp_kernel.Kernel.t -> Sp_ml.Tensor.t
(** Frozen-encoder block embeddings for any kernel version. *)

val inference_for :
  ?latency:float ->
  ?capacity_qps:float ->
  ?cache_capacity:int ->
  ?tracer:Sp_obs.Tracer.t ->
  t ->
  Sp_kernel.Kernel.t ->
  Inference.t
(** A fresh inference service of the trained model against the given
    kernel. [cache_capacity] bounds each prediction cache and [tracer]
    records batch-flush spans (see [Inference.create]). *)

val eval_scores : t -> Sp_ml.Metrics.scores
(** Held-out evaluation of the trained model (Table 1's PMM row). *)

val rand_baseline : t -> k:int -> Sp_ml.Metrics.scores
(** Table 1's Rand.K row on the same evaluation split. *)
