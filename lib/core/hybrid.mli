(** Snowplow: the hybrid fuzzer of §3.4.

    Syzkaller's loop with PMM as the argument-mutation localizer: when the
    fuzzer picks a base test, a localization query (base test + coverage +
    uncovered frontier targets) is sent to the inference service
    asynchronously; mutation-type selection, insertion, removal and
    splicing are untouched, and until the prediction arrives argument
    mutations use the stock random localizer as a fallback. *)

val guided_mutants :
  Sp_util.Rng.t ->
  Sp_mutation.Engine.t ->
  Sp_syzlang.Prog.t ->
  Sp_syzlang.Prog.path list ->
  per_arg:int ->
  Sp_fuzz.Strategy.proposal list
(** Instantiate-and-propose on PMM-predicted locations: [per_arg] mutants
    per predicted argument, each mutating 1-2 of the predicted paths. *)

val pick_targets :
  Sp_util.Rng.t ->
  Sp_kernel.Kernel.t ->
  covered:Sp_util.Bitset.t ->
  Sp_fuzz.Corpus.entry ->
  max_targets:int ->
  int list
(** Desired-coverage targets for an undirected query: alternative path
    entries of the base test's coverage that the whole campaign has not
    covered yet, reduced to a deterministic pseudo-random subset of
    [max_targets] (determinism keeps the inference cache valid until the
    frontier changes). *)

type predictions
(** A shard strategy's delivered-prediction memo (base-program hash →
    predicted paths; bounded LRU, collision-guarded). Owned by exactly
    one strategy instance — never share one across shards. *)

val make_predictions : unit -> predictions

val predictions_json : predictions -> Sp_obs.Json.t

val restore_predictions :
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  predictions ->
  Sp_obs.Json.t ->
  unit
(** Restore {!predictions_json} output (recency order and contents
    exactly). Raises [Sp_obs.Json.Decode.Error] on malformed input. *)

val strategy_with :
  ?mutations_per_base:int ->
  ?max_targets:int ->
  ?insertion:Insertion.t ->
  ?predictions:predictions ->
  ?degraded:(unit -> bool) ->
  endpoint:Inference.endpoint ->
  Sp_kernel.Kernel.t ->
  Sp_fuzz.Strategy.t
(** Like {!strategy}, but against any {!Inference.endpoint} — in parallel
    campaigns each shard's strategy is built over its {!Funnel.endpoint}
    view of one shared service. Every instance owns its prediction memo
    (a private one unless [predictions] hands it one to make it
    snapshot-persistable), so instances never share mutable state.

    [degraded] (default [fun () -> false]) is polled once per propose;
    while [true] the strategy skips target selection and inference
    requests entirely, mutating from already-delivered predictions and
    the stock random localizer — the fallback used while a
    {!Funnel.lane_degraded} breaker is open. The hint must be
    deterministic (e.g. a barrier-written flag), or reproducibility is
    forfeit. *)

val strategy :
  ?mutations_per_base:int ->
  ?max_targets:int ->
  ?insertion:Insertion.t ->
  inference:Inference.t ->
  Sp_kernel.Kernel.t ->
  Sp_fuzz.Strategy.t
(** The Snowplow strategy (throughput factor 383/390, §5.5): Syzkaller's
    engine with PMM substituted as the argument-mutation localizer.
    Defaults: 8 mutations per base, 40 targets per query. Until a base
    test's asynchronous prediction is delivered, argument mutations fall
    back to the stock random localizer. Passing [insertion] additionally
    draws inserted calls from the learned insertion model's top
    predictions (the §6 extension) instead of uniformly. *)
