module Rng = Sp_util.Rng
module Token = Sp_kernel.Token
module Ty = Sp_syzlang.Ty
module Prog = Sp_syzlang.Prog
module Ad = Sp_ml.Ad
module Nn = Sp_ml.Nn
module Tensor = Sp_ml.Tensor
module Workspace = Sp_ml.Workspace

type config = {
  hidden : int;
  layers : int;
  pos_weight : float;
  share_relations : bool;
      (* ablation: one message weight for all edge types (untyped GCN) *)
  seed : int;
}

let default_config =
  { hidden = 24; layers = 4; pos_weight = 6.0; share_relations = false; seed = 23 }

let num_node_kinds = 5

let num_relations = 2 * Query_graph.num_edge_kinds (* each kind, both directions *)

type t = {
  cfg : config;
  block_proj : Nn.Linear.t;  (* encoder_dim -> hidden *)
  sys_emb : Nn.Embedding.t;
  kind_emb : Nn.Embedding.t;
  sig_emb : Nn.Embedding.t;
  nodekind_emb : Nn.Embedding.t;
  rel : Nn.Linear.t array;  (* per relation, tied across layers *)
  self_map : Nn.Linear.t;
  head : Nn.Linear.t;
  (* target-conditioned head: a dot-product interaction between argument
     embeddings and the pooled target embedding, so the model can *match*
     an argument's type signature against the signature the desired
     branch tests (a sum of linear messages cannot express equality) *)
  wq_t : Nn.Linear.t;
  wk_t : Nn.Linear.t;
  ws : Workspace.t;  (* arena for inference temporaries; single-domain *)
  mutable thresh : float;
}

let kind_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i k -> Hashtbl.add tbl k i) Ty.all_kind_tokens;
  fun k -> match Hashtbl.find_opt tbl k with Some i -> i | None -> 0

let create ?(config = default_config) ~encoder_dim ~num_syscalls () =
  let rng = Rng.create config.seed in
  let d = config.hidden in
  {
    cfg = config;
    block_proj = Nn.Linear.create rng encoder_dim d;
    sys_emb = Nn.Embedding.create rng ~vocab:(max 1 num_syscalls) ~dim:d;
    kind_emb = Nn.Embedding.create rng ~vocab:(List.length Ty.all_kind_tokens) ~dim:d;
    sig_emb = Nn.Embedding.create rng ~vocab:Token.num_opsig_buckets ~dim:d;
    nodekind_emb = Nn.Embedding.create rng ~vocab:num_node_kinds ~dim:d;
    rel =
      (if config.share_relations then begin
         let shared = Nn.Linear.create ~bias:false rng d d in
         Array.make num_relations shared
       end
       else Array.init num_relations (fun _ -> Nn.Linear.create ~bias:false rng d d));
    self_map = Nn.Linear.create rng d d;
    head = Nn.Linear.create rng d 1;
    wq_t = Nn.Linear.create ~bias:false rng d d;
    wk_t = Nn.Linear.create ~bias:false rng d d;
    ws = Workspace.create ();
    thresh = 0.5;
  }

let config t = t.cfg

let workspace t = t.ws

(* A stripe worker's view of the model: parameter *values* are shared
   with [t] (the tensors are physically the same, so optimizer updates
   through the primary are immediately visible), while gradient slots
   are private to the clone — each training stripe accumulates its own
   gradients, reduced deterministically by the trainer. The workspace is
   fresh (arenas are single-domain). With [share_relations] the single
   underlying relation map is cloned exactly once, mirroring the
   primary's sharing — distinct clones per slot would split its gradient
   across nodes the trainer never visits. *)
let clone_shared t =
  {
    cfg = t.cfg;
    block_proj = Nn.Linear.clone_shared t.block_proj;
    sys_emb = Nn.Embedding.clone_shared t.sys_emb;
    kind_emb = Nn.Embedding.clone_shared t.kind_emb;
    sig_emb = Nn.Embedding.clone_shared t.sig_emb;
    nodekind_emb = Nn.Embedding.clone_shared t.nodekind_emb;
    rel =
      (if t.cfg.share_relations then
         Array.make num_relations (Nn.Linear.clone_shared t.rel.(0))
       else Array.map Nn.Linear.clone_shared t.rel);
    self_map = Nn.Linear.clone_shared t.self_map;
    head = Nn.Linear.clone_shared t.head;
    wq_t = Nn.Linear.clone_shared t.wq_t;
    wk_t = Nn.Linear.clone_shared t.wk_t;
    ws = Workspace.create ();
    thresh = t.thresh;
  }

let params t =
  let rels =
    if t.cfg.share_relations then Nn.Linear.params t.rel.(0)
    else List.concat_map Nn.Linear.params (Array.to_list t.rel)
  in
  Nn.Linear.params t.block_proj @ Nn.Embedding.params t.sys_emb
  @ Nn.Embedding.params t.kind_emb @ Nn.Embedding.params t.sig_emb
  @ Nn.Embedding.params t.nodekind_emb @ rels
  @ Nn.Linear.params t.self_map @ Nn.Linear.params t.head
  @ Nn.Linear.params t.wq_t @ Nn.Linear.params t.wk_t

let num_parameters t = Nn.num_parameters (params t)

let threshold t = t.thresh

let set_threshold t th = t.thresh <- th

(* ------------------------------------------------------------------ *)
(* Graph preprocessing                                                  *)
(* ------------------------------------------------------------------ *)

type relation = {
  usrc : int array;  (* unique source node ids *)
  csrc : int array;  (* per-edge index into [usrc] *)
  dst : int array;
  coef : float array;
}

type prepared = {
  n : int;
  nodekind_idx : int array;
  sys_pos : int array;  (* node index of each syscall node *)
  sys_ids : int array;
  arg_pos : int array;
  arg_kinds : int array;
  arg_sigs : int array;
  block_pos : int array;
  block_ids : int array;
  relations : relation array;
  tgt_pos : int array;  (* node indices of target nodes *)
  (* per-call pooling of the covered blocks whose not-taken branch leads to
     a target inside that call's handler: the blocks whose content encodes
     what the desired branch tests *)
  via_src : int array;  (* node index of a target's via block *)
  via_call : int array;  (* the call slot it pools into *)
  via_coef : float array;
  n_calls : int;
  arg_call : int array;  (* per argument node, its call slot *)
  paths : Prog.path array;  (* aligned with arg_pos *)
}

let node_kind_id (node : Query_graph.node) =
  match node with
  | Query_graph.Syscall _ -> 0
  | Query_graph.Arg _ -> 1
  | Query_graph.Covered_block _ -> 2
  | Query_graph.Alt_block _ -> 3
  | Query_graph.Target_block _ -> 4

let prepare (g : Query_graph.t) =
  let n = Array.length g.Query_graph.nodes in
  let nodekind_idx = Array.map node_kind_id g.Query_graph.nodes in
  (* (via block, call slot) pairs through each target: via --cf_frontier-->
     target <--handler-- call. *)
  let call_slot_of_node = Hashtbl.create 16 in
  Array.iteri
    (fun i node ->
      match node with
      | Query_graph.Syscall { call; _ } -> Hashtbl.replace call_slot_of_node i call
      | _ -> ())
    g.Query_graph.nodes;
  let vias_of_target = Hashtbl.create 16 and calls_of_target = Hashtbl.create 16 in
  Array.iter
    (fun (src, dst, kind) ->
      if kind = Query_graph.Cf_frontier && nodekind_idx.(dst) = 4 then
        Hashtbl.add vias_of_target dst src
      else if kind = Query_graph.Handler && nodekind_idx.(dst) = 4 then
        match Hashtbl.find_opt call_slot_of_node src with
        | Some slot -> Hashtbl.add calls_of_target dst slot
        | None -> ())
    g.Query_graph.edges;
  let via_pairs =
    Hashtbl.fold
      (fun tgt via acc ->
        List.fold_left
          (fun acc slot -> (via, slot) :: acc)
          acc
          (Hashtbl.find_all calls_of_target tgt))
      vias_of_target []
    |> List.sort_uniq compare
  in
  let sys = ref [] and args = ref [] and blocks = ref [] in
  Array.iteri
    (fun i node ->
      match node with
      | Query_graph.Syscall { sys_id; _ } -> sys := (i, sys_id) :: !sys
      | Query_graph.Arg { kind; detail_sig; path; _ } ->
        args := (i, kind_index kind, detail_sig, path) :: !args
      | Query_graph.Covered_block b | Query_graph.Alt_block b
      | Query_graph.Target_block b ->
        blocks := (i, b) :: !blocks)
    g.Query_graph.nodes;
  let sys = Array.of_list (List.rev !sys) in
  let args = Array.of_list (List.rev !args) in
  let blocks = Array.of_list (List.rev !blocks) in
  (* Per-relation edge arrays: forward relation r, reverse relation r +
     num_edge_kinds. Coefficients normalize by destination in-degree. *)
  let buckets = Array.make num_relations [] in
  Array.iter
    (fun (src, dst, kind) ->
      let k = Query_graph.edge_kind_index kind in
      buckets.(k) <- (src, dst) :: buckets.(k);
      buckets.(k + Query_graph.num_edge_kinds) <-
        (dst, src) :: buckets.(k + Query_graph.num_edge_kinds))
    g.Query_graph.edges;
  let relations =
    Array.map
      (fun pairs ->
        let pairs = Array.of_list pairs in
        let indeg = Hashtbl.create 64 in
        Array.iter
          (fun (_, d) ->
            Hashtbl.replace indeg d
              (1 + Option.value ~default:0 (Hashtbl.find_opt indeg d)))
          pairs;
        (* Compact the sources: messages are computed only for rows that
           actually send along this relation. *)
        let slot = Hashtbl.create 64 in
        let usrc_rev = ref [] and next = ref 0 in
        let csrc =
          Array.map
            (fun (s, _) ->
              match Hashtbl.find_opt slot s with
              | Some i -> i
              | None ->
                let i = !next in
                Hashtbl.add slot s i;
                usrc_rev := s :: !usrc_rev;
                incr next;
                i)
            pairs
        in
        {
          usrc = Array.of_list (List.rev !usrc_rev);
          csrc;
          dst = Array.map snd pairs;
          coef =
            Array.map
              (fun (_, d) -> 1.0 /. float_of_int (Hashtbl.find indeg d))
              pairs;
        })
      buckets
  in
  {
    n;
    nodekind_idx;
    sys_pos = Array.map fst sys;
    sys_ids = Array.map snd sys;
    arg_pos = Array.map (fun (i, _, _, _) -> i) args;
    arg_kinds = Array.map (fun (_, k, _, _) -> k) args;
    arg_sigs = Array.map (fun (_, _, s, _) -> s) args;
    block_pos = Array.map fst blocks;
    block_ids = Array.map snd blocks;
    relations;
    tgt_pos =
      (let acc = ref [] in
       Array.iteri (fun i k -> if k = 4 then acc := i :: !acc) nodekind_idx;
       Array.of_list (List.rev !acc));
    via_src = Array.of_list (List.map fst via_pairs);
    via_call = Array.of_list (List.map snd via_pairs);
    via_coef =
      (let deg = Hashtbl.create 8 in
       List.iter
         (fun (_, slot) ->
           Hashtbl.replace deg slot
             (1 + Option.value ~default:0 (Hashtbl.find_opt deg slot)))
         via_pairs;
       Array.of_list
         (List.map
            (fun (_, slot) -> 1.0 /. float_of_int (Hashtbl.find deg slot))
            via_pairs));
    n_calls = Array.length sys;
    arg_call = Array.map (fun (_, _, _, (p : Prog.path)) -> p.Prog.call) args;
    paths = Array.map (fun (_, _, _, p) -> p) args;
  }

let prepared_paths p = p.paths

(* ------------------------------------------------------------------ *)
(* Forward                                                              *)
(* ------------------------------------------------------------------ *)

(* Scatter category rows (one per category element) into an n-row tensor at
   the category's node positions, expressed as a sparse product so autodiff
   handles the backward pass. *)
let scatter ~n ~pos x =
  let k = Array.length pos in
  Ad.spmm ~src:(Array.init k Fun.id) ~dst:pos ~coef:(Array.make k 1.0) ~rows:n x

let node_features t ~block_embs (p : prepared) =
  let base = Nn.Embedding.lookup t.nodekind_emb p.nodekind_idx in
  let parts = ref base in
  if Array.length p.sys_pos > 0 then
    parts :=
      Ad.add !parts
        (scatter ~n:p.n ~pos:p.sys_pos (Nn.Embedding.lookup t.sys_emb p.sys_ids));
  if Array.length p.arg_pos > 0 then begin
    let arg_feat =
      Ad.add
        (Nn.Embedding.lookup t.kind_emb p.arg_kinds)
        (Nn.Embedding.lookup t.sig_emb p.arg_sigs)
    in
    parts := Ad.add !parts (scatter ~n:p.n ~pos:p.arg_pos arg_feat)
  end;
  if Array.length p.block_pos > 0 then begin
    let rows = Ad.gather_rows (Ad.const block_embs) p.block_ids in
    let projected = Nn.Linear.apply t.block_proj rows in
    parts := Ad.add !parts (scatter ~n:p.n ~pos:p.block_pos projected)
  end;
  !parts

let layer t (p : prepared) h =
  let acc = ref (Nn.Linear.apply t.self_map h) in
  Array.iteri
    (fun r { usrc; csrc; dst; coef } ->
      if Array.length csrc > 0 then begin
        let msg = Nn.Linear.apply t.rel.(r) (Ad.gather_rows h usrc) in
        acc := Ad.add !acc (Ad.spmm ~src:csrc ~dst ~coef ~rows:p.n msg)
      end)
    p.relations;
  Ad.relu !acc

let forward_nodes t p h0 =
  let h = ref h0 in
  for _ = 1 to t.cfg.layers do
    h := layer t p !h
  done;
  !h

let row_sums x d =
  (* n x d -> n x 1 *)
  Ad.matmul x (Ad.const (Tensor.make d 1 1.0))

let forward_logits t ~block_embs p =
  let h0 = node_features t ~block_embs p in
  let h = forward_nodes t p h0 in
  let h_args = Ad.gather_rows h p.arg_pos in
  let logits = Nn.Linear.apply t.head h_args in
  (* Per-call target-conditioned interaction on the raw (layer-0)
     features: pool, for each call, the covered blocks whose not-taken
     branch reaches a target inside that call's handler, then dot every
     argument's raw features against its own call's pool. This lets one
     bilinear form express the conjunction "my type signature matches what
     the desired branch tests AND the target is in my call's handler". *)
  if Array.length p.via_src = 0 then logits
  else begin
    let pooled =
      Ad.spmm ~src:p.via_src ~dst:p.via_call ~coef:p.via_coef ~rows:p.n_calls h0
    in
    let q = Nn.Linear.apply t.wq_t (Ad.gather_rows h0 p.arg_pos) in
    let kv = Ad.gather_rows (Nn.Linear.apply t.wk_t pooled) p.arg_call in
    let inter =
      Ad.scale (1.0 /. sqrt (float_of_int t.cfg.hidden))
        (row_sums (Ad.mul q kv) t.cfg.hidden)
    in
    Ad.add logits inter
  end

let loss t ~block_embs p ~labels =
  if Array.length labels <> Array.length p.arg_pos then
    invalid_arg "Pmm.loss: label length mismatch";
  let logits = forward_logits t ~block_embs p in
  let mask =
    Array.map (fun l -> if l > 0.5 then t.cfg.pos_weight else 1.0) labels
  in
  Ad.bce_with_logits logits ~targets:labels ~mask

(* ------------------------------------------------------------------ *)
(* Inference                                                            *)
(* ------------------------------------------------------------------ *)

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

(* ------------------------------------------------------------------ *)
(* Tape-free inference                                                  *)
(* ------------------------------------------------------------------ *)

(* The fuzzing loop calls inference tens of thousands of times per
   campaign; this path replays the forward computation with raw tensor
   operations and no autodiff bookkeeping (~4x faster, bit-identical). *)

let add_rows_into ~(dst : Tensor.t) ~pos (src : Tensor.t) =
  let _, d = Tensor.dims src in
  Array.iteri
    (fun i node ->
      for j = 0 to d - 1 do
        Tensor.set dst node j (Tensor.get dst node j +. Tensor.get src i j)
      done)
    pos

let gather (x : Tensor.t) idx =
  let _, d = Tensor.dims x in
  let out = Tensor.create (Array.length idx) d in
  Array.iteri
    (fun i r ->
      for j = 0 to d - 1 do
        Tensor.set out i j (Tensor.get x r j)
      done)
    idx;
  out

let emb_rows table idx = gather table idx

let linear lin x =
  let y = Tensor.matmul x (Nn.Linear.weight lin) in
  (match Nn.Linear.bias lin with
  | Some b -> Tensor.add_into ~dst:y b
  | None -> ());
  y

let infer_features t ~block_embs (p : prepared) =
  let x0 = emb_rows (Nn.Embedding.table t.nodekind_emb) p.nodekind_idx in
  if Array.length p.sys_pos > 0 then
    add_rows_into ~dst:x0 ~pos:p.sys_pos
      (emb_rows (Nn.Embedding.table t.sys_emb) p.sys_ids);
  if Array.length p.arg_pos > 0 then begin
    let kinds = emb_rows (Nn.Embedding.table t.kind_emb) p.arg_kinds in
    Tensor.add_into ~dst:kinds (emb_rows (Nn.Embedding.table t.sig_emb) p.arg_sigs);
    add_rows_into ~dst:x0 ~pos:p.arg_pos kinds
  end;
  if Array.length p.block_pos > 0 then
    add_rows_into ~dst:x0 ~pos:p.block_pos
      (linear t.block_proj (gather block_embs p.block_ids));
  x0

let infer_layer t (p : prepared) h =
  let acc = linear t.self_map h in
  Array.iteri
    (fun r { usrc; csrc; dst; coef } ->
      if Array.length csrc > 0 then begin
        let msg = linear t.rel.(r) (gather h usrc) in
        let _, d = Tensor.dims msg in
        Array.iteri
          (fun e node ->
            let src_row = csrc.(e) and c = coef.(e) in
            for j = 0 to d - 1 do
              Tensor.set acc node j
                (Tensor.get acc node j +. (c *. Tensor.get msg src_row j))
            done)
          dst
      end)
    p.relations;
  let n, d = Tensor.dims acc in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      if Tensor.get acc i j < 0.0 then Tensor.set acc i j 0.0
    done
  done;
  acc

let infer_logits t ~block_embs (p : prepared) =
  let h0 = infer_features t ~block_embs p in
  let h = ref h0 in
  for _ = 1 to t.cfg.layers do
    h := infer_layer t p !h
  done;
  let h_args = gather !h p.arg_pos in
  let logits = linear t.head h_args in
  if Array.length p.via_src > 0 then begin
    let pooled = Tensor.create p.n_calls t.cfg.hidden in
    Array.iteri
      (fun e node ->
        let c = p.via_coef.(e) in
        for j = 0 to t.cfg.hidden - 1 do
          Tensor.set pooled p.via_call.(e) j
            (Tensor.get pooled p.via_call.(e) j +. (c *. Tensor.get h0 node j))
        done)
      p.via_src;
    let q = linear t.wq_t (gather h0 p.arg_pos) in
    let kv = gather (linear t.wk_t pooled) p.arg_call in
    let scale = 1.0 /. sqrt (float_of_int t.cfg.hidden) in
    for i = 0 to Array.length p.arg_pos - 1 do
      let dot = ref 0.0 in
      for j = 0 to t.cfg.hidden - 1 do
        dot := !dot +. (Tensor.get q i j *. Tensor.get kv i j)
      done;
      Tensor.set logits i 0 (Tensor.get logits i 0 +. (scale *. !dot))
    done
  end;
  logits

let predict_scores t ~block_embs g =
  (* One self-contained workspace generation: every tensor temporary of
     the tape-free forward pass draws from (and is recycled into) the
     model's arena; only paths and float scores escape. *)
  Workspace.scoped t.ws (fun () ->
      let p = prepare g in
      let logits = infer_logits t ~block_embs p in
      List.init (Array.length p.paths) (fun i ->
          (p.paths.(i), sigmoid (Tensor.get logits i 0))))

let mutable_path (g : Query_graph.t) =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      match node with
      | Query_graph.Arg { path; mutable_node; _ } ->
        Hashtbl.replace tbl (path.Prog.call, path.Prog.arg) mutable_node
      | _ -> ())
    g.Query_graph.nodes;
  fun (path : Prog.path) ->
    Option.value ~default:false
      (Hashtbl.find_opt tbl (path.Prog.call, path.Prog.arg))

let predict t ~block_embs g =
  let is_mutable = mutable_path g in
  let scores =
    List.filter (fun (p, _) -> is_mutable p) (predict_scores t ~block_embs g)
  in
  match List.filter (fun (_, s) -> s >= t.thresh) scores with
  | [] -> (
    match
      List.fold_left
        (fun best (p, s) ->
          match best with
          | Some (_, bs) when bs >= s -> best
          | _ -> Some (p, s))
        None scores
    with
    | Some (p, _) -> [ p ]
    | None -> [])
  | picked -> List.map fst picked

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)
(* ------------------------------------------------------------------ *)

(* The decision threshold travels with the weights as a final 1x1 slot. *)
let with_threshold_slot t =
  params t @ [ Ad.param (Tensor.of_array ~rows:1 ~cols:1 [| t.thresh |]) ]

let save t path =
  Sp_ml.Serialize.params_to_file path (with_threshold_slot t)

let load t path =
  let slot = Ad.param (Tensor.create 1 1) in
  match Sp_ml.Serialize.params_from_file path (params t @ [ slot ]) with
  | Error _ as e -> e
  | Ok () ->
    t.thresh <- Tensor.get (Ad.value slot) 0 0;
    Ok ()
