(* JSON codecs for the snowplow-layer snapshot state (inference service,
   funnel, prediction caches). Programs travel as their canonical text —
   the same convention as the campaign snapshots — and cache keys as
   int64 hex strings, because [Inference.targets_key] mixes hashes past
   the float-exact integer range. *)

module Json = Sp_obs.Json
module Prog = Sp_syzlang.Prog

let prog_to_json p = Json.Str (Prog.to_string p)

let prog_of_json ~parse name j =
  match j with
  | Json.Str s -> (
    match parse s with
    | Ok p -> p
    | Error msg -> Json.Decode.error "%s: %s" name msg)
  | _ -> Json.Decode.error "%s: expected a program string" name

let path_to_json (p : Prog.path) =
  Json.Obj
    [ ("call", Json.Num (float_of_int p.Prog.call));
      ( "arg",
        Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) p.Prog.arg) )
    ]

let path_of_json j =
  let open Json.Decode in
  {
    Prog.call = int_field "call" j;
    arg =
      List.map
        (function
          | Json.Num f when Float.is_integer f -> int_of_float f
          | _ -> error "path arg: expected integers")
        (arr_field "arg" j);
  }

let paths_to_json ps = Json.Arr (List.map path_to_json ps)

let paths_of_json j =
  match j with
  | Json.Arr items -> List.map path_of_json items
  | _ -> Json.Decode.error "paths: expected array"

let key_to_json k = Json.Decode.int64_to_json (Int64.of_int k)

let key_of_json name j =
  match j with
  | Json.Str _ ->
    (* [Decode.int64_field] is the only int64 reader; borrow it through
       a one-field wrapper object. *)
    Int64.to_int (Json.Decode.int64_field "key" (Json.Obj [ ("key", j) ]))
  | _ -> Json.Decode.error "%s: expected an int64 hex string" name

let int_list_to_json xs =
  Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) xs)

let int_list_of_json name j =
  match j with
  | Json.Arr items ->
    List.map
      (function
        | Json.Num f when Float.is_integer f -> int_of_float f
        | _ -> Json.Decode.error "%s: expected integers" name)
      items
  | _ -> Json.Decode.error "%s: expected array" name

(* An LRU cache as a JSON array, most recently used first, each element
   [{"key", "written_at", "value"}]. Restoring re-puts oldest-first with
   [~now:written_at], which reconstructs both the recency order and the
   TTL stamps exactly. *)
let lru_to_json ~key_to_json ~value_to_json lru =
  Json.Arr
    (List.map
       (fun (k, v, written_at) ->
         Json.Obj
           [ ("key", key_to_json k);
             ("written_at", Json.Num written_at);
             ("value", value_to_json v)
           ])
       (Sp_util.Lru.to_list lru))

let lru_restore ~key_of_json ~value_of_json lru j =
  let open Json.Decode in
  match j with
  | Json.Arr items ->
    Sp_util.Lru.clear lru;
    List.iter
      (fun it ->
        let k = key_of_json (field "key" it) in
        let written_at = num_field "written_at" it in
        let v = value_of_json (field "value" it) in
        Sp_util.Lru.put lru ~now:written_at k v)
      (List.rev items)
  | _ -> error "lru: expected array"
