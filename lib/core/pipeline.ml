module Rng = Sp_util.Rng
module Kernel = Sp_kernel.Kernel
module Spec = Sp_syzlang.Spec
module Prog = Sp_syzlang.Prog

type config = {
  kernel_seed : int;
  train_version : string;
  gen_bases : int;
  corpus_bases : int;
  warmup_duration : float;
  dataset : Dataset.config;
  encoder : Encoder.config;
  pmm : Pmm.config;
  trainer : Trainer.config;
}

let default_config =
  {
    kernel_seed = 7;
    train_version = "6.8";
    gen_bases = 80;
    corpus_bases = 120;
    warmup_duration = 3600.0;
    dataset = Dataset.default_config;
    encoder = Encoder.default_config;
    pmm = Pmm.default_config;
    trainer = Trainer.default_config;
  }

type t = {
  config : config;
  kernel : Kernel.t;
  bases : Prog.t list;
  split : Dataset.split;
  encoder : Encoder.t;
  block_embs : Sp_ml.Tensor.t;
  model : Pmm.t;
  history : Trainer.progress list;
}

(* Base tests: random generation plus entries evolved by a short Syzkaller
   warm-up — like the paper's Syzbot corpus, the training distribution must
   include the mutated, resource-wired programs a fuzzing loop actually
   mutates, not just freshly generated ones. *)
let collect_bases config kernel =
  let db = Kernel.spec_db kernel in
  let rng = Rng.create (config.kernel_seed lxor 0xba5e) in
  let gen_bases = Sp_syzlang.Gen.corpus rng db ~size:config.gen_bases in
  if config.corpus_bases = 0 then gen_bases
  else begin
    let warm_cfg =
      {
        Sp_fuzz.Campaign.default_config with
        seed_corpus = gen_bases;
        seed = config.kernel_seed lxor 0x3a3;
        duration = config.warmup_duration;
      }
    in
    let vm = Sp_fuzz.Vm.create ~seed:(config.kernel_seed lxor 0x77) kernel in
    let warm =
      Sp_fuzz.Campaign.run vm (Sp_fuzz.Strategy.syzkaller db) warm_cfg
    in
    let corpus_bases =
      Sp_fuzz.Corpus.entries warm.Sp_fuzz.Campaign.corpus
      |> List.map (fun (e : Sp_fuzz.Corpus.entry) -> e.Sp_fuzz.Corpus.prog)
      |> List.filteri (fun i _ -> i < config.corpus_bases)
    in
    gen_bases @ corpus_bases
  end

let train ?(config = default_config) ?(tracer = Sp_obs.Tracer.null)
    ?(tracer_for = fun _ -> Sp_obs.Tracer.null) () =
  let kernel =
    Kernel.linux_like ~seed:config.kernel_seed ~version:config.train_version
  in
  let span name f = Sp_obs.Tracer.span tracer name f in
  let bases = span "pipeline.collect_bases" (fun () -> collect_bases config kernel) in
  let split =
    span "pipeline.dataset" (fun () ->
        Dataset.collect ~config:config.dataset kernel ~bases)
  in
  let encoder =
    span "pipeline.pretrain" (fun () -> Encoder.pretrain ~config:config.encoder kernel)
  in
  let block_embs = Encoder.embed_kernel encoder kernel in
  let model =
    Pmm.create ~config:config.pmm ~encoder_dim:(Encoder.dim encoder)
      ~num_syscalls:(Spec.count (Kernel.spec_db kernel))
      ()
  in
  let history =
    Trainer.train ~config:config.trainer ~tracer ~tracer_for model ~block_embs
      ~train:split.Dataset.train ~valid:split.Dataset.valid
  in
  { config; kernel; bases; split; encoder; block_embs; model; history }

let kernel_version t version =
  if version = t.config.train_version then t.kernel
  else Kernel.linux_like ~seed:t.config.kernel_seed ~version

let embeddings_for t kernel =
  if Kernel.version kernel = t.config.train_version then t.block_embs
  else Encoder.embed_kernel t.encoder kernel

let inference_for ?latency ?capacity_qps ?cache_capacity ?tracer t kernel =
  Inference.create ?latency ?capacity_qps ?cache_capacity ?tracer ~kernel
    ~block_embs:(embeddings_for t kernel) t.model

let eval_scores t = Trainer.evaluate t.model ~block_embs:t.block_embs t.split.Dataset.eval

let rand_baseline t ~k =
  Trainer.random_baseline ~k ~seed:(t.config.kernel_seed lxor 0xabc)
    t.split.Dataset.eval
