module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog
module Fqueue = Sp_util.Fqueue
module Lru = Sp_util.Lru
module Metrics = Sp_util.Metrics
module Tracer = Sp_obs.Tracer

type pending = {
  ready_at : float;
  requested_at : float;
  prog : Prog.t;
  prediction : Prog.path list;
  from_cache : bool;
  tag : int;  (* tenant id under the scheduler; 0 for solo campaigns *)
  targets : int list;
      (* sorted; recorded only on [?record_targets] requests so the
         degraded funnel can re-issue a cancelled request — [] otherwise,
         and omitted from snapshots when empty, keeping unarmed snapshots
         byte-identical *)
}

(* Cache values carry the program (and target set) they were computed for:
   keys are int hashes, and two distinct queries may collide, so a hit is
   only a hit after a structural check. *)
type cached = {
  src_prog : Prog.t;
  src_targets : int list;  (* sorted; [] for the per-program soft memo *)
  answer : Prog.path list;
}

type t = {
  latency : float;
  capacity_qps : float;
  max_pending : int;
  kernel : Kernel.t;
  block_embs : Sp_ml.Tensor.t;
  model : Pmm.t;
  queue : pending Fqueue.t;  (* oldest first *)
  mutable next_free : float;
  mutable served : int;
  mutable dropped : int;
  mutable cache_hits : int;
  mutable cancelled : int;  (* requests removed by [cancel_overdue] *)
  mutable latency_sum : float;
  cache : (int, cached) Lru.t;
  (* secondary memo per base test: a recent answer for the same base with a
     slightly different target set is close enough while fresh *)
  by_prog : (int, cached) Lru.t;
  (* per-tenant accounting under the scheduler: tag -> counters *)
  tag_stats : (int, tag_stats) Hashtbl.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
}

and tag_stats = {
  mutable ts_requests : int;
  mutable ts_served : int;
  mutable ts_cache_hits : int;
  mutable ts_dropped : int;
}

let create ?(latency = 0.69) ?(capacity_qps = 57.0) ?(max_pending = 16)
    ?(cache_ttl = 1800.0) ?(cache_capacity = 4096) ?metrics
    ?(tracer = Tracer.null) ~kernel ~block_embs model =
  {
    latency;
    capacity_qps;
    max_pending;
    kernel;
    block_embs;
    model;
    queue = Fqueue.create ();
    next_free = 0.0;
    served = 0;
    dropped = 0;
    cache_hits = 0;
    cancelled = 0;
    latency_sum = 0.0;
    cache = Lru.create ~ttl:cache_ttl ~capacity:cache_capacity ();
    by_prog = Lru.create ~ttl:240.0 ~capacity:cache_capacity ();
    tag_stats = Hashtbl.create 8;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    tracer;
  }

let stats_for t tag =
  match Hashtbl.find_opt t.tag_stats tag with
  | Some s -> s
  | None ->
    let s = { ts_requests = 0; ts_served = 0; ts_cache_hits = 0; ts_dropped = 0 } in
    Hashtbl.add t.tag_stats tag s;
    s

let predict_now t prog ~targets =
  let result = Kernel.execute t.kernel prog in
  if result.Kernel.crash <> None then []
  else begin
    let graph = Query_graph.build t.kernel prog ~result ~targets in
    Pmm.predict t.model ~block_embs:t.block_embs graph
  end

let targets_key prog targets =
  List.fold_left
    (fun acc b -> (acc * 1000003) lxor b)
    (Prog.hash prog)
    (List.sort compare targets)

let lookup t ~now prog ~sorted_targets key =
  let confirmed ~check_targets = function
    | Some c
      when Prog.equal c.src_prog prog
           && ((not check_targets) || c.src_targets = sorted_targets) ->
      Some c.answer
    | Some _ ->
      (* A different query hashed onto this slot: a miss, not a hit. *)
      Metrics.incr t.metrics "inference.key_collisions";
      None
    | None -> None
  in
  match confirmed ~check_targets:true (Lru.find t.cache ~now key) with
  | Some answer -> Some answer
  | None ->
    confirmed ~check_targets:false (Lru.find t.by_prog ~now (Prog.hash prog))

let request t ?(tag = 0) ?(extra_latency = 0.0) ?(record_targets = false) ~now
    prog ~targets =
  Metrics.incr t.metrics "inference.requests";
  let ts = stats_for t tag in
  ts.ts_requests <- ts.ts_requests + 1;
  let sorted_targets = List.sort compare targets in
  let key = targets_key prog targets in
  let enqueue p ok = Fqueue.push t.queue p; ok in
  let full = Fqueue.length t.queue >= t.max_pending in
  match lookup t ~now prog ~sorted_targets key with
  | Some _ when full ->
    (* The bound applies to every admission: a memoized answer still
       occupies a pending slot until the fuzzer polls it. *)
    t.dropped <- t.dropped + 1;
    ts.ts_dropped <- ts.ts_dropped + 1;
    Metrics.incr t.metrics "inference.dropped";
    false
  | Some cached ->
    (* A recent answer for this base is reused without touching the
       service (the integration layer memoizes per base test). Zero
       service latency — counted as a hit, not as a served request. *)
    t.cache_hits <- t.cache_hits + 1;
    ts.ts_cache_hits <- ts.ts_cache_hits + 1;
    Metrics.incr t.metrics "inference.cache_hits";
    enqueue
      { ready_at = now; requested_at = now; prog; prediction = cached;
        from_cache = true; tag; targets = [] }
      true
  | None ->
    if full then begin
      t.dropped <- t.dropped + 1;
      ts.ts_dropped <- ts.ts_dropped + 1;
      Metrics.incr t.metrics "inference.dropped";
      false
    end
    else begin
      (* The service admits one query per 1/qps; each takes [latency] from
         admission to completion. *)
      let admitted = Float.max now t.next_free in
      t.next_free <- admitted +. (1.0 /. t.capacity_qps);
      (* [extra_latency] models a stalled backend (fault injection): the
         answer is computed but its delivery slides past the caller's
         timeout, so only [cancel_overdue] will ever reclaim the slot. *)
      let ready_at = admitted +. t.latency +. extra_latency in
      let prediction =
        Metrics.time t.metrics "inference.predict_cpu_s" (fun () ->
            predict_now t prog ~targets)
      in
      Metrics.incr t.metrics "inference.computed";
      Lru.put t.cache ~now key
        { src_prog = prog; src_targets = sorted_targets; answer = prediction };
      Lru.put t.by_prog ~now (Prog.hash prog)
        { src_prog = prog; src_targets = []; answer = prediction };
      enqueue
        { ready_at; requested_at = now; prog; prediction; from_cache = false;
          tag; targets = (if record_targets then sorted_targets else []) }
        true
    end

let poll_detailed t ?tag ~now () =
  let wanted p =
    p.ready_at <= now && match tag with None -> true | Some g -> p.tag = g
  in
  let ready = Fqueue.partition wanted t.queue in
  List.map
    (fun p ->
      let latency = if p.from_cache then 0.0 else p.ready_at -. p.requested_at in
      if not p.from_cache then begin
        (* Cache hits are delivered at zero latency; folding them into the
           service mean would deflate it. *)
        t.served <- t.served + 1;
        t.latency_sum <- t.latency_sum +. latency;
        let ts = stats_for t p.tag in
        ts.ts_served <- ts.ts_served + 1;
        Metrics.incr t.metrics "inference.served";
        Metrics.observe t.metrics "inference.latency_s" latency
      end;
      (p.prog, p.prediction, latency))
    ready

let poll t ?tag ~now () =
  List.map (fun (prog, prediction, _) -> (prog, prediction))
    (poll_detailed t ?tag ~now ())

let cancel_overdue t ?tag ~now ~older_than () =
  let overdue p =
    (match tag with None -> true | Some g -> p.tag = g)
    && p.ready_at > now
    && now -. p.requested_at >= older_than
  in
  let removed = Fqueue.partition overdue t.queue in
  List.map
    (fun p ->
      t.cancelled <- t.cancelled + 1;
      Metrics.incr t.metrics "inference.cancelled";
      (p.prog, p.targets))
    removed

let request_batch t ?tag ~now reqs =
  (* Batch flushes come from the barrier (main domain) — the same domain
     that created the service, so the tracer is single-writer. *)
  Tracer.span t.tracer "inference.batch" (fun () ->
      Metrics.incr t.metrics "inference.batches";
      Metrics.observe t.metrics "inference.batch_size"
        (float_of_int (List.length reqs));
      let accepted =
        List.fold_left
          (fun accepted (prog, targets) ->
            if request t ?tag ~now prog ~targets then accepted + 1
            else accepted)
          0 reqs
      in
      Tracer.counter t.tracer "inference.pending"
        (float_of_int (Fqueue.length t.queue));
      accepted)

type endpoint = {
  ep_request : now:float -> Prog.t -> targets:int list -> bool;
  ep_poll : now:float -> (Prog.t * Prog.path list) list;
}

let endpoint t =
  { ep_request = (fun ~now prog ~targets -> request t ~now prog ~targets);
    ep_poll = (fun ~now -> poll t ~now ()) }

let served t = t.served

let cancelled t = t.cancelled

let cache_hits t = t.cache_hits

let dropped t = t.dropped

let pending t = Fqueue.length t.queue

let cache_size t = Lru.length t.cache + Lru.length t.by_prog

let cache_capacity t = Lru.capacity t.cache + Lru.capacity t.by_prog

let metrics t = t.metrics

let mean_latency t =
  if t.served = 0 then 0.0 else t.latency_sum /. float_of_int t.served

let saturation_qps t = t.capacity_qps

let tenant_stats t ~tag =
  match Hashtbl.find_opt t.tag_stats tag with
  | None -> (0, 0, 0, 0)
  | Some s -> (s.ts_requests, s.ts_served, s.ts_cache_hits, s.ts_dropped)

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                       *)
(* ------------------------------------------------------------------ *)

module Json = Sp_obs.Json

let pending_to_json p =
  Json.Obj
    ([ ("ready_at", Json.Num p.ready_at);
       ("requested_at", Json.Num p.requested_at);
       ("prog", Codec.prog_to_json p.prog);
       ("prediction", Codec.paths_to_json p.prediction);
       ("from_cache", Json.Bool p.from_cache);
       ("tag", Json.Num (float_of_int p.tag))
     ]
    (* Emitted only when recorded, so snapshots of runs that never armed
       the degraded funnel stay byte-identical to the pre-fault format. *)
    @ (if p.targets = [] then []
       else [ ("targets", Codec.int_list_to_json p.targets) ]))

let pending_of_json ~parse j =
  let open Json.Decode in
  {
    ready_at = num_field "ready_at" j;
    requested_at = num_field "requested_at" j;
    prog = Codec.prog_of_json ~parse "pending prog" (field "prog" j);
    prediction = Codec.paths_of_json (field "prediction" j);
    from_cache = bool_field "from_cache" j;
    tag = int_field "tag" j;
    targets =
      (match Json.member "targets" j with
      | None -> []
      | Some tj -> Codec.int_list_of_json "targets" tj);
  }

let cached_to_json c =
  Json.Obj
    [ ("src_prog", Codec.prog_to_json c.src_prog);
      ("src_targets", Codec.int_list_to_json c.src_targets);
      ("answer", Codec.paths_to_json c.answer)
    ]

let cached_of_json ~parse j =
  let open Json.Decode in
  {
    src_prog = Codec.prog_of_json ~parse "cached prog" (field "src_prog" j);
    src_targets = Codec.int_list_of_json "src_targets" (field "src_targets" j);
    answer = Codec.paths_of_json (field "answer" j);
  }

let state_json t =
  let tag_stats =
    Hashtbl.fold (fun tag s acc -> (tag, s) :: acc) t.tag_stats []
    |> List.sort compare
    |> List.map (fun (tag, s) ->
           Json.Obj
             [ ("tag", Json.Num (float_of_int tag));
               ("requests", Json.Num (float_of_int s.ts_requests));
               ("served", Json.Num (float_of_int s.ts_served));
               ("cache_hits", Json.Num (float_of_int s.ts_cache_hits));
               ("dropped", Json.Num (float_of_int s.ts_dropped))
             ])
  in
  Json.Obj
    ([ ("next_free", Json.Num t.next_free);
      ("served", Json.Num (float_of_int t.served));
      ("dropped", Json.Num (float_of_int t.dropped));
      ("cache_hits", Json.Num (float_of_int t.cache_hits));
      ("latency_sum", Json.Num t.latency_sum);
      ("queue", Json.Arr (List.map pending_to_json (Fqueue.to_list t.queue)));
      ( "cache",
        Codec.lru_to_json ~key_to_json:Codec.key_to_json
          ~value_to_json:cached_to_json t.cache );
      ( "by_prog",
        Codec.lru_to_json ~key_to_json:Codec.key_to_json
          ~value_to_json:cached_to_json t.by_prog );
      ("tag_stats", Json.Arr tag_stats)
    ]
    (* Same conditional-emission rule as pending targets. *)
    @ (if t.cancelled = 0 then []
       else [ ("cancelled", Json.Num (float_of_int t.cancelled)) ]))

let restore_state t ~parse j =
  let open Json.Decode in
  t.next_free <- num_field "next_free" j;
  t.served <- int_field "served" j;
  t.dropped <- int_field "dropped" j;
  t.cache_hits <- int_field "cache_hits" j;
  t.cancelled <-
    (match Json.member "cancelled" j with
    | None -> 0
    | Some _ -> int_field "cancelled" j);
  t.latency_sum <- num_field "latency_sum" j;
  Fqueue.clear t.queue;
  List.iter
    (fun pj -> Fqueue.push t.queue (pending_of_json ~parse pj))
    (arr_field "queue" j);
  Codec.lru_restore
    ~key_of_json:(Codec.key_of_json "cache key")
    ~value_of_json:(cached_of_json ~parse) t.cache (field "cache" j);
  Codec.lru_restore
    ~key_of_json:(Codec.key_of_json "by_prog key")
    ~value_of_json:(cached_of_json ~parse) t.by_prog (field "by_prog" j);
  Hashtbl.reset t.tag_stats;
  List.iter
    (fun sj ->
      Hashtbl.replace t.tag_stats (int_field "tag" sj)
        {
          ts_requests = int_field "requests" sj;
          ts_served = int_field "served" sj;
          ts_cache_hits = int_field "cache_hits" sj;
          ts_dropped = int_field "dropped" sj;
        })
    (arr_field "tag_stats" j)
