module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog
module Fqueue = Sp_util.Fqueue
module Lru = Sp_util.Lru
module Metrics = Sp_util.Metrics
module Tracer = Sp_obs.Tracer

type pending = {
  ready_at : float;
  requested_at : float;
  prog : Prog.t;
  prediction : Prog.path list;
  from_cache : bool;
}

(* Cache values carry the program (and target set) they were computed for:
   keys are int hashes, and two distinct queries may collide, so a hit is
   only a hit after a structural check. *)
type cached = {
  src_prog : Prog.t;
  src_targets : int list;  (* sorted; [] for the per-program soft memo *)
  answer : Prog.path list;
}

type t = {
  latency : float;
  capacity_qps : float;
  max_pending : int;
  kernel : Kernel.t;
  block_embs : Sp_ml.Tensor.t;
  model : Pmm.t;
  queue : pending Fqueue.t;  (* oldest first *)
  mutable next_free : float;
  mutable served : int;
  mutable dropped : int;
  mutable cache_hits : int;
  mutable latency_sum : float;
  cache : (int, cached) Lru.t;
  (* secondary memo per base test: a recent answer for the same base with a
     slightly different target set is close enough while fresh *)
  by_prog : (int, cached) Lru.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
}

let create ?(latency = 0.69) ?(capacity_qps = 57.0) ?(max_pending = 16)
    ?(cache_ttl = 1800.0) ?(cache_capacity = 4096) ?metrics
    ?(tracer = Tracer.null) ~kernel ~block_embs model =
  {
    latency;
    capacity_qps;
    max_pending;
    kernel;
    block_embs;
    model;
    queue = Fqueue.create ();
    next_free = 0.0;
    served = 0;
    dropped = 0;
    cache_hits = 0;
    latency_sum = 0.0;
    cache = Lru.create ~ttl:cache_ttl ~capacity:cache_capacity ();
    by_prog = Lru.create ~ttl:240.0 ~capacity:cache_capacity ();
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    tracer;
  }

let predict_now t prog ~targets =
  let result = Kernel.execute t.kernel prog in
  if result.Kernel.crash <> None then []
  else begin
    let graph = Query_graph.build t.kernel prog ~result ~targets in
    Pmm.predict t.model ~block_embs:t.block_embs graph
  end

let targets_key prog targets =
  List.fold_left
    (fun acc b -> (acc * 1000003) lxor b)
    (Prog.hash prog)
    (List.sort compare targets)

let lookup t ~now prog ~sorted_targets key =
  let confirmed ~check_targets = function
    | Some c
      when Prog.equal c.src_prog prog
           && ((not check_targets) || c.src_targets = sorted_targets) ->
      Some c.answer
    | Some _ ->
      (* A different query hashed onto this slot: a miss, not a hit. *)
      Metrics.incr t.metrics "inference.key_collisions";
      None
    | None -> None
  in
  match confirmed ~check_targets:true (Lru.find t.cache ~now key) with
  | Some answer -> Some answer
  | None ->
    confirmed ~check_targets:false (Lru.find t.by_prog ~now (Prog.hash prog))

let request t ~now prog ~targets =
  Metrics.incr t.metrics "inference.requests";
  let sorted_targets = List.sort compare targets in
  let key = targets_key prog targets in
  let enqueue p ok = Fqueue.push t.queue p; ok in
  let full = Fqueue.length t.queue >= t.max_pending in
  match lookup t ~now prog ~sorted_targets key with
  | Some _ when full ->
    (* The bound applies to every admission: a memoized answer still
       occupies a pending slot until the fuzzer polls it. *)
    t.dropped <- t.dropped + 1;
    Metrics.incr t.metrics "inference.dropped";
    false
  | Some cached ->
    (* A recent answer for this base is reused without touching the
       service (the integration layer memoizes per base test). Zero
       service latency — counted as a hit, not as a served request. *)
    t.cache_hits <- t.cache_hits + 1;
    Metrics.incr t.metrics "inference.cache_hits";
    enqueue
      { ready_at = now; requested_at = now; prog; prediction = cached;
        from_cache = true }
      true
  | None ->
    if full then begin
      t.dropped <- t.dropped + 1;
      Metrics.incr t.metrics "inference.dropped";
      false
    end
    else begin
      (* The service admits one query per 1/qps; each takes [latency] from
         admission to completion. *)
      let admitted = Float.max now t.next_free in
      t.next_free <- admitted +. (1.0 /. t.capacity_qps);
      let ready_at = admitted +. t.latency in
      let prediction =
        Metrics.time t.metrics "inference.predict_cpu_s" (fun () ->
            predict_now t prog ~targets)
      in
      Metrics.incr t.metrics "inference.computed";
      Lru.put t.cache ~now key
        { src_prog = prog; src_targets = sorted_targets; answer = prediction };
      Lru.put t.by_prog ~now (Prog.hash prog)
        { src_prog = prog; src_targets = []; answer = prediction };
      enqueue
        { ready_at; requested_at = now; prog; prediction; from_cache = false }
        true
    end

let poll t ~now =
  let ready = Fqueue.partition (fun p -> p.ready_at <= now) t.queue in
  List.map
    (fun p ->
      if not p.from_cache then begin
        (* Cache hits are delivered at zero latency; folding them into the
           service mean would deflate it. *)
        t.served <- t.served + 1;
        t.latency_sum <- t.latency_sum +. (p.ready_at -. p.requested_at);
        Metrics.incr t.metrics "inference.served";
        Metrics.observe t.metrics "inference.latency_s" (p.ready_at -. p.requested_at)
      end;
      (p.prog, p.prediction))
    ready

let request_batch t ~now reqs =
  (* Batch flushes come from the barrier (main domain) — the same domain
     that created the service, so the tracer is single-writer. *)
  Tracer.span t.tracer "inference.batch" (fun () ->
      Metrics.incr t.metrics "inference.batches";
      Metrics.observe t.metrics "inference.batch_size"
        (float_of_int (List.length reqs));
      let accepted =
        List.fold_left
          (fun accepted (prog, targets) ->
            if request t ~now prog ~targets then accepted + 1 else accepted)
          0 reqs
      in
      Tracer.counter t.tracer "inference.pending"
        (float_of_int (Fqueue.length t.queue));
      accepted)

type endpoint = {
  ep_request : now:float -> Prog.t -> targets:int list -> bool;
  ep_poll : now:float -> (Prog.t * Prog.path list) list;
}

let endpoint t =
  { ep_request = (fun ~now prog ~targets -> request t ~now prog ~targets);
    ep_poll = (fun ~now -> poll t ~now) }

let served t = t.served

let cache_hits t = t.cache_hits

let dropped t = t.dropped

let pending t = Fqueue.length t.queue

let cache_size t = Lru.length t.cache + Lru.length t.by_prog

let cache_capacity t = Lru.capacity t.cache + Lru.capacity t.by_prog

let metrics t = t.metrics

let mean_latency t =
  if t.served = 0 then 0.0 else t.latency_sum /. float_of_int t.served

let saturation_qps t = t.capacity_qps
