(** Snapshot persistence for the snowplow strategy's out-of-campaign
    state.

    A campaign snapshot ([Sp_fuzz.Snapshot]) captures corpus, coverage
    and RNG state — everything a {e syzkaller} campaign needs to resume
    bit-for-bit. A {e snowplow} campaign additionally keeps live state in
    the inference service (pending queue, virtual clock, prediction
    caches), the funnel lanes and each shard strategy's prediction memo;
    {!aux} bundles those three into the snapshot's [aux] field
    ({!Sp_fuzz.Campaign.aux}) so a killed-and-resumed snowplow campaign
    also matches its uninterrupted run exactly. *)

val aux :
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  inference:Inference.t ->
  funnel:Funnel.t ->
  predictions:Hybrid.predictions array ->
  Sp_fuzz.Campaign.aux
(** [predictions.(s)] is shard [s]'s memo (the one passed to
    {!Hybrid.strategy_with}); for a scheduler tenant, the slice of memos
    for that tenant's shards. Restore raises [Sp_obs.Json.Decode.Error]
    on malformed input or a memo-count mismatch. *)
