(** Barrier-batched fan-in of shard inference requests.

    A parallel campaign runs one PMM inference service for all shards —
    the paper's single torchserve machine. Letting shards call the
    service mid-epoch would make admission order (and therefore the
    queue/cache state) depend on thread scheduling, so the funnel defers
    everything to the snapshot barrier: during an epoch each shard's
    {!endpoint} only appends requests to that shard's private outbox and
    drains predictions from that shard's private inbox — no cross-domain
    contention, no locks. At the barrier (on the main domain, via
    [Campaign.run_parallel ~on_barrier]) {!flush} forwards the outboxes
    to the service in shard order as one {!Inference.request_batch} and
    broadcasts every completed prediction to all inboxes, keeping the
    run bit-for-bit reproducible given [(seed, jobs)].

    Predictions are broadcast (rather than routed to the requesting
    shard) because shards frequently mutate the same corpus entries: a
    prediction for a base test is useful to every shard that holds it,
    and each shard's strategy memoizes by base-program hash anyway.

    {b Multi-tenancy.} {!create_multi} gives each of N campaigns its own
    lane — a private range of shard slots — over the single shared
    service. Requests are tagged with the tenant index
    ({!Inference.request_batch}'s [tag]) and {!flush_tenant} polls only
    that tag, so one tenant's barrier can never steal (or observe)
    another's completions: each tenant's prediction stream depends only
    on its own request history, never on the schedule. [create ~shards]
    is the one-tenant special case.

    {b Degradation.} With [degrade] armed, each tenant lane owns a
    {!Breaker} and a retry ledger: at every flush, requests older than
    [dg_timeout] are reclaimed from the service ({!Inference.cancel_overdue})
    and counted as breaker errors; reclaimed requests are re-sent after an
    exponential backoff (1, 2, 4... flushes) up to [dg_retries] extra
    attempts. While the breaker is not Closed the lane {e sheds} fresh
    requests (refusing them at the shard endpoints too, so {!Hybrid} falls
    back to history/random mutation) and sends at most one half-open
    probe per flush. All decisions run on the virtual clock and, under
    fault injection, on the deterministic plan — so degraded runs replay
    byte-identically. Lane state rides {!state_json} {e only once it has
    left the default} — an armed lane that never saw a fault snapshots
    byte-identically to an unarmed one. *)

type t

(** Per-tenant-lane degradation policy. *)
type degrade = {
  dg_timeout : float;
      (** virtual seconds before an undelivered request is reclaimed;
          must exceed the service's natural worst-case latency and stay
          well under the barrier interval *)
  dg_retries : int;  (** extra send attempts after the first *)
  dg_breaker : Breaker.config;
}

val default_degrade : degrade
(** 30 s timeout, 2 retries, {!Breaker.default_config}. *)

type lane_stats = {
  ls_state : string;  (** breaker state name *)
  ls_trips : int;
  ls_errors : int;  (** timeouts + injected request failures *)
  ls_shed : int;  (** fresh requests refused while not Closed *)
  ls_retries_pending : int;
}

val create :
  ?max_outbox:int ->
  ?tracer:Sp_obs.Tracer.t ->
  ?degrade:degrade ->
  ?faults:Sp_util.Faults.t ->
  ?events:Sp_obs.Events.t ->
  shards:int ->
  Inference.t ->
  t
(** [max_outbox] (default 64) bounds each shard's per-epoch outbox;
    requests beyond it are refused exactly like a full service queue.
    [tracer] (default disabled) records a [funnel.flush] span and a
    [funnel.batch_size] counter per {!flush}; it must be owned by the
    domain calling [flush] (the campaign's main domain). *)

val create_multi :
  ?max_outbox:int ->
  ?tracer:Sp_obs.Tracer.t ->
  ?degrade:degrade ->
  ?faults:Sp_util.Faults.t ->
  ?events:Sp_obs.Events.t ->
  tenant_shards:int array ->
  Inference.t ->
  t
(** One lane per tenant: [tenant_shards.(i)] is tenant [i]'s shard
    count. Raises [Invalid_argument] on an empty array or a shard count
    < 1.

    [degrade] (default off) arms the per-lane breaker/retry machinery.
    [faults] (default {!Sp_util.Faults.disabled}) arms injection sites,
    all suffixed with the tenant index: [funnel.flush@N] (the whole
    flush raises, [k] = per-tenant flush ordinal), [inference.request@N]
    (one send fails, counted as a breaker error) and
    [inference.timeout@N] (one send stalls past the lane deadline), the
    latter two at [k] = per-lane send ordinal. Send ordinals restart on
    resume — schedule entries address occurrences within one process.

    [events] (default {!Sp_obs.Events.null}) receives structured
    telemetry at barrier granularity: [breaker.transition] (a lane's
    breaker changed state — Warn when leaving closed, Info on recovery)
    and [funnel.reclaim] (stalled requests pulled back from the
    service, Warn). *)

val tenants : t -> int

val endpoint : t -> shard:int -> Inference.endpoint
(** [endpoint_for ~tenant:0]. *)

val endpoint_for : t -> tenant:int -> shard:int -> Inference.endpoint
(** The view handed to tenant [tenant]'s shard [shard]'s strategy. Must
    only be used from the domain running that shard — per-shard state is
    unsynchronized by design. *)

val flush : t -> now:float -> int
(** {!flush_tenant} for every tenant in index order; returns the total
    number of predictions delivered. *)

val flush_tenant : t -> tenant:int -> now:float -> int
(** Forward the tenant's outboxes (shard order) to the service as one
    tagged batch at virtual time [now], then poll the service for that
    tag only and broadcast completions to the tenant's inboxes. Returns
    the number of predictions delivered. Call at the tenant's barrier
    only — never while one of its epochs is running. *)

val requests_deferred : t -> int
(** Total requests accepted into outboxes so far. *)

val dropped : t -> int
(** Requests refused because an outbox was full. *)

val tenant_queue_depth : t -> tenant:int -> int
(** Work currently parked in the tenant's lane: queued outbox requests,
    undelivered inbox predictions, and (with degradation armed) retries
    awaiting their backoff. A live-depth gauge for telemetry; read it at
    barriers only, like {!flush_tenant}. *)

val tenant_deferred : t -> tenant:int -> int

val tenant_dropped : t -> tenant:int -> int
(** With degradation armed, also counts requests refused at the shard
    endpoints while the lane was degraded. *)

val lane_degraded : t -> tenant:int -> bool
(** [true] while the tenant's breaker is not Closed (as of its last
    flush); always [false] when [degrade] is off. Safe to read from the
    tenant's shard domains between barriers — it is only written at the
    tenant's own barrier. The natural [?degraded] hint for
    {!Hybrid.strategy_with}. *)

val lane_stats : t -> tenant:int -> now:float -> lane_stats option
(** [None] when [degrade] is off. A pure read ({!Breaker.peek}): it
    reports the state [now] implies but never commits the clocked
    Open -> Half_open transition, so the telemetry plane can sample any
    tenant's lane at any barrier without perturbing the state an
    unobserved run would persist. *)

val state_json : t -> Sp_obs.Json.t
(** In-flight lane state — outbox/inbox contents and the
    deferred/dropped counters — for campaign snapshots. The service's
    own state is {!Inference.state_json}, serialized separately (it is
    shared across tenants). With degradation armed, a [lanes] field
    (breaker state, retry ledger, attempt counts, per-tenant flush
    ordinals) is appended {e only once some lane has left its default
    state}; restoring requires the funnel to be armed the same way. *)

val restore_state :
  t -> parse:(string -> (Sp_syzlang.Prog.t, string) result) -> Sp_obs.Json.t -> unit
(** Restore {!state_json} output into a funnel of the same shape (same
    [tenant_shards]). Raises [Sp_obs.Json.Decode.Error] on malformed
    input or a slot-count mismatch. *)
