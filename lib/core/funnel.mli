(** Barrier-batched fan-in of shard inference requests.

    A parallel campaign runs one PMM inference service for all shards —
    the paper's single torchserve machine. Letting shards call the
    service mid-epoch would make admission order (and therefore the
    queue/cache state) depend on thread scheduling, so the funnel defers
    everything to the snapshot barrier: during an epoch each shard's
    {!endpoint} only appends requests to that shard's private outbox and
    drains predictions from that shard's private inbox — no cross-domain
    contention, no locks. At the barrier (on the main domain, via
    [Campaign.run_parallel ~on_barrier]) {!flush} forwards the outboxes
    to the service in shard order as one {!Inference.request_batch} and
    broadcasts every completed prediction to all inboxes, keeping the
    run bit-for-bit reproducible given [(seed, jobs)].

    Predictions are broadcast (rather than routed to the requesting
    shard) because shards frequently mutate the same corpus entries: a
    prediction for a base test is useful to every shard that holds it,
    and each shard's strategy memoizes by base-program hash anyway. *)

type t

val create :
  ?max_outbox:int -> ?tracer:Sp_obs.Tracer.t -> shards:int -> Inference.t -> t
(** [max_outbox] (default 64) bounds each shard's per-epoch outbox;
    requests beyond it are refused exactly like a full service queue.
    [tracer] (default disabled) records a [funnel.flush] span and a
    [funnel.batch_size] counter per {!flush}; it must be owned by the
    domain calling [flush] (the campaign's main domain). *)

val endpoint : t -> shard:int -> Inference.endpoint
(** The view handed to shard [shard]'s strategy. Must only be used from
    the domain running that shard — per-shard state is unsynchronized by
    design. *)

val flush : t -> now:float -> int
(** Forward all outboxes (shard order) to the service as one batch at
    virtual time [now], then poll the service and broadcast completions
    to every inbox. Returns the number of predictions delivered. Call at
    the barrier only — never while an epoch is running. *)

val requests_deferred : t -> int
(** Total requests accepted into outboxes so far. *)

val dropped : t -> int
(** Requests refused because an outbox was full. *)
