module Prog = Sp_syzlang.Prog
module Fqueue = Sp_util.Fqueue
module Tracer = Sp_obs.Tracer
module Json = Sp_obs.Json

(* Tenant [i]'s shard slots are the contiguous range
   [offsets.(i) .. offsets.(i) + counts.(i) - 1] of the flattened
   arrays; the single-tenant [create] is the one-range special case. *)
type t = {
  service : Inference.t;
  tracer : Tracer.t;
  max_outbox : int;
  offsets : int array;
  counts : int array;
  outboxes : (Prog.t * int list) Fqueue.t array;
  inboxes : (Prog.t * Prog.path list) Fqueue.t array;
  (* Written by shard domains during an epoch, read at the barrier; the
     epochs-are-quiesced contract (flush only at barriers) is the
     synchronization, not a lock. Counters are per-shard slots for the
     same reason — two domains never write the same word. *)
  deferred : int array;
  dropped : int array;
}

let create_multi ?(max_outbox = 64) ?(tracer = Tracer.null) ~tenant_shards
    service =
  let tenants = Array.length tenant_shards in
  if tenants < 1 then
    invalid_arg "Funnel.create_multi: at least one tenant required";
  Array.iter
    (fun s ->
      if s < 1 then invalid_arg "Funnel.create_multi: shards must be >= 1")
    tenant_shards;
  let offsets = Array.make tenants 0 in
  for i = 1 to tenants - 1 do
    offsets.(i) <- offsets.(i - 1) + tenant_shards.(i - 1)
  done;
  let total = offsets.(tenants - 1) + tenant_shards.(tenants - 1) in
  {
    service;
    tracer;
    max_outbox;
    offsets;
    counts = Array.copy tenant_shards;
    outboxes = Array.init total (fun _ -> Fqueue.create ());
    inboxes = Array.init total (fun _ -> Fqueue.create ());
    deferred = Array.make total 0;
    dropped = Array.make total 0;
  }

let create ?max_outbox ?tracer ~shards service =
  if shards < 1 then invalid_arg "Funnel.create: shards must be >= 1";
  create_multi ?max_outbox ?tracer ~tenant_shards:[| shards |] service

let tenants t = Array.length t.counts

let slot name t ~tenant ~shard =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg (name ^ ": tenant out of range");
  if shard < 0 || shard >= t.counts.(tenant) then
    invalid_arg (name ^ ": shard out of range");
  t.offsets.(tenant) + shard

let endpoint_for t ~tenant ~shard =
  let s = slot "Funnel.endpoint_for" t ~tenant ~shard in
  let outbox = t.outboxes.(s) and inbox = t.inboxes.(s) in
  {
    Inference.ep_request =
      (fun ~now:_ prog ~targets ->
        if Fqueue.length outbox >= t.max_outbox then begin
          t.dropped.(s) <- t.dropped.(s) + 1;
          false
        end
        else begin
          t.deferred.(s) <- t.deferred.(s) + 1;
          Fqueue.push outbox (prog, targets);
          true
        end);
    ep_poll =
      (fun ~now:_ ->
        let rec drain acc =
          match Fqueue.pop_opt inbox with
          | None -> List.rev acc
          | Some p -> drain (p :: acc)
        in
        drain []);
  }

let endpoint t ~shard = endpoint_for t ~tenant:0 ~shard

let flush_tenant t ~tenant ~now =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg "Funnel.flush_tenant: tenant out of range";
  (* Runs at the tenant's barrier on the scheduling domain — the
     tracer's only writer. *)
  Tracer.span t.tracer "funnel.flush" (fun () ->
      let off = t.offsets.(tenant) and n = t.counts.(tenant) in
      let batch =
        List.concat
          (List.init n (fun i ->
               let rec drain acc =
                 match Fqueue.pop_opt t.outboxes.(off + i) with
                 | None -> List.rev acc
                 | Some r -> drain (r :: acc)
               in
               drain []))
      in
      Tracer.counter t.tracer "funnel.batch_size"
        (float_of_int (List.length batch));
      if batch <> [] then
        ignore (Inference.request_batch t.service ~tag:tenant ~now batch);
      (* Poll only this tenant's completions: another tenant's barrier
         must not be able to steal (or even observe) them, or a tenant's
         prediction stream would depend on the schedule. *)
      let completed = Inference.poll t.service ~tag:tenant ~now () in
      for s = off to off + n - 1 do
        List.iter (fun p -> Fqueue.push t.inboxes.(s) p) completed
      done;
      List.length completed)

let flush t ~now =
  let total = ref 0 in
  for tenant = 0 to Array.length t.counts - 1 do
    total := !total + flush_tenant t ~tenant ~now
  done;
  !total

let tenant_fold name t ~tenant arr =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg (name ^ ": tenant out of range");
  let off = t.offsets.(tenant) in
  let acc = ref 0 in
  for s = off to off + t.counts.(tenant) - 1 do
    acc := !acc + arr.(s)
  done;
  !acc

let tenant_deferred t ~tenant =
  tenant_fold "Funnel.tenant_deferred" t ~tenant t.deferred

let tenant_dropped t ~tenant =
  tenant_fold "Funnel.tenant_dropped" t ~tenant t.dropped

let requests_deferred t = Array.fold_left ( + ) 0 t.deferred

let dropped t = Array.fold_left ( + ) 0 t.dropped

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                       *)
(* ------------------------------------------------------------------ *)

let out_to_json (prog, targets) =
  Json.Obj
    [ ("prog", Codec.prog_to_json prog);
      ("targets", Codec.int_list_to_json targets)
    ]

let out_of_json ~parse j =
  ( Codec.prog_of_json ~parse "outbox prog" (Json.Decode.field "prog" j),
    Codec.int_list_of_json "outbox targets" (Json.Decode.field "targets" j) )

let in_to_json (prog, paths) =
  Json.Obj
    [ ("prog", Codec.prog_to_json prog); ("paths", Codec.paths_to_json paths) ]

let in_of_json ~parse j =
  ( Codec.prog_of_json ~parse "inbox prog" (Json.Decode.field "prog" j),
    Codec.paths_of_json (Json.Decode.field "paths" j) )

let slot_arrays_json t =
  let per to_json q = Json.Arr (List.map to_json (Fqueue.to_list q)) in
  Json.Obj
    [ ( "outboxes",
        Json.Arr (Array.to_list (Array.map (per out_to_json) t.outboxes)) );
      ( "inboxes",
        Json.Arr (Array.to_list (Array.map (per in_to_json) t.inboxes)) );
      ( "deferred",
        Codec.int_list_to_json (Array.to_list t.deferred) );
      ("dropped", Codec.int_list_to_json (Array.to_list t.dropped))
    ]

let state_json t = slot_arrays_json t

let restore_state t ~parse j =
  let open Json.Decode in
  let total = Array.length t.outboxes in
  let slots name of_json dst =
    match field name j with
    | Json.Arr qs ->
      if List.length qs <> total then
        error "Funnel.restore_state: %s has %d slots, funnel has %d" name
          (List.length qs) total;
      List.iteri
        (fun s qj ->
          match qj with
          | Json.Arr items ->
            Fqueue.clear dst.(s);
            List.iter (fun it -> Fqueue.push dst.(s) (of_json it)) items
          | _ -> error "Funnel.restore_state: %s slot: expected array" name)
        qs
    | _ -> error "Funnel.restore_state: %s: expected array" name
  in
  slots "outboxes" (out_of_json ~parse) t.outboxes;
  slots "inboxes" (in_of_json ~parse) t.inboxes;
  let ints name dst =
    let xs = Codec.int_list_of_json name (field name j) in
    if List.length xs <> total then
      error "Funnel.restore_state: %s has %d slots, funnel has %d" name
        (List.length xs) total;
    List.iteri (fun s v -> dst.(s) <- v) xs
  in
  ints "deferred" t.deferred;
  ints "dropped" t.dropped
