module Prog = Sp_syzlang.Prog
module Fqueue = Sp_util.Fqueue
module Tracer = Sp_obs.Tracer

type t = {
  service : Inference.t;
  tracer : Tracer.t;
  max_outbox : int;
  outboxes : (Prog.t * int list) Fqueue.t array;
  inboxes : (Prog.t * Prog.path list) Fqueue.t array;
  (* Written by shard domains during an epoch, read at the barrier; the
     epochs-are-quiesced contract (flush only at barriers) is the
     synchronization, not a lock. Counters are per-shard slots for the
     same reason — two domains never write the same word. *)
  deferred : int array;
  dropped : int array;
}

let create ?(max_outbox = 64) ?(tracer = Tracer.null) ~shards service =
  if shards < 1 then invalid_arg "Funnel.create: shards must be >= 1";
  {
    service;
    tracer;
    max_outbox;
    outboxes = Array.init shards (fun _ -> Fqueue.create ());
    inboxes = Array.init shards (fun _ -> Fqueue.create ());
    deferred = Array.make shards 0;
    dropped = Array.make shards 0;
  }

let endpoint t ~shard =
  if shard < 0 || shard >= Array.length t.outboxes then
    invalid_arg "Funnel.endpoint: shard out of range";
  let outbox = t.outboxes.(shard) and inbox = t.inboxes.(shard) in
  {
    Inference.ep_request =
      (fun ~now:_ prog ~targets ->
        if Fqueue.length outbox >= t.max_outbox then begin
          t.dropped.(shard) <- t.dropped.(shard) + 1;
          false
        end
        else begin
          t.deferred.(shard) <- t.deferred.(shard) + 1;
          Fqueue.push outbox (prog, targets);
          true
        end);
    ep_poll =
      (fun ~now:_ ->
        let rec drain acc =
          match Fqueue.pop_opt inbox with
          | None -> List.rev acc
          | Some p -> drain (p :: acc)
        in
        drain []);
  }

let flush t ~now =
  (* Runs at the barrier on the main domain — the tracer's only writer. *)
  Tracer.span t.tracer "funnel.flush" (fun () ->
      let batch =
        Array.fold_left
          (fun acc outbox ->
            let rec drain acc =
              match Fqueue.pop_opt outbox with
              | None -> acc
              | Some r -> drain (r :: acc)
            in
            drain acc)
          [] t.outboxes
        |> List.rev
      in
      Tracer.counter t.tracer "funnel.batch_size"
        (float_of_int (List.length batch));
      if batch <> [] then ignore (Inference.request_batch t.service ~now batch);
      let completed = Inference.poll t.service ~now in
      Array.iter
        (fun inbox -> List.iter (fun p -> Fqueue.push inbox p) completed)
        t.inboxes;
      List.length completed)

let requests_deferred t = Array.fold_left ( + ) 0 t.deferred

let dropped t = Array.fold_left ( + ) 0 t.dropped
