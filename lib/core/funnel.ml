module Prog = Sp_syzlang.Prog
module Fqueue = Sp_util.Fqueue
module Faults = Sp_util.Faults
module Tracer = Sp_obs.Tracer
module Json = Sp_obs.Json

type degrade = {
  dg_timeout : float;
  dg_retries : int;
  dg_breaker : Breaker.config;
}

let default_degrade =
  { dg_timeout = 30.0; dg_retries = 2; dg_breaker = Breaker.default_config }

(* A request the lane owes the service another attempt for, waiting out
   its backoff. [rt_due] is an absolute per-tenant flush ordinal: dues
   are always created relative to the current ordinal, so the base never
   matters — only the distance. *)
type retry = {
  rt_prog : Prog.t;
  rt_targets : int list;
  rt_attempt : int;  (* sends already performed *)
  rt_due : int;  (* flush ordinal at/after which to resend *)
}

type lane = {
  ln_breaker : Breaker.t;
  (* Breaker state name as of the last transition event, so flushes can
     emit an event exactly when the state changes. *)
  mutable ln_last_state : string;
  (* Per-lane send ordinal — the fault index for the inference.request@N
     / inference.timeout@N sites. Process-local bookkeeping, not
     persisted: a resumed run restarts its fault ordinals. *)
  mutable ln_reqs : int;
  (* (hash, prog, sends) for in-flight requests on their 2nd+ attempt;
     first attempts are implicit. Hash-keyed with structural
     confirmation, like every other prog-keyed map here. *)
  mutable ln_attempts : (int * Prog.t * int) list;
  mutable ln_retries : retry list;
  mutable ln_shed : int;  (* fresh requests refused while not Closed *)
  mutable ln_errors : int;  (* timeouts + injected request failures *)
  mutable ln_degraded : bool;
      (* breaker not Closed as of the last flush; read (without a lock)
         by shard domains between barriers — safe because it is only
         written at barriers, when epochs are quiesced *)
}

type lane_stats = {
  ls_state : string;
  ls_trips : int;
  ls_errors : int;
  ls_shed : int;
  ls_retries_pending : int;
}

(* Tenant [i]'s shard slots are the contiguous range
   [offsets.(i) .. offsets.(i) + counts.(i) - 1] of the flattened
   arrays; the single-tenant [create] is the one-range special case. *)
type t = {
  service : Inference.t;
  tracer : Tracer.t;
  max_outbox : int;
  offsets : int array;
  counts : int array;
  outboxes : (Prog.t * int list) Fqueue.t array;
  inboxes : (Prog.t * Prog.path list) Fqueue.t array;
  (* Written by shard domains during an epoch, read at the barrier; the
     epochs-are-quiesced contract (flush only at barriers) is the
     synchronization, not a lock. Counters are per-shard slots for the
     same reason — two domains never write the same word. *)
  deferred : int array;
  dropped : int array;
  faults : Faults.t;
  degrade : degrade option;
  lanes : lane array;  (* one per tenant when [degrade] is armed; [||] else *)
  flush_seq : int array;  (* per-tenant flush ordinal *)
  events : Sp_obs.Events.t;
}

let fresh_lane dg =
  {
    ln_breaker = Breaker.create ~config:dg.dg_breaker ();
    ln_last_state = "closed";
    ln_reqs = 0;
    ln_attempts = [];
    ln_retries = [];
    ln_shed = 0;
    ln_errors = 0;
    ln_degraded = false;
  }

let create_multi ?(max_outbox = 64) ?(tracer = Tracer.null) ?degrade
    ?(faults = Faults.disabled) ?(events = Sp_obs.Events.null) ~tenant_shards
    service =
  let tenants = Array.length tenant_shards in
  if tenants < 1 then
    invalid_arg "Funnel.create_multi: at least one tenant required";
  Array.iter
    (fun s ->
      if s < 1 then invalid_arg "Funnel.create_multi: shards must be >= 1")
    tenant_shards;
  let offsets = Array.make tenants 0 in
  for i = 1 to tenants - 1 do
    offsets.(i) <- offsets.(i - 1) + tenant_shards.(i - 1)
  done;
  let total = offsets.(tenants - 1) + tenant_shards.(tenants - 1) in
  {
    service;
    tracer;
    max_outbox;
    offsets;
    counts = Array.copy tenant_shards;
    outboxes = Array.init total (fun _ -> Fqueue.create ());
    inboxes = Array.init total (fun _ -> Fqueue.create ());
    deferred = Array.make total 0;
    dropped = Array.make total 0;
    faults;
    degrade;
    lanes =
      (match degrade with
      | None -> [||]
      | Some dg -> Array.init tenants (fun _ -> fresh_lane dg));
    flush_seq = Array.make tenants 0;
    events;
  }

let create ?max_outbox ?tracer ?degrade ?faults ?events ~shards service =
  if shards < 1 then invalid_arg "Funnel.create: shards must be >= 1";
  create_multi ?max_outbox ?tracer ?degrade ?faults ?events
    ~tenant_shards:[| shards |] service

let tenants t = Array.length t.counts

let slot name t ~tenant ~shard =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg (name ^ ": tenant out of range");
  if shard < 0 || shard >= t.counts.(tenant) then
    invalid_arg (name ^ ": shard out of range");
  t.offsets.(tenant) + shard

let lane_degraded t ~tenant =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg "Funnel.lane_degraded: tenant out of range";
  Array.length t.lanes > 0 && t.lanes.(tenant).ln_degraded

let endpoint_for t ~tenant ~shard =
  let s = slot "Funnel.endpoint_for" t ~tenant ~shard in
  let outbox = t.outboxes.(s) and inbox = t.inboxes.(s) in
  {
    Inference.ep_request =
      (fun ~now:_ prog ~targets ->
        if Array.length t.lanes > 0 && t.lanes.(tenant).ln_degraded then begin
          (* Tripped breaker: refuse at the edge so nothing piles up in
             the outbox while the lane sheds anyway. Counted as dropped —
             the slot's refusal counter — like an overflowing outbox. *)
          t.dropped.(s) <- t.dropped.(s) + 1;
          false
        end
        else if Fqueue.length outbox >= t.max_outbox then begin
          t.dropped.(s) <- t.dropped.(s) + 1;
          false
        end
        else begin
          t.deferred.(s) <- t.deferred.(s) + 1;
          Fqueue.push outbox (prog, targets);
          true
        end);
    ep_poll =
      (fun ~now:_ ->
        let rec drain acc =
          match Fqueue.pop_opt inbox with
          | None -> List.rev acc
          | Some p -> drain (p :: acc)
        in
        drain []);
  }

let endpoint t ~shard = endpoint_for t ~tenant:0 ~shard

(* Hash-keyed attempt bookkeeping with structural confirmation. *)
let attempts_take ln h prog =
  let rec go acc = function
    | [] -> (1, ln.ln_attempts)
    | (h', p, n) :: rest when h' = h && Prog.equal p prog ->
        (n, List.rev_append acc rest)
    | e :: rest -> go (e :: acc) rest
  in
  let n, remaining = go [] ln.ln_attempts in
  ln.ln_attempts <- remaining;
  n

let attempts_put ln h prog n =
  ignore (attempts_take ln h prog);
  ln.ln_attempts <- ln.ln_attempts @ [ (h, prog, n) ]

let breaker_code = function
  | Breaker.Closed -> 0.0
  | Breaker.Open -> 1.0
  | Breaker.Half_open -> 2.0

(* Emit a [breaker.transition] event when the lane's state changed since
   the last one — recovery back to closed is Info, leaving closed is
   Warn. *)
let note_breaker_state t ~tenant ln ~now =
  let name = Breaker.state_name (Breaker.state ln.ln_breaker ~now) in
  if not (String.equal name ln.ln_last_state) then begin
    let level =
      if String.equal name "closed" then Sp_obs.Events.Info
      else Sp_obs.Events.Warn
    in
    Sp_obs.Events.log t.events ~level ~kind:"breaker.transition"
      [ ("tenant", Json.Num (float_of_int tenant));
        ("from", Json.Str ln.ln_last_state);
        ("to", Json.Str name);
        ("trips", Json.Num (float_of_int (Breaker.trips ln.ln_breaker)));
        ("now", Json.Num now)
      ];
    ln.ln_last_state <- name
  end

(* The degraded flush: reclaim stalled requests, drive the breaker, send
   (or shed) by its state, then deliver. Send-before-poll order matches
   the plain path, so an armed lane that never sees a fault produces the
   same prediction stream as an unarmed one. *)
let flush_degraded t ~tenant ~now dg fresh =
  let ln = t.lanes.(tenant) in
  let ord = t.flush_seq.(tenant) in
  let armed = Faults.enabled t.faults in
  let backoff attempt = ord + (1 lsl (attempt - 1)) in
  let overdue =
    Inference.cancel_overdue t.service ~tag:tenant ~now
      ~older_than:dg.dg_timeout ()
  in
  List.iter
    (fun (prog, targets) ->
      ln.ln_errors <- ln.ln_errors + 1;
      Breaker.record_error ln.ln_breaker ~now;
      let attempt = attempts_take ln (Prog.hash prog) prog in
      if attempt <= dg.dg_retries && targets <> [] then
        ln.ln_retries <-
          ln.ln_retries
          @ [ { rt_prog = prog; rt_targets = targets; rt_attempt = attempt;
                rt_due = backoff attempt } ])
    overdue;
  if overdue <> [] then
    Sp_obs.Events.log t.events ~level:Sp_obs.Events.Warn ~kind:"funnel.reclaim"
      [ ("tenant", Json.Num (float_of_int tenant));
        ("count", Json.Num (float_of_int (List.length overdue)));
        ("now", Json.Num now)
      ];
  note_breaker_state t ~tenant ln ~now;
  let bstate = Breaker.state ln.ln_breaker ~now in
  Tracer.counter t.tracer "breaker.state" (breaker_code bstate);
  let send prog targets attempt =
    let k = ln.ln_reqs + 1 in
    ln.ln_reqs <- k;
    if
      armed
      && Faults.should_fail t.faults
           (Printf.sprintf "inference.request@%d" tenant)
           ~k
    then begin
      (* The request itself failed: an error the caller sees immediately,
         unlike a timeout. Same retry/backoff path. *)
      ln.ln_errors <- ln.ln_errors + 1;
      Breaker.record_error ln.ln_breaker ~now;
      if attempt <= dg.dg_retries then
        ln.ln_retries <-
          ln.ln_retries
          @ [ { rt_prog = prog; rt_targets = targets; rt_attempt = attempt;
                rt_due = backoff attempt } ]
    end
    else begin
      let extra =
        if
          armed
          && Faults.should_fail t.faults
               (Printf.sprintf "inference.timeout@%d" tenant)
               ~k
        then dg.dg_timeout +. 1e6 (* guaranteed past the deadline *)
        else 0.0
      in
      let ok =
        Inference.request t.service ~tag:tenant ~extra_latency:extra
          ~record_targets:armed ~now prog ~targets
      in
      if ok && attempt > 1 then attempts_put ln (Prog.hash prog) prog attempt
    end
  in
  let due, later = List.partition (fun r -> r.rt_due <= ord) ln.ln_retries in
  ln.ln_retries <- later;
  let postpone rs = List.map (fun r -> { r with rt_due = ord + 1 }) rs in
  (match bstate with
  | Breaker.Closed ->
      List.iter (fun r -> send r.rt_prog r.rt_targets (r.rt_attempt + 1)) due;
      List.iter (fun (p, tg) -> send p tg 1) fresh
  | Breaker.Open ->
      ln.ln_shed <- ln.ln_shed + List.length fresh;
      ln.ln_retries <- ln.ln_retries @ postpone due
  | Breaker.Half_open -> (
      match (due, fresh) with
      | r :: rest, _ ->
          Breaker.note_probe ln.ln_breaker;
          send r.rt_prog r.rt_targets (r.rt_attempt + 1);
          ln.ln_retries <- ln.ln_retries @ postpone rest;
          ln.ln_shed <- ln.ln_shed + List.length fresh
      | [], (p, tg) :: rest ->
          Breaker.note_probe ln.ln_breaker;
          send p tg 1;
          ln.ln_shed <- ln.ln_shed + List.length rest
      | [], [] -> ()));
  let completed = Inference.poll_detailed t.service ~tag:tenant ~now () in
  List.iter
    (fun (prog, _paths, latency) ->
      Breaker.record_success ln.ln_breaker ~now ~latency;
      ignore (attempts_take ln (Prog.hash prog) prog))
    completed;
  ln.ln_degraded <- Breaker.state ln.ln_breaker ~now <> Breaker.Closed;
  note_breaker_state t ~tenant ln ~now;
  List.map (fun (prog, paths, _) -> (prog, paths)) completed

let flush_tenant t ~tenant ~now =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg "Funnel.flush_tenant: tenant out of range";
  (* Runs at the tenant's barrier on the scheduling domain — the
     tracer's only writer. *)
  Tracer.span t.tracer "funnel.flush" (fun () ->
      t.flush_seq.(tenant) <- t.flush_seq.(tenant) + 1;
      if Faults.enabled t.faults then
        Faults.fire t.faults
          (Printf.sprintf "funnel.flush@%d" tenant)
          ~k:t.flush_seq.(tenant);
      let off = t.offsets.(tenant) and n = t.counts.(tenant) in
      let batch =
        List.concat
          (List.init n (fun i ->
               let rec drain acc =
                 match Fqueue.pop_opt t.outboxes.(off + i) with
                 | None -> List.rev acc
                 | Some r -> drain (r :: acc)
               in
               drain []))
      in
      Tracer.counter t.tracer "funnel.batch_size"
        (float_of_int (List.length batch));
      let completed =
        match t.degrade with
        | Some dg -> flush_degraded t ~tenant ~now dg batch
        | None ->
            if batch <> [] then
              ignore (Inference.request_batch t.service ~tag:tenant ~now batch);
            (* Poll only this tenant's completions: another tenant's
               barrier must not be able to steal (or even observe) them,
               or a tenant's prediction stream would depend on the
               schedule. *)
            Inference.poll t.service ~tag:tenant ~now ()
      in
      for s = off to off + n - 1 do
        List.iter (fun p -> Fqueue.push t.inboxes.(s) p) completed
      done;
      List.length completed)

let flush t ~now =
  let total = ref 0 in
  for tenant = 0 to Array.length t.counts - 1 do
    total := !total + flush_tenant t ~tenant ~now
  done;
  !total

let tenant_fold name t ~tenant arr =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg (name ^ ": tenant out of range");
  let off = t.offsets.(tenant) in
  let acc = ref 0 in
  for s = off to off + t.counts.(tenant) - 1 do
    acc := !acc + arr.(s)
  done;
  !acc

let tenant_queue_depth t ~tenant =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg "Funnel.tenant_queue_depth: tenant out of range";
  let off = t.offsets.(tenant) in
  let acc = ref 0 in
  for s = off to off + t.counts.(tenant) - 1 do
    acc := !acc + Fqueue.length t.outboxes.(s) + Fqueue.length t.inboxes.(s)
  done;
  (if Array.length t.lanes > 0 then
     acc := !acc + List.length t.lanes.(tenant).ln_retries);
  !acc

let tenant_deferred t ~tenant =
  tenant_fold "Funnel.tenant_deferred" t ~tenant t.deferred

let tenant_dropped t ~tenant =
  tenant_fold "Funnel.tenant_dropped" t ~tenant t.dropped

let requests_deferred t = Array.fold_left ( + ) 0 t.deferred

let dropped t = Array.fold_left ( + ) 0 t.dropped

let lane_stats t ~tenant ~now =
  if tenant < 0 || tenant >= Array.length t.counts then
    invalid_arg "Funnel.lane_stats: tenant out of range";
  if Array.length t.lanes = 0 then None
  else
    let ln = t.lanes.(tenant) in
    Some
      {
        ls_state = Breaker.state_name (Breaker.peek ln.ln_breaker ~now);
        ls_trips = Breaker.trips ln.ln_breaker;
        ls_errors = ln.ln_errors;
        ls_shed = ln.ln_shed;
        ls_retries_pending = List.length ln.ln_retries;
      }

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                       *)
(* ------------------------------------------------------------------ *)

let out_to_json (prog, targets) =
  Json.Obj
    [ ("prog", Codec.prog_to_json prog);
      ("targets", Codec.int_list_to_json targets)
    ]

let out_of_json ~parse j =
  ( Codec.prog_of_json ~parse "outbox prog" (Json.Decode.field "prog" j),
    Codec.int_list_of_json "outbox targets" (Json.Decode.field "targets" j) )

let in_to_json (prog, paths) =
  Json.Obj
    [ ("prog", Codec.prog_to_json prog); ("paths", Codec.paths_to_json paths) ]

let in_of_json ~parse j =
  ( Codec.prog_of_json ~parse "inbox prog" (Json.Decode.field "prog" j),
    Codec.paths_of_json (Json.Decode.field "paths" j) )

let slot_arrays_json t =
  let per to_json q = Json.Arr (List.map to_json (Fqueue.to_list q)) in
  Json.Obj
    [ ( "outboxes",
        Json.Arr (Array.to_list (Array.map (per out_to_json) t.outboxes)) );
      ( "inboxes",
        Json.Arr (Array.to_list (Array.map (per in_to_json) t.inboxes)) );
      ( "deferred",
        Codec.int_list_to_json (Array.to_list t.deferred) );
      ("dropped", Codec.int_list_to_json (Array.to_list t.dropped))
    ]

let retry_to_json r =
  Json.Obj
    [ ("prog", Codec.prog_to_json r.rt_prog);
      ("targets", Codec.int_list_to_json r.rt_targets);
      ("attempt", Json.Num (float_of_int r.rt_attempt));
      ("due", Json.Num (float_of_int r.rt_due))
    ]

let retry_of_json ~parse j =
  let open Json.Decode in
  {
    rt_prog = Codec.prog_of_json ~parse "retry prog" (field "prog" j);
    rt_targets = Codec.int_list_of_json "retry targets" (field "targets" j);
    rt_attempt = int_field "attempt" j;
    rt_due = int_field "due" j;
  }

let lane_is_default ln =
  Breaker.is_default ln.ln_breaker
  && ln.ln_attempts = [] && ln.ln_retries = [] && ln.ln_shed = 0
  && ln.ln_errors = 0
  && not ln.ln_degraded

let lane_json t i ln =
  Json.Obj
    [ ("flushes", Json.Num (float_of_int t.flush_seq.(i)));
      ("breaker", Breaker.state_json ln.ln_breaker);
      ( "attempts",
        Json.Arr
          (List.map
             (fun (_, prog, n) ->
               Json.Obj
                 [ ("prog", Codec.prog_to_json prog);
                   ("attempt", Json.Num (float_of_int n))
                 ])
             ln.ln_attempts) );
      ("retries", Json.Arr (List.map retry_to_json ln.ln_retries));
      ("shed", Json.Num (float_of_int ln.ln_shed));
      ("errors", Json.Num (float_of_int ln.ln_errors));
      ("degraded", Json.Bool ln.ln_degraded)
    ]

let lane_restore ~parse ln j =
  let open Json.Decode in
  Breaker.restore_state ln.ln_breaker (field "breaker" j);
  ln.ln_attempts <-
    List.map
      (fun aj ->
        let prog = Codec.prog_of_json ~parse "attempt prog" (field "prog" aj) in
        (Prog.hash prog, prog, int_field "attempt" aj))
      (arr_field "attempts" j);
  ln.ln_retries <- List.map (retry_of_json ~parse) (arr_field "retries" j);
  ln.ln_shed <- int_field "shed" j;
  ln.ln_errors <- int_field "errors" j;
  ln.ln_degraded <- bool_field "degraded" j

let state_json t =
  match slot_arrays_json t with
  | Json.Obj fields ->
      (* The lanes field appears only once some lane has left its default
         state — so snapshots of armed-but-never-faulted runs stay
         byte-identical to unarmed (pre-degradation) snapshots, and once
         a lane has degraded, resumed and uninterrupted runs agree. *)
      if
        Array.length t.lanes > 0
        && Array.exists (fun ln -> not (lane_is_default ln)) t.lanes
      then
        Json.Obj
          (fields
          @ [ ( "lanes",
                Json.Arr
                  (Array.to_list (Array.mapi (fun i ln -> lane_json t i ln) t.lanes))
              )
            ])
      else Json.Obj fields
  | j -> j

let restore_state t ~parse j =
  let open Json.Decode in
  let total = Array.length t.outboxes in
  let slots name of_json dst =
    match field name j with
    | Json.Arr qs ->
      if List.length qs <> total then
        error "Funnel.restore_state: %s has %d slots, funnel has %d" name
          (List.length qs) total;
      List.iteri
        (fun s qj ->
          match qj with
          | Json.Arr items ->
            Fqueue.clear dst.(s);
            List.iter (fun it -> Fqueue.push dst.(s) (of_json it)) items
          | _ -> error "Funnel.restore_state: %s slot: expected array" name)
        qs
    | _ -> error "Funnel.restore_state: %s: expected array" name
  in
  slots "outboxes" (out_of_json ~parse) t.outboxes;
  slots "inboxes" (in_of_json ~parse) t.inboxes;
  let ints name dst =
    let xs = Codec.int_list_of_json name (field name j) in
    if List.length xs <> total then
      error "Funnel.restore_state: %s has %d slots, funnel has %d" name
        (List.length xs) total;
    List.iteri (fun s v -> dst.(s) <- v) xs
  in
  ints "deferred" t.deferred;
  ints "dropped" t.dropped;
  (* Lanes: absent means every lane was still default when the snapshot
     was taken (or the writer pre-dated degradation). *)
  (match t.degrade with
  | Some dg ->
      Array.iteri (fun i _ -> t.lanes.(i) <- fresh_lane dg) t.lanes;
      Array.fill t.flush_seq 0 (Array.length t.flush_seq) 0;
      (match Json.member "lanes" j with
      | None -> ()
      | Some (Json.Arr ls) ->
          if List.length ls <> Array.length t.lanes then
            error "Funnel.restore_state: lanes has %d entries, funnel has %d"
              (List.length ls) (Array.length t.lanes);
          List.iteri
            (fun i lj ->
              t.flush_seq.(i) <- int_field "flushes" lj;
              lane_restore ~parse t.lanes.(i) lj)
            ls
      | Some _ -> error "Funnel.restore_state: lanes: expected array")
  | None ->
      if Json.member "lanes" j <> None then
        error
          "Funnel.restore_state: snapshot carries degraded-lane state but \
           degradation is not armed — pass the same fault plan when resuming")
