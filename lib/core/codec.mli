(** JSON codecs shared by the snowplow-layer snapshot state
    ({!Inference.state_json}, {!Funnel.state_json},
    {!Hybrid.predictions_json}). Programs travel as canonical text,
    cache keys as int64 hex strings ([Inference.targets_key] mixes
    hashes past the float-exact integer range). All [_of_json] readers
    raise [Sp_obs.Json.Decode.Error] on malformed input. *)

val prog_to_json : Sp_syzlang.Prog.t -> Sp_obs.Json.t

val prog_of_json :
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  string ->
  Sp_obs.Json.t ->
  Sp_syzlang.Prog.t
(** [prog_of_json ~parse name j]; [name] labels decode errors. *)

val path_to_json : Sp_syzlang.Prog.path -> Sp_obs.Json.t

val path_of_json : Sp_obs.Json.t -> Sp_syzlang.Prog.path

val paths_to_json : Sp_syzlang.Prog.path list -> Sp_obs.Json.t

val paths_of_json : Sp_obs.Json.t -> Sp_syzlang.Prog.path list

val key_to_json : int -> Sp_obs.Json.t
(** Cache key as a 16-digit hex string. *)

val key_of_json : string -> Sp_obs.Json.t -> int

val int_list_to_json : int list -> Sp_obs.Json.t

val int_list_of_json : string -> Sp_obs.Json.t -> int list

val lru_to_json :
  key_to_json:('k -> Sp_obs.Json.t) ->
  value_to_json:('v -> Sp_obs.Json.t) ->
  ('k, 'v) Sp_util.Lru.t ->
  Sp_obs.Json.t
(** Entries most recently used first, each with its TTL write stamp. *)

val lru_restore :
  key_of_json:(Sp_obs.Json.t -> 'k) ->
  value_of_json:(Sp_obs.Json.t -> 'v) ->
  ('k, 'v) Sp_util.Lru.t ->
  Sp_obs.Json.t ->
  unit
(** Clear [lru], then re-put the serialized entries oldest-first with
    their original write stamps — recency order, TTL stamps and future
    eviction behavior all match the cache that was serialized (the
    cache must have been created with the same capacity/TTL). *)
