(** The PMM inference service (the paper's torchserve deployment, §4).

    Runs the trained model behind a bounded FIFO queue with a
    latency/capacity model (0.69 s per query, ~57 queries/s at saturation on
    one inference machine, §5.5). The fuzzer requests localization
    asynchronously and keeps mutating with other types while inference is
    pending (§3.4); completed predictions are picked up on a later loop
    iteration at their virtual ready time. Model compute is real (the GNN
    runs); only the delivery time is simulated.

    Both prediction caches are bounded LRUs ([Sp_util.Lru]) with TTL
    expiry, so memory stays constant over arbitrarily long campaigns; cache
    keys are int hashes and every hit is confirmed structurally before
    reuse (a hash collision is a miss, never a wrong answer). *)

type t

val create :
  ?latency:float ->
  ?capacity_qps:float ->
  ?max_pending:int ->
  ?cache_ttl:float ->
  ?cache_capacity:int ->
  ?metrics:Sp_util.Metrics.t ->
  ?tracer:Sp_obs.Tracer.t ->
  kernel:Sp_kernel.Kernel.t ->
  block_embs:Sp_ml.Tensor.t ->
  Pmm.t ->
  t
(** Defaults: latency 0.69 s, capacity 57 qps, max_pending 16, cache TTL
    1800 virtual seconds, cache capacity 4096 entries per cache. The cache
    is keyed on (base test, target set): re-querying the same base against
    the same desired coverage is answered from the memo at zero service
    cost, while any change in the uncovered frontier produces a fresh
    query. [kernel] is the kernel being fuzzed (used to rebuild the query
    graph). [metrics] is the registry service counters/timers are recorded
    into (a private one is created when omitted). [tracer] (default
    disabled) records an [inference.batch] span and an
    [inference.pending] queue-depth counter per {!request_batch}; it must
    be owned by the domain calling the batch path (the campaign's main
    domain). *)

val request :
  t ->
  ?tag:int ->
  ?extra_latency:float ->
  ?record_targets:bool ->
  now:float ->
  Sp_syzlang.Prog.t ->
  targets:int list ->
  bool
(** Enqueue a localization query; returns false (dropped) when the service
    queue already holds [max_pending] requests — including when the answer
    would have come from the cache, since a memoized answer still occupies
    a pending slot until polled. The prediction is computed immediately but
    delivered at its virtual completion time (immediately for cache
    hits). [tag] (default 0) labels the request with its tenant for
    multi-tenant deployments: {!poll} can filter by it and
    {!tenant_stats} accounts per tag.

    [extra_latency] (default 0) is added to a {e computed} request's
    delivery time — the fault-injection vehicle for a stalled backend;
    cache hits still deliver immediately. With [record_targets] the
    (sorted) target set rides the pending entry so {!cancel_overdue} can
    hand it back for a retry; recorded targets are persisted with the
    queue, omitted when empty. *)

val poll :
  t ->
  ?tag:int ->
  now:float ->
  unit ->
  (Sp_syzlang.Prog.t * Sp_syzlang.Prog.path list) list
(** Completed requests with ready time <= [now], oldest first. With
    [tag], only completions carrying that tag are removed and returned —
    other tenants' completions stay queued for their own poll. *)

val poll_detailed :
  t ->
  ?tag:int ->
  now:float ->
  unit ->
  (Sp_syzlang.Prog.t * Sp_syzlang.Prog.path list * float) list
(** {!poll} plus each completion's virtual latency (0 for cache hits) —
    what the degraded funnel feeds its circuit breaker. Identical
    accounting and removal semantics to {!poll}. *)

val cancel_overdue :
  t ->
  ?tag:int ->
  now:float ->
  older_than:float ->
  unit ->
  (Sp_syzlang.Prog.t * int list) list
(** Remove (and return, oldest first) every still-undelivered request
    that was submitted at least [older_than] virtual seconds ago —
    the caller's timeout reclaiming queue slots from a stalled backend.
    Each removed entry is [(prog, recorded targets)] ([[]] unless the
    request was made with [record_targets]). Counted in {!cancelled} and
    the [inference.cancelled] metric; never counted as served. *)

val request_batch :
  t -> ?tag:int -> now:float -> (Sp_syzlang.Prog.t * int list) list -> int
(** Submit a batch of queries collected from many workers in one call (the
    funnel's barrier flush); returns how many were admitted. Individually
    equivalent to [request] per element, but recorded as one batch
    ([inference.batches] counter, [inference.batch_size] histogram) so the
    amortization of the forward pass is observable. *)

(** {1 Endpoints}

    The hybrid strategy talks to inference through this record rather than
    to the service directly, so the same strategy code runs against a
    private service (sequential campaigns) or a per-shard view of a shared
    funnel (parallel campaigns). *)

type endpoint = {
  ep_request : now:float -> Sp_syzlang.Prog.t -> targets:int list -> bool;
  ep_poll : now:float -> (Sp_syzlang.Prog.t * Sp_syzlang.Prog.path list) list;
}

val endpoint : t -> endpoint
(** The direct view of this service. *)

val predict_now :
  t -> Sp_syzlang.Prog.t -> targets:int list -> Sp_syzlang.Prog.path list
(** Synchronous prediction (used by offline analyses; bypasses the queue
    and records no service metrics). *)

(** {1 Service metrics (§5.5)} *)

val served : t -> int
(** Requests the service actually computed and delivered; cache hits are
    not served requests. *)

val cache_hits : t -> int

val cancelled : t -> int
(** Requests reclaimed by {!cancel_overdue}; 0 unless degradation armed. *)

val dropped : t -> int

val pending : t -> int
(** Requests currently queued; always [<= max_pending]. *)

val cache_size : t -> int
(** Total live entries across both prediction caches; always
    [<= cache_capacity]. *)

val cache_capacity : t -> int

val metrics : t -> Sp_util.Metrics.t
(** The registry recording [inference.*] counters and timers. *)

val mean_latency : t -> float
(** Mean request-to-ready virtual time over {e served} requests.
    Zero-latency cache hits are excluded — counting them would deflate the
    service latency the paper reports. *)

val saturation_qps : t -> float
(** The service's configured capacity. *)

val tenant_stats : t -> tag:int -> int * int * int * int
(** [(requests, served, cache_hits, dropped)] accounted to [tag]. The
    scheduler's per-tenant accounting: summed over all tags these equal
    the service-wide counters. *)

(** {1 Snapshot codec}

    Queue contents, the virtual clock, both prediction caches (recency
    order and TTL stamps exactly) and the per-tag stats — everything a
    resumed campaign needs for the service to behave bit-for-bit as if
    it had never stopped. Model weights and [inference.*] metrics are
    {e not} included: weights are rebuilt by the caller (training is
    seeded) and metrics registries are merged, not restored. *)

val state_json : t -> Sp_obs.Json.t

val restore_state :
  t ->
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  Sp_obs.Json.t ->
  unit
(** Restore {!state_json} output into a service created with the same
    configuration. Raises [Sp_obs.Json.Decode.Error] on malformed
    input. *)
