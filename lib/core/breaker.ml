module Json = Sp_obs.Json
module D = Json.Decode

type state = Closed | Open | Half_open

type config = {
  error_threshold : int;
  latency_threshold : float;
  cooldown : float;
}

let default_config =
  { error_threshold = 3; latency_threshold = 10.0; cooldown = 1200.0 }

type t = {
  cfg : config;
  mutable st : state;
  mutable errors : int;  (* consecutive *)
  mutable opened_at : float;
  mutable trips : int;
  mutable probes : int;
}

let create ?(config = default_config) () =
  if config.error_threshold < 1 then
    invalid_arg "Breaker.create: error_threshold must be >= 1";
  if not (config.latency_threshold > 0.0) then
    invalid_arg "Breaker.create: latency_threshold must be > 0";
  if not (config.cooldown > 0.0) then
    invalid_arg "Breaker.create: cooldown must be > 0";
  { cfg = config; st = Closed; errors = 0; opened_at = 0.0; trips = 0; probes = 0 }

let config t = t.cfg

let peek t ~now =
  match t.st with
  | Open when now >= t.opened_at +. t.cfg.cooldown -> Half_open
  | st -> st

let state t ~now =
  t.st <- peek t ~now;
  t.st

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let trip t ~now =
  t.st <- Open;
  t.opened_at <- now;
  t.trips <- t.trips + 1;
  t.errors <- 0

let record_error t ~now =
  match state t ~now with
  | Half_open -> trip t ~now (* failed probe: restart the cooldown *)
  | Open -> () (* shed traffic should not be reaching the service *)
  | Closed ->
      t.errors <- t.errors + 1;
      if t.errors >= t.cfg.error_threshold then trip t ~now

let record_success t ~now ~latency =
  if latency > t.cfg.latency_threshold then record_error t ~now
  else
    match state t ~now with
    | Half_open ->
        t.st <- Closed;
        t.errors <- 0
    | Closed -> t.errors <- 0
    | Open -> ()

let note_probe t = t.probes <- t.probes + 1

let consecutive_errors t = t.errors

let trips t = t.trips

let probes t = t.probes

let is_default t =
  t.st = Closed && t.errors = 0 && t.trips = 0 && t.probes = 0
  && t.opened_at = 0.0

let reset t =
  t.st <- Closed;
  t.errors <- 0;
  t.opened_at <- 0.0;
  t.trips <- 0;
  t.probes <- 0

let state_code = function Closed -> 0 | Open -> 1 | Half_open -> 2

let state_of_code = function
  | 0 -> Closed
  | 1 -> Open
  | 2 -> Half_open
  | n -> D.error "breaker state: unknown code %d" n

let state_json t =
  Json.Obj
    [
      ("state", Json.Num (float_of_int (state_code t.st)));
      ("errors", Json.Num (float_of_int t.errors));
      ("opened_at", Json.Num t.opened_at);
      ("trips", Json.Num (float_of_int t.trips));
      ("probes", Json.Num (float_of_int t.probes));
    ]

let restore_state t j =
  let st = state_of_code (D.int_field "state" j) in
  let errors = D.int_field "errors" j in
  let opened_at = D.num_field "opened_at" j in
  let trips = D.int_field "trips" j in
  let probes = D.int_field "probes" j in
  t.st <- st;
  t.errors <- errors;
  t.opened_at <- opened_at;
  t.trips <- trips;
  t.probes <- probes
