module Rng = Sp_util.Rng
module Kernel = Sp_kernel.Kernel
module Token = Sp_kernel.Token
module Ad = Sp_ml.Ad
module Nn = Sp_ml.Nn
module Tensor = Sp_ml.Tensor
module Optim = Sp_ml.Optim
module Workspace = Sp_ml.Workspace

type config = { dim : int; max_len : int; steps : int; lr : float; seed : int }

let default_config = { dim = 16; max_len = 8; steps = 3000; lr = 3e-3; seed = 17 }

type t = {
  config : config;
  tok_emb : Nn.Embedding.t;
  pos_emb : Nn.Embedding.t;
  wq : Nn.Linear.t;
  wk : Nn.Linear.t;
  wv : Nn.Linear.t;
  wo : Nn.Linear.t;
  ffn1 : Nn.Linear.t;
  ffn2 : Nn.Linear.t;
  lm_head : Nn.Linear.t;
}

let mask_token = Token.vocab_size

let vocab = Token.vocab_size + 1

let dim t = t.config.dim

let params t =
  Nn.Embedding.params t.tok_emb @ Nn.Embedding.params t.pos_emb
  @ Nn.Linear.params t.wq @ Nn.Linear.params t.wk @ Nn.Linear.params t.wv
  @ Nn.Linear.params t.wo @ Nn.Linear.params t.ffn1 @ Nn.Linear.params t.ffn2
  @ Nn.Linear.params t.lm_head

let create config =
  let rng = Rng.create config.seed in
  let d = config.dim in
  {
    config;
    tok_emb = Nn.Embedding.create rng ~vocab ~dim:d;
    pos_emb = Nn.Embedding.create rng ~vocab:config.max_len ~dim:d;
    wq = Nn.Linear.create ~bias:false rng d d;
    wk = Nn.Linear.create ~bias:false rng d d;
    wv = Nn.Linear.create ~bias:false rng d d;
    wo = Nn.Linear.create ~bias:false rng d d;
    ffn1 = Nn.Linear.create rng d (2 * d);
    ffn2 = Nn.Linear.create rng (2 * d) d;
    lm_head = Nn.Linear.create rng d vocab;
  }

(* One pre-norm-free transformer block over a single sequence. *)
let forward t tokens =
  let len = min (Array.length tokens) t.config.max_len in
  let toks = Array.sub tokens 0 len in
  let x0 =
    Ad.add
      (Nn.Embedding.lookup t.tok_emb toks)
      (Nn.Embedding.lookup t.pos_emb (Array.init len Fun.id))
  in
  let q = Nn.Linear.apply t.wq x0
  and k = Nn.Linear.apply t.wk x0
  and v = Nn.Linear.apply t.wv x0 in
  let scores = Ad.scale (1.0 /. sqrt (float_of_int t.config.dim)) (Ad.matmul_nt q k) in
  let attended = Ad.matmul (Ad.softmax_rows scores) v in
  let x1 = Ad.add x0 (Nn.Linear.apply t.wo attended) in
  let ff = Nn.Linear.apply t.ffn2 (Ad.relu (Nn.Linear.apply t.ffn1 x1)) in
  Ad.add x1 ff

let block_tokens kernel =
  Array.init (Kernel.num_blocks kernel) (fun b -> (Kernel.block kernel b).Sp_kernel.Ir.tokens)

let pretrain ?(config = default_config) kernel =
  let t = create config in
  let rng = Rng.create (config.seed lxor 0xbe27) in
  let optim = Optim.adam ~lr:config.lr (params t) in
  let all = block_tokens kernel in
  let eligible =
    Array.of_list
      (List.filter (fun toks -> Array.length toks >= 2) (Array.to_list all))
  in
  for _step = 1 to config.steps do
    let toks = Array.copy (Rng.choose rng eligible) in
    let len = min (Array.length toks) config.max_len in
    let pos = Rng.int rng len in
    let original = toks.(pos) in
    toks.(pos) <- mask_token;
    let out = forward t toks in
    let logits = Nn.Linear.apply t.lm_head out in
    let targets = Array.make len (-1) in
    targets.(pos) <- original;
    let loss = Ad.cross_entropy_rows logits ~targets in
    Optim.zero_grad optim;
    Ad.backward loss;
    Optim.step optim
  done;
  t

let embed t tokens =
  let out = Ad.value (forward t tokens) in
  let rows, cols = Tensor.dims out in
  let pooled = Array.make cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      pooled.(j) <- pooled.(j) +. (Tensor.get out i j /. float_of_int rows)
    done
  done;
  pooled

(* ------------------------------------------------------------------ *)
(* Batched kernel embedding                                             *)
(* ------------------------------------------------------------------ *)

(* [embed_kernel] runs the trained encoder over every block of a kernel
   — thousands of short sequences. The batched path below concatenates a
   chunk of sequences into one matrix and runs each linear layer as a
   single matmul over all of them at once; only attention (which mixes
   rows within a sequence) runs per sequence, on zero-copy row-range
   views. Since every batched operation is row-independent and performs
   the same IEEE operations in the same per-row order as [forward], the
   result is bit-identical to the per-block path — test_snowplow pins
   this. No tape is built ([embed] only reads values), and temporaries
   draw from a local workspace ticked per chunk. *)

let gather (table : Tensor.t) idx =
  let _, d = Tensor.dims table in
  let out = Tensor.create (Array.length idx) d in
  Array.iteri
    (fun i r ->
      for j = 0 to d - 1 do
        Tensor.set out i j (Tensor.get table r j)
      done)
    idx;
  out

let linear lin x =
  let y = Tensor.matmul x (Nn.Linear.weight lin) in
  (match Nn.Linear.bias lin with
  | Some b -> Tensor.add_into ~dst:y b
  | None -> ());
  y

(* Same float operations in the same order as [Ad.softmax_rows]'s
   forward pass. *)
let softmax_rows_inplace (x : Tensor.t) =
  let rows, cols = Tensor.dims x in
  for i = 0 to rows - 1 do
    let mx = ref neg_infinity in
    for j = 0 to cols - 1 do
      mx := Float.max !mx (Tensor.get x i j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (Tensor.get x i j -. !mx) in
      Tensor.set x i j e;
      z := !z +. e
    done;
    for j = 0 to cols - 1 do
      Tensor.set x i j (Tensor.get x i j /. !z)
    done
  done

let embed_chunk t kernel ~result ~first ~count =
  let d = t.config.dim in
  let lens =
    Array.init count (fun i ->
        min
          (Array.length (Kernel.block kernel (first + i)).Sp_kernel.Ir.tokens)
          t.config.max_len)
  in
  let offs = Array.make (count + 1) 0 in
  for i = 0 to count - 1 do
    offs.(i + 1) <- offs.(i) + lens.(i)
  done;
  let total = offs.(count) in
  if total > 0 then begin
    let toks = Array.make total 0 and pos = Array.make total 0 in
    for i = 0 to count - 1 do
      let bt = (Kernel.block kernel (first + i)).Sp_kernel.Ir.tokens in
      for k = 0 to lens.(i) - 1 do
        toks.(offs.(i) + k) <- bt.(k);
        pos.(offs.(i) + k) <- k
      done
    done;
    let x0 = gather (Nn.Embedding.table t.tok_emb) toks in
    Tensor.add_into ~dst:x0 (gather (Nn.Embedding.table t.pos_emb) pos);
    let q = linear t.wq x0 and k = linear t.wk x0 and v = linear t.wv x0 in
    let attended = Tensor.create total d in
    for i = 0 to count - 1 do
      let len = lens.(i) in
      if len > 0 then begin
        let qv = Tensor.rows_view q offs.(i) len
        and kv = Tensor.rows_view k offs.(i) len
        and vv = Tensor.rows_view v offs.(i) len in
        let scores = Tensor.matmul_nt qv kv in
        Tensor.scale_into ~dst:scores
          (1.0 /. sqrt (float_of_int t.config.dim))
          scores;
        softmax_rows_inplace scores;
        Tensor.matmul_into ~dst:(Tensor.rows_view attended offs.(i) len) scores vv
      end
    done;
    let x1 = Tensor.add x0 (linear t.wo attended) in
    let ff =
      linear t.ffn2 (Tensor.map (fun x -> Float.max 0.0 x) (linear t.ffn1 x1))
    in
    let out = Tensor.add x1 ff in
    (* Mean-pool each sequence into its (zeroed) result row, accumulating
       in ascending-row order exactly like [embed]. *)
    for i = 0 to count - 1 do
      let len = lens.(i) in
      let rows_f = float_of_int len in
      for r = 0 to len - 1 do
        for j = 0 to d - 1 do
          Tensor.set result (first + i) j
            (Tensor.get result (first + i) j
            +. (Tensor.get out (offs.(i) + r) j /. rows_f))
        done
      done
    done
  end

let embed_kernel t kernel =
  let n = Kernel.num_blocks kernel in
  (* The result is allocated before any workspace scope — it outlives
     every generation. *)
  let result = Tensor.create n t.config.dim in
  let ws = Workspace.create () in
  let chunk = 128 in
  let b0 = ref 0 in
  while !b0 < n do
    let count = min chunk (n - !b0) in
    Workspace.scoped ws (fun () -> embed_chunk t kernel ~result ~first:!b0 ~count);
    b0 := !b0 + count
  done;
  result

let masked_lm_accuracy t kernel ~samples ~seed =
  let rng = Rng.create seed in
  let all = block_tokens kernel in
  let eligible =
    Array.of_list
      (List.filter (fun toks -> Array.length toks >= 2) (Array.to_list all))
  in
  let correct = ref 0 in
  for _ = 1 to samples do
    let toks = Array.copy (Rng.choose rng eligible) in
    let len = min (Array.length toks) t.config.max_len in
    let pos = Rng.int rng len in
    let original = toks.(pos) in
    toks.(pos) <- mask_token;
    let logits = Ad.value (Nn.Linear.apply t.lm_head (forward t toks)) in
    let best = ref 0 and best_v = ref neg_infinity in
    for v = 0 to vocab - 1 do
      if Tensor.get logits pos v > !best_v then begin
        best_v := Tensor.get logits pos v;
        best := v
      end
    done;
    if !best = original then incr correct
  done;
  float_of_int !correct /. float_of_int samples
