(** Mutation dataset generation (§3.1).

    For every base test of a seed corpus, run many random argument
    mutations through the deterministic executor, keep the {e successful}
    ones (mutant coverage contains blocks the base missed), merge mutations
    that unlocked the same new coverage, and invert each into a training
    example: base test + base coverage + a noisy target set (design option
    (c): a sample of the one-branch-away frontier guaranteed to overlap the
    truly reachable new blocks, at 1 / 25% / 50% / 75% / 100% of the
    frontier) + the argument set to mark MUTATE. Examples whose target
    blocks are over-popular are discarded, and splits are by base test so
    no base leaks across train/valid/eval. *)

type example = {
  base : Sp_syzlang.Prog.t;
  exec : Sp_kernel.Kernel.result;  (** deterministic execution of the base *)
  mutated_args : Sp_syzlang.Prog.path list;  (** merged successful localization *)
  new_blocks : int list;  (** the mutant's coverage minus the base's *)
  targets : int list;  (** the noisy desired-coverage set fed to the model *)
  graph : Query_graph.t;
  prepared : Pmm.prepared;
  labels : float array;  (** aligned with [Pmm.prepared_paths prepared] *)
}

type config = {
  mutations_per_base : int;  (** the paper uses 1000 *)
  max_args_per_mutation : int;
  popularity_cap : int;  (** max examples in which a block appears as target *)
  max_examples_per_base : int;
  noise : float;  (** executor noise level; 0 = Snowplow's collection (§3.1) *)
  exact_targets : bool;
      (** ablation: use §3.1's design option (a) — the exact new coverage —
          instead of the noisy frontier mixture of option (c) *)
  drop_edges : Query_graph.edge_kind list;
      (** ablation: remove edge families from the query graphs *)
  stratify : bool;
      (** stratify the per-base 80/10/10 split by each base's MUTATE-label
          rate (terciles), so class balance is comparable across parts;
          [false] (the default) keeps the historical contiguous split
          byte-for-byte *)
  seed : int;
}

val default_config : config

type split = {
  train : example array;
  valid : example array;
  eval : example array;
}

val collect_for_base :
  ?config:config -> Sp_kernel.Kernel.t -> Sp_syzlang.Prog.t -> example list
(** Examples derived from one base test (empty when the base crashes or no
    mutation succeeds). The popularity cap is applied across bases by
    {!collect}. *)

val collect :
  ?config:config -> Sp_kernel.Kernel.t -> bases:Sp_syzlang.Prog.t list -> split
(** Full pipeline over a seed corpus, with the 80/10/10 per-base split
    (label-rate stratified when [config.stratify]). *)

val stratified_assignment : float array -> [ `Train | `Valid | `Eval ] array
(** The pure partition behind the stratified split: input is the per-base
    label rate in (shuffled) base order; bases are grouped into terciles
    of the rate distribution and each tercile is split 80/10/10 in order
    with the same floor formulas ([k*8/10], [k/10]) as the unstratified
    split. Exposed for property tests. *)

val successful_mutation_rate :
  ?config:config -> Sp_kernel.Kernel.t -> bases:Sp_syzlang.Prog.t list -> float
(** Successful mutations per 1000 random argument mutations — the §5.1
    measurement (the paper reports ~45, and ~44 new tests per 1000 for
    Syzkaller). *)

val stats : split -> (string * float) list
(** The §5.1 dataset statistics: average node/edge counts per kind,
    arguments per test, examples per base. *)
