module Json = Sp_obs.Json

(* The snowplow strategy's live state outside the campaign proper:
   the inference service (queue, clock, caches), the funnel lanes
   (outboxes/inboxes in flight at the barrier) and each shard's
   delivered-prediction memo. Bundled as the campaign snapshot's [aux]
   field so a resumed snowplow campaign is bit-for-bit the
   uninterrupted one. *)
let aux ~parse ~inference ~funnel ~predictions =
  let aux_json () =
    Json.Obj
      [ ("inference", Inference.state_json inference);
        ("funnel", Funnel.state_json funnel);
        ( "predictions",
          Json.Arr
            (Array.to_list (Array.map Hybrid.predictions_json predictions)) )
      ]
  in
  let aux_restore j =
    let open Json.Decode in
    Inference.restore_state inference ~parse (field "inference" j);
    Funnel.restore_state funnel ~parse (field "funnel" j);
    match field "predictions" j with
    | Json.Arr ps ->
      if List.length ps <> Array.length predictions then
        error "Persist.aux: snapshot has %d prediction memos, campaign has %d"
          (List.length ps) (Array.length predictions);
      List.iteri
        (fun i pj -> Hybrid.restore_predictions ~parse predictions.(i) pj)
        ps
    | _ -> error "Persist.aux: predictions: expected array"
  in
  { Sp_fuzz.Campaign.aux_json; aux_restore }
