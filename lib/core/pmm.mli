(** The Program Mutation Model (§3.3).

    A relational graph neural network over the argument-mutation query
    graph: node features combine learned embeddings (syscall variant name,
    argument type kind, argument type name signature, node role) with the
    frozen block-content encoder's output for kernel nodes; message passing
    uses one learned linear map per edge type and direction (weights tied
    across rounds); a binary head scores every argument node MUTATE /
    NOT-MUTATE, trained with weighted binary cross-entropy. *)

type config = {
  hidden : int;  (** GNN width (default 24) *)
  layers : int;  (** message-passing rounds (default 4) *)
  pos_weight : float;  (** BCE weight of MUTATE labels (default 6) *)
  share_relations : bool;
      (** ablation switch: one shared message weight for every edge type
          (an untyped GCN) instead of per-relation weights *)
  seed : int;
}

val default_config : config

type t

val create : ?config:config -> encoder_dim:int -> num_syscalls:int -> unit -> t

val config : t -> config

val workspace : t -> Sp_ml.Workspace.t
(** The model's buffer arena. {!predict_scores}/{!predict} run inside one
    generation of it; the trainer ticks stripe clones' arenas at
    optimizer-step boundaries. *)

val clone_shared : t -> t
(** A stripe worker's view of the model: parameter values are physically
    shared with the original (optimizer steps through either are visible
    to both), gradient slots are private, the workspace is fresh. Used by
    {!Trainer} to build tapes on several domains at once and reduce the
    per-stripe gradients deterministically. *)

val params : t -> Sp_ml.Ad.t list

val num_parameters : t -> int

(** {1 Graph preprocessing} *)

type prepared
(** A query graph lowered to the index arrays the forward pass consumes;
    cache it when the same graph is used across epochs. *)

val prepare : Query_graph.t -> prepared

val prepared_paths : prepared -> Sp_syzlang.Prog.path array
(** Argument paths in head order, aligned with logits and labels. *)

(** {1 Forward / training} *)

val forward_logits : t -> block_embs:Sp_ml.Tensor.t -> prepared -> Sp_ml.Ad.t
(** One logit per argument node (mutable and immutable alike), in
    {!prepared_paths} order. [block_embs] is {!Encoder.embed_kernel} output
    for the kernel the graph was built against. *)

val loss :
  t -> block_embs:Sp_ml.Tensor.t -> prepared -> labels:float array -> Sp_ml.Ad.t
(** Weighted BCE over argument nodes; [labels] aligned with
    {!prepared_paths}. *)

val infer_logits : t -> block_embs:Sp_ml.Tensor.t -> prepared -> Sp_ml.Tensor.t
(** Tape-free forward pass (same result as [forward_logits], ~4x faster);
    used on the inference-service hot path. *)

(** {1 Inference} *)

val threshold : t -> float

val set_threshold : t -> float -> unit
(** Decision threshold on the MUTATE probability (calibrated on the
    validation split by the trainer; default 0.5). *)

val predict_scores :
  t ->
  block_embs:Sp_ml.Tensor.t ->
  Query_graph.t ->
  (Sp_syzlang.Prog.path * float) list
(** MUTATE probability per argument node. *)

val predict :
  t ->
  block_embs:Sp_ml.Tensor.t ->
  Query_graph.t ->
  Sp_syzlang.Prog.path list
(** Argument paths whose score clears the threshold; when none does, the
    single best-scoring argument (the model must localize {e somewhere}). *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Write the trained weights (and calibrated threshold) to a file — the
    artifact a torchserve-style deployment would load (§4, §6 suggests
    sharing trained weights across institutions). *)

val load : t -> string -> (unit, string) result
(** Load weights saved by {!save} into an architecture-compatible model
    (same config, encoder width and syscall count). *)
