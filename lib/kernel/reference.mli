(** The original tree-walking interpreter, preserved as the compiled
    executor's reference oracle.

    Semantics are bit-for-bit those of {!Kernel.execute} (which now runs
    {!Exec} bytecode): same traces, crash, coverage sets and object
    post-states for any program and noise stream. Used by the differential
    property tests and as bench e11's pre-compilation baseline — never on
    a campaign hot path. *)

type t

val of_built : Build.built -> t

val execute :
  ?noise:Sp_util.Rng.t * float -> t -> Sp_syzlang.Prog.t -> Exec.result
