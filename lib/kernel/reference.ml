(* The original tree-walking interpreter, kept as the executor's reference
   oracle: it re-resolves every predicate through [Prog.get] AST walks,
   builds traces as lists and coverage as freshly allocated bitsets — slow
   but transparently close to the semantics in the paper. [Exec] must be
   observationally identical; a differential property test (and bench e11's
   smoke check) compares the two on random programs. Keep any semantic
   change mirrored in both, or the test will tell you. *)

module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Spec = Sp_syzlang.Spec
module Value = Sp_syzlang.Value
module Prog = Sp_syzlang.Prog

type t = {
  built : Build.built;
  succ_edges : (int * int) array array;
}

let of_built (built : Build.built) =
  let cfg = built.Build.cfg in
  let succ_edges =
    Array.init (Array.length built.Build.blocks) (fun b ->
        Sp_cfg.Cfg.succs cfg b
        |> List.map (fun dst ->
               match Sp_cfg.Cfg.edge_id cfg (b, dst) with
               | Some e -> (dst, e)
               | None -> assert false)
        |> Array.of_list)
  in
  { built; succ_edges }

let num_blocks t = Array.length t.built.Build.blocks

let block t i = t.built.Build.blocks.(i)

let handler_entry t sys = t.built.Build.entries.(sys)

let bug t i = t.built.Build.bugs.(i)

let background_blocks t = t.built.Build.background

(* Scalar view of the argument at [path] of call [ci]; a dangling path
   (e.g. reading through a NULL pointer) evaluates to 0, the error-path
   outcome. *)
let scalar_at prog ci path =
  match Prog.get prog { Prog.call = ci; arg = path } with
  | v -> Value.scalar v
  | exception Invalid_argument _ -> 0

let resource_at prog ci path =
  match Prog.get prog { Prog.call = ci; arg = path } with
  | Value.Vres i -> Some i
  | _ -> None
  | exception Invalid_argument _ -> None

let eval_pred prog (objects : Exec.kobject option array) ci
    (pred : Ir.predicate) =
  match pred with
  | Ir.Arg { path; cmp; const; _ } ->
    Ir.eval_cmp cmp (scalar_at prog ci path) const
  | Ir.Res_valid { path; _ } -> (
    match resource_at prog ci path with
    | Some i -> i >= 0 && i < ci && objects.(i) <> None
    | None -> false)
  | Ir.Res_state { path; field; cmp; const; _ } -> (
    match resource_at prog ci path with
    | Some i when i >= 0 && i < ci -> (
      match objects.(i) with
      | Some obj ->
        let v =
          match field with
          | `Mode -> obj.Exec.mode
          | `Oflags -> obj.Exec.oflags
        in
        Ir.eval_cmp cmp v const
      | None -> false)
    | Some _ | None -> false)

(* Walk one handler; returns visited blocks in order and whether a crash
   block was reached. Handler regions are acyclic by construction, but a
   step guard keeps the interpreter total regardless. *)
let run_call t prog objects ci =
  let spec = prog.(ci).Prog.spec in
  let entry = handler_entry t spec.Spec.sys_id in
  let visited = ref [] in
  let crashed = ref None in
  let steps = ref 0 in
  let max_steps = num_blocks t + 4 in
  let rec walk bid =
    incr steps;
    if !steps > max_steps then ()
    else begin
      visited := bid :: !visited;
      match (block t bid).Ir.term with
      | Ir.Jump nxt -> walk nxt
      | Ir.Cond { pred; if_true; if_false } ->
        walk (if eval_pred prog objects ci pred then if_true else if_false)
      | Ir.Ret -> ()
      | Ir.Crash bug_id -> crashed := Some bug_id
    end
  in
  walk entry;
  (List.rev !visited, !crashed)

let make_object t prog ci (spec : Spec.t) kind =
  let mode_path, oflags_path = t.built.Build.mode_paths.(spec.Spec.sys_id) in
  let field = function None -> 0 | Some p -> scalar_at prog ci p in
  {
    Exec.okind = kind;
    mode = field mode_path;
    oflags = field oflags_path;
  }

let noise_blocks t rng level =
  let extra = ref [] in
  if Rng.coin rng level then begin
    (* A timer-interrupt-style run through the background chain. *)
    let bg = Array.of_list (background_blocks t) in
    let start = Rng.int rng (Array.length bg) in
    let len = min (Rng.int_in rng 2 8) (Array.length bg - start) in
    for i = start + len - 1 downto start do
      extra := bg.(i) :: !extra
    done
  end;
  if Rng.coin rng (level /. 2.0) then begin
    (* Phantom blocks from unrelated handlers (network-RPC pollution). *)
    let n = Rng.int_in rng 1 3 in
    for _ = 1 to n do
      extra := Rng.int rng (num_blocks t) :: !extra
    done
  end;
  !extra

let execute ?noise t (prog : Prog.t) : Exec.result =
  let n = Array.length prog in
  let objects = Array.make n None in
  let covered = Bitset.create (num_blocks t) in
  let covered_edges =
    Bitset.create (Sp_cfg.Cfg.num_edges t.built.Build.cfg)
  in
  let record_run blocks =
    let edge_of b1 b2 =
      let arr = t.succ_edges.(b1) in
      let rec find i =
        if i >= Array.length arr then None
        else
          let dst, e = arr.(i) in
          if dst = b2 then Some e else find (i + 1)
      in
      find 0
    in
    let rec go = function
      | [] -> ()
      | [ b ] -> Bitset.add covered b
      | b1 :: (b2 :: _ as rest) ->
        Bitset.add covered b1;
        (match edge_of b1 b2 with
        | Some e -> Bitset.add covered_edges e
        | None -> ());
        go rest
    in
    go blocks
  in
  let traces = ref [] in
  let crash = ref None in
  let ci = ref 0 in
  while !ci < n && !crash = None do
    let visited, crashed = run_call t prog objects !ci in
    let visited =
      match noise with
      | Some (rng, level) when level > 0.0 -> visited @ noise_blocks t rng level
      | Some _ | None -> visited
    in
    record_run visited;
    traces := { Exec.call_idx = !ci; visited } :: !traces;
    (match crashed with
    | Some bug_id ->
      crash := Some { Exec.bug = bug t bug_id; crash_call = !ci }
    | None ->
      let spec = prog.(!ci).Prog.spec in
      (match spec.Spec.ret with
      | Some kind -> objects.(!ci) <- Some (make_object t prog !ci spec kind)
      | None -> ()));
    incr ci
  done;
  {
    Exec.traces = List.rev !traces;
    crash = !crash;
    covered;
    covered_edges;
    objects;
  }
