(* Compiled executor: the kernel's handler CFGs lowered, once at generation
   time, into a flat instruction array that an allocation-free interpreter
   loop runs many millions of times per campaign.

   Three ideas, mirroring what a real KCOV-style harness does:

   - Every basic block becomes one instruction at index [block id]. Branch
     predicates carry a pre-resolved *slot* into the per-call argument
     image instead of an argument path, and every branch target carries its
     precomputed static edge id, so the hot loop never walks a value AST
     and never searches a successor list.

   - Per call, the arguments are flattened once into two int arrays (the
     scalar image and the resource image) indexed by the spec's compiled
     slot layout. Only paths some predicate (or produced-object field)
     actually reads get slots, so the fill cost is proportional to the
     handful of referenced paths, not the size of the argument tree.

   - All per-execution state lives in a reusable [scratch]: coverage as
     generation-stamped sparse sets, traces as one growable int buffer with
     per-call offsets. In steady state an execution allocates nothing;
     bitsets, trace lists and the [result] record are materialized only on
     demand (corpus admission, crash triage, or an explicit
     [result_of_scratch]). *)

module Bitset = Sp_util.Bitset
module Stampset = Sp_util.Stampset
module Rng = Sp_util.Rng
module Spec = Sp_syzlang.Spec
module Value = Sp_syzlang.Value
module Prog = Sp_syzlang.Prog

type kobject = { okind : string; mode : int; oflags : int }

type crash = { bug : Bug.t; crash_call : int }

type call_trace = { call_idx : int; visited : int list }

type result = {
  traces : call_trace list;
  crash : crash option;
  covered : Bitset.t;
  covered_edges : Bitset.t;
  objects : kobject option array;
}

(* ------------------------------------------------------------------ *)
(* Instruction set                                                     *)
(* ------------------------------------------------------------------ *)

(* One instruction per basic block, at index [block id]. Conditionals are
   specialized per predicate constructor so the interpreter loop does no
   nested matching; every target/edge pair is static. *)
type instr =
  | Ret
  | Crash of int  (* bug id *)
  | Jmp of { target : int; edge : int }
  | Cond_arg of {
      slot : int;
      cmp : Ir.cmp;
      const : int;
      t_target : int;
      t_edge : int;
      f_target : int;
      f_edge : int;
    }
  | Cond_res_valid of {
      slot : int;
      t_target : int;
      t_edge : int;
      f_target : int;
      f_edge : int;
    }
  | Cond_res_state of {
      slot : int;
      is_mode : bool;
      cmp : Ir.cmp;
      const : int;
      t_target : int;
      t_edge : int;
      f_target : int;
      f_edge : int;
    }

(* ------------------------------------------------------------------ *)
(* Argument image layout                                               *)
(* ------------------------------------------------------------------ *)

(* A pruned mirror of the spec's argument tree: only paths that some
   predicate or object-field derivation reads survive, each carrying its
   slot (or -1 for interior nodes nobody reads directly). [child_idx] holds
   the child positions in ascending order so the fill can walk a struct's
   value list once, in sync. *)
type lnode = { slot : int; child_idx : int array; children : lnode array }

type spec_code = {
  root : lnode;  (* slot -1; children index the top-level argument list *)
  num_slots : int;
  mode_slot : int;  (* -1 when absent *)
  oflags_slot : int;
  produces : string;  (* object kind; "" when the spec returns nothing *)
}

type code = {
  instrs : instr array;
  entries : int array;  (* per sys_id *)
  specs : spec_code array;  (* per sys_id *)
  num_blocks : int;
  num_edges : int;
  max_steps : int;
  max_slots : int;
  bugs : Bug.t array;
  background : int array;  (* background chain, precomputed once *)
  (* successor -> edge id per block; only the noise path consults this at
     runtime (noise blocks are not reached through compiled branches) *)
  succ_edges : (int * int) array array;
}

(* [res] image value for "this path does not hold a resource". Negative,
   so every [i >= 0 && i < ci] guard rejects it exactly like the reference
   interpreter rejects a non-[Vres] or dangling path. *)
let res_none = min_int

(* ------------------------------------------------------------------ *)
(* Compiler                                                            *)
(* ------------------------------------------------------------------ *)

type tnode = { mutable tslot : int; mutable tchildren : (int * tnode) list }

let path_of_pred = function
  | Ir.Arg { path; _ } | Ir.Res_state { path; _ } | Ir.Res_valid { path; _ }
    ->
    path

let compile (built : Build.built) =
  let blocks = built.Build.blocks in
  let cfg = built.Build.cfg in
  let db = built.Build.db in
  let n_sys = Array.length built.Build.entries in
  (* Pass 1: one layout trie per spec, a slot per distinct referenced
     path. Slot order (block order, then object-field paths) is arbitrary
     but deterministic. *)
  let roots = Array.init n_sys (fun _ -> { tslot = -1; tchildren = [] }) in
  let counters = Array.make n_sys 0 in
  let insert sys path =
    let rec go node = function
      | [] ->
        if node.tslot < 0 then begin
          node.tslot <- counters.(sys);
          counters.(sys) <- counters.(sys) + 1
        end;
        node.tslot
      | i :: rest ->
        let child =
          match List.assoc_opt i node.tchildren with
          | Some c -> c
          | None ->
            let c = { tslot = -1; tchildren = [] } in
            node.tchildren <- (i, c) :: node.tchildren;
            c
        in
        go child rest
    in
    go roots.(sys) path
  in
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Cond { pred; _ } ->
        assert (b.Ir.sys_id >= 0);
        ignore (insert b.Ir.sys_id (path_of_pred pred))
      | Ir.Jump _ | Ir.Ret | Ir.Crash _ -> ())
    blocks;
  let mode_slots = Array.make n_sys (-1) in
  let oflags_slots = Array.make n_sys (-1) in
  let produces = Array.make n_sys "" in
  for sys = 0 to n_sys - 1 do
    match (Spec.by_id db sys).Spec.ret with
    | None -> ()
    | Some kind ->
      produces.(sys) <- kind;
      let mode_path, oflags_path = built.Build.mode_paths.(sys) in
      (match mode_path with
      | Some p -> mode_slots.(sys) <- insert sys p
      | None -> ());
      (match oflags_path with
      | Some p -> oflags_slots.(sys) <- insert sys p
      | None -> ())
  done;
  (* Pass 2: lower blocks, resolving paths against the (complete) tries. *)
  let slot_of sys path =
    let rec go node = function
      | [] ->
        assert (node.tslot >= 0);
        node.tslot
      | i :: rest -> go (List.assoc i node.tchildren) rest
    in
    go roots.(sys) path
  in
  let eid src dst =
    match Sp_cfg.Cfg.edge_id cfg (src, dst) with
    | Some e -> e
    | None -> assert false
  in
  let instrs =
    Array.map
      (fun (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Ret -> Ret
        | Ir.Crash bug -> Crash bug
        | Ir.Jump target -> Jmp { target; edge = eid b.Ir.id target }
        | Ir.Cond { pred; if_true; if_false } -> (
          let t_target = if_true and f_target = if_false in
          let t_edge = eid b.Ir.id if_true and f_edge = eid b.Ir.id if_false in
          let slot = slot_of b.Ir.sys_id (path_of_pred pred) in
          match pred with
          | Ir.Arg { cmp; const; _ } ->
            Cond_arg { slot; cmp; const; t_target; t_edge; f_target; f_edge }
          | Ir.Res_valid _ ->
            Cond_res_valid { slot; t_target; t_edge; f_target; f_edge }
          | Ir.Res_state { field; cmp; const; _ } ->
            Cond_res_state
              {
                slot;
                is_mode = (field = `Mode);
                cmp;
                const;
                t_target;
                t_edge;
                f_target;
                f_edge;
              }))
      blocks
  in
  let rec freeze tn =
    let kids =
      List.sort (fun (a, _) (b, _) -> compare (a : int) b) tn.tchildren
    in
    {
      slot = tn.tslot;
      child_idx = Array.of_list (List.map fst kids);
      children = Array.of_list (List.map (fun (_, c) -> freeze c) kids);
    }
  in
  let specs =
    Array.init n_sys (fun sys ->
        {
          root = freeze roots.(sys);
          num_slots = counters.(sys);
          mode_slot = mode_slots.(sys);
          oflags_slot = oflags_slots.(sys);
          produces = produces.(sys);
        })
  in
  let succ_edges =
    Array.init (Array.length blocks) (fun b ->
        Sp_cfg.Cfg.succs cfg b
        |> List.map (fun dst -> (dst, eid b dst))
        |> Array.of_list)
  in
  {
    instrs;
    entries = built.Build.entries;
    specs;
    num_blocks = Array.length blocks;
    num_edges = Sp_cfg.Cfg.num_edges cfg;
    max_steps = Array.length blocks + 4;
    max_slots = Array.fold_left max 0 counters;
    bugs = built.Build.bugs;
    background = Array.of_list built.Build.background;
    succ_edges;
  }

(* ------------------------------------------------------------------ *)
(* Scratch                                                             *)
(* ------------------------------------------------------------------ *)

type scratch = {
  code : code;
  slots : int array;  (* scalar image of the current call *)
  res : int array;  (* resource image; [res_none] = not a resource *)
  covered : Stampset.t;
  covered_edges : Stampset.t;
  mutable trace : int array;  (* all calls' visited blocks, concatenated *)
  mutable trace_len : int;
  mutable call_off : int array;  (* per call, offset into [trace]; +1 fence *)
  mutable obj_present : bool array;  (* produced-object post-state, per call *)
  mutable obj_mode : int array;
  mutable obj_oflags : int array;
  mutable obj_kind : string array;
  mutable ncalls : int;  (* calls actually executed (crash cuts short) *)
  mutable nprog : int;  (* length of the last executed program *)
  mutable crash_bug : int;  (* -1 = no crash *)
  mutable crash_call : int;
  noise_buf : int array;  (* phantom-block draws, max 3 per call *)
}

let create_scratch code =
  {
    code;
    slots = Array.make (max 1 code.max_slots) 0;
    res = Array.make (max 1 code.max_slots) res_none;
    covered = Stampset.create code.num_blocks;
    covered_edges = Stampset.create code.num_edges;
    trace = Array.make 256 0;
    trace_len = 0;
    call_off = Array.make 17 0;
    obj_present = Array.make 16 false;
    obj_mode = Array.make 16 0;
    obj_oflags = Array.make 16 0;
    obj_kind = Array.make 16 "";
    ncalls = 0;
    nprog = 0;
    crash_bug = -1;
    crash_call = -1;
    noise_buf = Array.make 3 0;
  }

let trace_push st b =
  let cap = Array.length st.trace in
  if st.trace_len = cap then begin
    let bigger = Array.make (2 * cap) 0 in
    Array.blit st.trace 0 bigger 0 cap;
    st.trace <- bigger
  end;
  Array.unsafe_set st.trace st.trace_len b;
  st.trace_len <- st.trace_len + 1

let ensure_calls st n =
  if Array.length st.call_off < n + 1 then begin
    let cap = max (n + 1) (2 * Array.length st.call_off) in
    st.call_off <- Array.make cap 0;
    st.obj_present <- Array.make cap false;
    st.obj_mode <- Array.make cap 0;
    st.obj_oflags <- Array.make cap 0;
    st.obj_kind <- Array.make cap ""
  end

(* ------------------------------------------------------------------ *)
(* Argument-image fill                                                 *)
(* ------------------------------------------------------------------ *)

(* Replicates [Prog.get] step semantics exactly: a path step [i] descends
   into [Vptr (Some inner)] only when [i = 0], into the [i]-th field of a
   [Vstruct], and dangles otherwise (NULL pointer, leaf value, missing
   field). A dangling path reads as scalar 0 / no-resource, the reference
   interpreter's error-path outcome. *)
let rec fill_dangling st (node : lnode) =
  if node.slot >= 0 then begin
    Array.unsafe_set st.slots node.slot 0;
    Array.unsafe_set st.res node.slot res_none
  end;
  for k = 0 to Array.length node.children - 1 do
    fill_dangling st (Array.unsafe_get node.children k)
  done

let rec fill_node st (node : lnode) (v : Value.t) =
  if node.slot >= 0 then begin
    Array.unsafe_set st.slots node.slot (Value.scalar v);
    Array.unsafe_set st.res node.slot
      (match v with Value.Vres i -> i | _ -> res_none)
  end;
  if Array.length node.children > 0 then
    match v with
    | Value.Vptr (Some inner) ->
      for k = 0 to Array.length node.children - 1 do
        if Array.unsafe_get node.child_idx k = 0 then
          fill_node st (Array.unsafe_get node.children k) inner
        else fill_dangling st (Array.unsafe_get node.children k)
      done
    | Value.Vstruct vs -> fill_fields st node vs
    | _ ->
      for k = 0 to Array.length node.children - 1 do
        fill_dangling st (Array.unsafe_get node.children k)
      done

(* Walk the value list and the (ascending) compiled children in sync; no
   per-field [List.nth]. Also serves the top level, where [Prog.get]
   indexes the argument list exactly like a struct. Written as top-level
   recursion (not a local loop closing over [st]) to keep the fill
   closure-free. *)
and fill_fields st (node : lnode) vs = fill_fields_from st node 0 0 vs

and fill_fields_from st (node : lnode) k pos vs =
  let nkids = Array.length node.children in
  if k < nkids then
    match vs with
    | [] ->
      for j = k to nkids - 1 do
        fill_dangling st node.children.(j)
      done
    | v :: tl ->
      if Array.unsafe_get node.child_idx k = pos then begin
        fill_node st (Array.unsafe_get node.children k) v;
        fill_fields_from st node (k + 1) (pos + 1) tl
      end
      else fill_fields_from st node k (pos + 1) tl

(* ------------------------------------------------------------------ *)
(* Interpreter loop                                                    *)
(* ------------------------------------------------------------------ *)

(* [walk]/[step] carry only ints and stay tail-recursive: no closures, no
   allocation. [steps] counts visited blocks including the entry; the
   guard drops the successor *without* recording the edge, exactly like
   the reference interpreter's bounded walk (handler regions are acyclic
   by construction; the guard keeps the loop total regardless). *)
let rec walk code st ci pc steps =
  match Array.unsafe_get code.instrs pc with
  | Ret -> ()
  | Crash bug ->
    st.crash_bug <- bug;
    st.crash_call <- ci
  | Jmp { target; edge } -> step code st ci target edge steps
  | Cond_arg { slot; cmp; const; t_target; t_edge; f_target; f_edge } ->
    if Ir.eval_cmp cmp (Array.unsafe_get st.slots slot) const then
      step code st ci t_target t_edge steps
    else step code st ci f_target f_edge steps
  | Cond_res_valid { slot; t_target; t_edge; f_target; f_edge } ->
    let i = Array.unsafe_get st.res slot in
    if i >= 0 && i < ci && Array.unsafe_get st.obj_present i then
      step code st ci t_target t_edge steps
    else step code st ci f_target f_edge steps
  | Cond_res_state { slot; is_mode; cmp; const; t_target; t_edge; f_target; f_edge }
    ->
    let i = Array.unsafe_get st.res slot in
    let taken =
      i >= 0 && i < ci
      && Array.unsafe_get st.obj_present i
      && Ir.eval_cmp cmp
           (if is_mode then Array.unsafe_get st.obj_mode i
            else Array.unsafe_get st.obj_oflags i)
           const
    in
    if taken then step code st ci t_target t_edge steps
    else step code st ci f_target f_edge steps

and step code st ci target edge steps =
  let steps = steps + 1 in
  if steps <= code.max_steps then begin
    trace_push st target;
    Stampset.add st.covered target;
    Stampset.add st.covered_edges edge;
    walk code st ci target steps
  end

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let edge_of code b1 b2 =
  let arr = Array.unsafe_get code.succ_edges b1 in
  let n = Array.length arr in
  let rec find i =
    if i >= n then -1
    else
      let dst, e = Array.unsafe_get arr i in
      if dst = b2 then e else find (i + 1)
  in
  find 0

(* Same RNG draw sequence and same appended order as the reference
   [noise_blocks]: an optional background-chain segment prefixed by the
   phantom draws in reverse draw order. Coverage and any real static edges
   the extra blocks happen to form (background chain links, or the
   junction from the call's last real block) are recorded the way
   [record_run] would. *)
let add_noise code st rng level ci =
  let seg_start = st.call_off.(ci) in
  let real_end = st.trace_len in
  let bg_start = ref 0 and bg_len = ref 0 in
  if Rng.coin rng level then begin
    let nbg = Array.length code.background in
    let start = Rng.int rng nbg in
    bg_start := start;
    bg_len := min (Rng.int_in rng 2 8) (nbg - start)
  end;
  let nph = ref 0 in
  if Rng.coin rng (level /. 2.0) then begin
    let n = Rng.int_in rng 1 3 in
    for k = 0 to n - 1 do
      st.noise_buf.(k) <- Rng.int rng code.num_blocks
    done;
    nph := n
  end;
  for k = !nph - 1 downto 0 do
    trace_push st st.noise_buf.(k)
  done;
  for i = !bg_start to !bg_start + !bg_len - 1 do
    trace_push st code.background.(i)
  done;
  if st.trace_len > real_end then begin
    for k = real_end to st.trace_len - 1 do
      Stampset.add st.covered st.trace.(k)
    done;
    let first = if real_end - 1 >= seg_start then real_end - 1 else real_end in
    for k = first to st.trace_len - 2 do
      let e = edge_of code st.trace.(k) st.trace.(k + 1) in
      if e >= 0 then Stampset.add st.covered_edges e
    done
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let execute_raw ?noise code st (prog : Prog.t) =
  if st.code != code then
    invalid_arg "Exec.execute_raw: scratch was created for a different kernel";
  let n = Array.length prog in
  ensure_calls st n;
  st.nprog <- n;
  Stampset.clear st.covered;
  Stampset.clear st.covered_edges;
  st.trace_len <- 0;
  st.crash_bug <- -1;
  st.crash_call <- -1;
  for i = 0 to n - 1 do
    Array.unsafe_set st.obj_present i false
  done;
  (* [st.ncalls] doubles as the loop counter: no heap-allocated ref. *)
  st.ncalls <- 0;
  while st.ncalls < n && st.crash_bug < 0 do
    let ci = st.ncalls in
    let c = Array.unsafe_get prog ci in
    let sys = c.Prog.spec.Spec.sys_id in
    let sc = Array.unsafe_get code.specs sys in
    st.call_off.(ci) <- st.trace_len;
    fill_fields st sc.root c.Prog.args;
    let entry = Array.unsafe_get code.entries sys in
    trace_push st entry;
    Stampset.add st.covered entry;
    walk code st ci entry 1;
    (match noise with
    | Some (rng, level) when level > 0.0 -> add_noise code st rng level ci
    | Some _ | None -> ());
    if st.crash_bug < 0 && sc.produces <> "" then begin
      st.obj_present.(ci) <- true;
      st.obj_kind.(ci) <- sc.produces;
      st.obj_mode.(ci) <-
        (if sc.mode_slot >= 0 then st.slots.(sc.mode_slot) else 0);
      st.obj_oflags.(ci) <-
        (if sc.oflags_slot >= 0 then st.slots.(sc.oflags_slot) else 0)
    end;
    st.ncalls <- ci + 1
  done;
  st.call_off.(st.ncalls) <- st.trace_len

(* ------------------------------------------------------------------ *)
(* Scratch views and materialization                                   *)
(* ------------------------------------------------------------------ *)

let scratch_code st = st.code

let crashed st = st.crash_bug >= 0

let crash_of_scratch st =
  if st.crash_bug >= 0 then
    Some { bug = st.code.bugs.(st.crash_bug); crash_call = st.crash_call }
  else None

let covered_blocks st = st.covered

let covered_edges st = st.covered_edges

let blocks_bitset st = Stampset.to_bitset st.covered

let edges_bitset st = Stampset.to_bitset st.covered_edges

let num_calls st = st.ncalls

let result_of_scratch st =
  let code = st.code in
  let traces = ref [] in
  for ci = st.ncalls - 1 downto 0 do
    let visited = ref [] in
    for k = st.call_off.(ci + 1) - 1 downto st.call_off.(ci) do
      visited := st.trace.(k) :: !visited
    done;
    traces := { call_idx = ci; visited = !visited } :: !traces
  done;
  let covered = Bitset.create code.num_blocks in
  Stampset.iter (Bitset.add covered) st.covered;
  let covered_edges = Bitset.create code.num_edges in
  Stampset.iter (Bitset.add covered_edges) st.covered_edges;
  let objects =
    Array.init st.nprog (fun i ->
        if i < st.ncalls && st.obj_present.(i) then
          Some
            {
              okind = st.obj_kind.(i);
              mode = st.obj_mode.(i);
              oflags = st.obj_oflags.(i);
            }
        else None)
  in
  { traces = !traces; crash = crash_of_scratch st; covered; covered_edges;
    objects }
