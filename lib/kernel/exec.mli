(** Compiled test executor: CFG handlers lowered to bytecode at kernel
    generation time, plus the reusable per-execution scratch.

    See DESIGN.md §8 for the instruction set, the slot-resolution rules of
    the argument image, and the scratch-ownership contract. {!Kernel} wraps
    this module; campaign code reaches it through [Kernel]'s re-exports
    rather than directly. The reference tree-walking interpreter this was
    compiled from survives as {!Reference} and must stay observationally
    identical (a differential property test enforces it). *)

(** {1 Results} — re-exported by {!Kernel} *)

type kobject = { okind : string; mode : int; oflags : int }

type crash = { bug : Bug.t; crash_call : int }

type call_trace = { call_idx : int; visited : int list }

type result = {
  traces : call_trace list;
  crash : crash option;
  covered : Sp_util.Bitset.t;
  covered_edges : Sp_util.Bitset.t;
  objects : kobject option array;
}

(** {1 Compiled code} *)

type code

val compile : Build.built -> code
(** Lower every handler region (and resolve every predicate path to a slot
    in its spec's argument-image layout) once. *)

(** {1 Scratch} *)

type scratch
(** Reusable per-execution state: argument image, stamped coverage sets,
    growable trace buffer, object post-state. One scratch serves one
    domain at a time; every [execute_raw] invalidates the previous
    execution's views. *)

val create_scratch : code -> scratch

val execute_raw :
  ?noise:Sp_util.Rng.t * float -> code -> scratch -> Sp_syzlang.Prog.t -> unit
(** Run a program, leaving the outcome readable through the views below.
    Allocation-free in steady state (after buffers have grown to the
    workload's high-water mark). Raises [Invalid_argument] when [scratch]
    was created from different [code]. *)

(** {1 Views into the last execution}

    Valid until the next [execute_raw] on the same scratch; the stampset
    views are invalidated in O(1) by that next run. *)

val scratch_code : scratch -> code

val crashed : scratch -> bool

val crash_of_scratch : scratch -> crash option

val covered_blocks : scratch -> Sp_util.Stampset.t

val covered_edges : scratch -> Sp_util.Stampset.t

val num_calls : scratch -> int
(** Calls actually executed; a crash cuts the program short. *)

(** {1 Materialization} — independent of later runs *)

val blocks_bitset : scratch -> Sp_util.Bitset.t

val edges_bitset : scratch -> Sp_util.Bitset.t

val result_of_scratch : scratch -> result
(** The full {!result}, identical to what the reference interpreter
    produces for the same program. *)
