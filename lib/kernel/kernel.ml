module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Stampset = Sp_util.Stampset
module Prog = Sp_syzlang.Prog

type t = {
  config : Build.config;
  built : Build.built;
  code : Exec.code;
  (* Per-domain default scratch: [t] is shared across shard domains in
     [Campaign.run_parallel], so the fallback scratch for plain [execute]
     calls must be domain-local, never a field mutated from two domains. *)
  default_scratch : Exec.scratch Domain.DLS.key;
}

let generate config =
  let built = Build.build config in
  let code = Exec.compile built in
  {
    config;
    built;
    code;
    default_scratch = Domain.DLS.new_key (fun () -> Exec.create_scratch code);
  }

let default () = generate Build.default_config

let linux_like ~seed ~version =
  let evolve_rounds =
    match version with
    | "6.8" -> 0
    | "6.9" -> 1
    | "6.10" -> 2
    | v -> invalid_arg ("Kernel.linux_like: unknown version " ^ v)
  in
  generate { Build.default_config with seed; version; evolve_rounds }

let version t = t.config.Build.version

let spec_db t = t.built.Build.db

let built t = t.built

let cfg t = t.built.Build.cfg

let num_blocks t = Array.length t.built.Build.blocks

let block t i = t.built.Build.blocks.(i)

let handler_entry t sys = t.built.Build.entries.(sys)

let handler_exit t sys = t.built.Build.exits.(sys)

let bugs t = t.built.Build.bugs

let bug t i = t.built.Build.bugs.(i)

let bug_gate t i = t.built.Build.bug_gates.(i)

let background_blocks t = t.built.Build.background

type kobject = Exec.kobject = { okind : string; mode : int; oflags : int }

type crash = Exec.crash = { bug : Bug.t; crash_call : int }

type call_trace = Exec.call_trace = { call_idx : int; visited : int list }

type result = Exec.result = {
  traces : call_trace list;
  crash : crash option;
  covered : Bitset.t;
  covered_edges : Bitset.t;
  objects : kobject option array;
}

type scratch = Exec.scratch

let create_scratch t = Exec.create_scratch t.code

let execute_into ?noise t scratch prog = Exec.execute_raw ?noise t.code scratch prog

let scratch_crashed = Exec.crashed

let scratch_crash = Exec.crash_of_scratch

let scratch_blocks = Exec.covered_blocks

let scratch_edges = Exec.covered_edges

let scratch_blocks_bitset = Exec.blocks_bitset

let scratch_edges_bitset = Exec.edges_bitset

let scratch_calls = Exec.num_calls

let scratch_result = Exec.result_of_scratch

let execute ?noise ?scratch t prog =
  let st =
    match scratch with
    | Some st -> st
    | None -> Domain.DLS.get t.default_scratch
  in
  Exec.execute_raw ?noise t.code st prog;
  Exec.result_of_scratch st

let per_call_coverage t prog =
  let r = execute t prog in
  let covs =
    Array.init (List.length r.traces) (fun _ -> Bitset.create (num_blocks t))
  in
  List.iter
    (fun tr -> List.iter (Bitset.add covs.(tr.call_idx)) tr.visited)
    r.traces;
  covs

let block_coverage_of_call t prog call_idx =
  let covs = per_call_coverage t prog in
  if call_idx >= 0 && call_idx < Array.length covs then covs.(call_idx)
  else Bitset.create (num_blocks t)
