(** The synthetic kernel: generation, inspection, and test execution.

    A kernel bundles the syscall interface (a {!Sp_syzlang.Spec.db}), the
    handler code (basic blocks over a global id space with a static CFG),
    injected bugs, and an executor that runs test programs and returns
    their coverage trace — the role KCOV plays in the paper. Execution is
    compiled: at generation time every handler CFG is lowered to {!Exec}
    bytecode (pre-resolved predicate slots, precomputed edge ids), and the
    hot path runs against a reusable {!scratch} with zero steady-state
    allocation. {!Reference} keeps the original tree-walking interpreter
    as an oracle. *)

type t

(** {1 Generation} *)

val generate : Build.config -> t

val default : unit -> t
(** [generate Build.default_config]. *)

val linux_like : seed:int -> version:string -> t
(** The three-kernel setup of §5.3: versions "6.8", "6.9", "6.10" share one
    interface and a base code generation; "6.9" applies one evolution round
    and "6.10" two, each with version-specific new bugs. Raises
    [Invalid_argument] for other version strings. *)

(** {1 Inspection} *)

val version : t -> string

val spec_db : t -> Sp_syzlang.Spec.db

val built : t -> Build.built
(** The raw generated artifacts. For the {!Reference} oracle and offline
    analyses; campaign code should use the typed accessors below. *)

val cfg : t -> Sp_cfg.Cfg.t

val num_blocks : t -> int

val block : t -> int -> Ir.block

val handler_entry : t -> int -> int
(** Entry block of the handler for a syscall id. *)

val handler_exit : t -> int -> int

val bugs : t -> Bug.t array

val bug : t -> int -> Bug.t

val bug_gate : t -> int -> Ir.predicate list
(** Ground-truth gate predicates of a bug (for tests and analyses only; the
    fuzzers never see this). *)

val background_blocks : t -> int list

(** {1 Execution} *)

type kobject = Exec.kobject = { okind : string; mode : int; oflags : int }
(** The kernel object a producer call creates; its fields are derived from
    the producer's flag/enum arguments, so later calls' [Res_state] branches
    depend on earlier calls' arguments (the paper's implicit cross-call
    dependencies). *)

type crash = Exec.crash = { bug : Bug.t; crash_call : int }

type call_trace = Exec.call_trace = {
  call_idx : int;
  visited : int list;  (** in order *)
}

type result = Exec.result = {
  traces : call_trace list;
  crash : crash option;
  covered : Sp_util.Bitset.t;  (** block coverage, sized [num_blocks] *)
  covered_edges : Sp_util.Bitset.t;  (** static-edge coverage *)
  objects : kobject option array;  (** post-state, per call index *)
}

val execute :
  ?noise:Sp_util.Rng.t * float -> ?scratch:Exec.scratch -> t ->
  Sp_syzlang.Prog.t -> result
(** Run a program from a pristine kernel snapshot (execution is a pure
    function of the program — the determinism §3.1 engineers for). With
    [~noise:(rng, level)], interrupt-style background blocks and phantom
    blocks from unrelated handlers pollute the trace with probability
    [level] per call, emulating the noisy collection mode of stock
    Syzkaller. Execution stops at the first crash.

    Runs in [scratch] when given (reusing its buffers), otherwise in a
    per-domain default scratch; either way the returned [result] is fully
    materialized and safe to retain. *)

(** {1 Scratch execution — the allocation-free hot path}

    A {!scratch} is owned by exactly one executor at a time (each
    {!Sp_fuzz.Vm} — hence each campaign shard — holds its own; see
    DESIGN.md §8 for the ownership contract). [execute_into] reuses its
    buffers and allocates nothing in steady state; the [scratch_*] views
    read the {e last} execution and are invalidated by the next one. *)

type scratch = Exec.scratch

val create_scratch : t -> scratch

val execute_into :
  ?noise:Sp_util.Rng.t * float -> t -> scratch -> Sp_syzlang.Prog.t -> unit
(** Raises [Invalid_argument] if [scratch] belongs to a different kernel. *)

val scratch_crashed : scratch -> bool

val scratch_crash : scratch -> crash option

val scratch_blocks : scratch -> Sp_util.Stampset.t
(** Borrowed view: valid until the next [execute_into] on this scratch. *)

val scratch_edges : scratch -> Sp_util.Stampset.t

val scratch_blocks_bitset : scratch -> Sp_util.Bitset.t
(** Independent snapshot, safe to retain (used on corpus admission). *)

val scratch_edges_bitset : scratch -> Sp_util.Bitset.t

val scratch_calls : scratch -> int
(** Calls actually executed; a crash cuts the program short. *)

val scratch_result : scratch -> result

(** {1 Coverage queries} *)

val per_call_coverage : t -> Sp_syzlang.Prog.t -> Sp_util.Bitset.t array
(** Per-call block coverage of one program, derived from a single
    execution — index [i] covers call [i]. The array length is the number
    of calls actually executed (a crash cuts the program short). *)

val block_coverage_of_call : t -> Sp_syzlang.Prog.t -> int -> Sp_util.Bitset.t
(** Coverage of one call of the program. Prefer {!per_call_coverage} when
    querying more than one call: this re-executes per query. *)
