module Rng = Sp_util.Rng
module Prog = Sp_syzlang.Prog

type entry = {
  prog : Prog.t;
  blocks : Sp_util.Bitset.t;
  edges : Sp_util.Bitset.t;
  added_at : float;
}

type t = {
  mutable items : entry array;
  mutable count : int;
  (* hash -> programs seen with that hash: dedup confirms structural
     equality, so a hash collision can never silently drop a distinct
     test *)
  seen : (int, Prog.t list) Hashtbl.t;
  hash : Prog.t -> int;
  distance : (entry -> int) option;
  (* directed mode: per-entry distance (parallel to [items]) plus the
     current minimum and the indices achieving it, maintained on [add] so
     base selection is O(1) instead of an O(n) scan + O(n) allocation *)
  mutable dists : int array;
  mutable best_dist : int;
  mutable best_tier : int list;
}

let create ?(hash = Prog.hash) ?distance () =
  {
    items = [||];
    count = 0;
    seen = Hashtbl.create 256;
    hash;
    distance;
    dists = [||];
    best_dist = max_int;
    best_tier = [];
  }

(* Shards run each epoch against a private copy of the barrier-frozen
   global corpus: entries are immutable, so the arrays are copied shallow
   and the distance closure is shared. *)
let copy t =
  {
    items = Array.copy t.items;
    count = t.count;
    seen = Hashtbl.copy t.seen;
    hash = t.hash;
    distance = t.distance;
    dists = Array.copy t.dists;
    best_dist = t.best_dist;
    best_tier = t.best_tier;
  }

let size t = t.count

let nth t i =
  if i < 0 || i >= t.count then invalid_arg "Corpus.nth";
  t.items.(i)

let entries t = List.init t.count (fun i -> t.items.(t.count - 1 - i))

let mem_prog t prog =
  match Hashtbl.find_opt t.seen (t.hash prog) with
  | None -> false
  | Some bucket -> List.exists (Prog.equal prog) bucket

let entry_distance t i =
  if i < 0 || i >= t.count then invalid_arg "Corpus.entry_distance";
  match t.distance with
  | None -> invalid_arg "Corpus.entry_distance: no distance function"
  | Some _ -> t.dists.(i)

let min_distance t = if t.best_tier = [] then None else Some t.best_dist

let add t entry =
  let h = t.hash entry.prog in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.seen h) in
  if List.exists (Prog.equal entry.prog) bucket then false
  else begin
    Hashtbl.replace t.seen h (entry.prog :: bucket);
    if t.count = Array.length t.items then begin
      let cap = max 16 (2 * Array.length t.items) in
      let items = Array.make cap entry in
      Array.blit t.items 0 items 0 t.count;
      t.items <- items;
      if Option.is_some t.distance then begin
        let dists = Array.make cap max_int in
        Array.blit t.dists 0 dists 0 t.count;
        t.dists <- dists
      end
    end;
    let i = t.count in
    t.items.(i) <- entry;
    t.count <- t.count + 1;
    (match t.distance with
    | None -> ()
    | Some distance ->
      let d = distance entry in
      t.dists.(i) <- d;
      if d < t.best_dist then begin
        t.best_dist <- d;
        t.best_tier <- [ i ]
      end
      else if d = t.best_dist then t.best_tier <- i :: t.best_tier);
    true
  end

let choose rng t =
  if t.count = 0 then invalid_arg "Corpus.choose: empty corpus";
  t.items.(Rng.int rng t.count)

let choose_directed rng t =
  if t.count = 0 then invalid_arg "Corpus.choose_directed: empty corpus";
  if Option.is_none t.distance then
    invalid_arg "Corpus.choose_directed: corpus has no distance function";
  if Rng.coin rng 0.1 || t.best_tier = [] then choose rng t
  else t.items.(Rng.choose_list rng t.best_tier)
