module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Metrics = Sp_util.Metrics
module Tracer = Sp_obs.Tracer
module Kernel = Sp_kernel.Kernel
module Bug = Sp_kernel.Bug
module Prog = Sp_syzlang.Prog
module Accum = Sp_coverage.Accum

type t = {
  id : int;
  vm : Vm.t;
  clock : Clock.t;
  rng : Rng.t;
  strategy : Strategy.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
  executed : (int, Prog.t list) Hashtbl.t;
  crash_seen : (string, unit) Hashtbl.t;
  mutable seeds : Prog.t list;
}

let create ?(tracer = Tracer.null) ~id ~vm ~strategy ~rng ~seeds () =
  let metrics = Metrics.create () in
  Vm.set_metrics vm metrics;
  Vm.set_tracer vm tracer;
  Vm.set_throughput_factor vm strategy.Strategy.throughput_factor;
  {
    id;
    vm;
    clock = Clock.create ();
    rng;
    strategy;
    metrics;
    tracer;
    executed = Hashtbl.create 4096;
    crash_seen = Hashtbl.create 16;
    seeds;
  }

let id t = t.id

let vm t = t.vm

let now t = Clock.now t.clock

let metrics t = t.metrics

module Json = Sp_obs.Json

let state_json t =
  (* The executed set is flattened and sorted by program text so the
     snapshot bytes are canonical — independent of Hashtbl layout, which
     differs between an uninterrupted run and a resumed one. Membership is
     all that matters semantically. *)
  let executed =
    Hashtbl.fold (fun _ bucket acc -> List.rev_append bucket acc) t.executed []
    |> List.map Prog.to_string
    |> List.sort String.compare
  in
  let crash_seen =
    Hashtbl.fold (fun d () acc -> d :: acc) t.crash_seen []
    |> List.sort String.compare
  in
  Json.Obj
    [ ("id", Json.Num (float_of_int t.id));
      ("clock", Json.Num (Clock.now t.clock));
      ("rng", Json.Decode.int64_to_json (Rng.state t.rng));
      ("vm", Vm.state_json t.vm);
      ("seeds", Json.Arr (List.map (fun p -> Json.Str (Prog.to_string p)) t.seeds));
      ("executed", Json.Arr (List.map (fun s -> Json.Str s) executed));
      ("crash_seen", Json.Arr (List.map (fun d -> Json.Str d) crash_seen))
    ]

let restore_state t ~parse j =
  let open Json.Decode in
  let id = int_field "id" j in
  if id <> t.id then error "shard state: id %d restored into shard %d" id t.id;
  let str_items name =
    List.map
      (function
        | Json.Str s -> s
        | _ -> error "shard %s: expected strings" name)
      (arr_field name j)
  in
  let parse_prog name s =
    match parse s with
    | Ok p -> p
    | Error msg -> error "shard %s: %s" name msg
  in
  (* The clock was created at 0; a single advance reproduces the stored
     value exactly (0. +. x = x in floats). *)
  Clock.advance t.clock (num_field "clock" j);
  Rng.set_state t.rng (int64_field "rng" j);
  Vm.restore_state t.vm (field "vm" j);
  t.seeds <- List.map (parse_prog "seeds") (str_items "seeds");
  Hashtbl.reset t.executed;
  List.iter
    (fun s ->
      let p = parse_prog "executed" s in
      let h = Prog.hash p in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.executed h) in
      Hashtbl.replace t.executed h (p :: bucket))
    (str_items "executed");
  Hashtbl.reset t.crash_seen;
  List.iter (fun d -> Hashtbl.replace t.crash_seen d ()) (str_items "crash_seen")

type crash_event = {
  ce_crash : Kernel.crash;
  ce_prog : Prog.t;
  ce_time : float;
}

type epoch = {
  ep_shard : int;
  ep_admissions : Corpus.entry list;
  ep_crashes : crash_event list;
  ep_blocks : Bitset.t;
  ep_edges : Bitset.t;
  ep_origin : (string * (int * int)) list;
  ep_target_hit_at : float option;
  ep_idle : bool;
}

(* Mutable working set of one epoch. *)
type ctx = {
  acc : Accum.t;  (* private: global snapshot + this epoch's coverage *)
  local : Corpus.t;  (* private copy of the barrier-frozen global corpus *)
  obs_blocks : Bitset.t;  (* everything observed this epoch, for the merge *)
  obs_edges : Bitset.t;
  origin : (string, int * int) Hashtbl.t;
  mutable admissions_rev : Corpus.entry list;
  mutable crashes_rev : crash_event list;
  mutable target_hit_at : float option;
  mutable worked : bool;
}

let seen_executed t prog h =
  match Hashtbl.find_opt t.executed h with
  | None -> false
  | Some bucket -> List.exists (Prog.equal prog) bucket

let mark_executed t prog h =
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.executed h) in
  Hashtbl.replace t.executed h (prog :: bucket)

let check_target t ctx target =
  match target with
  | Some b when ctx.target_hit_at = None && Accum.mem_block ctx.acc b ->
    ctx.target_hit_at <- Some (Clock.now t.clock)
  | Some _ | None -> ()

(* Ingest the shard VM scratch's last execution (the per-shard mirror of
   [Campaign.ingest_raw]); the epoch's observed-coverage sets take the
   stamped members directly, no intermediate bitset. *)
let ingest_raw ?(origin = "seed") t ctx target prog =
  ctx.worked <- true;
  let scratch = Vm.scratch t.vm in
  let crash = Kernel.scratch_crash scratch in
  let blocks = Kernel.scratch_blocks scratch in
  let edges = Kernel.scratch_edges scratch in
  let delta = Accum.add_stamped ctx.acc ~blocks ~edges in
  Sp_util.Stampset.iter (Bitset.add ctx.obs_blocks) blocks;
  Sp_util.Stampset.iter (Bitset.add ctx.obs_edges) edges;
  (let execs, new_edges =
     Option.value ~default:(0, 0) (Hashtbl.find_opt ctx.origin origin)
   in
   Hashtbl.replace ctx.origin origin (execs + 1, new_edges + delta.Accum.new_edges));
  (* Crashing programs never enter the corpus (see Campaign.ingest_raw). *)
  if crash = None && (delta.Accum.new_blocks > 0 || delta.Accum.new_edges > 0)
  then begin
    let entry =
      {
        Corpus.prog;
        blocks = Kernel.scratch_blocks_bitset scratch;
        edges = Kernel.scratch_edges_bitset scratch;
        added_at = Clock.now t.clock;
      }
    in
    if Corpus.add ctx.local entry then
      ctx.admissions_rev <- entry :: ctx.admissions_rev
  end;
  (match crash with
  | Some crash ->
    (* One event per description per shard bounds the merge's work; the
       global triage dedups across shards. *)
    let d = Bug.description crash.Kernel.bug in
    if not (Hashtbl.mem t.crash_seen d) then begin
      Hashtbl.add t.crash_seen d ();
      ctx.crashes_rev <-
        { ce_crash = crash; ce_prog = prog; ce_time = Clock.now t.clock }
        :: ctx.crashes_rev
    end
  | None -> ());
  check_target t ctx target

let run_epoch_inner t ?max_execs ~corpus ~accum ~target ~until () =
  let kernel = Vm.kernel t.vm in
  let exec0 = Vm.executions t.vm in
  let ctx =
    {
      acc = Accum.copy accum;
      local = Corpus.copy corpus;
      obs_blocks = Bitset.create (Kernel.num_blocks kernel);
      obs_edges = Bitset.create (Sp_cfg.Cfg.num_edges (Kernel.cfg kernel));
      origin = Hashtbl.create 8;
      admissions_rev = [];
      crashes_rev = [];
      target_hit_at = None;
      worked = false;
    }
  in
  let capped () =
    match max_execs with
    | None -> false
    | Some c -> Vm.executions t.vm - exec0 >= c
  in
  let finished () =
    Clock.now t.clock >= until
    || (target <> None && ctx.target_hit_at <> None)
    || capped ()
  in
  (* Leftover seed slice first (all of it in the first epoch, normally). *)
  while (not (finished ())) && t.seeds <> [] do
    match t.seeds with
    | [] -> ()
    | prog :: rest ->
      t.seeds <- rest;
      let h = Prog.hash prog in
      if not (seen_executed t prog h) then begin
        mark_executed t prog h;
        Vm.run_raw t.vm t.clock prog;
        ingest_raw t ctx target prog
      end
  done;
  (* Mutation loop, mirroring the sequential executor. *)
  while (not (finished ())) && Corpus.size ctx.local > 0 do
    ctx.worked <- true;
    Metrics.incr t.metrics "campaign.iterations";
    let iter_start = Clock.now t.clock in
    let entry =
      match target with
      | Some _ -> Corpus.choose_directed t.rng ctx.local
      | None -> Corpus.choose t.rng ctx.local
    in
    let proposals =
      (* Wall clock: this runs on a worker domain (see Metrics.time). *)
      Metrics.time_wall t.metrics "campaign.propose_wall_s" (fun () ->
          t.strategy.Strategy.propose t.rng ~now:(Clock.now t.clock)
            ~covered:(Accum.blocks ctx.acc) ctx.local entry)
    in
    Metrics.incr ~by:(List.length proposals) t.metrics "campaign.proposals";
    List.iter
      (fun (p : Strategy.proposal) ->
        if not (finished ()) then begin
          let h = Prog.hash p.Strategy.prog in
          if seen_executed t p.Strategy.prog h then begin
            Metrics.incr t.metrics "campaign.duplicates";
            Vm.charge_duplicate t.vm t.clock
          end
          else begin
            mark_executed t p.Strategy.prog h;
            Vm.run_raw t.vm t.clock p.Strategy.prog;
            ingest_raw ~origin:p.Strategy.origin t ctx target p.Strategy.prog
          end
        end)
      proposals;
    Metrics.observe t.metrics "campaign.iter_virtual_s"
      (Clock.now t.clock -. iter_start)
  done;
  (* Keep shards in lockstep: a shard that ran out of work (or hit the
     target) still arrives at the barrier with clock = [until]. *)
  if Clock.now t.clock < until then
    Clock.advance t.clock (until -. Clock.now t.clock);
  {
    ep_shard = t.id;
    ep_admissions = List.rev ctx.admissions_rev;
    ep_crashes = List.rev ctx.crashes_rev;
    ep_blocks = ctx.obs_blocks;
    ep_edges = ctx.obs_edges;
    ep_origin =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.origin []
      |> List.sort compare;
    ep_target_hit_at = ctx.target_hit_at;
    ep_idle = not ctx.worked;
  }

(* The span runs on the worker domain executing the epoch — each shard
   owns its tracer, so this is race-free by construction. *)
let run_epoch t ?max_execs ~corpus ~accum ~target ~until () =
  Tracer.span t.tracer "shard.epoch" (fun () ->
      run_epoch_inner t ?max_execs ~corpus ~accum ~target ~until ())
