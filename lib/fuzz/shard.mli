(** One worker's slice of a parallel campaign.

    A shard owns a private {!Vm.t}, {!Clock.t}, RNG stream and mutation
    strategy, plus its cross-epoch executed-set and metrics registry. The
    parallel executor runs shards in lockstep epochs: between two snapshot
    barriers each shard fuzzes {e independently} against a private copy of
    the barrier-frozen global corpus and coverage accumulator, recording —
    in discovery order — the corpus admissions, crash events and coverage
    it produced. The executor then folds those epoch results back into the
    global state in shard order, which is what makes a parallel run
    bit-for-bit reproducible given [(seed, jobs)]: no shard ever observes
    another shard's work except through the deterministic barrier merge. *)

type t

val create :
  ?tracer:Sp_obs.Tracer.t ->
  id:int ->
  vm:Vm.t ->
  strategy:Strategy.t ->
  rng:Sp_util.Rng.t ->
  seeds:Sp_syzlang.Prog.t list ->
  unit ->
  t
(** [seeds] is this shard's slice of the campaign seed corpus, executed
    (once each) before mutation work. Attaches the shard's metrics
    registry and [tracer] (default disabled) to [vm] and applies the
    strategy's throughput factor. The tracer must be private to this
    shard: {!run_epoch} records a [shard.epoch] span into it from the
    worker domain running the epoch. *)

val id : t -> int

val vm : t -> Vm.t

val now : t -> float
(** The shard's virtual clock. *)

val metrics : t -> Sp_util.Metrics.t
(** Shard-local registry (campaign.* loop counters, vm.* costs); the
    executor merges these into the report registry in shard order. *)

val state_json : t -> Sp_obs.Json.t
(** Cross-epoch mutable state for campaign snapshots: clock, RNG stream,
    VM counters, unexecuted seed slice, the executed-program dedup set
    (canonically sorted — duplicate skips charge different virtual time
    than executions, so membership is determinism-relevant) and the
    per-shard crash dedup set. Metrics/tracers are observability, not
    semantics, and are not persisted. *)

val restore_state :
  t ->
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  Sp_obs.Json.t ->
  unit
(** Restore state captured by {!state_json} into a freshly created shard
    (same id, fresh clock). Raises [Sp_obs.Json.Decode.Error] on malformed
    input or an id mismatch. *)

type crash_event = {
  ce_crash : Sp_kernel.Kernel.crash;
  ce_prog : Sp_syzlang.Prog.t;
  ce_time : float;  (** shard-local virtual time of the crash *)
}

type epoch = {
  ep_shard : int;
  ep_admissions : Corpus.entry list;
      (** shard-local corpus admissions, in discovery order; the merge
          re-checks each against the evolving global accumulator *)
  ep_crashes : crash_event list;
      (** first occurrence per crash description per shard, in discovery
          order; cross-shard dedup happens in the merge's triage *)
  ep_blocks : Sp_util.Bitset.t;  (** all block coverage observed this epoch *)
  ep_edges : Sp_util.Bitset.t;
  ep_origin : (string * (int * int)) list;
      (** per proposal origin: executions, shard-locally-new edges *)
  ep_target_hit_at : float option;
  ep_idle : bool;
      (** true when the shard had no work at all (no seeds left, empty
          corpus) — the executor stops once every shard reports idle *)
}

val run_epoch :
  t ->
  ?max_execs:int ->
  corpus:Corpus.t ->
  accum:Sp_coverage.Accum.t ->
  target:int option ->
  until:float ->
  unit ->
  epoch
(** Fuzz until the shard clock reaches [until] (or the target is hit),
    against private copies of [corpus] and [accum] — both are only read,
    so concurrent [run_epoch] calls on distinct shards may share them.
    The shard clock is fast-forwarded to [until] when work runs out, so
    shards stay in lockstep across epochs.

    [max_execs] caps the VM executions this epoch may perform — the
    scheduler's exec-budget enforcement. A capped shard still
    fast-forwards its clock to [until]; the cap is exact (the shard
    stops before exceeding it), so a tenant can never overrun its
    budget. Capping changes what the shard explores, so budget-limited
    runs are deterministic but not comparable to uncapped solo runs. *)
