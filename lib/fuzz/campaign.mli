(** The fuzzing campaign loop of Figure 1.

    Seeds the corpus, then repeatedly: choose a base test, ask the strategy
    for mutants, execute them on the VM (advancing the virtual clock),
    fold coverage into the campaign accumulator, admit novel mutants to the
    corpus, and triage crashes. Supports the undirected mode (coverage
    campaigns of §5.3) and the directed mode (§5.4), which weights base
    selection by static distance to the target block and stops when the
    target is covered. *)

type config = {
  duration : float;  (** virtual seconds; 24 h = 86_400 *)
  seed : int;
  seed_corpus : Sp_syzlang.Prog.t list;
  snapshot_every : float;  (** coverage time-series resolution *)
  attempt_repro : bool;  (** run syz-repro on each new crash *)
  target : int option;  (** directed mode: block id to reach *)
}

val default_config : config
(** 24 virtual hours, snapshots every 20 virtual minutes, no reproduction,
    undirected, empty seed corpus, seed 0. *)

type snapshot = {
  s_time : float;
  s_blocks : int;
  s_edges : int;
  s_crashes : int;
  s_execs : int;
}

type report = {
  series : snapshot list;  (** chronological *)
  final_blocks : int;
  final_edges : int;
  crashes : Triage.found list;
  new_crashes : Triage.found list;
  known_crashes : Triage.found list;
  executions : int;
  corpus_size : int;
  target_hit_at : float option;  (** directed mode: time the target was covered *)
  origin_stats : (string * (int * int)) list;
      (** per proposal origin: (executions, new edges discovered) —
          attribution of coverage to mutation streams *)
  corpus : Corpus.t;  (** final corpus, for post-campaign analyses *)
  covered_blocks : Sp_util.Bitset.t;
      (** final block coverage (an independent snapshot, safe to mutate) *)
  metrics : Sp_util.Metrics.t;
      (** loop observability: [campaign.*] counters (iterations, proposals,
          duplicates, corpus adds, crashes) and histograms (per-iteration
          virtual time, proposal CPU time), plus the [vm.*] metrics the VM
          records into the same registry *)
}

val run :
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  Vm.t ->
  Strategy.t ->
  config ->
  report
(** Telemetry (both executors): with [trace], the campaign records into
    the collection — pid 0 is the main domain ([campaign.snapshot]
    instants, an [edges] counter, and in parallel runs [campaign.barrier]
    / [campaign.merge] spans), pid [1+s] is shard [s] ([shard.epoch]
    spans, [vm.crash_restart] instants), pid [1001+i] is pool worker [i]
    ([pool.task] spans, [pool.steal] instants). With [timeseries], one
    row is appended per snapshot-grid point carrying [blocks], [edges],
    [execs], [execs_per_s], [corpus] and [crashes] plus whatever
    [ts_extra ()] returns (sampled on the main domain at the same grid
    point). The timeseries reads only virtual-clock/merged state, so it
    is bit-for-bit reproducible given [(config.seed, jobs)]; the trace
    carries wall-clock timestamps and is explicitly {e not} part of that
    determinism contract. *)

type aux = {
  aux_json : unit -> Sp_obs.Json.t;
  aux_restore : Sp_obs.Json.t -> unit;
}
(** Strategy-side state that rides along in barrier snapshots — the hook
    the snowplow layer uses to persist its inference service, funnel and
    prediction caches (see [Snowplow.Persist]). [aux_json] is called
    after every barrier merge, at quiescence (no epoch in flight);
    [aux_restore] is called once during {!resume} with the snapshot's
    [aux] field (when it is not [Null]). Campaigns without an [aux]
    write [Null] and ignore the field on restore. *)

val run_parallel :
  ?on_barrier:(now:float -> unit) ->
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  ?snapshot_dir:string ->
  ?aux:aux ->
  ?faults:Sp_util.Faults.t ->
  jobs:int ->
  vm_for:(int -> Vm.t) ->
  strategy_for:(int -> Strategy.t) ->
  config ->
  report
(** Shard the campaign across [jobs] worker domains (see {!Shard}). Each
    shard owns the VM and strategy built by [vm_for]/[strategy_for] for
    its index and a named split of the campaign RNG; seed tests are dealt
    round-robin. Shards fuzz independently between snapshot barriers
    (every [snapshot_every] virtual seconds); at each barrier the main
    domain folds coverage, corpus admissions (re-judged for novelty) and
    crashes into the global state {e in shard order}, making the run
    bit-for-bit reproducible given [(config.seed, jobs)] regardless of
    scheduling. [on_barrier] runs on the main domain after each merge —
    the hook the snowplow layer uses to flush batched inference requests.
    [jobs = 1] delegates to the sequential {!run}. The report's registry
    additionally carries per-shard loop/vm metrics (merged in shard
    order) and the worker pool's [pool.*] metrics.

    With [snapshot_dir], the merged campaign state is persisted after
    every barrier as [snapshot_dir/snapshot-NNNNNN.json] (written
    atomically; a kill mid-write leaves the previous barrier's file
    intact), and {!resume} can continue the campaign from any of them.
    Snapshotting requires the barrier structure, so [jobs = 1] then runs
    the sharded executor (one shard) rather than delegating to {!run}. *)

val resume :
  ?on_barrier:(now:float -> unit) ->
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  ?snapshot_dir:string ->
  ?aux:aux ->
  ?faults:Sp_util.Faults.t ->
  snapshot:Sp_obs.Json.t ->
  jobs:int ->
  vm_for:(int -> Vm.t) ->
  strategy_for:(int -> Strategy.t) ->
  config ->
  (report, string) result
(** Continue a campaign from a barrier snapshot (parsed from a file
    written under [run_parallel ~snapshot_dir]; see {!Snapshot.read}).
    [config] and [jobs] must match the snapshot's recorded launch
    parameters — seed, jobs, duration, snapshot grid, repro and target
    settings are validated and any mismatch is an [Error] (the
    [seed_corpus] is not consulted: each shard's unexecuted seed slice is
    part of the snapshot). The resumed run replays the remaining barriers
    from restored state, so its report is bit-for-bit identical
    ({!report_json}) to the uninterrupted run's — for stateless
    strategies (syzkaller) unconditionally, and for the snowplow
    strategy when the same [aux] hook that wrote the snapshot's
    inference/funnel/prediction caches is supplied to restore them.
    Resuming from a final snapshot (one whose campaign had already
    stopped) reassembles the report without fuzzing further. *)

(** {2 Campaign instances}

    The parallel executor, opened up: an [instance] is one campaign's
    merged global state plus its shard array, stepped one barrier slice
    at a time against a {!Sp_util.Pool} the {e caller} owns.
    [run_parallel] is [create_instance] + step-until-stopped over a
    private pool; the multi-tenant {!Scheduler} interleaves slices of
    many instances over one shared pool. Because every slice is a pure
    function of the instance's barrier-frozen state and the merge runs
    on the calling domain in shard order, an instance's report is
    bit-for-bit independent of {e when} its slices run relative to other
    instances' — the determinism guarantee extends from (seed, jobs) to
    (seed, jobs, schedule). *)

type instance

type slice
(** One in-flight barrier slice: every shard's next epoch, submitted. *)

val create_instance :
  ?snapshot_dir:string ->
  ?restore:Sp_obs.Json.t ->
  ?on_barrier:(now:float -> unit) ->
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  ?aux:aux ->
  ?pid_base:int ->
  ?label:string ->
  ?faults:Sp_util.Faults.t ->
  ?events:Sp_obs.Events.t ->
  jobs:int ->
  vm_for:(int -> Vm.t) ->
  strategy_for:(int -> Strategy.t) ->
  config ->
  instance
(** Build the shards and merged global state (optionally from a
    [restore] snapshot — validate it with {!validate_snapshot} first;
    malformed input raises [Sp_obs.Json.Decode.Error]). [pid_base]
    (default 0) offsets the instance's trace lanes — the main lane is
    pid [pid_base], shard [s] is pid [pid_base + 1 + s] — so a scheduler
    can give every tenant a disjoint pid range; [label] prefixes the
    lane names.

    [faults] (default {!Sp_util.Faults.disabled}) arms this instance's
    injection sites, both prefixed with [label ^ "/"] when a label is
    set: [shard.epoch] (one shard's epoch task raises; [k] = slice-wide
    epoch ordinal [(barrier - 1) * jobs + shard], stable across resume)
    and [io.write_atomic] (the barrier snapshot write crashes mid-write,
    leaving the previous snapshot intact; [k] = barrier number).
    Decisions are consulted on the instance's own domain in shard order,
    so they are independent of pool scheduling.

    [events] (default {!Sp_obs.Events.null}) receives an Info
    [snapshot.write] event per persisted barrier snapshot (label, file,
    barrier, virtual time, stop flag), emitted on the instance's own
    domain inside [complete_slice]. *)

val begin_slice : instance -> pool:Sp_util.Pool.t -> ?max_execs:int -> unit -> slice
(** Submit every shard's next epoch to [pool] and return without
    waiting. [max_execs] caps the slice's total VM executions (dealt
    evenly across shards, remainder to the lowest shard ids) — the
    scheduler's exact budget enforcement. Raises [Invalid_argument] on a
    stopped instance. *)

val complete_slice : instance -> slice -> unit
(** Await the slice's epochs (recording the blocked time as the
    [pool.barrier_wait_s] summary) and fold them into the instance in
    shard order, run the barrier hook, sample the series, decide whether
    the campaign stops, and persist a snapshot when configured. Must run
    on the domain that owns the instance, with slices completed in the
    order they began. Every epoch is awaited before any failure is
    judged (so a raising slice is quiescent by the time the exception
    escapes), then the first failing shard's exception re-raises here
    with its original backtrace. *)

val step_instance : instance -> pool:Sp_util.Pool.t -> ?max_execs:int -> unit -> unit
(** [begin_slice] + [complete_slice]. *)

val finish_instance : instance -> report
(** Close the series grid and assemble the report (merging per-shard
    metrics). Call once, after the instance stopped — or early, to
    report on a budget-exhausted tenant as of its last completed
    barrier. *)

val instance_stopped : instance -> bool

val instance_barrier : instance -> int
(** Completed barriers (monotone; restored by {!resume} snapshots). *)

val instance_jobs : instance -> int

val instance_executions : instance -> int
(** Total VM executions across the instance's shards so far. *)

val instance_next_time : instance -> float
(** Virtual time the next slice will run up to — the stride scheduler's
    per-tenant progress clock. *)

val validate_snapshot : snapshot:Sp_obs.Json.t -> jobs:int -> config -> unit
(** Check a snapshot document's format marker, version and config echo
    against the launch parameters. Raises [Sp_obs.Json.Decode.Error]
    (with a human-readable message) on any mismatch; {!resume} calls
    this for you. *)

val report_json : report -> Sp_obs.Json.t
(** The deterministic portion of a report (everything except [metrics],
    which carries wall-clock timings) as a canonical JSON document —
    serialized twice, byte-equal iff the campaigns behaved identically.
    The resume determinism tests compare these. *)

val coverage_at : report -> float -> int
(** Edge coverage at a given virtual time, interpolated from the series
    (step function); used to compute the paper's time-to-coverage
    speedups. *)

val time_to_edges : report -> int -> float option
(** First snapshot time at which edge coverage reached the given level. *)
