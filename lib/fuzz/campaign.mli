(** The fuzzing campaign loop of Figure 1.

    Seeds the corpus, then repeatedly: choose a base test, ask the strategy
    for mutants, execute them on the VM (advancing the virtual clock),
    fold coverage into the campaign accumulator, admit novel mutants to the
    corpus, and triage crashes. Supports the undirected mode (coverage
    campaigns of §5.3) and the directed mode (§5.4), which weights base
    selection by static distance to the target block and stops when the
    target is covered. *)

type config = {
  duration : float;  (** virtual seconds; 24 h = 86_400 *)
  seed : int;
  seed_corpus : Sp_syzlang.Prog.t list;
  snapshot_every : float;  (** coverage time-series resolution *)
  attempt_repro : bool;  (** run syz-repro on each new crash *)
  target : int option;  (** directed mode: block id to reach *)
}

val default_config : config
(** 24 virtual hours, snapshots every 20 virtual minutes, no reproduction,
    undirected, empty seed corpus, seed 0. *)

type snapshot = {
  s_time : float;
  s_blocks : int;
  s_edges : int;
  s_crashes : int;
  s_execs : int;
}

type report = {
  series : snapshot list;  (** chronological *)
  final_blocks : int;
  final_edges : int;
  crashes : Triage.found list;
  new_crashes : Triage.found list;
  known_crashes : Triage.found list;
  executions : int;
  corpus_size : int;
  target_hit_at : float option;  (** directed mode: time the target was covered *)
  origin_stats : (string * (int * int)) list;
      (** per proposal origin: (executions, new edges discovered) —
          attribution of coverage to mutation streams *)
  corpus : Corpus.t;  (** final corpus, for post-campaign analyses *)
  covered_blocks : Sp_util.Bitset.t;
      (** final block coverage (an independent snapshot, safe to mutate) *)
  metrics : Sp_util.Metrics.t;
      (** loop observability: [campaign.*] counters (iterations, proposals,
          duplicates, corpus adds, crashes) and histograms (per-iteration
          virtual time, proposal CPU time), plus the [vm.*] metrics the VM
          records into the same registry *)
}

val run :
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  Vm.t ->
  Strategy.t ->
  config ->
  report
(** Telemetry (both executors): with [trace], the campaign records into
    the collection — pid 0 is the main domain ([campaign.snapshot]
    instants, an [edges] counter, and in parallel runs [campaign.barrier]
    / [campaign.merge] spans), pid [1+s] is shard [s] ([shard.epoch]
    spans, [vm.crash_restart] instants), pid [1001+i] is pool worker [i]
    ([pool.task] spans, [pool.steal] instants). With [timeseries], one
    row is appended per snapshot-grid point carrying [blocks], [edges],
    [execs], [execs_per_s], [corpus] and [crashes] plus whatever
    [ts_extra ()] returns (sampled on the main domain at the same grid
    point). The timeseries reads only virtual-clock/merged state, so it
    is bit-for-bit reproducible given [(config.seed, jobs)]; the trace
    carries wall-clock timestamps and is explicitly {e not} part of that
    determinism contract. *)

val run_parallel :
  ?on_barrier:(now:float -> unit) ->
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  ?snapshot_dir:string ->
  jobs:int ->
  vm_for:(int -> Vm.t) ->
  strategy_for:(int -> Strategy.t) ->
  config ->
  report
(** Shard the campaign across [jobs] worker domains (see {!Shard}). Each
    shard owns the VM and strategy built by [vm_for]/[strategy_for] for
    its index and a named split of the campaign RNG; seed tests are dealt
    round-robin. Shards fuzz independently between snapshot barriers
    (every [snapshot_every] virtual seconds); at each barrier the main
    domain folds coverage, corpus admissions (re-judged for novelty) and
    crashes into the global state {e in shard order}, making the run
    bit-for-bit reproducible given [(config.seed, jobs)] regardless of
    scheduling. [on_barrier] runs on the main domain after each merge —
    the hook the snowplow layer uses to flush batched inference requests.
    [jobs = 1] delegates to the sequential {!run}. The report's registry
    additionally carries per-shard loop/vm metrics (merged in shard
    order) and the worker pool's [pool.*] metrics.

    With [snapshot_dir], the merged campaign state is persisted after
    every barrier as [snapshot_dir/snapshot-NNNNNN.json] (written
    atomically; a kill mid-write leaves the previous barrier's file
    intact), and {!resume} can continue the campaign from any of them.
    Snapshotting requires the barrier structure, so [jobs = 1] then runs
    the sharded executor (one shard) rather than delegating to {!run}. *)

val resume :
  ?on_barrier:(now:float -> unit) ->
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?ts_extra:(unit -> (string * float) list) ->
  ?snapshot_dir:string ->
  snapshot:Sp_obs.Json.t ->
  jobs:int ->
  vm_for:(int -> Vm.t) ->
  strategy_for:(int -> Strategy.t) ->
  config ->
  (report, string) result
(** Continue a campaign from a barrier snapshot (parsed from a file
    written under [run_parallel ~snapshot_dir]; see {!Snapshot.read}).
    [config] and [jobs] must match the snapshot's recorded launch
    parameters — seed, jobs, duration, snapshot grid, repro and target
    settings are validated and any mismatch is an [Error] (the
    [seed_corpus] is not consulted: each shard's unexecuted seed slice is
    part of the snapshot). The resumed run replays the remaining barriers
    from restored state, so its report is bit-for-bit identical
    ({!report_json}) to the uninterrupted run's for stateless strategies
    (syzkaller); the snowplow strategy's inference caches are not
    persisted, so a resumed snowplow campaign is deterministic but may
    differ from the uninterrupted run in proposal timing. Resuming from a
    final snapshot (one whose campaign had already stopped) reassembles
    the report without fuzzing further. *)

val report_json : report -> Sp_obs.Json.t
(** The deterministic portion of a report (everything except [metrics],
    which carries wall-clock timings) as a canonical JSON document —
    serialized twice, byte-equal iff the campaigns behaved identically.
    The resume determinism tests compare these. *)

val coverage_at : report -> float -> int
(** Edge coverage at a given virtual time, interpolated from the series
    (step function); used to compute the paper's time-to-coverage
    speedups. *)

val time_to_edges : report -> int -> float option
(** First snapshot time at which edge coverage reached the given level. *)
