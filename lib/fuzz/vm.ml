module Rng = Sp_util.Rng
module Kernel = Sp_kernel.Kernel
module Metrics = Sp_util.Metrics
module Tracer = Sp_obs.Tracer

type t = {
  kernel : Kernel.t;
  scratch : Kernel.scratch;  (* owned: one VM = one shard = one domain *)
  noise : float;
  noise_rng : Rng.t;
  base_cost : float;
  crash_restart_s : float;
  mutable factor : float;
  mutable executions : int;
  mutable metrics : Metrics.t option;
  mutable tracer : Tracer.t;
}

let create ?(noise = 0.0) ?(execs_per_second = 390.0) ?(fleet_scale = 96.0)
    ?(crash_restart_s = 0.7) ~seed kernel =
  {
    kernel;
    scratch = Kernel.create_scratch kernel;
    noise;
    noise_rng = Rng.create (seed lxor 0x5eed);
    base_cost = fleet_scale /. execs_per_second;
    crash_restart_s;
    factor = 1.0;
    executions = 0;
    metrics = None;
    tracer = Tracer.null;
  }

let kernel t = t.kernel

let scratch t = t.scratch

let set_metrics t m = t.metrics <- Some m

let set_tracer t tr = t.tracer <- tr

let record_counter t name =
  match t.metrics with Some m -> Metrics.incr m name | None -> ()

let record_observation t name v =
  match t.metrics with Some m -> Metrics.observe m name v | None -> ()

let execute t prog =
  t.executions <- t.executions + 1;
  if t.noise > 0.0 then Kernel.execute ~noise:(t.noise_rng, t.noise) t.kernel prog
  else Kernel.execute t.kernel prog

let execute_raw t prog =
  t.executions <- t.executions + 1;
  if t.noise > 0.0 then
    Kernel.execute_into ~noise:(t.noise_rng, t.noise) t.kernel t.scratch prog
  else Kernel.execute_into t.kernel t.scratch prog

(* Execution time scales with the number of system calls issued: the
   fleet's 390 tests/s is calibrated for an average-size (5-call) test. *)
let charge t clock ~crashed ~num_calls =
  let calls = float_of_int num_calls in
  let cost = t.base_cost /. t.factor *. (0.5 +. (0.1 *. calls)) in
  let cost =
    if crashed then begin
      record_counter t "vm.crash_restarts";
      (* Rare enough for a trace event: a reboot is exactly the kind of
         spike the inspector should be able to line up with the series. *)
      Tracer.instant t.tracer "vm.crash_restart";
      cost +. t.crash_restart_s
    end
    else cost
  in
  record_counter t "vm.executions";
  record_observation t "vm.exec_virtual_s" cost;
  Clock.advance clock cost

(* Wall clock, not [Metrics.time]: one VM per shard means this timer runs
   on a worker domain, where [Sys.time] would charge every other domain's
   concurrent work to this shard's histogram. *)
let run t clock prog =
  let r =
    match t.metrics with
    | Some m -> Metrics.time_wall m "vm.exec_wall_s" (fun () -> execute t prog)
    | None -> execute t prog
  in
  charge t clock ~crashed:(r.Kernel.crash <> None)
    ~num_calls:(Array.length prog);
  r

let run_raw t clock prog =
  (match t.metrics with
  | Some m -> Metrics.time_wall m "vm.exec_wall_s" (fun () -> execute_raw t prog)
  | None -> execute_raw t prog);
  charge t clock
    ~crashed:(Kernel.scratch_crashed t.scratch)
    ~num_calls:(Array.length prog)

let run_free t prog = execute t prog

let charge_duplicate t clock =
  (* Syzkaller skips executing byte-identical programs it has already run;
     the hash check is ~10% of an execution. *)
  record_counter t "vm.duplicate_skips";
  Clock.advance clock (0.1 *. t.base_cost /. t.factor)

let executions t = t.executions

module Json = Sp_obs.Json

let state_json t =
  Json.Obj
    [ ("executions", Json.Num (float_of_int t.executions));
      ("noise_rng", Json.Decode.int64_to_json (Rng.state t.noise_rng))
    ]

let restore_state t j =
  let open Json.Decode in
  t.executions <- int_field "executions" j;
  Rng.set_state t.noise_rng (int64_field "noise_rng" j)

let set_throughput_factor t f =
  if f <= 0.0 then invalid_arg "Vm.set_throughput_factor: must be positive";
  t.factor <- f
