(** The fuzzing corpus: tests worth mutating, with their cached coverage.

    A mutant enters the corpus when it covered kernel code no previous test
    did (Figure 1's [update_corpus]); each entry caches its block and edge
    coverage so base-test selection and query-graph construction never
    re-execute.

    Deduplication is indexed by content hash but confirmed by structural
    equality, so two distinct programs whose hashes collide both stay in
    the corpus. In directed mode the corpus also maintains the minimum
    distance-to-target tier incrementally as entries arrive, making
    directed base selection O(1) rather than an O(n) scan per choice. *)

type entry = {
  prog : Sp_syzlang.Prog.t;
  blocks : Sp_util.Bitset.t;
  edges : Sp_util.Bitset.t;
  added_at : float;
}

type t

val create :
  ?hash:(Sp_syzlang.Prog.t -> int) -> ?distance:(entry -> int) -> unit -> t
(** [hash] defaults to [Prog.hash]; it is an index, not an identity —
    equality is always confirmed structurally (tests inject degenerate
    hashes to exercise collisions). [distance] enables directed mode: it is
    evaluated once per entry at [add] time (coverage is immutable, so the
    distance is too) and drives [choose_directed]. *)

val copy : t -> t
(** An independent corpus with the same entries and distance index;
    entries themselves (immutable) are shared. Each shard epoch runs
    against a copy of the barrier-frozen global corpus. *)

val size : t -> int

val entries : t -> entry list
(** Newest first. *)

val nth : t -> int -> entry

val add : t -> entry -> bool
(** False (and no insertion) when a structurally equal program is already
    present. *)

val mem_prog : t -> Sp_syzlang.Prog.t -> bool

val choose : Sp_util.Rng.t -> t -> entry
(** Uniform choice. Raises [Invalid_argument] on an empty corpus. *)

val choose_directed : Sp_util.Rng.t -> t -> entry
(** SyzDirect-style base selection: strongly favours entries whose coverage
    got closest to the target (minimum distance, from the maintained
    index); falls back to uniform among the best tier with occasional
    (10%) exploration. Raises [Invalid_argument] on an empty corpus or one
    created without [distance]. *)

val entry_distance : t -> int -> int
(** Distance recorded for the [i]-th entry. Raises [Invalid_argument] out
    of range or when the corpus has no distance function. *)

val min_distance : t -> int option
(** Smallest recorded distance, [None] when empty or undirected. *)
