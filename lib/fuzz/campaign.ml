module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Metrics = Sp_util.Metrics
module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog
module Accum = Sp_coverage.Accum

type config = {
  duration : float;
  seed : int;
  seed_corpus : Prog.t list;
  snapshot_every : float;
  attempt_repro : bool;
  target : int option;
}

let default_config =
  {
    duration = 86_400.0;
    seed = 0;
    seed_corpus = [];
    snapshot_every = 1200.0;
    attempt_repro = false;
    target = None;
  }

type snapshot = {
  s_time : float;
  s_blocks : int;
  s_edges : int;
  s_crashes : int;
  s_execs : int;
}

type report = {
  series : snapshot list;
  final_blocks : int;
  final_edges : int;
  crashes : Triage.found list;
  new_crashes : Triage.found list;
  known_crashes : Triage.found list;
  executions : int;
  corpus_size : int;
  target_hit_at : float option;
  origin_stats : (string * (int * int)) list;
      (* per proposal origin: executions, new edges discovered *)
  corpus : Corpus.t;
  covered_blocks : Sp_util.Bitset.t;
  metrics : Metrics.t;
}

type state = {
  vm : Vm.t;
  clock : Clock.t;
  rng : Rng.t;
  corpus : Corpus.t;
  accum : Accum.t;
  triage : Triage.t;
  config : config;
  metrics : Metrics.t;
  mutable series_rev : snapshot list;
  mutable next_snapshot : float;
  mutable crash_count : int;
  mutable target_hit_at : float option;
  origin_stats : (string, int * int) Hashtbl.t;
  executed : (int, Prog.t list) Hashtbl.t;
}

let take_snapshots st =
  while Clock.now st.clock >= st.next_snapshot do
    st.series_rev <-
      {
        s_time = st.next_snapshot;
        s_blocks = Accum.blocks_covered st.accum;
        s_edges = Accum.edges_covered st.accum;
        s_crashes = st.crash_count;
        s_execs = Vm.executions st.vm;
      }
      :: st.series_rev;
    st.next_snapshot <- st.next_snapshot +. st.config.snapshot_every
  done

let check_target st =
  match st.config.target with
  | Some b when st.target_hit_at = None && Accum.mem_block st.accum b ->
    st.target_hit_at <- Some (Clock.now st.clock)
  | Some _ | None -> ()

(* The executed-set is keyed by hash but confirmed structurally, like the
   corpus: a collision must cost a redundant execution, not skip a
   never-run program. *)
let seen_executed st prog h =
  match Hashtbl.find_opt st.executed h with
  | None -> false
  | Some bucket -> List.exists (Prog.equal prog) bucket

let mark_executed st prog h =
  let bucket = Option.value ~default:[] (Hashtbl.find_opt st.executed h) in
  Hashtbl.replace st.executed h (prog :: bucket)

let ingest ?(origin = "seed") st prog (r : Kernel.result) =
  let delta =
    Accum.add st.accum ~blocks:r.Kernel.covered ~edges:r.Kernel.covered_edges
  in
  (let execs, new_edges =
     Option.value ~default:(0, 0) (Hashtbl.find_opt st.origin_stats origin)
   in
   Hashtbl.replace st.origin_stats origin
     (execs + 1, new_edges + delta.Accum.new_edges));
  (* Crashing programs never enter the corpus: the VM died, and mutating
     them would mostly re-trigger the same crash (Syzkaller behaves the
     same way). *)
  if r.Kernel.crash = None && (delta.Accum.new_blocks > 0 || delta.Accum.new_edges > 0)
  then
    if
      Corpus.add st.corpus
        {
          Corpus.prog;
          blocks = r.Kernel.covered;
          edges = r.Kernel.covered_edges;
          added_at = Clock.now st.clock;
        }
    then Metrics.incr st.metrics "campaign.corpus_adds";
  (match r.Kernel.crash with
  | Some crash -> (
    match
      Triage.record ~attempt_repro:st.config.attempt_repro st.triage st.rng
        ~vm:st.vm ~now:(Clock.now st.clock) crash prog
    with
    | Some _ ->
      st.crash_count <- st.crash_count + 1;
      Metrics.incr st.metrics "campaign.crashes"
    | None -> ())
  | None -> ());
  check_target st;
  take_snapshots st

let finished st =
  Clock.now st.clock >= st.config.duration
  || (st.config.target <> None && st.target_hit_at <> None)

let run vm (strategy : Strategy.t) config =
  Vm.set_throughput_factor vm strategy.Strategy.throughput_factor;
  let kernel = Vm.kernel vm in
  let metrics = Metrics.create () in
  Vm.set_metrics vm metrics;
  let dist_to_target =
    match config.target with
    | Some b -> Sp_cfg.Cfg.distances_to (Kernel.cfg kernel) b
    | None -> [||]
  in
  (* Directed mode: an entry's distance to the target is fixed once its
     coverage is known, so it is computed exactly once, on admission, and
     the corpus keeps the minimum tier indexed (no per-choice scan and no
     hash-keyed memo). *)
  let entry_distance (entry : Corpus.entry) =
    Bitset.fold
      (fun b acc -> min acc dist_to_target.(b))
      entry.Corpus.blocks max_int
  in
  let st =
    {
      vm;
      clock = Clock.create ();
      rng = Rng.create config.seed;
      corpus =
        Corpus.create
          ?distance:(if config.target = None then None else Some entry_distance)
          ();
      accum =
        Accum.create ~num_blocks:(Kernel.num_blocks kernel)
          ~num_edges:(Sp_cfg.Cfg.num_edges (Kernel.cfg kernel));
      triage = Triage.create kernel;
      config;
      metrics;
      series_rev = [];
      next_snapshot = config.snapshot_every;
      crash_count = 0;
      target_hit_at = None;
      origin_stats = Hashtbl.create 16;
      executed = Hashtbl.create 4096;
    }
  in
  (* Seed the corpus. *)
  List.iter
    (fun prog ->
      if not (finished st) then begin
        mark_executed st prog (Prog.hash prog);
        let r = Vm.run st.vm st.clock prog in
        ingest st prog r
      end)
    config.seed_corpus;
  (* Main loop. *)
  while (not (finished st)) && Corpus.size st.corpus > 0 do
    Metrics.incr st.metrics "campaign.iterations";
    let iter_start = Clock.now st.clock in
    let entry =
      match config.target with
      | Some _ -> Corpus.choose_directed st.rng st.corpus
      | None -> Corpus.choose st.rng st.corpus
    in
    let proposals =
      Metrics.time st.metrics "campaign.propose_cpu_s" (fun () ->
          strategy.Strategy.propose st.rng ~now:(Clock.now st.clock)
            ~covered:(Accum.blocks st.accum) st.corpus entry)
    in
    Metrics.incr ~by:(List.length proposals) st.metrics "campaign.proposals";
    List.iter
      (fun (p : Strategy.proposal) ->
        if not (finished st) then begin
          let h = Prog.hash p.Strategy.prog in
          if seen_executed st p.Strategy.prog h then begin
            Metrics.incr st.metrics "campaign.duplicates";
            Vm.charge_duplicate st.vm st.clock
          end
          else begin
            mark_executed st p.Strategy.prog h;
            let r = Vm.run st.vm st.clock p.Strategy.prog in
            ingest ~origin:p.Strategy.origin st p.Strategy.prog r
          end
        end)
      proposals;
    Metrics.observe st.metrics "campaign.iter_virtual_s"
      (Clock.now st.clock -. iter_start)
  done;
  (* Close the series at the end of the campaign. *)
  Clock.advance st.clock (Float.max 0.0 (config.duration -. Clock.now st.clock));
  take_snapshots st;
  let needs_final =
    match st.series_rev with
    | last :: _ -> last.s_time < config.duration
    | [] -> true
  in
  if needs_final then
    st.series_rev <-
      { s_time = config.duration;
        s_blocks = Accum.blocks_covered st.accum;
        s_edges = Accum.edges_covered st.accum;
        s_crashes = st.crash_count;
        s_execs = Vm.executions st.vm }
      :: st.series_rev;
  {
    series = List.rev st.series_rev;
    final_blocks = Accum.blocks_covered st.accum;
    final_edges = Accum.edges_covered st.accum;
    crashes = Triage.all_found st.triage;
    new_crashes = Triage.new_crashes st.triage;
    known_crashes = Triage.known_crashes st.triage;
    executions = Vm.executions st.vm;
    corpus_size = Corpus.size st.corpus;
    target_hit_at = st.target_hit_at;
    origin_stats =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.origin_stats []
      |> List.sort compare;
    corpus = st.corpus;
    (* the accumulator dies with the campaign, but the report escapes it:
       hand out a snapshot, not the live set *)
    covered_blocks = Accum.snapshot_blocks st.accum;
    metrics = st.metrics;
  }

let coverage_at report time =
  let rec go last = function
    | [] -> last
    | s :: rest -> if s.s_time > time then last else go s.s_edges rest
  in
  go 0 report.series

let time_to_edges report level =
  let rec go = function
    | [] -> None
    | s :: rest -> if s.s_edges >= level then Some s.s_time else go rest
  in
  go report.series
